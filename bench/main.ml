(* The benchmark harness: regenerates every figure of the paper's
   evaluation (§5.2) as printed series, plus Bechamel micro-benchmarks of
   the toolchain itself (one Test.make per figure pipeline).

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig10 fig13  # specific figures
     dune exec bench/main.exe -- quick        # reduced-scale, no bechamel
     dune exec bench/main.exe -- bechamel     # toolchain timing only
     dune exec bench/main.exe -- json --scale 0.2  # write BENCH.json

   Shape targets (paper): 2-core averages ILP 1.23 / TLP 1.16 / LLP 1.18,
   hybrid 1.46; 4-core 1.33 / 1.23 / 1.37, hybrid 1.83; decoupled mode
   well below coupled mode on cache-miss stalls (Fig. 12); hybrid at least
   the best single strategy per benchmark (Fig. 13). Measured numbers are
   recorded in EXPERIMENTS.md. *)

module E = Voltron.Experiments
module Suite = Voltron_workloads.Suite
module Pool = Voltron_pool.Pool
module Campaign = Voltron_gen.Campaign
module Json = Voltron_obs.Json
module Metrics = Voltron_obs.Metrics
module Blame = Voltron_obs.Blame
module Critpath = Voltron_obs.Critpath
module Config = Voltron_machine.Config
module Machine = Voltron_machine.Machine
module Driver = Voltron_compiler.Driver

let line () = print_endline (String.make 78 '=')

let run_figure ~scale ~jobs name =
  line ();
  (match name with
  | "fig3" -> E.print_fig3 (E.fig3 ~scale ~jobs ())
  | "fig10" -> E.print_fig10 (E.fig10 ~scale ~jobs ())
  | "fig11" -> E.print_fig11 (E.fig11 ~scale ~jobs ())
  | "fig12" -> E.print_fig12 (E.fig12 ~scale ~jobs ())
  | "fig13" -> E.print_fig13 (E.fig13 ~scale ~jobs ())
  | "fig14" -> E.print_fig14 (E.fig14 ~scale ~jobs ())
  | "micro" -> E.print_micro (E.micro ~scale ~jobs ())
  | "scaling" ->
    let rows = E.scaling ~scale ~jobs () in
    E.print_scaling rows;
    print_newline ();
    E.print_crossover (E.crossover rows)
  | "resilience" -> E.print_resilience (E.resilience ~scale ~jobs ())
  | other ->
    Printf.eprintf "unknown figure: %s\n" other;
    exit 2);
  print_newline ()

let run_ablations ~scale () =
  line ();
  print_endline "Ablations (design-choice studies beyond the paper's figures)";
  E.print_ablations ~title:"A1: dual-mode value — hybrid vs committing to one mode (4 cores)"
    (E.ablation_modes ~scale ());
  print_newline ();
  E.print_ablations ~title:"A2: queue channel capacity (epic, forced TLP, 4 cores)"
    (E.ablation_capacity ~scale ());
  print_newline ();
  E.print_ablations
    ~title:"A3: main-memory latency — decoupled tolerance vs coupled fragility (179.art, 4 cores)"
    (E.ablation_memlat ~scale ());
  print_newline ();
  E.print_ablations
    ~title:"A4: TM mis-speculation — profiled clean, run with collisions (scatter RMW, 4 cores)"
    (E.ablation_tm ~scale ());
  print_newline ();
  E.print_ablations ~title:"A5: core scaling, hybrid (coupled groups capped at 4)"
    (E.ablation_scaling ~scale ());
  print_newline ();
  E.print_ablations
    ~title:"A6: if-conversion — predicating away a strand loop's branch (forced TLP, 4 cores)"
    (E.ablation_ifconv ~scale ());
  print_newline ();
  E.print_ablations
    ~title:"A7: energy and EDP — 4-core hybrid vs 1-core baseline (first-order model)"
    (E.ablation_energy ~scale ());
  print_newline ();
  E.print_ablations
    ~title:"A8: one wide-issue core vs four simple Voltron cores (speedup over 1-issue serial)"
    (E.ablation_issue_width ~scale ());
  print_newline ()

let figures =
  [
    "fig3"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14"; "micro"; "scaling";
    "resilience";
  ]

(* --- JSON export (BENCH.json) ---------------------------------------------- *)

let json_of_per_type rows =
  Json.List
    (List.map
       (fun (r : E.per_type_speedup) ->
         Json.Obj
           [
             ("bench", Json.Str r.E.bench);
             ("ilp", Json.Float r.E.sp_ilp);
             ("tlp", Json.Float r.E.sp_tlp);
             ("llp", Json.Float r.E.sp_llp);
           ])
       rows)

let json_of_figure ~scale ~jobs = function
  | "fig3" ->
    Json.List
      (List.map
         (fun (c : E.classification) ->
           Json.Obj
             [
               ("bench", Json.Str c.E.cl_bench);
               ("ilp_pct", Json.Float c.E.pct_ilp);
               ("tlp_pct", Json.Float c.E.pct_tlp);
               ("llp_pct", Json.Float c.E.pct_llp);
               ("single_pct", Json.Float c.E.pct_single);
             ])
         (E.fig3 ~scale ~jobs ()))
  | "fig10" -> json_of_per_type (E.fig10 ~scale ~jobs ())
  | "fig11" -> json_of_per_type (E.fig11 ~scale ~jobs ())
  | "fig12" ->
    Json.List
      (List.map
         (fun (s : E.stall_breakdown) ->
           Json.Obj
             [
               ("bench", Json.Str s.E.sb_bench);
               ("coupled_i", Json.Float s.E.coupled_i);
               ("coupled_d", Json.Float s.E.coupled_d);
               ("coupled_other", Json.Float s.E.coupled_other);
               ("decoupled_i", Json.Float s.E.decoupled_i);
               ("decoupled_d", Json.Float s.E.decoupled_d);
               ("decoupled_recv", Json.Float s.E.decoupled_recv);
               ("decoupled_pred", Json.Float s.E.decoupled_pred);
               ("decoupled_sync", Json.Float s.E.decoupled_sync);
             ])
         (E.fig12 ~scale ~jobs ()))
  | "fig13" ->
    Json.List
      (List.map
         (fun (h : E.hybrid_speedup) ->
           Json.Obj
             [
               ("bench", Json.Str h.E.hs_bench);
               ("cores2", Json.Float h.E.hs_2core);
               ("cores4", Json.Float h.E.hs_4core);
             ])
         (E.fig13 ~scale ~jobs ()))
  | "fig14" ->
    Json.List
      (List.map
         (fun (m : E.mode_split) ->
           Json.Obj
             [
               ("bench", Json.Str m.E.ms_bench);
               ("coupled_pct", Json.Float m.E.coupled_pct);
               ("decoupled_pct", Json.Float m.E.decoupled_pct);
             ])
         (E.fig14 ~scale ~jobs ()))
  | "micro" ->
    Json.List
      (List.map
         (fun (m : E.micro_result) ->
           Json.Obj
             [
               ("name", Json.Str m.E.mi_name);
               ("paper", Json.Float m.E.mi_paper);
               ("measured", Json.Float m.E.mi_measured);
             ])
         (E.micro ~scale ~jobs ()))
  | "scaling" ->
    let rows = E.scaling ~scale ~jobs () in
    Json.Obj
      [
        ( "rows",
          Json.List
            (List.map
               (fun (r : E.scaling_row) ->
                 Json.Obj
                   [
                     ("bench", Json.Str r.E.sc_bench);
                     ("class", Json.Str r.E.sc_class);
                     ("cores", Json.Int r.E.sc_cores);
                     ("snoop_cycles", Json.Int r.E.sc_snoop_cycles);
                     ("directory_cycles", Json.Int r.E.sc_dir_cycles);
                     ("snoop_speedup", Json.Float r.E.sc_snoop);
                     ("directory_speedup", Json.Float r.E.sc_directory);
                   ])
               rows) );
        ( "crossover",
          Json.List
            (List.map
               (fun (c : E.crossover_row) ->
                 Json.Obj
                   [
                     ("class", Json.Str c.E.cx_class);
                     ("cores", Json.Int c.E.cx_cores);
                     ("snoop", Json.Float c.E.cx_snoop);
                     ("directory", Json.Float c.E.cx_directory);
                     ("winner", Json.Str c.E.cx_winner);
                   ])
               (E.crossover rows)) );
      ]
  | "resilience" ->
    Json.List
      (List.map
         (fun (r : E.resilience_row) ->
           Json.Obj
             [
               ("bench", Json.Str r.E.rs_bench);
               ("rate", Json.Float r.E.rs_rate);
               ("level", Json.Str r.E.rs_level);
               ("cycles", Json.Int r.E.rs_cycles);
               ("overhead", Json.Float r.E.rs_overhead);
               ("speedup", Json.Float r.E.rs_speedup);
               ("faults", Json.Int r.E.rs_faults);
               ("retries", Json.Int r.E.rs_retries);
               ("ecc", Json.Int r.E.rs_ecc);
               ("aborts", Json.Int r.E.rs_aborts);
               ("verified", Json.Bool r.E.rs_verified);
             ])
         (E.resilience ~scale ~jobs ()))
  | other ->
    Printf.eprintf "unknown figure: %s\n" other;
    exit 2

(* Key counters per benchmark: one 4-core hybrid run each, with the unified
   metrics record alongside its speedup. Cells are independent, so they fan
   out on the pool; the list comes back in benchmark order either way. *)
let json_of_counters ~scale ~jobs () =
  Array.to_list
  @@ Pool.parallel_map ~jobs
    (fun (b : Suite.benchmark) ->
      let name = b.Suite.bench_name in
      let p = b.Suite.build ~scale () in
      let base = Voltron.Run.baseline_cycles p in
      let m = Voltron.Run.run ~n_cores:4 p in
      let metrics =
        Metrics.of_stats ~label:name ~cycles:m.Voltron.Run.cycles
          ~coherence:m.Voltron.Run.coh_stats ~network:m.Voltron.Run.net_stats
          m.Voltron.Run.stats
      in
      ( name,
        Json.Obj
          [
            ("baseline_cycles", Json.Int base);
            ("cycles", Json.Int m.Voltron.Run.cycles);
            ( "speedup",
              Json.Float (float_of_int base /. float_of_int m.Voltron.Run.cycles)
            );
            ("verified", Json.Bool m.Voltron.Run.verified);
            ("metrics", Metrics.to_json metrics);
          ] ))
    (Array.of_list Suite.all)

let run_json ~scale ~jobs wanted =
  let wanted = if wanted = [] then figures else wanted in
  let path = "BENCH.json" in
  Printf.printf "collecting %s (scale %.2f, jobs %d) ...\n%!"
    (String.concat " " wanted) scale jobs;
  let figs = List.map (fun f -> (f, json_of_figure ~scale ~jobs f)) wanted in
  let counters = json_of_counters ~scale ~jobs () in
  Json.write_file path
    (Json.Obj
       [
         ("scale", Json.Float scale);
         ("figures", Json.Obj figs);
         ("benchmarks", Json.Obj counters);
       ]);
  Printf.printf "wrote %s\n" path

(* --- perf: simulator wall-clock throughput (PERF.json) --------------------- *)

(* Measures the cycle simulator itself — simulated cycles per host second
   over the 4-core hybrid workload sweep. Compilation happens outside the
   timed section, so the number tracks the Machine.run hot loop and nothing
   else. Each invocation appends one entry to PERF.json's series, so the
   speedup history is a recorded artifact rather than a claim; re-baseline
   by replacing bench/perf_baseline.json with the latest entry (see
   DESIGN.md §10). *)

type perf_row = { pw_bench : string; pw_cycles : int; pw_host_s : float }

let host_cores () = Domain.recommended_domain_count ()

let read_json_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.parse s with
  | Ok v -> Some v
  | Error e ->
    Printf.eprintf "warning: %s does not parse as JSON (%s); ignoring it\n" path e;
    None

(* The host-parallel leg of perf mode: the same 4-core hybrid sweep, but
   one compile+run cell per benchmark fanned out on the work-stealing
   pool. Unlike the serial leg this times compilation too (it happens
   inside the cell), so its cycles_per_sec is not comparable to the
   serial entry — the interesting trend is this entry against its own
   history and against the jobs=1 run of the same cell shape. *)
let run_parallel_sweep ~scale ~machine ~jobs () =
  let cell (b : Suite.benchmark) =
    let p = b.Suite.build ~scale () in
    let compiled = Driver.compile ~machine ~choice:`Hybrid ~check:false p in
    let m = Machine.create machine compiled.Driver.executable in
    let r = Machine.run m in
    (match r.Machine.outcome with
    | Machine.Finished -> ()
    | Machine.Out_of_cycles | Machine.Deadlock _ | Machine.Fault_limit _
    | Machine.Stopped _ ->
      failwith (b.Suite.bench_name ^ " did not finish"));
    r.Machine.cycles
  in
  let benches = Array.of_list Suite.all in
  let t0 = Unix.gettimeofday () in
  let cycles = Pool.parallel_map ~jobs cell benches in
  let host = Unix.gettimeofday () -. t0 in
  let total = Array.fold_left ( + ) 0 cycles in
  Printf.printf
    "  parallel sweep (-j %d): %10d cycles %8.3fs %12.0f cyc/s (compile included)\n%!"
    jobs total host
    (float_of_int total /. host);
  Json.Obj
    [
      ("mode", Json.Str "sweep-parallel");
      ("scale", Json.Float scale);
      ("n_cores", Json.Int 4);
      ("jobs", Json.Int jobs);
      ("host_cores", Json.Int (host_cores ()));
      ("includes_compile", Json.Bool true);
      ("total_cycles", Json.Int total);
      ("total_host_s", Json.Float host);
      ("cycles_per_sec", Json.Float (float_of_int total /. host));
    ]

(* Fuzz-campaign throughput, jobs=1 vs -j N over the same cell set: the
   ratio is the pool's real-world win (the acceptance metric from
   DESIGN.md 15 — about linear up to the physical core count). *)
let run_fuzz_throughput ~jobs () =
  let count = 32 and seed = 7 in
  let time j =
    let t0 = Unix.gettimeofday () in
    let r =
      Campaign.run ~jobs:j ~minimize_findings:false
        ~log:(fun _ -> ())
        ~seed ~count ()
    in
    (Unix.gettimeofday () -. t0, r.Campaign.r_runs)
  in
  let serial_s, runs = time 1 in
  let par_s, _ = time jobs in
  let speedup = serial_s /. par_s in
  Printf.printf
    "  fuzz throughput: %d programs (%d sims) %8.3fs at -j 1, %8.3fs at -j %d \
     (%.2fx)\n%!"
    count runs serial_s par_s jobs speedup;
  Json.Obj
    [
      ("mode", Json.Str "fuzz");
      ("jobs", Json.Int jobs);
      ("host_cores", Json.Int (host_cores ()));
      ("programs", Json.Int count);
      ("simulations", Json.Int runs);
      ("serial_host_s", Json.Float serial_s);
      ("parallel_host_s", Json.Float par_s);
      ("programs_per_sec", Json.Float (float_of_int count /. par_s));
      ("speedup_vs_serial", Json.Float speedup);
    ]

let run_perf ~scale ~baseline ~jobs () =
  let machine = Config.default ~n_cores:4 in
  Printf.printf
    "perf: 4-core hybrid sweep over %d workloads (scale %.2f, fast_forward %b)\n%!"
    (List.length Suite.all) scale machine.Config.fast_forward;
  let rows =
    List.map
      (fun (b : Suite.benchmark) ->
        let p = b.Suite.build ~scale () in
        let compiled = Driver.compile ~machine ~choice:`Hybrid ~check:false p in
        let m = Machine.create machine compiled.Driver.executable in
        let t0 = Unix.gettimeofday () in
        let r = Machine.run m in
        let host = Unix.gettimeofday () -. t0 in
        (match r.Machine.outcome with
        | Machine.Finished -> ()
        | Machine.Out_of_cycles | Machine.Deadlock _ | Machine.Fault_limit _
        | Machine.Stopped _ ->
          Printf.eprintf "perf: %s did not finish\n" b.Suite.bench_name;
          exit 1);
        let row =
          { pw_bench = b.Suite.bench_name; pw_cycles = r.Machine.cycles; pw_host_s = host }
        in
        Printf.printf "  %-16s %10d cycles %8.3fs %12.0f cyc/s\n%!" row.pw_bench
          row.pw_cycles row.pw_host_s
          (float_of_int row.pw_cycles /. row.pw_host_s);
        row)
      Suite.all
  in
  let total_cycles = List.fold_left (fun a r -> a + r.pw_cycles) 0 rows in
  let total_host = List.fold_left (fun a r -> a +. r.pw_host_s) 0. rows in
  let cps = float_of_int total_cycles /. total_host in
  Printf.printf "  %-16s %10d cycles %8.3fs %12.0f cyc/s\n" "TOTAL" total_cycles
    total_host cps;
  let entry =
    Json.Obj
      [
        ("mode", Json.Str "sweep");
        ("scale", Json.Float scale);
        ("n_cores", Json.Int 4);
        ("jobs", Json.Int 1);
        ("host_cores", Json.Int (host_cores ()));
        ("fast_forward", Json.Bool machine.Config.fast_forward);
        ("total_cycles", Json.Int total_cycles);
        ("total_host_s", Json.Float total_host);
        ("cycles_per_sec", Json.Float cps);
        ( "workloads",
          Json.List
            (List.map
               (fun r ->
                 Json.Obj
                   [
                     ("bench", Json.Str r.pw_bench);
                     ("cycles", Json.Int r.pw_cycles);
                     ("host_s", Json.Float r.pw_host_s);
                     ( "cycles_per_sec",
                       Json.Float (float_of_int r.pw_cycles /. r.pw_host_s) );
                   ])
               rows) );
      ]
  in
  let par_entry = run_parallel_sweep ~scale ~machine ~jobs () in
  let fuzz_entry = run_fuzz_throughput ~jobs () in
  let entries = [ entry; par_entry; fuzz_entry ] in
  let prior =
    if Sys.file_exists "PERF.json" then
      match read_json_file "PERF.json" with
      | Some v ->
        Option.value ~default:[]
          (Option.bind (Json.member "series" v) Json.to_list_opt)
      | None -> []
    else []
  in
  Json.write_file "PERF.json" (Json.Obj [ ("series", Json.List (prior @ entries)) ]);
  Printf.printf "wrote PERF.json (%d series entries)\n"
    (List.length prior + List.length entries);
  match baseline with
  | None -> ()
  | Some path -> (
    match read_json_file path with
    | None ->
      Printf.eprintf "perf: cannot read baseline %s\n" path;
      exit 1
    | Some v -> (
      match Option.bind (Json.member "cycles_per_sec" v) Json.to_float_opt with
      | None ->
        Printf.eprintf "perf: baseline %s has no cycles_per_sec\n" path;
        exit 1
      | Some base ->
        let floor = 0.7 *. base in
        Printf.printf "baseline %s: %.0f cyc/s (floor %.0f, measured %.0f)\n" path
          base floor cps;
        if cps < floor then begin
          Printf.eprintf
            "perf: throughput regression — %.0f cyc/s is more than 30%% below \
             the %.0f cyc/s baseline\n"
            cps base;
          exit 1
        end))

(* --- Bechamel: wall-clock cost of each figure's pipeline ------------------- *)

(* parallel_map overhead on no-op cells: what the pool itself costs —
   task publication, stealing, wakeup and frontier bookkeeping with zero
   useful work per cell. The jobs=1 entry is the serial-path floor. *)
let pool_input = Array.init 256 Fun.id

let bechamel_tests =
  let open Bechamel in
  let slice = [ "cjpeg" ] in
  let pool_group =
    Test.make_grouped ~name:"pool"
      [
        Test.make ~name:"noop-j1"
          (Staged.stage (fun () -> Pool.parallel_map ~jobs:1 Fun.id pool_input));
        Test.make ~name:"noop-j4"
          (Staged.stage (fun () -> Pool.parallel_map ~jobs:4 Fun.id pool_input));
      ]
  in
  let figures_group =
    Test.make_grouped ~name:"figures"
    [
      Test.make ~name:"fig3" (Staged.stage (fun () -> E.fig3 ~scale:0.2 ~benches:slice ()));
      Test.make ~name:"fig10" (Staged.stage (fun () -> E.fig10 ~scale:0.2 ~benches:slice ()));
      Test.make ~name:"fig11" (Staged.stage (fun () -> E.fig11 ~scale:0.2 ~benches:slice ()));
      Test.make ~name:"fig12" (Staged.stage (fun () -> E.fig12 ~scale:0.2 ~benches:slice ()));
      Test.make ~name:"fig13" (Staged.stage (fun () -> E.fig13 ~scale:0.2 ~benches:slice ()));
      Test.make ~name:"fig14" (Staged.stage (fun () -> E.fig14 ~scale:0.2 ~benches:slice ()));
      Test.make ~name:"micro" (Staged.stage (fun () -> E.micro ~scale:0.2 ()));
      (* The causal-profiler pipeline end to end: hooks attached, run,
         critical-path walk and blame report. Compared against fig13 (same
         workload, hooks detached) this isolates the recording+walk cost. *)
      Test.make ~name:"blame"
        (Staged.stage (fun () ->
             let machine = Config.default ~n_cores:4 in
             let b = List.find (fun b -> b.Suite.bench_name = "cjpeg") Suite.all in
             let p = b.Suite.build ~scale:0.2 () in
             let compiled = Driver.compile ~machine ~choice:`Hybrid ~check:false p in
             let m = Machine.create machine compiled.Driver.executable in
             let blame = Blame.attach m compiled in
             let _ = Machine.run m in
             Critpath.report ~bench:"cjpeg" ~strategy:"hybrid"
               (Critpath.compute blame)));
    ]
  in
  Test.make_grouped ~name:"bench" [ figures_group; pool_group ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  line ();
  print_endline
    "Bechamel: time per figure pipeline (compile + simulate, cjpeg slice at scale 0.2)";
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances bechamel_tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est /. 1e6) :: !rows
      | Some _ | None -> ())
    results;
  List.iter
    (fun (name, ms) -> Printf.printf "  %-24s %10.3f ms/run\n" name ms)
    (List.sort compare !rows);
  print_newline ()

let modes = [ "quick"; "bechamel"; "ablations"; "json"; "perf" ]

(* Strict argument parsing: an unknown figure or mode name is an error, not
   a silent no-op (a typo like "fig12 " used to run the whole suite). *)
let parse_args args =
  let rec go scale baseline jobs acc = function
    | [] -> (scale, baseline, jobs, List.rev acc)
    | "--scale" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f when f > 0. -> go (Some f) baseline jobs acc rest
      | Some _ | None ->
        Printf.eprintf "bad --scale value: %s\n" v;
        exit 2)
    | [ "--scale" ] ->
      Printf.eprintf "--scale needs a value\n";
      exit 2
    | "--baseline" :: path :: rest -> go scale (Some path) jobs acc rest
    | [ "--baseline" ] ->
      Printf.eprintf "--baseline needs a path\n";
      exit 2
    | ("-j" | "--jobs") :: v :: rest -> (
      match int_of_string_opt v with
      | Some j when j >= 1 -> go scale baseline (Some j) acc rest
      | Some _ | None ->
        Printf.eprintf "bad --jobs value: %s\n" v;
        exit 2)
    | [ ("-j" | "--jobs") ] ->
      Printf.eprintf "--jobs needs a value\n";
      exit 2
    | a :: rest when List.mem a figures || List.mem a modes ->
      go scale baseline jobs (a :: acc) rest
    | a :: _ ->
      Printf.eprintf
        "unknown argument: %s\n  figures: %s\n  modes: %s\n  options: --scale F \
         --baseline PERF_ENTRY.json -j/--jobs N\n"
        a (String.concat " " figures) (String.concat " " modes);
      exit 2
  in
  go None None None [] args

let () =
  let raw = List.tl (Array.to_list Sys.argv) in
  let scale_override, baseline, jobs_override, args = parse_args raw in
  let default_scale = if List.mem "quick" args then 0.25 else 1.0 in
  let scale = Option.value scale_override ~default:default_scale in
  (* -j N, else VOLTRON_JOBS, else every recommended domain. jobs=1 is
     the bit-identical serial reference, like the simulator CLI. *)
  let jobs = match jobs_override with Some j -> j | None -> Pool.default_jobs () in
  let wanted = List.filter (fun a -> List.mem a figures) args in
  let t0 = Unix.gettimeofday () in
  if List.mem "perf" args then run_perf ~scale ~baseline ~jobs ()
  else if List.mem "json" args then run_json ~scale ~jobs wanted
  else if args = [ "bechamel" ] then run_bechamel ()
  else if args = [ "ablations" ] then run_ablations ~scale ()
  else begin
    let wanted = if wanted = [] then figures else wanted in
    Printf.printf
      "Voltron evaluation harness — reproducing the paper's figures (scale %.2f)\n"
      scale;
    List.iter (run_figure ~scale ~jobs) wanted;
    if not (List.mem "quick" args) then begin
      run_ablations ~scale ();
      run_bechamel ()
    end
  end;
  line ();
  Printf.printf "total harness time: %.1fs\n" (Unix.gettimeofday () -. t0)
