(* A tour of the architecture's mechanisms on a hand-assembled program —
   no compiler involved. Builds machine code directly against the ISA:
   core 0 spawns a worker, they enter coupled mode, exchange a value over
   the direct-mode network with a same-cycle PUT/GET, broadcast a branch
   condition with BCAST/GETB, drop back to decoupled mode, and finish with
   a queue-mode SEND/RECV. Instructive to read alongside paper §3.

     dune exec examples/modes_tour.exe *)

module Inst = Voltron_isa.Inst
module Image = Voltron_isa.Image
module Program = Voltron_isa.Program
module Machine = Voltron_machine.Machine
module Config = Voltron_machine.Config

let assemble rows =
  let b = Image.builder () in
  List.iter
    (fun (label, bundle) ->
      (match label with Some l -> Image.place_label b l | None -> ());
      Image.emit b bundle)
    rows;
  Image.finish b

let reg r = Inst.Reg r
let imm i = Inst.Imm i

let master =
  assemble
    [
      (* Wake the worker, then rendezvous at the coupled-mode barrier. *)
      (None, [ Inst.Spawn { target = 1; entry = "worker" } ]);
      (None, [ Inst.Mode_switch Inst.Coupled ]);
      (* Lock-step region: r1 crosses to the worker in one cycle. *)
      (None, [ Inst.Mov { dst = 1; src = imm 21 } ]);
      (None, [ Inst.Put { dir = Inst.East; src = reg 1 } ]);
      (* Distributed branch: compute the condition here, broadcast it;
         both cores take the same branch in the same cycle. *)
      (None, [ Inst.Cmp { op = Inst.Gt; dst = 2; src1 = reg 1; src2 = imm 10 } ]);
      (None, [ Inst.Pbr { btr = 0; target = "join0" } ]);
      (None, [ Inst.Bcast { src = reg 2 } ]);
      (None, [ Inst.Nop ]);
      (None, [ Inst.Br { btr = 0; pred = Some (reg 2); invert = false } ]);
      (None, [ Inst.Mov { dst = 9; src = imm 999 } ] (* skipped *));
      (Some "join0", [ Inst.Mode_switch Inst.Decoupled ]);
      (* Asynchronous epilogue: collect the worker's result. *)
      (None, [ Inst.Recv { sender = 1; dst = 3; kind = Inst.Rv_data } ]);
      (None, [ Inst.Store { base = imm 0; offset = imm 0; src = reg 3 } ]);
      (None, [ Inst.Halt ]);
    ]

let worker =
  assemble
    [
      (Some "worker", [ Inst.Mode_switch Inst.Coupled ]);
      (None, [ Inst.Nop ]);
      (* Same cycle as the master's PUT: the direct-mode move. *)
      (None, [ Inst.Get { dir = Inst.West; dst = 5 } ]);
      (None, [ Inst.Alu { op = Inst.Mul; dst = 6; src1 = reg 5; src2 = imm 2 } ]);
      (None, [ Inst.Pbr { btr = 0; target = "join1" } ]);
      (None, [ Inst.Nop ]);
      (None, [ Inst.Getb { dst = 7 } ]);
      (None, [ Inst.Br { btr = 0; pred = Some (reg 7); invert = false } ]);
      (None, [ Inst.Mov { dst = 6; src = imm 0 } ] (* skipped *));
      (Some "join1", [ Inst.Mode_switch Inst.Decoupled ]);
      (None, [ Inst.Send { target = 0; src = reg 6 } ]);
      (None, [ Inst.Sleep ]);
    ]

let () =
  let prog = Program.make ~images:[| master; worker |] ~mem_size:64 ~mem_init:[] in
  let machine = Machine.create (Config.default ~n_cores:2) prog in
  let result = Machine.run machine in
  (match result.Machine.outcome with
  | Machine.Finished -> ()
  | Machine.Out_of_cycles -> failwith "ran out of cycles"
  | Machine.Deadlock d | Machine.Fault_limit d | Machine.Stopped d ->
    failwith (Machine.diagnosis_to_string d));
  let answer = Voltron_mem.Memory.read (Machine.memory machine) 0 in
  Printf.printf "finished in %d cycles; mem[0] = %d (expected 42)\n"
    result.Machine.cycles answer;
  let st = Machine.stats machine in
  Printf.printf "coupled cycles %d, decoupled cycles %d, mode switches %d\n"
    st.Voltron_machine.Stats.coupled_cycles
    st.Voltron_machine.Stats.decoupled_cycles
    st.Voltron_machine.Stats.mode_switches;
  assert (answer = 42)
