; A hand-written two-core Voltron program exercising both execution modes
; (the assembly twin of examples/modes_tour.ml). Core 0 spawns a worker,
; both enter coupled mode, a value crosses the direct-mode network with a
; same-cycle PUT/GET, a branch condition is broadcast, and the result
; returns over the queue network after both drop back to decoupled mode.
;
;     dune exec bin/voltron_sim.exe -- asm --file examples/programs/modes_tour.s --cores 2

.memory 64

=== core 0 ===
    spawn c1, worker
    mode_switch coupled
    mov r1 = #21
    put.e r1
    cmp.gt r2 = r1, #10
    pbr b0 = join0
    bcast r2
    nop
    br b0 if r2
    mov r9 = #999          ; skipped by the taken branch
join0:
    mode_switch decoupled
    recv r3 = c1
    store [#0 + #0] = r3
    halt

=== core 1 ===
worker:
    mode_switch coupled
    nop
    get.w r5
    mul r6 = r5, #2
    pbr b0 = join1
    nop
    getb r7
    br b0 if r7
    mov r6 = #0            ; skipped by the taken branch
join1:
    mode_switch decoupled
    send c0, r6
    sleep
