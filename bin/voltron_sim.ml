(* Command-line driver: run a workload on a simulated Voltron, inspect the
   compiler's plan, statically check the generated code, or disassemble it.

     voltron_sim run --bench 164.gzip --cores 4 --strategy hybrid
     voltron_sim plan --bench cjpeg --cores 4
     voltron_sim profile --bench 164.gzip --cores 4
     voltron_sim check --all --cores 4
     voltron_sim disasm --bench micro:gsm_llp --cores 2 --strategy llp
     voltron_sim list *)

module Suite = Voltron_workloads.Suite
module Stats = Voltron_machine.Stats
module Machine = Voltron_machine.Machine
module Select = Voltron_compiler.Select
module Driver = Voltron_compiler.Driver
module Config = Voltron_machine.Config
module Check = Voltron_check.Check
module Json = Voltron_obs.Json
module Metrics = Voltron_obs.Metrics
module Sanity = Voltron_sanity.Sanity
module Absint = Voltron_absint.Absint
module Estimate = Voltron_compiler.Estimate
module Codegen = Voltron_compiler.Codegen
module Region_profile = Voltron_obs.Region_profile
module Blame = Voltron_obs.Blame
module Critpath = Voltron_obs.Critpath
module Coherence = Voltron_mem.Coherence

let print_diags oc diags =
  let ppf = Format.formatter_of_out_channel oc in
  List.iter (fun d -> Format.fprintf ppf "  %a@." Check.pp_diag d) diags;
  Format.pp_print_flush ppf ()

(* Run [f], rendering a static-checker failure as a normal CLI error. *)
let or_check_failure f =
  try f ()
  with Check.Failed diags ->
    prerr_endline "static check failed:";
    print_diags stderr diags;
    exit 1

let program_of_name name scale =
  match name with
  | "micro:gsm_llp" -> Suite.micro_gsm_llp ~scale ()
  | "micro:gzip_strands" -> Suite.micro_gzip_strands ~scale ()
  | "micro:gsm_ilp" -> Suite.micro_gsm_ilp ~scale ()
  | _ -> (
    match Suite.by_name name with
    | b -> b.Suite.build ~scale ()
    | exception Not_found ->
      Printf.eprintf
        "unknown benchmark %s (try `voltron_sim list`, or micro:gsm_llp, \
         micro:gzip_strands, micro:gsm_ilp)\n"
        name;
      exit 2)

(* Either a named benchmark or a VC source file. *)
let resolve_program bench file scale =
  match (bench, file) with
  | Some name, None -> (name, program_of_name name scale)
  | None, Some path -> (
    match Voltron_lang.Frontend.parse_file path with
    | p -> (path, p)
    | exception e -> (
      match Voltron_lang.Frontend.error_to_string e with
      | Some msg ->
        Printf.eprintf "%s: %s\n" path msg;
        exit 2
      | None -> raise e))
  | Some _, Some _ ->
    Printf.eprintf "--bench and --file are mutually exclusive\n";
    exit 2
  | None, None ->
    Printf.eprintf "one of --bench or --file is required\n";
    exit 2

let choice_of_string = function
  | "seq" -> `Seq
  | "ilp" -> `Ilp
  | "tlp" -> `Tlp
  | "llp" -> `Llp
  | "hybrid" -> `Hybrid
  | s ->
    Printf.eprintf "unknown strategy %s (seq|ilp|tlp|llp|hybrid)\n" s;
    exit 2

open Cmdliner

let bench_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "bench" ] ~docv:"NAME" ~doc:"Benchmark name (see $(b,list)).")

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"FILE.vc" ~doc:"Compile a VC source file instead.")

let cores_arg =
  Arg.(value & opt int 4 & info [ "c"; "cores" ] ~docv:"N" ~doc:"Number of cores.")

let strategy_arg =
  Arg.(
    value
    & opt string "hybrid"
    & info [ "s"; "strategy" ] ~docv:"S" ~doc:"seq, ilp, tlp, llp or hybrid.")

let scale_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "scale" ] ~docv:"F" ~doc:"Workload size multiplier.")

let unroll_arg =
  Arg.(
    value & opt int 1
    & info [ "unroll" ] ~docv:"U" ~doc:"Unroll counted loops by this factor.")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:"Apply the HIR optimisation passes (if-conversion, DCE).")

let apply_opts optimize unroll p =
  if (not optimize) && unroll <= 1 then p
  else
    let base =
      if optimize then Voltron_compiler.Opt.default else Voltron_compiler.Opt.none
    in
    Voltron_compiler.Opt.program
      ~options:{ base with Voltron_compiler.Opt.unroll = max 1 unroll }
      p

let string_of_choice = function
  | `Seq -> "seq"
  | `Ilp -> "ilp"
  | `Tlp -> "tlp"
  | `Llp -> "llp"
  | `Hybrid -> "hybrid"

let short_outcome = function
  | Voltron.Run.Completed -> "completed"
  | Voltron.Run.Cycle_capped -> "cycle cap"
  | Voltron.Run.Deadlocked _ -> "deadlock"
  | Voltron.Run.Fault_limited _ -> "fault limit"
  | Voltron.Run.Sanity_stopped _ -> "sanitizer stop"

let coherence_of_string s =
  match Coherence.protocol_of_string s with
  | Ok p -> p
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2

let coherence_arg =
  Arg.(
    value & opt string "snoop"
    & info [ "coherence" ] ~docv:"P"
        ~doc:
          "Coherence backend: $(b,snoop) (the default bus-snooped MOESI \
           hierarchy) or $(b,directory) (home-banked MESI directory — \
           distributed serialization that scales past the shared bus at \
           16+ cores).")

let sanitize_arg =
  Arg.(
    value
    & opt ~vopt:(Some "abort") (some string) None
    & info [ "sanitize" ] ~docv:"POLICY"
        ~doc:
          "Attach the runtime invariant sanitizer: per-cycle coherence, \
           network-conservation and TM-rollback oracles. $(docv) is \
           $(b,report) (log and continue), $(b,abort) (stop at the \
           violation; the default when $(docv) is omitted) or $(b,recover) \
           (stop and degrade through the resilience ladder).")

let sanitize_of_flag = function
  | None -> None
  | Some s -> (
    match Sanity.policy_of_string s with
    | Ok p -> Some p
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2)

let fault_rate_arg =
  Arg.(
    value & opt float 0.0
    & info [ "fault-rate" ] ~docv:"R"
        ~doc:
          "Inject every fault kind (message drop/corrupt, memory bit flip, \
           spurious TM abort, core stall) at this rate; 0 disables \
           injection.")

let fault_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "fault-seed" ] ~docv:"S"
        ~doc:"Seed for the fault injector (a fixed seed reproduces the run).")

let fault_threshold_arg =
  Arg.(
    value & opt int 0
    & info [ "fault-threshold" ] ~docv:"N"
        ~doc:
          "Degrade to a simpler execution mode (hybrid -> decoupled-only -> \
           serial) after this many injected faults; 0 never degrades.")

let no_check_arg =
  Arg.(
    value & flag
    & info [ "no-check" ]
        ~doc:
          "Skip the static cross-core checker that normally gates \
           compilation (channel balance, barrier alignment, PUT/GET \
           pairing, deadlock and race detection).")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the result as machine-readable JSON to $(docv).")

let no_profile_arg =
  Arg.(
    value & flag
    & info [ "no-profile" ]
        ~doc:
          "Select strategies from the abstract interpreter's synthesised \
           profile (static trip counts, footprint/stride miss model, \
           conservative cross-iteration dependences) instead of a \
           profiling run — no program execution before codegen.")

let profile_for ~no_profile p =
  if no_profile then Some (Voltron_analysis.Profile.of_static p) else None

module Pool = Voltron_pool.Pool

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the sweep's independent cells (work-stealing \
           pool). 0 (the default) means $(b,VOLTRON_JOBS) if set, else the \
           host's core count; 1 runs the bit-identical serial reference \
           path. Output is in cell order and byte-identical for every \
           $(docv).")

let resolve_jobs j = if j <= 0 then Pool.default_jobs () else j

(* Sweep cells run on arbitrary domains, so they render their report into
   a buffer; the pool's ordered completion frontier prints each cell's
   chunk in cell order, keeping the transcript independent of [jobs]. *)
let emit_chunk (chunk : string) =
  print_string chunk;
  flush stdout

(* Shared by run's normal and --json output: the pieces that only exist on
   some outcomes. *)
let outcome_json (m : Voltron.Run.measurement) =
  let diagnosis =
    match m.Voltron.Run.outcome with
    | Voltron.Run.Deadlocked d
    | Voltron.Run.Fault_limited d
    | Voltron.Run.Sanity_stopped d ->
      [ ("diagnosis", Voltron_obs.Diag.diagnosis_to_json d) ]
    | Voltron.Run.Completed | Voltron.Run.Cycle_capped -> []
  in
  let sanitizer =
    match m.Voltron.Run.sanity with
    | Some r -> [ ("sanitizer", Sanity.report_to_json r) ]
    | None -> []
  in
  (("outcome", Json.Str (short_outcome m.Voltron.Run.outcome)) :: diagnosis)
  @ sanitizer

let sanity_line (m : Voltron.Run.measurement) =
  match m.Voltron.Run.sanity with
  | None -> ()
  | Some r -> Printf.printf "sanitizer  : %s\n" (Sanity.report_to_string r)

let sanity_clean (m : Voltron.Run.measurement) =
  match m.Voltron.Run.sanity with None -> true | Some r -> Sanity.clean r

(* run --all: the whole workload suite (plus the micro kernels) under every
   strategy at the given core count, one line per cell — the CI's sanitized
   sweep entry point. *)
let run_sweep ~cores ~coherence ~scale ~check ~sanitize ~no_profile ~jobs () =
  let targets =
    (List.map (fun (b : Suite.benchmark) -> b.Suite.bench_name) Suite.all
    @ [ "micro:gsm_llp"; "micro:gzip_strands"; "micro:gsm_ilp" ])
    |> List.map (fun n -> (n, program_of_name n scale))
  in
  let strategies = [ "seq"; "ilp"; "tlp"; "llp"; "hybrid" ] in
  (* One cell per benchmark: the profile is collected once and shared by
     the five strategy runs, all inside the cell. *)
  let cell (name, p) =
    let buf = Buffer.create 512 in
    let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let failures = ref 0 in
    let profile = profile_for ~no_profile p in
    List.iter
      (fun s ->
        let choice = choice_of_string s in
        let m =
          Voltron.Run.run ~choice ~check ?profile ?sanitize
            ~tweak:(Config.with_coherence coherence) ~n_cores:cores p
        in
        let ok =
          m.Voltron.Run.outcome = Voltron.Run.Completed
          && m.Voltron.Run.verified && sanity_clean m
        in
        if not ok then incr failures;
        out "%-24s %-7s %-10d %s%s%s\n" name s
          m.Voltron.Run.cycles
          (short_outcome m.Voltron.Run.outcome)
          (if m.Voltron.Run.verified then "" else ", NOT VERIFIED")
          (match m.Voltron.Run.sanity with
          | None -> ""
          | Some r when Sanity.clean r -> ", sanitizer clean"
          | Some r ->
            Printf.sprintf ", SANITIZER: %d violation(s)" r.Sanity.r_total);
        match m.Voltron.Run.sanity with
        | Some r when not (Sanity.clean r) ->
          List.iter
            (fun v -> out "    %s\n" (Sanity.violation_to_string v))
            r.Sanity.r_recorded
        | _ -> ())
      strategies;
    (Buffer.contents buf, !failures)
  in
  let per_target =
    Pool.parallel_map_emit ~jobs
      ~emit:(fun _ (chunk, _) -> emit_chunk chunk)
      cell (Array.of_list targets)
  in
  let failures = Array.fold_left (fun acc (_, f) -> acc + f) 0 per_target in
  if failures > 0 then begin
    Printf.eprintf "%d failing cell(s) in the sweep\n" failures;
    exit 1
  end

let run_cmd =
  let run bench file all cores coherence_s strategy scale optimize unroll
      fault_rate fault_seed fault_threshold no_check no_profile sanitize_s
      json_out jobs =
    or_check_failure @@ fun () ->
    let check = not no_check in
    let sanitize = sanitize_of_flag sanitize_s in
    let coherence = coherence_of_string coherence_s in
    if all then
      run_sweep ~cores ~coherence ~scale ~check ~sanitize ~no_profile
        ~jobs:(resolve_jobs jobs) ()
    else begin
      let name, p = resolve_program bench file scale in
      let p = apply_opts optimize unroll p in
      let choice = choice_of_string strategy in
      let profile = profile_for ~no_profile p in
      let base = Voltron.Run.baseline_cycles ?profile p in
      Printf.printf "benchmark  : %s\n" name;
      Printf.printf "strategy   : %s on %d cores%s\n" strategy cores
        (if no_profile then " (static profile)" else "");
      (* Only a non-default backend prints a header line, keeping default
         transcripts byte-identical to the snoop-only harness. *)
      if coherence <> Coherence.Snoop then
        Printf.printf "coherence  : %s\n" (Coherence.protocol_name coherence);
      (match sanitize with
      | None -> ()
      | Some policy ->
        Printf.printf "sanitize   : %s\n" (Sanity.policy_name policy));
      let m =
        if fault_rate > 0. then begin
          let tweak c =
            Config.with_coherence coherence
              {
                c with
                Config.fault =
                  Voltron_fault.Fault.uniform ~seed:fault_seed
                    ~degrade_threshold:fault_threshold ~rate:fault_rate ();
              }
          in
          let r =
            Voltron.Run.run_resilient ~choice ~check ?profile ~tweak ?sanitize
              ~n_cores:cores p
          in
          Printf.printf "faults     : every kind at rate %g, seed %d%s\n"
            fault_rate fault_seed
            (if fault_threshold > 0 then
               Printf.sprintf ", degrade after %d" fault_threshold
             else "");
          List.iter
            (fun (a : Voltron.Run.attempt) ->
              Printf.printf "  rung     : %-14s %s on %d cores -> %s\n"
                (Voltron_fault.Fault.level_name a.Voltron.Run.a_level)
                (string_of_choice a.Voltron.Run.a_choice)
                a.Voltron.Run.a_n_cores
                (short_outcome a.Voltron.Run.a_measurement.Voltron.Run.outcome))
            r.Voltron.Run.attempts;
          r.Voltron.Run.final
        end
        else
          Voltron.Run.run ~choice ~check ?profile ?sanitize
            ~tweak:(Config.with_coherence coherence)
            ~sanitize_log:prerr_endline ~n_cores:cores p
      in
      let write_json () =
        match json_out with
        | None -> ()
        | Some path ->
          let metrics =
            Metrics.of_stats ~label:name ~cycles:m.Voltron.Run.cycles
              ~coherence:m.Voltron.Run.coh_stats ~network:m.Voltron.Run.net_stats
              m.Voltron.Run.stats
          in
          Json.write_file path
            (Json.Obj
               ([
                  ("benchmark", Json.Str name);
                  ("strategy", Json.Str strategy);
                  ("cores", Json.Int cores);
                  ("coherence", Json.Str (Coherence.protocol_name coherence));
                  ("baseline_cycles", Json.Int base);
                  ( "speedup",
                    Json.Float
                      (float_of_int base /. float_of_int m.Voltron.Run.cycles)
                  );
                  ("verified", Json.Bool m.Voltron.Run.verified);
                ]
               @ outcome_json m
               @ [ ("metrics", Metrics.to_json metrics) ]));
          Printf.printf "json       : wrote %s\n" path
      in
      (match m.Voltron.Run.outcome with
      | Voltron.Run.Completed -> ()
      | o ->
        Printf.eprintf "%s\n" (Voltron.Run.outcome_to_string o);
        sanity_line m;
        write_json ();
        exit 1);
      Printf.printf "verified   : %b (memory matches the reference interpreter)\n"
        m.Voltron.Run.verified;
      sanity_line m;
      Printf.printf "baseline   : %d cycles (1 core, sequential)\n" base;
      Printf.printf "cycles     : %d\n" m.Voltron.Run.cycles;
      Printf.printf "speedup    : %.2fx\n"
        (float_of_int base /. float_of_int m.Voltron.Run.cycles);
      Stats.pp_summary ~coherence:m.Voltron.Run.coh_stats
        ~network:m.Voltron.Run.net_stats Format.std_formatter m.Voltron.Run.stats;
      Format.printf "%a@." Voltron_machine.Energy.pp m.Voltron.Run.energy;
      write_json ();
      if not (m.Voltron.Run.verified && sanity_clean m) then exit 1
    end
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Sweep the whole workload suite (and the micro kernels) under \
             every strategy at the given core count instead of one \
             benchmark; exits 1 if any cell fails to complete, verify or \
             pass the sanitizer.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and simulate a benchmark or VC file.")
    Term.(
      const run $ bench_arg $ file_arg $ all_arg $ cores_arg $ coherence_arg
      $ strategy_arg $ scale_arg $ optimize_arg $ unroll_arg $ fault_rate_arg
      $ fault_seed_arg $ fault_threshold_arg $ no_check_arg $ no_profile_arg
      $ sanitize_arg $ json_arg $ jobs_arg)

let plan_cmd =
  let plan bench file cores scale no_profile =
    let _, p = resolve_program bench file scale in
    let machine = Config.default ~n_cores:cores in
    let profile =
      if no_profile then Voltron_analysis.Profile.of_static p
      else Voltron_analysis.Profile.collect p
    in
    let regions = Select.plan ~machine ~profile `Hybrid p in
    if no_profile then print_endline "(selection from static profile)";
    Voltron_util.Table.print
      ~header:[ "region"; "strategy"; "dyn weight" ]
      (List.map
         (fun (r : Select.planned_region) ->
           [
             r.Select.pr_name;
             Select.strategy_name r.Select.pr_strategy;
             string_of_int r.Select.pr_weight;
           ])
         regions)
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Show the hybrid compiler's per-region strategy choices.")
    Term.(const plan $ bench_arg $ file_arg $ cores_arg $ scale_arg $ no_profile_arg)

let check_diag_json (d : Check.diag) =
  Json.Obj
    ([
       ( "severity",
         Json.Str
           (match d.Check.d_severity with
           | Check.Error -> "error"
           | Check.Warning -> "warning") );
     ]
    @ (match d.Check.d_loc with
      | Some l ->
        [ ("core", Json.Int l.Check.l_core); ("addr", Json.Int l.Check.l_addr) ]
      | None -> [])
    @ [ ("text", Json.Str (Check.diag_to_string d)) ])

let check_cmd =
  let check bench file all cores strategy scale json_out jobs =
    let targets =
      if all then
        List.map (fun (b : Suite.benchmark) -> b.Suite.bench_name) Suite.all
        @ [ "micro:gsm_llp"; "micro:gzip_strands"; "micro:gsm_ilp" ]
        |> List.map (fun n -> (n, program_of_name n scale))
      else [ resolve_program bench file scale ]
    in
    let strategies =
      if all then [ "seq"; "ilp"; "tlp"; "llp"; "hybrid" ] else [ strategy ]
    in
    let machine = Config.default ~n_cores:cores in
    let cell (name, p) =
      let buf = Buffer.create 256 in
      let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      let out_diags diags =
        let b = Buffer.create 128 in
        let ppf = Format.formatter_of_buffer b in
        List.iter (fun d -> Format.fprintf ppf "  %a@." Check.pp_diag d) diags;
        Format.pp_print_flush ppf ();
        Buffer.add_buffer buf b
      in
      let failures = ref 0 in
      let cells = ref [] in
      List.iter
        (fun s ->
          let choice = choice_of_string s in
          let record status diags =
            cells :=
              Json.Obj
                [
                  ("benchmark", Json.Str name);
                  ("strategy", Json.Str s);
                  ("status", Json.Str status);
                  ("diagnostics", Json.List (List.map check_diag_json diags));
                ]
              :: !cells
          in
          match Driver.compile ~machine ~choice p with
          | c ->
            if c.Driver.check_diags = [] then begin
              record "clean" [];
              out "%-24s %-7s clean\n" name s
            end
            else begin
              record "warnings" c.Driver.check_diags;
              out "%-24s %-7s %d warning(s)\n" name s
                (List.length c.Driver.check_diags);
              out_diags c.Driver.check_diags
            end
          | exception Check.Failed diags ->
            incr failures;
            record "failed" diags;
            out "%-24s %-7s FAILED\n" name s;
            out_diags diags)
        strategies;
      (Buffer.contents buf, !failures, List.rev !cells)
    in
    let per_target =
      Pool.parallel_map_emit ~jobs:(if all then resolve_jobs jobs else 1)
        ~emit:(fun _ (chunk, _, _) -> emit_chunk chunk)
        cell (Array.of_list targets)
    in
    let failures =
      Array.fold_left (fun acc (_, f, _) -> acc + f) 0 per_target
    in
    let cells =
      List.concat_map (fun (_, _, cs) -> cs) (Array.to_list per_target)
    in
    (match json_out with
    | None -> ()
    | Some path ->
      Json.write_file path
        (Json.Obj
           [
             ("cores", Json.Int cores);
             ("failures", Json.Int failures);
             ("cells", Json.List cells);
           ]);
      Printf.printf "wrote check JSON to %s\n" path);
    if failures > 0 then begin
      Printf.eprintf "%d check failure(s)\n" failures;
      exit 1
    end
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Check every benchmark (and the micro kernels) under every \
             strategy instead of one program.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically check generated code: channel balance, barrier \
          alignment, coupled PUT/GET pairing, deadlocks and data races.")
    Term.(
      const check $ bench_arg $ file_arg $ all_arg $ cores_arg $ strategy_arg
      $ scale_arg $ json_arg $ jobs_arg)

let disasm_cmd =
  let disasm bench file cores strategy scale =
    or_check_failure @@ fun () ->
    let _, p = resolve_program bench file scale in
    let machine = Config.default ~n_cores:cores in
    let compiled = Driver.compile ~machine ~choice:(choice_of_string strategy) p in
    Format.printf "%a" Voltron_isa.Program.pp compiled.Driver.executable
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble the generated per-core code.")
    Term.(const disasm $ bench_arg $ file_arg $ cores_arg $ strategy_arg $ scale_arg)

let asm_cmd =
  let asm file cores =
    let prog =
      match Voltron_isa.Asm.parse_file file with
      | p -> p
      | exception Voltron_isa.Asm.Error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" file line msg;
        exit 2
    in
    let machine = Config.default ~n_cores:cores in
    let m = Voltron_machine.Machine.create machine prog in
    let result = Voltron_machine.Machine.run m in
    (match result.Voltron_machine.Machine.outcome with
    | Voltron_machine.Machine.Finished ->
      Printf.printf "finished in %d cycles\n" result.Voltron_machine.Machine.cycles
    | Voltron_machine.Machine.Out_of_cycles ->
      Printf.eprintf "out of cycles\n";
      exit 1
    | Voltron_machine.Machine.Deadlock d ->
      Printf.eprintf "deadlock:\n%s\n"
        (Voltron_machine.Machine.diagnosis_to_string d);
      exit 1
    | Voltron_machine.Machine.Fault_limit d ->
      Printf.eprintf "fault limit reached:\n%s\n"
        (Voltron_machine.Machine.diagnosis_to_string d);
      exit 1
    | Voltron_machine.Machine.Stopped d ->
      Printf.eprintf "stopped:\n%s\n"
        (Voltron_machine.Machine.diagnosis_to_string d);
      exit 1);
    Stats.pp_summary
      ~coherence:
        (Voltron_mem.Coherence.total_stats (Voltron_machine.Machine.coherence m))
      ~network:
        (Voltron_net.Operand_network.stats (Voltron_machine.Machine.network m))
      Format.std_formatter
      (Voltron_machine.Machine.stats m);
    (* Show the first few data words, the usual place for results. *)
    let mem = Voltron_machine.Machine.memory m in
    let n = min 8 (Voltron_mem.Memory.size mem) in
    Printf.printf "mem[0..%d] =" (n - 1);
    for i = 0 to n - 1 do
      Printf.printf " %d" (Voltron_mem.Memory.read mem i)
    done;
    print_newline ()
  in
  let file_req =
    Arg.(
      required
      & opt (some string) None
      & info [ "f"; "file" ] ~docv:"FILE.s" ~doc:"Assembly source.")
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Assemble and run a hand-written Voltron program.")
    Term.(const asm $ file_req $ cores_arg)

let trace_cmd =
  let trace bench file cores strategy scale limit timeline json_out =
    or_check_failure @@ fun () ->
    let _, p = resolve_program bench file scale in
    let machine = Config.default ~n_cores:cores in
    let compiled = Driver.compile ~machine ~choice:(choice_of_string strategy) p in
    let m = Voltron_machine.Machine.create machine compiled.Driver.executable in
    let tracer = Voltron_machine.Trace.create ~limit () in
    Voltron_machine.Machine.set_tracer m tracer;
    let result = Voltron_machine.Machine.run m in
    let failed = ref false in
    (match result.Voltron_machine.Machine.outcome with
    | Voltron_machine.Machine.Finished -> ()
    | Voltron_machine.Machine.Out_of_cycles ->
      failed := true;
      prerr_endline "out of cycles"
    | Voltron_machine.Machine.Deadlock d ->
      failed := true;
      prerr_endline
        ("deadlock: " ^ Voltron_machine.Machine.diagnosis_to_string d)
    | Voltron_machine.Machine.Fault_limit d ->
      failed := true;
      prerr_endline
        ("fault limit reached: " ^ Voltron_machine.Machine.diagnosis_to_string d)
    | Voltron_machine.Machine.Stopped d ->
      failed := true;
      prerr_endline ("stopped: " ^ Voltron_machine.Machine.diagnosis_to_string d));
    Voltron_machine.Trace.report ~timeline Format.std_formatter tracer
      compiled.Driver.executable;
    (match json_out with
    | None -> ()
    | Some path ->
      Voltron_obs.Chrome_trace.write ~path ~n_cores:cores
        ~cycles:result.Voltron_machine.Machine.cycles tracer;
      Printf.printf "wrote Chrome trace to %s (open in chrome://tracing)\n" path);
    if !failed then exit 1
  in
  let limit_arg =
    Arg.(value & opt int 100_000 & info [ "limit" ] ~docv:"N" ~doc:"Events to keep.")
  in
  let timeline_arg =
    Arg.(value & opt int 60 & info [ "timeline" ] ~docv:"N" ~doc:"Events to print.")
  in
  let trace_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the events as Chrome trace-event JSON to $(docv) \
             (loadable in chrome://tracing or Perfetto).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run with a structured tracer: event timeline plus per-label hotspots.")
    Term.(
      const trace $ bench_arg $ file_arg $ cores_arg $ strategy_arg $ scale_arg
      $ limit_arg $ timeline_arg $ trace_json_arg)

let profile_cmd =
  let profile bench file cores strategy scale sample_every show_metrics
      json_out =
    or_check_failure @@ fun () ->
    let name, p = resolve_program bench file scale in
    let machine = Config.default ~n_cores:cores in
    let compiled = Driver.compile ~machine ~choice:(choice_of_string strategy) p in
    let m = Machine.create machine compiled.Driver.executable in
    let rp = Voltron_obs.Region_profile.attach m compiled in
    let sampler =
      if sample_every > 0 then
        Some (Voltron_obs.Sampler.attach ~every:sample_every m)
      else None
    in
    let result = Machine.run m in
    (match result.Machine.outcome with
    | Machine.Finished -> ()
    | Machine.Out_of_cycles ->
      Printf.eprintf "out of cycles\n";
      exit 1
    | Machine.Deadlock d ->
      Printf.eprintf "deadlock:\n%s\n" (Machine.diagnosis_to_string d);
      exit 1
    | Machine.Fault_limit d ->
      Printf.eprintf "fault limit reached:\n%s\n" (Machine.diagnosis_to_string d);
      exit 1
    | Machine.Stopped d ->
      Printf.eprintf "stopped:\n%s\n" (Machine.diagnosis_to_string d);
      exit 1);
    Printf.printf "benchmark  : %s\n" name;
    Printf.printf "strategy   : %s on %d cores\n" strategy cores;
    Printf.printf "cycles     : %d\n\n" result.Machine.cycles;
    Format.printf "%a" Voltron_obs.Region_profile.pp rp;
    (* When most core-cycles are not busy, the per-region table says where
       the waiting happened but not whom it waited on — point at the
       causal profiler, which does. *)
    let total = Region_profile.total_cycles rp in
    let busy =
      List.fold_left
        (fun acc r -> acc + r.Region_profile.r_busy)
        0 (Region_profile.rows rp)
    in
    let selector =
      match bench with Some b -> "-b " ^ b | None -> Printf.sprintf "--file %s" name
    in
    if total > 0 && 4 * (total - busy) > total then
      Printf.printf
        "note: %d%% of core-cycles are stall or idle; `voltron_sim blame %s \
         -c %d -s %s` attributes them to cross-core critical-path edges\n"
        (100 * (total - busy) / total)
        selector cores strategy;
    (match sampler with
    | None -> ()
    | Some s ->
      Format.printf "@.samples (every %d cycles):@.%a" sample_every
        Voltron_obs.Sampler.pp s);
    if show_metrics then
      Format.printf "@.metrics:@.%a" Metrics.pp (Metrics.snapshot ~label:name m);
    match json_out with
    | None -> ()
    | Some path ->
      let metrics = Metrics.snapshot ~label:name m in
      Json.write_file path
        (Json.Obj
           ([
              ("benchmark", Json.Str name);
              ("strategy", Json.Str strategy);
              ("cores", Json.Int cores);
              ("cycles", Json.Int result.Machine.cycles);
              ("regions", Voltron_obs.Region_profile.to_json rp);
              ("metrics", Metrics.to_json metrics);
            ]
           @
           match sampler with
           | None -> []
           | Some s -> [ ("samples", Voltron_obs.Sampler.to_json s) ]));
      Printf.printf "\nwrote profile JSON to %s\n" path
  in
  let sample_arg =
    Arg.(
      value & opt int 0
      & info [ "sample-every" ] ~docv:"N"
          ~doc:
            "Also record an IPC/occupancy/miss-rate time-series sample every \
             $(docv) cycles; 0 disables the sampler.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Also print the flat metrics registry (every counter and gauge).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run with per-region cycle attribution: where every core-cycle of \
          every region went (busy, each stall kind, idle), per execution mode.")
    Term.(
      const profile $ bench_arg $ file_arg $ cores_arg $ strategy_arg
      $ scale_arg $ sample_arg $ metrics_arg $ json_arg)

(* --- blame: cross-core critical path, wait-for blame, what-if ------------ *)

let run_outcome_err (result : Machine.result) =
  match result.Machine.outcome with
  | Machine.Finished -> None
  | Machine.Out_of_cycles -> Some "out of cycles"
  | Machine.Deadlock d -> Some ("deadlock:\n" ^ Machine.diagnosis_to_string d)
  | Machine.Fault_limit d ->
    Some ("fault limit reached:\n" ^ Machine.diagnosis_to_string d)
  | Machine.Stopped d -> Some ("stopped:\n" ^ Machine.diagnosis_to_string d)

let blame_cmd =
  let run_with_blame ~cores ~choice ~tweak p =
    let machine = tweak (Config.default ~n_cores:cores) in
    let compiled = Driver.compile ~machine ~choice p in
    let m = Machine.create machine compiled.Driver.executable in
    let b = Blame.attach m compiled in
    (b, Machine.run m)
  in
  let measure ~cores ~choice ~tweak p =
    let machine = tweak (Config.default ~n_cores:cores) in
    let compiled = Driver.compile ~machine ~choice p in
    let m = Machine.create machine compiled.Driver.executable in
    let result = Machine.run m in
    match result.Machine.outcome with
    | Machine.Finished -> Some result.Machine.cycles
    | _ -> None
  in
  let blame bench file cores strategy scale all top net_scale validate tm_rate
      fault_seed json_out jobs =
    or_check_failure @@ fun () ->
    let choice = choice_of_string strategy in
    (* [err] records one failure line; cells buffer these so the sweep can
       run on the pool and still report in cell order. *)
    let analyze ~err name p =
      let b, result = run_with_blame ~cores ~choice ~tweak:(fun c -> c) p in
      match run_outcome_err result with
      | Some e ->
        err (Printf.sprintf "%s: %s" name e);
        None
      | None ->
        (match Blame.coverage b with
        | Ok () -> ()
        | Error e -> err (Printf.sprintf "%s: blame recording hole: %s" name e));
        let cp = Critpath.compute b in
        let rep = Critpath.report ~bench:name ~strategy ~net_scale cp in
        if rep.Critpath.r_path <> rep.Critpath.r_cycles then
          err
            (Printf.sprintf
               "%s: critical path %d cycles does not reconcile with the \
                %d-cycle run"
               name rep.Critpath.r_path rep.Critpath.r_cycles);
        Some (rep, cp)
    in
    (* Predicted speedups come from rescaling edges along the recorded
       critical path; measured ones from reruns whose configuration actually
       changed the same way. The two agreeing is the causal claim. *)
    let validate_whatifs ~out ~err name p cp =
      let base = Critpath.total cp in
      let hop = (Config.default ~n_cores:cores).Config.net_hop_cost in
      let scaled_hop = int_of_float ((net_scale *. float_of_int hop) +. 0.5) in
      let net_row =
        let predicted = Critpath.whatif_net cp ~scale:net_scale in
        match
          measure ~cores ~choice
            ~tweak:(fun c -> { c with Config.net_hop_cost = scaled_hop })
            p
        with
        | None -> None
        | Some rerun ->
          Some
            ( Printf.sprintf "net-hop-cost %d->%d" hop scaled_hop,
              float_of_int base /. float_of_int (max 1 predicted),
              float_of_int base /. float_of_int (max 1 rerun) )
      in
      let tm_row =
        if tm_rate <= 0. then None
        else begin
          let tweak c =
            {
              c with
              Config.fault =
                {
                  Voltron_fault.Fault.disabled with
                  Voltron_fault.Fault.tm_abort_rate = tm_rate;
                  fault_seed;
                };
            }
          in
          let b_f, r_f = run_with_blame ~cores ~choice ~tweak p in
          match run_outcome_err r_f with
          | Some e ->
            err (Printf.sprintf "%s (tm injection): %s" name e);
            None
          | None ->
            let cp_f = Critpath.compute b_f in
            let injected = Critpath.total cp_f in
            let predicted = Critpath.whatif_tm cp_f in
            Some
              ( Printf.sprintf "tm-aborts %g->0" tm_rate,
                float_of_int injected /. float_of_int (max 1 predicted),
                float_of_int injected /. float_of_int base )
        end
      in
      match List.filter_map Fun.id [ net_row; tm_row ] with
      | [] -> ()
      | rows ->
        out (Printf.sprintf "\nwhat-if validation (%s):\n" name);
        out
          (Voltron_util.Table.render
             ~header:[ "class"; "predicted"; "measured"; "error" ]
             (List.map
                (fun (cls, pred, meas) ->
                  [
                    cls;
                    Printf.sprintf "x%.3f" pred;
                    Printf.sprintf "x%.3f" meas;
                    Printf.sprintf "%.1f%%"
                      (100. *. Float.abs (pred -. meas) /. meas);
                  ])
                rows)
          ^ "\n")
    in
    let write_json reports =
      match json_out with
      | None -> ()
      | Some path ->
        Json.write_file path
          (Json.Obj
             [
               ( "reports",
                 Json.List (List.map Critpath.report_to_json reports) );
             ]);
        Printf.printf "wrote blame JSON to %s\n" path
    in
    let failed = ref false in
    if all then begin
      let progs =
        List.map
          (fun (b : Suite.benchmark) ->
            (b.Suite.bench_name, b.Suite.build ~scale ()))
          Suite.all
        @ [
            ("micro:gsm_llp", Suite.micro_gsm_llp ~scale ());
            ("micro:gzip_strands", Suite.micro_gzip_strands ~scale ());
            ("micro:gsm_ilp", Suite.micro_gsm_ilp ~scale ());
          ]
      in
      let cell (name, p) =
        let out_buf = Buffer.create 256 and errs = ref [] in
        let out s = Buffer.add_string out_buf s in
        let err s = errs := s :: !errs in
        let rep =
          match analyze ~err name p with
          | None -> None
          | Some (rep, cp) ->
            if validate then validate_whatifs ~out ~err name p cp;
            Some rep
        in
        (Buffer.contents out_buf, List.rev !errs, rep)
      in
      let per_target =
        Pool.parallel_map_emit ~jobs:(resolve_jobs jobs)
          ~emit:(fun _ (chunk, errs, _) ->
            emit_chunk chunk;
            List.iter (fun e -> Printf.eprintf "%s\n" e) errs;
            if errs <> [] then failed := true)
          cell (Array.of_list progs)
      in
      let reps =
        List.filter_map (fun (_, _, rep) -> rep) (Array.to_list per_target)
      in
      let wf (r : Critpath.report) i =
        match List.nth_opt r.Critpath.r_whatif i with
        | Some w -> Printf.sprintf "x%.2f" w.Critpath.w_speedup
        | None -> "-"
      in
      print_endline
        (Voltron_util.Table.render
           ~header:
             [ "bench"; "cycles"; "path"; "top edge"; "net what-if"; "tm what-if" ]
           (List.map
              (fun (r : Critpath.report) ->
                let top_edge =
                  match r.Critpath.r_rows with
                  | [] -> "-"
                  | b :: _ ->
                    Printf.sprintf "%s %s (%d%%)"
                      (Blame.kind_label b.Critpath.b_kind)
                      b.Critpath.b_region
                      (100 * b.Critpath.b_cycles / max 1 r.Critpath.r_cycles)
                in
                [
                  r.Critpath.r_bench;
                  string_of_int r.Critpath.r_cycles;
                  (if r.Critpath.r_path = r.Critpath.r_cycles then "exact"
                   else "MISMATCH");
                  top_edge;
                  wf r 0;
                  wf r 1;
                ])
              reps));
      write_json reps
    end
    else begin
      let name, p = resolve_program bench file scale in
      let err s =
        Printf.eprintf "%s\n" s;
        failed := true
      in
      match analyze ~err name p with
      | None -> ()
      | Some (rep, cp) ->
        Format.printf "%a" (Critpath.pp_report ~top) rep;
        if validate then validate_whatifs ~out:print_string ~err name p cp;
        write_json [ rep ]
    end;
    if !failed then exit 1
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Analyze the whole workload suite (and the micro kernels) \
             instead of one benchmark; exits 1 if any run fails to complete \
             or reconcile.")
  in
  let top_arg =
    Arg.(
      value & opt int 12
      & info [ "top" ] ~docv:"N" ~doc:"Blame-table rows to print.")
  in
  let net_scale_arg =
    Arg.(
      value & opt float 0.
      & info [ "net-scale" ] ~docv:"K"
          ~doc:
            "What-if factor for the per-hop network cost (0 = free wires).")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Also measure each what-if estimate against a rerun with the \
             corresponding configuration change.")
  in
  let tm_rate_arg =
    Arg.(
      value & opt float 0.05
      & info [ "tm-abort-rate" ] ~docv:"R"
          ~doc:
            "Spurious TM abort rate injected for the TM what-if validation \
             (with $(b,--validate)); 0 skips it.")
  in
  Cmd.v
    (Cmd.info "blame"
       ~doc:
         "Causal profile: record wait-for blame edges, walk the cross-core \
          critical path (reconciled exactly against the run's cycle count), \
          and estimate what-if speedups per edge class.")
    Term.(
      const blame $ bench_arg $ file_arg $ cores_arg $ strategy_arg $ scale_arg
      $ all_arg $ top_arg $ net_scale_arg $ validate_arg $ tm_rate_arg
      $ fault_seed_arg $ json_arg $ jobs_arg)

(* --- analyze: abstract-interpretation diagnostics + static cost model ----- *)

let absint_diag_json (d : Absint.diag) =
  Json.Obj
    [
      ("region", Json.Str d.Absint.d_region);
      ("sid", Json.Int d.Absint.d_sid);
      ("class", Json.Str (Absint.kind_class d.Absint.d_kind));
      ("text", Json.Str (Absint.diag_to_string d));
    ]

let print_absint_diags diags =
  List.iter
    (fun d -> Format.printf "  %a@." Absint.pp_diag d)
    diags;
  Format.pp_print_flush Format.std_formatter ()

(* Estimated cycles of one region under each mode family (None when the
   mode does not apply — no legal DOALL decomposition). *)
let region_mode_estimates ~machine ~profile est (pr : Select.planned_region) =
  let stmts = pr.Select.pr_stmts in
  [
    ("seq", Some Codegen.Seq);
    ("ilp", Some Codegen.Coupled_ilp);
    ("strands", Some Codegen.Strands);
    ("dswp", Some Codegen.Dswp);
    ( "doall",
      Option.map
        (fun dp -> Codegen.Doall dp)
        (Select.doall_plan_of_region ~machine ~profile stmts) );
  ]
  |> List.map (fun (n, s) ->
         (n, Option.map (Estimate.strategy_cycles est stmts) s))

(* analyze --all: every benchmark — diagnostics, then the static estimate
   reconciled against the obs layer's per-region cycle attribution of the
   hybrid build (PREDICT.json). Regions measured below [noise_floor] wall
   cycles are spawn/join glue below the attribution noise floor and are
   excluded from the geomean. *)
let noise_floor = 64.

let analyze_sweep ~machine ~cores ~scale ~json_out ~jobs () =
  let targets =
    (List.map (fun (b : Suite.benchmark) -> b.Suite.bench_name) Suite.all
    @ [ "micro:gsm_llp"; "micro:gzip_strands"; "micro:gsm_ilp" ])
    |> List.map (fun n -> (n, program_of_name n scale))
  in
  (* One cell per benchmark: analysis, hybrid run, per-region reconcile.
     Geomean inputs, JSON rows and printed chunks are all reassembled in
     benchmark order, so the report is identical at any [jobs]. *)
  let cell (name, p) =
    let buf = Buffer.create 512 in
    let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let summary = Absint.analyze p in
    let diags = Absint.diags summary in
    if diags <> [] then begin
      out "%s: %d diagnostic(s)\n" name (List.length diags);
      let b = Buffer.create 128 in
      let ppf = Format.formatter_of_buffer b in
      List.iter (fun d -> Format.fprintf ppf "  %a@." Absint.pp_diag d) diags;
      Format.pp_print_flush ppf ();
      Buffer.add_buffer buf b
    end;
    let diag_jsons = List.map absint_diag_json diags in
    let est = Estimate.create ~machine ~summary p in
    let compiled = Driver.compile ~machine ~choice:`Hybrid p in
    let m = Machine.create machine compiled.Driver.executable in
    let rp = Region_profile.attach m compiled in
    let result = Machine.run m in
    match result.Machine.outcome with
    | Machine.Finished ->
      let measured region =
        List.fold_left
          (fun acc (r : Region_profile.row) ->
            if r.Region_profile.r_region = region then
              acc + r.Region_profile.r_cycles
            else acc)
          0
          (Region_profile.rows rp)
      in
      let rows = ref [] and errs = ref [] in
      List.iter
        (fun (er : Estimate.row) ->
          let meas =
            float_of_int (measured er.Estimate.e_region) /. float_of_int cores
          in
          let ratio = if meas > 0. then er.Estimate.e_cycles /. meas else 0. in
          let counted = meas >= noise_floor && er.Estimate.e_cycles > 0. in
          out
            "%-24s %-14s %-8s static %10.0f  measured %10.0f  ratio %5.2f%s\n"
            name er.Estimate.e_region er.Estimate.e_strategy
            er.Estimate.e_cycles meas ratio
            (if counted then "" else "  (below noise floor, excluded)");
          if counted then errs := abs_float (log ratio) :: !errs;
          rows :=
            Json.Obj
              [
                ("benchmark", Json.Str name);
                ("region", Json.Str er.Estimate.e_region);
                ("strategy", Json.Str er.Estimate.e_strategy);
                ("static_cycles", Json.Float er.Estimate.e_cycles);
                ("measured_cycles", Json.Float meas);
                ("ratio", Json.Float ratio);
                ("counted", Json.Bool counted);
              ]
            :: !rows)
        (Estimate.table est compiled.Driver.plan);
      Ok (Buffer.contents buf, diag_jsons, List.rev !rows, List.rev !errs)
    | _ -> Error (Buffer.contents buf, name)
  in
  let fatal = ref false in
  let per_target =
    Pool.parallel_map_emit ~jobs
      ~emit:(fun _ r ->
        match r with
        | Ok (chunk, _, _, _) -> emit_chunk chunk
        | Error (chunk, name) ->
          emit_chunk chunk;
          Printf.eprintf "%s: hybrid run did not finish\n" name;
          fatal := true)
      cell (Array.of_list targets)
  in
  if !fatal then exit 1;
  let results =
    List.filter_map (function Ok r -> Some r | Error _ -> None)
      (Array.to_list per_target)
  in
  let all_diags = List.concat_map (fun (_, d, _, _) -> d) results in
  let diag_count = List.length all_diags in
  let rows = List.concat_map (fun (_, _, r, _) -> r) results in
  let errs = List.concat_map (fun (_, _, _, e) -> e) results in
  let geo =
    match errs with
    | [] -> 1.
    | l -> exp (List.fold_left ( +. ) 0. l /. float_of_int (List.length l))
  in
  Printf.printf "geomean prediction error: %.1f%% over %d region(s)\n"
    ((geo -. 1.) *. 100.)
    (List.length errs);
  Printf.printf "diagnostics: %d\n" diag_count;
  (match json_out with
  | None -> ()
  | Some path ->
    Json.write_file path
      (Json.Obj
         [
           ("cores", Json.Int cores);
           ("strategy", Json.Str "hybrid");
           ("geomean_error_pct", Json.Float ((geo -. 1.) *. 100.));
           ("regions_counted", Json.Int (List.length errs));
           ("diagnostics", Json.List all_diags);
           ("rows", Json.List rows);
         ]);
    Printf.printf "wrote prediction JSON to %s\n" path);
  if diag_count > 0 then exit 1

let analyze_cmd =
  let analyze bench file all cores scale json_out jobs =
    or_check_failure @@ fun () ->
    let machine = Config.default ~n_cores:cores in
    if all then
      analyze_sweep ~machine ~cores ~scale ~json_out ~jobs:(resolve_jobs jobs)
        ()
    else begin
      let name, p = resolve_program bench file scale in
      let summary = Absint.analyze p in
      let diags = Absint.diags summary in
      Printf.printf "benchmark  : %s\n" name;
      Printf.printf "diagnostics: %d\n" (List.length diags);
      print_absint_diags diags;
      let est = Estimate.create ~machine ~summary p in
      let profile = Estimate.static_profile est in
      let plan = Select.plan ~machine ~profile `Hybrid p in
      Printf.printf "\nstatic cycle estimates on %d cores (profile-free):\n"
        cores;
      let cells pr = region_mode_estimates ~machine ~profile est pr in
      Voltron_util.Table.print
        ~header:[ "region"; "chosen"; "seq"; "ilp"; "strands"; "dswp"; "doall" ]
        (List.map
           (fun (pr : Select.planned_region) ->
             pr.Select.pr_name
             :: Select.strategy_name pr.Select.pr_strategy
             :: List.map
                  (fun (_, c) ->
                    match c with
                    | Some c -> Printf.sprintf "%.0f" c
                    | None -> "-")
                  (cells pr))
           plan);
      (match json_out with
      | None -> ()
      | Some path ->
        Json.write_file path
          (Json.Obj
             [
               ("benchmark", Json.Str name);
               ("cores", Json.Int cores);
               ("diagnostics", Json.List (List.map absint_diag_json diags));
               ( "regions",
                 Json.List
                   (List.map
                      (fun (pr : Select.planned_region) ->
                        Json.Obj
                          [
                            ("region", Json.Str pr.Select.pr_name);
                            ( "chosen",
                              Json.Str
                                (Select.strategy_name pr.Select.pr_strategy) );
                            ( "estimates",
                              Json.Obj
                                (List.filter_map
                                   (fun (n, c) ->
                                     Option.map (fun c -> (n, Json.Float c)) c)
                                   (cells pr)) );
                          ])
                      plan) );
             ]);
        Printf.printf "wrote analysis JSON to %s\n" path);
      if diags <> [] then exit 1
    end
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Analyze every benchmark (and the micro kernels): report \
             diagnostics, then reconcile the static per-region cycle \
             estimates against the simulator's per-region attribution of \
             the hybrid build and print the geomean prediction error \
             (written to the $(b,--json) file as PREDICT rows).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Abstract interpretation over the HIR: value-range diagnostics \
          (provable out-of-bounds subscripts, reads of never-written \
          scalars or cells, dead stores) and a profile-free per-region, \
          per-mode static cycle estimate. Exits 1 when diagnostics are \
          reported.")
    Term.(
      const analyze $ bench_arg $ file_arg $ all_arg $ cores_arg $ scale_arg
      $ json_arg $ jobs_arg)

let fuzz_cmd =
  let fuzz seed index count cores strategies coherence_s size no_minimize
      corpus emit sanitize_s jobs =
    let sanitize = sanitize_of_flag sanitize_s in
    let strategies =
      match strategies with
      | "" -> None
      | s -> Some (List.map choice_of_string (String.split_on_char ',' s))
    in
    let coherence =
      match coherence_s with
      | "" -> None
      | s ->
        Some
          (List.map
             (fun p -> coherence_of_string (String.trim p))
             (String.split_on_char ',' s))
    in
    let cores =
      match cores with
      | "" -> None
      | s ->
        Some
          (List.map
             (fun c ->
               match int_of_string_opt (String.trim c) with
               | Some n when n > 0 -> n
               | _ ->
                 Printf.eprintf "bad core count %s\n" c;
                 exit 2)
             (String.split_on_char ',' s))
    in
    let on_program =
      match emit with
      | None -> fun ~seed:_ _ -> ()
      | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        fun ~seed p ->
          let path = Filename.concat dir (Printf.sprintf "fuzz_s%d.vc" seed) in
          let oc = open_out path in
          output_string oc (Voltron_gen.Gen.render p);
          close_out oc
    in
    let report =
      Voltron_gen.Campaign.run ?strategies ?cores ?coherence ?sanitize ~size
        ~minimize_findings:(not no_minimize) ~on_program ~log:print_endline
        ~jobs:(resolve_jobs jobs) ~index ~seed ~count ()
    in
    Printf.printf
      "fuzz: %d program(s), %d simulation(s), %d checker warning(s), %d \
       finding(s)\n"
      report.Voltron_gen.Campaign.r_programs report.Voltron_gen.Campaign.r_runs
      report.Voltron_gen.Campaign.r_warnings
      (List.length report.Voltron_gen.Campaign.r_findings);
    List.iter
      (fun f ->
        let path = Voltron_gen.Campaign.write_reproducer ~dir:corpus f in
        Printf.printf "  reproducer: %s\n" path)
      report.Voltron_gen.Campaign.r_findings;
    if report.Voltron_gen.Campaign.r_findings <> [] then exit 1
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Campaign seed. Each cell's generator seed is derived from the \
             campaign seed and the cell index by an indexed SplitMix64 \
             stream split.")
  in
  let index_arg =
    Arg.(
      value & opt int 0
      & info [ "index" ] ~docv:"K"
          ~doc:
            "First campaign cell index. Reproducer headers name the \
             (seed, index) pair that regenerates a finding's program.")
  in
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"How many programs to generate and run.")
  in
  let cores_list_arg =
    Arg.(
      value & opt string ""
      & info [ "cores" ] ~docv:"LIST"
          ~doc:"Comma-separated core counts to test (default 2,4,8).")
  in
  let strategies_arg =
    Arg.(
      value & opt string ""
      & info [ "strategies" ] ~docv:"LIST"
          ~doc:
            "Comma-separated strategies to test (default \
             seq,ilp,tlp,llp,hybrid).")
  in
  let coherence_list_arg =
    Arg.(
      value & opt string ""
      & info [ "coherence" ] ~docv:"LIST"
          ~doc:
            "Comma-separated coherence backends to diff (default \
             snoop,directory — every campaign cross-checks both).")
  in
  let size_arg =
    Arg.(
      value & opt int 24
      & info [ "size" ] ~docv:"N" ~doc:"Statement budget per generated program.")
  in
  let no_minimize_arg =
    Arg.(
      value & flag
      & info [ "no-minimize" ]
          ~doc:"Write findings unshrunk instead of minimizing them first.")
  in
  let corpus_arg =
    Arg.(
      value & opt string "test/corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Directory that receives minimized reproducers on a finding.")
  in
  let emit_arg =
    Arg.(
      value & opt (some string) None
      & info [ "emit" ] ~docv:"DIR"
          ~doc:"Also write every generated program to $(docv) (for triage).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random VC programs against the interpreter \
          oracle across the strategy/core matrix, with shrinking and \
          reproducer output.")
    Term.(
      const fuzz $ seed_arg $ index_arg $ count_arg $ cores_list_arg
      $ strategies_arg $ coherence_list_arg $ size_arg $ no_minimize_arg
      $ corpus_arg $ emit_arg $ sanitize_arg $ jobs_arg)

let list_cmd =
  let list () =
    List.iter
      (fun (b : Suite.benchmark) ->
        Printf.printf "%-12s (ilp %d%% / tlp %d%% / llp %d%% / seq %d%%)\n"
          b.Suite.bench_name b.Suite.bench_mix.Suite.ilp b.Suite.bench_mix.Suite.tlp
          b.Suite.bench_mix.Suite.llp b.Suite.bench_mix.Suite.seq)
      Suite.all;
    print_endline "micro:gsm_llp micro:gzip_strands micro:gsm_ilp"
  in
  Cmd.v (Cmd.info "list" ~doc:"List available benchmarks.") Term.(const list $ const ())

let () =
  let info =
    Cmd.info "voltron_sim" ~version:"1.0"
      ~doc:"Voltron dual-mode multicore simulator and compiler"
  in
  exit
    (Cmd.eval ~term_err:2
       (Cmd.group info
          [
            run_cmd;
            plan_cmd;
            profile_cmd;
            blame_cmd;
            analyze_cmd;
            check_cmd;
            disasm_cmd;
            asm_cmd;
            trace_cmd;
            fuzz_cmd;
            list_cmd;
          ]))
