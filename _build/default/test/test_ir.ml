(* Tests for the IR layer: builder invariants, layout, interpreter
   semantics (the oracle itself), lowering to CFG, and a qcheck property
   that lowering + single-core simulation agrees with the interpreter on
   random structured programs. *)

module B = Voltron_ir.Builder
module Hir = Voltron_ir.Hir
module Interp = Voltron_ir.Interp
module Layout = Voltron_ir.Layout
module Lower = Voltron_ir.Lower
module Cfg = Voltron_ir.Cfg
module Inst = Voltron_isa.Inst
module Rng = Voltron_util.Rng

let imm = B.imm

(* --- Builder ----------------------------------------------------------------- *)

let test_builder_region_required () =
  let b = B.create "x" in
  Alcotest.(check bool) "emit outside region rejected" true
    (try
       ignore (B.add b (imm 1) (imm 2));
       false
     with Invalid_argument _ -> true)

let test_builder_no_nesting () =
  let b = B.create "x" in
  Alcotest.(check bool) "nested region rejected" true
    (try
       B.region b "outer" (fun () -> B.region b "inner" (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_builder_fresh_unique () =
  let b = B.create "x" in
  let r1 = B.fresh b and r2 = B.fresh b in
  Alcotest.(check bool) "fresh regs distinct" true (r1 <> r2)

let test_builder_sids_unique () =
  let b = B.create "x" in
  let a = B.array b ~name:"a" ~size:4 () in
  B.region b "r" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 4) (fun i ->
          B.store b a i (B.add b i (imm 1))));
  let p = B.finish b in
  let sids = ref [] in
  List.iter
    (fun (r : Hir.region) -> Hir.iter_stmts (fun s -> sids := s.Hir.sid :: !sids) r.Hir.stmts)
    p.Hir.regions;
  Alcotest.(check int) "unique sids" (List.length !sids)
    (List.length (List.sort_uniq compare !sids))

(* --- Layout ------------------------------------------------------------------- *)

let test_layout_disjoint_lines () =
  let b = B.create "x" in
  let a1 = B.array b ~name:"a1" ~size:3 () in
  let a2 = B.array b ~name:"a2" ~size:5 () in
  let p = B.finish b in
  let lay = Layout.compute ~line_words:8 p in
  Alcotest.(check int) "a1 at 0" 0 (Layout.base lay a1);
  Alcotest.(check int) "a2 line-aligned" 8 (Layout.base lay a2);
  let scratch = Layout.scratch_alloc lay 4 in
  Alcotest.(check bool) "scratch after arrays" true (scratch >= 16);
  Alcotest.(check bool) "mem_size covers scratch" true (Layout.mem_size lay >= scratch + 4)

(* --- Interpreter ---------------------------------------------------------------- *)

let run_interp build =
  let b = B.create "t" in
  let out = B.array b ~name:"out" ~size:16 () in
  B.region b "main" (fun () -> build b out);
  Interp.run (B.finish b)

let read result i = Voltron_mem.Memory.read result.Interp.memory i

let test_interp_arith () =
  let r =
    run_interp (fun b out ->
        let x = B.mul b (imm 6) (imm 7) in
        B.store b out (imm 0) x;
        B.store b out (imm 1) (B.binop b Inst.Div x (imm 0)) (* total: 0 *);
        B.store b out (imm 2) (B.select b (imm 1) (imm 11) (imm 22)))
  in
  Alcotest.(check int) "mul" 42 (read r 0);
  Alcotest.(check int) "div0" 0 (read r 1);
  Alcotest.(check int) "select" 11 (read r 2)

let test_interp_for_zero_trip () =
  let r =
    run_interp (fun b out ->
        B.for_ b ~from:(imm 5) ~limit:(imm 5) (fun i -> B.store b out i (imm 9));
        B.store b out (imm 0) (imm 1))
  in
  Alcotest.(check int) "no iterations" 1 (read r 0)

let test_interp_nested_loops () =
  let r =
    run_interp (fun b out ->
        let acc = B.fresh b in
        B.assign b acc (Hir.Operand (imm 0));
        B.for_ b ~from:(imm 0) ~limit:(imm 3) (fun _i ->
            B.for_ b ~from:(imm 0) ~limit:(imm 4) (fun _j ->
                B.assign b acc (Hir.Alu (Inst.Add, Hir.Reg acc, imm 1))));
        B.store b out (imm 0) (Hir.Reg acc))
  in
  Alcotest.(check int) "3*4 iterations" 12 (read r 0)

let test_interp_do_while () =
  let r =
    run_interp (fun b out ->
        let x = B.fresh b in
        B.assign b x (Hir.Operand (imm 1));
        B.do_while b (fun () ->
            B.assign b x (Hir.Alu (Inst.Mul, Hir.Reg x, imm 2));
            B.cmp b Inst.Lt (Hir.Reg x) (imm 100));
        B.store b out (imm 0) (Hir.Reg x))
  in
  Alcotest.(check int) "doubles past 100" 128 (read r 0)

let test_interp_oob_faults () =
  Alcotest.(check bool) "store out of bounds faults" true
    (try
       ignore (run_interp (fun b out -> B.store b out (imm 99) (imm 1)));
       false
     with Invalid_argument _ -> true)

let test_interp_step_limit () =
  let b = B.create "inf" in
  let out = B.array b ~name:"o" ~size:2 () in
  B.region b "main" (fun () ->
      let x = B.fresh b in
      B.assign b x (Hir.Operand (imm 1));
      B.do_while b (fun () ->
          B.store b out (imm 0) (Hir.Reg x);
          B.cmp b Inst.Eq (imm 1) (imm 1));
      ());
  let p = B.finish b in
  Alcotest.(check bool) "nontermination detected" true
    (try
       ignore (Interp.run ~max_steps:1000 p);
       false
     with Interp.Step_limit_exceeded -> true)

(* --- Lowering ------------------------------------------------------------------- *)

let lower_program p =
  let lay = Layout.compute p in
  let ctx = Lower.make_ctx ~layout:lay ~first_vreg:p.Hir.n_vregs in
  List.map (fun (r : Hir.region) -> Lower.region ctx r.Hir.stmts) p.Hir.regions

let test_lower_loop_shape () =
  let b = B.create "x" in
  let a = B.array b ~name:"a" ~size:8 () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 8) (fun i -> B.store b a i i));
  let p = B.finish b in
  match lower_program p with
  | [ cfg ] ->
    (* Bottom-tested loop: entry block (guard), body block, exit block. *)
    Alcotest.(check int) "three blocks" 3 (Array.length cfg.Cfg.blocks);
    (match cfg.Cfg.blocks.(0).Cfg.b_term with
    | Cfg.Branch { invert = true; _ } -> ()
    | _ -> Alcotest.fail "entry guard expected");
    (match cfg.Cfg.blocks.(1).Cfg.b_term with
    | Cfg.Branch { invert = false; target; _ } ->
      Alcotest.(check string) "back edge to body" target cfg.Cfg.blocks.(1).Cfg.b_label
    | _ -> Alcotest.fail "backward branch expected");
    (* Induction ops with immediate bounds are replicable: mov, guard cmp,
       add, latch cmp. *)
    Alcotest.(check int) "replicable ops" 4 (Hashtbl.length cfg.Cfg.replicable)
  | _ -> Alcotest.fail "one region"

let test_lower_mem_refs () =
  let b = B.create "x" in
  let a = B.array b ~name:"a" ~size:8 () in
  B.region b "main" (fun () ->
      let v = B.load b a (imm 1) in
      B.store b a (imm 2) v);
  let p = B.finish b in
  match lower_program p with
  | [ cfg ] ->
    let refs = Hashtbl.fold (fun _ r acc -> r :: acc) cfg.Cfg.mem_refs [] in
    Alcotest.(check int) "two memory refs" 2 (List.length refs);
    Alcotest.(check int) "one write" 1
      (List.length (List.filter (fun r -> r.Cfg.m_write) refs))
  | _ -> Alcotest.fail "one region"

(* --- Property: compiled-sequential equals interpreted on random programs --- *)

let random_program seed =
  let rng = Rng.create seed in
  let b = B.create "rand" in
  let n_arrays = Rng.in_range rng 1 3 in
  let arrays =
    List.init n_arrays (fun i ->
        B.array b
          ~name:(Printf.sprintf "a%d" i)
          ~size:32
          ~init:(fun j -> (j * (i + 3)) mod 17)
          ())
  in
  let pick_array () = List.nth arrays (Rng.int rng n_arrays) in
  B.region b "main" (fun () ->
      (* A pool of defined operands grows as statements emit. *)
      let pool = ref [ imm 1; imm 7 ] in
      let operand () = List.nth !pool (Rng.int rng (List.length !pool)) in
      let emit_expr () =
        let choice = Rng.int rng 5 in
        let v =
          if choice = 0 then
            B.load b (pick_array ()) (B.binop b Inst.And (operand ()) (imm 31))
          else if choice = 1 then B.add b (operand ()) (operand ())
          else if choice = 2 then B.mul b (operand ()) (operand ())
          else if choice = 3 then B.binop b Inst.Xor (operand ()) (operand ())
          else B.select b (operand ()) (operand ()) (operand ())
        in
        pool := v :: !pool
      in
      let emit_store () =
        B.store b (pick_array ())
          (B.binop b Inst.And (operand ()) (imm 31))
          (operand ())
      in
      for _ = 1 to Rng.in_range rng 3 6 do
        emit_expr ()
      done;
      emit_store ();
      (* One loop with a couple of statements. *)
      B.for_ b ~from:(imm 0) ~limit:(imm (Rng.in_range rng 2 20)) (fun i ->
          let x = B.add b i (operand ()) in
          B.store b (pick_array ()) (B.binop b Inst.And x (imm 31)) x;
          if Rng.bool rng then begin
            let c = B.cmp b Inst.Lt i (imm 7) in
            B.if_ b c
              (fun () -> B.store b (pick_array ()) (imm 0) i)
              (fun () -> ())
          end);
      emit_store ());
  B.finish b

let test_random_lower_simulate =
  QCheck.Test.make ~name:"sequential compile+simulate = interpreter" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let p = random_program seed in
      let oracle = Interp.run p in
      let machine = Voltron_machine.Config.default ~n_cores:1 in
      let compiled = Voltron_compiler.Driver.compile ~machine ~choice:`Seq p in
      match Voltron_compiler.Driver.verify machine compiled with
      | Ok _ ->
        compiled.Voltron_compiler.Driver.oracle_checksum
        = Voltron_mem.Memory.checksum_prefix oracle.Interp.memory
            compiled.Voltron_compiler.Driver.array_footprint
      | Error _ -> false)

(* Pretty-printers do not raise and produce non-trivial text. *)
let test_printers_smoke () =
  let b = B.create "pp" in
  let a = B.array b ~name:"a" ~size:8 ~init:(fun i -> i) () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 8) (fun i ->
          let v = B.load b a i in
          let c = B.cmp b Inst.Lt v (imm 4) in
          B.if_ b c (fun () -> B.store b a i (B.mul b v v)) (fun () -> ()));
      let x = B.fresh b in
      B.assign b x (Hir.Operand (imm 1));
      B.do_while b (fun () ->
          B.assign b x (Hir.Alu (Inst.Add, Hir.Reg x, imm 1));
          B.cmp b Inst.Lt (Hir.Reg x) (imm 3)));
  let p = B.finish b in
  let text = Format.asprintf "%a" Hir.pp_program p in
  Alcotest.(check bool) "program prints" true (String.length text > 100);
  let lay = Layout.compute p in
  let ctx = Lower.make_ctx ~layout:lay ~first_vreg:p.Hir.n_vregs in
  let cfg = Lower.region ctx (List.hd p.Hir.regions).Hir.stmts in
  let ctext = Format.asprintf "%a" Cfg.pp cfg in
  Alcotest.(check bool) "cfg prints" true (String.length ctext > 100)

let test_run_speedup_facade () =
  let b = B.create "facade" in
  let src = B.array b ~name:"s" ~size:512 ~init:(fun i -> i) () in
  let dst = B.array b ~name:"d" ~size:512 () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 512) (fun i ->
          let v = B.load b src i in
          B.store b dst i (B.mul b v v)));
  let p = B.finish b in
  let s = Voltron.Run.speedup ~n_cores:4 p in
  Alcotest.(check bool) (Printf.sprintf "speedup %.2f > 1.3" s) true (s > 1.3)

let () =
  Alcotest.run "ir"
    [
      ( "builder",
        [
          Alcotest.test_case "region required" `Quick test_builder_region_required;
          Alcotest.test_case "no nesting" `Quick test_builder_no_nesting;
          Alcotest.test_case "fresh unique" `Quick test_builder_fresh_unique;
          Alcotest.test_case "unique sids" `Quick test_builder_sids_unique;
        ] );
      ("layout", [ Alcotest.test_case "disjoint lines" `Quick test_layout_disjoint_lines ]);
      ( "interp",
        [
          Alcotest.test_case "arith" `Quick test_interp_arith;
          Alcotest.test_case "zero-trip for" `Quick test_interp_for_zero_trip;
          Alcotest.test_case "nested loops" `Quick test_interp_nested_loops;
          Alcotest.test_case "do-while" `Quick test_interp_do_while;
          Alcotest.test_case "bounds fault" `Quick test_interp_oob_faults;
          Alcotest.test_case "step limit" `Quick test_interp_step_limit;
        ] );
      ( "lower",
        [
          Alcotest.test_case "loop shape" `Quick test_lower_loop_shape;
          Alcotest.test_case "mem refs" `Quick test_lower_mem_refs;
        ] );
      ( "facade",
        [
          Alcotest.test_case "printers" `Quick test_printers_smoke;
          Alcotest.test_case "speedup" `Quick test_run_speedup_facade;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest test_random_lower_simulate ]);
    ]
