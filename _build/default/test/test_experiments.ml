(* Shape tests for the evaluation itself: the paper's qualitative claims
   must hold on reduced-scale runs of the experiment harness, so a
   regression in kernels, compiler or machine that silently flips a
   figure's story fails the suite. These are the claims EXPERIMENTS.md
   reports; exact magnitudes are not asserted, directions and orderings
   are. *)

module E = Voltron.Experiments

let scale = 0.3

(* A representative slice keeps the suite fast: one LLP-heavy, one
   strand-heavy, one ILP-heavy and one mixed benchmark. *)
let llp_bench = "171.swim"
let tlp_bench = "179.art"
let ilp_bench = "rawcaudio"
let mixed_bench = "cjpeg"
let slice = [ llp_bench; tlp_bench; ilp_bench; mixed_bench ]

let find_by field rows name = List.find (fun r -> field r = name) rows

let test_fig10_11_winners () =
  List.iter
    (fun n_cores ->
      let rows =
        if n_cores = 2 then E.fig10 ~scale ~benches:slice ()
        else E.fig11 ~scale ~benches:slice ()
      in
      let row = find_by (fun (r : E.per_type_speedup) -> r.E.bench) rows in
      let swim = row llp_bench and art = row tlp_bench in
      Alcotest.(check bool)
        (Printf.sprintf "swim: LLP best at %d cores" n_cores)
        true
        (swim.E.sp_llp >= swim.E.sp_ilp && swim.E.sp_llp >= swim.E.sp_tlp *. 0.95);
      Alcotest.(check bool)
        (Printf.sprintf "art: TLP beats ILP at %d cores" n_cores)
        true (art.E.sp_tlp > art.E.sp_ilp);
      Alcotest.(check bool) "art: TLP beats LLP" true (art.E.sp_tlp > art.E.sp_llp))
    [ 2; 4 ]

let test_fig12_decoupled_stalls_lower () =
  let rows = E.fig12 ~scale ~benches:[ tlp_bench; mixed_bench ] () in
  List.iter
    (fun (r : E.stall_breakdown) ->
      Alcotest.(check bool)
        (r.E.sb_bench ^ ": decoupled D-stalls below half of coupled")
        true
        (r.E.decoupled_d < 0.5 *. r.E.coupled_d);
      Alcotest.(check bool)
        (r.E.sb_bench ^ ": decoupled shows receive stalls")
        true
        (r.E.decoupled_recv > 0.01))
    rows

let test_fig13_hybrid_dominates () =
  let hybrid = E.fig13 ~scale ~benches:slice () in
  let singles4 = E.fig11 ~scale ~benches:slice () in
  List.iter
    (fun (h : E.hybrid_speedup) ->
      let s =
        List.find (fun (r : E.per_type_speedup) -> r.E.bench = h.E.hs_bench) singles4
      in
      let best = max s.E.sp_ilp (max s.E.sp_tlp s.E.sp_llp) in
      (* Allow 5% noise: hybrid may pay a region-boundary switch the
         forced build avoids. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: hybrid %.2f >= best single %.2f" h.E.hs_bench
           h.E.hs_4core best)
        true
        (h.E.hs_4core >= 0.95 *. best);
      Alcotest.(check bool) "4 cores >= 2 cores" true
        (h.E.hs_4core >= 0.95 *. h.E.hs_2core))
    hybrid

let test_fig14_modes_mixed () =
  let rows = E.fig14 ~scale ~benches:[ ilp_bench; tlp_bench ] () in
  let row = find_by (fun (r : E.mode_split) -> r.E.ms_bench) rows in
  (* The ILP-heavy benchmark spends real time coupled; the strand-heavy
     one lives almost entirely decoupled (epic-style, paper §5.2). *)
  Alcotest.(check bool) "ilp bench uses coupled mode" true
    ((row ilp_bench).E.coupled_pct > 10.);
  Alcotest.(check bool) "tlp bench mostly decoupled" true
    ((row tlp_bench).E.decoupled_pct > 80.)

let test_micro_directions () =
  let rows = E.micro ~scale:0.5 () in
  List.iter
    (fun (m : E.micro_result) ->
      Alcotest.(check bool)
        (m.E.mi_name ^ " speeds up")
        true (m.E.mi_measured > 0.95))
    rows;
  (* The DOALL example is the strongest, as in the paper. *)
  match rows with
  | doall :: _ ->
    Alcotest.(check bool) "fig7 strongest" true
      (List.for_all (fun (m : E.micro_result) -> doall.E.mi_measured >= m.E.mi_measured) rows)
  | [] -> Alcotest.fail "no micro rows"

let test_ablation_directions () =
  (* A3: decoupled tolerance grows with memory latency, coupled shrinks. *)
  let rows = E.ablation_memlat ~scale () in
  let value row name = List.assoc name row.E.ab_values in
  (match rows with
  | [ lat50; _; lat200 ] ->
    Alcotest.(check bool) "decoupled grows" true
      (value lat200 "decoupled TLP" > value lat50 "decoupled TLP" *. 0.98);
    Alcotest.(check bool) "coupled shrinks" true
      (value lat200 "coupled ILP" < value lat50 "coupled ILP" +. 0.02)
  | _ -> Alcotest.fail "three latency rows expected");
  (* A4: a conflict costs real speedup but the clean run is fast. *)
  (match E.ablation_tm ~scale () with
  | clean :: conflicted :: _ ->
    Alcotest.(check bool) "clean speculation fast" true (value clean "speedup" > 1.5);
    Alcotest.(check bool) "conflict costs" true
      (value conflicted "speedup" < value clean "speedup");
    Alcotest.(check bool) "conflict observed" true (value conflicted "conflicts" >= 1.)
  | _ -> Alcotest.fail "tm rows expected");
  (* A6: if-conversion removes predicate stalls and does not slow down. *)
  match E.ablation_ifconv ~scale () with
  | [ branchy; converted ] ->
    Alcotest.(check bool) "pred stalls gone" true
      (value converted "pred-stall cycles/core" < 1.);
    Alcotest.(check bool) "no slowdown" true
      (value converted "TLP speedup" >= value branchy "TLP speedup" *. 0.98)
  | _ -> Alcotest.fail "two ifconv rows expected"

let () =
  Alcotest.run "experiments"
    [
      ( "figures",
        [
          Alcotest.test_case "fig10/11 winners" `Slow test_fig10_11_winners;
          Alcotest.test_case "fig12 stall shape" `Slow test_fig12_decoupled_stalls_lower;
          Alcotest.test_case "fig13 hybrid dominates" `Slow test_fig13_hybrid_dominates;
          Alcotest.test_case "fig14 mode residency" `Slow test_fig14_modes_mixed;
          Alcotest.test_case "micro directions" `Slow test_micro_directions;
        ] );
      ( "ablations",
        [ Alcotest.test_case "directions" `Slow test_ablation_directions ] );
    ]
