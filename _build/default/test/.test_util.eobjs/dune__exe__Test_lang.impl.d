test/test_lang.ml: Alcotest Format List Printf QCheck QCheck_alcotest String Sys Voltron Voltron_analysis Voltron_compiler Voltron_ir Voltron_isa Voltron_lang Voltron_machine Voltron_mem Voltron_util
