test/test_experiments.ml: Alcotest List Printf Voltron
