test/test_ir.ml: Alcotest Array Format Hashtbl List Printf QCheck QCheck_alcotest String Voltron Voltron_compiler Voltron_ir Voltron_isa Voltron_machine Voltron_mem Voltron_util
