test/test_machine.ml: Alcotest List Voltron_isa Voltron_machine Voltron_mem
