test/test_machine.ml: Alcotest Array List String Voltron_isa Voltron_machine Voltron_mem
