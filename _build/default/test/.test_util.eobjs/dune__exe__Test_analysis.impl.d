test/test_analysis.ml: Alcotest Array Hashtbl List Printf Voltron_analysis Voltron_ir Voltron_isa Voltron_machine
