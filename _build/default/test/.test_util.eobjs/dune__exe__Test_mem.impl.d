test/test_mem.ml: Alcotest List Printf QCheck QCheck_alcotest Voltron_mem
