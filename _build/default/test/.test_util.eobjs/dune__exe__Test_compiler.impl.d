test/test_compiler.ml: Alcotest Array List Printf QCheck QCheck_alcotest Voltron_analysis Voltron_compiler Voltron_ir Voltron_isa Voltron_machine
