test/test_net.ml: Alcotest Hashtbl List Option QCheck QCheck_alcotest Voltron_fault Voltron_isa Voltron_net
