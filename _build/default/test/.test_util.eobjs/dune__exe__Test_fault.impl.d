test/test_fault.ml: Alcotest List Voltron Voltron_fault Voltron_machine Voltron_mem Voltron_workloads
