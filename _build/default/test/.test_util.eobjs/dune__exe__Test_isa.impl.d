test/test_isa.ml: Alcotest Array Format List Printf QCheck QCheck_alcotest String Voltron_compiler Voltron_isa Voltron_machine Voltron_mem Voltron_util Voltron_workloads
