(* Integration tests across the whole stack: every benchmark verified
   against the oracle under the hybrid strategy; a representative subset
   under every forced strategy and core count; behavioural invariants
   (coupled mode halves nothing it shouldn't, DOALL actually chunks, TM
   speculation stays correct under forced conflicts); and random
   structured programs compiled with every strategy (qcheck). *)

module B = Voltron_ir.Builder
module Hir = Voltron_ir.Hir
module Suite = Voltron_workloads.Suite
module Stats = Voltron_machine.Stats
module Config = Voltron_machine.Config
module Driver = Voltron_compiler.Driver
module Rng = Voltron_util.Rng

let imm = B.imm

let scale = 0.15

let verified ?profile p choice cores =
  let m = Voltron.Run.run ~choice ?profile ~n_cores:cores p in
  m.Voltron.Run.verified

(* Every benchmark, hybrid, 4 cores. *)
let test_all_benchmarks_hybrid () =
  List.iter
    (fun (b : Suite.benchmark) ->
      let p = b.Suite.build ~scale () in
      Alcotest.(check bool) (b.Suite.bench_name ^ " verified") true
        (verified p `Hybrid 4))
    Suite.all

(* Representative benchmarks across the full strategy/core matrix. *)
let matrix_benches = [ "164.gzip"; "171.swim"; "177.mesa"; "179.art"; "cjpeg" ]

let test_strategy_matrix () =
  List.iter
    (fun name ->
      let b = Suite.by_name name in
      let p = b.Suite.build ~scale () in
      let profile = Voltron_analysis.Profile.collect p in
      List.iter
        (fun choice ->
          List.iter
            (fun cores ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%d cores" name cores)
                true
                (verified ~profile p choice cores))
            [ 1; 2; 4 ])
        [ `Seq; `Ilp; `Tlp; `Llp ])
    matrix_benches

(* The micro-examples hold their paper-reported direction. *)
let test_micro_directions () =
  let sp p choice =
    let base = Voltron.Run.baseline_cycles p in
    let m = Voltron.Run.run ~choice ~n_cores:2 p in
    Alcotest.(check bool) "verified" true m.Voltron.Run.verified;
    float_of_int base /. float_of_int m.Voltron.Run.cycles
  in
  (* Fig. 7: DOALL gives a solid speedup. *)
  Alcotest.(check bool) "gsm_llp speeds up" true
    (sp (Suite.micro_gsm_llp ~scale:0.5 ()) `Llp > 1.5);
  (* Fig. 9: coupled ILP wins over decoupled TLP. *)
  let p = Suite.micro_gsm_ilp ~scale:0.5 () in
  Alcotest.(check bool) "gsm_ilp: ILP beats TLP" true (sp p `Ilp > sp p `Tlp)

(* DOALL execution actually uses all cores: per-core busy cycles are
   spread, not concentrated on the master. *)
let test_doall_uses_all_cores () =
  let b = B.create "spread" in
  let src = B.array b ~name:"s" ~size:1024 ~init:(fun i -> i) () in
  let dst = B.array b ~name:"d" ~size:1024 () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm 1024) (fun i ->
          let v = B.load b src i in
          B.store b dst i (B.mul b v v)));
  let p = B.finish b in
  let m = Voltron.Run.run ~choice:`Llp ~n_cores:4 p in
  Alcotest.(check bool) "verified" true m.Voltron.Run.verified;
  let st = m.Voltron.Run.stats in
  for c = 1 to 3 do
    let worker = (Stats.core st c).Stats.busy in
    let master = (Stats.core st 0).Stats.busy in
    Alcotest.(check bool)
      (Printf.sprintf "core %d does real work" c)
      true
      (float_of_int worker > 0.3 *. float_of_int master)
  done

(* Speculative DOALL with a rare genuine conflict: TM must roll back and
   still produce the oracle's memory image. *)
let test_speculative_conflict_still_correct () =
  let b = B.create "spec" in
  let n = 64 in
  (* idx is almost a permutation, but two iterations collide: iteration 5
     writes the cell iteration 50 reads. *)
  let idx =
    B.array b ~name:"idx" ~size:n
      ~init:(fun i -> if i = 50 then 5 else i)
      ()
  in
  let data = B.array b ~name:"data" ~size:n ~init:(fun i -> i * 3) () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm n) (fun i ->
          let j = B.load b idx i in
          let v = B.load b data j in
          B.store b data j (B.add b v (imm 1))));
  let p = B.finish b in
  (* The profiler sees the write/read collision only if it crosses
     iterations through RAW; "data[5] += 1" twice is WAW+RAW at distinct
     iterations... so the loop may be Rejected or Speculative depending on
     classification. Whatever the plan, the run must stay correct. *)
  List.iter
    (fun choice ->
      Alcotest.(check bool) "correct under any strategy" true (verified p choice 4))
    [ `Seq; `Ilp; `Tlp; `Llp; `Hybrid ]

(* Forced TM conflicts: indices that make neighbouring chunks collide. *)
let test_forced_tm_conflict () =
  let b = B.create "conflict" in
  let n = 64 in
  (* Iteration i writes cell (i + 17) mod n, read by iteration
     (i + 17) mod n: chunks overlap heavily. Profiling still observes no
     RAW only if no read follows a write — here reads do follow writes
     across iterations, so classification rejects DOALL; force `Llp falls
     back to Seq and stays correct. *)
  let data = B.array b ~name:"data" ~size:n ~init:(fun i -> i) () in
  B.region b "main" (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm n) (fun i ->
          let j = B.binop b Voltron_isa.Inst.And (B.add b i (imm 17)) (imm (n - 1)) in
          let v = B.load b data j in
          B.store b data j (B.add b v (imm 10)))) ;
  let p = B.finish b in
  List.iter
    (fun choice -> Alcotest.(check bool) "correct" true (verified p choice 4))
    [ `Llp; `Hybrid ]

(* Coupled-mode lock-step sanity: during an ILP run, all cores' busy
   cycles are close (they issue together or not at all). *)
let test_coupled_lockstep_balance () =
  let b = Suite.by_name "gsmencode" in
  let p = b.Suite.build ~scale () in
  let m = Voltron.Run.run ~choice:`Ilp ~n_cores:4 p in
  Alcotest.(check bool) "verified" true m.Voltron.Run.verified;
  let st = m.Voltron.Run.stats in
  Alcotest.(check bool) "spent time coupled" true (st.Stats.coupled_cycles > 0)

(* Stall taxonomy: decoupled-TLP runs of a missy benchmark show receive
   stalls; coupled-ILP runs show none (no queues in coupled mode). *)
let test_stall_taxonomy () =
  let b = Suite.by_name "179.art" in
  let p = b.Suite.build ~scale () in
  let profile = Voltron_analysis.Profile.collect p in
  let recv_stalls choice =
    let m = Voltron.Run.run ~choice ~profile ~n_cores:4 p in
    let st = m.Voltron.Run.stats in
    List.fold_left
      (fun acc c ->
        let cs = Stats.core st c in
        acc + cs.Stats.recv_data_stall + cs.Stats.recv_pred_stall)
      0
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check bool) "decoupled has receive stalls" true (recv_stalls `Tlp > 0);
  Alcotest.(check int) "coupled has no receive stalls" 0 (recv_stalls `Ilp)

(* Random structured programs, compiled with every strategy at 4 cores,
   always match the oracle. Reuses richer shapes than test_ir's generator:
   accumulators, nested loops, multiple regions. *)
let random_program seed =
  let rng = Rng.create seed in
  let b = B.create "rand" in
  let arrays =
    List.init 3 (fun i ->
        B.array b
          ~name:(Printf.sprintf "a%d" i)
          ~size:64
          ~init:(fun j -> (j * (7 + i)) mod 29)
          ())
  in
  let arr () = List.nth arrays (Rng.int rng 3) in
  let n_regions = Rng.in_range rng 1 3 in
  for region = 0 to n_regions - 1 do
    B.region b (Printf.sprintf "r%d" region) (fun () ->
        let pool = ref [ imm 1; imm 5 ] in
        let operand () = List.nth !pool (Rng.int rng (List.length !pool)) in
        let push v = pool := v :: !pool in
        let emit_body i =
          for _ = 1 to Rng.in_range rng 1 4 do
            match Rng.int rng 6 with
            | 0 -> push (B.load b (arr ()) (B.binop b Voltron_isa.Inst.And i (imm 63)))
            | 1 -> push (B.add b (operand ()) (operand ()))
            | 2 -> push (B.mul b (operand ()) i)
            | 3 ->
              B.store b (arr ())
                (B.binop b Voltron_isa.Inst.And (B.add b i (operand ())) (imm 63))
                (operand ())
            | 4 -> push (B.select b (operand ()) (operand ()) (operand ()))
            | _ ->
              let c = B.cmp b Voltron_isa.Inst.Lt (operand ()) (imm 50) in
              B.if_ b c
                (fun () -> B.store b (arr ()) (imm 0) (operand ()))
                (fun () -> push (B.add b (operand ()) (imm 3)))
          done
        in
        let trips = Rng.in_range rng 2 24 in
        (match Rng.int rng 3 with
        | 0 ->
          (* plain loop *)
          B.for_ b ~from:(imm 0) ~limit:(imm trips) emit_body
        | 1 ->
          (* loop with accumulator *)
          let acc = B.fresh b in
          B.assign b acc (Hir.Operand (imm 0));
          B.for_ b ~from:(imm 0) ~limit:(imm trips) (fun i ->
              emit_body i;
              let v = B.load b (arr ()) (B.binop b Voltron_isa.Inst.And i (imm 63)) in
              B.assign b acc (Hir.Alu (Voltron_isa.Inst.Add, Hir.Reg acc, v)));
          B.store b (arr ()) (imm 1) (Hir.Reg acc)
        | _ ->
          (* nested loops *)
          B.for_ b ~from:(imm 0) ~limit:(imm (min trips 6)) (fun i ->
              B.for_ b ~from:(imm 0) ~limit:(imm 4) (fun j ->
                  emit_body (B.add b i j))));
        B.store b (arr ()) (imm 2) (operand ()))
  done;
  B.finish b

let test_random_all_strategies =
  QCheck.Test.make ~name:"random programs verify under every strategy" ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = random_program seed in
      List.for_all
        (fun choice ->
          let machine = Config.default ~n_cores:4 in
          let compiled = Driver.compile ~machine ~choice p in
          match Driver.verify machine compiled with Ok _ -> true | Error _ -> false)
        [ `Seq; `Ilp; `Tlp; `Llp; `Hybrid ])

let () =
  Alcotest.run "integration"
    [
      ( "suite",
        [
          Alcotest.test_case "all benchmarks hybrid" `Slow test_all_benchmarks_hybrid;
          Alcotest.test_case "strategy matrix" `Slow test_strategy_matrix;
          Alcotest.test_case "micro directions" `Quick test_micro_directions;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "doall spreads work" `Quick test_doall_uses_all_cores;
          Alcotest.test_case "speculation correct" `Quick test_speculative_conflict_still_correct;
          Alcotest.test_case "forced conflicts" `Quick test_forced_tm_conflict;
          Alcotest.test_case "lock-step" `Quick test_coupled_lockstep_balance;
          Alcotest.test_case "stall taxonomy" `Quick test_stall_taxonomy;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest test_random_all_strategies ]);
    ]
