(* Tests for the ISA layer: def/use extraction, unit classes, bundle
   legality, image label resolution, shared arithmetic semantics. *)

module Inst = Voltron_isa.Inst
module Bundle = Voltron_isa.Bundle
module Image = Voltron_isa.Image
module Semantics = Voltron_isa.Semantics

let reg r = Inst.Reg r
let imm i = Inst.Imm i

let add = Inst.Alu { op = Inst.Add; dst = 1; src1 = reg 2; src2 = imm 3 }
let load = Inst.Load { dst = 4; base = imm 100; offset = reg 5 }
let store = Inst.Store { base = imm 0; offset = reg 1; src = reg 2 }
let put = Inst.Put { dir = Inst.East; src = reg 7 }
let get = Inst.Get { dir = Inst.West; dst = 8 }
let br = Inst.Br { btr = 0; pred = Some (reg 9); invert = false }

let test_defs_uses () =
  Alcotest.(check (list int)) "add defs" [ 1 ] (Inst.defs add);
  Alcotest.(check (list int)) "add uses" [ 2 ] (Inst.uses add);
  Alcotest.(check (list int)) "load defs" [ 4 ] (Inst.defs load);
  Alcotest.(check (list int)) "load uses" [ 5 ] (Inst.uses load);
  Alcotest.(check (list int)) "store defs" [] (Inst.defs store);
  Alcotest.(check (list int)) "store uses" [ 1; 2 ] (Inst.uses store);
  Alcotest.(check (list int)) "br uses" [ 9 ] (Inst.uses br);
  Alcotest.(check (list int)) "get defs" [ 8 ] (Inst.defs get)

let test_unit_classes () =
  let open Inst in
  Alcotest.(check bool) "add compute" true (unit_class add = Compute);
  Alcotest.(check bool) "load memory" true (unit_class load = Memory);
  Alcotest.(check bool) "put comm" true (unit_class put = Commun);
  Alcotest.(check bool) "br control" true (unit_class br = Control)

let test_bundle_legality () =
  let w = Bundle.legal ~issue_width:1 ~comm_width:1 in
  Alcotest.(check bool) "main+comm ok" true (w [ add; put ]);
  Alcotest.(check bool) "two main bad" false (w [ add; load ]);
  Alcotest.(check bool) "two comm bad" false (w [ put; get ]);
  Alcotest.(check bool) "empty ok" true (w []);
  Alcotest.(check bool) "nop ignored" true (w [ add; Inst.Nop ]);
  Alcotest.(check bool) "br counts as main" false (w [ add; br ])

let test_bundle_branch () =
  Alcotest.(check bool) "finds branch" true (Bundle.branch [ add; br ] = Some br);
  Alcotest.(check bool) "no branch" true (Bundle.branch [ add ] = None)

let test_image_labels () =
  let b = Image.builder () in
  Image.place_label b "start";
  Image.emit b [ add ];
  Image.place_label b "mid";
  Image.emit b [ load ];
  let img = Image.finish b in
  Alcotest.(check int) "start addr" 0 (Image.resolve img "start");
  Alcotest.(check int) "mid addr" 1 (Image.resolve img "mid");
  Alcotest.(check bool) "missing label" true
    (try
       ignore (Image.resolve img "nope");
       false
     with Not_found -> true)

let test_image_duplicate_label () =
  let b = Image.builder () in
  Image.place_label b "x";
  Alcotest.(check bool) "duplicate rejected" true
    (try
       Image.place_label b "x";
       false
     with Invalid_argument _ -> true)

let test_image_dangling_label () =
  (* A label placed after the last bundle must still resolve. *)
  let b = Image.builder () in
  Image.emit b [ add ];
  Image.place_label b "end";
  let img = Image.finish b in
  Alcotest.(check int) "dangling label gets a pad" 1 (Image.resolve img "end");
  Alcotest.(check bool) "pad fetchable" true (Image.fetch img 1 <> [])

let test_semantics_total () =
  Alcotest.(check int) "div by zero" 0 (Semantics.alu Inst.Div 5 0);
  Alcotest.(check int) "rem by zero" 0 (Semantics.alu Inst.Rem 5 0);
  Alcotest.(check int) "div" 3 (Semantics.alu Inst.Div 7 2);
  Alcotest.(check int) "shl" 8 (Semantics.alu Inst.Shl 1 3);
  Alcotest.(check int) "fadd is integer add" 7 (Semantics.fpu Inst.Fadd 3 4);
  Alcotest.(check int) "cmp true" 1 (Semantics.cmp Inst.Lt 1 2);
  Alcotest.(check int) "cmp false" 0 (Semantics.cmp Inst.Lt 2 1)

let test_semantics_shift_mask =
  QCheck.Test.make ~name:"shifts never raise" ~count:500
    QCheck.(pair int int)
    (fun (a, b) ->
      ignore (Semantics.alu Inst.Shl a b);
      ignore (Semantics.alu Inst.Shr a b);
      true)

let test_printing_roundtrippable () =
  (* Every constructor prints without raising and non-trivially. *)
  let ops =
    [
      add; load; store; put; get; br;
      Inst.Fpu { op = Inst.Fmul; dst = 0; src1 = imm 1; src2 = imm 2 };
      Inst.Cmp { op = Inst.Ge; dst = 0; src1 = reg 1; src2 = imm 2 };
      Inst.Select { dst = 0; pred = reg 1; if_true = imm 2; if_false = imm 3 };
      Inst.Mov { dst = 0; src = imm 1 };
      Inst.Pbr { btr = 1; target = "foo" };
      Inst.Bcast { src = reg 3 };
      Inst.Getb { dst = 3 };
      Inst.Send { target = 2; src = imm 9 };
      Inst.Recv { sender = 1; dst = 3; kind = Inst.Rv_pred };
      Inst.Spawn { target = 1; entry = "worker" };
      Inst.Sleep;
      Inst.Mode_switch Inst.Coupled;
      Inst.Tm_begin;
      Inst.Tm_commit;
      Inst.Halt;
      Inst.Nop;
    ]
  in
  List.iter
    (fun op -> Alcotest.(check bool) "prints" true (String.length (Inst.to_string op) > 0))
    ops

(* --- Assembler ----------------------------------------------------------------- *)

module Asm = Voltron_isa.Asm
module Program = Voltron_isa.Program

let asm_src = {s|
.memory 128
.init 5 7

=== core 0 ===
start:
    spawn c1, entry
    load r1 = [#5 + #0]
    add r2 = r1, #35
    cmp.lt r3 = r2, #100
    pbr b0 = done
    br b0 if r3
    mov r2 = #0
done:
    store [#0 + #0] = r2
    select r4 = r3 ? #1 : #2 || send c1, r2
    recv.sync r5 = c1
    halt

=== core 1 ===
entry:
    recv r1 = c0
    store [#1 + #0] = r1 || send c0, #1
    sleep
|s}

let test_asm_parse () =
  let p = Asm.parse asm_src in
  Alcotest.(check int) "two cores" 2 (Program.n_cores p);
  Alcotest.(check int) "memory" 128 p.Program.mem_size;
  Alcotest.(check bool) "init" true (p.Program.mem_init = [ (5, 7) ]);
  Alcotest.(check int) "label done" 7
    (Voltron_isa.Image.resolve p.Program.images.(0) "done")

let test_asm_executes () =
  let p = Asm.parse asm_src in
  let machine =
    Voltron_machine.Machine.create
      (Voltron_machine.Config.default ~n_cores:2)
      p
  in
  (match (Voltron_machine.Machine.run machine).Voltron_machine.Machine.outcome with
  | Voltron_machine.Machine.Finished -> ()
  | _ -> Alcotest.fail "asm program did not finish");
  let mem = Voltron_machine.Machine.memory machine in
  Alcotest.(check int) "7 + 35" 42 (Voltron_mem.Memory.read mem 0);
  Alcotest.(check int) "worker got it" 42 (Voltron_mem.Memory.read mem 1)

let test_asm_roundtrip_compiled () =
  (* Disassembly of real compiled programs reassembles byte-identically. *)
  List.iter
    (fun (choice, cores) ->
      let prog = Voltron_workloads.Suite.micro_gsm_llp ~scale:0.05 () in
      let machine = Voltron_machine.Config.default ~n_cores:cores in
      let compiled =
        Voltron_compiler.Driver.compile ~machine ~choice prog
      in
      let original = compiled.Voltron_compiler.Driver.executable in
      let text1 = Format.asprintf "%a" Program.pp original in
      let back = Asm.parse text1 in
      let back =
        Program.make ~images:back.Program.images
          ~mem_size:original.Program.mem_size
          ~mem_init:original.Program.mem_init
      in
      let text2 = Format.asprintf "%a" Program.pp back in
      Alcotest.(check string) "identical disassembly" text1 text2)
    [ (`Hybrid, 4); (`Ilp, 2); (`Tlp, 4); (`Seq, 1) ]

let test_asm_errors () =
  let expect src frag =
    match Asm.parse src with
    | _ -> Alcotest.fail "should not parse"
    | exception Asm.Error (line, msg) ->
      Alcotest.(check bool)
        (Printf.sprintf "line %d: %s" line msg)
        true
        (line >= 0
        &&
        let lh = String.length msg and lf = String.length frag in
        let rec go i =
          i + lf <= lh && (String.sub msg i lf = frag || go (i + 1))
        in
        go 0)
  in
  expect "=== core 0 ===\n    frobnicate r1\n" "unknown mnemonic";
  expect "    nop\n" "before any";
  expect "=== core 0 ===\n    add r1 = r2\n" "comma";
  expect "" "no cores"

(* Random single-core programs: print -> parse -> print is identity. *)
let test_asm_roundtrip_random =
  QCheck.Test.make ~name:"assembler roundtrip on random programs" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Voltron_util.Rng.create seed in
      let b = Image.builder () in
      let n = Voltron_util.Rng.in_range rng 1 12 in
      for k = 0 to n - 1 do
        if Voltron_util.Rng.chance rng 0.3 then
          Image.place_label b (Printf.sprintf "lbl_%d" k);
        let op =
          match Voltron_util.Rng.int rng 10 with
          | 0 ->
            Inst.Alu
              {
                op = Voltron_util.Rng.pick rng [| Inst.Add; Inst.Mul; Inst.Xor; Inst.Shr |];
                dst = Voltron_util.Rng.int rng 16;
                src1 = reg (Voltron_util.Rng.int rng 16);
                src2 = imm (Voltron_util.Rng.in_range rng (-9) 99);
              }
          | 1 ->
            Inst.Cmp
              {
                op = Voltron_util.Rng.pick rng [| Inst.Lt; Inst.Ge; Inst.Ne |];
                dst = Voltron_util.Rng.int rng 16;
                src1 = reg (Voltron_util.Rng.int rng 16);
                src2 = imm (Voltron_util.Rng.int rng 50);
              }
          | 2 -> Inst.Load { dst = 1; base = imm 0; offset = reg 2 }
          | 3 -> Inst.Store { base = imm 4; offset = reg 1; src = reg 3 }
          | 4 ->
            Inst.Select { dst = 5; pred = reg 1; if_true = imm 2; if_false = reg 3 }
          | 5 -> Inst.Send { target = 1; src = imm (Voltron_util.Rng.int rng 9) }
          | 6 -> Inst.Recv { sender = 1; dst = 2; kind = Inst.Rv_pred }
          | 7 -> Inst.Put { dir = Inst.East; src = reg 1 }
          | 8 -> Inst.Mov { dst = 3; src = imm (Voltron_util.Rng.int rng 100) }
          | _ -> Inst.Nop
        in
        Image.emit b [ op ]
      done;
      Image.emit b [ Inst.Halt ];
      let prog =
        Program.make ~images:[| Image.finish b |] ~mem_size:64 ~mem_init:[]
      in
      let t1 = Format.asprintf "%a" Program.pp prog in
      let back = Asm.parse t1 in
      let back =
        Program.make ~images:back.Program.images ~mem_size:64 ~mem_init:[]
      in
      t1 = Format.asprintf "%a" Program.pp back)

let () =
  Alcotest.run "isa"
    [
      ( "inst",
        [
          Alcotest.test_case "defs/uses" `Quick test_defs_uses;
          Alcotest.test_case "unit classes" `Quick test_unit_classes;
          Alcotest.test_case "printing" `Quick test_printing_roundtrippable;
        ] );
      ( "bundle",
        [
          Alcotest.test_case "legality" `Quick test_bundle_legality;
          Alcotest.test_case "branch" `Quick test_bundle_branch;
        ] );
      ( "image",
        [
          Alcotest.test_case "labels" `Quick test_image_labels;
          Alcotest.test_case "duplicate label" `Quick test_image_duplicate_label;
          Alcotest.test_case "dangling label" `Quick test_image_dangling_label;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "total ops" `Quick test_semantics_total;
          QCheck_alcotest.to_alcotest test_semantics_shift_mask;
        ] );
      ( "asm",
        [
          Alcotest.test_case "parse" `Quick test_asm_parse;
          Alcotest.test_case "executes" `Quick test_asm_executes;
          Alcotest.test_case "roundtrip" `Quick test_asm_roundtrip_compiled;
          Alcotest.test_case "errors" `Quick test_asm_errors;
          QCheck_alcotest.to_alcotest test_asm_roundtrip_random;
        ] );
    ]
