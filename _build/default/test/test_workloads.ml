(* Tests for the workload suite: every benchmark builds, interprets, and
   its regions carry the intended parallelism character (DOALL loops
   classify as DOALL, ILP kernels reject DOALL and DSWP, etc.). *)

module B = Voltron_ir.Builder
module Hir = Voltron_ir.Hir
module Suite = Voltron_workloads.Suite
module Kernels = Voltron_workloads.Kernels
module Profile = Voltron_analysis.Profile
module Select = Voltron_compiler.Select
module Codegen = Voltron_compiler.Codegen
module Config = Voltron_machine.Config

let test_all_build_and_interpret () =
  Alcotest.(check bool) "24+ benchmarks" true (List.length Suite.all >= 24);
  List.iter
    (fun (b : Suite.benchmark) ->
      let p = b.Suite.build ~scale:0.1 () in
      let r = Voltron_ir.Interp.run p in
      Alcotest.(check bool)
        (b.Suite.bench_name ^ " does work")
        true
        (r.Voltron_ir.Interp.dyn_stmts > 100))
    Suite.all

let test_deterministic_builds () =
  let b = Suite.by_name "cjpeg" in
  let r1 = Voltron_ir.Interp.run (b.Suite.build ~scale:0.2 ()) in
  let r2 = Voltron_ir.Interp.run (b.Suite.build ~scale:0.2 ()) in
  Alcotest.(check int) "same checksum across builds" r1.Voltron_ir.Interp.checksum
    r2.Voltron_ir.Interp.checksum

let test_mixes_sum_to_100 () =
  List.iter
    (fun (b : Suite.benchmark) ->
      let m = b.Suite.bench_mix in
      Alcotest.(check int)
        (b.Suite.bench_name ^ " mix")
        100
        (m.Suite.ilp + m.Suite.tlp + m.Suite.llp + m.Suite.seq))
    Suite.all

let plan_of kernel =
  let b = B.create "probe" in
  kernel b;
  let p = B.finish b in
  let machine = Config.default ~n_cores:4 in
  let profile = Profile.collect p in
  Select.plan ~machine ~profile `Hybrid p

let strategy_of kernel =
  match plan_of kernel with
  | [ pr ] -> pr.Select.pr_strategy
  | _ -> Alcotest.fail "expected one region"

let test_doall_dense_classifies () =
  match strategy_of (fun b -> Kernels.doall_dense b ~name:"k" ~n:256 ~work:4 ~seed:1) with
  | Codegen.Doall { dp_speculative = false; _ } -> ()
  | s -> Alcotest.fail ("expected proven doall, got " ^ Select.strategy_name s)

let test_doall_indirect_speculates () =
  match strategy_of (fun b -> Kernels.doall_indirect b ~name:"k" ~n:256 ~work:3 ~seed:1) with
  | Codegen.Doall { dp_speculative = true; _ } -> ()
  | s -> Alcotest.fail ("expected speculative doall, got " ^ Select.strategy_name s)

let test_doall_reduce_has_accumulator () =
  match strategy_of (fun b -> Kernels.doall_reduce b ~name:"k" ~n:256 ~seed:1) with
  | Codegen.Doall { dp_accumulators = [ _ ]; _ } -> ()
  | Codegen.Doall _ -> Alcotest.fail "expected exactly one accumulator"
  | s -> Alcotest.fail ("expected doall, got " ^ Select.strategy_name s)

let test_ilp_kernel_is_coupled () =
  match strategy_of (fun b -> Kernels.ilp_wide b ~name:"k" ~n:512 ~taps:4 ~seed:1) with
  | Codegen.Coupled_ilp -> ()
  | s -> Alcotest.fail ("expected coupled ilp, got " ^ Select.strategy_name s)

let test_strands_kernel_is_decoupled () =
  match
    strategy_of (fun b -> Kernels.strands_streams b ~name:"k" ~n:512 ~streams:3 ~seed:1)
  with
  | Codegen.Strands | Codegen.Dswp -> ()
  | s -> Alcotest.fail ("expected fine-grain TLP, got " ^ Select.strategy_name s)

let test_micro_programs_interpret () =
  List.iter
    (fun p ->
      let r = Voltron_ir.Interp.run p in
      Alcotest.(check bool) "micro runs" true (r.Voltron_ir.Interp.dyn_stmts > 50))
    [
      Suite.micro_gsm_llp ~scale:0.2 ();
      Suite.micro_gzip_strands ~scale:0.2 ();
      Suite.micro_gsm_ilp ~scale:0.2 ();
    ]

let () =
  Alcotest.run "workloads"
    [
      ( "suite",
        [
          Alcotest.test_case "all build" `Quick test_all_build_and_interpret;
          Alcotest.test_case "deterministic" `Quick test_deterministic_builds;
          Alcotest.test_case "mixes" `Quick test_mixes_sum_to_100;
          Alcotest.test_case "micros" `Quick test_micro_programs_interpret;
        ] );
      ( "classification",
        [
          Alcotest.test_case "dense doall" `Quick test_doall_dense_classifies;
          Alcotest.test_case "indirect speculative" `Quick test_doall_indirect_speculates;
          Alcotest.test_case "reduce accumulator" `Quick test_doall_reduce_has_accumulator;
          Alcotest.test_case "ilp coupled" `Quick test_ilp_kernel_is_coupled;
          Alcotest.test_case "strands decoupled" `Quick test_strands_kernel_is_decoupled;
        ] );
    ]
