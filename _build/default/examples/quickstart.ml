(* Quickstart: write a small program against the public API, compile it
   for a 4-core Voltron with the hybrid strategy, simulate it, and check
   the result against the reference interpreter.

     dune exec examples/quickstart.exe *)

module B = Voltron_ir.Builder
module Inst = Voltron_isa.Inst

let () =
  (* A program is a set of named arrays plus a sequence of regions. This
     one scales a vector, then reduces it. *)
  let b = B.create "quickstart" in
  let input = B.array b ~name:"input" ~size:1024 ~init:(fun i -> (i * 3) mod 101) () in
  let scaled = B.array b ~name:"scaled" ~size:1024 () in
  let result = B.array b ~name:"result" ~size:1 () in

  B.region b "scale" (fun () ->
      B.for_ b ~from:(B.imm 0) ~limit:(B.imm 1024) (fun i ->
          let v = B.load b input i in
          B.store b scaled i (B.mul b v (B.imm 7))));

  B.region b "reduce" (fun () ->
      let acc = B.fresh b in
      B.assign b acc (Voltron_ir.Hir.Operand (B.imm 0));
      B.for_ b ~from:(B.imm 0) ~limit:(B.imm 1024) (fun i ->
          let v = B.load b scaled i in
          B.assign b acc (Voltron_ir.Hir.Alu (Inst.Add, Voltron_ir.Hir.Reg acc, v)));
      B.store b result (B.imm 0) (Voltron_ir.Hir.Reg acc));

  let program = B.finish b in

  (* The reference interpreter is the correctness oracle. *)
  let oracle = Voltron_ir.Interp.run program in
  Printf.printf "oracle checksum: %x\n" oracle.Voltron_ir.Interp.checksum;

  (* Compile + simulate: sequential baseline, then 4-core hybrid. *)
  let base = Voltron.Run.baseline_cycles program in
  let m = Voltron.Run.run ~n_cores:4 program in
  Printf.printf "baseline (1 core): %d cycles\n" base;
  Printf.printf "hybrid (4 cores) : %d cycles  -> speedup %.2fx\n"
    m.Voltron.Run.cycles
    (float_of_int base /. float_of_int m.Voltron.Run.cycles);
  Printf.printf "verified: %b\n" m.Voltron.Run.verified;

  (* What did the compiler decide per region? Both loops are provable
     DOALL, so expect chunked parallel execution. *)
  List.iter
    (fun (r : Voltron_compiler.Select.planned_region) ->
      Printf.printf "  region %-12s -> %s\n" r.Voltron_compiler.Select.pr_name
        (Voltron_compiler.Select.strategy_name r.Voltron_compiler.Select.pr_strategy))
    m.Voltron.Run.plan
