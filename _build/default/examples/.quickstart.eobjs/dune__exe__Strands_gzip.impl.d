examples/strands_gzip.ml: List Printf Voltron Voltron_analysis Voltron_machine Voltron_workloads
