examples/modes_tour.mli:
