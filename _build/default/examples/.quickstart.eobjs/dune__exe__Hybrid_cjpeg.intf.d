examples/hybrid_cjpeg.mli:
