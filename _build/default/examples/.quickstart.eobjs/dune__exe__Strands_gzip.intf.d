examples/strands_gzip.mli:
