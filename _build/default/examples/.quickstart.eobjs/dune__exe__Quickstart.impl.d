examples/quickstart.ml: List Printf Voltron Voltron_compiler Voltron_ir Voltron_isa
