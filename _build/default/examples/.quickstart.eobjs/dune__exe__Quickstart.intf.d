examples/quickstart.mli:
