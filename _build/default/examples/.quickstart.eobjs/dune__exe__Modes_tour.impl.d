examples/modes_tour.ml: List Printf Voltron_isa Voltron_machine Voltron_mem
