examples/doall_gsm.mli:
