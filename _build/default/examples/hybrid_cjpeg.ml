(* Hybrid execution on a mixed benchmark (paper §5.2, cjpeg): a program
   whose regions favour different kinds of parallelism. The hybrid
   compiler picks a strategy per region and the machine switches between
   coupled and decoupled mode at region boundaries; the paper's point is
   that this beats any single strategy (cjpeg: 1.3x ILP-only, 1.08x
   TLP-only, 1.21x LLP-only, but 1.79x hybrid on 4 cores).

     dune exec examples/hybrid_cjpeg.exe *)

module Suite = Voltron_workloads.Suite
module Stats = Voltron_machine.Stats
module Select = Voltron_compiler.Select

let () =
  let bench = Suite.by_name "cjpeg" in
  let program = bench.Suite.build () in
  let profile = Voltron_analysis.Profile.collect program in
  let base = Voltron.Run.baseline_cycles ~profile program in
  Printf.printf "cjpeg-like workload, baseline %d cycles\n\n" base;

  let show name choice =
    let m = Voltron.Run.run ~choice ~profile ~n_cores:4 program in
    Printf.printf "%-12s speedup %.2fx%s\n" name
      (float_of_int base /. float_of_int m.Voltron.Run.cycles)
      (if m.Voltron.Run.verified then "" else "  [VERIFICATION FAILED]");
    m
  in
  let _ = show "ILP only" `Ilp in
  let _ = show "TLP only" `Tlp in
  let _ = show "LLP only" `Llp in
  let hybrid = show "hybrid" `Hybrid in

  print_newline ();
  print_endline "hybrid plan (strategy per region):";
  List.iter
    (fun (r : Select.planned_region) ->
      Printf.printf "  %-16s -> %s\n" r.Select.pr_name
        (Select.strategy_name r.Select.pr_strategy))
    hybrid.Voltron.Run.plan;

  let st = hybrid.Voltron.Run.stats in
  let total = st.Stats.coupled_cycles + st.Stats.decoupled_cycles in
  Printf.printf "\nmode split: %.1f%% coupled / %.1f%% decoupled (%d mode switches)\n"
    (100. *. float_of_int st.Stats.coupled_cycles /. float_of_int total)
    (100. *. float_of_int st.Stats.decoupled_cycles /. float_of_int total)
    st.Stats.mode_switches
