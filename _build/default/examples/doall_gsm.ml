(* The paper's Fig. 7 worked example: the gsmdecode loop

       for (i = 0; i < 8; ++i) { uf[i] = u[i]; rpf[i] = rp[i] * scalef; }

   is a DOALL loop — no iteration touches another's data — so the Voltron
   compiler splits its iterations into per-core chunks (Fig. 7(b)/(c)).
   The paper reports a 1.9x speedup on 2 cores; this example shows the
   same loop (scaled up), the compiler's classification, and the measured
   speedup on 2 and 4 cores.

     dune exec examples/doall_gsm.exe *)

module Suite = Voltron_workloads.Suite
module Select = Voltron_compiler.Select
module Config = Voltron_machine.Config

let () =
  let program = Suite.micro_gsm_llp () in
  let profile = Voltron_analysis.Profile.collect program in

  (* Ask the selector how it classifies the region. *)
  let machine = Config.default ~n_cores:2 in
  List.iter
    (fun (r : Select.planned_region) ->
      Printf.printf "region %-10s -> %s (dynamic weight %d)\n" r.Select.pr_name
        (Select.strategy_name r.Select.pr_strategy)
        r.Select.pr_weight)
    (Select.plan ~machine ~profile `Hybrid program);

  let base = Voltron.Run.baseline_cycles ~profile program in
  List.iter
    (fun cores ->
      let m = Voltron.Run.run ~choice:`Llp ~profile ~n_cores:cores program in
      Printf.printf "%d cores: %d cycles, speedup %.2fx (paper: 1.9x on 2 cores)%s\n"
        cores m.Voltron.Run.cycles
        (float_of_int base /. float_of_int m.Voltron.Run.cycles)
        (if m.Voltron.Run.verified then "" else "  [VERIFICATION FAILED]"))
    [ 2; 4 ]
