(* The paper's Fig. 8 worked example: 164.gzip's longest-match loop,

       do { ... } while scan-words = match-words && scan < strend

   Its two independent load streams (scan and match) make it ideal for
   fine-grain strands: eBUG puts each stream on its own core so their
   cache misses overlap, and the loop condition travels the queue-mode
   operand network as a predicate SEND/RECV (Fig. 8(b)/(c)). The paper
   reports 1.2x on 2 cores.

     dune exec examples/strands_gzip.exe *)

module Suite = Voltron_workloads.Suite
module Stats = Voltron_machine.Stats

let () =
  let program = Suite.micro_gzip_strands () in
  let profile = Voltron_analysis.Profile.collect program in
  let base = Voltron.Run.baseline_cycles ~profile program in
  Printf.printf "sequential baseline: %d cycles\n\n" base;
  List.iter
    (fun (name, choice) ->
      let m = Voltron.Run.run ~choice ~profile ~n_cores:2 program in
      let st = m.Voltron.Run.stats in
      let sum pick = pick (Stats.core st 0) + pick (Stats.core st 1) in
      Printf.printf
        "%-18s %6d cycles  speedup %.2fx  (D-stalls %d, recv-pred %d)%s\n"
        name m.Voltron.Run.cycles
        (float_of_int base /. float_of_int m.Voltron.Run.cycles)
        (sum (fun c -> c.Stats.d_stall))
        (sum (fun c -> c.Stats.recv_pred_stall))
        (if m.Voltron.Run.verified then "" else "  [VERIFICATION FAILED]"))
    [
      ("strands (2 cores)", `Tlp);
      ("coupled ILP", `Ilp);
      ("hybrid", `Hybrid);
    ];
  print_endline "\npaper: 1.2x with strands on 2 cores";
  print_endline
    "note the predicate-receive stalls in the strands build: the loop-exit\n\
     condition is computed on one core and shipped to its peer every\n\
     iteration over the queue network (paper 3.2)"
