(* The benchmark harness: regenerates every figure of the paper's
   evaluation (§5.2) as printed series, plus Bechamel micro-benchmarks of
   the toolchain itself (one Test.make per figure pipeline).

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig10 fig13  # specific figures
     dune exec bench/main.exe -- quick        # reduced-scale, no bechamel
     dune exec bench/main.exe -- bechamel     # toolchain timing only

   Shape targets (paper): 2-core averages ILP 1.23 / TLP 1.16 / LLP 1.18,
   hybrid 1.46; 4-core 1.33 / 1.23 / 1.37, hybrid 1.83; decoupled mode
   well below coupled mode on cache-miss stalls (Fig. 12); hybrid at least
   the best single strategy per benchmark (Fig. 13). Measured numbers are
   recorded in EXPERIMENTS.md. *)

module E = Voltron.Experiments

let line () = print_endline (String.make 78 '=')

let run_figure ~scale name =
  line ();
  (match name with
  | "fig3" -> E.print_fig3 (E.fig3 ~scale ())
  | "fig10" -> E.print_fig10 (E.fig10 ~scale ())
  | "fig11" -> E.print_fig11 (E.fig11 ~scale ())
  | "fig12" -> E.print_fig12 (E.fig12 ~scale ())
  | "fig13" -> E.print_fig13 (E.fig13 ~scale ())
  | "fig14" -> E.print_fig14 (E.fig14 ~scale ())
  | "micro" -> E.print_micro (E.micro ~scale ())
  | "resilience" -> E.print_resilience (E.resilience ~scale ())
  | other -> Printf.printf "unknown figure: %s\n" other);
  print_newline ()

let run_ablations ~scale () =
  line ();
  print_endline "Ablations (design-choice studies beyond the paper's figures)";
  E.print_ablations ~title:"A1: dual-mode value — hybrid vs committing to one mode (4 cores)"
    (E.ablation_modes ~scale ());
  print_newline ();
  E.print_ablations ~title:"A2: queue channel capacity (epic, forced TLP, 4 cores)"
    (E.ablation_capacity ~scale ());
  print_newline ();
  E.print_ablations
    ~title:"A3: main-memory latency — decoupled tolerance vs coupled fragility (179.art, 4 cores)"
    (E.ablation_memlat ~scale ());
  print_newline ();
  E.print_ablations
    ~title:"A4: TM mis-speculation — profiled clean, run with collisions (scatter RMW, 4 cores)"
    (E.ablation_tm ~scale ());
  print_newline ();
  E.print_ablations ~title:"A5: core scaling, hybrid (coupled groups capped at 4)"
    (E.ablation_scaling ~scale ());
  print_newline ();
  E.print_ablations
    ~title:"A6: if-conversion — predicating away a strand loop's branch (forced TLP, 4 cores)"
    (E.ablation_ifconv ~scale ());
  print_newline ();
  E.print_ablations
    ~title:"A7: energy and EDP — 4-core hybrid vs 1-core baseline (first-order model)"
    (E.ablation_energy ~scale ());
  print_newline ();
  E.print_ablations
    ~title:"A8: one wide-issue core vs four simple Voltron cores (speedup over 1-issue serial)"
    (E.ablation_issue_width ~scale ());
  print_newline ()

let figures =
  [ "fig3"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14"; "micro"; "resilience" ]

(* --- Bechamel: wall-clock cost of each figure's pipeline ------------------- *)

let bechamel_tests =
  let open Bechamel in
  let slice = [ "cjpeg" ] in
  Test.make_grouped ~name:"figures"
    [
      Test.make ~name:"fig3" (Staged.stage (fun () -> E.fig3 ~scale:0.2 ~benches:slice ()));
      Test.make ~name:"fig10" (Staged.stage (fun () -> E.fig10 ~scale:0.2 ~benches:slice ()));
      Test.make ~name:"fig11" (Staged.stage (fun () -> E.fig11 ~scale:0.2 ~benches:slice ()));
      Test.make ~name:"fig12" (Staged.stage (fun () -> E.fig12 ~scale:0.2 ~benches:slice ()));
      Test.make ~name:"fig13" (Staged.stage (fun () -> E.fig13 ~scale:0.2 ~benches:slice ()));
      Test.make ~name:"fig14" (Staged.stage (fun () -> E.fig14 ~scale:0.2 ~benches:slice ()));
      Test.make ~name:"micro" (Staged.stage (fun () -> E.micro ~scale:0.2 ()));
    ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  line ();
  print_endline
    "Bechamel: time per figure pipeline (compile + simulate, cjpeg slice at scale 0.2)";
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances bechamel_tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est /. 1e6) :: !rows
      | Some _ | None -> ())
    results;
  List.iter
    (fun (name, ms) -> Printf.printf "  %-20s %8.1f ms/run\n" name ms)
    (List.sort compare !rows);
  print_newline ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let scale = if List.mem "quick" args then 0.25 else 1.0 in
  let wanted = List.filter (fun a -> List.mem a figures) args in
  let wanted = if wanted = [] then figures else wanted in
  let t0 = Unix.gettimeofday () in
  if args = [ "bechamel" ] then run_bechamel ()
  else if args = [ "ablations" ] then run_ablations ~scale:1.0 ()
  else begin
    Printf.printf
      "Voltron evaluation harness — reproducing the paper's figures (scale %.2f)\n"
      scale;
    List.iter (run_figure ~scale) wanted;
    if not (List.mem "quick" args) then begin
      run_ablations ~scale ();
      run_bechamel ()
    end
  end;
  line ();
  Printf.printf "total harness time: %.1fs\n" (Unix.gettimeofday () -. t0)
