lib/core/run.mli: Voltron_analysis Voltron_compiler Voltron_fault Voltron_ir Voltron_machine
