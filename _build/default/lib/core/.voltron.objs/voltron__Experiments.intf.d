lib/core/experiments.mli:
