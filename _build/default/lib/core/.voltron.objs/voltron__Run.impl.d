lib/core/run.ml: List Voltron_compiler Voltron_fault Voltron_machine Voltron_mem
