lib/core/run.ml: Voltron_compiler Voltron_machine Voltron_mem
