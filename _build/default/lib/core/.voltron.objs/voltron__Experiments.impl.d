lib/core/experiments.ml: Hashtbl List Option Printf Run Voltron_analysis Voltron_compiler Voltron_fault Voltron_ir Voltron_isa Voltron_machine Voltron_mem Voltron_util Voltron_workloads
