module Config = Voltron_machine.Config
module Machine = Voltron_machine.Machine
module Driver = Voltron_compiler.Driver

type measurement = {
  cycles : int;
  stats : Voltron_machine.Stats.t;
  verified : bool;
  plan : Voltron_compiler.Select.planned_region list;
  energy : Voltron_machine.Energy.report;
}

let run ?(choice = `Hybrid) ?profile ?(tweak = fun c -> c) ~n_cores program =
  let machine = tweak (Config.default ~n_cores) in
  let compiled = Driver.compile ~machine ~choice ?profile program in
  let m = Machine.create machine compiled.Driver.executable in
  let result = Machine.run m in
  (match result.Machine.outcome with
  | Machine.Finished -> ()
  | Machine.Out_of_cycles -> failwith "simulation exceeded the cycle cap"
  | Machine.Deadlock d -> failwith ("simulated deadlock: " ^ d));
  let sum =
    Voltron_mem.Memory.checksum_prefix (Machine.memory m)
      compiled.Driver.array_footprint
  in
  {
    cycles = result.Machine.cycles;
    stats = Machine.stats m;
    verified = sum = compiled.Driver.oracle_checksum;
    plan = compiled.Driver.plan;
    energy =
      Voltron_machine.Energy.of_run ~stats:(Machine.stats m)
        ~coherence:(Machine.coherence m) ~network:(Machine.network m) ();
  }

let baseline_cycles ?profile program =
  (run ~choice:`Seq ?profile ~n_cores:1 program).cycles

let speedup ?(choice = `Hybrid) ~n_cores program =
  let base = baseline_cycles program in
  let m = run ~choice ~n_cores program in
  if not m.verified then failwith "speedup: memory image diverged from oracle";
  float_of_int base /. float_of_int m.cycles
