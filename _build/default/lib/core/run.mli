(** One-call compile-and-simulate helpers — the facade most users (and the
    examples, CLI and benchmark harness) go through. *)

type measurement = {
  cycles : int;
  stats : Voltron_machine.Stats.t;
  verified : bool;  (** memory image matched the reference interpreter *)
  plan : Voltron_compiler.Select.planned_region list;
  energy : Voltron_machine.Energy.report;
}

val run :
  ?choice:Voltron_compiler.Select.choice ->
  ?profile:Voltron_analysis.Profile.t ->
  ?tweak:(Voltron_machine.Config.t -> Voltron_machine.Config.t) ->
  n_cores:int ->
  Voltron_ir.Hir.program ->
  measurement
(** Compile (default [`Hybrid]) for an [n_cores] Voltron and simulate to
    completion. [tweak] adjusts the machine configuration (cache
    latencies, network capacity, ...) before compiling — used by the
    ablation benches. Raises [Failure] on simulator deadlock/overflow. *)

val baseline_cycles : ?profile:Voltron_analysis.Profile.t -> Voltron_ir.Hir.program -> int
(** Single-core sequential cycles (the paper's 1.0 reference). *)

val speedup :
  ?choice:Voltron_compiler.Select.choice ->
  n_cores:int ->
  Voltron_ir.Hir.program ->
  float
(** [baseline / parallel] cycles; also asserts verification. *)
