(** Abstract syntax of VC ("Voltron C"), the small C-like language the
    toolchain accepts as source (the paper compiles C through Trimaran;
    this is our equivalent front door). See [lib/lang/README] in
    [frontend.mli] for the grammar, and [examples/programs/] for real
    programs.

    All values are machine integers. Positions are byte-oriented
    line/column pairs used in error messages. *)

type pos = { line : int; col : int }

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor  (** logical and/or over 0/1 values; NOT short-circuit *)

type expr =
  | Int of int
  | Var of string * pos
  | Index of string * expr * pos  (** array element read *)
  | Bin of binop * expr * expr
  | Neg of expr
  | Ternary of expr * expr * expr

type stmt =
  | Decl of string * expr * pos  (** var x = e; *)
  | Assign of string * expr * pos  (** x = e; *)
  | Store of string * expr * expr * pos  (** a[e1] = e2; *)
  | If of expr * block * block
  | For of { var : string; init : expr; limit : expr; step : int; body : block; pos : pos }
  | DoWhile of block * expr

and block = stmt list

type array_init =
  | Zero
  | Random of int * int * int  (** lo, hi, seed *)
  | Fill of expr  (** element formula over the index variable [i] *)

type decl = {
  arr_name : string;
  arr_size : int;
  arr_init : array_init;
  arr_pos : pos;
}

type region = { reg_name : string; reg_body : block; reg_pos : pos }

type program = {
  prog_name : string;
  decls : decl list;
  regions : region list;
}

val pp_expr : Format.formatter -> expr -> unit

val pp_program : Format.formatter -> program -> unit
(** Re-printable concrete syntax: [parse (print p)] elaborates to the same
    program (exercised by the round-trip property tests). *)
