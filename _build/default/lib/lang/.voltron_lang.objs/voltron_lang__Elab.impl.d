lib/lang/elab.ml: Array Ast List Map Printf String Voltron_ir Voltron_isa Voltron_util
