lib/lang/frontend.ml: Ast Elab Filename Lexer Parser Printf
