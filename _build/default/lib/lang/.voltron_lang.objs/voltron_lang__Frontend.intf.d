lib/lang/frontend.mli: Voltron_ir
