lib/lang/elab.mli: Ast Voltron_ir
