type token =
  | INT of int
  | IDENT of string
  | KW_ARRAY | KW_REGION | KW_VAR | KW_FOR | KW_IF | KW_ELSE
  | KW_DO | KW_WHILE | KW_RANDOM | KW_FILL
  | LPAREN | RPAREN | LBRACK | RBRACK | LBRACE | RBRACE
  | SEMI | COMMA | QUESTION | COLON
  | ASSIGN | PLUSEQ
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | AMPAMP | PIPEPIPE
  | SHL | SHR | LT | LE | GT | GE | EQEQ | NE
  | EOF

exception Error of Ast.pos * string

let keyword_of = function
  | "array" -> Some KW_ARRAY
  | "region" -> Some KW_REGION
  | "var" -> Some KW_VAR
  | "for" -> Some KW_FOR
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "do" -> Some KW_DO
  | "while" -> Some KW_WHILE
  | "random" -> Some KW_RANDOM
  | "fill" -> Some KW_FILL
  | _ -> None

let token_name = function
  | INT i -> string_of_int i
  | IDENT s -> s
  | KW_ARRAY -> "array" | KW_REGION -> "region" | KW_VAR -> "var"
  | KW_FOR -> "for" | KW_IF -> "if" | KW_ELSE -> "else"
  | KW_DO -> "do" | KW_WHILE -> "while" | KW_RANDOM -> "random"
  | KW_FILL -> "fill"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACK -> "[" | RBRACK -> "]"
  | LBRACE -> "{" | RBRACE -> "}" | SEMI -> ";" | COMMA -> ","
  | QUESTION -> "?" | COLON -> ":"
  | ASSIGN -> "=" | PLUSEQ -> "+="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | AMPAMP -> "&&" | PIPEPIPE -> "||"
  | SHL -> "<<" | SHR -> ">>" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | EQEQ -> "==" | NE -> "!="
  | EOF -> "<eof>"

type cursor = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let pos c = { Ast.line = c.line; col = c.col }

let peek c = if c.off < String.length c.src then Some c.src.[c.off] else None

let peek2 c =
  if c.off + 1 < String.length c.src then Some c.src.[c.off + 1] else None

let advance c =
  (match peek c with
  | Some '\n' ->
    c.line <- c.line + 1;
    c.col <- 1
  | Some _ -> c.col <- c.col + 1
  | None -> ());
  c.off <- c.off + 1

let is_digit ch = ch >= '0' && ch <= '9'

let is_ident_start ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'

let is_ident ch = is_ident_start ch || is_digit ch || ch = '.'

let rec skip_trivia c =
  match peek c with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance c;
    skip_trivia c
  | Some '/' when peek2 c = Some '/' ->
    while peek c <> None && peek c <> Some '\n' do
      advance c
    done;
    skip_trivia c
  | Some '/' when peek2 c = Some '*' ->
    let start = pos c in
    advance c;
    advance c;
    let rec close () =
      match (peek c, peek2 c) with
      | Some '*', Some '/' ->
        advance c;
        advance c
      | Some _, _ ->
        advance c;
        close ()
      | None, _ -> raise (Error (start, "unterminated block comment"))
    in
    close ();
    skip_trivia c
  | Some _ | None -> ()

let lex_number c =
  let start = c.off in
  while (match peek c with Some ch -> is_digit ch | None -> false) do
    advance c
  done;
  int_of_string (String.sub c.src start (c.off - start))

let lex_ident c =
  let start = c.off in
  while (match peek c with Some ch -> is_ident ch | None -> false) do
    advance c
  done;
  String.sub c.src start (c.off - start)

let next_token c =
  skip_trivia c;
  let p = pos c in
  let simple tok = advance c; (tok, p) in
  let two tok = advance c; advance c; (tok, p) in
  match peek c with
  | None -> (EOF, p)
  | Some ch when is_digit ch -> (INT (lex_number c), p)
  | Some ch when is_ident_start ch -> (
    let word = lex_ident c in
    match keyword_of word with
    | Some kw -> (kw, p)
    | None -> (IDENT word, p))
  | Some '(' -> simple LPAREN
  | Some ')' -> simple RPAREN
  | Some '[' -> simple LBRACK
  | Some ']' -> simple RBRACK
  | Some '{' -> simple LBRACE
  | Some '}' -> simple RBRACE
  | Some ';' -> simple SEMI
  | Some ',' -> simple COMMA
  | Some '?' -> simple QUESTION
  | Some ':' -> simple COLON
  | Some '+' -> if peek2 c = Some '=' then two PLUSEQ else simple PLUS
  | Some '-' -> simple MINUS
  | Some '*' -> simple STAR
  | Some '/' -> simple SLASH
  | Some '%' -> simple PERCENT
  | Some '^' -> simple CARET
  | Some '&' -> if peek2 c = Some '&' then two AMPAMP else simple AMP
  | Some '|' -> if peek2 c = Some '|' then two PIPEPIPE else simple PIPE
  | Some '<' ->
    if peek2 c = Some '<' then two SHL
    else if peek2 c = Some '=' then two LE
    else simple LT
  | Some '>' ->
    if peek2 c = Some '>' then two SHR
    else if peek2 c = Some '=' then two GE
    else simple GT
  | Some '=' -> if peek2 c = Some '=' then two EQEQ else simple ASSIGN
  | Some '!' ->
    if peek2 c = Some '=' then two NE
    else raise (Error (p, "unexpected character '!'"))
  | Some ch -> raise (Error (p, Printf.sprintf "unexpected character %C" ch))

let tokenize src =
  let c = { src; off = 0; line = 1; col = 1 } in
  let rec go acc =
    let tok, p = next_token c in
    if tok = EOF then List.rev ((EOF, p) :: acc) else go ((tok, p) :: acc)
  in
  go []
