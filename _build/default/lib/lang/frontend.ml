exception Error of { line : int; col : int; msg : string }

let reraise (pos : Ast.pos) msg =
  raise (Error { line = pos.Ast.line; col = pos.Ast.col; msg })

let parse_string ~name src =
  match Elab.program (Parser.parse ~name src) with
  | program -> program
  | exception Parser.Error (pos, msg) -> reraise pos msg
  | exception Lexer.Error (pos, msg) -> reraise pos msg
  | exception Elab.Error (pos, msg) -> reraise pos msg

let parse_file path =
  let ic = open_in_bin path in
  let src =
    match really_input_string ic (in_channel_length ic) with
    | src ->
      close_in ic;
      src
    | exception e ->
      close_in ic;
      raise e
  in
  let name = Filename.remove_extension (Filename.basename path) in
  parse_string ~name src

let error_to_string = function
  | Error { line; col; msg } ->
    Some (Printf.sprintf "line %d, column %d: %s" line col msg)
  | Parser.Error (pos, msg) | Lexer.Error (pos, msg) | Elab.Error (pos, msg) ->
    Some (Printf.sprintf "line %d, column %d: %s" pos.Ast.line pos.Ast.col msg)
  | _ -> None
