(** Elaboration of a parsed VC program into {!Voltron_ir.Hir}.

    Scoping is lexical: [var] declarations are visible to the end of their
    enclosing block and may shadow outer names; scalars are region-local
    (regions exchange data through arrays, which keeps every region
    register-closed, as the compiler requires). Loop variables are bound
    by their [for] and cannot be assigned. [&&]/[||] are evaluated without
    short-circuiting (both sides always execute), matching the predicated
    VLIW target.

    Array initialisers are evaluated at elaboration time with the shared
    ISA arithmetic, so `fill(i * 3 + 1)` in source and the same expression
    executed by the simulator agree exactly. *)

exception Error of Ast.pos * string

val program : Ast.program -> Voltron_ir.Hir.program
