(** Hand-written lexer for VC source. Tracks line/column positions for
    error messages; supports [//] line comments and [/* ... */] block
    comments. *)

type token =
  | INT of int
  | IDENT of string
  | KW_ARRAY | KW_REGION | KW_VAR | KW_FOR | KW_IF | KW_ELSE
  | KW_DO | KW_WHILE | KW_RANDOM | KW_FILL
  | LPAREN | RPAREN | LBRACK | RBRACK | LBRACE | RBRACE
  | SEMI | COMMA | QUESTION | COLON
  | ASSIGN | PLUSEQ
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | AMPAMP | PIPEPIPE
  | SHL | SHR | LT | LE | GT | GE | EQEQ | NE
  | EOF

exception Error of Ast.pos * string

val tokenize : string -> (token * Ast.pos) list
(** Raises {!Error} on an unexpected character or unterminated comment. *)

val token_name : token -> string
(** For error messages. *)
