exception Error of Ast.pos * string

type state = {
  mutable toks : (Lexer.token * Ast.pos) list;
}

let peek st =
  match st.toks with
  | (tok, pos) :: _ -> (tok, pos)
  | [] -> (Lexer.EOF, { Ast.line = 0; col = 0 })

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let fail pos what = raise (Error (pos, what))

let expect st tok what =
  let t, pos = peek st in
  if t = tok then advance st
  else fail pos (Printf.sprintf "expected %s, found '%s'" what (Lexer.token_name t))

let expect_ident st what =
  match peek st with
  | Lexer.IDENT x, _ ->
    advance st;
    x
  | t, pos ->
    fail pos (Printf.sprintf "expected %s, found '%s'" what (Lexer.token_name t))

let expect_int st what =
  match peek st with
  | Lexer.INT i, _ ->
    advance st;
    i
  | Lexer.MINUS, _ -> (
    advance st;
    match peek st with
    | Lexer.INT i, _ ->
      advance st;
      -i
    | t, pos ->
      fail pos (Printf.sprintf "expected %s, found '%s'" what (Lexer.token_name t)))
  | t, pos ->
    fail pos (Printf.sprintf "expected %s, found '%s'" what (Lexer.token_name t))

(* --- Expressions: precedence climbing ------------------------------------- *)

(* Binding powers, loosest first:
   ?:  ||  &&  |  ^  &  ==/!=  </<=/>/>=  <</>>  +/-  *//...  unary *)
let binop_of_token (tok : Lexer.token) : (Ast.binop * int) option =
  match tok with
  | Lexer.PIPEPIPE -> Some (Ast.Lor, 1)
  | Lexer.AMPAMP -> Some (Ast.Land, 2)
  | Lexer.PIPE -> Some (Ast.Or, 3)
  | Lexer.CARET -> Some (Ast.Xor, 4)
  | Lexer.AMP -> Some (Ast.And, 5)
  | Lexer.EQEQ -> Some (Ast.Eq, 6)
  | Lexer.NE -> Some (Ast.Ne, 6)
  | Lexer.LT -> Some (Ast.Lt, 7)
  | Lexer.LE -> Some (Ast.Le, 7)
  | Lexer.GT -> Some (Ast.Gt, 7)
  | Lexer.GE -> Some (Ast.Ge, 7)
  | Lexer.SHL -> Some (Ast.Shl, 8)
  | Lexer.SHR -> Some (Ast.Shr, 8)
  | Lexer.PLUS -> Some (Ast.Add, 9)
  | Lexer.MINUS -> Some (Ast.Sub, 9)
  | Lexer.STAR -> Some (Ast.Mul, 10)
  | Lexer.SLASH -> Some (Ast.Div, 10)
  | Lexer.PERCENT -> Some (Ast.Rem, 10)
  | _ -> None

let rec parse_ternary st =
  let cond = parse_binary st 1 in
  match peek st with
  | Lexer.QUESTION, _ ->
    advance st;
    let then_ = parse_ternary st in
    expect st Lexer.COLON "':' in conditional expression";
    let else_ = parse_ternary st in
    Ast.Ternary (cond, then_, else_)
  | _ -> cond

and parse_binary st min_bp =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (fst (peek st)) with
    | Some (op, bp) when bp >= min_bp ->
      advance st;
      let rhs = parse_binary st (bp + 1) in
      lhs := Ast.Bin (op, !lhs, rhs)
    | Some _ | None -> continue_ := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Lexer.MINUS, _ ->
    advance st;
    Ast.Neg (parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.INT i, _ ->
    advance st;
    Ast.Int i
  | Lexer.LPAREN, _ ->
    advance st;
    let e = parse_ternary st in
    expect st Lexer.RPAREN "')'";
    e
  | Lexer.IDENT x, pos -> (
    advance st;
    match peek st with
    | Lexer.LBRACK, _ ->
      advance st;
      let idx = parse_ternary st in
      expect st Lexer.RBRACK "']'";
      Ast.Index (x, idx, pos)
    | _ -> Ast.Var (x, pos))
  | t, pos ->
    fail pos (Printf.sprintf "expected an expression, found '%s'" (Lexer.token_name t))

(* --- Statements -------------------------------------------------------------- *)

let rec parse_stmt st : Ast.stmt =
  match peek st with
  | Lexer.KW_VAR, pos ->
    advance st;
    let x = expect_ident st "a variable name after 'var'" in
    expect st Lexer.ASSIGN "'=' in variable declaration";
    let e = parse_ternary st in
    expect st Lexer.SEMI "';'";
    Ast.Decl (x, e, pos)
  | Lexer.KW_IF, _ ->
    advance st;
    expect st Lexer.LPAREN "'(' after 'if'";
    let cond = parse_ternary st in
    expect st Lexer.RPAREN "')'";
    let then_ = parse_block st in
    let else_ =
      match peek st with
      | Lexer.KW_ELSE, _ ->
        advance st;
        parse_block st
      | _ -> []
    in
    Ast.If (cond, then_, else_)
  | Lexer.KW_FOR, pos ->
    advance st;
    expect st Lexer.LPAREN "'(' after 'for'";
    let var = expect_ident st "the loop variable" in
    expect st Lexer.ASSIGN "'=' in loop initialisation";
    let init = parse_ternary st in
    expect st Lexer.SEMI "';'";
    let var2 = expect_ident st "the loop variable in the condition" in
    if var2 <> var then
      fail pos
        (Printf.sprintf "loop condition must test '%s', found '%s'" var var2);
    expect st Lexer.LT "'<' (loops iterate while var < limit)";
    let limit = parse_ternary st in
    expect st Lexer.SEMI "';'";
    let var3 = expect_ident st "the loop variable in the step" in
    if var3 <> var then
      fail pos (Printf.sprintf "loop step must update '%s', found '%s'" var var3);
    expect st Lexer.PLUSEQ "'+=' (loops step by a positive constant)";
    let step = expect_int st "a positive step constant" in
    if step <= 0 then fail pos "loop step must be positive";
    expect st Lexer.RPAREN "')'";
    let body = parse_block st in
    Ast.For { var; init; limit; step; body; pos }
  | Lexer.KW_DO, _ ->
    advance st;
    let body = parse_block st in
    expect st Lexer.KW_WHILE "'while' after do-block";
    expect st Lexer.LPAREN "'('";
    let cond = parse_ternary st in
    expect st Lexer.RPAREN "')'";
    expect st Lexer.SEMI "';'";
    Ast.DoWhile (body, cond)
  | Lexer.IDENT x, pos -> (
    advance st;
    match peek st with
    | Lexer.LBRACK, _ ->
      advance st;
      let idx = parse_ternary st in
      expect st Lexer.RBRACK "']'";
      expect st Lexer.ASSIGN "'=' in array store";
      let v = parse_ternary st in
      expect st Lexer.SEMI "';'";
      Ast.Store (x, idx, v, pos)
    | Lexer.ASSIGN, _ ->
      advance st;
      let e = parse_ternary st in
      expect st Lexer.SEMI "';'";
      Ast.Assign (x, e, pos)
    | t, p ->
      fail p
        (Printf.sprintf "expected '=' or '[' after '%s', found '%s'" x
           (Lexer.token_name t)))
  | t, pos ->
    fail pos (Printf.sprintf "expected a statement, found '%s'" (Lexer.token_name t))

and parse_block st : Ast.block =
  expect st Lexer.LBRACE "'{'";
  let rec stmts acc =
    match peek st with
    | Lexer.RBRACE, _ ->
      advance st;
      List.rev acc
    | Lexer.EOF, pos -> fail pos "unexpected end of file inside a block"
    | _ -> stmts (parse_stmt st :: acc)
  in
  stmts []

(* --- Top level ----------------------------------------------------------------- *)

let parse_array_decl st pos : Ast.decl =
  let arr_name = expect_ident st "an array name" in
  expect st Lexer.LBRACK "'['";
  let arr_size = expect_int st "the array size" in
  expect st Lexer.RBRACK "']'";
  let arr_init =
    match peek st with
    | Lexer.ASSIGN, _ -> (
      advance st;
      match peek st with
      | Lexer.KW_RANDOM, _ ->
        advance st;
        expect st Lexer.LPAREN "'('";
        let lo = expect_int st "the lower bound" in
        expect st Lexer.COMMA "','";
        let hi = expect_int st "the upper bound" in
        expect st Lexer.COMMA "','";
        let seed = expect_int st "the seed" in
        expect st Lexer.RPAREN "')'";
        Ast.Random (lo, hi, seed)
      | Lexer.KW_FILL, _ ->
        advance st;
        expect st Lexer.LPAREN "'('";
        let e = parse_ternary st in
        expect st Lexer.RPAREN "')'";
        Ast.Fill e
      | t, p ->
        fail p
          (Printf.sprintf "expected random(...) or fill(...), found '%s'"
             (Lexer.token_name t)))
    | _ -> Ast.Zero
  in
  expect st Lexer.SEMI "';'";
  { Ast.arr_name; arr_size; arr_init; arr_pos = pos }

let parse ~name src =
  let toks =
    try Lexer.tokenize src with Lexer.Error (pos, msg) -> raise (Error (pos, msg))
  in
  let st = { toks } in
  let decls = ref [] and regions = ref [] in
  let rec go () =
    match peek st with
    | Lexer.EOF, _ -> ()
    | Lexer.KW_ARRAY, pos ->
      advance st;
      decls := parse_array_decl st pos :: !decls;
      go ()
    | Lexer.KW_REGION, pos ->
      advance st;
      let reg_name = expect_ident st "a region name" in
      let reg_body = parse_block st in
      regions := { Ast.reg_name; reg_body; reg_pos = pos } :: !regions;
      go ()
    | t, pos ->
      fail pos
        (Printf.sprintf "expected 'array' or 'region' at top level, found '%s'"
           (Lexer.token_name t))
  in
  go ();
  { Ast.prog_name = name; decls = List.rev !decls; regions = List.rev !regions }

let parse_expr src =
  let toks =
    try Lexer.tokenize src with Lexer.Error (pos, msg) -> raise (Error (pos, msg))
  in
  let st = { toks } in
  let e = parse_ternary st in
  (match peek st with
  | Lexer.EOF, _ -> ()
  | t, pos ->
    fail pos (Printf.sprintf "trailing input: '%s'" (Lexer.token_name t)));
  e
