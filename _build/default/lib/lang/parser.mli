(** Recursive-descent parser for VC source. Produces {!Ast.program}; all
    failures raise {!Error} with a position and a message naming what was
    expected. *)

exception Error of Ast.pos * string

val parse : name:string -> string -> Ast.program
(** [parse ~name src] parses a whole translation unit. [name] becomes the
    program name. Lexer errors are re-raised as {!Error}. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used by tests). *)
