module B = Voltron_ir.Builder
module Hir = Voltron_ir.Hir
module Inst = Voltron_isa.Inst
module Semantics = Voltron_isa.Semantics

exception Error of Ast.pos * string

module Env = Map.Make (String)

type binding =
  | Scalar of Hir.vreg
  | Loop_var of Hir.vreg
  | Array of Hir.arr

let fail pos msg = raise (Error (pos, msg))

(* --- Constant evaluation for fill(...) initialisers ------------------------ *)

let rec eval_fill pos env (e : Ast.expr) =
  match e with
  | Ast.Int i -> i
  | Ast.Var ("i", _) -> env
  | Ast.Var (x, p) ->
    fail p (Printf.sprintf "only 'i' may appear in fill(...), found '%s'" x)
  | Ast.Index (_, _, p) -> fail p "array reads cannot appear in fill(...)"
  | Ast.Neg a -> -eval_fill pos env a
  | Ast.Ternary (c, t, f) ->
    if Semantics.truthy (eval_fill pos env c) then eval_fill pos env t
    else eval_fill pos env f
  | Ast.Bin (op, a, b) -> (
    let va = eval_fill pos env a and vb = eval_fill pos env b in
    match op with
    | Ast.Add -> Semantics.alu Inst.Add va vb
    | Ast.Sub -> Semantics.alu Inst.Sub va vb
    | Ast.Mul -> Semantics.alu Inst.Mul va vb
    | Ast.Div -> Semantics.alu Inst.Div va vb
    | Ast.Rem -> Semantics.alu Inst.Rem va vb
    | Ast.And -> Semantics.alu Inst.And va vb
    | Ast.Or -> Semantics.alu Inst.Or va vb
    | Ast.Xor -> Semantics.alu Inst.Xor va vb
    | Ast.Shl -> Semantics.alu Inst.Shl va vb
    | Ast.Shr -> Semantics.alu Inst.Shr va vb
    | Ast.Lt -> Semantics.cmp Inst.Lt va vb
    | Ast.Le -> Semantics.cmp Inst.Le va vb
    | Ast.Gt -> Semantics.cmp Inst.Gt va vb
    | Ast.Ge -> Semantics.cmp Inst.Ge va vb
    | Ast.Eq -> Semantics.cmp Inst.Eq va vb
    | Ast.Ne -> Semantics.cmp Inst.Ne va vb
    | Ast.Land ->
      if Semantics.truthy va && Semantics.truthy vb then 1 else 0
    | Ast.Lor -> if Semantics.truthy va || Semantics.truthy vb then 1 else 0)

(* --- Expressions ------------------------------------------------------------ *)

let lookup env pos name =
  match Env.find_opt name env with
  | Some b -> b
  | None -> fail pos (Printf.sprintf "unknown name '%s'" name)

let lookup_array env pos name =
  match lookup env pos name with
  | Array a -> a
  | Scalar _ | Loop_var _ ->
    fail pos (Printf.sprintf "'%s' is a scalar, not an array" name)

let lookup_scalarish env pos name =
  match lookup env pos name with
  | Scalar v | Loop_var v -> Hir.Reg v
  | Array _ ->
    fail pos (Printf.sprintf "'%s' is an array; index it with '%s[...]'" name name)

let alu_of = function
  | Ast.Add -> Some Inst.Add | Ast.Sub -> Some Inst.Sub | Ast.Mul -> Some Inst.Mul
  | Ast.Div -> Some Inst.Div | Ast.Rem -> Some Inst.Rem | Ast.And -> Some Inst.And
  | Ast.Or -> Some Inst.Or | Ast.Xor -> Some Inst.Xor | Ast.Shl -> Some Inst.Shl
  | Ast.Shr -> Some Inst.Shr
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.Land | Ast.Lor ->
    None

let cmp_of = function
  | Ast.Lt -> Some Inst.Lt | Ast.Le -> Some Inst.Le | Ast.Gt -> Some Inst.Gt
  | Ast.Ge -> Some Inst.Ge | Ast.Eq -> Some Inst.Eq | Ast.Ne -> Some Inst.Ne
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Rem | Ast.And | Ast.Or
  | Ast.Xor | Ast.Shl | Ast.Shr | Ast.Land | Ast.Lor ->
    None

let rec expr b env (e : Ast.expr) : Hir.operand =
  match e with
  | Ast.Int i -> B.imm i
  | Ast.Var (x, pos) -> lookup_scalarish env pos x
  | Ast.Index (a, idx, pos) ->
    let arr = lookup_array env pos a in
    B.load b arr (expr b env idx)
  | Ast.Neg a -> B.sub b (B.imm 0) (expr b env a)
  | Ast.Ternary (c, t, f) ->
    (* All three operands evaluate (predicated select), like the target. *)
    let vc = expr b env c and vt = expr b env t and vf = expr b env f in
    B.select b vc vt vf
  | Ast.Bin (op, x, y) -> (
    let vx = expr b env x and vy = expr b env y in
    match (alu_of op, cmp_of op) with
    | Some alu, _ -> B.binop b alu vx vy
    | _, Some cmp -> B.cmp b cmp vx vy
    | None, None -> (
      (* Logical and/or: normalise both sides to 0/1, no short circuit. *)
      let nx = B.cmp b Inst.Ne vx (B.imm 0) in
      let ny = B.cmp b Inst.Ne vy (B.imm 0) in
      match op with
      | Ast.Land -> B.binop b Inst.And nx ny
      | Ast.Lor -> B.binop b Inst.Or nx ny
      | _ -> assert false))

(* --- Statements -------------------------------------------------------------- *)

(* Assignments fuse the expression's top operation into the target
   register rather than copying through a temporary: [sum = sum + c]
   becomes the single statement the accumulator recogniser (and DOALL
   expansion) expects. *)
let assigned_expr b env (e : Ast.expr) : Hir.expr =
  match e with
  | Ast.Bin (op, x, y) when alu_of op <> None || cmp_of op <> None -> (
    let vx = expr b env x and vy = expr b env y in
    match (alu_of op, cmp_of op) with
    | Some alu, _ -> Hir.Alu (alu, vx, vy)
    | _, Some cmp -> Hir.Cmp (cmp, vx, vy)
    | None, None -> assert false)
  | Ast.Bin _ -> Hir.Operand (expr b env e)
  | Ast.Ternary (c, t, f) ->
    let vc = expr b env c and vt = expr b env t and vf = expr b env f in
    Hir.Select (vc, vt, vf)
  | Ast.Index (a, idx, pos) ->
    let arr = lookup_array env pos a in
    Hir.Load (arr, expr b env idx)
  | Ast.Int _ | Ast.Var _ | Ast.Neg _ -> Hir.Operand (expr b env e)

let rec stmt b env (s : Ast.stmt) : binding Env.t =
  match s with
  | Ast.Decl (x, e, _) ->
    let v = B.fresh b in
    B.assign b v (assigned_expr b env e);
    Env.add x (Scalar v) env
  | Ast.Assign (x, e, pos) -> (
    match lookup env pos x with
    | Scalar v ->
      B.assign b v (assigned_expr b env e);
      env
    | Loop_var _ -> fail pos (Printf.sprintf "cannot assign to loop variable '%s'" x)
    | Array _ -> fail pos (Printf.sprintf "'%s' is an array; store with '%s[...] = ...'" x x))
  | Ast.Store (a, idx, e, pos) ->
    let arr = lookup_array env pos a in
    let vi = expr b env idx in
    let ve = expr b env e in
    B.store b arr vi ve;
    env
  | Ast.If (c, then_, else_) ->
    let vc = expr b env c in
    B.if_ b vc (fun () -> block b env then_) (fun () -> block b env else_);
    env
  | Ast.For { var; init; limit; step; body; _ } ->
    let vinit = expr b env init in
    let vlimit = expr b env limit in
    B.for_ b ~step ~from:vinit ~limit:vlimit (fun iv ->
        let v = match iv with Hir.Reg r -> r | Hir.Imm _ -> assert false in
        block b (Env.add var (Loop_var v) env) body);
    env
  | Ast.DoWhile (body, cond) ->
    B.do_while b (fun () ->
        let env' = block_env b env body in
        match expr b env' cond with
        | Hir.Reg _ as r -> r
        | Hir.Imm i ->
          (* Builder requires a register condition. *)
          B.mov b (Hir.Imm i));
    env

and block b env stmts = ignore (block_env b env stmts)

and block_env b env stmts = List.fold_left (stmt b) env stmts

(* --- Program ------------------------------------------------------------------ *)

let program (p : Ast.program) =
  let b = B.create p.Ast.prog_name in
  let env =
    List.fold_left
      (fun env (d : Ast.decl) ->
        if Env.mem d.Ast.arr_name env then
          fail d.Ast.arr_pos
            (Printf.sprintf "duplicate array '%s'" d.Ast.arr_name);
        let init =
          match d.Ast.arr_init with
          | Ast.Zero -> None
          | Ast.Random (lo, hi, seed) ->
            if lo > hi then fail d.Ast.arr_pos "random(lo, hi, _) needs lo <= hi";
            let rng = Voltron_util.Rng.create seed in
            let data =
              Array.init d.Ast.arr_size (fun _ ->
                  Voltron_util.Rng.in_range rng lo hi)
            in
            Some (fun i -> data.(i))
          | Ast.Fill e -> Some (fun i -> eval_fill d.Ast.arr_pos i e)
        in
        let arr =
          match init with
          | Some init -> B.array b ~name:d.Ast.arr_name ~size:d.Ast.arr_size ~init ()
          | None -> B.array b ~name:d.Ast.arr_name ~size:d.Ast.arr_size ()
        in
        Env.add d.Ast.arr_name (Array arr) env)
      Env.empty p.Ast.decls
  in
  List.iter
    (fun (r : Ast.region) ->
      (* Scalars are region-local: each region elaborates from the
         arrays-only environment. *)
      B.region b r.Ast.reg_name (fun () -> block b env r.Ast.reg_body))
    p.Ast.regions;
  B.finish b
