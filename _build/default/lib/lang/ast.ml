type pos = { line : int; col : int }

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor

type expr =
  | Int of int
  | Var of string * pos
  | Index of string * expr * pos
  | Bin of binop * expr * expr
  | Neg of expr
  | Ternary of expr * expr * expr

type stmt =
  | Decl of string * expr * pos
  | Assign of string * expr * pos
  | Store of string * expr * expr * pos
  | If of expr * block * block
  | For of { var : string; init : expr; limit : expr; step : int; body : block; pos : pos }
  | DoWhile of block * expr

and block = stmt list

type array_init =
  | Zero
  | Random of int * int * int
  | Fill of expr

type decl = {
  arr_name : string;
  arr_size : int;
  arr_init : array_init;
  arr_pos : pos;
}

type region = { reg_name : string; reg_body : block; reg_pos : pos }

type program = {
  prog_name : string;
  decls : decl list;
  regions : region list;
}

(* --- Printing: parenthesise fully, so re-parsing is trivially faithful. --- *)

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | And -> "&" | Or -> "|" | Xor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Land -> "&&" | Lor -> "||"

let rec pp_expr ppf = function
  | Int i -> if i < 0 then Format.fprintf ppf "(%d)" i else Format.fprintf ppf "%d" i
  | Var (x, _) -> Format.pp_print_string ppf x
  | Index (a, e, _) -> Format.fprintf ppf "%s[%a]" a pp_expr e
  | Bin (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Neg e -> Format.fprintf ppf "(-%a)" pp_expr e
  | Ternary (c, t, e) ->
    Format.fprintf ppf "(%a ? %a : %a)" pp_expr c pp_expr t pp_expr e

let rec pp_stmt ppf = function
  | Decl (x, e, _) -> Format.fprintf ppf "@[var %s = %a;@]" x pp_expr e
  | Assign (x, e, _) -> Format.fprintf ppf "@[%s = %a;@]" x pp_expr e
  | Store (a, i, v, _) ->
    Format.fprintf ppf "@[%s[%a] = %a;@]" a pp_expr i pp_expr v
  | If (c, t, []) ->
    Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_block t
  | If (c, t, e) ->
    Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr
      c pp_block t pp_block e
  | For { var; init; limit; step; body; _ } ->
    Format.fprintf ppf "@[<v 2>for (%s = %a; %s < %a; %s += %d) {@,%a@]@,}" var
      pp_expr init var pp_expr limit var step pp_block body
  | DoWhile (body, cond) ->
    Format.fprintf ppf "@[<v 2>do {@,%a@]@,} while (%a);" pp_block body pp_expr cond

and pp_block ppf block =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf block

let pp_init ppf = function
  | Zero -> ()
  | Random (lo, hi, seed) -> Format.fprintf ppf " = random(%d, %d, %d)" lo hi seed
  | Fill e -> Format.fprintf ppf " = fill(%a)" pp_expr e

let pp_program ppf p =
  List.iter
    (fun d ->
      Format.fprintf ppf "array %s[%d]%a;@." d.arr_name d.arr_size pp_init
        d.arr_init)
    p.decls;
  List.iter
    (fun r ->
      Format.fprintf ppf "@[<v 2>region %s {@,%a@]@,}@." r.reg_name pp_block
        r.reg_body)
    p.regions
