(** The VC front end: source text to {!Voltron_ir.Hir} in one call.

    VC is a small C-like language over machine integers, symbolic arrays
    and named regions — the toolchain's equivalent of the C the paper
    compiles. Grammar sketch:

    {v
    program  ::= (array | region)*
    array    ::= "array" name "[" int "]"
                 ("=" ("random" "(" lo "," hi "," seed ")"
                      | "fill" "(" expr-over-i ")"))? ";"
    region   ::= "region" name block
    block    ::= "{" stmt* "}"
    stmt     ::= "var" name "=" expr ";"
               | name "=" expr ";"
               | name "[" expr "]" "=" expr ";"
               | "if" "(" expr ")" block ("else" block)?
               | "for" "(" v "=" expr ";" v "<" expr ";" v "+=" int ")" block
               | "do" block "while" "(" expr ")" ";"
    expr     ::= C expressions over int literals, scalars, array reads
                 a[e], with ?:, ||, &&, |, ^, &, ==/!=, relational,
                 shifts, additive, multiplicative, unary minus
    v}

    Comments: [//] to end of line and [/* ... */]. [&&]/[||] do not
    short-circuit (both sides always evaluate — the target is a predicated
    VLIW). Regions run in order; scalars are region-local; regions share
    data through arrays. See [examples/programs/] for complete sources. *)

exception Error of { line : int; col : int; msg : string }

val parse_string : name:string -> string -> Voltron_ir.Hir.program
(** Parse and elaborate; raises {!Error} with position info. *)

val parse_file : string -> Voltron_ir.Hir.program
(** [parse_file path] names the program after the file's basename. Raises
    [Sys_error] if unreadable, {!Error} on syntax/elaboration errors. *)

val error_to_string : exn -> string option
(** Render {!Error} (or the underlying lexer/parser/elab errors) as
    "line L, column C: msg"; [None] for unrelated exceptions. *)
