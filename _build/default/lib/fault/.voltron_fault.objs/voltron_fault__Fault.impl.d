lib/fault/fault.ml: Voltron_util
