lib/fault/ecc.mli:
