lib/fault/ecc.ml: Hashtbl List
