lib/fault/fault.mli:
