(** Deterministic fault injection for the Voltron machine.

    The paper's dual-mode design assumes a perfect scalar operand network
    and conflict-free-until-proven-otherwise transactions. This module is
    the seed of the resilience layer that removes those assumptions: a
    seeded fault model (SplitMix64 via {!Voltron_util.Rng}) that can drop
    or corrupt queue-mode messages, flip bits in cache-resident data,
    spuriously abort TM commit rounds and inject transient per-core stall
    faults — all reproducibly, so that a faulty run is a deterministic
    function of [(program, config, fault_seed)].

    Detection and recovery live with the subsystems: the operand network
    retries lost/corrupted messages with bounded exponential backoff
    ({!backoff}), {!Ecc} models single-error-correcting memory words, and
    the machine reuses TM rollback/serial re-execution for spurious
    aborts. When the injected-fault count crosses [degrade_threshold], the
    machine stops gracefully ([Fault_limit]) and the runner walks the
    degradation {!level} ladder: coupled → decoupled-only → serial on
    core 0. *)

type kind =
  | Msg_drop  (** queue-mode message lost in flight *)
  | Msg_corrupt  (** queue-mode payload bit flip (bad parity on arrival) *)
  | Mem_flip  (** bit flip in a cache-resident data word *)
  | Tm_abort  (** spurious transaction abort at a commit round *)
  | Core_stall  (** transient stall fault freezing one core briefly *)

val kind_name : kind -> string

type config = {
  fault_seed : int;  (** seed for the injection RNG *)
  drop_rate : float;  (** per queue-mode SEND *)
  corrupt_rate : float;  (** per queue-mode SEND *)
  flip_rate : float;  (** per cycle, one word of data memory *)
  tm_abort_rate : float;  (** per resolved TM commit round *)
  stall_rate : float;  (** per core per cycle *)
  stall_cycles : int;  (** length of an injected stall *)
  ecc_penalty : int;  (** extra load-stall cycles when ECC corrects a word *)
  retry_timeout : int;  (** base SEND ack timeout before retransmission *)
  backoff_cap : int;  (** max backoff as a multiple of [retry_timeout] *)
  max_retries : int;  (** retransmissions before a forced clean delivery *)
  degrade_threshold : int;  (** injected faults before degrading; 0 = never *)
}

val disabled : config
(** All rates zero — the default machine configuration. Recovery
    parameters keep sane values so the retry path still works for
    non-fault uses (receive-queue overflow). *)

val uniform : ?seed:int -> ?degrade_threshold:int -> rate:float -> unit -> config
(** Every fault kind at the same [rate]; the workhorse of the resilience
    sweeps. *)

val enabled : config -> bool
(** True when any injection rate is positive. *)

type counters = {
  mutable injected : int;  (** total faults injected, all kinds *)
  mutable msgs_dropped : int;
  mutable msgs_corrupted : int;
  mutable spurious_aborts : int;
  mutable stall_faults : int;
  mutable mem_flips : int;
}

type t

val create : config -> t
val config : t -> config
val counters : t -> counters

val exceeded : t -> bool
(** [degrade_threshold > 0] and at least that many faults injected. *)

(** {1 Decision rolls} — each draws from the injector's RNG, so a fixed
    seed gives an identical fault history for an identical run. *)

val roll_drop : t -> bool
val roll_corrupt : t -> bool
val roll_flip : t -> bool
val roll_tm_abort : t -> bool
val roll_stall : t -> bool

val pick_addr : t -> size:int -> int
(** Victim address for a {!Mem_flip}. *)

val victim : t -> n:int -> int
(** Victim core for a spurious abort. *)

val flip_bit : t -> int -> int
(** Flip one random low bit of a data word. *)

val backoff : t -> attempt:int -> int
(** Bounded exponential backoff: [retry_timeout * 2^(attempt-1)] capped at
    [retry_timeout * backoff_cap]. [attempt] is 1-based. *)

val backoff_of : config -> attempt:int -> int
(** Same, from a bare config (used by the network when no injector is
    attached, e.g. for overflow NACK retries). *)

(** {1 Degradation ladder} *)

type level =
  | Full  (** everything: coupled, decoupled, speculation *)
  | Decoupled_only  (** no lock-step coupling, no TM speculation *)
  | Serial_core0  (** last resort: sequential on core 0 *)

val level_name : level -> string

val degrade : level -> level option
(** The next-safer rung, or [None] at the bottom. *)
