module Rng = Voltron_util.Rng

type kind = Msg_drop | Msg_corrupt | Mem_flip | Tm_abort | Core_stall

let kind_name = function
  | Msg_drop -> "msg-drop"
  | Msg_corrupt -> "msg-corrupt"
  | Mem_flip -> "mem-flip"
  | Tm_abort -> "tm-abort"
  | Core_stall -> "core-stall"

type config = {
  fault_seed : int;
  drop_rate : float;
  corrupt_rate : float;
  flip_rate : float;
  tm_abort_rate : float;
  stall_rate : float;
  stall_cycles : int;
  ecc_penalty : int;
  retry_timeout : int;
  backoff_cap : int;
  max_retries : int;
  degrade_threshold : int;
}

let disabled =
  {
    fault_seed = 1;
    drop_rate = 0.;
    corrupt_rate = 0.;
    flip_rate = 0.;
    tm_abort_rate = 0.;
    stall_rate = 0.;
    stall_cycles = 8;
    ecc_penalty = 30;
    retry_timeout = 16;
    backoff_cap = 64;
    max_retries = 8;
    degrade_threshold = 0;
  }

let uniform ?(seed = 1) ?(degrade_threshold = 0) ~rate () =
  {
    disabled with
    fault_seed = seed;
    drop_rate = rate;
    corrupt_rate = rate;
    flip_rate = rate;
    tm_abort_rate = rate;
    stall_rate = rate;
    degrade_threshold;
  }

let enabled c =
  c.drop_rate > 0. || c.corrupt_rate > 0. || c.flip_rate > 0.
  || c.tm_abort_rate > 0. || c.stall_rate > 0.

type counters = {
  mutable injected : int;
  mutable msgs_dropped : int;
  mutable msgs_corrupted : int;
  mutable spurious_aborts : int;
  mutable stall_faults : int;
  mutable mem_flips : int;
}

type t = { cfg : config; rng : Rng.t; tally : counters }

let create cfg =
  {
    cfg;
    rng = Rng.create cfg.fault_seed;
    tally =
      {
        injected = 0;
        msgs_dropped = 0;
        msgs_corrupted = 0;
        spurious_aborts = 0;
        stall_faults = 0;
        mem_flips = 0;
      };
  }

let config t = t.cfg
let counters t = t.tally

let exceeded t =
  t.cfg.degrade_threshold > 0 && t.tally.injected >= t.cfg.degrade_threshold

(* A zero rate must not advance the RNG: a disabled kind then has no effect
   on the other kinds' fault history. *)
let roll t rate = rate > 0. && Rng.chance t.rng rate

let hit t bump =
  t.tally.injected <- t.tally.injected + 1;
  bump t.tally

let roll_drop t =
  let b = roll t t.cfg.drop_rate in
  if b then hit t (fun c -> c.msgs_dropped <- c.msgs_dropped + 1);
  b

let roll_corrupt t =
  let b = roll t t.cfg.corrupt_rate in
  if b then hit t (fun c -> c.msgs_corrupted <- c.msgs_corrupted + 1);
  b

let roll_flip t =
  let b = roll t t.cfg.flip_rate in
  if b then hit t (fun c -> c.mem_flips <- c.mem_flips + 1);
  b

let roll_tm_abort t =
  let b = roll t t.cfg.tm_abort_rate in
  if b then hit t (fun c -> c.spurious_aborts <- c.spurious_aborts + 1);
  b

let roll_stall t =
  let b = roll t t.cfg.stall_rate in
  if b then hit t (fun c -> c.stall_faults <- c.stall_faults + 1);
  b

let pick_addr t ~size = Rng.int t.rng size
let victim t ~n = Rng.int t.rng n

(* Data words are 62-bit OCaml ints but program values are small; flipping a
   low bit keeps the corrupted word in a plausible range while still being
   a guaranteed single-bit upset. *)
let flip_bit t v = v lxor (1 lsl Rng.int t.rng 24)

let backoff_of cfg ~attempt =
  if attempt <= 0 then invalid_arg "Fault.backoff: attempt is 1-based";
  let exp = min (attempt - 1) 20 in
  min (cfg.retry_timeout * (1 lsl exp)) (cfg.retry_timeout * cfg.backoff_cap)

let backoff t ~attempt = backoff_of t.cfg ~attempt

type level = Full | Decoupled_only | Serial_core0

let level_name = function
  | Full -> "full"
  | Decoupled_only -> "decoupled-only"
  | Serial_core0 -> "serial-core0"

let degrade = function
  | Full -> Some Decoupled_only
  | Decoupled_only -> Some Serial_core0
  | Serial_core0 -> None
