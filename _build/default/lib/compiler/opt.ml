module Hir = Voltron_ir.Hir

type options = {
  if_convert : bool;
  if_limit : int;
  unroll : int;
  dce : bool;
}

let default = { if_convert = true; if_limit = 4; unroll = 1; dce = true }

let none = { if_convert = false; if_limit = 0; unroll = 1; dce = false }

(* Fresh names shared by all passes over one program. *)
type ctx = {
  mutable next_vreg : int;
  mutable next_sid : int;
}

let fresh_vreg ctx =
  let v = ctx.next_vreg in
  ctx.next_vreg <- v + 1;
  v

let mk ctx node =
  let sid = ctx.next_sid in
  ctx.next_sid <- sid + 1;
  { Hir.sid; node }

(* --- Substitution of operands (virtual-register renaming) ------------------- *)

let sub_operand env (o : Hir.operand) =
  match o with
  | Hir.Imm _ -> o
  | Hir.Reg r -> ( match List.assoc_opt r env with Some o' -> o' | None -> o)

let sub_expr env (e : Hir.expr) : Hir.expr =
  let s = sub_operand env in
  match e with
  | Hir.Alu (op, a, b) -> Hir.Alu (op, s a, s b)
  | Hir.Fpu (op, a, b) -> Hir.Fpu (op, s a, s b)
  | Hir.Cmp (op, a, b) -> Hir.Cmp (op, s a, s b)
  | Hir.Select (p, a, b) -> Hir.Select (s p, s a, s b)
  | Hir.Load (arr, i) -> Hir.Load (arr, s i)
  | Hir.Operand o -> Hir.Operand (s o)

let rec sub_stmt ctx env ({ Hir.node; _ } : Hir.stmt) : Hir.stmt =
  match node with
  | Hir.Assign (v, e) -> mk ctx (Hir.Assign (v, sub_expr env e))
  | Hir.Store (a, i, x) ->
    mk ctx (Hir.Store (a, sub_operand env i, sub_operand env x))
  | Hir.If (c, t, e) ->
    mk ctx
      (Hir.If (sub_operand env c, List.map (sub_stmt ctx env) t, List.map (sub_stmt ctx env) e))
  | Hir.For { var; init; limit; step; body } ->
    mk ctx
      (Hir.For
         {
           var;
           init = sub_operand env init;
           limit = sub_operand env limit;
           step;
           body = List.map (sub_stmt ctx env) body;
         })
  | Hir.Do_while { body; cond } ->
    mk ctx
      (Hir.Do_while
         { body = List.map (sub_stmt ctx env) body; cond = sub_operand env cond })

(* --- If-conversion ------------------------------------------------------------ *)

(* A branch is convertible when it holds only register-pure assignments. *)
let pure_assigns limit stmts =
  List.length stmts <= limit
  && List.for_all
       (fun ({ Hir.node; _ } : Hir.stmt) ->
         match node with
         | Hir.Assign (_, (Hir.Alu _ | Hir.Fpu _ | Hir.Cmp _ | Hir.Select _ | Hir.Operand _)) ->
           true
         | Hir.Assign (_, Hir.Load _) | Hir.Store _ | Hir.If _ | Hir.For _
         | Hir.Do_while _ ->
           false)
       stmts

(* Rewrite the branch body into temporaries: returns the new statements and
   the final (var -> temp operand) bindings. *)
let predicate_branch ctx (stmts : Hir.stmt list) =
  List.fold_left
    (fun (acc, env) ({ Hir.node; _ } : Hir.stmt) ->
      match node with
      | Hir.Assign (v, e) ->
        let tmp = fresh_vreg ctx in
        let stmt = mk ctx (Hir.Assign (tmp, sub_expr env e)) in
        (stmt :: acc, (v, Hir.Reg tmp) :: List.remove_assoc v env)
      | Hir.Store _ | Hir.If _ | Hir.For _ | Hir.Do_while _ -> assert false)
    ([], []) stmts
  |> fun (acc, env) -> (List.rev acc, env)

(* Use counts over a statement list, nested included. *)
let use_counts stmts =
  let table = Hashtbl.create 32 in
  let note vs =
    List.iter
      (fun v ->
        Hashtbl.replace table v (1 + Option.value ~default:0 (Hashtbl.find_opt table v)))
      vs
  in
  Hir.iter_stmts
    (fun ({ Hir.node; _ } : Hir.stmt) ->
      match node with
      | Hir.Assign (_, e) -> note (Hir.expr_uses e)
      | Hir.Store (_, i, x) -> note (Hir.operand_uses i @ Hir.operand_uses x)
      | Hir.If (c, _, _) -> note (Hir.operand_uses c)
      | Hir.For { init; limit; _ } ->
        note (Hir.operand_uses init @ Hir.operand_uses limit)
      | Hir.Do_while { cond; _ } -> note (Hir.operand_uses cond))
    stmts;
  table

(* [region_uses] counts uses across the whole region: a variable assigned
   in a branch gets a merge SELECT only when it is read outside this If —
   merging a branch-local temporary would fabricate a self-referencing
   select ([x = c ? x' : x]) whose old-value read looks like a
   cross-iteration dependence and poisons DOALL classification. *)
let rec if_convert ctx limit region_uses (stmts : Hir.stmt list) : Hir.stmt list =
  List.concat_map
    (fun ({ Hir.node; _ } as stmt : Hir.stmt) ->
      match node with
      | Hir.If (c, then_, else_)
        when pure_assigns limit then_ && pure_assigns limit else_ ->
        let inner = use_counts [ stmt ] in
        let live_outside v =
          let total = Option.value ~default:0 (Hashtbl.find_opt region_uses v) in
          let here = Option.value ~default:0 (Hashtbl.find_opt inner v) in
          total > here
        in
        let t_stmts, t_env = predicate_branch ctx then_ in
        let e_stmts, e_env = predicate_branch ctx else_ in
        let assigned =
          List.sort_uniq compare (List.map fst t_env @ List.map fst e_env)
          |> List.filter live_outside
        in
        let merges =
          List.map
            (fun v ->
              let t_val =
                Option.value ~default:(Hir.Reg v) (List.assoc_opt v t_env)
              in
              let e_val =
                Option.value ~default:(Hir.Reg v) (List.assoc_opt v e_env)
              in
              mk ctx (Hir.Assign (v, Hir.Select (c, t_val, e_val))))
            assigned
        in
        t_stmts @ e_stmts @ merges
      | Hir.If (c, then_, else_) ->
        [
          mk ctx
            (Hir.If
               ( c,
                 if_convert ctx limit region_uses then_,
                 if_convert ctx limit region_uses else_ ));
        ]
      | Hir.For f ->
        [ mk ctx (Hir.For { f with Hir.body = if_convert ctx limit region_uses f.Hir.body }) ]
      | Hir.Do_while { body; cond } ->
        [ mk ctx (Hir.Do_while { body = if_convert ctx limit region_uses body; cond }) ]
      | Hir.Assign _ | Hir.Store _ -> [ stmt ])
    stmts

(* --- Unrolling ----------------------------------------------------------------- *)

let has_inner_loop stmts =
  let found = ref false in
  Hir.iter_stmts
    (fun ({ Hir.node; _ } : Hir.stmt) ->
      match node with
      | Hir.For _ | Hir.Do_while _ -> found := true
      | Hir.Assign _ | Hir.Store _ | Hir.If _ -> ())
    stmts;
  !found

let rec unroll ctx factor (stmts : Hir.stmt list) : Hir.stmt list =
  List.map
    (fun ({ Hir.node; _ } as stmt : Hir.stmt) ->
      match node with
      | Hir.For { var; init = Hir.Imm lo; limit = Hir.Imm hi; step; body }
        when factor > 1
             && (not (has_inner_loop body))
             &&
             let trips = max 0 ((hi - lo + step - 1) / step) in
             trips > 0 && trips mod factor = 0 ->
        (* Copy k of the body sees var + k*step through a renamed temp. *)
        let copies =
          List.concat_map
            (fun k ->
              if k = 0 then List.map (sub_stmt ctx []) body
              else begin
                let shifted = fresh_vreg ctx in
                let bind =
                  mk ctx
                    (Hir.Assign
                       ( shifted,
                         Hir.Alu (Voltron_isa.Inst.Add, Hir.Reg var, Hir.Imm (k * step)) ))
                in
                bind :: List.map (sub_stmt ctx [ (var, Hir.Reg shifted) ]) body
              end)
            (List.init factor (fun k -> k))
        in
        mk ctx
          (Hir.For
             {
               var;
               init = Hir.Imm lo;
               limit = Hir.Imm hi;
               step = step * factor;
               body = copies;
             })
      | Hir.For f -> mk ctx (Hir.For { f with Hir.body = unroll ctx factor f.Hir.body })
      | Hir.Do_while { body; cond } ->
        mk ctx (Hir.Do_while { body = unroll ctx factor body; cond })
      | Hir.If (c, t, e) -> mk ctx (Hir.If (c, unroll ctx factor t, unroll ctx factor e))
      | Hir.Assign _ | Hir.Store _ -> stmt)
    stmts

(* --- Dead code elimination -------------------------------------------------------- *)

let dce (stmts : Hir.stmt list) : Hir.stmt list =
  (* Fixpoint: a register is live if any surviving statement reads it. *)
  let rec pass stmts =
    let used = Hashtbl.create 64 in
    let note vs = List.iter (fun v -> Hashtbl.replace used v ()) vs in
    Hir.iter_stmts
      (fun ({ Hir.node; _ } : Hir.stmt) ->
        match node with
        | Hir.Assign (_, e) -> note (Hir.expr_uses e)
        | Hir.Store (_, i, x) -> note (Hir.operand_uses i @ Hir.operand_uses x)
        | Hir.If (c, _, _) -> note (Hir.operand_uses c)
        | Hir.For { init; limit; _ } ->
          note (Hir.operand_uses init @ Hir.operand_uses limit)
        | Hir.Do_while { cond; _ } -> note (Hir.operand_uses cond))
      stmts;
    let changed = ref false in
    let rec sweep stmts =
      List.filter_map
        (fun ({ Hir.node; _ } as stmt : Hir.stmt) ->
          match node with
          | Hir.Assign (v, _) when not (Hashtbl.mem used v) ->
            changed := true;
            None
          | Hir.Assign _ | Hir.Store _ -> Some stmt
          | Hir.If (c, t, e) ->
            Some { stmt with Hir.node = Hir.If (c, sweep t, sweep e) }
          | Hir.For f ->
            Some { stmt with Hir.node = Hir.For { f with Hir.body = sweep f.Hir.body } }
          | Hir.Do_while { body; cond } ->
            Some { stmt with Hir.node = Hir.Do_while { body = sweep body; cond } })
        stmts
    in
    let swept = sweep stmts in
    if !changed then pass swept else swept
  in
  pass stmts

(* --- Driver -------------------------------------------------------------------- *)

let max_sid (p : Hir.program) =
  let m = ref 0 in
  List.iter
    (fun (r : Hir.region) -> Hir.iter_stmts (fun s -> m := max !m s.Hir.sid) r.Hir.stmts)
    p.Hir.regions;
  !m

let program ?(options = default) (p : Hir.program) =
  let ctx = { next_vreg = p.Hir.n_vregs; next_sid = max_sid p + 1 } in
  let apply stmts =
    let stmts =
      if options.if_convert then
        if_convert ctx options.if_limit (use_counts stmts) stmts
      else stmts
    in
    let stmts = if options.unroll > 1 then unroll ctx options.unroll stmts else stmts in
    if options.dce then dce stmts else stmts
  in
  let regions =
    List.map
      (fun (r : Hir.region) -> { r with Hir.stmts = apply r.Hir.stmts })
      p.Hir.regions
  in
  { p with Hir.regions; n_vregs = ctx.next_vreg }
