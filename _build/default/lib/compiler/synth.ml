module Hir = Voltron_ir.Hir

type t = {
  lctx : Voltron_ir.Lower.ctx;
  mutable next_sid : int;
}

let max_sid (p : Hir.program) =
  let m = ref 0 in
  List.iter
    (fun (r : Hir.region) ->
      Hir.iter_stmts (fun s -> m := max !m s.Hir.sid) r.Hir.stmts)
    p.regions;
  !m

let create p lctx = { lctx; next_sid = max_sid p + 1 }

let fresh_vreg t = Voltron_ir.Lower.fresh_vreg t.lctx

let stmt t node =
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  { Hir.sid; node }

let assign t v e = stmt t (Hir.Assign (v, e))

let bin t op a b =
  let v = fresh_vreg t in
  (assign t v (Hir.Alu (op, a, b)), Hir.Reg v)
