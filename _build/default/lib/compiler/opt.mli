(** HIR-to-HIR optimisation passes, applied before profiling/compilation:

    - {b If-conversion}: small, pure (register-only) conditionals become
      straight-line predicated code — each branch computes into fresh
      temporaries and a SELECT merges per assigned variable. This is the
      classic VLIW transformation the HPL-PD target invites; in decoupled
      mode it also deletes the branch's cross-core predicate traffic.
      Applied when both branches hold at most [if_limit] pure ALU
      assignments (loads/stores never move: they could fault or reorder).

    - {b Loop unrolling}: counted loops with known bounds whose trip count
      is a multiple of [unroll] are rewritten to take [unroll] iterations
      per trip, exposing more ILP per block and amortising the latch.
      Bodies containing inner loops are left alone. Note the classic
      phase-ordering hazard: unrolling duplicates accumulator updates,
      which can demote a DOALL loop (accumulator recognition wants exactly
      one update) — it is a user-directed pass, not part of the default
      pipeline.

    - {b Dead-code elimination}: assignments whose destination is never
      read (transitively) are dropped. Loads count as removable: in a
      valid program they are side-effect-free.

    Every pass preserves the reference interpreter's memory image — a
    property the test suite checks on random programs. *)

type options = {
  if_convert : bool;
  if_limit : int;  (** max statements per converted branch *)
  unroll : int;  (** 1 = off *)
  dce : bool;
}

val default : options
(** if-conversion on (limit 4), unrolling off, DCE on. *)

val none : options

val program : ?options:options -> Voltron_ir.Hir.program -> Voltron_ir.Hir.program
