lib/compiler/synth.mli: Voltron_ir Voltron_isa
