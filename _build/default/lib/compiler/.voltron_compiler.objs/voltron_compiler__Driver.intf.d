lib/compiler/driver.mli: Select Voltron_analysis Voltron_ir Voltron_isa Voltron_machine
