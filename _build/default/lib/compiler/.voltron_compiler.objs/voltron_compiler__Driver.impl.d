lib/compiler/driver.ml: Codegen List Printf Select Voltron_analysis Voltron_ir Voltron_isa Voltron_machine Voltron_mem
