lib/compiler/synth.ml: List Voltron_ir
