lib/compiler/partition.mli: Voltron_analysis Voltron_ir
