lib/compiler/sched.mli: Partition Voltron_analysis Voltron_ir Voltron_isa Voltron_machine
