lib/compiler/opt.ml: Hashtbl List Option Voltron_ir Voltron_isa
