lib/compiler/select.ml: Array Codegen List Partition Printf Voltron_analysis Voltron_ir Voltron_machine
