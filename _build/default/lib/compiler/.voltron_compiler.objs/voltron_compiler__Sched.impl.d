lib/compiler/sched.ml: Array Hashtbl List Option Partition Voltron_analysis Voltron_ir Voltron_isa Voltron_machine Voltron_net Voltron_util
