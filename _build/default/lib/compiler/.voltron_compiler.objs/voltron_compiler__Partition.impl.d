lib/compiler/partition.ml: Array Hashtbl List Option Voltron_analysis Voltron_ir Voltron_isa Voltron_util
