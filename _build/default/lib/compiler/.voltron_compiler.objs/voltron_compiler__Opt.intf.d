lib/compiler/opt.mli: Voltron_ir
