lib/compiler/codegen.ml: Array Lazy List Partition Printf Sched String Synth Voltron_analysis Voltron_ir Voltron_isa Voltron_machine
