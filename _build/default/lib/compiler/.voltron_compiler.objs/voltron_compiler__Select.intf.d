lib/compiler/select.mli: Codegen Voltron_analysis Voltron_ir Voltron_machine
