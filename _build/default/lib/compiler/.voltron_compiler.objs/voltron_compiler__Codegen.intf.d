lib/compiler/codegen.mli: Voltron_analysis Voltron_ir Voltron_isa Voltron_machine
