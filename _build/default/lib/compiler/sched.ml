module Inst = Voltron_isa.Inst
module Bundle = Voltron_isa.Bundle
module Cfg = Voltron_ir.Cfg
module Depgraph = Voltron_analysis.Depgraph
module Config = Voltron_machine.Config
module Mesh = Voltron_net.Mesh
module Vec = Voltron_util.Vec

type result = {
  block_code : Bundle.t list array array;
  participants : int list;
}

(* A schedulable node: one or two (core, op) slots issued in the same
   cycle (two for a coupled-mode PUT/GET move). *)
type node = {
  nid : int;
  slots : (int * Inst.t) list;
  is_comm : bool;
  out_lat : int;
  is_br : bool;
}

type builder = {
  nodes : node Vec.t;
  mutable edges : (int * int * int) list;  (* pred, succ, lat *)
}

let new_node b ?(is_comm = false) ?(is_br = false) ~out_lat slots =
  let nid = Vec.length b.nodes in
  Vec.push b.nodes { nid; slots; is_comm; out_lat; is_br };
  nid

let add_edge b p s lat = b.edges <- (p, s, lat) :: b.edges

let schedule_region ~machine ~cfg ~(dg : Depgraph.t) ~(partition : Partition.t)
    ~mode =
  let mesh = Config.mesh machine in
  let n_cores = machine.Config.n_cores in
  let coupled = mode = Inst.Coupled in
  let participants =
    if coupled then List.init n_cores (fun c -> c) else partition.participants
  in
  let n_blocks = Array.length cfg.Cfg.blocks in
  let n_ops = Array.length dg.Depgraph.ops in
  let core_of i = partition.core_of.(i) in
  let replicable i = core_of i = -1 in
  (* Ops of each block, in program order, as dg indices. *)
  let block_ops = Array.make n_blocks [] in
  for i = n_ops - 1 downto 0 do
    let bi = dg.Depgraph.block_of.(i) in
    block_ops.(bi) <- i :: block_ops.(bi)
  done;
  (* Terminator-condition consumers: vreg -> block indices whose Branch
     reads it. *)
  let branch_conds : (Voltron_ir.Hir.vreg, int list) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun bi (block : Cfg.block) ->
      match block.Cfg.b_term with
      | Cfg.Branch { cond; _ } ->
        Hashtbl.replace branch_conds cond
          (bi :: Option.value ~default:[] (Hashtbl.find_opt branch_conds cond))
      | Cfg.Jump _ | Cfg.Stop -> ())
    cfg.Cfg.blocks;
  let def_of_vreg v =
    match Hashtbl.find_opt dg.Depgraph.defs_of v with
    | Some (d :: _) -> Some d
    | Some [] | None -> None
  in
  (* Consumer cores of op [i]'s defined value, excluding its home core. *)
  let consumers_of i =
    let home = core_of i in
    let cores = Hashtbl.create 4 in
    List.iter
      (fun v ->
        List.iter
          (fun u ->
            if not (replicable u) then begin
              let c = core_of u in
              if c <> home then Hashtbl.replace cores c ()
            end)
          (Option.value ~default:[] (Hashtbl.find_opt dg.Depgraph.uses_of v));
        (* Branch conditions are consumed by the replicated BR on every
           participating core — but when the branch sits in the defining
           op's own block, the terminator plan distributes it (BCAST or
           pred-SEND) instead, so skip it here to avoid double delivery. *)
        let def_block = dg.Depgraph.block_of.(i) in
        let cond_blocks =
          Option.value ~default:[] (Hashtbl.find_opt branch_conds v)
        in
        if List.exists (fun bb -> bb <> def_block) cond_blocks then
          List.iter
            (fun c -> if c <> home then Hashtbl.replace cores c ())
            participants)
      (Inst.defs dg.Depgraph.ops.(i).Cfg.inst);
    Hashtbl.fold (fun c () acc -> c :: acc) cores [] |> List.sort compare
  in
  let out = Array.make_matrix n_cores n_blocks [] in
  (* ----- per block ----- *)
  Array.iteri
    (fun bi (block : Cfg.block) ->
      let b = { nodes = Vec.create (); edges = [] } in
      (* node ids for (op, core); replicable ops get one per participant. *)
      let op_node : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
      let lat_of i = dg.Depgraph.weight.(i) in
      List.iter
        (fun i ->
          let op = dg.Depgraph.ops.(i) in
          if replicable i then
            List.iter
              (fun c ->
                let nid = new_node b ~out_lat:(lat_of i) [ (c, op.Cfg.inst) ] in
                Hashtbl.replace op_node (i, c) nid)
              participants
          else begin
            let c = core_of i in
            let nid = new_node b ~out_lat:(lat_of i) [ (c, op.Cfg.inst) ] in
            Hashtbl.replace op_node (i, c) nid
          end)
        block_ops.(bi);
      (* Intra-block dependence edges, mapped through replication. *)
      List.iter
        (fun { Depgraph.e_src = p; e_dst = q; e_lat } ->
          if
            dg.Depgraph.block_of.(p) = bi
            && dg.Depgraph.block_of.(q) = bi
          then begin
            match (replicable p, replicable q) with
            | false, false ->
              add_edge b
                (Hashtbl.find op_node (p, core_of p))
                (Hashtbl.find op_node (q, core_of q))
                e_lat
            | true, false ->
              let c = core_of q in
              (match Hashtbl.find_opt op_node (p, c) with
              | Some np -> add_edge b np (Hashtbl.find op_node (q, c)) e_lat
              | None -> ())
            | false, true ->
              let c = core_of p in
              (match Hashtbl.find_opt op_node (q, c) with
              | Some nq -> add_edge b (Hashtbl.find op_node (p, c)) nq e_lat
              | None -> ())
            | true, true ->
              List.iter
                (fun c ->
                  match
                    (Hashtbl.find_opt op_node (p, c), Hashtbl.find_opt op_node (q, c))
                  with
                  | Some np, Some nq -> add_edge b np nq e_lat
                  | _ -> ())
                participants
          end)
        dg.Depgraph.edges;
      (* Value communication: deliveries for defs in this block, plus the
         branch-condition distribution for this block's own terminator. *)
      let fifo : (int * int, int list) Hashtbl.t = Hashtbl.create 8 in
      (* (src,dst) -> send node ids in insertion (program) order, and the
         matching receive nodes mirror the same order. *)
      let fifo_recv : (int * int, int list) Hashtbl.t = Hashtbl.create 8 in
      let chain tbl key nid =
        let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
        (match prev with last :: _ -> add_edge b last nid 0 | [] -> ());
        Hashtbl.replace tbl key (nid :: prev)
      in
      (* Wire a delivery node that writes [v] on core [c] into local uses
         inside this block. *)
      let wire_local_uses i v c delivery =
        List.iter
          (fun u ->
            if (not (replicable u)) && dg.Depgraph.block_of.(u) = bi && core_of u = c
            then begin
              let nu = Hashtbl.find op_node (u, c) in
              let uses_v = List.mem v (Inst.uses dg.Depgraph.ops.(u).Cfg.inst) in
              let defines_v = List.mem v (Inst.defs dg.Depgraph.ops.(u).Cfg.inst) in
              if uses_v || defines_v then
                if u > i then add_edge b delivery nu 1
                else add_edge b nu delivery 0
            end)
          (Option.value ~default:[]
             (Hashtbl.find_opt dg.Depgraph.uses_of v))
      in
      let deliver_value i v dst =
        let home = core_of i in
        let def_node = Hashtbl.find op_node (i, home) in
        if coupled then begin
          (* Chain of same-cycle PUT/GET moves along the mesh route. *)
          let path = Mesh.path_cores mesh ~src:home ~dst in
          let rec hop prev_node = function
            | a :: c :: rest ->
              let dir =
                List.find
                  (fun d -> Mesh.neighbour mesh a d = Some c)
                  [ Inst.North; Inst.South; Inst.East; Inst.West ]
              in
              let mv =
                new_node b ~is_comm:true ~out_lat:1
                  [
                    (a, Inst.Put { dir; src = Inst.Reg v });
                    (c, Inst.Get { dir = Inst.opposite dir; dst = v });
                  ]
              in
              let lat = if prev_node = def_node then lat_of i else 1 in
              add_edge b prev_node mv lat;
              wire_local_uses i v c mv;
              hop mv (c :: rest)
            | [ _ ] | [] -> ()
          in
          hop def_node path
        end
        else begin
          let send =
            new_node b ~is_comm:true ~out_lat:1
              [ (home, Inst.Send { target = dst; src = Inst.Reg v }) ]
          in
          add_edge b def_node send (lat_of i);
          chain fifo (home, dst) send;
          let kind =
            if Hashtbl.mem branch_conds v then Inst.Rv_pred else Inst.Rv_data
          in
          let recv =
            new_node b ~is_comm:true ~out_lat:1
              [ (dst, Inst.Recv { sender = home; dst = v; kind }) ]
          in
          add_edge b send recv (1 + Mesh.hops mesh home dst);
          chain fifo_recv (home, dst) recv;
          wire_local_uses i v dst recv
        end
      in
      List.iter
        (fun i ->
          if not (replicable i) then
            List.iter
              (fun dst ->
                List.iter
                  (fun v -> deliver_value i v dst)
                  (Inst.defs dg.Depgraph.ops.(i).Cfg.inst))
              (consumers_of i))
        block_ops.(bi);
      (* ----- terminator ----- *)
      let next_label =
        if bi + 1 < n_blocks then Some cfg.Cfg.blocks.(bi + 1).Cfg.b_label else None
      in
      let term_plan =
        match block.Cfg.b_term with
        | Cfg.Stop -> None
        | Cfg.Jump l when Some l = next_label -> None
        | Cfg.Jump l -> Some (l, None)
        | Cfg.Branch { cond; invert; target } -> Some (target, Some (cond, invert))
      in
      let br_nodes = ref [] in
      (match term_plan with
      | None -> ()
      | Some (target, cond_info) ->
        (* Branch-condition availability per core. *)
        let cond_dep_of_core =
          match cond_info with
          | None -> fun _ -> None
          | Some (cond, _) -> (
            match def_of_vreg cond with
            | None -> fun _ -> None
            | Some d ->
              if replicable d then fun c ->
                if dg.Depgraph.block_of.(d) = bi then
                  Hashtbl.find_opt op_node (d, c)
                else None
              else if dg.Depgraph.block_of.(d) <> bi then (fun _ -> None)
                (* delivered in the defining block; interlock covers *)
              else begin
                let home = core_of d in
                let def_node = Hashtbl.find op_node (d, home) in
                if coupled then begin
                  (* BCAST/GETB distribution (Fig. 5(b)). *)
                  let others = List.filter (fun c -> c <> home) participants in
                  if others = [] then fun c ->
                    if c = home then Some def_node else None
                  else begin
                    let bcast =
                      new_node b ~is_comm:true ~out_lat:0
                        [ (home, Inst.Bcast { src = Inst.Reg cond }) ]
                    in
                    add_edge b def_node bcast (lat_of d);
                    let getb_of =
                      List.map
                        (fun c ->
                          let g =
                            new_node b ~is_comm:true ~out_lat:1
                              [ (c, Inst.Getb { dst = cond }) ]
                          in
                          add_edge b bcast g (Mesh.hops mesh home c);
                          (c, g))
                        others
                    in
                    fun c ->
                      if c = home then Some def_node else List.assoc_opt c getb_of
                  end
                end
                else begin
                  (* SEND/RECV(pred) distribution. *)
                  let others = List.filter (fun c -> c <> home) participants in
                  let recv_of =
                    List.map
                      (fun c ->
                        let send =
                          new_node b ~is_comm:true ~out_lat:1
                            [ (home, Inst.Send { target = c; src = Inst.Reg cond }) ]
                        in
                        add_edge b def_node send (lat_of d);
                        chain fifo (home, c) send;
                        let recv =
                          new_node b ~is_comm:true ~out_lat:1
                            [ (c, Inst.Recv { sender = home; dst = cond; kind = Inst.Rv_pred }) ]
                        in
                        add_edge b send recv (1 + Mesh.hops mesh home c);
                        chain fifo_recv (home, c) recv;
                        (c, recv))
                      others
                  in
                  fun c -> if c = home then Some def_node else List.assoc_opt c recv_of
                end
              end)
        in
        List.iter
          (fun c ->
            let pbr = new_node b ~out_lat:1 [ (c, Inst.Pbr { btr = 0; target }) ] in
            let br_inst =
              match cond_info with
              | None -> Inst.Br { btr = 0; pred = None; invert = false }
              | Some (cond, invert) ->
                Inst.Br { btr = 0; pred = Some (Inst.Reg cond); invert }
            in
            let br = new_node b ~is_br:true ~out_lat:0 [ (c, br_inst) ] in
            add_edge b pbr br 1;
            (match cond_dep_of_core c with
            | Some dep -> add_edge b dep br 1
            | None -> ());
            br_nodes := br :: !br_nodes)
          participants);
      (* ----- list scheduling ----- *)
      let nodes = Vec.to_array b.nodes in
      let n = Array.length nodes in
      let succs = Array.make n [] and preds = Array.make n [] in
      List.iter
        (fun (p, s, lat) ->
          succs.(p) <- (s, lat) :: succs.(p);
          preds.(s) <- (p, lat) :: preds.(s))
        b.edges;
      (* Critical-path priorities (graph is a DAG; compute via memo DFS). *)
      let prio = Array.make n (-1) in
      let rec cp i =
        if prio.(i) >= 0 then prio.(i)
        else begin
          let best =
            List.fold_left (fun acc (j, lat) -> max acc (lat + cp j)) 0 succs.(i)
          in
          prio.(i) <- nodes.(i).out_lat + best;
          prio.(i)
        end
      in
      for i = 0 to n - 1 do
        ignore (cp i)
      done;
      let cycle = Array.make n (-1) in
      let main_used : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
      let comm_used : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
      let slot_count tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
      let fits node t =
        List.for_all
          (fun (c, _) ->
            if node.is_comm then
              slot_count comm_used (c, t) < machine.Config.comm_width
            else slot_count main_used (c, t) < machine.Config.issue_width)
          node.slots
      in
      let occupy node t =
        List.iter
          (fun (c, _) ->
            let tbl = if node.is_comm then comm_used else main_used in
            Hashtbl.replace tbl (c, t) (slot_count tbl (c, t) + 1))
          node.slots
      in
      let unsched = ref 0 in
      let n_real = ref 0 in
      Array.iter (fun nd -> if not nd.is_br then incr n_real) nodes;
      unsched := !n_real;
      while !unsched > 0 do
        (* Ready non-branch nodes. *)
        let best = ref None in
        Array.iter
          (fun nd ->
            if (not nd.is_br) && cycle.(nd.nid) < 0 then begin
              let ready =
                List.for_all (fun (p, _) -> nodes.(p).is_br || cycle.(p) >= 0) preds.(nd.nid)
              in
              if ready then
                match !best with
                | Some (bn, _) when prio.(bn) >= prio.(nd.nid) -> ()
                | Some _ | None -> best := Some (nd.nid, nd)
            end)
          nodes;
        match !best with
        | None -> failwith "Sched: dependence cycle in block graph"
        | Some (nid, nd) ->
          let earliest =
            List.fold_left
              (fun acc (p, lat) ->
                if nodes.(p).is_br then acc else max acc (cycle.(p) + lat))
              0 preds.(nid)
          in
          let t = ref earliest in
          while not (fits nd !t) do
            incr t
          done;
          cycle.(nid) <- !t;
          occupy nd !t;
          decr unsched
      done;
      (* Branch placement. *)
      let max_cycle =
        Array.fold_left
          (fun acc nd -> if nd.is_br then acc else max acc cycle.(nd.nid))
          (-1) nodes
      in
      let brs = List.rev !br_nodes in
      if brs <> [] then begin
        let dep_ready nid =
          List.fold_left
            (fun acc (p, lat) -> max acc (cycle.(p) + lat))
            0 preds.(nid)
        in
        if coupled then begin
          (* All BRs in the same cycle, as the last bundle of the block. *)
          let beta = ref (max 0 max_cycle) in
          List.iter (fun nid -> beta := max !beta (dep_ready nid)) brs;
          let fits_all t =
            List.for_all (fun nid -> fits nodes.(nid) t) brs
          in
          while not (fits_all !beta) do
            incr beta
          done;
          List.iter
            (fun nid ->
              cycle.(nid) <- !beta;
              occupy nodes.(nid) !beta)
            brs
        end
        else
          List.iter
            (fun nid ->
              let nd = nodes.(nid) in
              let core = match nd.slots with (c, _) :: _ -> c | [] -> assert false in
              (* The branch must close its core's block: after every other
                 op this core runs in the block. *)
              let last_here =
                Array.fold_left
                  (fun acc other ->
                    if other.is_br then acc
                    else if List.exists (fun (c, _) -> c = core) other.slots then
                      max acc cycle.(other.nid)
                    else acc)
                  (-1) nodes
              in
              let t = ref (max (dep_ready nid) (max 0 last_here)) in
              while not (fits nd !t) do
                incr t
              done;
              cycle.(nid) <- !t;
              occupy nd !t)
            brs
      end;
      (* ----- emission ----- *)
      let total_len =
        Array.fold_left (fun acc nd -> max acc (cycle.(nd.nid) + 1)) 0 nodes
      in
      List.iter
        (fun c ->
          (* Gather (cycle, inst) for this core. *)
          let by_cycle : (int, Inst.t list) Hashtbl.t = Hashtbl.create 16 in
          Array.iter
            (fun nd ->
              List.iter
                (fun (core, inst) ->
                  if core = c then
                    Hashtbl.replace by_cycle cycle.(nd.nid)
                      (inst
                      :: Option.value ~default:[]
                           (Hashtbl.find_opt by_cycle cycle.(nd.nid))))
                nd.slots)
            nodes;
          let bundles =
            if coupled then
              List.init total_len (fun t ->
                  Option.value ~default:[] (Hashtbl.find_opt by_cycle t))
            else begin
              let cycles =
                Hashtbl.fold (fun t _ acc -> t :: acc) by_cycle []
                |> List.sort compare
              in
              List.map (fun t -> Hashtbl.find by_cycle t) cycles
            end
          in
          out.(c).(bi) <- bundles)
        participants)
    cfg.Cfg.blocks;
  { block_code = out; participants }
