(** Compiler-synthesised HIR fragments (DOALL chunk bounds, accumulator
    resets, loop-variable fix-ups). Site ids are allocated above the user
    program's so the analysis tables never collide. *)

type t

val create : Voltron_ir.Hir.program -> Voltron_ir.Lower.ctx -> t

val fresh_vreg : t -> Voltron_ir.Hir.vreg

val stmt : t -> Voltron_ir.Hir.node -> Voltron_ir.Hir.stmt

val assign : t -> Voltron_ir.Hir.vreg -> Voltron_ir.Hir.expr -> Voltron_ir.Hir.stmt

val bin :
  t ->
  Voltron_isa.Inst.alu_op ->
  Voltron_ir.Hir.operand ->
  Voltron_ir.Hir.operand ->
  Voltron_ir.Hir.stmt * Voltron_ir.Hir.operand
(** Emit [fresh <- op a b]; returns the statement and the result operand. *)

val max_sid : Voltron_ir.Hir.program -> int
