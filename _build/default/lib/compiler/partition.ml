module Cfg = Voltron_ir.Cfg
module Depgraph = Voltron_analysis.Depgraph
module Memdep = Voltron_analysis.Memdep
module Profile = Voltron_analysis.Profile

type t = {
  core_of : int array;
  participants : int list;
}

(* --- Union-find ------------------------------------------------------------ *)

let uf_find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let root = go i in
  let rec compress i =
    if parent.(i) <> root then begin
      let next = parent.(i) in
      parent.(i) <- root;
      compress next
    end
  in
  compress i;
  root

let uf_union parent a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra <> rb then parent.(ra) <- rb

let is_replicable (cfg : Cfg.t) (dg : Depgraph.t) i =
  Hashtbl.mem cfg.Cfg.replicable dg.Depgraph.ops.(i).Cfg.oid

(* Pre-cluster: all defs of one virtual register stay together (a value
   lives on one home core); optionally, memory ops that may ever alias
   (with a write involved) stay together. *)
let clusters ~(dg : Depgraph.t) ~(cfg : Cfg.t) ~mem_together =
  let n = Array.length dg.Depgraph.ops in
  let parent = Array.init n (fun i -> i) in
  Hashtbl.iter
    (fun _v defs ->
      let defs = List.filter (fun i -> not (is_replicable cfg dg i)) defs in
      match defs with
      | [] | [ _ ] -> ()
      | first :: rest -> List.iter (fun d -> uf_union parent first d) rest)
    dg.Depgraph.defs_of;
  (match mem_together with
  | None -> ()
  | Some memdep ->
    let mem_ops =
      List.filter
        (fun i -> Memdep.is_mem memdep dg.Depgraph.ops.(i))
        (List.init n (fun i -> i))
    in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if
              a < b
              && (Memdep.is_write memdep dg.Depgraph.ops.(a)
                 || Memdep.is_write memdep dg.Depgraph.ops.(b))
              && Memdep.ever_alias memdep dg.Depgraph.ops.(a) dg.Depgraph.ops.(b)
            then uf_union parent a b)
          mem_ops)
      mem_ops);
  parent

let participants_of core_of =
  let used = Hashtbl.create 4 in
  Array.iter (fun c -> if c >= 0 then Hashtbl.replace used c ()) core_of;
  Hashtbl.replace used 0 ();
  Hashtbl.fold (fun c () acc -> c :: acc) used [] |> List.sort compare

(* --- BUG ------------------------------------------------------------------- *)

(* Greedy placement of clusters in critical-path order. [extra_cut i j] is
   an additional penalty for separating nodes [i] and [j] (eBUG's
   miss-affinity weights); [mem_penalty core] penalises overloaded-cache
   cores (eBUG's memory balancing). *)
let greedy ~n_cores ~comm_latency ~(dg : Depgraph.t) ~(cfg : Cfg.t) ~parent
    ~extra_cut ~mem_penalty =
  let n = Array.length dg.Depgraph.ops in
  let core_of = Array.make n (-1) in
  (* Cluster representatives and members. *)
  let members = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    if not (is_replicable cfg dg i) then begin
      let r = uf_find parent i in
      Hashtbl.replace members r
        (i :: Option.value ~default:[] (Hashtbl.find_opt members r))
    end
  done;
  let reps = Hashtbl.fold (fun r _ acc -> r :: acc) members [] in
  let cluster_priority r =
    List.fold_left
      (fun acc i -> max acc dg.Depgraph.priority.(i))
      0 (Hashtbl.find members r)
  in
  let cluster_weight r =
    List.fold_left (fun acc i -> acc + dg.Depgraph.weight.(i)) 0 (Hashtbl.find members r)
  in
  let order =
    List.sort (fun a b -> compare (cluster_priority b) (cluster_priority a)) reps
  in
  let core_ready = Array.make n_cores 0 in
  let cluster_core = Hashtbl.create 16 in
  let cluster_finish = Hashtbl.create 16 in
  (* Predecessor clusters via dependence edges between their members. *)
  let cluster_preds r =
    let ms = Hashtbl.find members r in
    List.concat_map
      (fun i ->
        List.filter_map
          (fun (p, _) ->
            if is_replicable cfg dg p then None
            else
              let rp = uf_find parent p in
              if rp <> r && Hashtbl.mem cluster_core rp then Some (rp, p, i) else None)
          (Option.value ~default:[] (Hashtbl.find_opt dg.Depgraph.preds i)))
      ms
  in
  List.iter
    (fun r ->
      let weight = cluster_weight r in
      let preds = cluster_preds r in
      let best_core = ref 0 and best_cost = ref max_int in
      for core = 0 to n_cores - 1 do
        let dep_ready =
          List.fold_left
            (fun acc (rp, p, i) ->
              let pc = Hashtbl.find cluster_core rp in
              let pf = Hashtbl.find cluster_finish rp in
              let comm = if pc <> core then comm_latency + extra_cut p i else 0 in
              max acc (pf + comm))
            0 preds
        in
        let start = max core_ready.(core) dep_ready in
        let cost = start + weight + mem_penalty core r in
        if cost < !best_cost then begin
          best_cost := cost;
          best_core := core
        end
      done;
      let core = !best_core in
      Hashtbl.replace cluster_core r core;
      let dep_ready =
        List.fold_left
          (fun acc (rp, p, i) ->
            let pc = Hashtbl.find cluster_core rp in
            let pf = Hashtbl.find cluster_finish rp in
            let comm = if pc <> core then comm_latency + extra_cut p i else 0 in
            max acc (pf + comm))
          0 preds
      in
      let finish = max core_ready.(core) dep_ready + cluster_weight r in
      Hashtbl.replace cluster_finish r finish;
      core_ready.(core) <- finish;
      List.iter (fun i -> core_of.(i) <- core) (Hashtbl.find members r))
    order;
  { core_of; participants = participants_of core_of }

(* Refinement sweep (the paper's second BUG pass): with the full
   assignment known, re-place each cluster where its schedule-time
   estimate — local work per core plus communication with its actual
   neighbours — is lowest. One sweep in descending priority order. *)
let refine ~n_cores ~comm_latency ~(dg : Depgraph.t) ~(cfg : Cfg.t) ~parent
    (initial : t) =
  let n = Array.length dg.Depgraph.ops in
  let core_of = Array.copy initial.core_of in
  let members = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    if not (is_replicable cfg dg i) then begin
      let r = uf_find parent i in
      Hashtbl.replace members r
        (i :: Option.value ~default:[] (Hashtbl.find_opt members r))
    end
  done;
  let cluster_weight r =
    List.fold_left (fun acc i -> acc + dg.Depgraph.weight.(i)) 0 (Hashtbl.find members r)
  in
  (* Per-core load under the current assignment. *)
  let load = Array.make n_cores 0 in
  Hashtbl.iter
    (fun r ms ->
      match ms with
      | m :: _ when core_of.(m) >= 0 ->
        load.(core_of.(m)) <- load.(core_of.(m)) + cluster_weight r
      | _ -> ())
    members;
  (* Communication volume between a cluster and each core, from both edge
     directions of its members. *)
  let comm_with r core =
    List.fold_left
      (fun acc i ->
        let count edges =
          List.fold_left
            (fun acc (j, _) ->
              if
                (not (is_replicable cfg dg j))
                && uf_find parent j <> r
                && core_of.(j) = core
              then acc + 1
              else acc)
            0 edges
        in
        acc
        + count (Option.value ~default:[] (Hashtbl.find_opt dg.Depgraph.preds i))
        + count (Option.value ~default:[] (Hashtbl.find_opt dg.Depgraph.succs i)))
      0 (Hashtbl.find members r)
  in
  let reps = Hashtbl.fold (fun r _ acc -> r :: acc) members [] in
  let priority r =
    List.fold_left (fun acc i -> max acc dg.Depgraph.priority.(i)) 0 (Hashtbl.find members r)
  in
  let order = List.sort (fun a b -> compare (priority b) (priority a)) reps in
  List.iter
    (fun r ->
      match Hashtbl.find members r with
      | [] -> ()
      | m :: _ ->
        let here = core_of.(m) in
        let w = cluster_weight r in
        (* Cost of placing the cluster on [core]: that core's load plus
           the latency of every edge that would then cross cores. *)
        let cost core =
          let base = if core = here then load.(core) else load.(core) + w in
          let cross =
            List.fold_left
              (fun acc other ->
                if other = core then acc
                else acc + (comm_with r other * comm_latency))
              0
              (List.init n_cores (fun c -> c))
          in
          (* comm_with counts against the tentative placement: edges to
             [core] itself become local. *)
          base + cross - (comm_with r core * comm_latency)
        in
        let best =
          List.fold_left
            (fun best core -> if cost core < cost best then core else best)
            here
            (List.init n_cores (fun c -> c))
        in
        if best <> here then begin
          load.(here) <- load.(here) - w;
          load.(best) <- load.(best) + w;
          List.iter (fun i -> core_of.(i) <- best) (Hashtbl.find members r)
        end)
    order;
  { core_of; participants = participants_of core_of }

let bug ~n_cores ~comm_latency ~dg ~cfg =
  let parent = clusters ~dg ~cfg ~mem_together:None in
  let first =
    greedy ~n_cores ~comm_latency ~dg ~cfg ~parent
      ~extra_cut:(fun _ _ -> 0)
      ~mem_penalty:(fun _ _ -> 0)
  in
  refine ~n_cores ~comm_latency ~dg ~cfg ~parent first

let ebug ~n_cores ~comm_latency ~dg ~cfg ~memdep ~profile =
  let parent = clusters ~dg ~cfg ~mem_together:(Some memdep) in
  let n = Array.length dg.Depgraph.ops in
  (* Miss-affinity: breaking the edge from a likely-missing load to its
     consumer stalls both cores (paper §4.1), so weight it heavily. *)
  let miss_weight = Array.make n 0 in
  Array.iteri
    (fun i (op : Cfg.lop) ->
      match op.Cfg.inst with
      | Voltron_isa.Inst.Load _ when op.Cfg.hir_sid >= 0 ->
        let rate = Profile.miss_rate profile op.Cfg.hir_sid in
        if rate > 0.05 then
          miss_weight.(i) <- int_of_float (rate *. 30.)
      | _ -> ())
    dg.Depgraph.ops;
  let extra_cut p _i = miss_weight.(p) in
  (* Memory balancing: count memory ops per core as we go. *)
  let mem_count = Array.make n_cores 0 in
  let total_mem =
    Array.to_list dg.Depgraph.ops
    |> List.filter (fun op -> Memdep.is_mem memdep op)
    |> List.length
  in
  let parent_copy = Array.copy parent in
  let cluster_mem_ops r =
    let count = ref 0 in
    Array.iteri
      (fun i op ->
        if (not (is_replicable cfg dg i)) && uf_find parent_copy i = r then
          if Memdep.is_mem memdep op then incr count)
      dg.Depgraph.ops;
    !count
  in
  let mem_penalty core r =
    let here = cluster_mem_ops r in
    if here = 0 || n_cores = 1 then 0
    else if mem_count.(core) + here > (total_mem / n_cores) + 1 then begin
      (* Applied during cost comparison only; commit below. *)
      10
    end
    else 0
  in
  let result =
    greedy ~n_cores ~comm_latency ~dg ~cfg ~parent ~extra_cut ~mem_penalty
  in
  (* Recompute per-core memory counts for reporting parity (greedy applied
     penalties against a stale count; acceptable for a heuristic). *)
  Array.iteri
    (fun i op ->
      if result.core_of.(i) >= 0 && Memdep.is_mem memdep op then
        mem_count.(result.core_of.(i)) <- mem_count.(result.core_of.(i)) + 1)
    dg.Depgraph.ops;
  result

(* --- DSWP ------------------------------------------------------------------ *)

let dswp ~n_cores ~(dg : Depgraph.t) ~(cfg : Cfg.t) ~memdep =
  let n = Array.length dg.Depgraph.ops in
  if n = 0 then None
  else begin
    let g = Voltron_util.Digraph.create n in
    (* Register flow including loop-carried (def -> every use, both
       directions of program order) and def-def; memory ever-alias pairs
       in both directions so they condense into one SCC. *)
    Hashtbl.iter
      (fun v defs ->
        let uses = Option.value ~default:[] (Hashtbl.find_opt dg.Depgraph.uses_of v) in
        List.iter
          (fun d ->
            if not (is_replicable cfg dg d) then begin
              List.iter
                (fun u ->
                  if u <> d && not (is_replicable cfg dg u) then
                    Voltron_util.Digraph.add_edge g d u)
                uses;
              List.iter
                (fun d2 ->
                  if d2 <> d && not (is_replicable cfg dg d2) then
                    Voltron_util.Digraph.add_edge g d d2)
                defs
            end)
          defs)
      dg.Depgraph.defs_of;
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if
          (not (is_replicable cfg dg a))
          && (not (is_replicable cfg dg b))
          && (Memdep.is_write memdep dg.Depgraph.ops.(a)
             || Memdep.is_write memdep dg.Depgraph.ops.(b))
          && Memdep.ever_alias memdep dg.Depgraph.ops.(a) dg.Depgraph.ops.(b)
        then begin
          Voltron_util.Digraph.add_edge g a b;
          Voltron_util.Digraph.add_edge g b a
        end
      done
    done;
    let dag, comp_of = Voltron_util.Digraph.condense g in
    let order =
      match Voltron_util.Digraph.topo_sort dag with
      | Some o -> o
      | None -> assert false (* condensation is acyclic *)
    in
    (* Drop pure-replicable singleton components (they are assigned to all
       cores anyway). *)
    let comp_weight = Array.make (Voltron_util.Digraph.n_nodes dag) 0 in
    for i = 0 to n - 1 do
      if not (is_replicable cfg dg i) then
        comp_weight.(comp_of.(i)) <- comp_weight.(comp_of.(i)) + dg.Depgraph.weight.(i)
    done;
    let stages = List.filter (fun c -> comp_weight.(c) > 0) order in
    if List.length stages < 2 || n_cores < 2 then None
    else begin
      let total = List.fold_left (fun acc c -> acc + comp_weight.(c)) 0 stages in
      let target = float_of_int total /. float_of_int n_cores in
      (* Contiguous split in topological order: close a stage group once
         it reaches the average weight. *)
      let stage_of_comp = Hashtbl.create 16 in
      let core = ref 0 and acc = ref 0 in
      List.iter
        (fun c ->
          Hashtbl.replace stage_of_comp c !core;
          acc := !acc + comp_weight.(c);
          if float_of_int !acc >= target && !core < n_cores - 1 then begin
            incr core;
            acc := 0
          end)
        stages;
      let used_cores = !core + 1 in
      if used_cores < 2 then None
      else begin
        let core_of = Array.make n (-1) in
        for i = 0 to n - 1 do
          if not (is_replicable cfg dg i) then
            core_of.(i) <-
              (match Hashtbl.find_opt stage_of_comp comp_of.(i) with
              | Some c -> c
              | None -> 0 (* weightless component: put with stage 0 *))
        done;
        let max_stage = Array.make used_cores 0 in
        for i = 0 to n - 1 do
          if core_of.(i) >= 0 then
            max_stage.(core_of.(i)) <- max_stage.(core_of.(i)) + dg.Depgraph.weight.(i)
        done;
        (* Charge cross-stage value flow to both end stages: each crossing
           costs a SEND slot on the producer and a RECV (plus its read
           latency) on the consumer, every iteration. Without this the
           estimator habitually out-bids coupled ILP on loops it then
           loses. *)
        Hashtbl.iter
          (fun v defs ->
            let uses =
              Option.value ~default:[] (Hashtbl.find_opt dg.Depgraph.uses_of v)
            in
            List.iter
              (fun d ->
                if core_of.(d) >= 0 then begin
                  let use_stages =
                    List.sort_uniq compare
                      (List.filter_map
                         (fun u ->
                           if core_of.(u) >= 0 && core_of.(u) <> core_of.(d) then
                             Some core_of.(u)
                           else None)
                         uses)
                  in
                  List.iter
                    (fun s ->
                      max_stage.(core_of.(d)) <- max_stage.(core_of.(d)) + 1;
                      max_stage.(s) <- max_stage.(s) + 2)
                    use_stages
                end)
              defs)
          dg.Depgraph.defs_of;
        let bottleneck = Array.fold_left max 1 max_stage in
        let estimate = float_of_int total /. float_of_int (bottleneck + 3) in
        Some ({ core_of; participants = participants_of core_of }, estimate)
      end
    end
  end

let all_on_core0 ~(dg : Depgraph.t) =
  { core_of = Array.make (Array.length dg.Depgraph.ops) 0; participants = [ 0 ] }
