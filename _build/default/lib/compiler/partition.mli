(** Operation partitioning across cores.

    [bug] is the Bottom-Up Greedy multicluster partitioner (paper §4.1,
    after Ellis's Bulldog): operations are visited in critical-path
    priority order and greedily placed on the core minimising the
    estimated completion time, accounting for inter-core move latency.

    [ebug] is the paper's Enhanced BUG for decoupled strands: on top of
    BUG it (a) adds edge weights that keep likely-missing loads with their
    consumers, (b) hard-clusters memory operations that may ever touch the
    same address (so no cross-core memory synchronisation is needed), and
    (c) penalises cores already holding a majority of memory operations to
    balance local caches.

    [dswp] builds the region dependence graph including loop-carried
    edges, condenses strongly-connected components, and splits the acyclic
    condensation into pipeline stages of balanced weight (paper §4.1,
    after Ottoni et al.); all cross-core value flow runs forward, so the
    queue-mode network acts as pipeline buffering.

    All partitioners leave [replicable] induction ops unassigned (core -1
    = every core). *)

type t = {
  core_of : int array;  (** node index -> core id; -1 = replicated on all *)
  participants : int list;  (** sorted, always contains 0 *)
}

val bug :
  n_cores:int ->
  comm_latency:int ->
  dg:Voltron_analysis.Depgraph.t ->
  cfg:Voltron_ir.Cfg.t ->
  t

val ebug :
  n_cores:int ->
  comm_latency:int ->
  dg:Voltron_analysis.Depgraph.t ->
  cfg:Voltron_ir.Cfg.t ->
  memdep:Voltron_analysis.Memdep.t ->
  profile:Voltron_analysis.Profile.t ->
  t

val dswp :
  n_cores:int ->
  dg:Voltron_analysis.Depgraph.t ->
  cfg:Voltron_ir.Cfg.t ->
  memdep:Voltron_analysis.Memdep.t ->
  (t * float) option
(** [Some (partition, estimated_speedup)] when at least two stages emerge;
    [None] when the region is one big recurrence. *)

val all_on_core0 : dg:Voltron_analysis.Depgraph.t -> t
