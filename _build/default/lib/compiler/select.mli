(** Per-region parallelism selection (paper §4.2).

    The hybrid strategy follows the paper's order: statistical/proven
    DOALL loops first (most efficient — no communication in the loop
    body), then DSWP when a balanced pipeline with estimated speedup above
    1.25 exists, then fine-grain strands for regions dominated by cache
    misses, and coupled-mode ILP otherwise. Tiny glue regions stay
    sequential on the master.

    Forced modes compile every region with one family, for the paper's
    per-type evaluations (Figs. 10/11):
    - [`Ilp]: coupled-mode BUG everywhere;
    - [`Tlp]: DSWP where profitable, else eBUG strands (both decoupled);
    - [`Llp]: DOALL where legal, sequential elsewhere;
    - [`Seq]: everything sequential (the single-core baseline). *)

type choice = [ `Hybrid | `Ilp | `Tlp | `Llp | `Seq ]

type planned_region = {
  pr_name : string;
  pr_stmts : Voltron_ir.Hir.stmt list;
  pr_strategy : Codegen.strategy;
  pr_weight : int;  (** dynamic statement count (profile) *)
}

val doall_plan_of_region :
  machine:Voltron_machine.Config.t ->
  profile:Voltron_analysis.Profile.t ->
  Voltron_ir.Hir.stmt list ->
  Codegen.doall_plan option
(** The region's DOALL decomposition (prefix / loop / suffix) when legal
    and profitable, applying the prefix/suffix safety rules (see source). *)

val dswp_estimate :
  machine:Voltron_machine.Config.t -> Voltron_ir.Hir.stmt list -> float
(** Estimated DSWP speedup for the region (1.0 when no pipeline exists). *)

val miss_fraction :
  profile:Voltron_analysis.Profile.t -> Voltron_ir.Hir.stmt list -> float
(** Estimated fraction of the region's serial time spent in cache-miss
    stalls (drives the strands-vs-ILP decision, §4.2). *)

val plan :
  machine:Voltron_machine.Config.t ->
  profile:Voltron_analysis.Profile.t ->
  choice ->
  Voltron_ir.Hir.program ->
  planned_region list

val strategy_name : Codegen.strategy -> string
