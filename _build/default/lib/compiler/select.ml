module Hir = Voltron_ir.Hir
module Config = Voltron_machine.Config
module Profile = Voltron_analysis.Profile
module Doall_a = Voltron_analysis.Doall

type choice = [ `Hybrid | `Ilp | `Tlp | `Llp | `Seq ]

type planned_region = {
  pr_name : string;
  pr_stmts : Hir.stmt list;
  pr_strategy : Codegen.strategy;
  pr_weight : int;
}

let strategy_name (s : Codegen.strategy) =
  match s with
  | Codegen.Seq -> "seq"
  | Codegen.Coupled_ilp -> "ilp"
  | Codegen.Strands -> "strands"
  | Codegen.Dswp -> "dswp"
  | Codegen.Doall { dp_speculative; _ } ->
    if dp_speculative then "doall(spec)" else "doall"

(* Thresholds (paper §4.2 gives 1.25 for DSWP; the rest are stated as
   "a threshold" — values chosen here and exercised by the ablation
   benches). *)
let dswp_threshold = 1.25
let miss_threshold = 0.15
let trip_factor = 2  (* require avg trips >= factor * cores *)
let tiny_region_weight = 60

let region_weight ~profile stmts =
  let acc = ref 0 in
  Hir.iter_stmts (fun s -> acc := !acc + Profile.dyn_count profile s.Hir.sid) stmts;
  !acc

(* --- DOALL planning -------------------------------------------------------- *)

let arrays_stored stmts =
  let acc = ref [] in
  Hir.iter_stmts
    (fun ({ Hir.node; _ } : Hir.stmt) ->
      match node with
      | Hir.Store (a, _, _) -> acc := a :: !acc
      | Hir.Assign _ | Hir.If _ | Hir.For _ | Hir.Do_while _ -> ())
    stmts;
  List.sort_uniq compare !acc

let arrays_loaded stmts =
  let acc = ref [] in
  Hir.iter_stmts
    (fun ({ Hir.node; _ } : Hir.stmt) ->
      match node with
      | Hir.Assign (_, Hir.Load (a, _)) -> acc := a :: !acc
      | Hir.Assign _ | Hir.Store _ | Hir.If _ | Hir.For _ | Hir.Do_while _ -> ())
    stmts;
  List.sort_uniq compare !acc

let has_store stmts = arrays_stored stmts <> []

(* Split a region around its first top-level For loop. *)
let split_first_for stmts =
  let rec go prefix = function
    | [] -> None
    | ({ Hir.sid; node = Hir.For loop } : Hir.stmt) :: rest ->
      Some (List.rev prefix, sid, loop, rest)
    | stmt :: rest -> go (stmt :: prefix) rest
  in
  go [] stmts

let doall_plan_of_region ~machine ~profile stmts =
  match split_first_for stmts with
  | None -> None
  | Some (prefix, loop_sid, loop, suffix) -> (
    match Doall_a.classify loop ~profile ~loop_sid with
    | Doall_a.Rejected _ -> None
    | (Doall_a.Proven accs | Doall_a.Speculative accs) as verdict ->
      let n = machine.Config.n_cores in
      let trips = Profile.avg_trip profile loop_sid in
      if trips < float_of_int (trip_factor * n) then None
        (* Prefix is replicated on every core: it must be side-effect
           free. *)
      else if has_store prefix then None
        (* Values computed inside the loop body and consumed after it
           cannot be reconstructed on the master (beyond the induction
           variable and recognised accumulators). *)
      else begin
        let body_defs = Hir.defined_vregs loop.Hir.body in
        let allowed =
          loop.Hir.var :: List.map (fun a -> a.Doall_a.acc_vreg) accs
        in
        let escaping =
          List.filter
            (fun v ->
              List.mem v body_defs && not (List.mem v allowed))
            (Hir.used_vregs suffix)
        in
        if escaping <> [] then None
        else begin
          let speculative =
            match verdict with
            | Doall_a.Proven _ ->
              (* Even a proven loop must speculate when the replicated
                 prefix reads arrays the loop writes: without TM, another
                 core's committed chunk stores could leak into a
                 still-running prefix. Under TM no memory commits while
                 any core is pre-transaction. *)
              let loop_stores = arrays_stored loop.Hir.body in
              List.exists (fun a -> List.mem a loop_stores) (arrays_loaded prefix)
            | Doall_a.Speculative _ -> true
            | Doall_a.Rejected _ -> assert false
          in
          Some
            {
              Codegen.dp_prefix = prefix;
              dp_loop = loop;
              dp_suffix = suffix;
              dp_accumulators = accs;
              dp_speculative = speculative;
            }
        end
      end)

(* --- DSWP estimate --------------------------------------------------------- *)

let dswp_estimate ~machine stmts =
  (* Throwaway lowering: its fresh registers and labels are never emitted.
     Array base addresses do not affect the estimate, so lower against a
     synthetic layout sized from the largest array id in the region. *)
  let max_v =
    List.fold_left max 0 (Hir.defined_vregs stmts @ Hir.used_vregs stmts) + 1
  in
  let max_arr = ref (-1) in
  Hir.iter_stmts
    (fun ({ Hir.node; _ } : Hir.stmt) ->
      match node with
      | Hir.Assign (_, Hir.Load (a, _)) | Hir.Store (a, _, _) ->
        max_arr := max !max_arr a
      | Hir.Assign _ | Hir.If _ | Hir.For _ | Hir.Do_while _ -> ())
    stmts;
  let fake =
    {
      Hir.prog_name = "estimate";
      arrays =
        Array.init (!max_arr + 1) (fun i ->
            { Hir.arr_name = Printf.sprintf "a%d" i; size = 1024; init = None });
      regions = [];
      n_vregs = max_v;
    }
  in
  let lay = Voltron_ir.Layout.compute fake in
  let lctx = Voltron_ir.Lower.make_ctx ~layout:lay ~first_vreg:max_v in
  let cfg = Voltron_ir.Lower.region lctx stmts in
  let memdep = Voltron_analysis.Memdep.create ~region_stmts:stmts cfg in
  let dg = Voltron_analysis.Depgraph.build ~cfg ~memdep ~latency:Config.latency in
  match
    Partition.dswp ~n_cores:machine.Config.n_cores ~dg ~cfg ~memdep
  with
  | Some (_, est) -> est
  | None -> 1.0

(* --- Miss fraction --------------------------------------------------------- *)

let miss_fraction ~profile stmts =
  let miss_cycles = ref 0. in
  let work = ref 0. in
  Hir.iter_stmts
    (fun ({ Hir.sid; node } : Hir.stmt) ->
      work := !work +. (1.6 *. float_of_int (Profile.dyn_count profile sid));
      match node with
      | Hir.Assign (_, Hir.Load _) | Hir.Store _ ->
        let acc = float_of_int (Profile.access_count profile sid) in
        miss_cycles := !miss_cycles +. (acc *. Profile.miss_rate profile sid *. 20.)
      | Hir.Assign _ | Hir.If _ | Hir.For _ | Hir.Do_while _ -> ())
    stmts;
  if !work +. !miss_cycles <= 0. then 0.
  else !miss_cycles /. (!work +. !miss_cycles)

(* --- Planning --------------------------------------------------------------- *)

let plan ~machine ~profile choice (p : Hir.program) =
  List.map
    (fun (r : Hir.region) ->
      let weight = region_weight ~profile r.Hir.stmts in
      let doall () = doall_plan_of_region ~machine ~profile r.Hir.stmts in
      let tlp () =
        if dswp_estimate ~machine r.Hir.stmts >= dswp_threshold then Codegen.Dswp
        else Codegen.Strands
      in
      let strategy =
        if machine.Config.n_cores <= 1 then Codegen.Seq
        else
          match choice with
          | `Seq -> Codegen.Seq
          | `Ilp -> if weight < tiny_region_weight then Codegen.Seq else Codegen.Coupled_ilp
          | `Tlp -> if weight < tiny_region_weight then Codegen.Seq else tlp ()
          | `Llp -> (
            match doall () with Some plan -> Codegen.Doall plan | None -> Codegen.Seq)
          | `Hybrid ->
            if weight < tiny_region_weight then Codegen.Seq
            else (
              match doall () with
              | Some plan -> Codegen.Doall plan
              | None ->
                if dswp_estimate ~machine r.Hir.stmts >= dswp_threshold then
                  Codegen.Dswp
                else if miss_fraction ~profile r.Hir.stmts > miss_threshold then
                  Codegen.Strands
                else Codegen.Coupled_ilp)
      in
      {
        pr_name = r.Hir.region_name;
        pr_stmts = r.Hir.stmts;
        pr_strategy = strategy;
        pr_weight = weight;
      })
    p.Hir.regions
