(** Communication insertion and cycle scheduling for one lowered region.

    Given a partition (op -> core), produces per-core bundle sequences for
    every basic block:

    - {b Coupled} (multicluster-VLIW, paper §3.2): cross-core value flow
      becomes same-cycle PUT/GET move chains (one cycle per hop) on the
      direct-mode network; branch conditions are BCAST to all cores (or
      recomputed locally for replicated induction ops, Fig. 5(c)); every
      block is padded to the same schedule length on all cores and the
      replicated BR executes in the same cycle everywhere.

    - {b Decoupled} (fine-grain threads, §3.2): cross-core flow becomes
      SEND/RECV through the queue-mode network. The full control skeleton
      is replicated on every participating core, and both ends of each
      communication live in the defining op's block, so queue traffic is
      1:1 matched on every path; per-(src,dst) FIFO chains keep message
      order aligned with receive order. Schedules are compressed per core
      (the scoreboard interlock absorbs residual latency).

    Correctness does not depend on the static latencies being exact: the
    machine interlock covers variable memory latency, and in coupled mode
    the stall bus keeps PUT/GET pairs aligned through group stalls. *)

type result = {
  block_code : Voltron_isa.Bundle.t list array array;
      (** [block_code.(core).(block_index)] — bundles for that block;
          indexed only for participating cores (others get [[||]]-like
          empty arrays of the right length with empty lists). *)
  participants : int list;
}

val schedule_region :
  machine:Voltron_machine.Config.t ->
  cfg:Voltron_ir.Cfg.t ->
  dg:Voltron_analysis.Depgraph.t ->
  partition:Partition.t ->
  mode:Voltron_isa.Inst.mode ->
  result
