(** Operation-level dependence graph over a lowered region.

    Nodes are the region's operations (dense indices over {!Voltron_ir.Cfg.all_ops});
    intra-block scheduling edges carry minimum latencies:
    - def → use of a register (latency of the defining op);
    - use → later def of the same register (0: VLIW read-before-write may
      share a cycle but never reorder);
    - def → later def of the same register (1);
    - memory → memory in program order when the pair may alias in the same
      dynamic instance and at least one writes (1: dependent memory
      operations execute in subsequent cycles, paper §3.3).

    Global register def/use maps drive communication insertion; critical-
    path priorities drive the list schedulers and BUG's visit order. *)

type edge = { e_src : int; e_dst : int; e_lat : int }

type t = {
  ops : Voltron_ir.Cfg.lop array;
  idx_of_oid : (Voltron_ir.Cfg.oid, int) Hashtbl.t;
  block_of : int array;
  edges : edge list;  (** intra-block scheduling edges *)
  succs : (int, (int * int) list) Hashtbl.t;  (** node -> (succ, lat) *)
  preds : (int, (int * int) list) Hashtbl.t;
  defs_of : (Voltron_ir.Hir.vreg, int list) Hashtbl.t;  (** program order *)
  uses_of : (Voltron_ir.Hir.vreg, int list) Hashtbl.t;
  priority : int array;  (** critical-path length to any sink *)
  weight : int array;  (** op latency (BUG's schedule estimate unit) *)
}

val build :
  cfg:Voltron_ir.Cfg.t ->
  memdep:Memdep.t ->
  latency:(Voltron_isa.Inst.t -> int) ->
  t

val pos_in_block : t -> int -> int
(** Program-order position of a node within its block. *)
