type edge = { e_src : int; e_dst : int; e_lat : int }

type t = {
  ops : Voltron_ir.Cfg.lop array;
  idx_of_oid : (Voltron_ir.Cfg.oid, int) Hashtbl.t;
  block_of : int array;
  edges : edge list;
  succs : (int, (int * int) list) Hashtbl.t;
  preds : (int, (int * int) list) Hashtbl.t;
  defs_of : (Voltron_ir.Hir.vreg, int list) Hashtbl.t;
  uses_of : (Voltron_ir.Hir.vreg, int list) Hashtbl.t;
  priority : int array;
  weight : int array;
}

let push tbl k v =
  Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))

let build ~cfg ~memdep ~latency =
  let ops = Array.of_list (Voltron_ir.Cfg.all_ops cfg) in
  let n = Array.length ops in
  let idx_of_oid = Hashtbl.create n in
  Array.iteri (fun i op -> Hashtbl.replace idx_of_oid op.Voltron_ir.Cfg.oid i) ops;
  let block_of = Array.make n 0 in
  let cursor = ref 0 in
  Array.iteri
    (fun bi block ->
      List.iter
        (fun (_ : Voltron_ir.Cfg.lop) ->
          block_of.(!cursor) <- bi;
          incr cursor)
        block.Voltron_ir.Cfg.b_ops)
    cfg.Voltron_ir.Cfg.blocks;
  let defs_of = Hashtbl.create 64 and uses_of = Hashtbl.create 64 in
  Array.iteri
    (fun i op ->
      List.iter (fun v -> push defs_of v i) (Voltron_isa.Inst.defs op.Voltron_ir.Cfg.inst);
      List.iter (fun v -> push uses_of v i) (Voltron_isa.Inst.uses op.Voltron_ir.Cfg.inst))
    ops;
  (* push builds the lists in reverse program order; normalise. *)
  Hashtbl.iter (fun k v -> Hashtbl.replace defs_of k (List.rev v)) (Hashtbl.copy defs_of);
  Hashtbl.iter (fun k v -> Hashtbl.replace uses_of k (List.rev v)) (Hashtbl.copy uses_of);
  let edges = ref [] in
  let add_edge e_src e_dst e_lat =
    if e_src <> e_dst then edges := { e_src; e_dst; e_lat } :: !edges
  in
  (* Intra-block register and memory edges, per block. *)
  let start = ref 0 in
  Array.iter
    (fun block ->
      let ops_here = Array.of_list block.Voltron_ir.Cfg.b_ops in
      let m = Array.length ops_here in
      for a = 0 to m - 1 do
        let ia = !start + a in
        let opa = ops_here.(a) in
        let defs_a = Voltron_isa.Inst.defs opa.Voltron_ir.Cfg.inst in
        let uses_a = Voltron_isa.Inst.uses opa.Voltron_ir.Cfg.inst in
        for b = a + 1 to m - 1 do
          let ib = !start + b in
          let opb = ops_here.(b) in
          let defs_b = Voltron_isa.Inst.defs opb.Voltron_ir.Cfg.inst in
          let uses_b = Voltron_isa.Inst.uses opb.Voltron_ir.Cfg.inst in
          (* def(a) -> use(b) *)
          if List.exists (fun v -> List.mem v uses_b) defs_a then
            add_edge ia ib (latency opa.Voltron_ir.Cfg.inst);
          (* use(a) -> def(b): same cycle allowed *)
          if List.exists (fun v -> List.mem v defs_b) uses_a then add_edge ia ib 0;
          (* def(a) -> def(b) *)
          if List.exists (fun v -> List.mem v defs_b) defs_a then add_edge ia ib 1;
          (* memory order *)
          if
            (Memdep.is_write memdep opa || Memdep.is_write memdep opb)
            && Memdep.same_instance_alias memdep opa opb
          then add_edge ia ib 1
        done
      done;
      start := !start + m)
    cfg.Voltron_ir.Cfg.blocks;
  let succs = Hashtbl.create n and preds = Hashtbl.create n in
  List.iter
    (fun { e_src; e_dst; e_lat } ->
      push succs e_src (e_dst, e_lat);
      push preds e_dst (e_src, e_lat))
    !edges;
  let weight = Array.map (fun op -> latency op.Voltron_ir.Cfg.inst) ops in
  (* Critical path: edges always go forward in program order, so a reverse
     sweep suffices. *)
  let priority = Array.make n 0 in
  for i = n - 1 downto 0 do
    let succ_best =
      List.fold_left
        (fun acc (j, lat) -> max acc (lat + priority.(j)))
        0
        (Option.value ~default:[] (Hashtbl.find_opt succs i))
    in
    priority.(i) <- weight.(i) + succ_best
  done;
  {
    ops;
    idx_of_oid;
    block_of;
    edges = !edges;
    succs;
    preds;
    defs_of;
    uses_of;
    priority;
    weight;
  }

let pos_in_block t i =
  let bi = t.block_of.(i) in
  let pos = ref 0 in
  let count = ref 0 in
  Array.iteri
    (fun j _ ->
      if j < i && t.block_of.(j) = bi then incr count;
      ignore j)
    t.ops;
  pos := !count;
  !pos
