(** Affine (linear) analysis of array index expressions.

    The paper's DOALL extraction relies on classic affine dependence
    testing for counted loops; this module computes, for each memory access
    in a loop body, the index as a linear expression over the enclosing
    loop's induction variables where possible. Everything it cannot prove
    linear is [None] and falls back to memory profiling (the "statistical
    DOALL" path, §2). *)

type linexpr = {
  const : int;
  terms : (Voltron_ir.Hir.vreg * int) list;  (** loop-var -> coefficient; sorted, no zeros *)
}

val const_ : int -> linexpr
val var_ : Voltron_ir.Hir.vreg -> linexpr
val add : linexpr -> linexpr -> linexpr
val sub : linexpr -> linexpr -> linexpr
val scale : int -> linexpr -> linexpr
val coeff : linexpr -> Voltron_ir.Hir.vreg -> int
val is_const : linexpr -> int option
val equal : linexpr -> linexpr -> bool

val index_forms :
  loop_vars:Voltron_ir.Hir.vreg list -> Voltron_ir.Hir.stmt list -> (int, linexpr option) Hashtbl.t
(** [index_forms ~loop_vars body] maps each memory access site (the [sid]
    of a [Load] assignment or a [Store]) in [body] — including nested
    statements — to the linear form of its index, if provable.
    Assignments under conditional or nested-loop control taint their
    destination. [loop_vars] are treated as symbolic variables (innermost
    first is not required; any order). *)

type alias_verdict = Never | Same_iteration_only | May_cross | Unknown

val cross_iteration_alias :
  var:Voltron_ir.Hir.vreg -> linexpr option -> linexpr option -> alias_verdict
(** Can two accesses with the given index forms touch the same address in
    {e different} iterations of the loop over [var]?
    - [Never]: provably disjoint at every pair of iterations;
    - [Same_iteration_only]: can collide only within one iteration;
    - [May_cross]: provably collides across iterations;
    - [Unknown]: analysis cannot tell. *)
