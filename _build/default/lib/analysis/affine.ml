type linexpr = {
  const : int;
  terms : (Voltron_ir.Hir.vreg * int) list;
}

let const_ c = { const = c; terms = [] }

let var_ v = { const = 0; terms = [ (v, 1) ] }

let norm terms =
  List.filter (fun (_, c) -> c <> 0) terms |> List.sort compare

let merge f a b =
  let rec go xs ys =
    match (xs, ys) with
    | [], rest -> List.map (fun (v, c) -> (v, f 0 c)) rest
    | rest, [] -> List.map (fun (v, c) -> (v, f c 0)) rest
    | (vx, cx) :: xs', (vy, cy) :: ys' ->
      if vx = vy then (vx, f cx cy) :: go xs' ys'
      else if vx < vy then (vx, f cx 0) :: go xs' ys
      else (vy, f 0 cy) :: go xs ys'
  in
  norm (go (norm a) (norm b))

let add a b = { const = a.const + b.const; terms = merge ( + ) a.terms b.terms }

let sub a b = { const = a.const - b.const; terms = merge ( - ) a.terms b.terms }

let scale k e = { const = k * e.const; terms = norm (List.map (fun (v, c) -> (v, k * c)) e.terms) }

let coeff e v = match List.assoc_opt v e.terms with Some c -> c | None -> 0

let is_const e = if e.terms = [] then Some e.const else None

let equal a b = a.const = b.const && norm a.terms = norm b.terms

(* --- Forward symbolic propagation over a loop body ------------------------ *)

module IntMap = Map.Make (Int)

type env = linexpr option IntMap.t

let operand_form (env : env) (o : Voltron_ir.Hir.operand) =
  match o with
  | Voltron_ir.Hir.Imm i -> Some (const_ i)
  | Voltron_ir.Hir.Reg r -> ( match IntMap.find_opt r env with Some f -> f | None -> None)

let expr_form env (e : Voltron_ir.Hir.expr) =
  match e with
  | Voltron_ir.Hir.Alu (Voltron_isa.Inst.Add, a, b) -> (
    match (operand_form env a, operand_form env b) with
    | Some fa, Some fb -> Some (add fa fb)
    | _ -> None)
  | Voltron_ir.Hir.Alu (Voltron_isa.Inst.Sub, a, b) -> (
    match (operand_form env a, operand_form env b) with
    | Some fa, Some fb -> Some (sub fa fb)
    | _ -> None)
  | Voltron_ir.Hir.Alu (Voltron_isa.Inst.Mul, a, b) -> (
    match (operand_form env a, operand_form env b) with
    | Some fa, Some fb -> (
      match (is_const fa, is_const fb) with
      | Some k, _ -> Some (scale k fb)
      | _, Some k -> Some (scale k fa)
      | None, None -> None)
    | _ -> None)
  | Voltron_ir.Hir.Alu (Voltron_isa.Inst.Shl, a, b) -> (
    match (operand_form env a, operand_form env b) with
    | Some fa, Some fb -> (
      match is_const fb with
      | Some k when k >= 0 && k < 31 -> Some (scale (1 lsl k) fa)
      | Some _ | None -> None)
    | _ -> None)
  | Voltron_ir.Hir.Operand o -> operand_form env o
  | Voltron_ir.Hir.Alu _ | Voltron_ir.Hir.Fpu _ | Voltron_ir.Hir.Cmp _ | Voltron_ir.Hir.Select _ | Voltron_ir.Hir.Load _ -> None

let index_forms ~loop_vars body =
  let out : (int, linexpr option) Hashtbl.t = Hashtbl.create 32 in
  let taint vs env = List.fold_left (fun e v -> IntMap.add v None e) env vs in
  (* Forward walk threading a functional environment. Loop-body
     destinations are killed before analysing the body (their values vary
     across iterations in ways only the induction variable captures), and
     conditionally-assigned destinations are killed after the If. *)
  let rec walk env stmts =
    List.fold_left
      (fun env ({ Voltron_ir.Hir.sid; node } : Voltron_ir.Hir.stmt) ->
        match node with
        | Voltron_ir.Hir.Assign (v, e) ->
          (match e with
          | Voltron_ir.Hir.Load (_, idx) -> Hashtbl.replace out sid (operand_form env idx)
          | Voltron_ir.Hir.Alu _ | Voltron_ir.Hir.Fpu _ | Voltron_ir.Hir.Cmp _ | Voltron_ir.Hir.Select _ | Voltron_ir.Hir.Operand _ -> ());
          IntMap.add v (expr_form env e) env
        | Voltron_ir.Hir.Store (_, idx, _) ->
          Hashtbl.replace out sid (operand_form env idx);
          env
        | Voltron_ir.Hir.If (_, then_, else_) ->
          ignore (walk env then_);
          ignore (walk env else_);
          taint (Voltron_ir.Hir.defined_vregs (then_ @ else_)) env
        | Voltron_ir.Hir.For { var; body = inner; _ } ->
          let inner_env =
            IntMap.add var (Some (var_ var)) (taint (Voltron_ir.Hir.defined_vregs inner) env)
          in
          ignore (walk inner_env inner);
          taint (var :: Voltron_ir.Hir.defined_vregs inner) env
        | Voltron_ir.Hir.Do_while { body = inner; _ } ->
          ignore (walk (taint (Voltron_ir.Hir.defined_vregs inner) env) inner);
          taint (Voltron_ir.Hir.defined_vregs inner) env)
      env stmts
  in
  let env0 =
    List.fold_left
      (fun e v -> IntMap.add v (Some (var_ v)) e)
      IntMap.empty loop_vars
  in
  ignore (walk env0 body);
  out

type alias_verdict = Never | Same_iteration_only | May_cross | Unknown

let cross_iteration_alias ~var f1 f2 =
  match (f1, f2) with
  | None, _ | _, None -> Unknown
  | Some e1, Some e2 -> (
    let c1 = coeff e1 var and c2 = coeff e2 var in
    let rest1 = sub e1 (scale c1 (var_ var)) in
    let rest2 = sub e2 (scale c2 (var_ var)) in
    (* Collision across iterations k1 <> k2 requires
       c1*k1 + r1 = c2*k2 + r2. We decide only when the non-[var] parts
       cancel to a known constant difference. *)
    match is_const (sub rest1 rest2) with
    | None -> Unknown
    | Some d ->
      if c1 = 0 && c2 = 0 then if d = 0 then May_cross else Never
      else if c1 = c2 then begin
        (* c*(k1 - k2) = -d: crosses iff d is a non-zero multiple of c. *)
        if d = 0 then Same_iteration_only
        else if d mod c1 = 0 then May_cross
        else Never
      end
      else Unknown)
