lib/analysis/affine.ml: Hashtbl Int List Map Voltron_ir Voltron_isa
