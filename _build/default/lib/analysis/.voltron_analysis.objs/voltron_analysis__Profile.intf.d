lib/analysis/profile.mli: Voltron_ir Voltron_mem
