lib/analysis/doall.mli: Profile Voltron_ir
