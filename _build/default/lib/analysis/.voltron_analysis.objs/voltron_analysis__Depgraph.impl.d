lib/analysis/depgraph.ml: Array Hashtbl List Memdep Option Voltron_ir Voltron_isa
