lib/analysis/profile.ml: Hashtbl List Option Voltron_ir Voltron_mem
