lib/analysis/doall.ml: Affine Hashtbl Int List Printf Profile Set Voltron_ir Voltron_isa
