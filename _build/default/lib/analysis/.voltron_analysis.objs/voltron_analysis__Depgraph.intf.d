lib/analysis/depgraph.mli: Hashtbl Memdep Voltron_ir Voltron_isa
