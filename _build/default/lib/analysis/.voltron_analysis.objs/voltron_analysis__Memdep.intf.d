lib/analysis/memdep.mli: Voltron_ir
