lib/analysis/memdep.ml: Affine Hashtbl List Voltron_ir
