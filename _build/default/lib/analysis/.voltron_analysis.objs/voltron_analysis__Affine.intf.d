lib/analysis/affine.mli: Hashtbl Voltron_ir
