lib/isa/semantics.ml: Inst
