lib/isa/program.ml: Array Format Image List Printf
