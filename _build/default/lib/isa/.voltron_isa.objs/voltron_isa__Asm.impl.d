lib/isa/asm.ml: Array Bundle Format Image Inst List Printf Program String
