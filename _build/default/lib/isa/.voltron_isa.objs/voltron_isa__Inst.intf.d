lib/isa/inst.mli: Format
