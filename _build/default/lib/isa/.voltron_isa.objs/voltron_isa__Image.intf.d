lib/isa/image.mli: Bundle Format Inst
