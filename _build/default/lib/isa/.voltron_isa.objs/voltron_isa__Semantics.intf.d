lib/isa/semantics.mli: Inst
