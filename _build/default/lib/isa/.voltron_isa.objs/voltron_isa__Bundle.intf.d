lib/isa/bundle.mli: Format Inst
