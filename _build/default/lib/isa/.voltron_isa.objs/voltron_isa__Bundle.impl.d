lib/isa/bundle.ml: Format Inst List
