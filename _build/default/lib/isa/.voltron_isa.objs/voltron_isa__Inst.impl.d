lib/isa/inst.ml: Format
