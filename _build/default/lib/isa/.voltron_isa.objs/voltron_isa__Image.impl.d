lib/isa/image.ml: Array Bundle Format Hashtbl Inst List Printf Voltron_util
