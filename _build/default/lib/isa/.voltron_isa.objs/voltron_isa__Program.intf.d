lib/isa/program.mli: Format Image
