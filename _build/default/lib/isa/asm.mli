(** Assembler for textual Voltron programs.

    The accepted syntax is exactly what {!Program.pp} prints — every
    disassembly is reassemblable (a property the tests enforce) — plus two
    data directives. A program is a sequence of sections:

    {v
    .memory 1024          ; data words (default 1024)
    .init 100 41          ; mem[100] = 41 (repeatable)

    === core 0 ===        ; bundle addresses like "12:" are optional
    start:
        spawn c1, worker
        recv.sync r9 = c1
        halt

    === core 1 ===
    worker:
        mov r1 = #42 || send c0, #1
        sleep
    v}

    [;] and [#] at line start introduce comments (a [#] {e inside} a line
    is an immediate operand). Several ops joined by [||] form one bundle.
    Bundle-width legality is the machine's concern, not the assembler's. *)

exception Error of int * string  (** line number, message *)

val parse : string -> Program.t
(** Raises {!Error} on malformed input, unknown mnemonics, or a malformed
    operand. Labels are per-core; [.init] addresses are validated against
    [.memory]. *)

val parse_file : string -> Program.t

val roundtrip : Program.t -> Program.t
(** [parse (print p)] — exposed for the tests' convenience. *)
