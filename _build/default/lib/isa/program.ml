type t = {
  images : Image.t array;
  mem_size : int;
  mem_init : (int * int) list;
}

let n_cores t = Array.length t.images

let make ~images ~mem_size ~mem_init =
  List.iter
    (fun (addr, _) ->
      if addr < 0 || addr >= mem_size then
        invalid_arg
          (Printf.sprintf "Program.make: init address %d outside memory of %d words"
             addr mem_size))
    mem_init;
  { images; mem_size; mem_init }

let pp ppf t =
  Array.iteri
    (fun core image ->
      Format.fprintf ppf "=== core %d (%d bundles) ===@.%a" core
        (Image.length image) Image.pp image)
    t.images
