(** A complete Voltron executable: one code image per core plus the initial
    data-memory contents.

    By convention core 0 is the master (paper §3.2): it starts executing at
    address 0 of its image while all other cores start asleep, listening for
    a SPAWN. The machine starts in decoupled mode. *)

type t = {
  images : Image.t array;  (** indexed by core id *)
  mem_size : int;  (** data memory size in words *)
  mem_init : (int * int) list;  (** (address, value) initialisation *)
}

val n_cores : t -> int

val make : images:Image.t array -> mem_size:int -> mem_init:(int * int) list -> t
(** Validates that every address in [mem_init] is within [mem_size]. *)

val pp : Format.formatter -> t -> unit
(** Full disassembly of all cores. *)
