(* Shift amounts are masked to 5 bits, like most 32-bit-datapath ISAs. *)
let mask_shift n = n land 31

let alu (op : Inst.alu_op) a b =
  match op with
  | Inst.Add -> a + b
  | Inst.Sub -> a - b
  | Inst.Mul -> a * b
  | Inst.Div -> if b = 0 then 0 else a / b
  | Inst.Rem -> if b = 0 then 0 else a mod b
  | Inst.And -> a land b
  | Inst.Or -> a lor b
  | Inst.Xor -> a lxor b
  | Inst.Shl -> a lsl mask_shift b
  | Inst.Shr -> a asr mask_shift b
  | Inst.Min -> min a b
  | Inst.Max -> max a b

let fpu (op : Inst.fpu_op) a b =
  match op with
  | Inst.Fadd -> a + b
  | Inst.Fsub -> a - b
  | Inst.Fmul -> a * b
  | Inst.Fdiv -> if b = 0 then 0 else a / b

let cmp (op : Inst.cmp_op) a b =
  let holds =
    match op with
    | Inst.Eq -> a = b
    | Inst.Ne -> a <> b
    | Inst.Lt -> a < b
    | Inst.Le -> a <= b
    | Inst.Gt -> a > b
    | Inst.Ge -> a >= b
  in
  if holds then 1 else 0

let truthy v = v <> 0
