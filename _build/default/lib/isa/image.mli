(** Per-core code images.

    Each Voltron core fetches from its own instruction space (paper §3.2:
    "the instructions for each core are located in different memory
    spaces"), so a logical label resolves to a different physical address in
    every core's image. An image is a flat array of bundles plus the
    label→address map for that core. *)

type t

type builder

val builder : unit -> builder

val place_label : builder -> Inst.label -> unit
(** Bind a label to the next emitted bundle's address. Rebinding a label is
    an error. *)

val emit : builder -> Bundle.t -> unit

val emit_all : builder -> Bundle.t list -> unit

val next_addr : builder -> int
(** Address the next [emit] will occupy. *)

val finish : builder -> t

val length : t -> int
val fetch : t -> int -> Bundle.t
(** Raises [Invalid_argument] outside [0, length). *)

val resolve : t -> Inst.label -> int
(** Raises [Not_found] for labels absent from this image. *)

val has_label : t -> Inst.label -> bool
val labels_at : t -> int -> Inst.label list

val pp : Format.formatter -> t -> unit
(** Disassembly listing with labels. *)
