(** Arithmetic semantics shared by the cycle simulator and the IR reference
    interpreter — one definition so the correctness oracle and the machine
    can never drift apart.

    Total semantics: division/remainder by zero yields 0; shift amounts are
    masked to [0, 31]. FP opcodes compute on integers (latency class only,
    see DESIGN.md §2). *)

val alu : Inst.alu_op -> int -> int -> int
val fpu : Inst.fpu_op -> int -> int -> int
val cmp : Inst.cmp_op -> int -> int -> int
(** 1 when the relation holds, else 0. *)

val truthy : int -> bool
(** Branch-predicate interpretation: non-zero is taken. *)
