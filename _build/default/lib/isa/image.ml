type t = {
  bundles : Bundle.t array;
  addr_of_label : (Inst.label, int) Hashtbl.t;
}

type builder = {
  buf : Bundle.t Voltron_util.Vec.t;
  labels : (Inst.label, int) Hashtbl.t;
}

let builder () = { buf = Voltron_util.Vec.create (); labels = Hashtbl.create 16 }

let next_addr b = Voltron_util.Vec.length b.buf

let place_label b label =
  if Hashtbl.mem b.labels label then
    invalid_arg (Printf.sprintf "Image.place_label: duplicate label %s" label);
  Hashtbl.replace b.labels label (next_addr b)

let emit b bundle = Voltron_util.Vec.push b.buf bundle

let emit_all b bundles = List.iter (emit b) bundles

let finish b =
  (* A label placed after the last bundle points one past the end; give it a
     real landing pad so branches to it are well-defined. *)
  let len = Voltron_util.Vec.length b.buf in
  let dangling = Hashtbl.fold (fun _ addr acc -> acc || addr >= len) b.labels false in
  if dangling then Voltron_util.Vec.push b.buf [ Inst.Halt ];
  { bundles = Voltron_util.Vec.to_array b.buf; addr_of_label = Hashtbl.copy b.labels }

let length t = Array.length t.bundles

let fetch t addr =
  if addr < 0 || addr >= Array.length t.bundles then
    invalid_arg (Printf.sprintf "Image.fetch: address %d out of [0,%d)" addr (Array.length t.bundles));
  t.bundles.(addr)

let resolve t label =
  match Hashtbl.find_opt t.addr_of_label label with
  | Some addr -> addr
  | None -> raise Not_found

let has_label t label = Hashtbl.mem t.addr_of_label label

let labels_at t addr =
  Hashtbl.fold
    (fun label a acc -> if a = addr then label :: acc else acc)
    t.addr_of_label []
  |> List.sort compare

let pp ppf t =
  Array.iteri
    (fun addr bundle ->
      List.iter (fun l -> Format.fprintf ppf "%s:@." l) (labels_at t addr);
      Format.fprintf ppf "  %4d: %a@." addr Bundle.pp bundle)
    t.bundles
