type t = Inst.t list

let empty = []

let is_empty t = List.for_all (fun i -> i = Inst.Nop) t

let is_comm inst = Inst.unit_class inst = Inst.Commun

let main_ops t = List.filter (fun i -> not (is_comm i)) t

let comm_ops t = List.filter is_comm t

let branch t = List.find_opt Inst.is_branch t

let count p t = List.length (List.filter p t)

let real_main t =
  List.filter (fun i -> (not (is_comm i)) && i <> Inst.Nop) t

let legal ~issue_width ~comm_width t =
  List.length (real_main t) <= issue_width
  && count is_comm t <= comm_width
  && count Inst.is_branch t <= 1

let check ~issue_width ~comm_width t =
  if not (legal ~issue_width ~comm_width t) then
    invalid_arg
      (Format.asprintf "Bundle.check: illegal bundle {%a} for widths %d+%d"
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
            Inst.pp)
         t issue_width comm_width)

let defs t = List.concat_map Inst.defs t

let uses t = List.concat_map Inst.uses t

let pp ppf t =
  match t with
  | [] -> Format.pp_print_string ppf "nop"
  | ops ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " || ")
      Inst.pp ppf ops
