exception Error of int * string

let fail line msg = raise (Error (line, msg))

(* --- Small string helpers ---------------------------------------------------- *)

let trim = String.trim

let split_on_string sep s =
  let ls = String.length sep and l = String.length s in
  let parts = ref [] and start = ref 0 in
  let i = ref 0 in
  while !i + ls <= l do
    if String.sub s !i ls = sep then begin
      parts := String.sub s !start (!i - !start) :: !parts;
      i := !i + ls;
      start := !i
    end
    else incr i
  done;
  parts := String.sub s !start (l - !start) :: !parts;
  List.rev !parts

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let strip_prefix line prefix s =
  if starts_with prefix s then trim (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else fail line (Printf.sprintf "expected '%s...'" prefix)

(* --- Operand parsing ----------------------------------------------------------- *)

let parse_int line s =
  match int_of_string_opt (trim s) with
  | Some i -> i
  | None -> fail line (Printf.sprintf "expected an integer, found %S" (trim s))

let parse_reg line s =
  let s = trim s in
  if starts_with "r" s then parse_int line (String.sub s 1 (String.length s - 1))
  else fail line (Printf.sprintf "expected a register rN, found %S" s)

let parse_btr line s =
  let s = trim s in
  if starts_with "b" s then parse_int line (String.sub s 1 (String.length s - 1))
  else fail line (Printf.sprintf "expected a branch-target register bN, found %S" s)

let parse_core line s =
  let s = trim s in
  if starts_with "c" s then parse_int line (String.sub s 1 (String.length s - 1))
  else fail line (Printf.sprintf "expected a core cN, found %S" s)

let parse_operand line s : Inst.operand =
  let s = trim s in
  if starts_with "#" s then
    Inst.Imm (parse_int line (String.sub s 1 (String.length s - 1)))
  else Inst.Reg (parse_reg line s)

let parse_dir line s : Inst.dir =
  match trim s with
  | "n" -> Inst.North
  | "s" -> Inst.South
  | "e" -> Inst.East
  | "w" -> Inst.West
  | d -> fail line (Printf.sprintf "expected a direction n/s/e/w, found %S" d)

let split2 line sep s what =
  match split_on_string sep s with
  | [ a; b ] -> (trim a, trim b)
  | _ -> fail line (Printf.sprintf "expected '%s' in %s" sep what)

let comma2 line s what =
  match String.split_on_char ',' s with
  | [ a; b ] -> (trim a, trim b)
  | _ -> fail line (Printf.sprintf "expected two comma-separated operands in %s" what)

(* --- Mnemonics ------------------------------------------------------------------- *)

let alu_ops =
  [
    ("add", Inst.Add); ("sub", Inst.Sub); ("mul", Inst.Mul); ("div", Inst.Div);
    ("rem", Inst.Rem); ("and", Inst.And); ("or", Inst.Or); ("xor", Inst.Xor);
    ("shl", Inst.Shl); ("shr", Inst.Shr); ("min", Inst.Min); ("max", Inst.Max);
  ]

let fpu_ops =
  [ ("fadd", Inst.Fadd); ("fsub", Inst.Fsub); ("fmul", Inst.Fmul); ("fdiv", Inst.Fdiv) ]

let cmp_ops =
  [
    ("eq", Inst.Eq); ("ne", Inst.Ne); ("lt", Inst.Lt); ("le", Inst.Le);
    ("gt", Inst.Gt); ("ge", Inst.Ge);
  ]

(* Parse one op, e.g. "cmp.lt r3 = r1, #10". *)
let parse_op line text : Inst.t =
  let text = trim text in
  let mnemonic, rest =
    match String.index_opt text ' ' with
    | Some i ->
      (String.sub text 0 i, trim (String.sub text (i + 1) (String.length text - i - 1)))
    | None -> (text, "")
  in
  let three_addr rest what =
    let dst, srcs = split2 line "=" rest what in
    let s1, s2 = comma2 line srcs what in
    (parse_reg line dst, parse_operand line s1, parse_operand line s2)
  in
  match mnemonic with
  | "nop" -> Inst.Nop
  | "halt" -> Inst.Halt
  | "sleep" -> Inst.Sleep
  | "tm_begin" -> Inst.Tm_begin
  | "tm_commit" -> Inst.Tm_commit
  | "mode_switch" -> (
    match trim rest with
    | "coupled" -> Inst.Mode_switch Inst.Coupled
    | "decoupled" -> Inst.Mode_switch Inst.Decoupled
    | m -> fail line (Printf.sprintf "unknown mode %S" m))
  | "mov" ->
    let dst, src = split2 line "=" rest "mov" in
    Inst.Mov { dst = parse_reg line dst; src = parse_operand line src }
  | "select" ->
    (* select r1 = r2 ? r3 : #4 *)
    let dst, rhs = split2 line "=" rest "select" in
    let pred, arms = split2 line "?" rhs "select" in
    let if_true, if_false = split2 line ":" arms "select" in
    Inst.Select
      {
        dst = parse_reg line dst;
        pred = parse_operand line pred;
        if_true = parse_operand line if_true;
        if_false = parse_operand line if_false;
      }
  | "load" ->
    (* load r1 = [#0 + r5] *)
    let dst, addr = split2 line "=" rest "load" in
    let addr = trim addr in
    if not (starts_with "[" addr && String.length addr > 1 && addr.[String.length addr - 1] = ']')
    then fail line "expected [base + offset] in load";
    let inner = String.sub addr 1 (String.length addr - 2) in
    let base, offset = split2 line "+" inner "load address" in
    Inst.Load
      { dst = parse_reg line dst; base = parse_operand line base; offset = parse_operand line offset }
  | "store" ->
    (* store [#0 + r1] = r2 *)
    let addr, src = split2 line "=" rest "store" in
    let addr = trim addr in
    if not (starts_with "[" addr && String.length addr > 1 && addr.[String.length addr - 1] = ']')
    then fail line "expected [base + offset] in store";
    let inner = String.sub addr 1 (String.length addr - 2) in
    let base, offset = split2 line "+" inner "store address" in
    Inst.Store
      { base = parse_operand line base; offset = parse_operand line offset; src = parse_operand line src }
  | "pbr" ->
    let btr, target = split2 line "=" rest "pbr" in
    Inst.Pbr { btr = parse_btr line btr; target }
  | "br" | "br.not" -> (
    let invert = mnemonic = "br.not" in
    match split_on_string " if " rest with
    | [ btr; pred ] ->
      Inst.Br { btr = parse_btr line btr; pred = Some (parse_operand line pred); invert }
    | [ btr ] when not invert -> Inst.Br { btr = parse_btr line btr; pred = None; invert = false }
    | _ -> fail line "malformed branch")
  | "bcast" -> Inst.Bcast { src = parse_operand line rest }
  | "getb" -> Inst.Getb { dst = parse_reg line rest }
  | "send" ->
    let target, src = comma2 line rest "send" in
    Inst.Send { target = parse_core line target; src = parse_operand line src }
  | "recv" | "recv.p" | "recv.sync" ->
    let kind =
      match mnemonic with
      | "recv" -> Inst.Rv_data
      | "recv.p" -> Inst.Rv_pred
      | _ -> Inst.Rv_sync
    in
    let dst, sender = split2 line "=" rest "recv" in
    Inst.Recv { sender = parse_core line sender; dst = parse_reg line dst; kind }
  | "spawn" ->
    let target, entry = comma2 line rest "spawn" in
    Inst.Spawn { target = parse_core line target; entry }
  | _ -> (
    (* Dotted mnemonics: cmp.lt, put.e, get.w. *)
    match String.split_on_char '.' mnemonic with
    | [ "cmp"; op ] -> (
      match List.assoc_opt op cmp_ops with
      | Some op ->
        let dst, s1, s2 = three_addr rest "cmp" in
        Inst.Cmp { op; dst; src1 = s1; src2 = s2 }
      | None -> fail line (Printf.sprintf "unknown compare 'cmp.%s'" op))
    | [ "put"; d ] -> Inst.Put { dir = parse_dir line d; src = parse_operand line rest }
    | [ "get"; d ] -> Inst.Get { dir = parse_dir line d; dst = parse_reg line rest }
    | _ -> (
      match List.assoc_opt mnemonic alu_ops with
      | Some op ->
        let dst, s1, s2 = three_addr rest "alu op" in
        Inst.Alu { op; dst; src1 = s1; src2 = s2 }
      | None -> (
        match List.assoc_opt mnemonic fpu_ops with
        | Some op ->
          let dst, s1, s2 = three_addr rest "fpu op" in
          Inst.Fpu { op; dst; src1 = s1; src2 = s2 }
        | None -> fail line (Printf.sprintf "unknown mnemonic %S" mnemonic))))

(* --- Lines ------------------------------------------------------------------------ *)

let strip_comment s =
  match String.index_opt s ';' with
  | Some i -> String.sub s 0 i
  | None -> s

(* "  12: add r1 = r2, #3 || nop"  — the address prefix is optional. *)
let strip_addr s =
  match String.index_opt s ':' with
  | Some i when i < String.length s - 1 || i > 0 -> (
    let head = trim (String.sub s 0 i) in
    match int_of_string_opt head with
    | Some _ -> trim (String.sub s (i + 1) (String.length s - i - 1))
    | None -> s)
  | _ -> s

let parse_bundle line text : Bundle.t =
  List.map (fun part -> parse_op line (trim part)) (split_on_string "||" text)

let parse src =
  let lines = String.split_on_char '\n' src in
  let mem_size = ref 1024 in
  let mem_init = ref [] in
  let cores : (int * Image.builder) list ref = ref [] in
  let current : Image.builder option ref = ref None in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let text = trim (strip_comment raw) in
      if text = "" || starts_with "#" text then ()
      else if starts_with ".memory" text then
        mem_size := parse_int lineno (strip_prefix lineno ".memory" text)
      else if starts_with ".init" text then begin
        match
          String.split_on_char ' '
            (String.concat " "
               (List.filter (fun s -> s <> "")
                  (String.split_on_char ' ' (strip_prefix lineno ".init" text))))
        with
        | [ a; v ] -> mem_init := (parse_int lineno a, parse_int lineno v) :: !mem_init
        | _ -> fail lineno ".init takes an address and a value"
      end
      else if starts_with "===" text then begin
        (* "=== core 2 (24 bundles) ===" or "=== core 2 ===" *)
        let words =
          List.filter (fun s -> s <> "") (String.split_on_char ' ' text)
        in
        match words with
        | "===" :: "core" :: n :: _ ->
          let id = parse_int lineno n in
          let builder = Image.builder () in
          cores := (id, builder) :: !cores;
          current := Some builder
        | _ -> fail lineno "expected '=== core N ==='"
      end
      else begin
        let builder =
          match !current with
          | Some b -> b
          | None -> fail lineno "instruction before any '=== core N ===' header"
        in
        (* Pure label line: "name:" with no instruction after it. *)
        let after_addr = strip_addr text in
        if
          String.length text > 0
          && text.[String.length text - 1] = ':'
          && after_addr = text
        then Image.place_label builder (String.sub text 0 (String.length text - 1))
        else Image.emit builder (parse_bundle lineno after_addr)
      end)
    lines;
  let cores = List.rev !cores in
  if cores = [] then fail 0 "no cores declared";
  let n = 1 + List.fold_left (fun acc (id, _) -> max acc id) 0 cores in
  let images =
    Array.init n (fun id ->
        match List.assoc_opt id cores with
        | Some b -> Image.finish b
        | None -> Image.finish (Image.builder ()))
  in
  Program.make ~images ~mem_size:!mem_size ~mem_init:(List.rev !mem_init)

let parse_file path =
  let ic = open_in_bin path in
  let src =
    match really_input_string ic (in_channel_length ic) with
    | s ->
      close_in ic;
      s
    | exception e ->
      close_in ic;
      raise e
  in
  parse src

let roundtrip p =
  let text = Format.asprintf "%a" Program.pp p in
  let reparsed = parse text in
  Program.make ~images:reparsed.Program.images ~mem_size:p.Program.mem_size
    ~mem_init:p.Program.mem_init
