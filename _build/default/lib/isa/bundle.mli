(** VLIW bundles: the set of operations one core issues in one cycle.

    Per Fig. 4(b) a core feeds one main pipeline (compute / memory /
    control ops) and a separate communication unit, so a legal bundle holds
    at most [issue_width] main ops and [comm_width] communication ops, and
    at most one branch (which takes effect after every other op in the
    bundle). The empty bundle is an implicit NOP cycle. *)

type t = Inst.t list

val empty : t
val is_empty : t -> bool

val main_ops : t -> Inst.t list
(** Compute, memory and control ops (everything but the comm unit's). *)

val comm_ops : t -> Inst.t list

val branch : t -> Inst.t option
(** The bundle's branch, if any. *)

val legal : issue_width:int -> comm_width:int -> t -> bool

val check : issue_width:int -> comm_width:int -> t -> unit
(** Raises [Invalid_argument] with a diagnostic when the bundle is not
    legal. *)

val defs : t -> Inst.reg list
val uses : t -> Inst.reg list

val pp : Format.formatter -> t -> unit
