type t = {
  n : int;
  succ : (int, unit) Hashtbl.t array;
  pred : (int, unit) Hashtbl.t array;
}

let create n =
  {
    n;
    succ = Array.init n (fun _ -> Hashtbl.create 4);
    pred = Array.init n (fun _ -> Hashtbl.create 4);
  }

let n_nodes t = t.n

let check t v = if v < 0 || v >= t.n then invalid_arg "Digraph: bad node id"

let add_edge t u v =
  check t u;
  check t v;
  if not (Hashtbl.mem t.succ.(u) v) then begin
    Hashtbl.replace t.succ.(u) v ();
    Hashtbl.replace t.pred.(v) u ()
  end

let has_edge t u v =
  check t u;
  check t v;
  Hashtbl.mem t.succ.(u) v

let neighbours table v =
  Hashtbl.fold (fun k () acc -> k :: acc) table.(v) [] |> List.sort compare

let succs t v =
  check t v;
  neighbours t.succ v

let preds t v =
  check t v;
  neighbours t.pred v

(* Tarjan, iterative to survive large graphs. *)
let sccs t =
  let index = Array.make t.n (-1) in
  let lowlink = Array.make t.n 0 in
  let on_stack = Array.make t.n false in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succs t v);
    if lowlink.(v) = index.(v) then begin
      let rec popped acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else popped (w :: acc)
      in
      components := popped [] :: !components
    end
  in
  for v = 0 to t.n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (* Tarjan emits components in reverse topological order; !components has
     the last-emitted first, which is topological order of the condensation.
     We return them so that dependences point from later to earlier indices
     reversed: keep natural order = emission order reversed. *)
  Array.of_list (List.rev !components)

let scc_index t =
  let comps = sccs t in
  let idx = Array.make t.n (-1) in
  Array.iteri (fun ci members -> List.iter (fun v -> idx.(v) <- ci) members) comps;
  idx

let condense t =
  let comps = sccs t in
  let idx = Array.make t.n (-1) in
  Array.iteri (fun ci members -> List.iter (fun v -> idx.(v) <- ci) members) comps;
  let dag = create (Array.length comps) in
  for u = 0 to t.n - 1 do
    List.iter
      (fun v -> if idx.(u) <> idx.(v) then add_edge dag idx.(u) idx.(v))
      (succs t u)
  done;
  (dag, idx)

let topo_sort t =
  let in_deg = Array.make t.n 0 in
  let has_self = ref false in
  for u = 0 to t.n - 1 do
    List.iter
      (fun v ->
        if u = v then has_self := true;
        in_deg.(v) <- in_deg.(v) + 1)
      (succs t u)
  done;
  if !has_self then None
  else begin
    let queue = Queue.create () in
    for v = 0 to t.n - 1 do
      if in_deg.(v) = 0 then Queue.add v queue
    done;
    let order = ref [] in
    let seen = ref 0 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      order := v :: !order;
      incr seen;
      List.iter
        (fun w ->
          in_deg.(w) <- in_deg.(w) - 1;
          if in_deg.(w) = 0 then Queue.add w queue)
        (succs t v)
    done;
    if !seen = t.n then Some (List.rev !order) else None
  end

let is_acyclic t = Option.is_some (topo_sort t)
