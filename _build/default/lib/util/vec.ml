type 'a t = {
  mutable data : 'a array;
  mutable size : int;
}

let create () = { data = [||]; size = 0 }

let make n x = { data = Array.make (max n 1) x; size = n }

let length t = t.size

let is_empty t = t.size = 0

let check t i =
  if i < 0 || i >= t.size then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let grow t x =
  let capacity = Array.length t.data in
  if t.size >= capacity then begin
    let data = Array.make (max 8 (2 * capacity)) x in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let pop t =
  if t.size = 0 then None
  else begin
    t.size <- t.size - 1;
    Some t.data.(t.size)
  end

let last t = if t.size = 0 then None else Some t.data.(t.size - 1)

let clear t = t.size <- 0

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.size && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let of_list xs =
  let t = create () in
  List.iter (push t) xs;
  t

let to_array t = Array.init t.size (fun i -> t.data.(i))

let map f t =
  let out = create () in
  iter (fun x -> push out (f x)) t;
  out
