(** Directed graphs over dense integer node ids.

    Shared by the dependence-graph machinery: Tarjan strongly-connected
    components (for DSWP), topological sort (for pipeline stage ordering and
    list scheduling), and reachability. Nodes are [0 .. n-1]. *)

type t

val create : int -> t
(** [create n] is a graph with [n] nodes and no edges. *)

val n_nodes : t -> int
val add_edge : t -> int -> int -> unit
(** Idempotent: parallel edges are collapsed. Self-edges are kept. *)

val has_edge : t -> int -> int -> bool
val succs : t -> int -> int list
val preds : t -> int -> int list

val sccs : t -> int list array
(** Tarjan's algorithm. Components are returned in reverse topological
    order of the condensation (i.e. a component appears before the
    components it depends on are listed after it); each component lists its
    member nodes. *)

val scc_index : t -> int array
(** [scc_index g].(v) is the index of [v]'s component in [sccs g]. *)

val condense : t -> t * int array
(** Condensation DAG of the SCCs plus the node→component map. *)

val topo_sort : t -> int list option
(** [Some order] with every edge going forward in [order], or [None] if the
    graph has a cycle (self-edges count as cycles). *)

val is_acyclic : t -> bool
