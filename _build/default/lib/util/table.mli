(** Aligned plain-text tables, used by the benchmark harness to print the
    paper's figures as rows/series. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the table out with column widths fitted to
    the contents. [align] defaults to [Left] for the first column and
    [Right] for the rest. *)

val print : ?align:align list -> header:string list -> string list list -> unit

val cell_f : float -> string
(** Fixed two-decimal rendering for numeric cells. *)

val cell_pct : float -> string
(** Render a percentage with one decimal and a [%] sign. *)
