(** Small numeric helpers for summarising experiment results. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0. on the empty list. Requires positive elements. *)

val sum : float list -> float
val min_max : float list -> float * float
(** Requires a non-empty list. *)

val normalize : float list -> float list
(** Scale so the elements sum to 1. Identity on an all-zero list. *)

val percent : float -> float -> float
(** [percent part whole] is [100 * part / whole], 0 when [whole = 0]. *)

val round2 : float -> float
(** Round to two decimal places, for stable printed output. *)
