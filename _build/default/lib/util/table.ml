type align = Left | Right

let cell_f x = Printf.sprintf "%.2f" x

let cell_pct x = Printf.sprintf "%.1f%%" x

let default_align n = Left :: List.init (max 0 (n - 1)) (fun _ -> Right)

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let render ?align ~header rows =
  let n_cols = List.length header in
  let aligns =
    match align with
    | Some a when List.length a = n_cols -> a
    | Some _ | None -> default_align n_cols
  in
  let widths = Array.make n_cols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < n_cols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure header;
  List.iter measure rows;
  let render_row row =
    let cells =
      List.mapi
        (fun i cell ->
          if i >= n_cols then cell
          else pad (List.nth aligns i) widths.(i) cell)
        row
    in
    String.concat "  " cells
  in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows)

let print ?align ~header rows =
  print_endline (render ?align ~header rows)
