let sum = List.fold_left ( +. ) 0.

let mean = function
  | [] -> 0.
  | xs -> sum xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
    let logs = List.map (fun x -> assert (x > 0.); log x) xs in
    exp (mean logs)

let min_max = function
  | [] -> invalid_arg "Stat.min_max: empty list"
  | x :: xs -> List.fold_left (fun (lo, hi) y -> (min lo y, max hi y)) (x, x) xs

let normalize xs =
  let total = sum xs in
  if total = 0. then xs else List.map (fun x -> x /. total) xs

let percent part whole = if whole = 0. then 0. else 100. *. part /. whole

let round2 x = Float.round (x *. 100.) /. 100.
