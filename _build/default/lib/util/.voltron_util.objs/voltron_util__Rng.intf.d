lib/util/rng.mli:
