lib/util/table.mli:
