lib/util/digraph.mli:
