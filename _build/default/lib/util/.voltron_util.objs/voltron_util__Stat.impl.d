lib/util/stat.ml: Float List
