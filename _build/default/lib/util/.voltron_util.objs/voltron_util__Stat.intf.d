lib/util/stat.mli:
