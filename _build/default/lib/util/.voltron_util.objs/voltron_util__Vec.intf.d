lib/util/vec.mli:
