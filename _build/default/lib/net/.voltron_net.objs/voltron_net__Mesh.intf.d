lib/net/mesh.mli: Voltron_isa
