lib/net/mesh.ml: List Printf Voltron_isa
