lib/net/operand_network.ml: Array List Mesh Printf Voltron_fault Voltron_isa
