lib/net/operand_network.mli: Mesh Voltron_isa
