lib/net/operand_network.mli: Mesh Voltron_fault Voltron_isa
