(** The dual-mode scalar operand network (paper §3.1).

    {b Direct mode} (coupled execution): a PUT on one core and a GET on the
    adjacent core execute in the same cycle and move one register value in
    one cycle per hop, like an inter-cluster move in a multicluster VLIW.
    The model is a latch per (receiving core, incoming direction): PUT
    fills the latch with the current cycle's timestamp, the paired GET
    drains it. BCAST drives a condition to every core; the value becomes
    visible to core [c] at [t + hops(src, c)] (GETB earlier simply does not
    see it yet and the core stalls, which the lock-step stall bus then
    propagates).

    {b Queue mode} (decoupled execution): SEND enqueues a message that the
    router delivers after [1 + hops] cycles into the receiver's CAM-indexed
    receive queue; RECV searches by sender id, consuming the oldest
    matching message, and stalls while none is ready. End-to-end latency is
    2 + hops (one cycle into the send queue, one per hop, one out of the
    receive queue), per §3.1. SPAWN travels the same network carrying a
    start address.

    The machine drives this module cycle-by-cycle; all "stall" outcomes are
    reported as [None] and accounted by the caller. *)

type t

type payload = Value of int | Start of int  (** Start carries a code address *)

val create : Mesh.t -> receive_capacity:int -> t
val mesh : t -> Mesh.t

(** {1 Direct mode} *)

val put : t -> now:int -> src_core:int -> Voltron_isa.Inst.dir -> int -> (unit, string) result
(** Fails if the direction leaves the mesh or the latch is still full
    (compiler scheduling bug — surfaced, not masked). *)

val get : t -> now:int -> core:int -> Voltron_isa.Inst.dir -> int option
(** [None] when the latch is empty (caller stalls); [Some v] consumes. A
    stale latch value (timestamp in the past) is a scheduling error and
    raises [Failure]. *)

val bcast : t -> now:int -> src_core:int -> int -> unit
val getb : t -> now:int -> core:int -> int option
(** [None] until the most recent broadcast has reached [core]. Consuming is
    per-core: a second GETB on the same core needs a fresh BCAST. *)

(** {1 Queue mode} *)

val send : t -> now:int -> src:int -> dst:int -> payload -> (unit, string) result
(** Fails ([Error]) when the (sender, receiver) channel already holds
    [receive_capacity] undelivered messages — the caller stalls and
    retries. Capacity is per channel, not per receiver: a producer running
    far ahead can only fill its own slots, never starve another sender
    whose message the receiver needs next (that sharing would deadlock
    rate-mismatched fine-grain threads). *)

val recv : t -> now:int -> core:int -> sender:int -> int option
(** Oldest ready [Value] message from [sender]; [None] stalls. *)

val recv_ready : t -> now:int -> core:int -> sender:int -> bool
(** Non-consuming test that [recv] would succeed. *)

val getb_ready : t -> now:int -> core:int -> bool
(** Non-consuming test that [getb] would succeed. *)

val take_start : t -> now:int -> core:int -> int option
(** Oldest ready [Start] message addressed to a sleeping [core]. *)

val pending : t -> src:int -> dst:int -> int
(** Undelivered messages on the [src]->[dst] channel. *)

val idle : t -> bool
(** No message in flight anywhere and all latches empty. *)

type stats = {
  mutable msgs_sent : int;
  mutable total_latency : int;
  mutable max_occupancy : int;
}

val stats : t -> stats
