type payload = Value of int | Start of int

type latch = { mutable filled : bool; mutable value : int; mutable time : int }

type message = {
  msg_src : int;
  msg_dst : int;
  msg_payload : payload;
  ready_time : int;  (** cycle at which the receive queue can deliver it *)
  seq : int;  (** global enqueue order: FIFO per (src, dst) pair *)
}

type bcast_slot = { mutable b_value : int; mutable b_time : int; mutable b_src : int }

type stats = {
  mutable msgs_sent : int;
  mutable total_latency : int;
  mutable max_occupancy : int;
}

type t = {
  net_mesh : Mesh.t;
  capacity : int;
  (* latches.(core).(dir_index): value arriving at [core] from direction. *)
  latches : latch array array;
  mutable broadcast : bcast_slot option;
  consumed_bcast : bool array;  (** per-core: has this core taken the current bcast *)
  mutable in_flight : message list;  (** unsorted; small *)
  mutable next_seq : int;
  net_stats : stats;
}

let dir_index (d : Voltron_isa.Inst.dir) =
  match d with
  | Voltron_isa.Inst.North -> 0
  | Voltron_isa.Inst.South -> 1
  | Voltron_isa.Inst.East -> 2
  | Voltron_isa.Inst.West -> 3

let create net_mesh ~receive_capacity =
  let n = Mesh.n_cores net_mesh in
  {
    net_mesh;
    capacity = receive_capacity;
    latches =
      Array.init n (fun _ ->
          Array.init 4 (fun _ -> { filled = false; value = 0; time = 0 }));
    broadcast = None;
    consumed_bcast = Array.make n true;
    in_flight = [];
    next_seq = 0;
    net_stats = { msgs_sent = 0; total_latency = 0; max_occupancy = 0 };
  }

let mesh t = t.net_mesh

let stats t = t.net_stats

(* --- Direct mode --------------------------------------------------------- *)

let put t ~now ~src_core dir value =
  match Mesh.neighbour t.net_mesh src_core dir with
  | None ->
    Error
      (Printf.sprintf "put: core %d has no neighbour in that direction" src_core)
  | Some dst ->
    let latch = t.latches.(dst).(dir_index (Voltron_isa.Inst.opposite dir)) in
    if latch.filled then
      Error
        (Printf.sprintf "put: latch into core %d still full (unconsumed PUT)" dst)
    else begin
      latch.filled <- true;
      latch.value <- value;
      latch.time <- now;
      Ok ()
    end

let get t ~now ~core dir =
  let latch = t.latches.(core).(dir_index dir) in
  if not latch.filled then None
  else if latch.time > now then None
  else begin
    (* With the lock-step stall bus, a paired PUT/GET always executes in the
       same cycle; an older timestamp would mean the cores de-synchronised. *)
    if latch.time < now then
      failwith
        (Printf.sprintf
           "get: core %d read a stale direct-mode latch (put at %d, get at %d)"
           core latch.time now);
    latch.filled <- false;
    Some latch.value
  end

let bcast t ~now ~src_core value =
  t.broadcast <- Some { b_value = value; b_time = now; b_src = src_core };
  Array.fill t.consumed_bcast 0 (Array.length t.consumed_bcast) false;
  t.consumed_bcast.(src_core) <- true

let getb t ~now ~core =
  match t.broadcast with
  | None -> None
  | Some slot ->
    if t.consumed_bcast.(core) then None
    else begin
      let arrival = slot.b_time + Mesh.hops t.net_mesh slot.b_src core in
      if now < arrival then None
      else begin
        t.consumed_bcast.(core) <- true;
        Some slot.b_value
      end
    end

(* --- Queue mode ---------------------------------------------------------- *)

let pending t ~src ~dst =
  List.length
    (List.filter (fun m -> m.msg_dst = dst && m.msg_src = src) t.in_flight)

let send t ~now ~src ~dst payload =
  if dst < 0 || dst >= Mesh.n_cores t.net_mesh then
    Error (Printf.sprintf "send: bad destination core %d" dst)
  else if pending t ~src ~dst >= t.capacity then Error "send: channel full"
  else begin
    let hops = Mesh.hops t.net_mesh src dst in
    let msg =
      {
        msg_src = src;
        msg_dst = dst;
        msg_payload = payload;
        ready_time = now + 1 + hops;
        seq = t.next_seq;
      }
    in
    t.next_seq <- t.next_seq + 1;
    t.in_flight <- msg :: t.in_flight;
    let s = t.net_stats in
    s.msgs_sent <- s.msgs_sent + 1;
    s.total_latency <- s.total_latency + 2 + hops;
    s.max_occupancy <- max s.max_occupancy (List.length t.in_flight);
    Ok ()
  end

(* Find (and remove) the ready message matching [p] with the smallest seq. *)
let take t ~now p =
  let best =
    List.fold_left
      (fun acc m ->
        if m.ready_time <= now && p m then
          match acc with
          | Some b when b.seq <= m.seq -> acc
          | Some _ | None -> Some m
        else acc)
      None t.in_flight
  in
  match best with
  | None -> None
  | Some m ->
    t.in_flight <- List.filter (fun m' -> m'.seq <> m.seq) t.in_flight;
    Some m

let recv t ~now ~core ~sender =
  let matches m =
    m.msg_dst = core && m.msg_src = sender
    && match m.msg_payload with Value _ -> true | Start _ -> false
  in
  match take t ~now matches with
  | Some { msg_payload = Value v; _ } -> Some v
  | Some { msg_payload = Start _; _ } -> assert false
  | None -> None

let recv_ready t ~now ~core ~sender =
  List.exists
    (fun m ->
      m.ready_time <= now && m.msg_dst = core && m.msg_src = sender
      && match m.msg_payload with Value _ -> true | Start _ -> false)
    t.in_flight

let getb_ready t ~now ~core =
  match t.broadcast with
  | None -> false
  | Some slot ->
    (not t.consumed_bcast.(core))
    && now >= slot.b_time + Mesh.hops t.net_mesh slot.b_src core

let take_start t ~now ~core =
  let matches m =
    m.msg_dst = core
    && match m.msg_payload with Start _ -> true | Value _ -> false
  in
  match take t ~now matches with
  | Some { msg_payload = Start addr; _ } -> Some addr
  | Some { msg_payload = Value _; _ } -> assert false
  | None -> None

let idle t =
  t.in_flight = []
  && Array.for_all (fun row -> Array.for_all (fun l -> not l.filled) row) t.latches
