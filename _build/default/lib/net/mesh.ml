type t = { n : int; cols : int; rows : int }

let create n =
  if n < 1 then invalid_arg "Mesh.create: need at least one core";
  (* Squarest grid: columns = smallest power-free ceil(sqrt n) that tiles n
     row-major; the last row may be partial. *)
  let cols = int_of_float (ceil (sqrt (float_of_int n))) in
  let rows = (n + cols - 1) / cols in
  { n; cols; rows }

let n_cores t = t.n
let columns t = t.cols
let rows t = t.rows

let check t c =
  if c < 0 || c >= t.n then invalid_arg (Printf.sprintf "Mesh: bad core id %d" c)

let coords t c =
  check t c;
  (c mod t.cols, c / t.cols)

let core_at t ~x ~y =
  if x < 0 || x >= t.cols || y < 0 || y >= t.rows then None
  else
    let c = (y * t.cols) + x in
    if c < t.n then Some c else None

let neighbour t c dir =
  let x, y = coords t c in
  match (dir : Voltron_isa.Inst.dir) with
  | Voltron_isa.Inst.North -> core_at t ~x ~y:(y - 1)
  | Voltron_isa.Inst.South -> core_at t ~x ~y:(y + 1)
  | Voltron_isa.Inst.East -> core_at t ~x:(x + 1) ~y
  | Voltron_isa.Inst.West -> core_at t ~x:(x - 1) ~y

let hops t a b =
  let xa, ya = coords t a and xb, yb = coords t b in
  abs (xa - xb) + abs (ya - yb)

let max_hops t =
  let best = ref 0 in
  for a = 0 to t.n - 1 do
    for b = 0 to t.n - 1 do
      best := max !best (hops t a b)
    done
  done;
  !best

let route t ~src ~dst =
  check t src;
  check t dst;
  let xs, ys = coords t src and xd, yd = coords t dst in
  let horizontal =
    if xd > xs then List.init (xd - xs) (fun _ -> Voltron_isa.Inst.East)
    else List.init (xs - xd) (fun _ -> Voltron_isa.Inst.West)
  in
  let vertical =
    if yd > ys then List.init (yd - ys) (fun _ -> Voltron_isa.Inst.South)
    else List.init (ys - yd) (fun _ -> Voltron_isa.Inst.North)
  in
  horizontal @ vertical

let path_cores t ~src ~dst =
  let step core dir =
    match neighbour t core dir with
    | Some c -> c
    | None -> invalid_arg "Mesh.path_cores: route left the mesh"
  in
  let rec walk core = function
    | [] -> [ core ]
    | dir :: rest -> core :: walk (step core dir) rest
  in
  walk src (route t ~src ~dst)
