(** Two-dimensional mesh topology (paper Fig. 4(a)).

    Cores are numbered row-major: a 4-core machine is the 2x2 grid
    {v
      0 1
      2 3
    v}
    and a 2-core machine is the 1x2 grid [0 1]. The topology and its
    latencies are exposed to the compiler, which plans multi-hop PUT/GET
    chains and estimates SEND/RECV latency from [hops]. *)

type t

val create : int -> t
(** [create n] is a mesh of [n] cores, [n >= 1]. Chooses the squarest
    row-major grid that holds [n] cores. *)

val n_cores : t -> int
val columns : t -> int
val rows : t -> int
val coords : t -> int -> int * int
(** [coords t c] is [(x, y)] with [x] the column, [y] the row. *)

val core_at : t -> x:int -> y:int -> int option
val neighbour : t -> int -> Voltron_isa.Inst.dir -> int option
val hops : t -> int -> int -> int
(** Manhattan distance. *)

val max_hops : t -> int
(** Network diameter. *)

val route : t -> src:int -> dst:int -> Voltron_isa.Inst.dir list
(** XY (dimension-ordered) route; empty when [src = dst]. *)

val path_cores : t -> src:int -> dst:int -> int list
(** The cores visited by [route], starting with [src] and ending with
    [dst]. *)
