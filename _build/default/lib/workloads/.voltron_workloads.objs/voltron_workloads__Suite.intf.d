lib/workloads/suite.mli: Voltron_ir
