lib/workloads/kernels.mli: Voltron_ir
