lib/workloads/suite.ml: Kernels List Voltron_ir
