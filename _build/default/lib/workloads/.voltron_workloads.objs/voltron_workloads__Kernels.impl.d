lib/workloads/kernels.ml: Array List Printf Voltron_ir Voltron_isa Voltron_util
