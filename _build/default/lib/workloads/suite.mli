(** The synthetic benchmark suite: one program per paper benchmark
    (MediaBench + SPEC subset of §5.1), each composed of regions whose
    parallelism character follows that benchmark's breakdown in the
    paper's Fig. 3 (DESIGN.md §2 documents this substitution), plus the
    three worked micro-examples of Figs. 7-9.

    [scale] multiplies every region's iteration count: 1.0 is the default
    evaluation size; tests use smaller scales. *)

type mix = {
  ilp : int;  (** percent of work in coupled-ILP-shaped regions *)
  tlp : int;  (** fine-grain TLP (strands + DSWP) *)
  llp : int;  (** DOALL *)
  seq : int;  (** serial *)
}

type benchmark = {
  bench_name : string;
  bench_mix : mix;  (** the Fig. 3-informed target mix *)
  build : ?scale:float -> unit -> Voltron_ir.Hir.program;
}

val all : benchmark list
(** The 24 benchmarks, in the paper's x-axis order. *)

val by_name : string -> benchmark
(** Raises [Not_found]. *)

val micro_gsm_llp : ?scale:float -> unit -> Voltron_ir.Hir.program
val micro_gzip_strands : ?scale:float -> unit -> Voltron_ir.Hir.program
val micro_gsm_ilp : ?scale:float -> unit -> Voltron_ir.Hir.program
