lib/machine/trace.mli: Format Stats Voltron_isa
