lib/machine/stats.ml: Array Format List Voltron_util
