lib/machine/config.mli: Voltron_fault Voltron_isa Voltron_mem Voltron_net
