lib/machine/config.mli: Voltron_isa Voltron_mem Voltron_net
