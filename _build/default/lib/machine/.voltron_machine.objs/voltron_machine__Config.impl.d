lib/machine/config.ml: Voltron_fault Voltron_isa Voltron_mem Voltron_net
