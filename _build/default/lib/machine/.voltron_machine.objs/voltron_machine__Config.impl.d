lib/machine/config.ml: Voltron_isa Voltron_mem Voltron_net
