lib/machine/machine.ml: Array Buffer Config Format Hashtbl List Printf Stats Trace Voltron_isa Voltron_mem Voltron_net
