lib/machine/machine.ml: Array Config Format Hashtbl List Option Printf Stats Trace Voltron_fault Voltron_isa Voltron_mem Voltron_net
