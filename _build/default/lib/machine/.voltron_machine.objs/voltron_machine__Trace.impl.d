lib/machine/trace.ml: Array Format Hashtbl List Option Printf Stats Voltron_isa Voltron_util
