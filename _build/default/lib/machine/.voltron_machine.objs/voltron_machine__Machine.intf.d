lib/machine/machine.mli: Config Format Stats Trace Voltron_isa Voltron_mem Voltron_net
