lib/machine/machine.mli: Config Stats Trace Voltron_isa Voltron_mem Voltron_net
