lib/machine/energy.mli: Format Stats Voltron_mem Voltron_net
