lib/machine/energy.ml: Array Format List Stats Voltron_mem Voltron_net
