(** First-order energy model.

    The paper's motivation is converting transistors into single-thread
    performance {e without} blowing the power budget (§1); this model lets
    the harness compare execution modes on energy and energy-delay product
    as well as cycles. It is an activity-count model: each op class, cache
    event and network message carries a fixed energy weight, plus a static
    leakage term per core-cycle. The default weights are in arbitrary
    "units" chosen to reflect relative magnitudes typical of the paper's
    era (a DRAM access costs ~100x an ALU op, a network hop ~2 ALU ops);
    absolute calibration is explicitly out of scope.

    Events are taken from the statistics the simulator already keeps
    ({!Stats}, {!Voltron_mem.Coherence}, {!Voltron_net.Operand_network}),
    so attaching the model costs nothing at simulation time. *)

type weights = {
  w_op : float;  (** base cost of any issued (non-NOP) op *)
  w_mul_div : float;  (** extra for long-latency arithmetic *)
  w_mem_op : float;  (** extra for a load/store (datapath side) *)
  w_comm_op : float;  (** extra for an operand-network op *)
  w_l1_access : float;
  w_l1_miss : float;  (** bus transaction + L2 access *)
  w_l2_miss : float;  (** DRAM access *)
  w_msg_hop : float;  (** queue-mode message, per hop *)
  w_leak_core_cycle : float;  (** static power, per core per cycle *)
}

val default_weights : weights

type report = {
  e_dynamic : float;
  e_static : float;
  e_total : float;
  edp : float;  (** energy-delay product: total x cycles *)
}

val of_run :
  ?weights:weights ->
  stats:Stats.t ->
  coherence:Voltron_mem.Coherence.t ->
  network:Voltron_net.Operand_network.t ->
  unit ->
  report

val pp : Format.formatter -> report -> unit
