(** Execution statistics, with the stall taxonomy of paper Fig. 12:
    instruction-cache stalls, data stalls, data receive stalls, predicate
    receive stalls and synchronisation stalls (spawn/join, mode-switch
    barriers, TM commit waits), plus latency-interlock stalls (scoreboard
    waits on in-flight ALU results crossing block boundaries). *)

type core = {
  mutable busy : int;  (** cycles a bundle issued *)
  mutable i_stall : int;
  mutable d_stall : int;
  mutable lat_stall : int;
  mutable recv_data_stall : int;
  mutable recv_pred_stall : int;
  mutable sync_stall : int;
  mutable idle : int;  (** asleep or halted *)
  mutable bundles : int;
  mutable ops : int;
  mutable ops_mem : int;  (** loads + stores *)
  mutable ops_comm : int;  (** operand-network ops *)
  mutable ops_mul_div : int;  (** long-latency arithmetic *)
}

type t = {
  n_cores : int;
  per_core : core array;
  mutable cycles : int;
  mutable coupled_cycles : int;
  mutable decoupled_cycles : int;
  mutable mode_switches : int;
  mutable spawns : int;
  mutable tm_rounds : int;
  mutable tm_conflicts : int;
  mutable faults_injected : int;  (** all kinds, from the injector *)
  mutable msgs_dropped : int;
  mutable msgs_corrupted : int;
  mutable net_retries : int;  (** retransmissions by the ack/timeout protocol *)
  mutable net_nacks : int;  (** parity + overflow NACKs *)
  mutable ecc_corrected : int;  (** flips corrected on demand by a read *)
  mutable ecc_scrubbed : int;  (** flips corrected by the end-of-run scrub *)
  mutable flips_masked : int;  (** flips overwritten before ever being read *)
  mutable spurious_aborts : int;
  mutable stall_faults : int;
}

type stall_kind =
  | I_stall
  | D_stall
  | Lat_stall
  | Recv_data
  | Recv_pred
  | Sync

val create : n_cores:int -> t
val record_stall : t -> core:int -> stall_kind -> unit
val core : t -> int -> core

val total_stalls : core -> int
val avg_stall_fraction : t -> stall_kind -> float
(** Average over cores of (stall cycles of that kind) / total cycles. *)

val pp_summary : Format.formatter -> t -> unit
