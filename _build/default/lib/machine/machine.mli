(** The Voltron multicore cycle simulator.

    Executes a {!Voltron_isa.Program.t} on [n] in-order VLIW cores joined by
    the dual-mode scalar operand network, with coherent caches and
    transactional memory. Core 0 starts at address 0 of its image; the
    other cores start asleep, waiting for SPAWN. The machine starts in
    decoupled mode.

    {b Execution model.} Each core is an interlocked (stall-on-use) VLIW:
    the compiler schedules for the static latencies in {!Config.latency}
    and a scoreboard stalls the core when a source operand, the memory
    unit, an instruction fetch, or a network value is not ready. Stall
    cycles are attributed per Fig. 12 (I-, D-, data-receive,
    predicate-receive, synchronisation). In coupled mode the 1-bit stall
    bus makes every stall a group stall: no core issues unless all can
    (§3.2). Architectural data lives in flat memory updated at issue time;
    caches model timing only (DESIGN.md §5).

    {b Transactions.} A TM commit round resolves when {e every} core is in
    a transaction and waiting at TM_COMMIT — the in-order chunk-commit rule,
    so the DOALL codegen gives every core one (possibly empty) chunk per
    round. Chunks commit in core order, and on a conflict
    the violating core and its successors roll back (registers restored
    from the TM_BEGIN snapshot — standing in for the paper's
    compiler-generated recovery code) and re-execute serially. *)

type t

type outcome =
  | Finished
  | Out_of_cycles
  | Deadlock of string  (** watchdog diagnostic *)

type result = {
  outcome : outcome;
  cycles : int;
  checksum : int;  (** final data-memory checksum (the oracle value) *)
}

val create : Config.t -> Voltron_isa.Program.t -> t
(** Raises [Invalid_argument] if the program's core count does not match
    the configuration, or a bundle exceeds the configured widths. *)

val run : t -> result

val memory : t -> Voltron_mem.Memory.t
val stats : t -> Stats.t
val coherence : t -> Voltron_mem.Coherence.t
val network : t -> Voltron_net.Operand_network.t

val reg : t -> core:int -> int -> int
(** Inspect a register after (or during) a run — used by tests. *)

val set_tracer : t -> Trace.t -> unit
(** Attach a structured tracer recording issues, stalls, mode switches,
    spawns and TM rounds (see {!Trace}). *)
