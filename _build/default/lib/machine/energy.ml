type weights = {
  w_op : float;
  w_mul_div : float;
  w_mem_op : float;
  w_comm_op : float;
  w_l1_access : float;
  w_l1_miss : float;
  w_l2_miss : float;
  w_msg_hop : float;
  w_leak_core_cycle : float;
}

let default_weights =
  {
    w_op = 1.0;
    w_mul_div = 3.0;
    w_mem_op = 1.0;
    w_comm_op = 1.0;
    w_l1_access = 2.0;
    w_l1_miss = 20.0;
    w_l2_miss = 100.0;
    w_msg_hop = 2.0;
    w_leak_core_cycle = 0.3;
  }

type report = {
  e_dynamic : float;
  e_static : float;
  e_total : float;
  edp : float;
}

let of_run ?(weights = default_weights) ~(stats : Stats.t) ~coherence ~network
    () =
  let w = weights in
  let f = float_of_int in
  let per_core =
    Array.to_list stats.Stats.per_core
    |> List.map (fun (c : Stats.core) ->
           (f c.Stats.ops *. w.w_op)
           +. (f c.Stats.ops_mul_div *. w.w_mul_div)
           +. (f c.Stats.ops_mem *. w.w_mem_op)
           +. (f c.Stats.ops_comm *. w.w_comm_op))
    |> List.fold_left ( +. ) 0.
  in
  let ch = Voltron_mem.Coherence.total_stats coherence in
  let cache =
    (f ch.Voltron_mem.Coherence.accesses *. w.w_l1_access)
    +. (f ch.Voltron_mem.Coherence.l1d_misses *. w.w_l1_miss)
    +. (f ch.Voltron_mem.Coherence.l1i_misses *. w.w_l1_miss)
    +. (f ch.Voltron_mem.Coherence.l2_misses *. w.w_l2_miss)
  in
  let ns = Voltron_net.Operand_network.stats network in
  let net =
    f ns.Voltron_net.Operand_network.total_latency *. w.w_msg_hop /. 2.
  in
  let e_dynamic = per_core +. cache +. net in
  let e_static =
    f stats.Stats.cycles *. f stats.Stats.n_cores *. w.w_leak_core_cycle
  in
  let e_total = e_dynamic +. e_static in
  { e_dynamic; e_static; e_total; edp = e_total *. f stats.Stats.cycles }

let pp ppf r =
  Format.fprintf ppf
    "energy: dynamic %.0f + static %.0f = %.0f units (EDP %.3e)" r.e_dynamic
    r.e_static r.e_total r.edp
