module Inst = Voltron_isa.Inst
module Bundle = Voltron_isa.Bundle
module Image = Voltron_isa.Image
module Program = Voltron_isa.Program
module Semantics = Voltron_isa.Semantics
module Memory = Voltron_mem.Memory
module Tm = Voltron_mem.Tm
module Coherence = Voltron_mem.Coherence
module Mesh = Voltron_net.Mesh
module Net = Voltron_net.Operand_network

type outcome =
  | Finished
  | Out_of_cycles
  | Deadlock of string

type result = {
  outcome : outcome;
  cycles : int;
  checksum : int;
}

type status =
  | Running
  | Asleep
  | Halted
  | At_barrier of Inst.mode
  | At_commit
  | Wait_serial

(* What produced a register's in-flight value: classifies scoreboard
   stalls (paper Fig. 12 taxonomy). *)
type producer = P_load | P_recv_data | P_recv_pred | P_getb | P_other

type core_state = {
  id : int;
  image : Image.t;
  mutable pc : int;
  mutable status : status;
  mutable regs : int array;
  mutable ready : int array;
  mutable prod : producer array;
  btrs : int array;
  btr_ready : int array;
  mutable fetch_done : int;
  mutable mem_busy : int;
  (* In-order blocking cache (paper §3.2: "if one core stalls due to cache
     misses, all the cores must stall"): a miss freezes the core until the
     fill completes; hits stay pipelined through the scoreboard. *)
  mutable miss_stall_until : int;
  (* Chunk snapshot for TM rollback: register file + the chunk's start pc. *)
  mutable tm_snapshot : (int array * int) option;
  mutable tm_serial : bool;
}

type t = {
  cfg : Config.t;
  prog : Program.t;
  mem : Memory.t;
  tm : Tm.t;
  hier : Coherence.t;
  net : Net.t;
  cores : core_state array;
  st : Stats.t;
  mutable mode : Inst.mode;
  mutable now : int;
  mutable serial_queue : int list;
  mutable last_progress : int;
  mutable tracer : Trace.t option;
}

let initial_regs = 64

let fresh_core cfg image id =
  {
    id;
    image;
    pc = 0;
    status = (if id = 0 then Running else Asleep);
    regs = Array.make initial_regs 0;
    ready = Array.make initial_regs 0;
    prod = Array.make initial_regs P_other;
    btrs = Array.make cfg.Config.n_btrs 0;
    btr_ready = Array.make cfg.Config.n_btrs 0;
    fetch_done = 0;
    mem_busy = 0;
    miss_stall_until = 0;
    tm_snapshot = None;
    tm_serial = false;
  }

let validate_widths cfg (prog : Program.t) =
  Array.iter
    (fun image ->
      for addr = 0 to Image.length image - 1 do
        Bundle.check ~issue_width:cfg.Config.issue_width
          ~comm_width:cfg.Config.comm_width (Image.fetch image addr)
      done)
    prog.images

let create cfg (prog : Program.t) =
  if Program.n_cores prog <> cfg.Config.n_cores then
    invalid_arg
      (Printf.sprintf "Machine.create: program has %d cores, config %d"
         (Program.n_cores prog) cfg.Config.n_cores);
  validate_widths cfg prog;
  let mem = Memory.create prog.mem_size in
  Memory.load_init mem prog.mem_init;
  let mesh = Config.mesh cfg in
  let t =
    {
      cfg;
      prog;
      mem;
      tm = Tm.create mem ~n_cores:cfg.n_cores;
      hier = Coherence.create cfg.cache ~n_cores:cfg.n_cores;
      net = Net.create mesh ~receive_capacity:cfg.net_capacity;
      cores = Array.init cfg.n_cores (fun id -> fresh_core cfg prog.images.(id) id);
      st = Stats.create ~n_cores:cfg.n_cores;
      mode = Inst.Decoupled;
      now = 0;
      serial_queue = [];
      last_progress = 0;
      tracer = None;
    }
  in
  (* Core 0's first fetch starts at cycle 0. *)
  t.cores.(0).fetch_done <- Coherence.access t.hier ~now:0 ~core:0 Coherence.Ifetch 0;
  t

let memory t = t.mem
let stats t = t.st
let coherence t = t.hier
let network t = t.net
let set_tracer t tr = t.tracer <- Some tr

let trace t ev =
  match t.tracer with None -> () | Some tr -> Trace.record tr ev

(* --- Register file with growth ------------------------------------------- *)

let ensure_reg cs r =
  let n = Array.length cs.regs in
  if r >= n then begin
    let n' = max (r + 1) (2 * n) in
    let grow a fill =
      let a' = Array.make n' fill in
      Array.blit a 0 a' 0 n;
      a'
    in
    cs.regs <- grow cs.regs 0;
    cs.ready <- grow cs.ready 0;
    cs.prod <- grow cs.prod P_other
  end

let read_reg cs r =
  ensure_reg cs r;
  cs.regs.(r)

let write_reg cs r v ~ready ~prod =
  ensure_reg cs r;
  cs.regs.(r) <- v;
  cs.ready.(r) <- ready;
  cs.prod.(r) <- prod

let reg t ~core r = read_reg t.cores.(core) r

let record_stall t ~core kind =
  Stats.record_stall t.st ~core kind;
  trace t (Trace.Stall { cycle = t.now; core; kind })

(* --- Stall analysis ------------------------------------------------------ *)

let producer_stall = function
  | P_load -> Stats.D_stall
  | P_recv_data -> Stats.Recv_data
  | P_recv_pred -> Stats.Recv_pred
  | P_getb -> Stats.Sync
  | P_other -> Stats.Lat_stall

(* First reason the core cannot issue its current bundle this cycle, or
   [None] when it can. Has no side effects. *)
let blocker t cs =
  let now = t.now in
  if now < cs.miss_stall_until then Some Stats.D_stall
  else if now < cs.fetch_done then Some Stats.I_stall
  else begin
    let bundle = Image.fetch cs.image cs.pc in
    let check_op acc op =
      match acc with
      | Some _ -> acc
      | None ->
        let reg_block =
          List.fold_left
            (fun acc r ->
              match acc with
              | Some _ -> acc
              | None ->
                ensure_reg cs r;
                if cs.ready.(r) > now then Some (producer_stall cs.prod.(r))
                else None)
            None (Inst.uses op)
        in
        if reg_block <> None then reg_block
        else begin
          match op with
          | Inst.Load _ | Inst.Store _ ->
            if cs.mem_busy > now then Some Stats.D_stall else None
          | Inst.Br { btr; _ } ->
            if cs.btr_ready.(btr) > now then Some Stats.Lat_stall else None
          | Inst.Recv { sender; kind; _ } ->
            if Net.recv_ready t.net ~now ~core:cs.id ~sender then None
            else
              Some
                (match kind with
                | Inst.Rv_data -> Stats.Recv_data
                | Inst.Rv_pred -> Stats.Recv_pred
                | Inst.Rv_sync -> Stats.Sync)
          | Inst.Getb _ ->
            if Net.getb_ready t.net ~now ~core:cs.id then None
            else Some Stats.Sync
          | Inst.Send { target; _ } | Inst.Spawn { target; _ } ->
            if Net.pending t.net ~src:cs.id ~dst:target >= t.cfg.net_capacity
            then Some Stats.Sync
            else None
          | Inst.Alu _ | Inst.Fpu _ | Inst.Cmp _ | Inst.Select _ | Inst.Mov _
          | Inst.Pbr _ | Inst.Bcast _ | Inst.Put _ | Inst.Get _ | Inst.Sleep
          | Inst.Mode_switch _ | Inst.Tm_begin | Inst.Tm_commit | Inst.Halt
          | Inst.Nop ->
            None
        end
    in
    List.fold_left check_op None bundle
  end

(* --- Bundle execution ----------------------------------------------------- *)

(* VLIW read-before-write: snapshot every source register of the bundle
   before any of its effects land. *)
let snapshot_sources cs bundle =
  let table = Hashtbl.create 8 in
  List.iter
    (fun op -> List.iter (fun r -> Hashtbl.replace table r (read_reg cs r)) (Inst.uses op))
    bundle;
  table

let read_operand snapshot (o : Inst.operand) =
  match o with
  | Inst.Imm i -> i
  | Inst.Reg r -> (
    match Hashtbl.find_opt snapshot r with
    | Some v -> v
    | None -> failwith "Machine: operand missing from bundle source snapshot")

let is_comm_out (op : Inst.t) =
  match op with
  | Inst.Put _ | Inst.Bcast _ | Inst.Send _ | Inst.Spawn _ -> true
  | Inst.Alu _ | Inst.Fpu _ | Inst.Cmp _ | Inst.Select _ | Inst.Load _
  | Inst.Store _ | Inst.Mov _ | Inst.Pbr _ | Inst.Br _ | Inst.Getb _
  | Inst.Get _ | Inst.Recv _ | Inst.Sleep | Inst.Mode_switch _ | Inst.Tm_begin
  | Inst.Tm_commit | Inst.Halt | Inst.Nop ->
    false

(* Phase 1: communication-out ops (PUT/BCAST/SEND/SPAWN), executed for all
   issuing cores before any core's phase 2, so that same-cycle PUT/GET and
   BCAST pairing works across cores. *)
let exec_comm_out t cs snapshot op =
  let now = t.now in
  match op with
  | Inst.Put { dir; src } -> (
    match Net.put t.net ~now ~src_core:cs.id dir (read_operand snapshot src) with
    | Ok () -> ()
    | Error msg -> failwith (Printf.sprintf "core %d cycle %d: %s" cs.id now msg))
  | Inst.Bcast { src } ->
    Net.bcast t.net ~now ~src_core:cs.id (read_operand snapshot src)
  | Inst.Send { target; src } -> (
    match
      Net.send t.net ~now ~src:cs.id ~dst:target
        (Net.Value (read_operand snapshot src))
    with
    | Ok () -> ()
    | Error msg -> failwith (Printf.sprintf "core %d cycle %d: %s" cs.id now msg))
  | Inst.Spawn { target; entry } -> (
    let addr = Image.resolve t.prog.images.(target) entry in
    t.st.spawns <- t.st.spawns + 1;
    trace t (Trace.Spawned { cycle = t.now; by = cs.id; target });
    match Net.send t.net ~now ~src:cs.id ~dst:target (Net.Start addr) with
    | Ok () -> ()
    | Error msg -> failwith (Printf.sprintf "core %d cycle %d: %s" cs.id now msg))
  | Inst.Alu _ | Inst.Fpu _ | Inst.Cmp _ | Inst.Select _ | Inst.Load _
  | Inst.Store _ | Inst.Mov _ | Inst.Pbr _ | Inst.Br _ | Inst.Getb _
  | Inst.Get _ | Inst.Recv _ | Inst.Sleep | Inst.Mode_switch _ | Inst.Tm_begin
  | Inst.Tm_commit | Inst.Halt | Inst.Nop ->
    invalid_arg "exec_comm_out: not a communication-out op"

(* Phase 2: everything else. Returns the branch target when the bundle's
   branch is taken. *)
let exec_main t cs snapshot op : int option =
  let now = t.now in
  let lat = Config.latency op in
  let read = read_operand snapshot in
  match op with
  | Inst.Alu { op = a; dst; src1; src2 } ->
    write_reg cs dst (Semantics.alu a (read src1) (read src2)) ~ready:(now + lat)
      ~prod:P_other;
    None
  | Inst.Fpu { op = f; dst; src1; src2 } ->
    write_reg cs dst (Semantics.fpu f (read src1) (read src2)) ~ready:(now + lat)
      ~prod:P_other;
    None
  | Inst.Cmp { op = c; dst; src1; src2 } ->
    write_reg cs dst (Semantics.cmp c (read src1) (read src2)) ~ready:(now + lat)
      ~prod:P_other;
    None
  | Inst.Select { dst; pred; if_true; if_false } ->
    let v = if Semantics.truthy (read pred) then read if_true else read if_false in
    write_reg cs dst v ~ready:(now + lat) ~prod:P_other;
    None
  | Inst.Mov { dst; src } ->
    write_reg cs dst (read src) ~ready:(now + lat) ~prod:P_other;
    None
  | Inst.Load { dst; base; offset } ->
    let addr = read base + read offset in
    let v = Tm.read t.tm ~core:cs.id addr in
    let completion = Coherence.access t.hier ~now ~core:cs.id Coherence.Dload addr in
    cs.mem_busy <- max cs.mem_busy completion;
    if completion > now + t.cfg.cache.Coherence.lat_l1 then
      cs.miss_stall_until <- max cs.miss_stall_until completion;
    write_reg cs dst v ~ready:(max (now + lat) completion) ~prod:P_load;
    None
  | Inst.Store { base; offset; src } ->
    let addr = read base + read offset in
    Tm.write t.tm ~core:cs.id addr (read src);
    let completion = Coherence.access t.hier ~now ~core:cs.id Coherence.Dstore addr in
    cs.mem_busy <- max cs.mem_busy completion;
    if completion > now + t.cfg.cache.Coherence.lat_l1 then
      cs.miss_stall_until <- max cs.miss_stall_until completion;
    None
  | Inst.Pbr { btr; target } ->
    cs.btrs.(btr) <- Image.resolve cs.image target;
    cs.btr_ready.(btr) <- now + lat;
    None
  | Inst.Br { btr; pred; invert } ->
    let taken =
      match pred with
      | None -> true
      | Some p ->
        let v = Semantics.truthy (read p) in
        if invert then not v else v
    in
    if taken then Some cs.btrs.(btr) else None
  | Inst.Getb { dst } -> (
    match Net.getb t.net ~now ~core:cs.id with
    | Some v ->
      write_reg cs dst v ~ready:(now + lat) ~prod:P_getb;
      None
    | None -> failwith (Printf.sprintf "core %d cycle %d: GETB on empty broadcast" cs.id now))
  | Inst.Get { dir; dst } -> (
    match Net.get t.net ~now ~core:cs.id dir with
    | Some v ->
      write_reg cs dst v ~ready:(now + lat) ~prod:P_other;
      None
    | None ->
      failwith
        (Printf.sprintf "core %d cycle %d: GET with no paired PUT (lock-step broken?)"
           cs.id now))
  | Inst.Recv { sender; dst; kind } -> (
    match Net.recv t.net ~now ~core:cs.id ~sender with
    | Some v ->
      let prod =
        match kind with
        | Inst.Rv_data -> P_recv_data
        | Inst.Rv_pred -> P_recv_pred
        | Inst.Rv_sync -> P_other
      in
      write_reg cs dst v ~ready:(now + lat) ~prod;
      None
    | None -> failwith (Printf.sprintf "core %d cycle %d: RECV raced its readiness check" cs.id now))
  | Inst.Sleep ->
    cs.status <- Asleep;
    None
  | Inst.Mode_switch m ->
    cs.status <- At_barrier m;
    None
  | Inst.Tm_begin ->
    if not cs.tm_serial then begin
      Tm.tx_begin t.tm ~core:cs.id;
      cs.tm_snapshot <- Some (Array.copy cs.regs, cs.pc)
    end;
    None
  | Inst.Tm_commit ->
    if cs.tm_serial then cs.tm_serial <- false (* serial chunk done *)
    else cs.status <- At_commit;
    None
  | Inst.Halt ->
    cs.status <- Halted;
    None
  | Inst.Nop -> None
  | Inst.Put _ | Inst.Bcast _ | Inst.Send _ | Inst.Spawn _ ->
    invalid_arg "exec_main: communication-out op in phase 2"

let initiate_fetch t cs =
  cs.fetch_done <-
    Coherence.access t.hier ~now:t.now ~core:cs.id Coherence.Ifetch cs.pc

(* Run one issuing core's full bundle (both phases are driven by the cycle
   loop; this is phase 2 plus pc update). *)
let finish_issue t cs snapshot bundle =
  let issued_pc = cs.pc in
  let target =
    List.fold_left
      (fun acc op ->
        if is_comm_out op then acc
        else
          match exec_main t cs snapshot op with
          | Some tgt -> Some tgt
          | None -> acc)
      None bundle
  in
  let core_st = Stats.core t.st cs.id in
  core_st.busy <- core_st.busy + 1;
  core_st.bundles <- core_st.bundles + 1;
  List.iter
    (fun op ->
      if op <> Inst.Nop then begin
        core_st.ops <- core_st.ops + 1;
        (match Inst.unit_class op with
        | Inst.Memory -> core_st.ops_mem <- core_st.ops_mem + 1
        | Inst.Commun -> core_st.ops_comm <- core_st.ops_comm + 1
        | Inst.Compute | Inst.Control -> ());
        match op with
        | Inst.Alu { op = Inst.Mul | Inst.Div | Inst.Rem; _ } | Inst.Fpu _ ->
          core_st.ops_mul_div <- core_st.ops_mul_div + 1
        | _ -> ()
      end)
    bundle;
  t.last_progress <- t.now;
  (match cs.status with
  | Running ->
    cs.pc <- (match target with Some tgt -> tgt | None -> cs.pc + 1);
    initiate_fetch t cs
  | Asleep | Halted -> ()
  | At_barrier _ | At_commit | Wait_serial ->
    (* Resume point: past this bundle (barrier ops never co-issue with a
       taken branch in generated code, but honour one if present). *)
    cs.pc <- (match target with Some tgt -> tgt | None -> cs.pc + 1));
  trace t
    (Trace.Issue
       {
         cycle = t.now;
         core = cs.id;
         pc = issued_pc;
         ops = List.length (List.filter (fun o -> o <> Inst.Nop) bundle);
       })

(* --- Per-cycle stepping --------------------------------------------------- *)

let record_idle t cs =
  let core_st = Stats.core t.st cs.id in
  core_st.idle <- core_st.idle + 1

let try_wake t cs =
  match Net.take_start t.net ~now:t.now ~core:cs.id with
  | Some addr ->
    cs.pc <- addr;
    cs.status <- Running;
    initiate_fetch t cs;
    record_idle t cs
  | None -> record_idle t cs

(* Decoupled: each core progresses independently. *)
let decoupled_step t =
  Array.iter
    (fun cs ->
      match cs.status with
      | Halted -> record_idle t cs
      | Asleep -> try_wake t cs
      | Wait_serial | At_barrier _ | At_commit ->
        record_stall t ~core:cs.id Stats.Sync
      | Running -> (
        match blocker t cs with
        | Some reason -> record_stall t ~core:cs.id reason
        | None ->
          let bundle = Image.fetch cs.image cs.pc in
          let snapshot = snapshot_sources cs bundle in
          List.iter
            (fun op -> if is_comm_out op then exec_comm_out t cs snapshot op)
            bundle;
          finish_issue t cs snapshot bundle))
    t.cores

(* Coupled: lock-step with the stall bus — either every running core
   issues, or none does. *)
let coupled_step t =
  let running =
    Array.to_list t.cores |> List.filter (fun cs -> cs.status = Running)
  in
  List.iter
    (fun cs ->
      match cs.status with
      | Running | At_barrier _ -> ()
      | Asleep | Halted | At_commit | Wait_serial ->
        failwith
          (Printf.sprintf "core %d in unexpected state during coupled mode" cs.id))
    (Array.to_list t.cores);
  let blockers = List.map (fun cs -> (cs, blocker t cs)) running in
  let any_blocked = List.exists (fun (_, b) -> b <> None) blockers in
  if any_blocked then begin
    (* Group stall: a core with its own reason records it; the rest record
       the peers' dominant reason (D over I over the rest). *)
    let reasons = List.filter_map snd blockers in
    let dominant =
      if List.mem Stats.D_stall reasons then Stats.D_stall
      else if List.mem Stats.I_stall reasons then Stats.I_stall
      else (match reasons with r :: _ -> r | [] -> Stats.Sync)
    in
    List.iter
      (fun (cs, b) ->
        record_stall t ~core:cs.id
          (match b with Some r -> r | None -> dominant))
      blockers
  end
  else begin
    let issues =
      List.map
        (fun cs ->
          let bundle = Image.fetch cs.image cs.pc in
          (cs, bundle, snapshot_sources cs bundle))
        running
    in
    List.iter
      (fun (cs, bundle, snapshot) ->
        List.iter
          (fun op -> if is_comm_out op then exec_comm_out t cs snapshot op)
          bundle)
      issues;
    List.iter (fun (cs, bundle, snapshot) -> finish_issue t cs snapshot bundle) issues
  end;
  (* Cores already waiting at the exit barrier count sync stalls. *)
  Array.iter
    (fun cs ->
      match cs.status with
      | At_barrier _ -> record_stall t ~core:cs.id Stats.Sync
      | Running | Asleep | Halted | At_commit | Wait_serial -> ())
    t.cores

(* --- End-of-cycle resolution ---------------------------------------------- *)

let resolve_mode_barrier t =
  let statuses = Array.map (fun cs -> cs.status) t.cores in
  let all_at_barrier =
    Array.for_all (function At_barrier _ -> true | _ -> false) statuses
  in
  if all_at_barrier then begin
    let target =
      match statuses.(0) with
      | At_barrier m -> m
      | Running | Asleep | Halted | At_commit | Wait_serial -> assert false
    in
    Array.iter
      (fun cs ->
        (match cs.status with
        | At_barrier m when m = target -> ()
        | At_barrier _ ->
          failwith "mode-switch barrier with disagreeing target modes"
        | Running | Asleep | Halted | At_commit | Wait_serial -> assert false);
        cs.status <- Running;
        initiate_fetch t cs)
      t.cores;
    t.mode <- target;
    t.st.mode_switches <- t.st.mode_switches + 1;
    trace t (Trace.Mode_change { cycle = t.now; mode = target });
    t.last_progress <- t.now
  end

let rollback t cs =
  match cs.tm_snapshot with
  | None -> failwith (Printf.sprintf "core %d: TM rollback without snapshot" cs.id)
  | Some (regs, pc) ->
    cs.regs <- Array.copy regs;
    cs.ready <- Array.make (Array.length regs) t.now;
    cs.prod <- Array.make (Array.length regs) P_other;
    cs.pc <- pc;
    cs.tm_serial <- true

(* A TM round resolves only when EVERY core is in a transaction and waiting
   at TM_COMMIT. This enforces the paper's in-order chunk commit: chunk i+1
   can never commit before chunk i, even if its core raced ahead, so the
   codegen contract is that every DOALL round runs one (possibly empty)
   chunk on every core. *)
let resolve_tm_round t =
  let participants = List.init t.cfg.n_cores (fun c -> c) in
  let all_ready =
    List.for_all
      (fun c -> Tm.in_tx t.tm ~core:c && t.cores.(c).status = At_commit)
      participants
  in
  if all_ready then begin
    t.st.tm_rounds <- t.st.tm_rounds + 1;
    t.last_progress <- t.now;
    match Tm.commit_round t.tm ~cores:participants with
    | `All_committed ->
      trace t (Trace.Tm_round { cycle = t.now; conflict_at = None });
      List.iter
        (fun c ->
          let cs = t.cores.(c) in
          cs.status <- Running;
          cs.tm_snapshot <- None;
          initiate_fetch t cs)
        participants
    | `Conflict_at first ->
      t.st.tm_conflicts <- t.st.tm_conflicts + 1;
      trace t (Trace.Tm_round { cycle = t.now; conflict_at = Some first });
      let committed, aborted = List.partition (fun c -> c < first) participants in
      List.iter
        (fun c ->
          let cs = t.cores.(c) in
          cs.status <- Running;
          cs.tm_snapshot <- None;
          initiate_fetch t cs)
        committed;
      List.iter (fun c -> rollback t t.cores.(c)) aborted;
      (match aborted with
      | [] -> assert false
      | head :: rest ->
        let cs = t.cores.(head) in
        cs.status <- Running;
        initiate_fetch t cs;
        List.iter (fun c -> t.cores.(c).status <- Wait_serial) rest);
      t.serial_queue <- aborted
  end

let resolve_serial_queue t =
  match t.serial_queue with
  | [] -> ()
  | head :: rest ->
    let cs = t.cores.(head) in
    (* The head finished its serial re-execution when its Tm_commit cleared
       the serial flag. *)
    if (not cs.tm_serial) && cs.status <> Wait_serial then begin
      t.serial_queue <- rest;
      match rest with
      | [] -> ()
      | next :: _ ->
        let ncs = t.cores.(next) in
        ncs.status <- Running;
        initiate_fetch t ncs;
        t.last_progress <- t.now
    end

let finished t =
  t.cores.(0).status = Halted
  && Array.for_all
       (fun cs -> match cs.status with Halted | Asleep -> true | _ -> false)
       t.cores
  && Net.idle t.net

let diagnose t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "no progress since cycle %d (now %d), mode %s\n" t.last_progress
       t.now
       (match t.mode with Inst.Coupled -> "coupled" | Inst.Decoupled -> "decoupled"));
  Array.iter
    (fun cs ->
      let status =
        match cs.status with
        | Running -> (
          match blocker t cs with
          | Some Stats.I_stall -> "running (I-stall)"
          | Some Stats.D_stall -> "running (D-stall)"
          | Some Stats.Lat_stall -> "running (latency)"
          | Some Stats.Recv_data -> "running (recv data)"
          | Some Stats.Recv_pred -> "running (recv pred)"
          | Some Stats.Sync -> "running (sync)"
          | None -> "running (issueable?)")
        | Asleep -> "asleep"
        | Halted -> "halted"
        | At_barrier m -> Format.asprintf "at barrier -> %a" Inst.pp_mode m
        | At_commit -> "at TM commit"
        | Wait_serial -> "waiting for serial token"
      in
      Buffer.add_string buf
        (Printf.sprintf "  core %d: pc=%d %s bundle={%s}\n" cs.id cs.pc status
           (Format.asprintf "%a" Bundle.pp
              (if cs.pc < Image.length cs.image then Image.fetch cs.image cs.pc else []))))
    t.cores;
  Buffer.contents buf

let run t =
  let outcome = ref None in
  while !outcome = None do
    t.now <- t.now + 1;
    if t.now > t.cfg.max_cycles then outcome := Some Out_of_cycles
    else begin
      (match t.mode with
      | Inst.Coupled ->
        t.st.coupled_cycles <- t.st.coupled_cycles + 1;
        coupled_step t
      | Inst.Decoupled ->
        t.st.decoupled_cycles <- t.st.decoupled_cycles + 1;
        decoupled_step t);
      resolve_mode_barrier t;
      resolve_tm_round t;
      resolve_serial_queue t;
      if finished t then outcome := Some Finished
      else if t.now - t.last_progress > t.cfg.watchdog then
        outcome := Some (Deadlock (diagnose t))
    end
  done;
  t.st.cycles <- t.now;
  let outcome = match !outcome with Some o -> o | None -> assert false in
  { outcome; cycles = t.now; checksum = Memory.checksum t.mem }
