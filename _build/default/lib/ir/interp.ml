module Memory = Voltron_mem.Memory
module Semantics = Voltron_isa.Semantics

type events = {
  on_stmt : sid:int -> unit;
  on_load : sid:int -> arr:Hir.arr -> addr:int -> unit;
  on_store : sid:int -> arr:Hir.arr -> addr:int -> unit;
  on_loop_enter : sid:int -> unit;
  on_loop_iter : sid:int -> iter:int -> unit;
  on_loop_exit : sid:int -> trips:int -> unit;
}

let null_events =
  {
    on_stmt = (fun ~sid:_ -> ());
    on_load = (fun ~sid:_ ~arr:_ ~addr:_ -> ());
    on_store = (fun ~sid:_ ~arr:_ ~addr:_ -> ());
    on_loop_enter = (fun ~sid:_ -> ());
    on_loop_iter = (fun ~sid:_ ~iter:_ -> ());
    on_loop_exit = (fun ~sid:_ ~trips:_ -> ());
  }

type result = {
  memory : Memory.t;
  layout : Layout.t;
  checksum : int;
  dyn_stmts : int;
}

exception Step_limit_exceeded

type state = {
  regs : int array;
  mem : Memory.t;
  lay : Layout.t;
  ev : events;
  max_steps : int;
  mutable steps : int;
}

let read st (o : Hir.operand) =
  match o with Hir.Imm i -> i | Hir.Reg r -> st.regs.(r)

let element_addr st arr idx =
  let size = Layout.array_size st.lay arr in
  if idx < 0 || idx >= size then
    invalid_arg
      (Printf.sprintf "Interp: index %d outside array %d of size %d" idx arr size);
  Layout.base st.lay arr + idx

let eval_expr st sid (e : Hir.expr) =
  match e with
  | Hir.Alu (op, a, b) -> Semantics.alu op (read st a) (read st b)
  | Hir.Fpu (op, a, b) -> Semantics.fpu op (read st a) (read st b)
  | Hir.Cmp (op, a, b) -> Semantics.cmp op (read st a) (read st b)
  | Hir.Select (p, a, b) ->
    if Semantics.truthy (read st p) then read st a else read st b
  | Hir.Load (arr, idx) ->
    let addr = element_addr st arr (read st idx) in
    st.ev.on_load ~sid ~arr ~addr;
    Memory.read st.mem addr
  | Hir.Operand o -> read st o

let tick st =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then raise Step_limit_exceeded

let rec exec_stmts st stmts = List.iter (exec_stmt st) stmts

and exec_stmt st ({ Hir.sid; node } : Hir.stmt) =
  tick st;
  st.ev.on_stmt ~sid;
  match node with
  | Hir.Assign (v, e) -> st.regs.(v) <- eval_expr st sid e
  | Hir.Store (arr, idx, value) ->
    let addr = element_addr st arr (read st idx) in
    st.ev.on_store ~sid ~arr ~addr;
    Memory.write st.mem addr (read st value)
  | Hir.If (c, then_, else_) ->
    if Semantics.truthy (read st c) then exec_stmts st then_ else exec_stmts st else_
  | Hir.For { var; init; limit; step; body } ->
    st.ev.on_loop_enter ~sid;
    let bound = read st limit in
    st.regs.(var) <- read st init;
    let iter = ref 0 in
    while st.regs.(var) < bound do
      st.ev.on_loop_iter ~sid ~iter:!iter;
      exec_stmts st body;
      st.regs.(var) <- st.regs.(var) + step;
      incr iter
    done;
    st.ev.on_loop_exit ~sid ~trips:!iter
  | Hir.Do_while { body; cond } ->
    st.ev.on_loop_enter ~sid;
    let iter = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      st.ev.on_loop_iter ~sid ~iter:!iter;
      exec_stmts st body;
      incr iter;
      continue_ := Semantics.truthy (read st cond);
      if !continue_ then tick st
    done;
    st.ev.on_loop_exit ~sid ~trips:!iter

let run ?(events = null_events) ?(max_steps = 200_000_000) (p : Hir.program) =
  let lay = Layout.compute p in
  (* No compiler scratch here: oracle-vs-machine comparisons checksum only
     the array footprint (Memory.checksum_prefix). *)
  let mem = Memory.create (max 1 (Layout.mem_size lay)) in
  Memory.load_init mem (Layout.mem_init lay p);
  let st =
    { regs = Array.make (max 1 p.n_vregs) 0; mem; lay; ev = events; max_steps; steps = 0 }
  in
  List.iter (fun (r : Hir.region) -> exec_stmts st r.stmts) p.regions;
  { memory = mem; layout = lay; checksum = Memory.checksum mem; dyn_stmts = st.steps }
