type oid = int

type lop = {
  oid : oid;
  inst : Voltron_isa.Inst.t;
  hir_sid : int;
}

type mem_ref = {
  m_arr : Hir.arr;
  m_index : Hir.operand;
  m_write : bool;
}

type terminator =
  | Jump of string
  | Branch of { cond : Hir.vreg; invert : bool; target : string }
  | Stop

type block = {
  b_label : string;
  mutable b_ops : lop list;
  mutable b_term : terminator;
}

type t = {
  blocks : block array;
  mem_refs : (oid, mem_ref) Hashtbl.t;
  loop_headers : (string, int) Hashtbl.t;
  replicable : (oid, unit) Hashtbl.t;
}

let block_index t label =
  let found = ref (-1) in
  Array.iteri (fun i b -> if b.b_label = label then found := i) t.blocks;
  if !found < 0 then raise Not_found else !found

let all_ops t =
  Array.to_list t.blocks |> List.concat_map (fun b -> b.b_ops)

let n_ops t = List.length (all_ops t)

let successors t i =
  let b = t.blocks.(i) in
  let fall = if i + 1 < Array.length t.blocks then [ i + 1 ] else [] in
  match b.b_term with
  | Jump l -> [ block_index t l ]
  | Branch { target; _ } -> block_index t target :: fall
  | Stop -> []

let pp ppf t =
  Array.iteri
    (fun i b ->
      Format.fprintf ppf "%s:@." b.b_label;
      List.iter
        (fun op -> Format.fprintf ppf "  %a@." Voltron_isa.Inst.pp op.inst)
        b.b_ops;
      (match b.b_term with
      | Jump l -> Format.fprintf ppf "  jump %s@." l
      | Branch { cond; invert; target } ->
        Format.fprintf ppf "  branch%s v%d -> %s@."
          (if invert then ".not" else "")
          cond target
      | Stop -> Format.fprintf ppf "  stop@.");
      ignore i)
    t.blocks
