type vreg = int
type arr = int

type operand = Reg of vreg | Imm of int

type expr =
  | Alu of Voltron_isa.Inst.alu_op * operand * operand
  | Fpu of Voltron_isa.Inst.fpu_op * operand * operand
  | Cmp of Voltron_isa.Inst.cmp_op * operand * operand
  | Select of operand * operand * operand
  | Load of arr * operand
  | Operand of operand

type stmt = { sid : int; node : node }

and node =
  | Assign of vreg * expr
  | Store of arr * operand * operand
  | If of operand * stmt list * stmt list
  | For of for_loop
  | Do_while of { body : stmt list; cond : operand }

and for_loop = {
  var : vreg;
  init : operand;
  limit : operand;
  step : int;
  body : stmt list;
}

type array_decl = {
  arr_name : string;
  size : int;
  init : (int -> int) option;
}

type region = { region_name : string; stmts : stmt list }

type program = {
  prog_name : string;
  arrays : array_decl array;
  regions : region list;
  n_vregs : int;
}

let rec iter_stmts f stmts =
  List.iter
    (fun stmt ->
      f stmt;
      match stmt.node with
      | Assign _ | Store _ -> ()
      | If (_, then_, else_) ->
        iter_stmts f then_;
        iter_stmts f else_
      | For { body; _ } -> iter_stmts f body
      | Do_while { body; _ } -> iter_stmts f body)
    stmts

let operand_uses = function Reg r -> [ r ] | Imm _ -> []

let expr_uses = function
  | Alu (_, a, b) | Fpu (_, a, b) | Cmp (_, a, b) -> operand_uses a @ operand_uses b
  | Select (p, a, b) -> operand_uses p @ operand_uses a @ operand_uses b
  | Load (_, idx) -> operand_uses idx
  | Operand o -> operand_uses o

let defined_vregs stmts =
  let acc = ref [] in
  iter_stmts
    (fun stmt ->
      match stmt.node with
      | Assign (v, _) -> acc := v :: !acc
      | For { var; _ } -> acc := var :: !acc
      | Store _ | If _ | Do_while _ -> ())
    stmts;
  List.sort_uniq compare !acc

let used_vregs stmts =
  let acc = ref [] in
  iter_stmts
    (fun stmt ->
      match stmt.node with
      | Assign (_, e) -> acc := expr_uses e @ !acc
      | Store (_, idx, v) -> acc := operand_uses idx @ operand_uses v @ !acc
      | If (c, _, _) -> acc := operand_uses c @ !acc
      | For { init; limit; _ } ->
        acc := operand_uses init @ operand_uses limit @ !acc
      | Do_while { cond; _ } -> acc := operand_uses cond @ !acc)
    stmts;
  List.sort_uniq compare !acc

(* --- Pretty printing ------------------------------------------------------ *)

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "v%d" r
  | Imm i -> Format.fprintf ppf "%d" i

let alu_name (op : Voltron_isa.Inst.alu_op) =
  match op with
  | Voltron_isa.Inst.Add -> "add" | Voltron_isa.Inst.Sub -> "sub"
  | Voltron_isa.Inst.Mul -> "mul" | Voltron_isa.Inst.Div -> "div"
  | Voltron_isa.Inst.Rem -> "rem" | Voltron_isa.Inst.And -> "and"
  | Voltron_isa.Inst.Or -> "or" | Voltron_isa.Inst.Xor -> "xor"
  | Voltron_isa.Inst.Shl -> "shl" | Voltron_isa.Inst.Shr -> "shr"
  | Voltron_isa.Inst.Min -> "min" | Voltron_isa.Inst.Max -> "max"

let pp_expr ppf = function
  | Alu (op, a, b) ->
    Format.fprintf ppf "%s(%a, %a)" (alu_name op) pp_operand a pp_operand b
  | Fpu (op, a, b) ->
    let name =
      match op with
      | Voltron_isa.Inst.Fadd -> "fadd"
      | Voltron_isa.Inst.Fsub -> "fsub"
      | Voltron_isa.Inst.Fmul -> "fmul"
      | Voltron_isa.Inst.Fdiv -> "fdiv"
    in
    Format.fprintf ppf "%s(%a, %a)" name pp_operand a pp_operand b
  | Cmp (op, a, b) ->
    let name =
      match op with
      | Voltron_isa.Inst.Eq -> "==" | Voltron_isa.Inst.Ne -> "!="
      | Voltron_isa.Inst.Lt -> "<" | Voltron_isa.Inst.Le -> "<="
      | Voltron_isa.Inst.Gt -> ">" | Voltron_isa.Inst.Ge -> ">="
    in
    Format.fprintf ppf "%a %s %a" pp_operand a name pp_operand b
  | Select (p, a, b) ->
    Format.fprintf ppf "%a ? %a : %a" pp_operand p pp_operand a pp_operand b
  | Load (a, idx) -> Format.fprintf ppf "arr%d[%a]" a pp_operand idx
  | Operand o -> pp_operand ppf o

let rec pp_stmt ppf stmt =
  match stmt.node with
  | Assign (v, e) -> Format.fprintf ppf "@[v%d = %a@]" v pp_expr e
  | Store (a, idx, v) ->
    Format.fprintf ppf "@[arr%d[%a] = %a@]" a pp_operand idx pp_operand v
  | If (c, then_, else_) ->
    Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,}" pp_operand c pp_stmts then_;
    if else_ <> [] then Format.fprintf ppf "@[<v 2> else {@,%a@]@,}" pp_stmts else_
  | For { var; init; limit; step; body } ->
    Format.fprintf ppf "@[<v 2>for v%d = %a; v%d < %a; v%d += %d {@,%a@]@,}" var
      pp_operand init var pp_operand limit var step pp_stmts body
  | Do_while { body; cond } ->
    Format.fprintf ppf "@[<v 2>do {@,%a@]@,} while %a" pp_stmts body pp_operand cond

and pp_stmts ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf stmts

let pp_program ppf p =
  Format.fprintf ppf "program %s (%d vregs)@." p.prog_name p.n_vregs;
  Array.iteri
    (fun i decl -> Format.fprintf ppf "  array %d: %s[%d]@." i decl.arr_name decl.size)
    p.arrays;
  List.iter
    (fun region ->
      Format.fprintf ppf "@[<v 2>region %s {@,%a@]@,}@." region.region_name pp_stmts
        region.stmts)
    p.regions
