lib/ir/builder.ml: Hir List Voltron_isa Voltron_util
