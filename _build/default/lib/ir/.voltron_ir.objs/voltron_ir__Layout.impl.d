lib/ir/layout.ml: Array Hir List
