lib/ir/interp.ml: Array Hir Layout List Printf Voltron_isa Voltron_mem
