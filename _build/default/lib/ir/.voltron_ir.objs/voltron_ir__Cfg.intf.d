lib/ir/cfg.mli: Format Hashtbl Hir Voltron_isa
