lib/ir/hir.mli: Format Voltron_isa
