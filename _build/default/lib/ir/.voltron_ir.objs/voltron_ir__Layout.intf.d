lib/ir/layout.mli: Hir
