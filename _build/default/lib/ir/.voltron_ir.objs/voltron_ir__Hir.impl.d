lib/ir/hir.ml: Array Format List Voltron_isa
