lib/ir/cfg.ml: Array Format Hashtbl Hir List Voltron_isa
