lib/ir/lower.mli: Cfg Hir Layout Voltron_isa
