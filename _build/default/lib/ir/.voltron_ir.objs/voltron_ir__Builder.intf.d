lib/ir/builder.mli: Hir Voltron_isa
