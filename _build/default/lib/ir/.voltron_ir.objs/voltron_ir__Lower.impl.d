lib/ir/lower.ml: Cfg Hashtbl Hir Layout List Printf Voltron_isa Voltron_util
