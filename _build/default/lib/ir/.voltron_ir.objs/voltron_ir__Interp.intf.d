lib/ir/interp.mli: Hir Layout Voltron_mem
