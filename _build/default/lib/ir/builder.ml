module Vec = Voltron_util.Vec

type frame = Hir.stmt Vec.t

type t = {
  prog_name : string;
  arrays : Hir.array_decl Vec.t;
  mutable regions : Hir.region list;  (** reversed *)
  mutable next_vreg : int;
  mutable next_sid : int;
  mutable stack : frame list;  (** innermost emission point first *)
  mutable in_region : bool;
}

let create prog_name =
  {
    prog_name;
    arrays = Vec.create ();
    regions = [];
    next_vreg = 0;
    next_sid = 0;
    stack = [];
    in_region = false;
  }

let array t ~name ~size ?init () =
  if size <= 0 then invalid_arg "Builder.array: size must be positive";
  Vec.push t.arrays { Hir.arr_name = name; size; init };
  Vec.length t.arrays - 1

let fresh t =
  let v = t.next_vreg in
  t.next_vreg <- v + 1;
  v

let fresh_sid t =
  let s = t.next_sid in
  t.next_sid <- s + 1;
  s

let emit t node =
  match t.stack with
  | [] -> invalid_arg "Builder: statement emitted outside a region"
  | frame :: _ -> Vec.push frame { Hir.sid = fresh_sid t; node }

(* Run [f] collecting its emissions into a fresh list. *)
let collect t f =
  let frame = Vec.create () in
  t.stack <- frame :: t.stack;
  let result = f () in
  (match t.stack with
  | _ :: rest -> t.stack <- rest
  | [] -> assert false);
  (Vec.to_list frame, result)

let region t name f =
  if t.in_region then invalid_arg "Builder.region: regions cannot nest";
  t.in_region <- true;
  let stmts, () = collect t f in
  t.in_region <- false;
  t.regions <- { Hir.region_name = name; stmts } :: t.regions

let imm i = Hir.Imm i

let assign_fresh t expr =
  let v = fresh t in
  emit t (Hir.Assign (v, expr));
  Hir.Reg v

let binop t op a b = assign_fresh t (Hir.Alu (op, a, b))
let fbinop t op a b = assign_fresh t (Hir.Fpu (op, a, b))
let cmp t op a b = assign_fresh t (Hir.Cmp (op, a, b))
let select t p a b = assign_fresh t (Hir.Select (p, a, b))
let load t arr idx = assign_fresh t (Hir.Load (arr, idx))
let mov t o = assign_fresh t (Hir.Operand o)

let add t = binop t Voltron_isa.Inst.Add
let sub t = binop t Voltron_isa.Inst.Sub
let mul t = binop t Voltron_isa.Inst.Mul

let assign t v expr = emit t (Hir.Assign (v, expr))

let store t arr idx v = emit t (Hir.Store (arr, idx, v))

let if_ t cond then_f else_f =
  let then_, () = collect t then_f in
  let else_, () = collect t else_f in
  emit t (Hir.If (cond, then_, else_))

let for_ t ?(step = 1) ~from ~limit body_f =
  if step <= 0 then invalid_arg "Builder.for_: step must be positive";
  let var = fresh t in
  let body, () = collect t (fun () -> body_f (Hir.Reg var)) in
  emit t (Hir.For { Hir.var; init = from; limit; step; body })

let do_while t body_f =
  let body, cond = collect t body_f in
  emit t (Hir.Do_while { body; cond })

let finish t =
  if t.stack <> [] then invalid_arg "Builder.finish: region still open";
  {
    Hir.prog_name = t.prog_name;
    arrays = Vec.to_array t.arrays;
    regions = List.rev t.regions;
    n_vregs = t.next_vreg;
  }
