(** Data-memory layout for a program's arrays.

    Arrays are placed back to back from address 0, each padded to a cache
    line so that distinct arrays never share a line (keeps the paper's
    "distinct data structures don't alias" property true at line
    granularity, avoiding false sharing the compiler didn't create). The
    compiler may reserve extra scratch words after the arrays (accumulator
    expansion, join flags). *)

type t

val compute : ?line_words:int -> Hir.program -> t
val base : t -> Hir.arr -> int
val array_size : t -> Hir.arr -> int
val scratch_alloc : t -> int -> int
(** [scratch_alloc t n] reserves [n] fresh words and returns their base. *)

val mem_size : t -> int
(** Total footprint including scratch (call after all allocations). *)

val mem_init : t -> Hir.program -> (int * int) list
(** Initial memory contents from the arrays' initialisers. *)
