(** Reference interpreter for {!Hir} programs — the correctness oracle.

    Every compilation strategy must leave data memory in exactly the state
    this interpreter produces (same layout, same checksum). The interpreter
    also drives profiling: callers may hook the event callbacks to observe
    loop trip counts, dynamic statement counts and memory accesses (the
    profiler in [voltron_analysis] builds the paper's "memory profiling"
    and "likely missing loads" information this way). *)

type events = {
  on_stmt : sid:int -> unit;
  on_load : sid:int -> arr:Hir.arr -> addr:int -> unit;
  on_store : sid:int -> arr:Hir.arr -> addr:int -> unit;
  on_loop_enter : sid:int -> unit;
  on_loop_iter : sid:int -> iter:int -> unit;  (** 0-based iteration index *)
  on_loop_exit : sid:int -> trips:int -> unit;
}

val null_events : events

type result = {
  memory : Voltron_mem.Memory.t;
  layout : Layout.t;
  checksum : int;
  dyn_stmts : int;  (** dynamic statement executions *)
}

exception Step_limit_exceeded

val run : ?events:events -> ?max_steps:int -> Hir.program -> result
(** [max_steps] (default 200 million dynamic statements) guards against
    non-terminating [Do_while] loops. *)
