module Inst = Voltron_isa.Inst
module Vec = Voltron_util.Vec

type ctx = {
  lay : Layout.t;
  mutable next_vreg : int;
  mutable next_oid : int;
  mutable next_label : int;
}

let make_ctx ~layout ~first_vreg =
  { lay = layout; next_vreg = first_vreg; next_oid = 0; next_label = 0 }

let fresh_vreg ctx =
  let v = ctx.next_vreg in
  ctx.next_vreg <- v + 1;
  v

let fresh_label ctx hint =
  let n = ctx.next_label in
  ctx.next_label <- n + 1;
  Printf.sprintf "%s_%d" hint n

let max_vreg ctx = ctx.next_vreg

let operand (o : Hir.operand) : Inst.operand =
  match o with Hir.Reg r -> Inst.Reg r | Hir.Imm i -> Inst.Imm i

(* Mutable lowering state for one region. *)
type emitter = {
  ctx : ctx;
  blocks : Cfg.block Vec.t;
  mem_refs : (Cfg.oid, Cfg.mem_ref) Hashtbl.t;
  loop_headers : (string, int) Hashtbl.t;
  replicable : (Cfg.oid, unit) Hashtbl.t;
  mutable cur_ops : Cfg.lop list;  (** reversed *)
  mutable cur_label : string;
}

let fresh_oid em =
  let o = em.ctx.next_oid in
  em.ctx.next_oid <- o + 1;
  o

let emit_op ?(hir_sid = -1) em inst =
  em.cur_ops <- { Cfg.oid = fresh_oid em; inst; hir_sid } :: em.cur_ops

let close_block em term =
  Vec.push em.blocks
    { Cfg.b_label = em.cur_label; b_ops = List.rev em.cur_ops; b_term = term }

let start_block em label =
  em.cur_label <- label;
  em.cur_ops <- []

(* Mark the most recently emitted op as replicable on every core. *)
let mark_replicable em =
  match em.cur_ops with
  | { Cfg.oid; _ } :: _ -> Hashtbl.replace em.replicable oid ()
  | [] -> assert false

let emit_mem_ref em arr index write =
  match em.cur_ops with
  | { Cfg.oid; _ } :: _ ->
    Hashtbl.replace em.mem_refs oid
      { Cfg.m_arr = arr; m_index = index; m_write = write }
  | [] -> assert false

let lower_expr em sid dst (e : Hir.expr) =
  match e with
  | Hir.Alu (op, a, b) ->
    emit_op ~hir_sid:sid em (Inst.Alu { op; dst; src1 = operand a; src2 = operand b })
  | Hir.Fpu (op, a, b) ->
    emit_op ~hir_sid:sid em (Inst.Fpu { op; dst; src1 = operand a; src2 = operand b })
  | Hir.Cmp (op, a, b) ->
    emit_op ~hir_sid:sid em (Inst.Cmp { op; dst; src1 = operand a; src2 = operand b })
  | Hir.Select (p, a, b) ->
    emit_op ~hir_sid:sid em
      (Inst.Select
         { dst; pred = operand p; if_true = operand a; if_false = operand b })
  | Hir.Load (arr, idx) ->
    emit_op ~hir_sid:sid em
      (Inst.Load { dst; base = Inst.Imm (Layout.base em.ctx.lay arr); offset = operand idx });
    emit_mem_ref em arr idx false
  | Hir.Operand o -> emit_op ~hir_sid:sid em (Inst.Mov { dst; src = operand o })

let rec lower_stmts em stmts = List.iter (lower_stmt em) stmts

and lower_stmt em ({ Hir.sid; node } : Hir.stmt) =
  match node with
  | Hir.Assign (v, e) -> lower_expr em sid v e
  | Hir.Store (arr, idx, v) ->
    emit_op ~hir_sid:sid em
      (Inst.Store
         { base = Inst.Imm (Layout.base em.ctx.lay arr); offset = operand idx; src = operand v });
    emit_mem_ref em arr idx true
  | Hir.If (cond, then_, else_) -> (
    match (cond, else_) with
    | Hir.Imm c, _ ->
      (* Constant condition: lower only the taken side. *)
      lower_stmts em (if Voltron_isa.Semantics.truthy c then then_ else else_)
    | Hir.Reg cond_reg, [] ->
      let l_end = fresh_label em.ctx "if_end" in
      close_block em (Cfg.Branch { cond = cond_reg; invert = true; target = l_end });
      start_block em (fresh_label em.ctx "if_then");
      lower_stmts em then_;
      close_block em (Cfg.Jump l_end);
      start_block em l_end
    | Hir.Reg cond_reg, _ :: _ ->
      let l_else = fresh_label em.ctx "if_else" in
      let l_end = fresh_label em.ctx "if_end" in
      close_block em (Cfg.Branch { cond = cond_reg; invert = true; target = l_else });
      start_block em (fresh_label em.ctx "if_then");
      lower_stmts em then_;
      close_block em (Cfg.Jump l_end);
      start_block em l_else;
      lower_stmts em else_;
      close_block em (Cfg.Jump l_end);
      start_block em l_end)
  | Hir.For { var; init; limit; step; body } ->
    (* Bottom-tested loop with an entry guard:
         var = init; if (var >= limit) goto exit;
       body: ...; var += step; if (var < limit) goto body; exit: *)
    let l_body = fresh_label em.ctx "loop_body" in
    let l_exit = fresh_label em.ctx "loop_exit" in
    (* With immediate bounds every core can run the induction pattern
       locally (induction-variable replication, paper §4.1). *)
    let replicate =
      match (init, limit) with Hir.Imm _, Hir.Imm _ -> true | _, _ -> false
    in
    let mark () = if replicate then mark_replicable em in
    emit_op em (Inst.Mov { dst = var; src = operand init });
    mark ();
    let guard = fresh_vreg em.ctx in
    emit_op em
      (Inst.Cmp { op = Inst.Lt; dst = guard; src1 = Inst.Reg var; src2 = operand limit });
    mark ();
    close_block em (Cfg.Branch { cond = guard; invert = true; target = l_exit });
    start_block em l_body;
    Hashtbl.replace em.loop_headers l_body sid;
    lower_stmts em body;
    emit_op em (Inst.Alu { op = Inst.Add; dst = var; src1 = Inst.Reg var; src2 = Inst.Imm step });
    mark ();
    let again = fresh_vreg em.ctx in
    emit_op em
      (Inst.Cmp { op = Inst.Lt; dst = again; src1 = Inst.Reg var; src2 = operand limit });
    mark ();
    close_block em (Cfg.Branch { cond = again; invert = false; target = l_body });
    start_block em l_exit
  | Hir.Do_while { body; cond } -> (
    let l_body = fresh_label em.ctx "dw_body" in
    close_block em (Cfg.Jump l_body);
    start_block em l_body;
    Hashtbl.replace em.loop_headers l_body sid;
    lower_stmts em body;
    match cond with
    | Hir.Reg cond_reg ->
      close_block em (Cfg.Branch { cond = cond_reg; invert = false; target = l_body });
      start_block em (fresh_label em.ctx "dw_exit")
    | Hir.Imm _ -> invalid_arg "Lower: do-while condition must be a register")

let region ctx stmts =
  let em =
    {
      ctx;
      blocks = Vec.create ();
      mem_refs = Hashtbl.create 32;
      loop_headers = Hashtbl.create 8;
      replicable = Hashtbl.create 16;
      cur_ops = [];
      cur_label = fresh_label ctx "entry";
    }
  in
  lower_stmts em stmts;
  close_block em Cfg.Stop;
  {
    Cfg.blocks = Vec.to_array em.blocks;
    mem_refs = em.mem_refs;
    loop_headers = em.loop_headers;
    replicable = em.replicable;
  }
