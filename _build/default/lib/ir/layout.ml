type t = {
  bases : int array;
  sizes : int array;
  mutable top : int;
}

let round_up n align = (n + align - 1) / align * align

let compute ?(line_words = 8) (p : Hir.program) =
  let n = Array.length p.arrays in
  let bases = Array.make n 0 in
  let sizes = Array.make n 0 in
  let top = ref 0 in
  Array.iteri
    (fun i (decl : Hir.array_decl) ->
      bases.(i) <- !top;
      sizes.(i) <- decl.size;
      top := round_up (!top + decl.size) line_words)
    p.arrays;
  { bases; sizes; top = max !top line_words }

let base t arr = t.bases.(arr)
let array_size t arr = t.sizes.(arr)

let scratch_alloc t n =
  let b = t.top in
  t.top <- t.top + n;
  b

let mem_size t = t.top

let mem_init t (p : Hir.program) =
  let init = ref [] in
  Array.iteri
    (fun i (decl : Hir.array_decl) ->
      match decl.init with
      | None -> ()
      | Some f ->
        for k = 0 to decl.size - 1 do
          let v = f k in
          if v <> 0 then init := (t.bases.(i) + k, v) :: !init
        done)
    p.arrays;
  List.rev !init
