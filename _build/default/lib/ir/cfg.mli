(** Low-level IR: a control-flow graph of basic blocks over virtual
    registers, produced by {!Lower} and consumed by the partitioners and
    schedulers.

    Operations reuse the machine instruction type with virtual register
    numbers; control flow is explicit in each block's terminator (the
    unbundled PBR/CMP/BR sequence is synthesised at scheduling time).
    Memory operations carry a side record naming the symbolic array and
    index expression so dependence analysis does not have to reverse-
    engineer addresses. *)

type oid = int
(** Unique id of an operation within one lowered region. *)

type lop = {
  oid : oid;
  inst : Voltron_isa.Inst.t;  (** over virtual registers *)
  hir_sid : int;  (** originating HIR site, [-1] when synthesised *)
}

type mem_ref = {
  m_arr : Hir.arr;
  m_index : Hir.operand;
  m_write : bool;
}

type terminator =
  | Jump of string
  | Branch of { cond : Hir.vreg; invert : bool; target : string }
      (** Taken to [target] when [cond] (xor [invert]) is truthy, else
          falls through to the next block in layout order. *)
  | Stop  (** end of region *)

type block = {
  b_label : string;
  mutable b_ops : lop list;
  mutable b_term : terminator;
}

type t = {
  blocks : block array;  (** layout order; entry first *)
  mem_refs : (oid, mem_ref) Hashtbl.t;
  loop_headers : (string, int) Hashtbl.t;
      (** body-entry label -> HIR sid, for loops lowered in this region *)
  replicable : (oid, unit) Hashtbl.t;
      (** induction-pattern ops (loop-var move/update and bound compares
          with immediate bounds) that the partitioners replicate on every
          core instead of assigning — the paper's induction-variable
          replication (§4.1) and locally-recomputed branch conditions
          (Fig. 5(c)). *)
}

val block_index : t -> string -> int
(** Raises [Not_found] for unknown labels. *)

val all_ops : t -> lop list
val n_ops : t -> int

val successors : t -> int -> int list
(** Indices of the blocks an executed block can continue to. *)

val pp : Format.formatter -> t -> unit
