(** The structured high-level IR the Voltron compiler consumes.

    Workload kernels are built in this IR (via {!Builder}), interpreted by
    {!Interp} (the correctness oracle), profiled, analysed for
    dependences, and compiled down to per-core Voltron machine code.

    Programs are a sequence of named {e regions} — the unit at which the
    compiler selects a parallelisation strategy (paper §4.2: "the compiler
    selects the best type of parallelism to exploit for each block in the
    code"). A region is a list of statements over virtual registers and
    symbolic arrays. Virtual registers are unbounded and single-assignment
    {e per static occurrence} (a register may be re-assigned each loop
    iteration, e.g. induction variables, but two distinct statements never
    define the same register unless they are re-executions of one site) —
    the builder enforces fresh names.

    Every statement carries a unique site id ([sid]) used by profiling,
    dependence analysis and partition maps. *)

type vreg = int
type arr = int

type operand = Reg of vreg | Imm of int

type expr =
  | Alu of Voltron_isa.Inst.alu_op * operand * operand
  | Fpu of Voltron_isa.Inst.fpu_op * operand * operand
  | Cmp of Voltron_isa.Inst.cmp_op * operand * operand
  | Select of operand * operand * operand  (** pred, if_true, if_false *)
  | Load of arr * operand  (** array element read; never nested *)
  | Operand of operand  (** move *)

type stmt = { sid : int; node : node }

and node =
  | Assign of vreg * expr
  | Store of arr * operand * operand  (** array, index, value *)
  | If of operand * stmt list * stmt list
  | For of for_loop
  | Do_while of { body : stmt list; cond : operand }
      (** [cond] must be assigned inside [body]; loops while truthy. *)

and for_loop = {
  var : vreg;  (** induction variable, private to the loop *)
  init : operand;
  limit : operand;  (** iterates while [var < limit] *)
  step : int;  (** must be positive *)
  body : stmt list;
}

type array_decl = {
  arr_name : string;
  size : int;
  init : (int -> int) option;  (** element initialiser *)
}

type region = { region_name : string; stmts : stmt list }

type program = {
  prog_name : string;
  arrays : array_decl array;
  regions : region list;
  n_vregs : int;  (** all vregs are below this bound *)
}

val iter_stmts : (stmt -> unit) -> stmt list -> unit
(** Pre-order walk including nested statements. *)

val defined_vregs : stmt list -> vreg list
(** Registers assigned anywhere in the statements (including loop vars). *)

val used_vregs : stmt list -> vreg list
(** Registers read anywhere in the statements. *)

val expr_uses : expr -> vreg list
val operand_uses : operand -> vreg list

val pp_program : Format.formatter -> program -> unit
val pp_stmt : Format.formatter -> stmt -> unit
