(** Ergonomic construction of {!Hir} programs.

    The builder allocates fresh virtual registers and site ids, tracks the
    current emission point through nested control structure, and packages
    the result as an immutable {!Hir.program}. Workload kernels are written
    against this API; see [lib/workloads] and [examples/]. *)

type t

val create : string -> t

val array : t -> name:string -> size:int -> ?init:(int -> int) -> unit -> Hir.arr
(** Declare a data array. *)

val fresh : t -> Hir.vreg
(** A fresh virtual register (rarely needed directly — expression helpers
    allocate their own destinations). *)

val region : t -> string -> (unit -> unit) -> unit
(** [region t name body] opens a named region — the compiler's unit of
    strategy selection — and runs [body] to emit its statements. Regions
    cannot nest. *)

(** {1 Expressions} — each emits an [Assign] to a fresh register and
    returns it as an operand. *)

val imm : int -> Hir.operand
val binop : t -> Voltron_isa.Inst.alu_op -> Hir.operand -> Hir.operand -> Hir.operand
val fbinop : t -> Voltron_isa.Inst.fpu_op -> Hir.operand -> Hir.operand -> Hir.operand
val cmp : t -> Voltron_isa.Inst.cmp_op -> Hir.operand -> Hir.operand -> Hir.operand
val select : t -> Hir.operand -> Hir.operand -> Hir.operand -> Hir.operand
val load : t -> Hir.arr -> Hir.operand -> Hir.operand
val mov : t -> Hir.operand -> Hir.operand

val add : t -> Hir.operand -> Hir.operand -> Hir.operand
val sub : t -> Hir.operand -> Hir.operand -> Hir.operand
val mul : t -> Hir.operand -> Hir.operand -> Hir.operand

val assign : t -> Hir.vreg -> Hir.expr -> unit
(** Assign to an existing register — used for accumulators, whose
    cross-iteration dependence the compiler must see. *)

(** {1 Statements} *)

val store : t -> Hir.arr -> Hir.operand -> Hir.operand -> unit

val if_ : t -> Hir.operand -> (unit -> unit) -> (unit -> unit) -> unit

val for_ :
  t -> ?step:int -> from:Hir.operand -> limit:Hir.operand -> (Hir.operand -> unit) -> unit
(** [for_ t ~from ~limit body] iterates a fresh induction variable over
    [\[from, limit)] and passes it to [body]. [step] defaults to 1. *)

val do_while : t -> (unit -> Hir.operand) -> unit
(** [do_while t body]: [body] emits the loop body and returns the continue
    condition it computed. *)

val finish : t -> Hir.program
(** Raises [Invalid_argument] if called inside an open region. *)
