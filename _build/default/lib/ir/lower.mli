(** Lowering of structured {!Hir} statements to a {!Cfg}.

    Counted loops are lowered bottom-tested (guard at entry, one branch per
    iteration); [If] lowers to a forward branch over the then-block;
    [Do_while] to a single backward branch. Array accesses become
    [Load]/[Store] with the array base as an immediate and the index as the
    offset operand, and are recorded in the CFG's [mem_refs].

    The context carries fresh-name counters shared across all regions of a
    program so synthesised virtual registers and labels never collide. *)

type ctx

val make_ctx : layout:Layout.t -> first_vreg:int -> ctx

val fresh_vreg : ctx -> Hir.vreg
val fresh_label : ctx -> string -> string
(** [fresh_label ctx hint] makes a globally unique label. *)

val max_vreg : ctx -> int
(** One past the highest virtual register allocated so far. *)

val region : ctx -> Hir.stmt list -> Cfg.t
(** Lower one region to a fresh CFG ending in [Stop]. *)

val operand : Hir.operand -> Voltron_isa.Inst.operand
(** Shared operand translation. *)
