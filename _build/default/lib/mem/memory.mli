(** Flat word-addressed data memory.

    The simulator separates *function* from *timing*: architectural data
    always lives here (so every mode of execution can be checked against the
    reference interpreter's memory image), while the cache hierarchy in
    {!Coherence} models only tags, states and latencies. *)

type t

val create : int -> t
(** [create n] is an [n]-word memory initialised to zero. *)

val size : t -> int
val read : t -> int -> int
val write : t -> int -> int -> unit
(** Out-of-bounds accesses raise [Invalid_argument] — the simulator treats
    them as a (simulated) program crash. *)

val load_init : t -> (int * int) list -> unit
val snapshot : t -> int array
val restore : t -> int array -> unit
val equal : t -> t -> bool

val checksum : t -> int
(** Order-sensitive FNV-style hash of the full contents; the oracle value
    compared across execution strategies. *)

val checksum_prefix : t -> int -> int
(** Hash of the first [n] words only — used to compare runs whose memories
    differ in compiler-scratch headroom beyond the program's arrays. *)
