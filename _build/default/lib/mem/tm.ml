type tx = {
  mutable active : bool;
  reads : (int, unit) Hashtbl.t;
  writes : (int, int) Hashtbl.t;  (** address -> last buffered value *)
  write_order : int Voltron_util.Vec.t;  (** addresses in first-write order *)
}

type t = { mem : Memory.t; txs : tx array }

let fresh_tx () =
  {
    active = false;
    reads = Hashtbl.create 32;
    writes = Hashtbl.create 32;
    write_order = Voltron_util.Vec.create ();
  }

let create mem ~n_cores = { mem; txs = Array.init n_cores (fun _ -> fresh_tx ()) }

let in_tx t ~core = t.txs.(core).active

let tx_begin t ~core =
  let tx = t.txs.(core) in
  if tx.active then invalid_arg "Tm.tx_begin: transaction already active";
  tx.active <- true;
  Hashtbl.reset tx.reads;
  Hashtbl.reset tx.writes;
  Voltron_util.Vec.clear tx.write_order

let read t ~core addr =
  let tx = t.txs.(core) in
  if not tx.active then Memory.read t.mem addr
  else begin
    Hashtbl.replace tx.reads addr ();
    match Hashtbl.find_opt tx.writes addr with
    | Some v -> v
    | None -> Memory.read t.mem addr
  end

let write t ~core addr v =
  let tx = t.txs.(core) in
  if not tx.active then Memory.write t.mem addr v
  else begin
    (* Validate the address eagerly so an out-of-bounds store faults inside
       the transaction, like a real store would. *)
    if addr < 0 || addr >= Memory.size t.mem then
      invalid_arg (Printf.sprintf "Tm.write: address %d out of bounds" addr);
    if not (Hashtbl.mem tx.writes addr) then
      Voltron_util.Vec.push tx.write_order addr;
    Hashtbl.replace tx.writes addr v
  end

let abort t ~core =
  let tx = t.txs.(core) in
  tx.active <- false;
  Hashtbl.reset tx.reads;
  Hashtbl.reset tx.writes;
  Voltron_util.Vec.clear tx.write_order

let read_set t ~core =
  Hashtbl.fold (fun addr () acc -> addr :: acc) t.txs.(core).reads []
  |> List.sort compare

let write_set t ~core =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.txs.(core).writes []
  |> List.sort compare

let commit_one t ~core =
  let tx = t.txs.(core) in
  Voltron_util.Vec.iter
    (fun addr -> Memory.write t.mem addr (Hashtbl.find tx.writes addr))
    tx.write_order;
  abort t ~core

let commit_round t ~cores =
  let committed_writes : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec loop = function
    | [] -> `All_committed
    | core :: rest ->
      let tx = t.txs.(core) in
      if not tx.active then
        invalid_arg (Printf.sprintf "Tm.commit_round: core %d not in a transaction" core);
      let conflict =
        Hashtbl.fold
          (fun addr () acc -> acc || Hashtbl.mem committed_writes addr)
          tx.reads false
      in
      if conflict then begin
        List.iter (fun c -> abort t ~core:c) (core :: rest);
        `Conflict_at core
      end
      else begin
        Hashtbl.iter (fun addr _ -> Hashtbl.replace committed_writes addr ()) tx.writes;
        commit_one t ~core;
        loop rest
      end
  in
  loop cores
