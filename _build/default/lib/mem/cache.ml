type state = M | O | E | S | I

(* Each set is a small association list from way index to (line, state),
   plus an LRU order (most recent first). Sets are tiny (2-8 ways), so
   lists are the clearest representation. *)
type way = { mutable line : int; mutable state : state }

type set = {
  ways_arr : way array;
  mutable lru : int list;  (** way indices, most recently used first *)
}

type t = { n_sets : int; n_ways : int; sets_arr : set array }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ~sets ~ways =
  if not (is_pow2 sets) then invalid_arg "Cache.create: sets must be a power of two";
  if ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  {
    n_sets = sets;
    n_ways = ways;
    sets_arr =
      Array.init sets (fun _ ->
          {
            ways_arr = Array.init ways (fun _ -> { line = -1; state = I });
            lru = List.init ways (fun i -> i);
          });
  }

let sets t = t.n_sets
let ways t = t.n_ways

let set_of t line = t.sets_arr.(line land (t.n_sets - 1))

let find_way set line =
  let rec loop i =
    if i >= Array.length set.ways_arr then None
    else
      let w = set.ways_arr.(i) in
      if w.state <> I && w.line = line then Some i else loop (i + 1)
  in
  loop 0

let promote set i = set.lru <- i :: List.filter (fun j -> j <> i) set.lru

let find t line =
  let set = set_of t line in
  match find_way set line with
  | None -> None
  | Some i -> Some set.ways_arr.(i).state

let touch t line =
  let set = set_of t line in
  match find_way set line with None -> () | Some i -> promote set i

let set_state t line st =
  let set = set_of t line in
  match find_way set line with
  | None -> raise Not_found
  | Some i -> set.ways_arr.(i).state <- st

let insert t line st =
  let set = set_of t line in
  (match find_way set line with
  | Some _ -> invalid_arg "Cache.insert: line already present"
  | None -> ());
  (* Prefer an invalid way; otherwise evict the LRU way. *)
  let invalid_way =
    let rec loop i =
      if i >= Array.length set.ways_arr then None
      else if set.ways_arr.(i).state = I then Some i
      else loop (i + 1)
    in
    loop 0
  in
  let victim_way =
    match invalid_way with
    | Some i -> i
    | None -> List.nth set.lru (List.length set.lru - 1)
  in
  let w = set.ways_arr.(victim_way) in
  let victim = if w.state = I then None else Some (w.line, w.state) in
  w.line <- line;
  w.state <- st;
  promote set victim_way;
  victim

let invalidate t line =
  let set = set_of t line in
  match find_way set line with
  | None -> ()
  | Some i -> set.ways_arr.(i).state <- I

let valid_lines t =
  Array.to_list t.sets_arr
  |> List.concat_map (fun set ->
         Array.to_list set.ways_arr
         |> List.filter_map (fun w ->
                if w.state = I then None else Some (w.line, w.state)))

let pp_state ppf st =
  Format.pp_print_string ppf
    (match st with M -> "M" | O -> "O" | E -> "E" | S -> "S" | I -> "I")
