(** Set-associative cache directory: tags, MOESI states and LRU order.

    Holds no data (see {!Memory}); it is the timing/state half of the
    hierarchy. Addresses given to this module are *line* addresses (word
    address divided by the line size — callers do the division). *)

type state = M | O | E | S | I

type t

val create : sets:int -> ways:int -> t
(** [sets] must be a power of two. *)

val sets : t -> int
val ways : t -> int

val find : t -> int -> state option
(** [find t line] is the line's state if present and valid (not [I]);
    does not touch LRU. *)

val touch : t -> int -> unit
(** Mark [line] most-recently used. No-op if absent. *)

val set_state : t -> int -> state -> unit
(** Change a present line's state. Raises [Not_found] if absent. [I]
    invalidates. *)

val insert : t -> int -> state -> (int * state) option
(** [insert t line st] allocates [line] (MRU) and returns the evicted
    victim's line address and state, if a valid line was displaced. The line
    must not already be present. *)

val invalidate : t -> int -> unit
(** Drop the line if present. *)

val valid_lines : t -> (int * state) list
(** All valid lines with their states, for invariant checking. *)

val pp_state : Format.formatter -> state -> unit
