lib/mem/tm.ml: Array Hashtbl List Memory Printf Voltron_util
