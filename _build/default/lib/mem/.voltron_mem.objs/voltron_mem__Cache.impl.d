lib/mem/cache.ml: Array Format List
