lib/mem/coherence.mli:
