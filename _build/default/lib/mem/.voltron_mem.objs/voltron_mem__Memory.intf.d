lib/mem/memory.mli: Voltron_fault
