lib/mem/memory.mli:
