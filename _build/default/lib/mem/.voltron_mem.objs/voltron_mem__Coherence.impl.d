lib/mem/coherence.ml: Array Cache Hashtbl List Option Printf
