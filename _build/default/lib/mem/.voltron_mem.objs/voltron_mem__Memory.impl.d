lib/mem/memory.ml: Array List Printf Voltron_fault
