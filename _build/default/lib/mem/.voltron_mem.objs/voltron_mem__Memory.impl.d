lib/mem/memory.ml: Array List Printf
