lib/mem/tm.mli: Memory
