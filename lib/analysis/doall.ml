type accumulator = {
  acc_vreg : Voltron_ir.Hir.vreg;
  acc_sid : int;
}

type verdict =
  | Proven of accumulator list
  | Speculative of accumulator list
  | Rejected of string

module IntSet = Set.Make (Int)

(* Registers assigned on every path through [stmts] (accepts the "defined
   in both branches of an if" privatisation pattern). *)
let rec unconditional_defs stmts =
  List.fold_left
    (fun acc ({ Voltron_ir.Hir.node; _ } : Voltron_ir.Hir.stmt) ->
      match node with
      | Voltron_ir.Hir.Assign (v, _) -> IntSet.add v acc
      | Voltron_ir.Hir.If (_, then_, else_) ->
        IntSet.union acc
          (IntSet.inter (unconditional_defs then_) (unconditional_defs else_))
      | Voltron_ir.Hir.Do_while { body; _ } ->
        (* A do-while body runs at least once. *)
        IntSet.union acc (unconditional_defs body)
      | Voltron_ir.Hir.For { var; _ } -> IntSet.add var acc  (* init Mov always runs *)
      | Voltron_ir.Hir.Store _ -> acc)
    IntSet.empty stmts

(* Accumulator recognition: exactly one top-level [v <- v + e] (Add/Fadd),
   [v] unused and unwritten elsewhere in the body. *)
let find_accumulators (loop : Voltron_ir.Hir.for_loop) =
  let top_updates =
    List.filter_map
      (fun ({ Voltron_ir.Hir.sid; node } : Voltron_ir.Hir.stmt) ->
        match node with
        | Voltron_ir.Hir.Assign (v, Voltron_ir.Hir.Alu (Voltron_isa.Inst.Add, a, b))
        | Voltron_ir.Hir.Assign (v, Voltron_ir.Hir.Fpu (Voltron_isa.Inst.Fadd, a, b)) ->
          let reads_v o = o = Voltron_ir.Hir.Reg v in
          if reads_v a && not (reads_v b) then Some (v, sid)
          else if reads_v b && not (reads_v a) then Some (v, sid)
          else None
        | Voltron_ir.Hir.Assign _ | Voltron_ir.Hir.Store _ | Voltron_ir.Hir.If _ | Voltron_ir.Hir.For _ | Voltron_ir.Hir.Do_while _ ->
          None)
      loop.Voltron_ir.Hir.body
  in
  List.filter_map
    (fun (v, sid) ->
      let clean = ref true in
      Voltron_ir.Hir.iter_stmts
        (fun ({ Voltron_ir.Hir.sid = s; node } : Voltron_ir.Hir.stmt) ->
          if s <> sid then begin
            let uses =
              match node with
              | Voltron_ir.Hir.Assign (_, e) -> Voltron_ir.Hir.expr_uses e
              | Voltron_ir.Hir.Store (_, i, x) -> Voltron_ir.Hir.operand_uses i @ Voltron_ir.Hir.operand_uses x
              | Voltron_ir.Hir.If (c, _, _) -> Voltron_ir.Hir.operand_uses c
              | Voltron_ir.Hir.For { init; limit; _ } ->
                Voltron_ir.Hir.operand_uses init @ Voltron_ir.Hir.operand_uses limit
              | Voltron_ir.Hir.Do_while { cond; _ } -> Voltron_ir.Hir.operand_uses cond
            in
            let defs =
              match node with
              | Voltron_ir.Hir.Assign (d, _) -> [ d ]
              | Voltron_ir.Hir.For { var; _ } -> [ var ]
              | Voltron_ir.Hir.Store _ | Voltron_ir.Hir.If _ | Voltron_ir.Hir.Do_while _ -> []
            in
            if List.mem v uses || List.mem v defs then clean := false
          end)
        loop.Voltron_ir.Hir.body;
      if !clean then Some { acc_vreg = v; acc_sid = sid } else None)
    top_updates

(* Scalar privacy: walking statements in order, every register a statement
   reads must be the induction variable, an accumulator (only at its own
   update), defined earlier in this iteration on the current path, or
   loop-invariant (never defined inside the body). *)
let check_scalars (loop : Voltron_ir.Hir.for_loop) accumulators =
  let acc_regs = List.map (fun a -> a.acc_vreg) accumulators in
  let acc_sids = List.map (fun a -> a.acc_sid) accumulators in
  let body_defs = IntSet.of_list (Voltron_ir.Hir.defined_vregs loop.Voltron_ir.Hir.body) in
  let failure = ref None in
  let fail v =
    if !failure = None then
      failure := Some (Printf.sprintf "cross-iteration scalar v%d" v)
  in
  let check_uses defined sid vs =
    List.iter
      (fun v ->
        let fine =
          v = loop.Voltron_ir.Hir.var
          || IntSet.mem v defined
          || (not (IntSet.mem v body_defs))
          || (List.mem v acc_regs && List.mem sid acc_sids)
        in
        if not fine then fail v)
      vs
  in
  let rec walk defined stmts =
    List.fold_left
      (fun defined ({ Voltron_ir.Hir.sid; node } : Voltron_ir.Hir.stmt) ->
        match node with
        | Voltron_ir.Hir.Assign (v, e) ->
          check_uses defined sid (Voltron_ir.Hir.expr_uses e);
          (if v = loop.Voltron_ir.Hir.var && !failure = None then
             failure := Some "induction variable redefined");
          IntSet.add v defined
        | Voltron_ir.Hir.Store (_, i, x) ->
          check_uses defined sid (Voltron_ir.Hir.operand_uses i @ Voltron_ir.Hir.operand_uses x);
          defined
        | Voltron_ir.Hir.If (c, then_, else_) ->
          check_uses defined sid (Voltron_ir.Hir.operand_uses c);
          ignore (walk defined then_);
          ignore (walk defined else_);
          IntSet.union defined
            (IntSet.inter (unconditional_defs then_) (unconditional_defs else_))
        | Voltron_ir.Hir.For ({ var; init; limit; body; _ } : Voltron_ir.Hir.for_loop) ->
          check_uses defined sid (Voltron_ir.Hir.operand_uses init @ Voltron_ir.Hir.operand_uses limit);
          ignore (walk (IntSet.add var defined) body);
          IntSet.add var defined
        | Voltron_ir.Hir.Do_while { body; cond } ->
          let after = walk defined body in
          check_uses after sid (Voltron_ir.Hir.operand_uses cond);
          IntSet.union defined (unconditional_defs body))
      defined stmts
  in
  ignore (walk IntSet.empty loop.Voltron_ir.Hir.body);
  !failure

(* Memory independence: every (write, access) pair on the same array must
   be provably free of cross-iteration collisions (no TM needed then).
   Pairs the affine test cannot resolve fall back to the abstract
   interpreter: two *distinct* sites whose abstract index sets are
   disjoint never collide in any pair of iterations. A site paired with
   itself must still pass the affine test — its abstract set trivially
   intersects itself even when successive iterations never collide. *)
let check_memory ?(sharpen = true) (loop : Voltron_ir.Hir.for_loop) ~loop_sid =
  let absint =
    lazy
      (Voltron_absint.Absint.summarize_region
         [ { Voltron_ir.Hir.sid = loop_sid; node = Voltron_ir.Hir.For loop } ])
  in
  let disjoint_sites sid_a sid_b =
    sharpen && sid_a <> sid_b
    &&
    match
      ( Voltron_absint.Absint.index_dom (Lazy.force absint) sid_a,
        Voltron_absint.Absint.index_dom (Lazy.force absint) sid_b )
    with
    | Some ia, Some ib -> not (Voltron_absint.Dom.may_equal ia ib)
    | _ -> false
  in
  let forms = Affine.index_forms ~loop_vars:[ loop.Voltron_ir.Hir.var ] loop.Voltron_ir.Hir.body in
  let form_of sid =
    match Hashtbl.find_opt forms sid with Some f -> f | None -> None
  in
  let accesses = ref [] in
  Voltron_ir.Hir.iter_stmts
    (fun ({ Voltron_ir.Hir.sid; node } : Voltron_ir.Hir.stmt) ->
      match node with
      | Voltron_ir.Hir.Assign (_, Voltron_ir.Hir.Load (arr, _)) -> accesses := (sid, arr, false) :: !accesses
      | Voltron_ir.Hir.Store (arr, _, _) -> accesses := (sid, arr, true) :: !accesses
      | Voltron_ir.Hir.Assign _ | Voltron_ir.Hir.If _ | Voltron_ir.Hir.For _ | Voltron_ir.Hir.Do_while _ -> ())
    loop.Voltron_ir.Hir.body;
  let all = !accesses in
  List.for_all
    (fun (sid_w, arr_w, is_write) ->
      (not is_write)
      || List.for_all
           (fun (sid_a, arr_a, _) ->
             arr_w <> arr_a
             ||
             match
               Affine.cross_iteration_alias ~var:loop.Voltron_ir.Hir.var (form_of sid_w)
                 (form_of sid_a)
             with
             | Affine.Never | Affine.Same_iteration_only -> true
             | Affine.May_cross | Affine.Unknown -> disjoint_sites sid_w sid_a)
           all)
    all

let classify ?sharpen (loop : Voltron_ir.Hir.for_loop) ~profile ~loop_sid =
  let accumulators = find_accumulators loop in
  match check_scalars loop accumulators with
  | Some reason -> Rejected reason
  | None ->
    if check_memory ?sharpen loop ~loop_sid then Proven accumulators
    else if not (Profile.has_cross_raw profile loop_sid) then
      Speculative accumulators
    else Rejected "cross-iteration memory dependence observed in profile"
