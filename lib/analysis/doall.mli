(** DOALL classification of counted loops (paper §2, §4.1).

    A loop is parallelisable across cores when its iterations carry no
    dependences. Three outcomes:

    - [Proven]: affine dependence testing shows no iteration ever touches
      an address another iteration touches with a write, and every scalar
      is private, an induction variable, or a recognised accumulator. Runs
      in parallel without speculation.
    - [Speculative]: scalars are clean but some memory pairs could not be
      proven independent — yet profiling observed no cross-iteration RAW
      ("statistical DOALL"). Runs under the transactional memory, which
      also covers unproven WAR/WAW by write buffering and in-order commit.
    - [Rejected]: a scalar or memory dependence (or observed RAW) makes
      chunked execution unprofitable/incorrect.

    Accumulators: a register updated exactly once per iteration as
    [acc <- acc + e] (or [Fadd]), unconditionally at the loop body's top
    level, and read nowhere else in the body. The DOALL codegen expands
    them into per-core partials with a reduction at the join (§4.1
    "accumulator expansion"). *)

type accumulator = {
  acc_vreg : Voltron_ir.Hir.vreg;
  acc_sid : int;  (** the updating Assign's site *)
}

type verdict =
  | Proven of accumulator list
  | Speculative of accumulator list
  | Rejected of string

val classify :
  ?sharpen:bool ->
  Voltron_ir.Hir.for_loop ->
  profile:Profile.t ->
  loop_sid:int ->
  verdict
(** [sharpen] (default [true]) lets memory pairs the affine test cannot
    resolve be discharged by the {!Voltron_absint} disjointness oracle:
    two distinct sites whose abstract index sets never intersect cannot
    collide in any pair of iterations, upgrading [Speculative] loops to
    [Proven]. *)
