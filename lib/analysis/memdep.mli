(** Memory-dependence queries over a lowered region.

    Plays the role of the paper's pointer analysis [18]: symbolic arrays
    never alias each other, and affine index forms disambiguate accesses
    within an array. Two query strengths:

    - [same_instance_alias]: can the two operations touch the same address
      in the {e same} dynamic execution of their (common) control context?
      Used for intra-block scheduling edges.
    - [ever_alias]: can any two dynamic instances collide? Used by the
      decoupled partitioners, which must keep possibly-dependent memory
      operations on one core (paper §3.3/§4.1 — dependent memory
      operations are placed on the same core so queue-based dummy
      synchronisation is not needed on the fast path).

    When sharpening is on (the default), indices the affine pass gives
    up on — masked power-of-two subscripts, rebound loop variables,
    distinct congruence classes — are additionally tested against the
    {!Voltron_absint} interval × congruence summary of the region: sites
    whose abstract index sets can never be equal are proven disjoint. *)

type t

val create :
  ?sharpen:bool -> region_stmts:Voltron_ir.Hir.stmt list -> Voltron_ir.Cfg.t -> t
(** [sharpen] (default [true]) enables the abstract-interpretation
    disjointness oracle; [false] keeps the purely affine verdicts. *)

val mem_ref : t -> Voltron_ir.Cfg.lop -> Voltron_ir.Cfg.mem_ref option
val is_mem : t -> Voltron_ir.Cfg.lop -> bool
val is_write : t -> Voltron_ir.Cfg.lop -> bool

val same_instance_alias : t -> Voltron_ir.Cfg.lop -> Voltron_ir.Cfg.lop -> bool
val ever_alias : t -> Voltron_ir.Cfg.lop -> Voltron_ir.Cfg.lop -> bool
