module Cache = Voltron_mem.Cache

type loop_stat = {
  mutable entered : int;
  mutable total_trips : int;
}

type site_stat = {
  mutable accesses : int;
  mutable misses : int;
}

(* One active loop instance on the interpreter's loop stack. *)
type active = {
  a_sid : int;
  mutable a_iter : int;
  last_write : (int, int) Hashtbl.t;  (** address -> iteration that wrote it *)
}

type t = {
  loops : (int, loop_stat) Hashtbl.t;
  cross_raw : (int, unit) Hashtbl.t;
  sites : (int, site_stat) Hashtbl.t;
  dyn : (int, int) Hashtbl.t;
  mutable total : int;
}

let loop_stat t sid =
  match Hashtbl.find_opt t.loops sid with
  | Some s -> s
  | None ->
    let s = { entered = 0; total_trips = 0 } in
    Hashtbl.replace t.loops sid s;
    s

let site_stat t sid =
  match Hashtbl.find_opt t.sites sid with
  | Some s -> s
  | None ->
    let s = { accesses = 0; misses = 0 } in
    Hashtbl.replace t.sites sid s;
    s

let collect ?(cache = Voltron_mem.Coherence.default_config) ?max_steps
    (p : Voltron_ir.Hir.program) =
  let t =
    {
      loops = Hashtbl.create 32;
      cross_raw = Hashtbl.create 8;
      sites = Hashtbl.create 64;
      dyn = Hashtbl.create 128;
      total = 0;
    }
  in
  let l1 = Cache.create ~sets:cache.l1d_sets ~ways:cache.l1d_ways in
  let stack : active list ref = ref [] in
  let touch_cache sid addr =
    let s = site_stat t sid in
    s.accesses <- s.accesses + 1;
    let line = addr / cache.line_words in
    match Cache.find l1 line with
    | Some _ -> Cache.touch l1 line
    | None ->
      s.misses <- s.misses + 1;
      ignore (Cache.insert l1 line Cache.E)
  in
  let on_load ~sid ~arr:_ ~addr =
    touch_cache sid addr;
    List.iter
      (fun a ->
        match Hashtbl.find_opt a.last_write addr with
        | Some w when w <> a.a_iter -> Hashtbl.replace t.cross_raw a.a_sid ()
        | Some _ | None -> ())
      !stack
  in
  let on_store ~sid ~arr:_ ~addr =
    touch_cache sid addr;
    List.iter (fun a -> Hashtbl.replace a.last_write addr a.a_iter) !stack
  in
  let events =
    {
      Voltron_ir.Interp.on_stmt =
        (fun ~sid ->
          t.total <- t.total + 1;
          Hashtbl.replace t.dyn sid
            (1 + Option.value ~default:0 (Hashtbl.find_opt t.dyn sid)));
      on_load;
      on_store;
      on_loop_enter =
        (fun ~sid ->
          (loop_stat t sid).entered <- (loop_stat t sid).entered + 1;
          stack := { a_sid = sid; a_iter = 0; last_write = Hashtbl.create 64 } :: !stack);
      on_loop_iter =
        (fun ~sid ~iter ->
          match !stack with
          | a :: _ when a.a_sid = sid -> a.a_iter <- iter
          | _ -> ());
      on_loop_exit =
        (fun ~sid ~trips ->
          (loop_stat t sid).total_trips <- (loop_stat t sid).total_trips + trips;
          match !stack with
          | a :: rest when a.a_sid = sid -> stack := rest
          | _ -> ());
    }
  in
  let (_ : Voltron_ir.Interp.result) = Voltron_ir.Interp.run ~events ?max_steps p in
  t

let instances t sid =
  match Hashtbl.find_opt t.loops sid with Some s -> s.entered | None -> 0

let avg_trip t sid =
  match Hashtbl.find_opt t.loops sid with
  | Some s when s.entered > 0 -> float_of_int s.total_trips /. float_of_int s.entered
  | Some _ | None -> 0.

let has_cross_raw t sid = Hashtbl.mem t.cross_raw sid

let miss_rate t sid =
  match Hashtbl.find_opt t.sites sid with
  | Some s when s.accesses > 0 -> float_of_int s.misses /. float_of_int s.accesses
  | Some _ | None -> 0.

let access_count t sid =
  match Hashtbl.find_opt t.sites sid with Some s -> s.accesses | None -> 0

let dyn_count t sid = Option.value ~default:0 (Hashtbl.find_opt t.dyn sid)

let total_dyn t = t.total
