module Cache = Voltron_mem.Cache

type loop_stat = {
  mutable entered : int;
  mutable total_trips : int;
}

type site_stat = {
  mutable accesses : int;
  mutable misses : int;
}

(* One active loop instance on the interpreter's loop stack. *)
type active = {
  a_sid : int;
  mutable a_iter : int;
  last_write : (int, int) Hashtbl.t;  (** address -> iteration that wrote it *)
}

type t = {
  loops : (int, loop_stat) Hashtbl.t;
  cross_raw : (int, unit) Hashtbl.t;
  sites : (int, site_stat) Hashtbl.t;
  dyn : (int, int) Hashtbl.t;
  mutable total : int;
}

let loop_stat t sid =
  match Hashtbl.find_opt t.loops sid with
  | Some s -> s
  | None ->
    let s = { entered = 0; total_trips = 0 } in
    Hashtbl.replace t.loops sid s;
    s

let site_stat t sid =
  match Hashtbl.find_opt t.sites sid with
  | Some s -> s
  | None ->
    let s = { accesses = 0; misses = 0 } in
    Hashtbl.replace t.sites sid s;
    s

let collect ?(cache = Voltron_mem.Coherence.default_config) ?max_steps
    (p : Voltron_ir.Hir.program) =
  let t =
    {
      loops = Hashtbl.create 32;
      cross_raw = Hashtbl.create 8;
      sites = Hashtbl.create 64;
      dyn = Hashtbl.create 128;
      total = 0;
    }
  in
  let l1 = Cache.create ~sets:cache.l1d_sets ~ways:cache.l1d_ways in
  let stack : active list ref = ref [] in
  let touch_cache sid addr =
    let s = site_stat t sid in
    s.accesses <- s.accesses + 1;
    let line = addr / cache.line_words in
    match Cache.find l1 line with
    | Some _ -> Cache.touch l1 line
    | None ->
      s.misses <- s.misses + 1;
      ignore (Cache.insert l1 line Cache.E)
  in
  let on_load ~sid ~arr:_ ~addr =
    touch_cache sid addr;
    List.iter
      (fun a ->
        match Hashtbl.find_opt a.last_write addr with
        | Some w when w <> a.a_iter -> Hashtbl.replace t.cross_raw a.a_sid ()
        | Some _ | None -> ())
      !stack
  in
  let on_store ~sid ~arr:_ ~addr =
    touch_cache sid addr;
    List.iter (fun a -> Hashtbl.replace a.last_write addr a.a_iter) !stack
  in
  let events =
    {
      Voltron_ir.Interp.on_stmt =
        (fun ~sid ->
          t.total <- t.total + 1;
          Hashtbl.replace t.dyn sid
            (1 + Option.value ~default:0 (Hashtbl.find_opt t.dyn sid)));
      on_load;
      on_store;
      on_loop_enter =
        (fun ~sid ->
          (loop_stat t sid).entered <- (loop_stat t sid).entered + 1;
          stack := { a_sid = sid; a_iter = 0; last_write = Hashtbl.create 64 } :: !stack);
      on_loop_iter =
        (fun ~sid ~iter ->
          match !stack with
          | a :: _ when a.a_sid = sid -> a.a_iter <- iter
          | _ -> ());
      on_loop_exit =
        (fun ~sid ~trips ->
          (loop_stat t sid).total_trips <- (loop_stat t sid).total_trips + trips;
          match !stack with
          | a :: rest when a.a_sid = sid -> stack := rest
          | _ -> ());
    }
  in
  let (_ : Voltron_ir.Interp.result) = Voltron_ir.Interp.run ~events ?max_steps p in
  t

(* --- Static (profile-free) synthesis ------------------------------------------ *)

module Absint = Voltron_absint.Absint
module Dom = Voltron_absint.Dom

let iround x =
  if Float.is_finite x then int_of_float (Float.round x) else max_int / 2

(* Conservative static stand-in for the observed cross-iteration RAW set:
   flag a loop when some (store, load) pair on one array can collide
   across iterations — affine verdict May_cross/Unknown and the abstract
   index sets not disjoint. Loops the profile would clear dynamically may
   stay flagged (costing parallelism, never correctness). *)
let static_cross_raw (sum : Absint.summary) cross_raw (p : Voltron_ir.Hir.program) =
  let flag_loop loop_sid (loop : Voltron_ir.Hir.for_loop) =
    let var = loop.Voltron_ir.Hir.var in
    let body = loop.Voltron_ir.Hir.body in
    let forms = Affine.index_forms ~loop_vars:[ var ] body in
    let form_of sid =
      match Hashtbl.find_opt forms sid with Some f -> f | None -> None
    in
    let loads = ref [] and stores = ref [] in
    Voltron_ir.Hir.iter_stmts
      (fun ({ Voltron_ir.Hir.sid; node } : Voltron_ir.Hir.stmt) ->
        match node with
        | Voltron_ir.Hir.Assign (_, Voltron_ir.Hir.Load (arr, _)) ->
          loads := (sid, arr) :: !loads
        | Voltron_ir.Hir.Store (arr, _, _) -> stores := (sid, arr) :: !stores
        | Voltron_ir.Hir.Assign _ | Voltron_ir.Hir.If _ | Voltron_ir.Hir.For _
        | Voltron_ir.Hir.Do_while _ -> ())
      body;
    let may_collide (sid_w, arr_w) (sid_l, arr_l) =
      arr_w = arr_l
      && (match Affine.cross_iteration_alias ~var (form_of sid_w) (form_of sid_l) with
         | Affine.Never | Affine.Same_iteration_only -> false
         | Affine.May_cross | Affine.Unknown -> (
           match (Absint.index_dom sum sid_w, Absint.index_dom sum sid_l) with
           | Some iw, Some il -> Dom.may_equal iw il
           | _ -> true))
    in
    if List.exists (fun w -> List.exists (may_collide w) !loads) !stores then
      Hashtbl.replace cross_raw loop_sid ()
  in
  List.iter
    (fun (r : Voltron_ir.Hir.region) ->
      Voltron_ir.Hir.iter_stmts
        (fun ({ Voltron_ir.Hir.sid; node } : Voltron_ir.Hir.stmt) ->
          match node with
          | Voltron_ir.Hir.For loop -> flag_loop sid loop
          | Voltron_ir.Hir.Assign _ | Voltron_ir.Hir.Store _ | Voltron_ir.Hir.If _
          | Voltron_ir.Hir.Do_while _ -> ())
        r.Voltron_ir.Hir.stmts)
    p.Voltron_ir.Hir.regions

let of_static ?(cache = Voltron_mem.Coherence.default_config)
    ?(summary : Absint.summary option) (p : Voltron_ir.Hir.program) =
  let sum = match summary with Some s -> s | None -> Absint.analyze p in
  let t =
    {
      loops = Hashtbl.create 32;
      cross_raw = Hashtbl.create 8;
      sites = Hashtbl.create 64;
      dyn = Hashtbl.create 128;
      total = 0;
    }
  in
  List.iter
    (fun (li : Absint.loop_info) ->
      Hashtbl.replace t.loops li.Absint.li_sid
        {
          entered = iround li.Absint.li_enters;
          total_trips = iround (li.Absint.li_enters *. li.Absint.li_trip_est);
        })
    (Absint.loops sum);
  static_cross_raw sum t.cross_raw p;
  let l1_words = cache.Voltron_mem.Coherence.l1d_sets
                 * cache.Voltron_mem.Coherence.l1d_ways
                 * cache.Voltron_mem.Coherence.line_words
  in
  let line = float_of_int cache.Voltron_mem.Coherence.line_words in
  List.iter
    (fun (s : Absint.site) ->
      let accesses = iround s.Absint.s_count in
      if accesses > 0 then begin
        let d = s.Absint.s_index in
        let size = p.Voltron_ir.Hir.arrays.(s.Absint.s_arr).Voltron_ir.Hir.size in
        let width =
          if Dom.is_bot d then 1
          else if d.Dom.lo = min_int || d.Dom.hi = max_int then size
          else min size (d.Dom.hi - d.Dom.lo + 1)
        in
        let rate =
          if width <= l1_words then
            (* Fits in L1: cold misses on first touch of each line. *)
            Float.min 1.
              (ceil (float_of_int width /. line) /. Float.max 1. s.Absint.s_count)
          else
            (* Streams through: a miss every line/stride accesses. *)
            let stride = if Dom.is_bot d || d.Dom.m = 0 then 1 else max 1 d.Dom.m in
            Float.min 1. (float_of_int stride /. line)
        in
        Hashtbl.replace t.sites s.Absint.s_sid
          { accesses; misses = iround (rate *. float_of_int accesses) }
      end)
    (Absint.sites sum);
  Hashtbl.iter
    (fun sid c ->
      let n = iround c in
      if n > 0 then begin
        Hashtbl.replace t.dyn sid n;
        t.total <- t.total + n
      end)
    (let tbl = Hashtbl.create 128 in
     List.iter
       (fun (r : Voltron_ir.Hir.region) ->
         Voltron_ir.Hir.iter_stmts
           (fun (st : Voltron_ir.Hir.stmt) ->
             Hashtbl.replace tbl st.Voltron_ir.Hir.sid
               (Absint.count sum st.Voltron_ir.Hir.sid))
           r.Voltron_ir.Hir.stmts)
       p.Voltron_ir.Hir.regions;
     tbl);
  t

let instances t sid =
  match Hashtbl.find_opt t.loops sid with Some s -> s.entered | None -> 0

let avg_trip t sid =
  match Hashtbl.find_opt t.loops sid with
  | Some s when s.entered > 0 -> float_of_int s.total_trips /. float_of_int s.entered
  | Some _ | None -> 0.

let has_cross_raw t sid = Hashtbl.mem t.cross_raw sid

let miss_rate t sid =
  match Hashtbl.find_opt t.sites sid with
  | Some s when s.accesses > 0 -> float_of_int s.misses /. float_of_int s.accesses
  | Some _ | None -> 0.

let access_count t sid =
  match Hashtbl.find_opt t.sites sid with Some s -> s.accesses | None -> 0

let dyn_count t sid = Option.value ~default:0 (Hashtbl.find_opt t.dyn sid)

let total_dyn t = t.total
