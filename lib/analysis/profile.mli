(** Profiling, via the reference interpreter's event hooks.

    Collects what the paper's compiler gets from its profiling runs (§4.1):
    - loop trip counts (DOALL profitability threshold);
    - observed cross-iteration read-after-write dependences per loop — a
      loop with none is a {e statistical DOALL} candidate (§2);
    - per-site load/store miss rates from a single-core cache simulation —
      eBUG's "likely missing loads" and the selection heuristic's
      miss-stall estimate;
    - dynamic execution counts per site (region weights). *)

type t

val collect :
  ?cache:Voltron_mem.Coherence.config ->
  ?max_steps:int ->
  Voltron_ir.Hir.program ->
  t
(** Runs the program once under the interpreter with profiling hooks.
    [max_steps] bounds the run like {!Voltron_ir.Interp.run}'s. *)

val of_static :
  ?cache:Voltron_mem.Coherence.config ->
  ?summary:Voltron_absint.Absint.summary ->
  Voltron_ir.Hir.program ->
  t
(** Profile-free synthesis from the abstract interpreter: loop trip
    counts and dynamic statement counts come from static trip-count
    bounds, per-site miss rates from a footprint/stride cache model, and
    the cross-iteration RAW set from a conservative static dependence
    test (affine verdict sharpened by the disjointness oracle). Loops
    the dynamic profile would clear may stay flagged — that costs
    parallelism, never correctness. [summary] reuses an existing
    whole-program analysis. *)

val instances : t -> int -> int
(** How many times loop [sid] was entered. *)

val avg_trip : t -> int -> float
(** Mean iterations per entry of loop [sid]; 0 if never entered. *)

val has_cross_raw : t -> int -> bool
(** Was a cross-iteration read-after-write observed in loop [sid]?
    (Cross-iteration WAR/WAW do not disqualify speculative DOALL under the
    TM's in-order chunk commit — see [lib/mem/tm.mli].) *)

val miss_rate : t -> int -> float
(** Fraction of accesses at memory site [sid] that missed the profiling
    cache; 0 for unexecuted sites. *)

val access_count : t -> int -> int
(** Dynamic executions of memory site [sid]. *)

val dyn_count : t -> int -> int
(** Dynamic executions of any statement site. *)

val total_dyn : t -> int
