module Absint = Voltron_absint.Absint
module Dom = Voltron_absint.Dom

type t = {
  cfg : Voltron_ir.Cfg.t;
  forms : (int, Affine.linexpr option) Hashtbl.t;  (** HIR sid -> index form *)
  loop_vars : Voltron_ir.Hir.vreg list;
  absint : Absint.summary option;
      (** Region-wide value analysis backing the range/congruence
          disjointness oracle; [None] when sharpening is disabled. *)
}

let create ?(sharpen = true) ~region_stmts cfg =
  let loop_vars = ref [] in
  Voltron_ir.Hir.iter_stmts
    (fun ({ Voltron_ir.Hir.node; _ } : Voltron_ir.Hir.stmt) ->
      match node with
      | Voltron_ir.Hir.For { var; _ } -> loop_vars := var :: !loop_vars
      | Voltron_ir.Hir.Assign _ | Voltron_ir.Hir.Store _ | Voltron_ir.Hir.If _ | Voltron_ir.Hir.Do_while _ -> ())
    region_stmts;
  {
    cfg;
    forms = Affine.index_forms ~loop_vars:[] region_stmts;
    loop_vars = !loop_vars;
    absint = (if sharpen then Some (Absint.summarize_region region_stmts) else None);
  }

let mem_ref t (op : Voltron_ir.Cfg.lop) = Hashtbl.find_opt t.cfg.Voltron_ir.Cfg.mem_refs op.Voltron_ir.Cfg.oid

let is_mem t op = mem_ref t op <> None

let is_write t op =
  match mem_ref t op with Some r -> r.Voltron_ir.Cfg.m_write | None -> false

let form_of t (op : Voltron_ir.Cfg.lop) =
  if op.Voltron_ir.Cfg.hir_sid < 0 then None
  else
    match Hashtbl.find_opt t.forms op.Voltron_ir.Cfg.hir_sid with
    | Some f -> f
    | None -> None

(* The abstract index of each site over-approximates every concrete
   index it can produce (the region summary starts from a ⊤ environment,
   and regions are register-closed). Two sites whose abstract indices
   can never be equal — disjoint intervals or incompatible congruence
   classes — therefore never touch the same address, in any pair of
   dynamic instances. *)
let provably_disjoint t (a : Voltron_ir.Cfg.lop) (b : Voltron_ir.Cfg.lop) =
  match t.absint with
  | None -> false
  | Some sum -> (
    if a.Voltron_ir.Cfg.hir_sid < 0 || b.Voltron_ir.Cfg.hir_sid < 0 then false
    else
      match
        ( Absint.index_dom sum a.Voltron_ir.Cfg.hir_sid,
          Absint.index_dom sum b.Voltron_ir.Cfg.hir_sid )
      with
      | Some ia, Some ib -> not (Dom.may_equal ia ib)
      | _ -> false)

let same_instance_alias t a b =
  match (mem_ref t a, mem_ref t b) with
  | None, _ | _, None -> false
  | Some ra, Some rb ->
    ra.Voltron_ir.Cfg.m_arr = rb.Voltron_ir.Cfg.m_arr
    && (match (form_of t a, form_of t b) with
       | Some fa, Some fb -> (
         match Affine.is_const (Affine.sub fa fb) with
         | Some d -> d = 0
         | None -> not (provably_disjoint t a b))
       | _ -> not (provably_disjoint t a b))

let ever_alias t a b =
  match (mem_ref t a, mem_ref t b) with
  | None, _ | _, None -> false
  | Some ra, Some rb ->
    ra.Voltron_ir.Cfg.m_arr = rb.Voltron_ir.Cfg.m_arr
    &&
    let fa = form_of t a and fb = form_of t b in
    (match (fa, fb) with
    | Some ea, Some eb -> (
      match Affine.is_const (Affine.sub ea eb) with
      | Some d when Affine.is_const ea <> None && Affine.is_const eb <> None ->
        (* Both indices constant: collide iff equal. *)
        d = 0
      | Some _ | None ->
        (* Linear in loop variables: disjoint only when some common
           variable provably separates every pair of instances. *)
        let separated =
          List.exists
            (fun var ->
              match Affine.cross_iteration_alias ~var fa fb with
              | Affine.Never -> true
              | Affine.Same_iteration_only | Affine.May_cross | Affine.Unknown ->
                false)
            t.loop_vars
        in
        (not separated) && not (provably_disjoint t a b))
    | _ -> not (provably_disjoint t a b))
