(** Domain-based work-stealing pool for campaign sweeps.

    A fixed pool of OCaml 5 [Domain]s, one Chase-Lev-style deque per
    worker, randomized victim selection, and a child-stealing submission
    discipline: a worker that opens a nested {!parallel_map} pushes the
    sub-tasks onto its own deque and executes them newest-first while
    idle workers steal oldest-first from the other end.

    The pool is a process-wide singleton, created lazily on the first
    parallel call and grown (never shrunk) to [jobs - 1] worker domains;
    the calling domain is always the remaining participant. Idle workers
    sleep on a condition variable, so an idle pool costs nothing between
    sweeps.

    Determinism contract: {!parallel_map} writes each result into its
    input slot, so the output order never depends on the completion
    order, and [jobs = 1] bypasses the pool entirely — a plain
    left-to-right [Array.map], the bit-identical serial reference every
    parallel sweep is compared against. *)

val default_jobs : unit -> int
(** Worker budget when the caller does not pass [?jobs]: the
    [VOLTRON_JOBS] environment variable if it parses as a positive
    integer, otherwise [Domain.recommended_domain_count ()]. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map ~jobs f xs] is [Array.map f xs] computed by up to
    [jobs] domains (the caller plus [jobs - 1] pool workers). Results
    are in input order regardless of completion order.

    [jobs] defaults to {!default_jobs}. With [jobs <= 1] (or fewer than
    two elements) no pool is touched: the map runs serially,
    left-to-right, in the calling domain.

    [f] runs concurrently on arbitrary domains: it must not touch shared
    mutable state. If one or more applications raise, the remaining
    unstarted tasks are skipped and the first exception recorded is
    re-raised in the caller (with its backtrace) after every started
    task has finished.

    Nested calls are safe: a worker that opens an inner [parallel_map]
    helps execute pending tasks (its own first, then stolen ones) while
    it waits, so the pool cannot deadlock on nesting. *)

val parallel_map_emit :
  ?jobs:int -> emit:(int -> 'b -> unit) -> ('a -> 'b) -> 'a array -> 'b array
(** Like {!parallel_map}, but [emit i (f xs.(i))] is called exactly once
    per element, serialized under a lock and in strict index order, as
    soon as every element [<= i] has completed — a completion frontier.
    Progress lines and per-cell reports printed from [emit] are
    therefore byte-identical for every [jobs] value, even though cells
    complete out of order. [emit] runs on whichever domain completed the
    frontier cell; exceptions from [f] suppress all further emits. *)
