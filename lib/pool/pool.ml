(* Work-stealing pool over Domain: per-worker Chase-Lev-style deques,
   randomized victim selection, caller participation (child stealing, as
   in the Cilk runtime shape). See DESIGN.md §15 for the determinism
   argument. *)

(* --- Chase-Lev deque -------------------------------------------------------

   Single owner pushes and pops at the bottom (LIFO, work-first); any
   number of thieves take from the top (FIFO — the oldest task, the
   biggest remaining chunk of work). One CAS on [top] arbitrates the
   only contended case (last element, owner vs thief). The buffer is a
   power-of-two ring replaced wholesale on growth: a thief still holding
   the old buffer reads the same value at the same logical index, and
   the CAS on [top] discards any read that lost the race. OCaml's memory
   model makes the racy element read defined (some previously written
   value), and the happens-before edge through the atomic [bottom] write
   rules out a stale read of a slot the thief is entitled to. *)
module Deque = struct
  type 'a buf = { elems : 'a array; mask : int }

  type 'a t = {
    top : int Atomic.t;
    bottom : int Atomic.t;
    buf : 'a buf Atomic.t;
    dummy : 'a;
  }

  let create ~dummy =
    {
      top = Atomic.make 0;
      bottom = Atomic.make 0;
      buf = Atomic.make { elems = Array.make 64 dummy; mask = 63 };
      dummy;
    }

  let grow q b t =
    let old = Atomic.get q.buf in
    let cap = 2 * (old.mask + 1) in
    let elems = Array.make cap q.dummy in
    for i = t to b - 1 do
      elems.(i land (cap - 1)) <- old.elems.(i land old.mask)
    done;
    Atomic.set q.buf { elems; mask = cap - 1 }

  (* Owner only. *)
  let push q x =
    let b = Atomic.get q.bottom and t = Atomic.get q.top in
    let buf = Atomic.get q.buf in
    let buf =
      if b - t > buf.mask then begin
        grow q b t;
        Atomic.get q.buf
      end
      else buf
    in
    buf.elems.(b land buf.mask) <- x;
    Atomic.set q.bottom (b + 1)

  (* Owner only. *)
  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if b < t then begin
      Atomic.set q.bottom t;
      None
    end
    else begin
      let buf = Atomic.get q.buf in
      let x = buf.elems.(b land buf.mask) in
      if b > t then Some x
      else begin
        (* Exactly one element left: race the thieves for it. *)
        let won = Atomic.compare_and_set q.top t (t + 1) in
        Atomic.set q.bottom (t + 1);
        if won then Some x else None
      end
    end

  (* Any domain. A lost CAS returns None; the thief picks another victim. *)
  let steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if t >= b then None
    else begin
      let buf = Atomic.get q.buf in
      let x = buf.elems.(t land buf.mask) in
      if Atomic.compare_and_set q.top t (t + 1) then Some x else None
    end
end

(* --- The pool ------------------------------------------------------------- *)

type task = unit -> unit

type worker = {
  deque : task Deque.t;
  mutable victim_seed : int;  (* xorshift state for victim order; owner only *)
}

type pool = {
  mutable n_workers : int;  (* spawned worker domains; under [lock] *)
  targets : worker array Atomic.t;
      (* every deque a thief may sweep: the spawned workers plus any
         external caller currently inside a parallel_map (submitters own
         a deque too — only an owner may push, so a caller scatters work
         into its own deque and thieves pull from it) *)
  lock : Mutex.t;
  cond : Condition.t;
  stamp : int Atomic.t;  (* submission epoch for the sleep protocol *)
}

let no_task : task = fun () -> ()

let the_pool =
  {
    n_workers = 0;
    targets = Atomic.make [||];
    lock = Mutex.create ();
    cond = Condition.create ();
    stamp = Atomic.make 0;
  }

(* Which pool worker the current domain is, if any (a nested parallel_map
   pushes onto its own deque). *)
let self_key : worker option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let default_jobs () =
  match Sys.getenv_opt "VOLTRON_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let next_victim w n =
  (* xorshift step; it only has to spread thieves across victims. *)
  let s = w.victim_seed in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = (s lxor (s lsl 17)) land max_int in
  w.victim_seed <- s;
  s mod n

(* One random-start sweep over every target deque ([w]'s own included,
   which is harmless: its owner only calls this with an empty deque). *)
let try_steal pool w =
  let ts = Atomic.get pool.targets in
  let n = Array.length ts in
  if n = 0 then None
  else begin
    let start = next_victim w n in
    let rec sweep k =
      if k = n then None
      else
        match Deque.steal ts.((start + k) mod n).deque with
        | Some _ as t -> t
        | None -> sweep (k + 1)
    in
    sweep 0
  end

let find_work pool w =
  match Deque.pop w.deque with Some _ as t -> t | None -> try_steal pool w

let worker_loop pool w () =
  Domain.DLS.set self_key (Some w);
  let rec loop () =
    let s = Atomic.get pool.stamp in
    match find_work pool w with
    | Some t ->
      t ();
      loop ()
    | None ->
      (* Sleep protocol: submitters push tasks, then bump the stamp and
         broadcast under the lock. Re-checking the stamp under the lock
         before waiting closes the lost-wakeup window. *)
      Mutex.lock pool.lock;
      if Atomic.get pool.stamp = s then Condition.wait pool.cond pool.lock;
      Mutex.unlock pool.lock;
      loop ()
  in
  loop ()

(* OCaml caps live domains (128 in the stock runtime); stay well below
   it and leave room for the caller and the rest of the host program. *)
let max_workers = 112

let ensure_workers pool n =
  let n = min n max_workers in
  if pool.n_workers < n then begin
    Mutex.lock pool.lock;
    if pool.n_workers < n then begin
      let fresh =
        Array.init (n - pool.n_workers) (fun i ->
            {
              deque = Deque.create ~dummy:no_task;
              victim_seed = (0x9E3779B9 * (pool.n_workers + i + 1)) lor 1;
            })
      in
      pool.n_workers <- n;
      Atomic.set pool.targets (Array.append (Atomic.get pool.targets) fresh);
      Array.iter (fun w -> ignore (Domain.spawn (worker_loop pool w))) fresh
    end;
    Mutex.unlock pool.lock
  end

let register pool w =
  Mutex.lock pool.lock;
  Atomic.set pool.targets (Array.append (Atomic.get pool.targets) [| w |]);
  Mutex.unlock pool.lock

let deregister pool w =
  Mutex.lock pool.lock;
  Atomic.set pool.targets
    (Array.of_list
       (List.filter (fun w' -> w' != w) (Array.to_list (Atomic.get pool.targets))));
  Mutex.unlock pool.lock

let wake_all pool =
  Mutex.lock pool.lock;
  Atomic.incr pool.stamp;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.lock

(* --- parallel_map ---------------------------------------------------------- *)

type 'b batch = {
  remaining : int Atomic.t;
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
  results : 'b option array;
  emit : (int -> 'b -> unit) option;
  emit_lock : Mutex.t;
  mutable frontier : int;  (* next index to emit; under [emit_lock] *)
}

(* Advance the emit frontier past every contiguous completed cell. A
   completing task locks [emit_lock] after writing its slot, so the scan
   sees every slot whose task has reached the lock; a slot written but
   not yet locked is caught by that task's own call. Exceptions from
   [emit] are recorded like a failing cell (tasks must never raise —
   they run inside the worker loop). *)
let advance batch =
  match batch.emit with
  | None -> ()
  | Some emit ->
    Mutex.lock batch.emit_lock;
    let n = Array.length batch.results in
    (try
       while
         batch.frontier < n
         && Atomic.get batch.failed = None
         && batch.results.(batch.frontier) <> None
       do
         (match batch.results.(batch.frontier) with
         | Some v -> emit batch.frontier v
         | None -> assert false);
         batch.frontier <- batch.frontier + 1
       done
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       ignore (Atomic.compare_and_set batch.failed None (Some (e, bt))));
    Mutex.unlock batch.emit_lock

let run_cell batch f xs i =
  (if Atomic.get batch.failed = None then
     match f xs.(i) with
     | v ->
       batch.results.(i) <- Some v;
       advance batch
     | exception e ->
       let bt = Printexc.get_raw_backtrace () in
       ignore (Atomic.compare_and_set batch.failed None (Some (e, bt))));
  Atomic.decr batch.remaining

(* Busy-help loop: execute pending tasks (own deque first) until the
   batch drains; back off to a short sleep when there is nothing to help
   with, so a blocked caller does not starve the workers of a core. *)
let help pool self batch =
  let idle = ref 0 in
  while Atomic.get batch.remaining > 0 do
    match find_work pool self with
    | Some t ->
      idle := 0;
      t ()
    | None ->
      incr idle;
      if !idle < 32 then Domain.cpu_relax ()
      else Unix.sleepf (if !idle < 256 then 50e-6 else 500e-6)
  done

let finish batch =
  match Atomic.get batch.failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> Array.map (function Some v -> v | None -> assert false) batch.results

let serial_map ?emit f xs =
  Array.mapi
    (fun i x ->
      let v = f x in
      (match emit with Some emit -> emit i v | None -> ());
      v)
    xs

let parallel ?jobs ?emit f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let n = Array.length xs in
  if jobs <= 1 || n <= 1 then serial_map ?emit f xs
  else begin
    let pool = the_pool in
    ensure_workers pool (jobs - 1);
    let batch =
      {
        remaining = Atomic.make n;
        failed = Atomic.make None;
        results = Array.make n None;
        emit;
        emit_lock = Mutex.create ();
        frontier = 0;
      }
    in
    let task i () = run_cell batch f xs i in
    (* Push in reverse so the owner pops index 0 first (work-first, and
       the emit frontier advances early) while thieves steal from the
       high-index end. *)
    (match Domain.DLS.get self_key with
    | Some w ->
      (* Nested call from a pool worker: child tasks go onto our own
         deque — the Cilk child-stealing shape. *)
      for i = n - 1 downto 0 do
        Deque.push w.deque (task i)
      done;
      wake_all pool;
      help pool w batch
    | None ->
      (* External caller: submit through a deque of our own (only an
         owner may push), visible to thieves while the batch runs. *)
      let self = { deque = Deque.create ~dummy:no_task; victim_seed = 0x2545F491 } in
      register pool self;
      for i = n - 1 downto 0 do
        Deque.push self.deque (task i)
      done;
      wake_all pool;
      help pool self batch;
      deregister pool self);
    finish batch
  end

let parallel_map ?jobs f xs = parallel ?jobs f xs
let parallel_map_emit ?jobs ~emit f xs = parallel ?jobs ~emit f xs
