(** Single-error-correct (SEC) code model for data memory.

    The simulator keeps architectural data in a flat word memory
    ({!Voltron_mem.Memory}); a {!Fault.Mem_flip} flips a stored bit there.
    This module is the detection/recovery half: it remembers the golden
    (pre-flip) value of every corrupted word, so that

    - a {b read} of a corrupted word detects the bad syndrome and corrects
      it in place ({!check} — the machine charges the ECC latency penalty),
    - a {b write} to a corrupted word simply overwrites it: the fault was
      architecturally masked ({!overwrite} — the AVF "unACE" case), and
    - an end-of-run {b scrub} corrects words the program never touched
      again, so the final memory image is exactly the fault-free one
      ({!scrub}).

    The shadow table holds only currently-corrupted words, so the model
    costs nothing when no fault is pending. *)

type t

val create : unit -> t

val note_flip : t -> addr:int -> golden:int -> unit
(** Record that [addr] was just corrupted; if it is already corrupted, the
    original golden value is kept (a double flip still corrects to it —
    optimistic, but the fault model injects single upsets). *)

val check : t -> addr:int -> int option
(** [Some golden] if [addr] is corrupted: the entry is consumed and the
    correction counted. [None] for a clean word. *)

val overwrite : t -> addr:int -> unit
(** A store landed on a corrupted word before anything read it: drop the
    entry and count the fault as masked. *)

val scrub : t -> f:(int -> int -> unit) -> unit
(** Correct every still-pending word: [f addr golden] restores each, and
    the table empties. Counted separately from demand corrections. *)

val peek : t -> addr:int -> int option
(** Pure query: the golden value of [addr] if it is currently corrupted,
    without consuming the entry or counting a correction. The runtime
    sanitizer uses this to read the architectural value of a word without
    perturbing the ECC model. *)

val pending : t -> int

val corrected : t -> int
(** Demand (read-triggered) corrections so far. *)

val scrubbed : t -> int
val masked : t -> int
