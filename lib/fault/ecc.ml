type t = {
  shadow : (int, int) Hashtbl.t;  (** addr -> golden (pre-flip) value *)
  mutable n_corrected : int;
  mutable n_scrubbed : int;
  mutable n_masked : int;
}

let create () =
  { shadow = Hashtbl.create 16; n_corrected = 0; n_scrubbed = 0; n_masked = 0 }

let note_flip t ~addr ~golden =
  if not (Hashtbl.mem t.shadow addr) then Hashtbl.add t.shadow addr golden

let check t ~addr =
  match Hashtbl.find_opt t.shadow addr with
  | None -> None
  | Some golden ->
    Hashtbl.remove t.shadow addr;
    t.n_corrected <- t.n_corrected + 1;
    Some golden

let overwrite t ~addr =
  if Hashtbl.mem t.shadow addr then begin
    Hashtbl.remove t.shadow addr;
    t.n_masked <- t.n_masked + 1
  end

let scrub t ~f =
  let entries = Hashtbl.fold (fun addr golden acc -> (addr, golden) :: acc) t.shadow [] in
  List.iter
    (fun (addr, golden) ->
      f addr golden;
      t.n_scrubbed <- t.n_scrubbed + 1)
    entries;
  Hashtbl.reset t.shadow

let peek t ~addr = Hashtbl.find_opt t.shadow addr

let pending t = Hashtbl.length t.shadow
let corrected t = t.n_corrected
let scrubbed t = t.n_scrubbed
let masked t = t.n_masked
