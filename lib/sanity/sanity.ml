module Inst = Voltron_isa.Inst
module Memory = Voltron_mem.Memory
module Cache = Voltron_mem.Cache
module Coherence = Voltron_mem.Coherence
module Tm = Voltron_mem.Tm
module Net = Voltron_net.Operand_network
module Machine = Voltron_machine.Machine
module Json = Voltron_obs.Json

type policy = Report | Abort | Recover

let policy_name = function
  | Report -> "report"
  | Abort -> "abort"
  | Recover -> "recover"

let policy_of_string = function
  | "report" -> Ok Report
  | "abort" -> Ok Abort
  | "recover" -> Ok Recover
  | s ->
    Error
      (Printf.sprintf "unknown sanitizer policy %S (report, abort, recover)" s)

type kind =
  | Coherence_states of { line : int; states : (int * Cache.state) list }
  | Coherence_sweep of { msg : string }
  | Read_divergence of { expected : int; got : int }
  | Aborted_store_leaked of { expected : int; got : int }
  | Tm_commit_order of { prev_core : int }
  | Msg_conservation of { modelled : int; actual : int }
  | Msg_fifo of { seq_expected : int; seq_got : int }
  | Msg_payload of { expected : string; got : string }
  | Msg_phantom of { seq : int }
  | Latch_double_fill of { dir : Inst.dir }
  | Latch_empty_get of { dir : Inst.dir }
  | Final_image_divergence of { expected : int; got : int }

let kind_class = function
  | Coherence_states _ | Coherence_sweep _ -> "coherence-states"
  | Read_divergence _ -> "read-divergence"
  | Aborted_store_leaked _ -> "tm-leak"
  | Tm_commit_order _ -> "tm-commit-order"
  | Msg_conservation _ -> "msg-conservation"
  | Msg_fifo _ -> "msg-fifo"
  | Msg_payload _ -> "msg-payload"
  | Msg_phantom _ -> "msg-phantom"
  | Latch_double_fill _ -> "latch-double-fill"
  | Latch_empty_get _ -> "latch-empty-get"
  | Final_image_divergence _ -> "final-image"

let dir_name = function
  | Inst.North -> "north"
  | Inst.South -> "south"
  | Inst.East -> "east"
  | Inst.West -> "west"

let kind_detail = function
  | Coherence_states { line; states } ->
    Printf.sprintf "line %d held as {%s}" line
      (String.concat ", "
         (List.map
            (fun (c, st) ->
              Printf.sprintf "core %d: %s" c
                (Format.asprintf "%a" Cache.pp_state st))
            states))
  | Coherence_sweep { msg } -> "end-of-run sweep: " ^ msg
  | Read_divergence { expected; got } ->
    Printf.sprintf "load returned %d, shadow holds %d" got expected
  | Aborted_store_leaked { expected; got } ->
    Printf.sprintf
      "memory holds %d after the abort, pre-transaction value was %d" got
      expected
  | Tm_commit_order { prev_core } ->
    Printf.sprintf "committed after core %d in the same cycle" prev_core
  | Msg_conservation { modelled; actual } ->
    Printf.sprintf "mirror models %d in-flight message(s), network holds %d"
      modelled actual
  | Msg_fifo { seq_expected; seq_got } ->
    Printf.sprintf "delivered seq %d while seq %d was older on the channel"
      seq_got seq_expected
  | Msg_payload { expected; got } ->
    Printf.sprintf "sent %s, delivered %s" expected got
  | Msg_phantom { seq } ->
    Printf.sprintf "delivered seq %d the mirror never saw sent" seq
  | Latch_double_fill { dir } ->
    Printf.sprintf "PUT %s onto an already-full latch" (dir_name dir)
  | Latch_empty_get { dir } ->
    Printf.sprintf "GET %s from a latch the mirror holds empty" (dir_name dir)
  | Final_image_divergence { expected; got } ->
    Printf.sprintf "final image holds %d, shadow holds %d" got expected

type violation = {
  v_kind : kind;
  v_cycle : int;
  v_core : int option;
  v_addr : int option;
  v_blame : (int * int) option;
}

let violation_to_string v =
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "sanitizer [%s]" (kind_class v.v_kind));
  Buffer.add_string b (Printf.sprintf " cycle %d" v.v_cycle);
  (match v.v_core with
  | Some c -> Buffer.add_string b (Printf.sprintf " core %d" c)
  | None -> ());
  (match v.v_addr with
  | Some a -> Buffer.add_string b (Printf.sprintf " addr %d" a)
  | None -> ());
  (match v.v_blame with
  | Some (waiter, culprit) ->
    Buffer.add_string b (Printf.sprintf " (core %d <- core %d)" waiter culprit)
  | None -> ());
  Buffer.add_string b ": ";
  Buffer.add_string b (kind_detail v.v_kind);
  Buffer.contents b

let opt_int = function Some i -> Json.Int i | None -> Json.Null

let violation_to_json v =
  Json.Obj
    [
      ("class", Json.Str (kind_class v.v_kind));
      ("cycle", Json.Int v.v_cycle);
      ("core", opt_int v.v_core);
      ("addr", opt_int v.v_addr);
      ( "blame",
        match v.v_blame with
        | Some (w, c) -> Json.List [ Json.Int w; Json.Int c ]
        | None -> Json.Null );
      ("detail", Json.Str (kind_detail v.v_kind));
    ]

(* Per-(sender, receiver, class) channel mirror; the bool is "Start class"
   (SPAWN), mirroring the network's own unit of FIFO ordering. *)
type chan_key = int * int * bool

type t = {
  machine : Machine.t;
  san_policy : policy;
  log : string -> unit;
  limit : int;
  mem : Memory.t;
  hier : Coherence.t;
  net : Net.t;
  (* Golden last-writer-wins image, maintained from the TM's machine-wide
     load/store event stream. *)
  shadow : int array;
  (* Per-core mirror of the TM write buffer: reads inside a transaction
     check against it before the shadow; commits fold it into the shadow;
     aborts audit memory against it. *)
  tx_mirror : (int, int) Hashtbl.t array;
  channels : (chan_key, (int * Net.payload) Queue.t) Hashtbl.t;
  mutable outstanding : int;  (** mirror's in-flight message count *)
  mutable last_delta : int;  (** last reported conservation delta (dedup) *)
  latch_mirror : bool array array;  (** latch_mirror.(core).(dir_index) *)
  mutable last_commit : int * int;  (** cycle, core of the last TM commit *)
  mutable recorded : violation list;  (** newest first, bounded by [limit] *)
  mutable n_recorded : int;
  mutable total : int;
  by_class : (string, int) Hashtbl.t;
}

let record ?core ?addr ?blame t kind =
  let v =
    {
      v_kind = kind;
      v_cycle = Machine.now t.machine;
      v_core = core;
      v_addr = addr;
      v_blame = blame;
    }
  in
  t.total <- t.total + 1;
  let cls = kind_class kind in
  Hashtbl.replace t.by_class cls
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.by_class cls));
  if t.n_recorded < t.limit then begin
    t.recorded <- v :: t.recorded;
    t.n_recorded <- t.n_recorded + 1;
    t.log (violation_to_string v)
  end;
  match t.san_policy with
  | Report -> ()
  | Abort | Recover -> Machine.request_stop t.machine

(* --- Coherence oracle ------------------------------------------------------ *)

(* Single-writer/multiple-reader over the accessed line, checked after the
   protocol's state transition for the access has landed: at most one
   writable (M/E) copy and then no other sharer, at most one owned (O)
   copy. The rule is stated over cache states alone, never over protocol
   messages, so it is backend-independent: it holds verbatim for the snoop
   bus's MOESI and for the directory's MESI (which simply never produces
   O). Same rule as the end-of-run [Coherence.check_invariants] — which
   additionally audits directory/cache agreement on that backend — applied
   per line per access. *)
let check_line t ~core addr =
  let line, states = Coherence.l1d_line_states t.hier ~addr in
  let m = ref 0 and e = ref 0 and o = ref 0 and total = ref 0 in
  List.iter
    (fun (_, st) ->
      incr total;
      match st with
      | Cache.M -> incr m
      | Cache.E -> incr e
      | Cache.O -> incr o
      | Cache.S | Cache.I -> ())
    states;
  if !m + !e > 1 || ((!m = 1 || !e = 1) && !total > 1) || !o > 1 then
    record t ~core ~addr (Coherence_states { line; states })

let on_access t ~core kind addr =
  match kind with
  | Coherence.Ifetch -> ()
  | Coherence.Dload | Coherence.Dstore -> check_line t ~core addr

(* --- TM / shadow-memory oracle --------------------------------------------- *)

let on_read t ~core ~addr ~value ~tx =
  let expected =
    if tx then
      match Hashtbl.find_opt t.tx_mirror.(core) addr with
      | Some v -> v
      | None -> t.shadow.(addr)
    else t.shadow.(addr)
  in
  if value <> expected then
    record t ~core ~addr (Read_divergence { expected; got = value })

let on_write t ~core ~addr ~value ~tx =
  if tx then Hashtbl.replace t.tx_mirror.(core) addr value
  else t.shadow.(addr) <- value

let on_begin t ~core = Hashtbl.reset t.tx_mirror.(core)

let on_commit t ~core =
  Hashtbl.iter (fun addr v -> t.shadow.(addr) <- v) t.tx_mirror.(core);
  Hashtbl.reset t.tx_mirror.(core);
  let now = Machine.now t.machine in
  let prev_cycle, prev_core = t.last_commit in
  if prev_cycle = now && core < prev_core then
    record t ~core (Tm_commit_order { prev_core });
  t.last_commit <- (now, core)

let on_abort t ~core =
  (* A rolled-back transaction must be architecturally invisible: memory at
     every buffered address must still agree with the shadow. *)
  Hashtbl.iter
    (fun addr _ ->
      let got = Memory.peek t.mem addr in
      if got <> t.shadow.(addr) then
        record t ~core ~addr
          (Aborted_store_leaked { expected = t.shadow.(addr); got }))
    t.tx_mirror.(core);
  Hashtbl.reset t.tx_mirror.(core)

(* --- Network conservation -------------------------------------------------- *)

let payload_str = function
  | Net.Value v -> Printf.sprintf "value %d" v
  | Net.Start a -> Printf.sprintf "start @%d" a

let chan_key src dst (payload : Net.payload) : chan_key =
  (src, dst, match payload with Net.Start _ -> true | Net.Value _ -> false)

let channel t key =
  match Hashtbl.find_opt t.channels key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add t.channels key q;
    q

(* Drop [seq] from wherever it sits in [q] (the FIFO check already fired);
   [false] when it was never there — a phantom delivery. *)
let remove_seq q seq =
  let found = ref false in
  let keep = Queue.create () in
  Queue.iter (fun (s, p) -> if s = seq then found := true else Queue.push (s, p) keep) q;
  Queue.clear q;
  Queue.transfer keep q;
  !found

let on_net_event t = function
  | Net.Ev_send { ev_src; ev_dst; ev_seq; ev_payload } ->
    t.outstanding <- t.outstanding + 1;
    Queue.push (ev_seq, ev_payload) (channel t (chan_key ev_src ev_dst ev_payload))
  | Net.Ev_deliver { ev_src; ev_dst; ev_seq; ev_payload; ev_sent = _ } ->
    t.outstanding <- t.outstanding - 1;
    let blame = (ev_dst, ev_src) in
    let q = channel t (chan_key ev_src ev_dst ev_payload) in
    if Queue.is_empty q then
      record t ~core:ev_dst ~blame (Msg_phantom { seq = ev_seq })
    else begin
      let seq_expected, expected_payload = Queue.peek q in
      if seq_expected = ev_seq then begin
        ignore (Queue.pop q);
        if expected_payload <> ev_payload then
          record t ~core:ev_dst ~blame
            (Msg_payload
               {
                 expected = payload_str expected_payload;
                 got = payload_str ev_payload;
               })
      end
      else begin
        record t ~core:ev_dst ~blame (Msg_fifo { seq_expected; seq_got = ev_seq });
        if not (remove_seq q ev_seq) then
          record t ~core:ev_dst ~blame (Msg_phantom { seq = ev_seq })
      end
    end
  | Net.Ev_put { ev_src; ev_dst; ev_dir } ->
    let slot = Inst.opposite ev_dir in
    let d = match slot with Inst.North -> 0 | South -> 1 | East -> 2 | West -> 3 in
    if t.latch_mirror.(ev_dst).(d) then
      record t ~core:ev_dst ~blame:(ev_dst, ev_src)
        (Latch_double_fill { dir = ev_dir })
    else t.latch_mirror.(ev_dst).(d) <- true
  | Net.Ev_get { ev_core; ev_dir } ->
    let d =
      match ev_dir with Inst.North -> 0 | South -> 1 | East -> 2 | West -> 3
    in
    if not t.latch_mirror.(ev_core).(d) then
      record t ~core:ev_core (Latch_empty_get { dir = ev_dir })
    else t.latch_mirror.(ev_core).(d) <- false

(* Per-cycle reconciliation: the mirror's send/deliver balance against the
   network's live in-flight count. A silently vanished (or conjured)
   message shows up here the very cycle it happens; the delta is reported
   once per change, not once per cycle. *)
let on_cycle t ~now:_ =
  let actual = Net.in_flight_count t.net in
  let delta = t.outstanding - actual in
  if delta = 0 then t.last_delta <- 0
  else if delta <> t.last_delta then begin
    t.last_delta <- delta;
    record t (Msg_conservation { modelled = t.outstanding; actual })
  end

(* --- Attachment ------------------------------------------------------------ *)

let policy t = t.san_policy

let attach ?(policy = Abort) ?(log = fun _ -> ()) ?(limit = 32) m =
  let mem = Machine.memory m in
  let size = Memory.size mem in
  let shadow = Array.init size (fun i -> Memory.peek mem i) in
  let hier = Machine.coherence m in
  let net = Machine.network m in
  let n =
    (* Latch mirror is indexed by core; the mesh's core count equals the
       machine's. *)
    Voltron_net.Mesh.n_cores (Net.mesh net)
  in
  let t =
    {
      machine = m;
      san_policy = policy;
      log;
      limit;
      mem;
      hier;
      net;
      shadow;
      tx_mirror = Array.init n (fun _ -> Hashtbl.create 32);
      channels = Hashtbl.create 32;
      outstanding = 0;
      last_delta = 0;
      latch_mirror = Array.init n (fun _ -> Array.make 4 false);
      last_commit = (-1, -1);
      recorded = [];
      n_recorded = 0;
      total = 0;
      by_class = Hashtbl.create 8;
    }
  in
  Coherence.set_monitor hier (fun ~core ~completion:_ kind addr ->
      on_access t ~core kind addr);
  Tm.set_monitor (Machine.tm m)
    {
      Tm.m_read = (fun ~core ~addr ~value ~tx -> on_read t ~core ~addr ~value ~tx);
      m_write = (fun ~core ~addr ~value ~tx -> on_write t ~core ~addr ~value ~tx);
      m_begin = (fun ~core -> on_begin t ~core);
      m_commit = (fun ~core -> on_commit t ~core);
      m_abort = (fun ~core -> on_abort t ~core);
    };
  Net.set_monitor net (fun ev -> on_net_event t ev);
  Machine.set_sanity_cycle m (fun ~now -> on_cycle t ~now);
  t

let finalize t ~completed =
  (match Coherence.check_invariants t.hier with
  | Ok _ -> ()
  | Error msg -> record t (Coherence_sweep { msg }));
  let actual = Net.in_flight_count t.net in
  if t.outstanding <> actual && t.outstanding - actual <> t.last_delta then
    record t (Msg_conservation { modelled = t.outstanding; actual });
  if completed then
    (* The run finished and memory has been scrubbed: the image is final,
       so it must agree with the shadow word for word. *)
    for addr = 0 to Array.length t.shadow - 1 do
      let got = Memory.peek t.mem addr in
      if got <> t.shadow.(addr) then
        record t ~addr
          (Final_image_divergence { expected = t.shadow.(addr); got })
    done

(* --- Findings -------------------------------------------------------------- *)

type report = {
  r_policy : policy;
  r_total : int;
  r_recorded : violation list;
  r_by_class : (string * int) list;
}

let report t =
  {
    r_policy = t.san_policy;
    r_total = t.total;
    r_recorded = List.rev t.recorded;
    r_by_class =
      Hashtbl.fold (fun cls n acc -> (cls, n) :: acc) t.by_class []
      |> List.sort compare;
  }

let clean r = r.r_total = 0

let report_to_string r =
  if clean r then Printf.sprintf "sanitizer (%s): clean" (policy_name r.r_policy)
  else
    let classes =
      String.concat ", "
        (List.map (fun (c, n) -> Printf.sprintf "%s x%d" c n) r.r_by_class)
    in
    String.concat "\n"
      (Printf.sprintf "sanitizer (%s): %d violation(s): %s"
         (policy_name r.r_policy) r.r_total classes
      :: List.map (fun v -> "  " ^ violation_to_string v) r.r_recorded)

let report_to_json r =
  Json.Obj
    [
      ("policy", Json.Str (policy_name r.r_policy));
      ("total", Json.Int r.r_total);
      ( "by_class",
        Json.Obj (List.map (fun (c, n) -> (c, Json.Int n)) r.r_by_class) );
      ("violations", Json.List (List.map violation_to_json r.r_recorded));
    ]
