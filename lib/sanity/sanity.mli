(** Runtime invariant sanitizer: dynamic verification of the coherence
    protocol, the operand network and transactional memory, attached to a
    live {!Voltron_machine.Machine} through its narrow monitor callbacks.

    The sanitizer mirrors the architectural contract from the event streams
    the memory system, network and TM announce, and cross-checks the
    machine against its own model every cycle:

    - {b Coherence oracle}: after every data access, the accessed line's
      cache states across all L1Ds must satisfy single-writer /
      multiple-reader (at most one writable M/E copy and then no other
      sharer, at most one owned copy). The rule is stated over states, not
      protocol messages, so it applies unchanged to both coherence
      backends — the snoop bus's MOESI and the directory's MESI.
      Independently, a golden last-writer-wins shadow
      memory is maintained from the TM's load/store event stream, and
      every read's returned value must equal the shadow's — any
      architecturally visible corruption, whatever layer leaked it, is
      caught at the first read that observes it.
    - {b Network conservation}: every message entering the network must
      leave it exactly once (mirrored per-channel queues reconciled
      against the live in-flight count every cycle), deliveries must
      respect per-(sender, receiver, class) FIFO order, payloads must
      arrive unmodified, and a direct-mode latch must never be
      double-filled or drained empty.
    - {b TM oracle}: an aborted transaction must leave no architecturally
      visible store (the write-set addresses are audited against the
      shadow at the abort), commits within a round must land in core
      order, and a committed buffer folds into the shadow so later reads
      are checked against it.

    Violations are typed, located diagnostics (kind, cycle, core, address,
    blame edge — the same vocabulary as {!Voltron_machine.Machine.diagnosis}).
    The policy decides what a violation does: [Report] logs and continues,
    [Abort] stops the machine at the detection cycle with a structured
    [Stopped] outcome, [Recover] does the same but marks the stop as
    recoverable so {!Run.run_resilient} can feed it into the degradation
    ladder.

    Attaching the sanitizer disables stall fast-forward (every cycle must
    be observed) and costs roughly one mirrored operation per architectural
    event; unattached, every hook site is a single [None] branch and the
    simulator's allocation-free fast path is untouched. *)

module Machine = Voltron_machine.Machine

(** {1 Policy} *)

type policy =
  | Report  (** log each violation, keep running *)
  | Abort  (** stop the machine at the detection cycle *)
  | Recover  (** stop, and let the degradation ladder re-run degraded *)

val policy_name : policy -> string
val policy_of_string : string -> (policy, string) result
(** Accepts ["report"], ["abort"], ["recover"]. *)

(** {1 Violations} *)

type kind =
  | Coherence_states of {
      line : int;
      states : (int * Voltron_mem.Cache.state) list;
    }
      (** single-writer/multiple-reader broken after an access (either
          backend's state vocabulary) *)
  | Coherence_sweep of { msg : string }
      (** the end-of-run whole-hierarchy invariant scan failed *)
  | Read_divergence of { expected : int; got : int }
      (** a load returned a value different from the golden shadow *)
  | Aborted_store_leaked of { expected : int; got : int }
      (** memory shows a buffered store after its transaction aborted *)
  | Tm_commit_order of { prev_core : int }
      (** a commit round landed out of core order *)
  | Msg_conservation of { modelled : int; actual : int }
      (** live in-flight message count diverged from the mirror *)
  | Msg_fifo of { seq_expected : int; seq_got : int }
      (** a delivery overtook an older message on its channel *)
  | Msg_payload of { expected : string; got : string }
      (** a message arrived with a different payload than it was sent with *)
  | Msg_phantom of { seq : int }
      (** a delivery the mirror never saw enter the network *)
  | Latch_double_fill of { dir : Voltron_isa.Inst.dir }
      (** a direct-mode PUT landed on an already-full latch *)
  | Latch_empty_get of { dir : Voltron_isa.Inst.dir }
      (** a direct-mode GET drained a latch the mirror holds empty *)
  | Final_image_divergence of { expected : int; got : int }
      (** the final memory image differs from the shadow *)

val kind_class : kind -> string
(** Stable class tag for machine consumption (exit codes, fuzzer
    divergence bucketing, JSON): ["coherence-states"], ["read-divergence"],
    ["tm-leak"], ["tm-commit-order"], ["msg-conservation"], ["msg-fifo"],
    ["msg-payload"], ["msg-phantom"], ["latch-double-fill"],
    ["latch-empty-get"], ["final-image"]. *)

type violation = {
  v_kind : kind;
  v_cycle : int;
  v_core : int option;  (** the core at the detection site, when one exists *)
  v_addr : int option;  (** word address, for memory-shaped violations *)
  v_blame : (int * int) option;
      (** receiver -> sender edge for network-shaped violations — the same
          shape as [Machine.diagnosis.d_blame] *)
}

val violation_to_string : violation -> string
val violation_to_json : violation -> Voltron_obs.Json.t

(** {1 Attachment} *)

type t

val attach :
  ?policy:policy -> ?log:(string -> unit) -> ?limit:int -> Machine.t -> t
(** Wire the sanitizer into a machine created but not yet run. [policy]
    defaults to [Abort]; [log] (default: silent) receives each recorded
    violation's rendering as it happens; [limit] (default 32) bounds the
    violations kept and logged — everything past it is still counted. *)

val policy : t -> policy

val finalize : t -> completed:bool -> unit
(** End-of-run checks, to call once the machine has stopped: the
    whole-hierarchy coherence sweep, a last conservation reconciliation
    and — only when the run [completed] (memory has been scrubbed and the
    image is final) — the full shadow-vs-memory comparison. *)

(** {1 Findings} *)

type report = {
  r_policy : policy;
  r_total : int;  (** every violation, recorded or not *)
  r_recorded : violation list;  (** first [limit], in detection order *)
  r_by_class : (string * int) list;  (** class tag -> count, sorted *)
}

val report : t -> report
val clean : report -> bool
val report_to_string : report -> string
val report_to_json : report -> Voltron_obs.Json.t
