module B = Voltron_ir.Builder
module Hir = Voltron_ir.Hir
module Inst = Voltron_isa.Inst
module Rng = Voltron_util.Rng

let imm = B.imm

let resident_size = 512  (* 2 kB: fits the 4 kB L1 *)
let missy_size = 8192  (* 32 kB: overflows L1, lives in L2 *)

(* Initialisers must be pure (they are re-evaluated by the interpreter and
   the compiler), so materialise the random data once. *)
let init_of rng n lo hi =
  let data = Array.init n (fun _ -> Rng.in_range rng lo hi) in
  fun i -> data.(i)

(* --- DOALL family ---------------------------------------------------------- *)

let doall_dense b ~name ~n ~work ~seed =
  let rng = Rng.create seed in
  let src = B.array b ~name:(name ^ "_src") ~size:n ~init:(init_of rng n 1 97) () in
  let dst = B.array b ~name:(name ^ "_dst") ~size:n () in
  B.region b name (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm n) (fun i ->
          let v = B.load b src i in
          let rec grind acc k =
            if k = 0 then acc
            else
              let acc = B.add b (B.mul b acc (imm (3 + k))) (imm k) in
              grind acc (k - 1)
          in
          (* Two independent chains: the loop is DOALL for LLP, but each
             iteration also carries exploitable width, as real dense-loop
             bodies do — coupled-mode ILP gets its share here too. *)
          let c1 = grind v ((work + 1) / 2) in
          let c2 = grind (B.binop b Inst.Xor v (imm 0x5a)) (max 1 (work / 2)) in
          let r = B.binop b Inst.And (B.add b c1 c2) (imm 0xffffff) in
          B.store b dst i r))

let doall_indirect b ~name ~n ~work ~seed =
  let rng = Rng.create seed in
  (* A permutation index defeats affine analysis; profiling sees no
     cross-iteration RAW, so the loop runs speculatively under TM. *)
  let perm = Array.init n (fun i -> i) in
  Rng.shuffle rng perm;
  let idx = B.array b ~name:(name ^ "_idx") ~size:n ~init:(fun i -> perm.(i)) () in
  let src = B.array b ~name:(name ^ "_src") ~size:n ~init:(init_of rng n 1 211) () in
  let dst = B.array b ~name:(name ^ "_dst") ~size:n () in
  B.region b name (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm n) (fun i ->
          let j = B.load b idx i in
          let v = B.load b src j in
          let rec grind acc k =
            if k = 0 then acc
            else grind (B.binop b Inst.Xor (B.mul b acc (imm 5)) (imm k)) (k - 1)
          in
          let c1 = grind v ((work + 1) / 2) in
          let c2 = grind (B.add b v (imm 7)) (max 1 (work / 2)) in
          let r = B.add b c1 c2 in
          (* Scatter through the permutation: the affine test cannot prove
             the stores disjoint, so this is the statistical-DOALL path —
             chunks run under the TM even though no conflict ever occurs. *)
          B.store b dst j r))

let doall_reduce b ~name ~n ~seed =
  let rng = Rng.create seed in
  let src = B.array b ~name:(name ^ "_src") ~size:n ~init:(init_of rng n 1 997) () in
  let out = B.array b ~name:(name ^ "_out") ~size:8 () in
  B.region b name (fun () ->
      let acc = B.fresh b in
      B.assign b acc (Hir.Operand (imm 0));
      B.for_ b ~from:(imm 0) ~limit:(imm n) (fun i ->
          let v = B.load b src i in
          let sq = B.mul b v v in
          let scaled = B.binop b Inst.Shr sq (imm 3) in
          B.assign b acc (Hir.Alu (Inst.Add, Hir.Reg acc, scaled)));
      B.store b out (imm 0) (Hir.Reg acc))

(* Read-modify-write scatter with [conflicts] iterations redirected onto
   cell 0: used by the TM mis-speculation ablation. With [conflicts = 0]
   it is a clean statistical DOALL; compiled against the clean profile but
   run with collisions, later chunks read cells earlier chunks wrote, the
   TM detects the RAW at commit and re-executes serially — the cost curve
   of wrong speculation. *)
let doall_rmw b ~name ~n ~conflicts ~seed =
  let rng = Rng.create seed in
  let perm = Array.init n (fun i -> i) in
  Rng.shuffle rng perm;
  if conflicts > 0 then begin
    (* Redirect evenly-spaced iterations to a single hot cell. *)
    let stride = max 1 (n / conflicts) in
    let k = ref 0 in
    while !k < n do
      perm.(!k) <- 0;
      k := !k + stride
    done
  end;
  let idx = B.array b ~name:(name ^ "_idx") ~size:n ~init:(fun i -> perm.(i)) () in
  let dst = B.array b ~name:(name ^ "_dst") ~size:n ~init:(fun i -> i) () in
  B.region b name (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm n) (fun i ->
          let j = B.load b idx i in
          let v = B.load b dst j in
          B.store b dst j (B.add b (B.mul b v (imm 3)) (imm 1))))

(* GSM LTP-style double-buffered window: every iteration reads the fixed
   history half of [hist] through a masked subscript and writes the
   current sample into the live half by the induction variable. The mask
   defeats the affine dependence test (the store/load pair is Unknown), so
   with profiling alone the loop can only run as a statistical DOALL under
   the TM; the abstract interpreter bounds the masked read to
   [half, half+win) and the store to [0, n) with n <= half, proving the
   halves disjoint — the loop upgrades to a proven DOALL with no
   speculation. *)
let doall_window b ~name ~n ~work ~seed =
  let rng = Rng.create seed in
  let win = 256 in
  let half = max win n in
  let hist =
    B.array b ~name:(name ^ "_hist") ~size:(half + win)
      ~init:(init_of rng (half + win) 1 255) ()
  in
  let src = B.array b ~name:(name ^ "_src") ~size:n ~init:(init_of rng n 1 97) () in
  B.region b name (fun () ->
      B.for_ b ~from:(imm 0) ~limit:(imm n) (fun i ->
          let j = B.binop b Inst.And i (imm (win - 1)) in
          let h = B.load b hist (B.add b j (imm half)) in
          let s = B.load b src i in
          let rec grind acc k =
            if k = 0 then acc
            else grind (B.add b (B.mul b acc (imm (3 + k))) (imm k)) (k - 1)
          in
          let v = grind (B.add b h s) (max 1 work) in
          B.store b hist i (B.binop b Inst.And v (imm 0xffff))))

(* --- ILP (coupled) --------------------------------------------------------- *)

let ilp_wide b ~name ~n ~taps ~seed =
  let rng = Rng.create seed in
  let size = min 256 resident_size in
  let src = B.array b ~name:(name ^ "_src") ~size ~init:(init_of rng size 1 255) () in
  let dst = B.array b ~name:(name ^ "_dst") ~size () in
  let lanes = max 2 (min 4 taps) in
  B.region b name (fun () ->
      (* A butterfly of [lanes] scalar recurrences. Each iteration every
         lane computes an intermediate y_k from its state, the lanes
         exchange intermediates around a ring, and each state update folds
         in a neighbour's SAME-iteration intermediate. The recurrence
         cycle therefore crosses cores inside every iteration: a 1-cycle
         direct-mode move when coupled, but a full 3-cycle queue round
         when decoupled — queue buffering cannot hide it, so coupled-mode
         ILP wins (paper 4.2: predictable latencies, frequent inter-core
         communication). The ring is one big SCC, ruling out DSWP, and the
         scalar recurrences rule out DOALL. *)
      let states = Array.init lanes (fun _ -> B.fresh b) in
      Array.iteri (fun k s -> B.assign b s (Hir.Operand (imm (k + 1)))) states;
      B.for_ b ~from:(imm 0) ~limit:(imm n) (fun i ->
          let j = B.binop b Inst.And i (imm (size - 1)) in
          let v = B.load b src j in
          let ys =
            Array.mapi
              (fun k s ->
                let t1 = B.mul b (Hir.Reg s) (imm (3 + (2 * k))) in
                let t2 = B.add b t1 v in
                let t3 = B.binop b Inst.Shr t2 (imm 1) in
                let t4 = B.add b t3 (B.binop b Inst.And (Hir.Reg s) (imm 255)) in
                B.binop b Inst.Xor t4 (imm (17 * (k + 1))))
              states
          in
          Array.iteri
            (fun k s ->
              let left = ys.((k + lanes - 1) mod lanes) in
              let right = ys.((k + 1) mod lanes) in
              let t = B.add b (B.mul b left (imm 3)) right in
              let folded = B.binop b Inst.Xor t (Hir.Reg s) in
              B.assign b s (Hir.Alu (Inst.And, folded, imm 0xffff)))
            states;
          let mixed =
            B.binop b Inst.Xor (Hir.Reg states.(0)) (Hir.Reg states.(lanes / 2))
          in
          B.store b dst j mixed))

(* --- Fine-grain TLP: strands ----------------------------------------------- *)

let strands_streams b ~name ~n ~streams ~seed =
  let rng = Rng.create seed in
  let size = missy_size in
  (* Large streams walked with a prime stride so consecutive iterations
     leave the current cache line: sustained L1 misses, overlappable
     across cores (the paper's MLP argument for strands). *)
  let arrays =
    List.init streams (fun s ->
        B.array b
          ~name:(Printf.sprintf "%s_s%d" name s)
          ~size
          ~init:(init_of rng size 1 ((s * 37) + 91))
          ())
  in
  let out = B.array b ~name:(name ^ "_out") ~size:8 () in
  B.region b name (fun () ->
      (* A counted loop (immediate bounds) lets every core run the branch
         locally (induction replication); the per-stream position
         recurrences and the non-accumulator checksum keep DOALL out, so
         the region is genuine strand territory: each core owns a stream,
         its misses overlapping the others' (MLP). *)
      let positions = List.map (fun _ -> B.fresh b) arrays in
      let chk = B.fresh b in
      List.iteri
        (fun k pos -> B.assign b pos (Hir.Operand (imm (k * 577))))
        positions;
      B.assign b chk (Hir.Operand (imm 0));
      B.for_ b ~from:(imm 0) ~limit:(imm n) (fun _i ->
          let vals =
            List.mapi
              (fun k (arr, pos) ->
                (* Stagger each stream's address computation so the loads
                   sit at different schedule depths: in coupled mode the
                   stall bus then serialises their misses (a miss freezes
                   every core before the next stream's load can issue),
                   while decoupled cores issue their own loads regardless
                   — the paper's case for fine-grain strands. *)
                let rec deepen o j =
                  if j = 0 then o else deepen (B.add b o (imm 0)) (j - 1)
                in
                let addr = deepen (Hir.Reg pos) (2 * k) in
                let v = B.load b arr addr in
                let w = B.mul b v (imm 3) in
                let w2 = B.add b (B.mul b w (imm 7)) (imm 11) in
                (* Per-stream position recurrence: a prime stride through a
                   power-of-two array lands on a new line every time. *)
                let next =
                  B.binop b Inst.And
                    (B.add b (Hir.Reg pos) (imm (1031 + (k * 1032))))
                    (imm (size - 1))
                in
                B.assign b pos (Hir.Operand next);
                B.binop b Inst.Xor w2 (imm 5))
              (List.combine arrays positions)
          in
          let merged = List.fold_left (fun acc v -> B.add b acc v) (imm 0) vals in
          let x = B.binop b Inst.Xor (Hir.Reg chk) merged in
          B.assign b chk (Hir.Operand x));
      B.store b out (imm 0) (Hir.Reg chk);
      List.iteri
        (fun k pos -> B.store b out (imm (k + 1)) (Hir.Reg pos))
        positions)

(* A gzip-style compare loop: a do-while whose exit condition merges
   words from two large streams every iteration, so the predicate is
   computed on one core and shipped to the others through the queue
   network (the "predicate recv" slice of paper Fig. 12). Strand gains
   here are modest (paper reports 1.2x on the real gzip loop): the
   per-iteration condition round-trip limits the overlap to the two
   streams' cache misses. *)
let strands_compare b ~name ~n ~seed =
  let rng = Rng.create seed in
  let size = missy_size in
  let sentinel = min (size - 9) (n * 4) in
  let s1 =
    B.array b ~name:(name ^ "_scan") ~size ~init:(init_of rng size 1 251) ()
  in
  (* Matches the scan side everywhere, then forces a mismatch at the
     sentinel to terminate the compare loop after ~n iterations. *)
  let s2 =
    B.array b
      ~name:(name ^ "_match")
      ~size
      ~init:(fun i -> if i >= sentinel then 255 else 0)
      ()
  in
  let out = B.array b ~name:(name ^ "_out") ~size:8 () in
  B.region b name (fun () ->
      let pos = B.fresh b in
      B.assign b pos (Hir.Operand (imm 0));
      B.do_while b (fun () ->
          let lds arr =
            List.init 4 (fun q ->
                let v = B.load b arr (B.add b (Hir.Reg pos) (imm q)) in
                B.binop b Inst.And v (imm 255))
          in
          let a = lds s1 and c = lds s2 in
          let eqs = List.map2 (fun x y -> B.cmp b Inst.Ge x y) a c in
          let all_eq =
            List.fold_left (fun acc e -> B.binop b Inst.And acc e) (imm 1) eqs
          in
          B.assign b pos (Hir.Alu (Inst.Add, Hir.Reg pos, imm 4));
          let inside = B.cmp b Inst.Lt (Hir.Reg pos) (imm (size - 8)) in
          B.binop b Inst.And all_eq inside);
      B.store b out (imm 0) (Hir.Reg pos))

(* --- Fine-grain TLP: DSWP pipeline ----------------------------------------- *)

let dswp_pipe b ~name ~n ~work ~seed =
  let rng = Rng.create seed in
  let size = missy_size in
  let next = B.array b ~name:(name ^ "_next") ~size ~init:(fun i -> (i + 4889) mod size) () in
  let data = B.array b ~name:(name ^ "_data") ~size ~init:(init_of rng size 1 127) () in
  let out = B.array b ~name:(name ^ "_out") ~size:(max 8 n) () in
  B.region b name (fun () ->
      let p = B.fresh b in
      B.assign b p (Hir.Operand (imm 0));
      B.for_ b ~from:(imm 0) ~limit:(imm n) (fun i ->
          (* Stage 1 (recurrence SCC): pointer walk. *)
          let p' = B.load b next (Hir.Reg p) in
          B.assign b p (Hir.Operand p');
          (* Stage 2: heavy dependent work off the visited element, with
             some width so coupled mode is not hopeless here either. *)
          let v = B.load b data p' in
          let rec grind acc k =
            if k = 0 then acc
            else grind (B.add b (B.mul b acc (imm 3)) (imm (k * 7))) (k - 1)
          in
          let c1 = grind v ((work + 1) / 2) in
          let c2 = grind (B.binop b Inst.Xor v (imm 0x33)) (max 1 (work / 2)) in
          let r = B.add b c1 c2 in
          B.store b out i (B.binop b Inst.And r (imm 0xffffff))))

(* --- Sequential ------------------------------------------------------------- *)

let seq_chase b ~name ~n ~seed =
  ignore seed;
  let size = resident_size in
  let next = B.array b ~name:(name ^ "_next") ~size ~init:(fun i -> (i + 191) mod size) () in
  let out = B.array b ~name:(name ^ "_out") ~size:8 () in
  B.region b name (fun () ->
      let p = B.fresh b in
      B.assign b p (Hir.Operand (imm 0));
      B.for_ b ~from:(imm 0) ~limit:(imm n) (fun _i ->
          let p' = B.load b next (Hir.Reg p) in
          B.assign b p (Hir.Operand p'));
      B.store b out (imm 0) (Hir.Reg p))

(* --- Paper micro-examples --------------------------------------------------- *)

let gsm_llp_region b ~n =
  (* Fig. 7, scaled from 8 elements to [n]:
       for i: uf[i] = u[i]; rpf[i] = rp[i] * scalef *)
  let u = B.array b ~name:"u" ~size:n ~init:(fun i -> (i * 31) mod 199) () in
  let rp = B.array b ~name:"rp" ~size:n ~init:(fun i -> (i * 7) mod 97) () in
  let uf = B.array b ~name:"uf" ~size:n () in
  let rpf = B.array b ~name:"rpf" ~size:n () in
  B.region b "gsm_llp" (fun () ->
      let scalef = B.mov b (imm 327) in
      B.for_ b ~from:(imm 0) ~limit:(imm n) (fun i ->
          let ui = B.load b u i in
          B.store b uf i ui;
          let rpi = B.load b rp i in
          B.store b rpf i (B.mul b rpi scalef)))

let gzip_strands_region b ~n =
  (* Fig. 8: do { ... } while (scan words == match words && scan < strend),
     reading two large byte streams. *)
  let size = missy_size in
  let scan =
    B.array b ~name:"scan" ~size ~init:(fun i -> if i < size - 7 then i mod 251 else 0) ()
  in
  let match_ =
    B.array b ~name:"match" ~size
      ~init:(fun i -> if i < n * 8 then i mod 251 else 255)
      ()
  in
  let out = B.array b ~name:"gz_out" ~size:8 () in
  B.region b "gzip_strands" (fun () ->
      let pos = B.fresh b in
      B.assign b pos (Hir.Operand (imm 0));
      B.do_while b (fun () ->
          (* Core-0 strand: four scan loads; core-1 strand: four match
             loads (the eBUG split of Fig. 8(b)/(c)). *)
          let lds k arr =
            List.init 4 (fun q -> B.load b arr (B.add b (Hir.Reg pos) (imm (q + k))))
          in
          let s = lds 0 scan in
          let m = lds 0 match_ in
          let eqs = List.map2 (fun a c -> B.cmp b Inst.Eq a c) s m in
          let all_eq =
            List.fold_left (fun acc e -> B.binop b Inst.And acc e) (imm 1) eqs
          in
          B.assign b pos (Hir.Alu (Inst.Add, Hir.Reg pos, imm 4));
          let inside = B.cmp b Inst.Lt (Hir.Reg pos) (imm (size - 8)) in
          B.binop b Inst.And all_eq inside);
      B.store b out (imm 0) (Hir.Reg pos))

let gsm_ilp_region b ~n =
  (* Fig. 9: the gsm short-term synthesis filter. Two saturating multiply
     chains per iteration with a loop-carried v[] recurrence. The filter
     state is small (the real gsm filter order is 8); iterate over it. *)
  let size = 128 in
  let rrp = B.array b ~name:"rrp" ~size ~init:(fun i -> ((i * 131) mod 16384) - 8192) () in
  let v = B.array b ~name:"v" ~size:(size + 1) ~init:(fun i -> ((i * 57) mod 8192) - 4096) () in
  let out = B.array b ~name:"gsmilp_out" ~size:8 () in
  let min_word = -32768 and max_word = 32767 in
  B.region b "gsm_ilp" (fun () ->
      let sri = B.fresh b in
      B.assign b sri (Hir.Operand (imm 1021));
      B.for_ b ~from:(imm 0) ~limit:(imm n) (fun i ->
          let j = B.binop b Inst.And i (imm (size - 1)) in
          let tmp1 = B.load b rrp j in
          let tmp2 = B.load b v j in
          let sat_mul a c =
            let prod = B.mul b a c in
            let shifted = B.binop b Inst.Shr (B.add b prod (imm 16384)) (imm 15) in
            let both_min =
              B.binop b Inst.And
                (B.cmp b Inst.Eq a (imm min_word))
                (B.cmp b Inst.Eq c (imm min_word))
            in
            B.select b both_min (imm max_word) (B.binop b Inst.And shifted (imm 0xffff))
          in
          let m1 = sat_mul tmp1 tmp2 in
          let sri' = B.sub b (Hir.Reg sri) m1 in
          B.assign b sri (Hir.Operand sri');
          let m2 = sat_mul tmp1 sri' in
          let vnext = B.add b tmp2 m2 in
          let sat =
            B.select b
              (B.cmp b Inst.Gt vnext (imm max_word))
              (imm max_word) vnext
          in
          B.store b v (B.add b j (imm 1)) sat);
      B.store b out (imm 0) (Hir.Reg sri))
