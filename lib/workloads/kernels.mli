(** Parameterised region generators — the building blocks of the synthetic
    benchmark suite (DESIGN.md §2: each paper benchmark is reproduced by
    its mix of region characters, which is what drives the paper's
    results).

    Every generator opens one named region and declares its own
    initialised arrays, so a region also runs faithfully standalone (used
    by the Fig. 3 per-region classification). Array sizing picks the
    memory behaviour: [`Resident] arrays fit in the 4 kB L1, [`Missy]
    arrays overflow it (32 kB, inside the shared L2).

    Kernel characters:
    - [doall_dense]: affine elementwise loop — provable DOALL.
    - [doall_indirect]: permutation-indexed loop — statistical DOALL
      (speculative, runs under TM).
    - [doall_reduce]: reduction loop — DOALL via accumulator expansion.
    - [ilp_wide]: per-iteration scalar recurrence feeding a wide
      independent expression tree — coupled-mode ILP is the only fit
      (cross-iteration scalar kills DOALL, the single SCC kills DSWP,
      resident arrays keep misses low). The Fig. 9 shape.
    - [strands_streams]: do-while over multiple L1-missing streams whose
      values merge into the loop condition — fine-grain strands with
      memory-level parallelism. The Fig. 8 (gzip) shape.
    - [dswp_pipe]: pointer-style recurrence stage feeding heavy dependent
      work — decoupled software pipelining.
    - [seq_chase]: serial pointer chase — no exploitable parallelism. *)

type b := Voltron_ir.Builder.t

val doall_dense : b -> name:string -> n:int -> work:int -> seed:int -> unit
val doall_indirect : b -> name:string -> n:int -> work:int -> seed:int -> unit
val doall_reduce : b -> name:string -> n:int -> seed:int -> unit
val doall_rmw : b -> name:string -> n:int -> conflicts:int -> seed:int -> unit
(** Read-modify-write scatter; [conflicts] iterations collide on one cell
    (TM mis-speculation ablation — see implementation comment). *)

val doall_window : b -> name:string -> n:int -> work:int -> seed:int -> unit
(** Double-buffered masked window (gsm long-term-predictor shape): writes
    [hist\[i\]], reads [hist\[half + (i land 255)\]]. The masked read is
    opaque to the affine test (statistical DOALL under TM); the abstract
    interpreter proves the halves disjoint, upgrading the loop to a
    proven, non-speculative DOALL — the sharpened-oracle showcase. *)

val ilp_wide : b -> name:string -> n:int -> taps:int -> seed:int -> unit
val strands_streams : b -> name:string -> n:int -> streams:int -> seed:int -> unit

val strands_compare : b -> name:string -> n:int -> seed:int -> unit
(** Gzip-style do-while compare loop over two missy streams: the exit
    predicate crosses cores every iteration, so fine-grain TLP gains are
    modest and the Fig. 12 predicate-receive stalls appear. *)

val dswp_pipe : b -> name:string -> n:int -> work:int -> seed:int -> unit
val seq_chase : b -> name:string -> n:int -> seed:int -> unit

(** {1 Paper micro-examples} *)

val gsm_llp_region : b -> n:int -> unit
(** Fig. 7: [uf\[i\] = u\[i\]; rpf\[i\] = rp\[i\] * scalef] — DOALL
    (paper: 1.9x on 2 cores; the 8-element loop is scaled by [n]). *)

val gzip_strands_region : b -> n:int -> unit
(** Fig. 8: the gzip longest-match do-while comparing [scan] and [match]
    words — strands (paper: 1.2x on 2 cores). *)

val gsm_ilp_region : b -> n:int -> unit
(** Fig. 9: the gsm short-term filter with saturating multiplies and a
    loop-carried [v\[i\]] recurrence — coupled ILP (paper: 1.78x on 2
    cores). *)
