module B = Voltron_ir.Builder

type mix = {
  ilp : int;
  tlp : int;
  llp : int;
  seq : int;
}

type benchmark = {
  bench_name : string;
  bench_mix : mix;
  build : ?scale:float -> unit -> Voltron_ir.Hir.program;
}

(* Target serial execution time per benchmark, in cycles; each region gets
   iterations = share * budget / per-iteration cost, so the mix describes
   shares of serial *time* and regions run long enough to amortise cold
   misses and region-entry overhead. *)
let budget = 120_000

let scaled scale n = max 16 (int_of_float (float_of_int n *. scale))

(* Which TLP flavour a benchmark leans on: counted multi-stream strands,
   pointer-chasing pipelines, or a mix of strands with a gzip-style
   do-while compare loop (whose cross-core exit predicate produces the
   Fig. 12 predicate-receive stalls). *)
type tlp_kind = Strands | Pipe | Mixed

let build_mixed ~name ~mix ~tlp_kind ~llp_kind ~seed ?(scale = 1.0) () =
  let b = B.create name in
  let part pct cost = scaled scale (budget * pct / 100 / cost) in
  let seed = ref seed in
  let next_seed () =
    incr seed;
    !seed * 7919
  in
  (* Region order mirrors a typical benchmark: setup, kernel loops, then
     output. Emit larger character classes as two regions for variety. *)
  let emit_ilp n tag =
    if n > 0 then Kernels.ilp_wide b ~name:(name ^ "_ilp" ^ tag) ~n ~taps:6 ~seed:(next_seed ())
  in
  let emit_tlp n tag =
    if n > 0 then
      match tlp_kind with
      | Strands ->
        Kernels.strands_streams b ~name:(name ^ "_tlp" ^ tag) ~n ~streams:3
          ~seed:(next_seed ())
      | Pipe -> Kernels.dswp_pipe b ~name:(name ^ "_tlp" ^ tag) ~n ~work:6 ~seed:(next_seed ())
      | Mixed ->
        Kernels.strands_streams b ~name:(name ^ "_tlp" ^ tag) ~n:(n / 2)
          ~streams:3 ~seed:(next_seed ());
        Kernels.strands_compare b
          ~name:(name ^ "_tlpc" ^ tag)
          ~n:(n / 3) ~seed:(next_seed ())
  in
  let emit_llp n tag =
    if n > 0 then
      match llp_kind with
      | `Dense -> Kernels.doall_dense b ~name:(name ^ "_llp" ^ tag) ~n ~work:4 ~seed:(next_seed ())
      | `Indirect ->
        Kernels.doall_indirect b ~name:(name ^ "_llp" ^ tag) ~n ~work:3 ~seed:(next_seed ())
      | `Reduce -> Kernels.doall_reduce b ~name:(name ^ "_llp" ^ tag) ~n ~seed:(next_seed ())
      | `Window ->
        Kernels.doall_window b ~name:(name ^ "_llp" ^ tag) ~n ~work:4 ~seed:(next_seed ())
  in
  let emit_seq n tag =
    if n > 0 then Kernels.seq_chase b ~name:(name ^ "_seq" ^ tag) ~n ~seed:(next_seed ())
  in
  (* Divisors approximate serial cycles per iteration (ops + expected miss
     stalls), so each class's share of serial time tracks the mix. *)
  let ilp_n = part mix.ilp 41 in
  let tlp_n =
    part mix.tlp (match tlp_kind with Strands -> 47 | Pipe -> 45 | Mixed -> 40)
  in
  let llp_n =
    part mix.llp
      (match llp_kind with `Dense -> 13 | `Indirect -> 14 | `Reduce -> 7 | `Window -> 14)
  in
  let seq_n = part mix.seq 5 in
  if mix.ilp >= 40 then begin
    emit_ilp (ilp_n / 2) "a";
    emit_ilp (ilp_n - (ilp_n / 2)) "b"
  end
  else emit_ilp ilp_n "a";
  if mix.llp >= 40 then begin
    emit_llp (llp_n / 2) "a";
    emit_llp (llp_n - (llp_n / 2)) "b"
  end
  else emit_llp llp_n "a";
  if mix.tlp >= 40 then begin
    emit_tlp (tlp_n / 2) "a";
    emit_tlp (tlp_n - (tlp_n / 2)) "b"
  end
  else emit_tlp tlp_n "a";
  emit_seq seq_n "a";
  B.finish b

let def name mix tlp_kind llp_kind seed =
  {
    bench_name = name;
    bench_mix = mix;
    build = (fun ?scale () -> build_mixed ~name ~mix ~tlp_kind ~llp_kind ~seed ?scale ());
  }

let m ilp tlp llp seq = { ilp; tlp; llp; seq }

(* Mix percentages approximate the per-benchmark breakdown of the paper's
   Fig. 3 (ILP avg 30%, fine-grain TLP 32%, LLP 31%, single-core 7%). *)
let all =
  [
    def "052.alvinn" (m 20 15 60 5) Pipe `Dense 11;
    def "056.ear" (m 25 15 55 5) Pipe `Dense 12;
    def "132.ijpeg" (m 40 20 35 5) Strands `Dense 13;
    def "164.gzip" (m 25 55 5 15) Mixed `Indirect 14;
    def "171.swim" (m 10 10 75 5) Pipe `Dense 15;
    def "172.mgrid" (m 15 10 70 5) Pipe `Dense 16;
    def "175.vpr" (m 35 30 20 15) Mixed `Indirect 17;
    def "177.mesa" (m 55 20 15 10) Pipe `Dense 18;
    def "179.art" (m 15 60 20 5) Strands `Dense 19;
    def "183.equake" (m 20 45 30 5) Pipe `Indirect 20;
    def "197.parser" (m 30 25 10 35) Mixed `Indirect 21;
    def "255.vortex" (m 40 30 10 20) Mixed `Indirect 22;
    def "256.bzip2" (m 30 50 10 10) Mixed `Reduce 23;
    def "cjpeg" (m 35 15 40 10) Strands `Dense 24;
    def "djpeg" (m 45 15 35 5) Strands `Dense 25;
    def "epic" (m 15 65 15 5) Pipe `Dense 26;
    def "g721decode" (m 60 20 10 10) Pipe `Reduce 27;
    def "g721encode" (m 60 20 10 10) Pipe `Reduce 28;
    (* The gsm pair carries the long-term-predictor window kernel: its
       masked history reads are the region the sharpened dependence oracle
       upgrades from speculative to proven DOALL. *)
    def "gsmdecode" (m 45 15 35 5) Pipe `Window 29;
    def "gsmencode" (m 50 15 30 5) Pipe `Window 30;
    def "mpeg2dec" (m 35 25 35 5) Strands `Dense 31;
    def "mpeg2enc" (m 30 30 35 5) Pipe `Dense 32;
    def "rawcaudio" (m 65 15 10 10) Pipe `Reduce 33;
    def "rawdaudio" (m 65 15 10 10) Pipe `Reduce 34;
    def "unepic" (m 30 20 45 5) Strands `Dense 35;
  ]

let by_name name =
  match List.find_opt (fun b -> b.bench_name = name) all with
  | Some b -> b
  | None -> raise Not_found

let micro_gsm_llp ?(scale = 1.0) () =
  let b = B.create "micro_gsm_llp" in
  Kernels.gsm_llp_region b ~n:(scaled scale 1024);
  B.finish b

let micro_gzip_strands ?(scale = 1.0) () =
  let b = B.create "micro_gzip_strands" in
  Kernels.gzip_strands_region b ~n:(scaled scale 512);
  B.finish b

let micro_gsm_ilp ?(scale = 1.0) () =
  let b = B.create "micro_gsm_ilp" in
  Kernels.gsm_ilp_region b ~n:(scaled scale 1024);
  B.finish b
