(* Linear counting forms: const + sum of coeff * symbolic variable.
   Variables are strings; a product of variables is canonicalised into a
   single '*'-joined sorted name, so forms stay closed under
   multiplication and structural equality is semantic equality. *)

type t = {
  const : int;
  terms : (string * int) list;  (* sorted by variable, no zero coeffs *)
}

let normalize terms =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, k) ->
      Hashtbl.replace tbl v (k + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    terms;
  Hashtbl.fold (fun v k acc -> if k = 0 then acc else (v, k) :: acc) tbl []
  |> List.sort compare

let zero = { const = 0; terms = [] }
let const_ c = { const = c; terms = [] }
let var_ v = { const = 0; terms = [ (v, 1) ] }
let is_const t = if t.terms = [] then Some t.const else None
let equal a b = a.const = b.const && a.terms = b.terms

let add a b = { const = a.const + b.const; terms = normalize (a.terms @ b.terms) }

let add_const t c = { t with const = t.const + c }

let scale k t =
  if k = 0 then zero
  else { const = k * t.const; terms = List.map (fun (v, c) -> (v, k * c)) t.terms }

(* Canonical name of a product of (possibly already composite) variables. *)
let prod_name v w =
  String.concat "*"
    (List.sort compare (String.split_on_char '*' v @ String.split_on_char '*' w))

let mul_var v t =
  let terms =
    (if t.const = 0 then [] else [ (v, t.const) ])
    @ List.map (fun (w, k) -> (prod_name v w, k)) t.terms
  in
  { const = 0; terms = normalize terms }

(* Pointwise lower bound: min of the constants and of each variable's
   coefficient (absent = 0). For the checker's counts — where every term
   is a nonnegative number of messages — this is the part of two joining
   paths' counts that both are guaranteed to have. *)
let min_ a b =
  let coeff v t = Option.value ~default:0 (List.assoc_opt v t.terms) in
  let vars = List.sort_uniq compare (List.map fst (a.terms @ b.terms)) in
  {
    const = min a.const b.const;
    terms =
      List.filter_map
        (fun v ->
          let k = min (coeff v a) (coeff v b) in
          if k = 0 then None else Some (v, k))
        vars;
  }

let mul a b =
  List.fold_left
    (fun acc (v, k) -> add acc (scale k (mul_var v b)))
    (scale a.const b) a.terms

let pp ppf t =
  match (t.const, t.terms) with
  | c, [] -> Format.pp_print_int ppf c
  | c, terms ->
    let pp_term ~first ppf (v, k) =
      if k < 0 then Format.fprintf ppf " - "
      else if not first then Format.fprintf ppf " + ";
      let k = abs k in
      if k = 1 then Format.pp_print_string ppf v
      else Format.fprintf ppf "%d*%s" k v
    in
    let first = c = 0 in
    if not first then Format.pp_print_int ppf c;
    List.iteri
      (fun i term -> pp_term ~first:(first && i = 0) ppf term)
      terms

let to_string t = Format.asprintf "%a" pp t
