(** Per-core control-flow reconstruction from a compiled {!Voltron_isa.Image}.

    The checker deliberately rebuilds basic blocks from the bundle stream —
    the thing the machine will actually fetch — instead of trusting any
    compiler-side IR. Leaders are address 0, every label, and every address
    following a control bundle. BR targets are resolved by the same
    PBR-pairing discipline codegen emits (last PBR into the branch-target
    register wins); a BR that cannot be resolved that way is kept as an
    {!terminator.Unresolved} terminator and noted in {!t.problems}, so
    downstream passes under-approximate rather than guess. *)

type terminator =
  | Fall
  | Jump of { label : Voltron_isa.Inst.label; target : int }
      (** unconditional branch; [target] is a block index *)
  | Cond of { label : Voltron_isa.Inst.label; target : int }
      (** taken goes to [target], not-taken falls through *)
  | Barrier of Voltron_isa.Inst.mode
      (** MODE_SWITCH; falls through once every core reaches it *)
  | Stop_halt
  | Stop_sleep
  | Unresolved

type block = {
  b_index : int;
  b_start : int;  (** first bundle address *)
  b_stop : int;  (** one past the last bundle address *)
  b_labels : Voltron_isa.Inst.label list;  (** labels placed at [b_start] *)
  b_term : terminator;
}

type t = {
  core : int;
  image : Voltron_isa.Image.t;
  blocks : block array;
  block_of_addr : int array;  (** bundle address -> block index *)
  problems : string list;  (** malformed-code notes found while building *)
}

val build : core:int -> Voltron_isa.Image.t -> t

val n_blocks : t -> int

val successors : t -> int -> int list
(** Static successor block indices; empty for halting/sleeping blocks and
    for unresolved branches. *)

val labeled_successors : t -> int -> (int * Voltron_isa.Inst.label option) list
(** Like {!successors}, but each branch edge carries the label the branch
    names ([None] for fall-through edges). Two back edges into the same
    block under different labels are distinct loops whose headers happen
    to share a block — the label is what tells them apart. *)

val block_starting_at : t -> int -> int option
(** The block whose first bundle sits at this address, if any — used to
    find SPAWN entry points. *)

val ops : t -> block -> (int * int * Voltron_isa.Inst.t) list
(** The block's instructions in issue order as
    [(bundle address, slot within bundle, instruction)]. *)

val reachable : t -> int -> int list
(** Block indices reachable from the given entry block, sorted. *)
