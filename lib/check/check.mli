(** Static cross-core checker for compiled Voltron programs.

    Runs after codegen, over the per-core images the machine will actually
    execute, and returns typed diagnostics with core/address locations.
    Four passes:

    - {b channel balance}: abstract-interprets each core's reconstructed
      control flow, counting queue messages per (src, dst) channel as
      symbolic linear forms over loop trip counts (named after shared
      labels) — on every path, SENDs into a channel must equal RECVs out
      of it, or a core waits forever.
    - {b barrier alignment}: every core reaches the same MODE_SWITCH
      sequence the same path-independent number of times with agreeing
      target modes; the machine's mode barrier requires {e every} core.
    - {b coupled-mode PUT/GET pairing}: lock-step blocks must have equal
      per-core schedules with each PUT paired to its neighbour's GET in
      the same cycle slot, and GETBs must not outrun their broadcast.
    - {b deadlock and races}: a cross-core wait-for graph over SENDs,
      RECVs, SPAWNs and barriers is checked for cycles (Tarjan SCC), and
      statically-addressed memory accesses on concurrent strands with no
      ordering edge between them are reported as data races; partition
      summaries recorded by codegen re-verify that possibly-aliasing
      operations were never split across cores in decoupled mode.

    The checker is sound about what it {e reports} (every error describes
    a failure the machine would hit) but deliberately incomplete:
    unresolvable branches, register-indirect addresses and data-dependent
    spawn counts degrade to warnings, never to guesses. *)

(** {1 Diagnostics} *)

type loc = { l_core : int; l_addr : int }
(** A bundle address on one core's image. *)

type severity = Error | Warning

type kind =
  | Unbalanced_channel of {
      ch_src : int;
      ch_dst : int;
      sends : Lin.t;
      recvs : Lin.t;
    }
  | Net_misuse of Voltron_net.Operand_network.error
      (** a PUT/SEND that is statically certain to fail, rendered through
          the same printer the runtime watchdog uses *)
  | Put_get_mismatch of { pg_label : string; pg_slot : int; detail : string }
  | Coupled_length_mismatch of {
      cl_label : string;
      lengths : (int * int) list;  (** (core, bundles) *)
    }
  | Barrier_count_mismatch of {
      bc_mode : Voltron_isa.Inst.mode;
      counts : (int * Lin.t) list;  (** (core, switches executed) *)
    }
  | Misaligned_barrier of {
      ordinal : int;  (** 1-based barrier index *)
      modes : (int * Voltron_isa.Inst.mode) list;  (** per-core target *)
    }
  | Potential_deadlock of { edges : (loc * loc * string) list }
      (** wait-for cycle; each edge reads "fst waits on snd" *)
  | Data_race of {
      ra_addr : int;  (** memory word both strands touch *)
      writer : loc;
      other : loc;
      other_writes : bool;
    }
  | Partition_race of {
      region : string;
      core_a : int;
      core_b : int;
      detail : string;
    }
  | Malformed of string

type diag = { d_severity : severity; d_loc : loc option; d_kind : kind }

val pp_diag : Format.formatter -> diag -> unit
val diag_to_string : diag -> string

val errors : diag list -> diag list
(** Just the [Error]-severity diagnostics. *)

val has_errors : diag list -> bool

exception Failed of diag list
(** Raised by the compiler driver's post-codegen gate when the checker
    finds errors; carries the full diagnostic list (warnings included). *)

(** {1 Partition-side region summaries}

    Recorded by codegen while it still holds the dependence graph and the
    memory-dependence analysis, and handed to the checker so the
    decoupled-mode race pass can re-verify the partitioners' contract
    without re-deriving compiler state. *)

type region_access = {
  ma_id : int;  (** dependence-graph op index, identifies the op *)
  ma_core : int;  (** assigned core; [-1] for replicated ops *)
  ma_write : bool;
  ma_text : string;  (** disassembly, for the diagnostic *)
}

type region_info = {
  ri_name : string;
  ri_decoupled : bool;
  ri_accesses : region_access list;
  ri_may_alias : int -> int -> bool;
      (** [Memdep.ever_alias] between two accesses, by [ma_id] *)
}

(** {1 Entry point} *)

val check_program :
  ?infos:region_info list ->
  Voltron_machine.Config.t ->
  Voltron_isa.Program.t ->
  diag list
(** Run all passes; diagnostics come back in pass order. An empty list
    (or one with only warnings, see {!has_errors}) means the program
    passed. *)
