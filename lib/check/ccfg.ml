(* Per-core control-flow reconstruction from a compiled Image.

   The checker works on what will actually execute, so it rebuilds basic
   blocks from the bundle stream rather than trusting compiler IR: leaders
   are address 0, every label, and every address following a control
   bundle (branch, HALT, SLEEP, MODE_SWITCH). Branch targets are resolved
   by a linear scan that tracks the last PBR into each branch-target
   register — exactly the pairing codegen emits; a BR whose btr contents
   cannot be pinned down is kept with an [Unresolved] terminator and
   reported as a problem so downstream passes under-approximate instead of
   guessing. *)

module Inst = Voltron_isa.Inst
module Image = Voltron_isa.Image
module Bundle = Voltron_isa.Bundle

type terminator =
  | Fall
  | Jump of { label : Inst.label; target : int }
      (** unconditional branch; [target] is a block index *)
  | Cond of { label : Inst.label; target : int }
      (** taken goes to [target], not-taken falls through *)
  | Barrier of Inst.mode  (** MODE_SWITCH; falls through once released *)
  | Stop_halt
  | Stop_sleep
  | Unresolved  (** a BR whose target we could not resolve statically *)

type block = {
  b_index : int;
  b_start : int;  (** first bundle address *)
  b_stop : int;  (** one past the last bundle address *)
  b_labels : Inst.label list;  (** labels placed at [b_start] *)
  b_term : terminator;
}

type t = {
  core : int;
  image : Image.t;
  blocks : block array;
  block_of_addr : int array;
  problems : string list;  (** malformed-code notes found while building *)
}


let build ~core image =
  let n = Image.length image in
  if n = 0 then
    { core; image; blocks = [||]; block_of_addr = [||]; problems = [] }
  else begin
    let problems = ref [] in
    let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
    (* Resolve each BR's target label by tracking the last PBR per btr. *)
    let br_label = Array.make n None in
    let btrs = Hashtbl.create 4 in
    for addr = 0 to n - 1 do
      Array.iter
        (fun (i : Inst.t) ->
          match i with
          | Inst.Pbr { btr; target } -> Hashtbl.replace btrs btr target
          | Inst.Br { btr; _ } -> br_label.(addr) <- Hashtbl.find_opt btrs btr
          | _ -> ())
        (Image.decoded image addr).Image.d_ops
    done;
    (* Leaders: entry, every label, every post-control address. *)
    let leader = Array.make n false in
    leader.(0) <- true;
    for addr = 0 to n - 1 do
      if Image.labels_at image addr <> [] then leader.(addr) <- true
    done;
    for addr = 0 to n - 2 do
      if (Image.decoded image addr).Image.d_ends_block then leader.(addr + 1) <- true
    done;
    let starts =
      Array.to_list (Array.init n (fun a -> a)) |> List.filter (fun a -> leader.(a))
    in
    let block_of_addr = Array.make n 0 in
    let n_blocks = List.length starts in
    let addr_to_index = Hashtbl.create 16 in
    List.iteri (fun i a -> Hashtbl.replace addr_to_index a i) starts;
    let blocks =
      List.mapi
        (fun i start ->
          let stop =
            match List.nth_opt starts (i + 1) with Some s -> s | None -> n
          in
          for a = start to stop - 1 do
            block_of_addr.(a) <- i
          done;
          let last = (Image.decoded image (stop - 1)).Image.d_ops in
          let resolve_target label =
            match Hashtbl.find_opt addr_to_index (Image.resolve image label) with
            | Some idx -> Some idx
            | None ->
              problem "core %d: branch at %d targets mid-block label %s" core
                (stop - 1) label;
              None
            | exception Not_found ->
              problem "core %d: branch at %d targets unknown label %s" core
                (stop - 1) label;
              None
          in
          let term =
            let br =
              Array.find_opt
                (fun (i : Inst.t) -> match i with Inst.Br _ -> true | _ -> false)
                last
            in
            match br with
            | Some (Inst.Br { pred; _ }) -> (
              match br_label.(stop - 1) with
              | None ->
                problem "core %d: branch at %d has no preceding PBR" core (stop - 1);
                Unresolved
              | Some label -> (
                match resolve_target label with
                | None -> Unresolved
                | Some target ->
                  if pred = None then Jump { label; target }
                  else Cond { label; target }))
            | Some _ | None ->
              if Array.exists (fun i -> i = Inst.Halt) last then Stop_halt
              else if Array.exists (fun i -> i = Inst.Sleep) last then Stop_sleep
              else (
                match
                  Array.find_opt
                    (fun (i : Inst.t) ->
                      match i with Inst.Mode_switch _ -> true | _ -> false)
                    last
                with
                | Some (Inst.Mode_switch m) -> Barrier m
                | _ ->
                  if stop = n then
                    problem "core %d: code at %d falls off the end of the image"
                      core (n - 1);
                  Fall)
          in
          {
            b_index = i;
            b_start = start;
            b_stop = stop;
            b_labels = Image.labels_at image start;
            b_term = term;
          })
        starts
      |> Array.of_list
    in
    assert (Array.length blocks = n_blocks);
    { core; image; blocks; block_of_addr; problems = List.rev !problems }
  end

let n_blocks t = Array.length t.blocks

let successors t i =
  let b = t.blocks.(i) in
  let fall = if i + 1 < Array.length t.blocks then [ i + 1 ] else [] in
  match b.b_term with
  | Fall | Barrier _ -> fall
  | Jump { target; _ } -> [ target ]
  | Cond { target; _ } -> target :: fall
  | Stop_halt | Stop_sleep | Unresolved -> []

let labeled_successors t i =
  let b = t.blocks.(i) in
  let fall =
    if i + 1 < Array.length t.blocks then [ (i + 1, None) ] else []
  in
  match b.b_term with
  | Fall | Barrier _ -> fall
  | Jump { target; label } -> [ (target, Some label) ]
  | Cond { target; label } -> (target, Some label) :: fall
  | Stop_halt | Stop_sleep | Unresolved -> []

let block_starting_at t addr =
  if addr < 0 || addr >= Array.length t.block_of_addr then None
  else
    let i = t.block_of_addr.(addr) in
    if t.blocks.(i).b_start = addr then Some i else None

(* Flattened (address, slot-in-bundle, instruction) stream of a block, in
   issue order. *)
let ops t (b : block) =
  let out = ref [] in
  for addr = b.b_stop - 1 downto b.b_start do
    let ops = (Image.decoded t.image addr).Image.d_ops in
    for j = Array.length ops - 1 downto 0 do
      out := (addr, j, ops.(j)) :: !out
    done
  done;
  !out

(* Blocks reachable from [entry], as a sorted index list. *)
let reachable t entry =
  let seen = Hashtbl.create 16 in
  let rec go i =
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.replace seen i ();
      List.iter go (successors t i)
    end
  in
  if entry < Array.length t.blocks then go entry;
  Hashtbl.fold (fun i () acc -> i :: acc) seen [] |> List.sort compare
