(** Symbolic linear counting forms for the static checker.

    A form is [const + sum of coeff * var] over named symbolic variables.
    The checker uses variables for unknown-at-compile-time quantities that
    are nonetheless {e shared across cores} — loop trip counts named after
    the loop-header label ("iter:L3"), path-merge unknowns named after the
    join label ("phi:L7:send:0->1") — so two cores that communicate the
    same amount per iteration produce structurally equal forms even though
    neither count is a constant.

    Forms are closed under addition and multiplication: a product of
    variables is folded into a single canonical '*'-joined name, which
    makes structural equality coincide with semantic equality of the
    polynomial. *)

type t

val zero : t
val const_ : int -> t
val var_ : string -> t

val is_const : t -> int option
(** [Some c] when the form has no symbolic part. *)

val equal : t -> t -> bool

val add : t -> t -> t
val add_const : t -> int -> t
val scale : int -> t -> t

val min_ : t -> t -> t
(** Pointwise lower bound (min of constants and of each coefficient,
    absent terms counting as 0) — for nonnegative counts, the part both
    forms are guaranteed to share. *)

val mul_var : string -> t -> t
(** Multiply a whole form by one symbolic variable (e.g. a trip count). *)

val mul : t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
