(* Static cross-core checker for compiled Voltron programs.

   Four passes over the per-core images, each proving (or refuting) one
   invariant the runtime otherwise discovers only by deadlocking:

   - channel balance: on every path, the number of SENDs core [a] issues
     to core [b] equals the number of RECVs core [b] posts against [a].
     Counts are symbolic linear forms over loop trip counts named after
     shared labels, so a loop that sends once per iteration balances a
     loop that receives once per iteration without knowing the trip count.
   - barrier alignment: every core executes the same MODE_SWITCH sequence
     the same (path-independent) number of times, with agreeing target
     modes — the machine's mode barrier requires every core, including
     ones that were never spawned.
   - coupled-mode PUT/GET pairing: inside lock-step regions, each PUT has
     its GET on the right neighbour in the same cycle slot (anything else
     is a stale-latch failure or a lock-step stall deadlock at runtime).
   - deadlock + races: a cross-core wait-for graph over queue operations,
     spawns and barriers is checked for cycles, and shared-memory accesses
     on concurrent strands with no ordering edge between them are flagged.

   Soundness posture: the checker never trusts compiler IR — it rebuilds
   control flow from the bundles ({!Ccfg}) — but it is deliberately
   incomplete: unresolvable branches, register-indirect addresses and
   data-dependent spawn counts degrade to warnings rather than guesses. *)

module Inst = Voltron_isa.Inst
module Image = Voltron_isa.Image
module Program = Voltron_isa.Program
module Net = Voltron_net.Operand_network
module Mesh = Voltron_net.Mesh
module Config = Voltron_machine.Config
module Digraph = Voltron_util.Digraph

(* ------------------------------------------------------------------ *)
(* Diagnostics *)

type loc = { l_core : int; l_addr : int }

type severity = Error | Warning

type kind =
  | Unbalanced_channel of {
      ch_src : int;
      ch_dst : int;
      sends : Lin.t;
      recvs : Lin.t;
    }
  | Net_misuse of Net.error
  | Put_get_mismatch of { pg_label : string; pg_slot : int; detail : string }
  | Coupled_length_mismatch of {
      cl_label : string;
      lengths : (int * int) list;  (** (core, bundles) *)
    }
  | Barrier_count_mismatch of {
      bc_mode : Inst.mode;
      counts : (int * Lin.t) list;  (** (core, switches executed) *)
    }
  | Misaligned_barrier of {
      ordinal : int;  (** 1-based barrier index *)
      modes : (int * Inst.mode) list;  (** per-core target mode *)
    }
  | Potential_deadlock of { edges : (loc * loc * string) list }
      (** wait-for cycle; each edge reads "fst waits on snd" *)
  | Data_race of {
      ra_addr : int;  (** memory word both strands touch *)
      writer : loc;
      other : loc;
      other_writes : bool;
    }
  | Partition_race of {
      region : string;
      core_a : int;
      core_b : int;
      detail : string;
    }
  | Malformed of string

type diag = { d_severity : severity; d_loc : loc option; d_kind : kind }

let pp_mode = Inst.pp_mode

let dir_name = function
  | Inst.North -> "n"
  | Inst.South -> "s"
  | Inst.East -> "e"
  | Inst.West -> "w"

let pp_kind ppf = function
  | Unbalanced_channel { ch_src; ch_dst; sends; recvs } ->
    Format.fprintf ppf
      "unbalanced channel %d->%d: core %d sends %a message(s) but core %d \
       receives %a"
      ch_src ch_dst ch_src Lin.pp sends ch_dst Lin.pp recvs
  | Net_misuse e -> Format.fprintf ppf "statically certain failure: %a" Net.pp_error e
  | Put_get_mismatch { pg_label; pg_slot; detail } ->
    Format.fprintf ppf "coupled block %s, cycle %d: %s" pg_label pg_slot detail
  | Coupled_length_mismatch { cl_label; lengths } ->
    Format.fprintf ppf
      "coupled block %s has different lengths across cores: %a (lock-step \
       execution requires identical schedules)"
      cl_label
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (c, l) -> Format.fprintf ppf "core %d: %d" c l))
      lengths
  | Barrier_count_mismatch { bc_mode; counts } ->
    Format.fprintf ppf
      "MODE_SWITCH %a barrier reached a different number of times per core \
       (%a); the mode barrier requires every core"
      pp_mode bc_mode
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (c, n) -> Format.fprintf ppf "core %d: %a" c Lin.pp n))
      counts
  | Misaligned_barrier { ordinal; modes } ->
    Format.fprintf ppf
      "MODE_SWITCH barrier %d has disagreeing target modes (%a)" ordinal
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (c, m) -> Format.fprintf ppf "core %d: %a" c pp_mode m))
      modes
  | Potential_deadlock { edges } ->
    Format.fprintf ppf "potential deadlock, wait-for cycle:";
    List.iter
      (fun (a, b, why) ->
        Format.fprintf ppf "@.    core %d @%d waits on core %d @%d (%s)"
          a.l_core a.l_addr b.l_core b.l_addr why)
      edges
  | Data_race { ra_addr; writer; other; other_writes } ->
    Format.fprintf ppf
      "data race on memory word %d: core %d @%d writes while concurrent core \
       %d @%d %s it, with no ordering edge between them"
      ra_addr writer.l_core writer.l_addr other.l_core other.l_addr
      (if other_writes then "also writes" else "reads")
  | Partition_race { region; core_a; core_b; detail } ->
    Format.fprintf ppf
      "region %s: possibly-aliasing memory operations split across cores %d \
       and %d in decoupled mode: %s"
      region core_a core_b detail
  | Malformed s -> Format.pp_print_string ppf s

let pp_diag ppf d =
  let sev = match d.d_severity with Error -> "error" | Warning -> "warning" in
  (match d.d_loc with
  | Some l -> Format.fprintf ppf "%s [core %d @%d]: " sev l.l_core l.l_addr
  | None -> Format.fprintf ppf "%s: " sev);
  pp_kind ppf d.d_kind

let diag_to_string d = Format.asprintf "%a" pp_diag d

let errors diags = List.filter (fun d -> d.d_severity = Error) diags

let has_errors diags = errors diags <> []

exception Failed of diag list

(* ------------------------------------------------------------------ *)
(* Partition-side region summary (recorded by Codegen) *)

type region_access = {
  ma_id : int;  (** dependence-graph op index, identifies the op *)
  ma_core : int;
  ma_write : bool;
  ma_text : string;  (** disassembly, for the diagnostic *)
}

type region_info = {
  ri_name : string;
  ri_decoupled : bool;
  ri_accesses : region_access list;
  ri_may_alias : int -> int -> bool;
      (** [Memdep.ever_alias] between two accesses, by [ma_id] *)
}

(* ------------------------------------------------------------------ *)
(* Symbolic counting over one core's control flow *)

type ckey =
  | K_send of int * int  (** src core, dst core *)
  | K_recv of int * int  (** sender, receiving core *)
  | K_spawn of int * string  (** target core, entry label *)
  | K_barrier of Inst.mode

module CMap = Map.Make (struct
  type t = ckey

  let compare = compare
end)

type counts = Lin.t CMap.t

let key_name = function
  | K_send (a, b) -> Printf.sprintf "send:%d->%d" a b
  | K_recv (a, b) -> Printf.sprintf "recv:%d->%d" a b
  | K_spawn (w, e) -> Printf.sprintf "spawn:%d:%s" w e
  | K_barrier Inst.Coupled -> "bar:coupled"
  | K_barrier Inst.Decoupled -> "bar:decoupled"

let count_get m k = Option.value (CMap.find_opt k m) ~default:Lin.zero

let counts_add a b =
  CMap.union (fun _ x y -> Some (Lin.add x y)) a b

let counts_mul_var v m = CMap.map (Lin.mul_var v) m

(* Phi variables are named by the *channel*, not by the op kind: the
   sender's unknown at a join must be the same variable as the receiver's
   unknown at the matching join on the other core, or balanced
   path-dependent traffic could never check out. *)
let phi_key_name = function
  | K_send (a, b) | K_recv (a, b) -> Printf.sprintf "chan:%d->%d" a b
  | k -> key_name k

(* Path-merge: where the joining paths' counts disagree, keep the part
   both guarantee ({!Lin.min_}) and stand for the divergence with a fresh
   symbolic unknown named after the join point — shared across cores, so
   the same divergence on the peer core produces the same variable while
   everything accumulated before the divergence still counts. *)
let counts_meet ~tag a b =
  CMap.merge
    (fun k x y ->
      let vx = Option.value x ~default:Lin.zero in
      let vy = Option.value y ~default:Lin.zero in
      if Lin.equal vx vy then Some vx
      else
        Some
          (Lin.add (Lin.min_ vx vy)
             (Lin.var_ (Printf.sprintf "phi:%s:%s" tag (phi_key_name k)))))
    a b

(* Stable, cross-core-consistent name for a block. Region code is
   replicated with identical labels on every participant core, but a block
   can also carry core-private labels (a worker's SPAWN entry is placed at
   the same address as the first region block), so prefer a label the
   [shared] predicate accepts — one that exists on several cores —
   falling back to any label, then to a core-local address tag. [canon]
   maps the chosen label to its co-residence class representative (see
   {!label_canon}), so cores whose schedules collapse labels onto one
   block still agree with peers that keep them on separate blocks. *)
let block_tag ~shared ~canon (g : Ccfg.t) bi =
  let labels = g.Ccfg.blocks.(bi).Ccfg.b_labels in
  match List.find_opt shared labels with
  | Some l -> canon l
  | None -> (
    match labels with
    | l :: _ -> canon l
    | [] -> Printf.sprintf "@c%d:%d" g.Ccfg.core bi)

let block_delta core (g : Ccfg.t) bi =
  List.fold_left
    (fun acc (_, _, (i : Inst.t)) ->
      let bump k = CMap.update k (fun v -> Some (Lin.add_const (Option.value v ~default:Lin.zero) 1)) acc in
      match i with
      | Inst.Send { target; _ } -> bump (K_send (core, target))
      | Inst.Recv { sender; _ } -> bump (K_recv (sender, core))
      | Inst.Spawn { target; entry } -> bump (K_spawn (target, entry))
      | Inst.Mode_switch m -> bump (K_barrier m)
      | _ -> acc)
    CMap.empty
    (Ccfg.ops g g.Ccfg.blocks.(bi))

type range_result = {
  rr_exits : (int * Inst.label option * counts) list;
      (** (target, edge label, state) for targets outside [lo, hi] *)
  rr_terminals : counts list;  (** states at HALT / SLEEP inside the range *)
  rr_backs : (Inst.label option * counts) list;
      (** meet of states flowing back to the entry, per back-edge label *)
}

(* A loop level: the label its back edge names, and the last source block
   of an edge under that label. Distinct labels into one header block are
   distinct nested loops — a core whose schedule leaves no ops between an
   outer and an inner loop header carries both labels on a single block,
   and only the edge labels recover the nest the peer cores still see as
   separate blocks. Innermost level = smallest back-edge source. *)
type level = Inst.label option * int

let add_level (levels : level list) lab src =
  match List.assoc_opt lab levels with
  | Some s -> (lab, max s src) :: List.remove_assoc lab levels
  | None -> (lab, src) :: levels

let sort_levels = List.sort (fun (_, a) (_, b) -> compare (a : int) b)

(* Retreating edges into [target] from blocks in [target..hi], grouped by
   edge label, innermost first. *)
let back_levels (g : Ccfg.t) ~hi target =
  let levels = ref [] in
  for j = target to min hi (Ccfg.n_blocks g - 1) do
    List.iter
      (fun (t, lab) -> if t = target then levels := add_level !levels lab j)
      (Ccfg.labeled_successors g j)
  done;
  sort_levels !levels

let split_last l =
  match List.rev l with
  | last :: rev_init -> (last, List.rev rev_init)
  | [] -> invalid_arg "split_last"

(* Cross-core-stable trip-variable tag for a loop level: the label the
   back edge names, when shared; the header block's tag otherwise. *)
let level_tag ~shared ~canon (g : Ccfg.t) bi ((lab, _) : level) =
  match lab with
  | Some l when shared l -> canon l
  | _ -> block_tag ~shared ~canon g bi

let meet_backs ~tag (backs : (Inst.label option * counts) list) =
  match List.map snd backs with
  | [] -> CMap.empty
  | first :: rest ->
    List.fold_left (fun acc st -> counts_meet ~tag acc st) first rest

(* Abstractly execute the contiguous block range [lo..hi] with the given
   entry state at [lo]. Natural loops appear as a header block with
   retreating edges from inside the range: the body is analysed once from
   a zero state to get its per-iteration delta, and the header's state
   gains [trip * delta] with a trip-count variable named after the label
   the back edge targets — shared across cores, so per-iteration-balanced
   communication cancels out even though the trip count is unknown.

   [absorb] lists the levels headed at [lo] itself that this call must
   treat as internal loops (innermost first): that is how a nest whose
   headers collapsed onto one block is unpicked, one level per recursion.
   Back edges into [lo] under any remaining label are the caller's
   concern, reported through [rr_backs]. *)
let rec analyze_range (g : Ccfg.t) ~shared ~canon ~delta ?(absorb = []) lo hi entry =
  let n = hi - lo + 1 in
  let in_state = Array.make n None in
  (* Loop levels per header strictly inside the range (the entry's own
     levels arrive via [absorb]). *)
  let levels_of = Array.make n [] in
  (* Labels of forward edges into each block: the branch skeleton is
     replicated across cores even when op placement differs, so a phi
     tag drawn from these is cross-core stable where the join block's
     own label list is not (labels collapse onto one block on a core
     whose schedule puts no ops between them). *)
  let fwd_labels = Array.make n [] in
  for j = lo to hi do
    List.iter
      (fun (t, lab) ->
        if t > lo && t <= j then
          levels_of.(t - lo) <- add_level levels_of.(t - lo) lab j
        else if t > j && t <= hi then
          match lab with
          | Some l when shared l ->
            (* Canonicalise before the lexicographic pick below: the max
               over raw names need not commute with [canon]. *)
            let l = canon l in
            if not (List.mem l fwd_labels.(t - lo)) then
              fwd_labels.(t - lo) <- l :: fwd_labels.(t - lo)
          | _ -> ())
      (Ccfg.labeled_successors g j)
  done;
  Array.iteri (fun k ls -> levels_of.(k) <- sort_levels ls) levels_of;
  let join_tag target =
    match List.sort (fun a b -> compare b a) fwd_labels.(target - lo) with
    | t :: _ -> t
    | [] -> block_tag ~shared ~canon g target
  in
  let exits = ref [] in
  let terminals = ref [] in
  let backs = ref [] in
  let merge target lab st =
    if target = lo then
      backs :=
        (match List.assoc_opt lab !backs with
        | Some old ->
          (lab, counts_meet ~tag:(block_tag ~shared ~canon g lo) old st)
          :: List.remove_assoc lab !backs
        | None -> (lab, st) :: !backs)
    else if target > hi || target < lo then exits := (target, lab, st) :: !exits
    else
      in_state.(target - lo) <-
        (match in_state.(target - lo) with
        | None -> Some st
        | Some old -> Some (counts_meet ~tag:(join_tag target) old st))
  in
  (* Run the loop nest headed at [bi] (levels innermost first): the inner
     levels are absorbed into the body analysis, the outermost level's
     per-iteration delta is multiplied by its trip variable, and the
     body's exits continue with the multiplied state. Returns the first
     block after the nest. *)
  let run_nest bi levels st =
    let ((_, sk) as outer), inner = split_last levels in
    let r = analyze_range g ~shared ~canon ~delta ~absorb:inner bi sk CMap.empty in
    let d = meet_backs ~tag:(block_tag ~shared ~canon g bi) r.rr_backs in
    let st' =
      counts_add st (counts_mul_var ("iter:" ^ level_tag ~shared ~canon g bi outer) d)
    in
    List.iter
      (fun t -> terminals := counts_add st' t :: !terminals)
      r.rr_terminals;
    List.iter (fun (tg, lab, rel) -> merge tg lab (counts_add st' rel)) r.rr_exits;
    sk + 1
  in
  let start =
    match absorb with
    | [] ->
      in_state.(0) <- Some entry;
      lo
    | levels -> run_nest lo levels entry
  in
  let i = ref start in
  while !i <= hi do
    let bi = !i in
    (match in_state.(bi - lo) with
    | None -> incr i  (* not reachable within this range *)
    | Some st -> (
      match levels_of.(bi - lo) with
      | _ :: _ as levels -> i := run_nest bi levels st
      | [] ->
        let out = counts_add st (delta bi) in
        (match g.Ccfg.blocks.(bi).Ccfg.b_term with
        | Ccfg.Stop_halt | Ccfg.Stop_sleep -> terminals := out :: !terminals
        | _ -> ());
        List.iter (fun (s, lab) -> merge s lab out) (Ccfg.labeled_successors g bi);
        incr i))
  done;
  { rr_exits = !exits; rr_terminals = !terminals; rr_backs = !backs }

(* ------------------------------------------------------------------ *)
(* Strands: one entry point (core 0's address 0, or a SPAWN target) and
   everything reachable from it up to SLEEP / HALT. *)

type strand = {
  st_core : int;
  st_entry_label : string option;  (** [None] for core 0's root *)
  st_entry_block : int;
  st_blocks : int list;  (** reachable block indices, sorted *)
  st_totals : counts;  (** per full execution of the strand, unscaled *)
  mutable st_scale : Lin.t option;  (** how many times the strand runs *)
}

let analyze_strand ~diag ~shared ~canon (g : Ccfg.t) ~entry_label entry_block =
  let reach = Ccfg.reachable g entry_block in
  let hi = List.fold_left max entry_block reach in
  let delta = block_delta g.Ccfg.core g in
  let entry_levels = back_levels g ~hi entry_block in
  let absorb =
    match entry_levels with [] -> [] | ls -> snd (split_last ls)
  in
  let r = analyze_range g ~shared ~canon ~delta ~absorb entry_block hi CMap.empty in
  let where =
    match entry_label with
    | Some l -> Printf.sprintf "strand %s on core %d" l g.Ccfg.core
    | None -> Printf.sprintf "core %d's root strand" g.Ccfg.core
  in
  if r.rr_exits <> [] then
    diag Warning None
      (Malformed
         (Printf.sprintf "%s has irreducible control flow; communication \
                          counts are approximate" where));
  (* A back edge into the entry means the whole strand is a loop (the
     SPAWN entry label doubles as the loop header): every terminating path
     ran [trip] full iterations first. Inner levels of a nest collapsed
     onto the entry block were absorbed into [r] already; only the
     outermost level multiplies here. *)
  let preamble =
    match entry_levels with
    | [] -> CMap.empty
    | ls ->
      let outer, _ = split_last ls in
      let d = meet_backs ~tag:(block_tag ~shared ~canon g entry_block) r.rr_backs in
      counts_mul_var ("iter:" ^ level_tag ~shared ~canon g entry_block outer) d
  in
  let totals =
    match r.rr_terminals with
    | [] ->
      diag Warning None
        (Malformed
           (Printf.sprintf "%s has no terminating path" where));
      CMap.empty
    | first :: rest ->
      List.fold_left
        (fun acc t ->
          counts_meet ~tag:("exit:" ^ block_tag ~shared ~canon g entry_block) acc t)
        first rest
      |> counts_add preamble
  in
  {
    st_core = g.Ccfg.core;
    st_entry_label = entry_label;
    st_entry_block = entry_block;
    st_blocks = reach;
    st_totals = totals;
    st_scale = None;
  }

(* ------------------------------------------------------------------ *)
(* Whole-program context shared by the passes *)

type ctx = {
  cfg : Config.t;
  prog : Program.t;
  mesh : Mesh.t;
  graphs : Ccfg.t array;
  mutable strands : strand list;  (** root first, then by (core, entry) *)
  mutable core_totals : counts array;  (** scaled, per core *)
  mode_of : Inst.mode option array array;  (** core -> block -> entry mode *)
  mutable diags : diag list;  (** reverse order *)
}

let diag ctx sev loc kind =
  ctx.diags <- { d_severity = sev; d_loc = loc; d_kind = kind } :: ctx.diags

(* First site of an instruction satisfying [p] on [core], for diagnostics. *)
let find_site ctx core p =
  let img = ctx.prog.Program.images.(core) in
  let n = Image.length img in
  let rec go addr =
    if addr >= n then None
    else if List.exists p (Image.fetch img addr) then
      Some { l_core = core; l_addr = addr }
    else go (addr + 1)
  in
  go 0

let iter_all_ops ctx f =
  Array.iteri
    (fun core img ->
      for addr = 0 to Image.length img - 1 do
        List.iter (fun i -> f ~core ~addr i) (Image.fetch img addr)
      done)
    ctx.prog.Program.images

(* --- Strand discovery and spawn-count resolution -------------------- *)

let discover_strands ctx =
  let n = Program.n_cores ctx.prog in
  let entries = Hashtbl.create 8 in
  iter_all_ops ctx (fun ~core ~addr i ->
      match i with
      | Inst.Spawn { target; entry } ->
        if target < 0 || target >= n then
          diag ctx Error
            (Some { l_core = core; l_addr = addr })
            (Net_misuse (Net.Send_failed (Net.Bad_destination target)))
        else if not (Image.has_label ctx.prog.Program.images.(target) entry)
        then
          diag ctx Error
            (Some { l_core = core; l_addr = addr })
            (Malformed
               (Printf.sprintf
                  "SPAWN targets label %s, which does not exist on core %d"
                  entry target))
        else Hashtbl.replace entries (target, entry) ()
      | _ -> ());
  let mk_diag sev loc kind = diag ctx sev loc kind in
  (* Labels that land on the same block of some core name the same
     program point: a core whose schedule leaves no ops between two
     labels carries both on one block, while a peer with ops in between
     keeps two blocks — left alone, the cores would anchor the same
     symbolic unknown (a trip count, a path-merge phi) to different
     labels and balanced traffic could not cancel. Union co-resident
     labels across every core and canonicalise each tag to its class
     representative; the map is global, so the renaming is identical on
     all cores and counts that were equal stay equal. *)
  let canon =
    let parent = Hashtbl.create 64 in
    let rec find l =
      match Hashtbl.find_opt parent l with
      | None -> l
      | Some p ->
        let r = find p in
        Hashtbl.replace parent l r;
        r
    in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then
        if ra < rb then Hashtbl.replace parent rb ra
        else Hashtbl.replace parent ra rb
    in
    Array.iter
      (fun (g : Ccfg.t) ->
        Array.iter
          (fun (b : Ccfg.block) ->
            match b.Ccfg.b_labels with
            | [] | [ _ ] -> ()
            | l :: rest -> List.iter (union l) rest)
          g.Ccfg.blocks)
      ctx.graphs;
    find
  in
  (* Labels that appear on at least two cores' images: replicated region
     code, the anchor for cross-core symbolic variable names. *)
  let shared =
    let cores_of = Hashtbl.create 64 in
    Array.iter
      (fun (g : Ccfg.t) ->
        Array.iter
          (fun (b : Ccfg.block) ->
            List.iter
              (fun l ->
                let cs =
                  Option.value ~default:[] (Hashtbl.find_opt cores_of l)
                in
                if not (List.mem g.Ccfg.core cs) then
                  Hashtbl.replace cores_of l (g.Ccfg.core :: cs))
              b.Ccfg.b_labels)
          g.Ccfg.blocks)
      ctx.graphs;
    fun l ->
      match Hashtbl.find_opt cores_of l with
      | Some (_ :: _ :: _) -> true
      | _ -> false
  in
  let root =
    if Image.length ctx.prog.Program.images.(0) = 0 then []
    else
      [ analyze_strand ~diag:mk_diag ~shared ~canon ctx.graphs.(0) ~entry_label:None 0 ]
  in
  (match root with
  | [ r ] -> r.st_scale <- Some (Lin.const_ 1)
  | _ -> ());
  let workers =
    Hashtbl.fold (fun (w, e) () acc -> (w, e) :: acc) entries []
    |> List.sort compare
    |> List.filter_map (fun (w, e) ->
           let g = ctx.graphs.(w) in
           let addr = Image.resolve g.Ccfg.image e in
           match Ccfg.block_starting_at g addr with
           | Some bi ->
             Some (analyze_strand ~diag:mk_diag ~shared ~canon g ~entry_label:(Some e) bi)
           | None ->
             diag ctx Error None
               (Malformed
                  (Printf.sprintf
                     "SPAWN entry %s lands mid-block on core %d (address %d)" e
                     w addr));
             None)
  in
  ctx.strands <- root @ workers;
  (* Resolve how often each strand runs: the root runs once; a spawned
     strand runs as often as its spawners do, summed. Spawn chains are a
     DAG in practice, so a few rounds reach the fixpoint. *)
  let rounds = List.length ctx.strands + 1 in
  for _ = 1 to rounds do
    List.iter
      (fun s ->
        match (s.st_scale, s.st_entry_label) with
        | Some _, _ | None, None -> ()
        | None, Some e ->
          let key = K_spawn (s.st_core, e) in
          let known = ref true in
          let total =
            List.fold_left
              (fun acc s' ->
                let spawned = count_get s'.st_totals key in
                if Lin.equal spawned Lin.zero then acc
                else
                  match s'.st_scale with
                  | None ->
                    known := false;
                    acc
                  | Some sc -> Lin.add acc (Lin.mul sc spawned))
              Lin.zero ctx.strands
          in
          if !known then s.st_scale <- Some total)
      ctx.strands
  done;
  List.iter
    (fun s ->
      match s.st_scale with
      | Some _ -> ()
      | None ->
        diag ctx Warning None
          (Malformed
             (Printf.sprintf
                "cannot resolve how many times strand %s on core %d is \
                 spawned (mutually recursive SPAWNs?); assuming once"
                (Option.value s.st_entry_label ~default:"<root>")
                s.st_core));
        s.st_scale <- Some (Lin.const_ 1))
    ctx.strands;
  (* Per-core totals: each strand's per-run counts times its run count. *)
  let totals = Array.make (Program.n_cores ctx.prog) CMap.empty in
  List.iter
    (fun s ->
      let sc = Option.get s.st_scale in
      totals.(s.st_core) <-
        counts_add totals.(s.st_core) (CMap.map (Lin.mul sc) s.st_totals))
    ctx.strands;
  ctx.core_totals <- totals

(* --- Pass 1: channel balance + statically certain network misuse ----- *)

let check_channels ctx =
  let n = Program.n_cores ctx.prog in
  (* Statically certain network failures, independent of counting. *)
  iter_all_ops ctx (fun ~core ~addr i ->
      let here = Some { l_core = core; l_addr = addr } in
      match i with
      | Inst.Send { target; _ } when target < 0 || target >= n ->
        diag ctx Error here
          (Net_misuse (Net.Send_failed (Net.Bad_destination target)))
      | Inst.Recv { sender; _ } when sender < 0 || sender >= n ->
        diag ctx Error here
          (Malformed
             (Printf.sprintf
                "RECV from core %d, which does not exist (%d cores): this \
                 core will wait forever" sender n))
      | Inst.Put { dir; _ } when Mesh.neighbour ctx.mesh core dir = None ->
        diag ctx Error here
          (Net_misuse (Net.Put_failed { src_core = core; error = Net.Off_mesh }))
      | Inst.Get { dir; _ } when Mesh.neighbour ctx.mesh core dir = None ->
        diag ctx Error here
          (Malformed
             (Printf.sprintf
                "GET from direction %s leaves the mesh on core %d: nothing \
                 can ever arrive" (dir_name dir) core))
      | _ -> ());
  (* Per-channel symbolic balance. *)
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      let sends = count_get ctx.core_totals.(a) (K_send (a, b)) in
      let recvs = count_get ctx.core_totals.(b) (K_recv (a, b)) in
      if not (Lin.equal sends recvs) then begin
        let is_send (i : Inst.t) =
          match i with Inst.Send { target; _ } -> target = b | _ -> false
        in
        let is_recv (i : Inst.t) =
          match i with Inst.Recv { sender; _ } -> sender = a | _ -> false
        in
        let loc =
          match find_site ctx b is_recv with
          | Some l -> Some l
          | None -> find_site ctx a is_send
        in
        diag ctx Error loc
          (Unbalanced_channel { ch_src = a; ch_dst = b; sends; recvs })
      end
    done
  done

(* --- Pass 2: barrier alignment --------------------------------------- *)

(* Per-core MODE_SWITCH sequence in execution order: the root strand's
   switches, then each worker strand's, in spawn (= entry address) order.
   Only meaningful when every strand with switches runs exactly once and
   no switch sits under a loop or a divergent path — which the count
   check has already established when it lets us get this far. *)
let barrier_sequence ctx core =
  let g = ctx.graphs.(core) in
  let strands =
    List.filter (fun s -> s.st_core = core) ctx.strands
    |> List.sort (fun a b -> compare a.st_entry_block b.st_entry_block)
    |> List.sort (fun a b ->
           compare (a.st_entry_label <> None) (b.st_entry_label <> None))
  in
  List.concat_map
    (fun s ->
      if s.st_scale <> Some (Lin.const_ 1) && s.st_scale <> None then
        (* Strand runs 0 or many times; its switches were already flagged
           by the count check if they matter. *)
        []
      else
        List.concat_map
          (fun bi ->
            List.filter_map
              (fun (addr, _, (i : Inst.t)) ->
                match i with
                | Inst.Mode_switch m -> Some (addr, m)
                | _ -> None)
              (Ccfg.ops g g.Ccfg.blocks.(bi)))
          s.st_blocks)
    strands

let check_barriers ctx =
  let n = Program.n_cores ctx.prog in
  if n <= 1 then ()
  else begin
    let count_ok = ref true in
    List.iter
      (fun mode ->
        let counts =
          List.init n (fun c -> (c, count_get ctx.core_totals.(c) (K_barrier mode)))
        in
        let all_const = List.for_all (fun (_, l) -> Lin.is_const l <> None) counts in
        let all_equal =
          match counts with
          | [] -> true
          | (_, first) :: rest -> List.for_all (fun (_, l) -> Lin.equal l first) rest
        in
        if (not all_const) || not all_equal then begin
          count_ok := false;
          let loc =
            find_site ctx 0 (fun i -> i = Inst.Mode_switch mode)
          in
          diag ctx Error loc (Barrier_count_mismatch { bc_mode = mode; counts })
        end)
      [ Inst.Coupled; Inst.Decoupled ];
    if !count_ok then begin
      let seqs = Array.init n (fun c -> barrier_sequence ctx c) in
      let lens = Array.map List.length seqs in
      let expected = lens.(0) in
      if Array.for_all (fun l -> l = expected) lens then
        for k = 0 to expected - 1 do
          let modes = Array.to_list (Array.mapi (fun c s -> (c, snd (List.nth s k))) seqs) in
          match modes with
          | [] -> ()
          | (_, m0) :: rest ->
            if List.exists (fun (_, m) -> m <> m0) rest then begin
              let diverging =
                List.find (fun (_, m) -> m <> m0) rest |> fst
              in
              let addr = fst (List.nth seqs.(diverging) k) in
              diag ctx Error
                (Some { l_core = diverging; l_addr = addr })
                (Misaligned_barrier { ordinal = k + 1; modes })
            end
        done
      else
        (* Counts agreed but sequence extraction didn't (e.g. a switch in
           a strand that runs several times) — be honest about it. *)
        diag ctx Warning None
          (Malformed
             "MODE_SWITCH ordering could not be established statically; \
              skipping barrier-order comparison")
    end
  end

(* --- Mode tagging ----------------------------------------------------- *)

(* Entry mode of every block: strands begin in decoupled mode (the
   machine starts decoupled and a woken core runs decoupled code until a
   barrier); a MODE_SWITCH terminator changes the mode for the fall-
   through successor. *)
let tag_modes ctx =
  List.iter
    (fun s ->
      let g = ctx.graphs.(s.st_core) in
      let tags = ctx.mode_of.(s.st_core) in
      let worklist = Queue.create () in
      Queue.add (s.st_entry_block, Inst.Decoupled) worklist;
      while not (Queue.is_empty worklist) do
        let bi, m = Queue.take worklist in
        match tags.(bi) with
        | Some m' ->
          if m' <> m then
            diag ctx Warning None
              (Malformed
                 (Printf.sprintf
                    "core %d block at %d is reachable in both coupled and \
                     decoupled mode; coupled checks skip it" s.st_core
                    g.Ccfg.blocks.(bi).Ccfg.b_start))
        | None ->
          tags.(bi) <- Some m;
          let out =
            match g.Ccfg.blocks.(bi).Ccfg.b_term with
            | Ccfg.Barrier m'' -> m''
            | _ -> m
          in
          List.iter (fun s' -> Queue.add (s', out) worklist) (Ccfg.successors g bi)
      done)
    ctx.strands

(* --- Pass 3: coupled-mode PUT/GET slot pairing ------------------------ *)

(* Labels shared by several cores with coupled entry mode are the same
   region block replicated per core by codegen; lock-step execution makes
   "same bundle index" mean "same cycle", so PUT/GET pairing is checked
   slot by slot. *)
let check_coupled ctx =
  let n = Program.n_cores ctx.prog in
  if n <= 1 then ()
  else begin
    let by_label = Hashtbl.create 16 in
    Array.iteri
      (fun core (g : Ccfg.t) ->
        Array.iteri
          (fun bi (b : Ccfg.block) ->
            if ctx.mode_of.(core).(bi) = Some Inst.Coupled then
              List.iter
                (fun l ->
                  Hashtbl.replace by_label l
                    ((core, bi)
                    :: Option.value (Hashtbl.find_opt by_label l) ~default:[]))
                b.Ccfg.b_labels)
          g.Ccfg.blocks)
      ctx.graphs;
    let labels =
      Hashtbl.fold (fun l group acc -> (l, List.rev group) :: acc) by_label []
      |> List.sort compare
    in
    List.iter
      (fun (label, group) ->
        if List.length group < n then
          diag ctx Error None
            (Malformed
               (Printf.sprintf
                  "coupled block %s exists only on core(s) %s; lock-step \
                   execution involves every core, the others will never \
                   reach the mode barrier" label
                  (String.concat ", "
                     (List.map (fun (c, _) -> string_of_int c) group))))
        else begin
          let blocks =
            List.map
              (fun (core, bi) -> (core, ctx.graphs.(core).Ccfg.blocks.(bi)))
              group
          in
          let lengths =
            List.map (fun (c, b) -> (c, b.Ccfg.b_stop - b.Ccfg.b_start)) blocks
          in
          let len = snd (List.hd lengths) in
          if List.exists (fun (_, l) -> l <> len) lengths then
            diag ctx Error None
              (Coupled_length_mismatch { cl_label = label; lengths })
          else begin
            let last_bcast = ref None in
            for slot = 0 to len - 1 do
              let ops =
                List.concat_map
                  (fun (core, b) ->
                    let addr = b.Ccfg.b_start + slot in
                    List.map
                      (fun i -> (core, addr, i))
                      (Image.fetch ctx.graphs.(core).Ccfg.image addr))
                  blocks
              in
              let puts =
                List.filter_map
                  (fun (c, a, i) ->
                    match i with Inst.Put { dir; _ } -> Some (c, a, dir) | _ -> None)
                  ops
              in
              let gets =
                ref
                  (List.filter_map
                     (fun (c, a, i) ->
                       match i with
                       | Inst.Get { dir; _ } -> Some (c, a, dir)
                       | _ -> None)
                     ops)
              in
              let filled = Hashtbl.create 4 in
              List.iter
                (fun (c, a, dir) ->
                  match Mesh.neighbour ctx.mesh c dir with
                  | None -> ()  (* already reported by check_channels *)
                  | Some dst ->
                    let latch = (dst, Inst.opposite dir) in
                    if Hashtbl.mem filled latch then
                      diag ctx Error
                        (Some { l_core = c; l_addr = a })
                        (Net_misuse
                           (Net.Put_failed
                              { src_core = c; error = Net.Latch_full dst }))
                    else begin
                      Hashtbl.replace filled latch ();
                      let rec take acc = function
                        | [] -> None
                        | (gc, ga, gdir) :: rest
                          when gc = dst && gdir = Inst.opposite dir ->
                          ignore ga;
                          Some (List.rev_append acc rest)
                        | g :: rest -> take (g :: acc) rest
                      in
                      match take [] !gets with
                      | Some rest -> gets := rest
                      | None ->
                        diag ctx Error
                          (Some { l_core = c; l_addr = a })
                          (Put_get_mismatch
                             {
                               pg_label = label;
                               pg_slot = slot;
                               detail =
                                 Printf.sprintf
                                   "PUT.%s on core %d has no matching GET on \
                                    core %d this cycle (the latch would go \
                                    stale)" (dir_name dir) c dst;
                             })
                    end)
                puts;
              List.iter
                (fun (c, a, dir) ->
                  diag ctx Error
                    (Some { l_core = c; l_addr = a })
                    (Put_get_mismatch
                       {
                         pg_label = label;
                         pg_slot = slot;
                         detail =
                           Printf.sprintf
                             "GET.%s on core %d has no matching PUT this \
                              cycle (the whole array stalls forever)"
                             (dir_name dir) c;
                       }))
                !gets;
              (* Broadcasts: a GETB before any broadcast exists can never
                 complete; one that merely out-runs the hop latency only
                 stalls, so it is a warning. *)
              List.iter
                (fun (c, a, i) ->
                  match i with
                  | Inst.Getb _ -> begin
                    match !last_bcast with
                    | None ->
                      diag ctx Error
                        (Some { l_core = c; l_addr = a })
                        (Put_get_mismatch
                           {
                             pg_label = label;
                             pg_slot = slot;
                             detail =
                               Printf.sprintf
                                 "GETB on core %d has no preceding BCAST in \
                                  this block" c;
                           })
                    | Some (bslot, bsrc) ->
                      if bslot + Mesh.hops ctx.mesh bsrc c > slot then
                        diag ctx Warning
                          (Some { l_core = c; l_addr = a })
                          (Put_get_mismatch
                             {
                               pg_label = label;
                               pg_slot = slot;
                               detail =
                                 Printf.sprintf
                                   "GETB on core %d runs %d cycle(s) before \
                                    the broadcast from core %d can arrive; \
                                    the array will stall" c
                                   (bslot + Mesh.hops ctx.mesh bsrc c - slot)
                                   bsrc;
                             })
                  end
                  | _ -> ())
                ops;
              List.iter
                (fun (c, _, i) ->
                  match i with
                  | Inst.Bcast _ -> last_bcast := Some (slot, c)
                  | _ -> ())
                ops
            done
          end
        end)
      labels
  end

(* --- Pass 4a: wait-for graph deadlock detection ----------------------- *)

type wnode = {
  w_loc : loc;
  w_desc : string;
}

let scc_deadlocks ctx nodes edges =
  (* [nodes]: wnode array; [edges]: (waiter, waitee, why) index triples. *)
  let g = Digraph.create (Array.length nodes) in
  List.iter (fun (u, v, _) -> Digraph.add_edge g u v) edges;
  Array.iter
    (fun comp ->
      match comp with
      | [] | [ _ ] -> ()
      | comp ->
        let in_comp = Hashtbl.create 8 in
        List.iter (fun v -> Hashtbl.replace in_comp v ()) comp;
        let cycle_edges =
          List.filter_map
            (fun (u, v, why) ->
              if Hashtbl.mem in_comp u && Hashtbl.mem in_comp v then
                Some (nodes.(u).w_loc, nodes.(v).w_loc, why)
              else None)
            edges
        in
        let loc = (List.hd (List.sort compare comp) |> fun v -> nodes.(v).w_loc) in
        diag ctx Error (Some loc) (Potential_deadlock { edges = cycle_edges }))
    (Digraph.sccs g)

(* Block-local deadlock check: a label shared by several cores in
   decoupled mode is one region block replicated per core; within one
   execution of it, queue FIFO order matches the emission order, so the
   i-th SEND a->b pairs with the i-th RECV from a on b. In-order issue
   gives the program-order edges. *)
let check_block_deadlock ctx =
  let n = Program.n_cores ctx.prog in
  if n <= 1 then ()
  else begin
    let by_label = Hashtbl.create 16 in
    Array.iteri
      (fun core (g : Ccfg.t) ->
        Array.iteri
          (fun bi (b : Ccfg.block) ->
            if ctx.mode_of.(core).(bi) = Some Inst.Decoupled then
              List.iter
                (fun l ->
                  Hashtbl.replace by_label l
                    ((core, bi)
                    :: Option.value (Hashtbl.find_opt by_label l) ~default:[]))
                b.Ccfg.b_labels)
          g.Ccfg.blocks)
      ctx.graphs;
    Hashtbl.fold (fun l group acc -> (l, List.rev group) :: acc) by_label []
    |> List.sort compare
    |> List.iter (fun (_, group) ->
           if List.length group >= 2 then begin
             let nodes = ref [] in
             let n_nodes = ref 0 in
             let edges = ref [] in
             let add_node loc desc =
               let id = !n_nodes in
               incr n_nodes;
               nodes := { w_loc = loc; w_desc = desc } :: !nodes;
               id
             in
             let per_core =
               List.map
                 (fun (core, bi) ->
                   let g = ctx.graphs.(core) in
                   let ops =
                     List.filter_map
                       (fun (addr, _, (i : Inst.t)) ->
                         match i with
                         | Inst.Send { target; _ } ->
                           Some
                             ( add_node { l_core = core; l_addr = addr }
                                 "send",
                               `Send target )
                         | Inst.Recv { sender; _ } ->
                           Some
                             ( add_node { l_core = core; l_addr = addr }
                                 "recv",
                               `Recv sender )
                         | _ -> None)
                       (Ccfg.ops g g.Ccfg.blocks.(bi))
                   in
                   (* In-order issue: each op waits on its predecessor. *)
                   let rec chain = function
                     | (a, _) :: ((b, _) :: _ as rest) ->
                       edges :=
                         (b, a, Printf.sprintf "program order on core %d" core)
                         :: !edges;
                       chain rest
                     | _ -> ()
                   in
                   chain ops;
                   (core, ops))
                 group
             in
             (* Positional delivery edges per (src, dst) channel. *)
             List.iter
               (fun (a, a_ops) ->
                 List.iter
                   (fun (b, b_ops) ->
                     if a <> b then begin
                       let sends =
                         List.filter_map
                           (fun (id, k) ->
                             match k with
                             | `Send t when t = b -> Some id
                             | _ -> None)
                           a_ops
                       in
                       let recvs =
                         List.filter_map
                           (fun (id, k) ->
                             match k with
                             | `Recv s when s = a -> Some id
                             | _ -> None)
                           b_ops
                       in
                       List.iteri
                         (fun i r ->
                           match List.nth_opt sends i with
                           | Some s ->
                             edges :=
                               ( r,
                                 s,
                                 Printf.sprintf
                                   "delivery on channel %d->%d (message %d)" a
                                   b (i + 1) )
                               :: !edges
                           | None -> ())
                         recvs
                     end)
                   per_core)
               per_core;
             let nodes = Array.of_list (List.rev !nodes) in
             scc_deadlocks ctx nodes !edges
           end)
  end

(* Program-level deadlock check over "straight-line" operations: blocks
   outside any loop and not conditionally skipped execute exactly once,
   so their queue operations can be matched positionally across the whole
   program, and spawn and barrier orderings added. This is what catches a
   master waiting on a join SEND that sits after a RECV the master never
   feeds, or crossed RECVs in hand-written glue. *)
let check_global_deadlock ctx =
  let n = Program.n_cores ctx.prog in
  if n <= 1 then ()
  else begin
    (* Taint: blocks in a loop or downstream of a conditional branch may
       execute 0 or many times; only untainted ("once") blocks take part. *)
    let tainted =
      Array.map (fun (g : Ccfg.t) -> Array.make (Ccfg.n_blocks g) false) ctx.graphs
    in
    Array.iteri
      (fun core (g : Ccfg.t) ->
        let t = tainted.(core) in
        for j = 0 to Ccfg.n_blocks g - 1 do
          List.iter
            (fun s ->
              if s <= j then
                for b = s to j do
                  t.(b) <- true
                done)
            (Ccfg.successors g j)
        done;
        let changed = ref true in
        while !changed do
          changed := false;
          for j = 0 to Ccfg.n_blocks g - 1 do
            let mark b =
              if (not t.(b)) && b < Array.length t then begin
                t.(b) <- true;
                changed := true
              end
            in
            match g.Ccfg.blocks.(j).Ccfg.b_term with
            | Ccfg.Cond _ -> List.iter mark (Ccfg.successors g j)
            | _ -> if t.(j) then List.iter mark (Ccfg.successors g j)
          done
        done)
      ctx.graphs;
    (* Once-ops per strand (strands that run exactly once), address order. *)
    let once_strands =
      List.filter (fun s -> s.st_scale = Some (Lin.const_ 1)) ctx.strands
    in
    let strand_ops =
      List.map
        (fun s ->
          let g = ctx.graphs.(s.st_core) in
          let ops =
            List.concat_map
              (fun bi ->
                if tainted.(s.st_core).(bi) then []
                else
                  List.filter_map
                    (fun (addr, _, (i : Inst.t)) ->
                      match i with
                      | Inst.Send { target; _ } -> Some (addr, `Send target)
                      | Inst.Recv { sender; _ } -> Some (addr, `Recv sender)
                      | Inst.Spawn { target; entry } ->
                        Some (addr, `Spawn (target, entry))
                      | Inst.Mode_switch _ -> Some (addr, `Barrier)
                      | _ -> None)
                    (Ccfg.ops g g.Ccfg.blocks.(bi)))
              s.st_blocks
          in
          (s, ops))
        once_strands
    in
    (* A channel is positionally matchable only when every one of its
       SENDs and RECVs in the whole program is a once-op. *)
    let total = Hashtbl.create 16 and once = Hashtbl.create 16 in
    let bump tbl k =
      Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0)
    in
    iter_all_ops ctx (fun ~core ~addr:_ i ->
        match i with
        | Inst.Send { target; _ } -> bump total (`S (core, target))
        | Inst.Recv { sender; _ } -> bump total (`R (sender, core))
        | _ -> ());
    List.iter
      (fun (s, ops) ->
        List.iter
          (fun (_, k) ->
            match k with
            | `Send t -> bump once (`S (s.st_core, t))
            | `Recv sd -> bump once (`R (sd, s.st_core))
            | _ -> ())
          ops)
      strand_ops;
    let channel_ok a b =
      Hashtbl.find_opt total (`S (a, b)) = Hashtbl.find_opt once (`S (a, b))
      && Hashtbl.find_opt total (`R (a, b)) = Hashtbl.find_opt once (`R (a, b))
    in
    (* Barrier nodes are only meaningful when every core owns the same
       once-barrier count. *)
    let barrier_counts =
      List.init n (fun c ->
          List.fold_left
            (fun acc (s, ops) ->
              if s.st_core = c then
                acc
                + List.length (List.filter (fun (_, k) -> k = `Barrier) ops)
              else acc)
            0 strand_ops)
    in
    let barriers_ok =
      match barrier_counts with
      | [] -> false
      | c0 :: rest ->
        List.for_all (( = ) c0) rest
        && c0 * n
           = List.fold_left
               (fun acc (_, ops) ->
                 acc + List.length (List.filter (fun (_, k) -> k = `Barrier) ops))
               0 strand_ops
    in
    (* Build the graph. *)
    let nodes = ref [] and n_nodes = ref 0 and edges = ref [] in
    let prev_op = Hashtbl.create 32 in
    let add_node loc desc =
      let id = !n_nodes in
      incr n_nodes;
      nodes := { w_loc = loc; w_desc = desc } :: !nodes;
      id
    in
    let included =
      List.map
        (fun (s, ops) ->
          let kept =
            List.filter_map
              (fun (addr, k) ->
                let keep =
                  match k with
                  | `Send t -> t >= 0 && t < n && channel_ok s.st_core t
                  | `Recv sd -> sd >= 0 && sd < n && channel_ok sd s.st_core
                  | `Spawn _ -> true
                  | `Barrier -> barriers_ok
                in
                if keep then
                  Some (add_node { l_core = s.st_core; l_addr = addr } "", k)
                else None)
              ops
          in
          let rec chain = function
            | (a, _) :: ((b, _) :: _ as rest) ->
              Hashtbl.replace prev_op b a;
              edges :=
                (b, a, Printf.sprintf "program order on core %d" s.st_core)
                :: !edges;
              chain rest
            | _ -> ()
          in
          chain kept;
          (s, kept))
        strand_ops
    in
    (* Channel delivery edges. *)
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if channel_ok a b then begin
          let collect f =
            List.concat_map
              (fun (s, kept) ->
                List.filter_map (fun (id, k) -> f s.st_core id k) kept)
              included
          in
          let sends =
            collect (fun core id k ->
                match k with
                | `Send t when core = a && t = b -> Some id
                | _ -> None)
          in
          let recvs =
            collect (fun core id k ->
                match k with
                | `Recv sd when core = b && sd = a -> Some id
                | _ -> None)
          in
          List.iteri
            (fun i r ->
              match List.nth_opt sends i with
              | Some sid ->
                edges :=
                  ( r,
                    sid,
                    Printf.sprintf "delivery on channel %d->%d (message %d)" a b
                      (i + 1) )
                  :: !edges
              | None -> ())
            recvs
        end
      done
    done;
    (* A spawned strand's first operation waits on the SPAWN itself. *)
    List.iter
      (fun (s, kept) ->
        List.iter
          (fun (id, k) ->
            match k with
            | `Spawn (w, e) -> (
              match
                List.find_opt
                  (fun (s', _) ->
                    s'.st_core = w && s'.st_entry_label = Some e)
                  included
              with
              | Some (_, (first, _) :: _) ->
                edges :=
                  ( first,
                    id,
                    Printf.sprintf "core %d runs only after core %d spawns it"
                      w s.st_core )
                  :: !edges
              | _ -> ())
            | _ -> ())
          kept)
      included;
    (* Barriers: the k-th MODE_SWITCH rendezvous is one shared node. Each
       core's switch (the release) waits on the rendezvous, and the
       rendezvous waits on every core's arrival — the operation just
       before that core's switch — so code after a barrier transitively
       waits on code before it on every other core. *)
    if barriers_ok then begin
      let node_loc = Array.of_list (List.rev !nodes) in
      let per_core_barriers =
        List.init n (fun c ->
            List.concat_map
              (fun (s, kept) ->
                if s.st_core = c then
                  List.filter (fun (_, k) -> k = `Barrier) kept
                else [])
              included)
      in
      let count =
        List.fold_left min max_int (List.map List.length per_core_barriers)
      in
      for k = 0 to count - 1 do
        let members = List.map (fun l -> fst (List.nth l k)) per_core_barriers in
        match members with
        | first :: _ ->
          let rv = add_node node_loc.(first).w_loc "" in
          List.iter
            (fun id ->
              edges := (id, rv, "released by the mode barrier") :: !edges;
              match Hashtbl.find_opt prev_op id with
              | Some p ->
                edges := (rv, p, "mode barrier waits for every core") :: !edges
              | None -> ())
            members
        | [] -> ()
      done
    end;
    let nodes_arr = Array.of_list (List.rev !nodes) in
    scc_deadlocks ctx nodes_arr !edges
  end

(* --- Pass 4b: decoupled-mode race detection (program level) ----------- *)

(* Only fully-immediate addresses (base and offset both immediates) are
   statically certain; everything else is left to the partition-level
   check below. That is exactly the shape codegen gives the DOALL
   accumulator scratch slots — the one place generated code shares memory
   across concurrent strands. *)
type access = {
  ac_loc : loc;
  ac_word : int;
  ac_write : bool;
  ac_tm : bool;
}

let imm_addr (i : Inst.t) =
  match i with
  | Inst.Load { base = Inst.Imm b; offset = Inst.Imm o; _ } -> Some (b + o, false)
  | Inst.Store { base = Inst.Imm b; offset = Inst.Imm o; _ } -> Some (b + o, true)
  | _ -> None

(* Immediate accesses of one strand, in address order, with TM tracking;
   coupled-mode blocks are skipped (lock-step scheduling orders them). *)
let strand_accesses ctx s =
  let g = ctx.graphs.(s.st_core) in
  let in_tm = ref false in
  List.concat_map
    (fun bi ->
      let ops = Ccfg.ops g g.Ccfg.blocks.(bi) in
      if ctx.mode_of.(s.st_core).(bi) = Some Inst.Coupled then begin
        (* still track TM brackets crossing the region *)
        List.iter
          (fun (_, _, i) ->
            match i with
            | Inst.Tm_begin -> in_tm := true
            | Inst.Tm_commit -> in_tm := false
            | _ -> ())
          ops;
        []
      end
      else
        List.filter_map
          (fun (addr, _, i) ->
            match i with
            | Inst.Tm_begin ->
              in_tm := true;
              None
            | Inst.Tm_commit ->
              in_tm := false;
              None
            | _ -> (
              match imm_addr i with
              | Some (word, write) ->
                Some
                  {
                    ac_loc = { l_core = s.st_core; l_addr = addr };
                    ac_word = word;
                    ac_write = write;
                    ac_tm = !in_tm;
                  }
              | None -> None))
          ops)
    s.st_blocks

let report_race ctx seen a b =
  if a.ac_word = b.ac_word
     && (a.ac_write || b.ac_write)
     && not (a.ac_tm && b.ac_tm)
  then begin
    let writer, other = if a.ac_write then (a, b) else (b, a) in
    let key = (writer.ac_loc, other.ac_loc) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      diag ctx Error (Some writer.ac_loc)
        (Data_race
           {
             ra_addr = writer.ac_word;
             writer = writer.ac_loc;
             other = other.ac_loc;
             other_writes = other.ac_write;
           })
    end
  end

(* Replay core 0's root strand in program order tracking which worker
   strands are live (SPAWN starts one, a sync RECV joins it). Master
   accesses race against strands live at that point; two strands race
   when they were ever live together. *)
let check_races ctx =
  match List.find_opt (fun s -> s.st_entry_label = None) ctx.strands with
  | None -> ()
  | Some root ->
    let g = ctx.graphs.(root.st_core) in
    let strand_of =
      List.filter_map
        (fun s ->
          match s.st_entry_label with
          | Some e -> Some ((s.st_core, e), s)
          | None -> None)
        ctx.strands
    in
    let accesses_of =
      let tbl = Hashtbl.create 8 in
      fun key ->
        match Hashtbl.find_opt tbl key with
        | Some a -> a
        | None ->
          let a =
            match List.assoc_opt key strand_of with
            | Some s -> strand_accesses ctx s
            | None -> []
          in
          Hashtbl.replace tbl key a;
          a
    in
    let live = ref [] in
    let co_live = ref [] in
    let master = ref [] in
    let in_tm = ref false in
    List.iter
      (fun bi ->
        let coupled = ctx.mode_of.(root.st_core).(bi) = Some Inst.Coupled in
        List.iter
          (fun (addr, _, (i : Inst.t)) ->
            match i with
            | Inst.Tm_begin -> in_tm := true
            | Inst.Tm_commit -> in_tm := false
            | Inst.Spawn { target; entry } ->
              let key = (target, entry) in
              List.iter (fun l -> co_live := (l, key) :: !co_live) !live;
              live := key :: !live
            | Inst.Recv { sender; kind = Inst.Rv_sync; _ } ->
              let rec drop = function
                | [] -> []
                | (c, e) :: rest ->
                  if c = sender then rest else (c, e) :: drop rest
              in
              live := drop !live
            | _ ->
              if not coupled then (
                match imm_addr i with
                | Some (word, write) ->
                  master :=
                    ( {
                        ac_loc = { l_core = root.st_core; l_addr = addr };
                        ac_word = word;
                        ac_write = write;
                        ac_tm = !in_tm;
                      },
                      !live )
                    :: !master
                | None -> ()))
          (Ccfg.ops g g.Ccfg.blocks.(bi)))
      root.st_blocks;
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (a, snapshot) ->
        List.iter
          (fun key ->
            List.iter (fun b -> report_race ctx seen a b) (accesses_of key))
          (List.sort_uniq compare snapshot))
      (List.rev !master);
    List.iter
      (fun (k1, k2) ->
        if k1 <> k2 then
          List.iter
            (fun a ->
              List.iter (fun b -> report_race ctx seen a b) (accesses_of k2))
            (accesses_of k1))
      (List.sort_uniq compare !co_live)

(* --- Pass 4c: partition-level race check ------------------------------ *)

(* Region summaries recorded by codegen let the checker re-verify the
   partitioners' core contract: in decoupled mode there is no cross-core
   memory ordering, so possibly-aliasing operations must share a core
   (paper §4.1). [ever_alias] comes straight from analysis/memdep. *)
let check_partition_races ctx infos =
  List.iter
    (fun ri ->
      if ri.ri_decoupled then begin
        let rec pairs = function
          | [] -> ()
          | a :: rest ->
            List.iter
              (fun b ->
                if
                  a.ma_core >= 0 && b.ma_core >= 0
                  && a.ma_core <> b.ma_core
                  && (a.ma_write || b.ma_write)
                  && ri.ri_may_alias a.ma_id b.ma_id
                then
                  diag ctx Error None
                    (Partition_race
                       {
                         region = ri.ri_name;
                         core_a = a.ma_core;
                         core_b = b.ma_core;
                         detail =
                           Printf.sprintf "'%s' on core %d vs '%s' on core %d"
                             a.ma_text a.ma_core b.ma_text b.ma_core;
                       }))
              rest;
            pairs rest
        in
        pairs ri.ri_accesses
      end)
    infos

(* ------------------------------------------------------------------ *)
(* Entry point *)

let check_program ?(infos = []) (cfg : Config.t) (prog : Program.t) =
  let n = Program.n_cores prog in
  let graphs =
    Array.init n (fun c -> Ccfg.build ~core:c prog.Program.images.(c))
  in
  let ctx =
    {
      cfg;
      prog;
      mesh = Config.mesh cfg;
      graphs;
      strands = [];
      core_totals = Array.make n CMap.empty;
      mode_of = Array.map (fun g -> Array.make (Ccfg.n_blocks g) None) graphs;
      diags = [];
    }
  in
  Array.iter
    (fun (g : Ccfg.t) ->
      List.iter (fun p -> diag ctx Warning None (Malformed p)) g.Ccfg.problems)
    graphs;
  discover_strands ctx;
  tag_modes ctx;
  check_channels ctx;
  check_barriers ctx;
  check_coupled ctx;
  check_block_deadlock ctx;
  check_global_deadlock ctx;
  check_races ctx;
  check_partition_races ctx infos;
  List.rev ctx.diags
