(** Execution statistics, with the stall taxonomy of paper Fig. 12:
    instruction-cache stalls, data stalls, data receive stalls, predicate
    receive stalls and synchronisation stalls (spawn/join, mode-switch
    barriers, TM commit waits), plus latency-interlock stalls (scoreboard
    waits on in-flight ALU results crossing block boundaries). *)

type core = {
  mutable busy : int;  (** cycles a bundle issued *)
  mutable i_stall : int;
  mutable d_stall : int;
  mutable lat_stall : int;
  mutable recv_data_stall : int;
  mutable recv_pred_stall : int;
  mutable sync_stall : int;
  mutable idle : int;  (** asleep or halted *)
  mutable bundles : int;
  mutable ops : int;
  mutable ops_mem : int;  (** loads + stores *)
  mutable ops_comm : int;  (** operand-network ops *)
  mutable ops_mul_div : int;  (** long-latency arithmetic *)
}

type t = {
  n_cores : int;
  per_core : core array;
  mutable cycles : int;
  mutable coupled_cycles : int;
  mutable decoupled_cycles : int;
  mutable mode_switches : int;
  mutable spawns : int;
  mutable tm_rounds : int;
  mutable tm_conflicts : int;
  mutable faults_injected : int;  (** all kinds, from the injector *)
  mutable msgs_dropped : int;
  mutable msgs_corrupted : int;
  mutable net_retries : int;  (** retransmissions by the ack/timeout protocol *)
  mutable net_nacks : int;  (** parity + overflow NACKs *)
  mutable ecc_corrected : int;  (** flips corrected on demand by a read *)
  mutable ecc_scrubbed : int;  (** flips corrected by the end-of-run scrub *)
  mutable flips_masked : int;  (** flips overwritten before ever being read *)
  mutable spurious_aborts : int;
  mutable stall_faults : int;
}

type stall_kind =
  | I_stall
  | D_stall
  | Lat_stall
  | Recv_data
  | Recv_pred
  | Sync

val create : n_cores:int -> t
val record_stall : t -> core:int -> stall_kind -> unit

(** [add_stall t ~core kind k] is [record_stall] x [k] in one update — the
    stall fast-forward's bulk credit. *)
val add_stall : t -> core:int -> stall_kind -> int -> unit

val core : t -> int -> core

val total_stalls : core -> int
val stall_of : core -> stall_kind -> int
val avg_stall_fraction : t -> stall_kind -> float
(** Average over cores of (stall cycles of that kind) / total cycles. *)

val all_stall_kinds : stall_kind list
(** In [stall_kind_index] order. *)

val n_stall_kinds : int
val stall_kind_index : stall_kind -> int
val stall_kind_label : stall_kind -> string
(** The one canonical rendering ("I-stall", "D-stall", "latency",
    "recv-data", "recv-pred", "sync") shared by the trace, the watchdog
    and the observability layer. *)

(** {1 Per-region attribution}

    A [region_acct] is a passive store the machine fills when an
    attribution hook is attached ({!Machine.set_attribution}): every
    busy/stall/idle cycle of every core is credited to the cell for (the
    region enclosing that core's pc) x (the machine's execution mode at
    that cycle). The observability layer builds the pc->region map from
    the compiler's region extents and renders the per-region Fig. 12-style
    report. *)

type region_cell = {
  mutable rc_busy : int;
  mutable rc_idle : int;
  rc_stalls : int array;  (** indexed by [stall_kind_index] *)
}

type region_acct = {
  ra_n_regions : int;
  ra_n_cores : int;
  ra_cells : region_cell array array array;
      (** [region][mode (0 coupled, 1 decoupled)][core] *)
}

val create_region_acct : n_regions:int -> n_cores:int -> region_acct
val region_cell_cycles : region_cell -> int
(** busy + idle + every stall of that cell. *)

val pp_summary :
  ?coherence:Voltron_mem.Coherence.stats ->
  ?network:Voltron_net.Operand_network.stats ->
  Format.formatter ->
  t ->
  unit
(** The per-core stall table; with [coherence]/[network], also miss rates
    and channel traffic (fixing the historical counter silo in place). *)
