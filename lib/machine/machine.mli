(** The Voltron multicore cycle simulator.

    Executes a {!Voltron_isa.Program.t} on [n] in-order VLIW cores joined by
    the dual-mode scalar operand network, with coherent caches and
    transactional memory. Core 0 starts at address 0 of its image; the
    other cores start asleep, waiting for SPAWN. The machine starts in
    decoupled mode.

    {b Execution model.} Each core is an interlocked (stall-on-use) VLIW:
    the compiler schedules for the static latencies in {!Config.latency}
    and a scoreboard stalls the core when a source operand, the memory
    unit, an instruction fetch, or a network value is not ready. Stall
    cycles are attributed per Fig. 12 (I-, D-, data-receive,
    predicate-receive, synchronisation). In coupled mode the 1-bit stall
    bus makes every stall a group stall: no core issues unless all can
    (§3.2). Architectural data lives in flat memory updated at issue time;
    caches model timing only (DESIGN.md §5).

    {b Transactions.} A TM commit round resolves when {e every} core is in
    a transaction and waiting at TM_COMMIT — the in-order chunk-commit rule,
    so the DOALL codegen gives every core one (possibly empty) chunk per
    round. Chunks commit in core order, and on a conflict
    the violating core and its successors roll back (registers restored
    from the TM_BEGIN snapshot — standing in for the paper's
    compiler-generated recovery code) and re-execute serially.

    {b Faults.} With a nonzero rate in {!Config.t.fault} the machine runs a
    seeded injector (DESIGN.md "Fault model & recovery"): queue-mode
    messages can be dropped or corrupted (recovered by the network's
    ack/timeout/retry protocol), memory words can be bit-flipped (detected
    and corrected by the ECC model, with an end-of-run scrub so the final
    checksum still verifies), TM rounds can spuriously abort (recovered by
    the existing rollback + serial re-execution), and cores can suffer
    transient stall faults. When the injected-fault count reaches
    [degrade_threshold], the run stops with {!Fault_limit} so the caller
    can retry in a simpler execution mode. *)

type t

(** Why a core cannot make progress — the vocabulary of the watchdog's
    structured diagnosis. *)
type wait =
  | W_reg of Stats.stall_kind  (** scoreboard: source operand in flight *)
  | W_ifetch
  | W_dmem
  | W_btr  (** branch-target register still being written *)
  | W_recv of { sender : int; kind : Stats.stall_kind }
  | W_getb
  | W_send_full of int  (** receive queue of that core at capacity *)
  | W_get_latch of Voltron_isa.Inst.dir  (** GET with no paired PUT *)
  | W_stall_fault  (** injected transient stall in effect *)
  | W_barrier of Voltron_isa.Inst.mode
  | W_commit
  | W_serial
  | W_asleep
  | W_halted

val wait_to_string : wait -> string

type core_diag = {
  d_core : int;
  d_pc : int;
  d_wait : wait option;  (** [None]: the core could issue (not the culprit) *)
  d_bundle : string;  (** rendering of the bundle the core is stuck on *)
}

type diagnosis = {
  d_cycle : int;
  d_last_progress : int;
  d_mode : Voltron_isa.Inst.mode;
  d_cores : core_diag array;
  d_queue : (int * int * string) list;
      (** in-flight messages: src, dst, payload + delivery state *)
  d_blame : (int * int) option;
      (** the first blocked core whose wait names another core, and that
          core: the edge to start a hang investigation from *)
}

val pp_diagnosis : Format.formatter -> diagnosis -> unit
val diagnosis_to_string : diagnosis -> string

type outcome =
  | Finished
  | Out_of_cycles
  | Deadlock of diagnosis  (** watchdog fired: structured wait-state dump *)
  | Fault_limit of diagnosis
      (** fault injection crossed [degrade_threshold]; the caller should
          degrade to a simpler execution mode and re-run *)
  | Stopped of diagnosis
      (** a hook called {!request_stop} — the runtime sanitizer halting the
          machine at the cycle a violation was detected *)

type result = {
  outcome : outcome;
  cycles : int;
  checksum : int;  (** final data-memory checksum (the oracle value) *)
}

val create : Config.t -> Voltron_isa.Program.t -> t
(** Raises [Invalid_argument] if the program's core count does not match
    the configuration, or a bundle exceeds the configured widths. *)

val run : t -> result

val memory : t -> Voltron_mem.Memory.t
val stats : t -> Stats.t
val coherence : t -> Voltron_mem.Coherence.t
val network : t -> Voltron_net.Operand_network.t
val tm : t -> Voltron_mem.Tm.t

val now : t -> int
(** Current simulated cycle (valid mid-run, e.g. from an {!set_on_cycle}
    hook; equals [Stats.cycles] once the run finishes). *)

val mode : t -> Voltron_isa.Inst.mode
(** Current execution mode. *)

val pc : t -> core:int -> int
(** That core's current pc — the blame recorder's region lookup key. *)

val config : t -> Config.t
(** The configuration the machine was created with. *)

val reg : t -> core:int -> int -> int
(** Inspect a register after (or during) a run — used by tests. *)

val set_tracer : t -> Trace.t -> unit
(** Attach a structured tracer recording issues, stalls, mode switches,
    spawns and TM rounds (see {!Trace}). *)

(** {1 Observability hooks} *)

val set_attribution :
  t -> region_of:(core:int -> pc:int -> int) -> Stats.region_acct -> unit
(** Attach per-region cycle attribution. Every busy cycle is credited at
    its issue pc, and every stall/idle cycle at the core's current pc,
    into the acct cell for [region_of ~core ~pc] x the machine's execution
    mode at that cycle. Out-of-range region indices are dropped — map
    every pc (glue, HALT, ...) to a catch-all region to keep the acct's
    totals equal to the run's core-cycles. Raises [Invalid_argument] on a
    core-count mismatch. *)

val set_on_cycle : t -> (now:int -> unit) -> unit
(** Invoke a callback at the end of every simulated cycle (after the step
    and barrier/TM resolution) — the interval sampler's hook. The callback
    may read [stats], [coherence], [network] and [now], but must not
    mutate the machine. *)

(** One core-cycle (or [k] identical core-cycles) as reported to the causal
    profiler's blame hook. *)
type blame_event =
  | Blame_busy  (** the core issued a bundle *)
  | Blame_wait of {
      b_wait : wait;
      b_on : int;  (** the peer core the wait resolves to, or -1 *)
    }
  | Blame_lockstep of { b_kind : Stats.stall_kind }
      (** coupled mode only: the core could issue but the stall bus held it
          for a peer whose dominant stall reason is [b_kind] *)

val set_blame :
  t -> (core:int -> pc:int -> k:int -> redo:bool -> blame_event -> unit) -> unit
(** Attach the causal profiler's per-core-cycle classifier. Every simulated
    core-cycle is reported exactly once — [k] > 1 when a stall fast-forward
    window credited [k] identical cycles in bulk, so attaching this hook
    does {e not} disable fast-forward (unlike a tracer). [pc] is the issue
    pc for {!Blame_busy} and the stuck pc otherwise; [redo] marks serial TM
    re-execution work. The callback must not mutate the machine. Unset (the
    default), every report site pays a single branch and allocates
    nothing. *)

val set_on_window : t -> (from:int -> upto:int -> unit) -> unit
(** Invoke a callback once per run-loop iteration with the closed cycle
    interval [\[from, upto\]] that iteration covered — [from = upto] on an
    ordinary cycle, [from < upto] across a stall fast-forward jump.
    Attaching it does {e not} disable fast-forward; it is how the interval
    sampler observes runs it used to force cycle-by-cycle. Runs after
    {!set_on_cycle}'s callback, same read-only contract. *)

val set_sanity_cycle : t -> (now:int -> unit) -> unit
(** The runtime sanitizer's per-cycle check hook: runs after {!set_on_cycle}'s
    callback, under the same read-only contract (with the one sanctioned
    mutation of {!request_stop}). Attaching it disables stall fast-forward
    for the run, like a tracer — every cycle must be observed. *)

val request_stop : t -> unit
(** Ask the run loop to stop at the end of the current cycle with a
    {!Stopped} outcome carrying the usual structured diagnosis. Callable
    from any hook or monitor callback; idempotent. *)
