type t = {
  n_cores : int;
  issue_width : int;
  comm_width : int;
  n_btrs : int;
  cache : Voltron_mem.Coherence.config;
  net_capacity : int;
  (* Cycles per mesh hop on the operand network. 1 is the paper's network
     (2 + hops end-to-end in queue mode); 0 models an idealised
     zero-hop-latency network — the rerun configuration that validates the
     causal profiler's "scale network latency" what-if estimates. *)
  net_hop_cost : int;
  max_cycles : int;
  watchdog : int;
  fault : Voltron_fault.Fault.config;
  (* Skip over windows where every core is provably blocked until a known
     future cycle, bulk-crediting the skipped stall cycles (Machine's stall
     fast-forward). Architecturally invisible; off keeps the reference
     per-cycle path for differential testing. *)
  fast_forward : bool;
}

let default ~n_cores =
  {
    n_cores;
    issue_width = 1;
    comm_width = 1;
    n_btrs = 8;
    cache = Voltron_mem.Coherence.default_config;
    net_capacity = 32;
    net_hop_cost = 1;
    max_cycles = 200_000_000;
    watchdog = 100_000;
    fault = Voltron_fault.Fault.disabled;
    fast_forward = true;
  }

(* Select the coherence backend (snoop bus vs home-based directory); every
   other cache parameter is untouched. The CLI's --coherence flag and the
   differential harness's coherence axis both go through here. *)
let with_coherence protocol t =
  { t with cache = { t.cache with Voltron_mem.Coherence.protocol } }

let latency (inst : Voltron_isa.Inst.t) =
  match inst with
  | Alu { op; _ } -> (
    match op with
    | Mul -> 3
    | Div | Rem -> 12
    | Add | Sub | And | Or | Xor | Shl | Shr | Min | Max -> 1)
  | Fpu { op; _ } -> ( match op with Fadd | Fsub | Fmul -> 4 | Fdiv -> 16)
  | Cmp _ | Select _ | Mov _ -> 1
  | Load _ -> 2
  | Store _ -> 1
  | Pbr _ -> 1
  | Br _ -> 1
  | Bcast _ | Put _ | Send _ | Spawn _ -> 1
  | Getb _ | Get _ | Recv _ -> 1
  | Sleep | Mode_switch _ | Tm_begin | Tm_commit | Halt | Nop -> 1

let mesh t = Voltron_net.Mesh.create t.n_cores

let queue_latency t ~src ~dst = 2 + Voltron_net.Mesh.hops (mesh t) src dst

let direct_latency t ~src ~dst = max 1 (Voltron_net.Mesh.hops (mesh t) src dst)
