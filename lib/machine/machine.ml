module Inst = Voltron_isa.Inst
module Bundle = Voltron_isa.Bundle
module Image = Voltron_isa.Image
module Program = Voltron_isa.Program
module Semantics = Voltron_isa.Semantics
module Memory = Voltron_mem.Memory
module Tm = Voltron_mem.Tm
module Coherence = Voltron_mem.Coherence
module Mesh = Voltron_net.Mesh
module Net = Voltron_net.Operand_network
module Fault = Voltron_fault.Fault
module Ecc = Voltron_fault.Ecc

(* Why a core cannot make progress this cycle — the unit of the watchdog's
   structured diagnosis, and (mapped through [stall_of_wait]) of the stall
   accounting. *)
type wait =
  | W_reg of Stats.stall_kind  (** scoreboard: source operand in flight *)
  | W_ifetch
  | W_dmem
  | W_btr  (** branch-target register still being written *)
  | W_recv of { sender : int; kind : Stats.stall_kind }
  | W_getb
  | W_send_full of int  (** receive queue of that core at capacity *)
  | W_get_latch of Inst.dir  (** GET on an empty direct-mode latch *)
  | W_stall_fault  (** injected transient stall in effect *)
  | W_barrier of Inst.mode
  | W_commit
  | W_serial
  | W_asleep
  | W_halted

(* One cycle (or [k] identical cycles) of one core's time, as reported to
   the causal profiler's blame hook: busy issuing, waiting (with the wait
   and the peer core it resolves to, when it names one), or held by the
   coupled-mode stall bus on a peer's behalf. *)
type blame_event =
  | Blame_busy
  | Blame_wait of { b_wait : wait; b_on : int  (** -1: no blamed core *) }
  | Blame_lockstep of { b_kind : Stats.stall_kind }

type core_diag = {
  d_core : int;
  d_pc : int;
  d_wait : wait option;  (** [None]: the core could issue (not the culprit) *)
  d_bundle : string;  (** rendering of the bundle the core is stuck on *)
}

type diagnosis = {
  d_cycle : int;
  d_last_progress : int;
  d_mode : Inst.mode;
  d_cores : core_diag array;
  d_queue : (int * int * string) list;  (** in-flight messages: src, dst, state *)
  d_blame : (int * int) option;  (** blocked core -> core it is waiting on *)
}

type outcome =
  | Finished
  | Out_of_cycles
  | Deadlock of diagnosis
  | Fault_limit of diagnosis
  | Stopped of diagnosis

type result = {
  outcome : outcome;
  cycles : int;
  checksum : int;
}

type status =
  | Running
  | Asleep
  | Halted
  | At_barrier of Inst.mode
  | At_commit
  | Wait_serial
  | Stuck of wait
      (** wedged mid-bundle on a condition that can never clear (e.g. GET
          with no paired PUT); the watchdog will convert it to a diagnosis *)

(* What produced a register's in-flight value: classifies scoreboard
   stalls (paper Fig. 12 taxonomy). *)
type producer = P_load | P_recv_data | P_recv_pred | P_getb | P_other

type core_state = {
  id : int;
  image : Image.t;
  mutable pc : int;
  mutable status : status;
  mutable regs : int array;
  mutable ready : int array;
  mutable prod : producer array;
  btrs : int array;
  btr_ready : int array;
  mutable fetch_done : int;
  mutable mem_busy : int;
  (* In-order blocking cache (paper §3.2: "if one core stalls due to cache
     misses, all the cores must stall"): a miss freezes the core until the
     fill completes; hits stay pipelined through the scoreboard. *)
  mutable miss_stall_until : int;
  (* Injected transient stall fault: the core freezes until this cycle. *)
  mutable stall_until : int;
  (* Chunk snapshot for TM rollback: register file + the chunk's start pc. *)
  mutable tm_snapshot : (int array * int) option;
  mutable tm_serial : bool;
  (* VLIW read-before-write scratch: [snap.(r)] holds the pre-issue value of
     register [r] for the bundle currently issuing iff
     [snap_epoch.(r) = snap_gen]. Generation-stamped so taking a snapshot is
     O(sources), with no per-cycle clearing or allocation. *)
  mutable snap : int array;
  mutable snap_epoch : int array;
  mutable snap_gen : int;
}

type t = {
  cfg : Config.t;
  prog : Program.t;
  mem : Memory.t;
  tm : Tm.t;
  hier : Coherence.t;
  net : Net.t;
  cores : core_state array;
  st : Stats.t;
  inj : Fault.t option;  (** fault injector; [None] when all rates are 0 *)
  ecc : Ecc.t option;  (** ECC shadow state, present iff [inj] is *)
  mutable mode : Inst.mode;
  mutable now : int;
  mutable serial_queue : int list;
  mutable last_progress : int;
  mutable tracer : Trace.t option;
  (* Per-region cycle attribution: the store plus the pc->region map the
     observability layer derived from the compiler's region extents. *)
  mutable attr : (Stats.region_acct * (core:int -> pc:int -> int)) option;
  mutable on_cycle : (now:int -> unit) option;
  (* Runtime sanitizer: a per-cycle check hook (runs after [on_cycle]) plus
     a stop request it can raise from any monitor callback; the run loop
     converts the request into a [Stopped] outcome at the end of the cycle. *)
  mutable on_sanity : (now:int -> unit) option;
  mutable stop_requested : bool;
  (* Causal profiler: every core-cycle is reported exactly once as busy /
     waiting / lockstep-held, with a repeat count [k] so the fast-forward
     bulk paths stay exact. [None] (the default) keeps every report site to
     a single branch, off the allocation path. *)
  mutable blame :
    (core:int -> pc:int -> k:int -> redo:bool -> blame_event -> unit) option;
  (* Cycle-window hook: called once per run-loop iteration with the closed
     cycle interval that iteration covered (a fast-forward jump covers
     many). Unlike [on_cycle], attaching it does NOT disable fast-forward —
     that is its whole point. *)
  mutable on_window : (from:int -> upto:int -> unit) option;
  (* Stall fast-forward (Config.fast_forward). [ff_active] is resolved once
     at run entry: on when nothing per-cycle-observing is attached (tracer,
     sampler hook, fault injector — attribution is fine, its cells take bulk
     credit). [wake] is a scratch out-parameter of [blocker]: the first
     cycle its verdict can change. [sc_wait]/[sc_waiting] are per-core
     scratch for the step functions, preallocated to stay off the per-cycle
     allocation path. *)
  mutable ff_active : bool;
  mutable wake : int;
  sc_wait : wait option array;
  sc_waiting : bool array;
}

let initial_regs = 64

let fresh_core cfg image id =
  {
    id;
    image;
    pc = 0;
    status = (if id = 0 then Running else Asleep);
    regs = Array.make initial_regs 0;
    ready = Array.make initial_regs 0;
    prod = Array.make initial_regs P_other;
    btrs = Array.make cfg.Config.n_btrs 0;
    btr_ready = Array.make cfg.Config.n_btrs 0;
    fetch_done = 0;
    mem_busy = 0;
    miss_stall_until = 0;
    stall_until = 0;
    tm_snapshot = None;
    tm_serial = false;
    snap = Array.make initial_regs 0;
    snap_epoch = Array.make initial_regs 0;
    snap_gen = 0;
  }

let validate_widths cfg (prog : Program.t) =
  Array.iter
    (fun image ->
      for addr = 0 to Image.length image - 1 do
        Bundle.check ~issue_width:cfg.Config.issue_width
          ~comm_width:cfg.Config.comm_width (Image.fetch image addr)
      done)
    prog.images

let create cfg (prog : Program.t) =
  if Program.n_cores prog <> cfg.Config.n_cores then
    invalid_arg
      (Printf.sprintf "Machine.create: program has %d cores, config %d"
         (Program.n_cores prog) cfg.Config.n_cores);
  validate_widths cfg prog;
  let mem = Memory.create prog.mem_size in
  Memory.load_init mem prog.mem_init;
  let inj =
    if Fault.enabled cfg.fault then Some (Fault.create cfg.fault) else None
  in
  let ecc =
    match inj with
    | None -> None
    | Some _ ->
      let e = Ecc.create () in
      Memory.attach_ecc mem e;
      Some e
  in
  let mesh = Config.mesh cfg in
  let t =
    {
      cfg;
      prog;
      mem;
      tm = Tm.create mem ~n_cores:cfg.n_cores;
      hier = Coherence.create cfg.cache ~n_cores:cfg.n_cores;
      net =
        Net.create ?faults:inj ~hop_cost:cfg.net_hop_cost mesh
          ~receive_capacity:cfg.net_capacity;
      cores = Array.init cfg.n_cores (fun id -> fresh_core cfg prog.images.(id) id);
      st = Stats.create ~n_cores:cfg.n_cores;
      inj;
      ecc;
      mode = Inst.Decoupled;
      now = 0;
      serial_queue = [];
      last_progress = 0;
      tracer = None;
      attr = None;
      on_cycle = None;
      on_sanity = None;
      stop_requested = false;
      blame = None;
      on_window = None;
      ff_active = false;
      wake = max_int;
      sc_wait = Array.make cfg.n_cores None;
      sc_waiting = Array.make cfg.n_cores false;
    }
  in
  (* Core 0's first fetch starts at cycle 0. *)
  t.cores.(0).fetch_done <- Coherence.access t.hier ~now:0 ~core:0 Coherence.Ifetch 0;
  t

let memory t = t.mem
let stats t = t.st
let coherence t = t.hier
let network t = t.net
let tm t = t.tm
let now t = t.now
let mode t = t.mode
let set_tracer t tr = t.tracer <- Some tr

let set_attribution t ~region_of acct =
  if acct.Stats.ra_n_cores <> t.cfg.Config.n_cores then
    invalid_arg "Machine.set_attribution: core count mismatch";
  t.attr <- Some (acct, region_of)

let set_on_cycle t f = t.on_cycle <- Some f
let set_sanity_cycle t f = t.on_sanity <- Some f
let set_blame t f = t.blame <- Some f
let set_on_window t f = t.on_window <- Some f
let request_stop t = t.stop_requested <- true
let pc t ~core = t.cores.(core).pc
let config t = t.cfg

let trace t ev =
  match t.tracer with None -> () | Some tr -> Trace.record tr ev

(* The attribution cell for [core] at [pc] under the current mode, when an
   attribution is attached and the map yields a region in range. *)
let att_cell t ~core ~pc =
  match t.attr with
  | None -> None
  | Some (acct, region_of) ->
    let r = region_of ~core ~pc in
    if r < 0 || r >= acct.Stats.ra_n_regions then None
    else
      let mode_idx = match t.mode with Inst.Coupled -> 0 | Inst.Decoupled -> 1 in
      Some acct.Stats.ra_cells.(r).(mode_idx).(core)

(* --- Register file with growth ------------------------------------------- *)

let ensure_reg cs r =
  let n = Array.length cs.regs in
  if r >= n then begin
    let n' = max (r + 1) (2 * n) in
    let grow a fill =
      let a' = Array.make n' fill in
      Array.blit a 0 a' 0 n;
      a'
    in
    cs.regs <- grow cs.regs 0;
    cs.ready <- grow cs.ready 0;
    cs.prod <- grow cs.prod P_other;
    cs.snap <- grow cs.snap 0;
    (* Epoch 0 never matches a live generation: [snap_gen] starts at 0 and
       is bumped before any snapshot is taken. *)
    cs.snap_epoch <- grow cs.snap_epoch 0
  end

let read_reg cs r =
  ensure_reg cs r;
  cs.regs.(r)

let write_reg cs r v ~ready ~prod =
  ensure_reg cs r;
  cs.regs.(r) <- v;
  cs.ready.(r) <- ready;
  cs.prod.(r) <- prod

let reg t ~core r = read_reg t.cores.(core) r

(* Credit [k] consecutive stall cycles of the same kind at the core's
   current pc — [k = 1] is the ordinary per-cycle path, [k > 1] the
   fast-forward bulk credit (never traced: fast-forward is off whenever a
   tracer is attached). *)
let record_stalls t ~core kind k =
  Stats.add_stall t.st ~core kind k;
  match att_cell t ~core ~pc:t.cores.(core).pc with
  | None -> ()
  | Some cell ->
    let i = Stats.stall_kind_index kind in
    cell.Stats.rc_stalls.(i) <- cell.Stats.rc_stalls.(i) + k

let record_stall t ~core kind =
  record_stalls t ~core kind 1;
  (* Guarded rather than routed through [trace]: the event record must not
     be allocated on the (tracerless) hot path. *)
  match t.tracer with
  | None -> ()
  | Some tr -> Trace.record tr (Trace.Stall { cycle = t.now; core; kind })

(* --- Stall analysis ------------------------------------------------------ *)

let producer_stall = function
  | P_load -> Stats.D_stall
  | P_recv_data -> Stats.Recv_data
  | P_recv_pred -> Stats.Recv_pred
  | P_getb -> Stats.Sync
  | P_other -> Stats.Lat_stall

let stall_of_wait = function
  | W_reg k -> k
  | W_ifetch -> Stats.I_stall
  | W_dmem -> Stats.D_stall
  | W_btr -> Stats.Lat_stall
  | W_recv { kind; _ } -> kind
  | W_getb | W_send_full _ | W_get_latch _ | W_stall_fault | W_barrier _
  | W_commit | W_serial | W_asleep | W_halted ->
    Stats.Sync

(* Which core is [cs] waiting on, when its wait names one — shared by the
   watchdog's diagnosis and the causal profiler's blame edges. *)
let blame_of t cs w =
  match w with
  | W_recv { sender; _ } -> Some sender
  | W_get_latch dir -> Mesh.neighbour (Net.mesh t.net) cs.id dir
  | W_send_full dst -> Some dst
  | W_commit ->
    Array.to_list t.cores
    |> List.find_opt (fun c -> c.status <> At_commit)
    |> Option.map (fun c -> c.id)
  | W_barrier _ ->
    Array.to_list t.cores
    |> List.find_opt (fun c ->
           match c.status with At_barrier _ -> false | _ -> true)
    |> Option.map (fun c -> c.id)
  | W_serial -> (
    match t.serial_queue with
    | head :: _ when head <> cs.id -> Some head
    | _ -> None)
  | W_reg _ | W_ifetch | W_dmem | W_btr | W_getb | W_stall_fault | W_asleep
  | W_halted ->
    None

(* The wait a non-Running status stands for. Only called with the blame
   hook attached — the [W_barrier] case allocates. *)
let wait_of_status = function
  | Running -> assert false
  | Asleep -> W_asleep
  | Halted -> W_halted
  | At_barrier m -> W_barrier m
  | At_commit -> W_commit
  | Wait_serial -> W_serial
  | Stuck w -> w

(* Report [k] cycles of [cs] blocked on [w], resolving the blamed peer.
   The [None] check comes first so the detached path allocates nothing. *)
let blame_wait t cs w k =
  match t.blame with
  | None -> ()
  | Some f ->
    let b_on = match blame_of t cs w with Some c -> c | None -> -1 in
    f ~core:cs.id ~pc:cs.pc ~k ~redo:cs.tm_serial
      (Blame_wait { b_wait = w; b_on })

(* Same, for a core whose status (rather than its blocker) is the wait. *)
let blame_status t cs k =
  match t.blame with
  | None -> ()
  | Some f ->
    let w = wait_of_status cs.status in
    let b_on = match blame_of t cs w with Some c -> c | None -> -1 in
    f ~core:cs.id ~pc:cs.pc ~k ~redo:cs.tm_serial
      (Blame_wait { b_wait = w; b_on })

(* First reason the core cannot issue its current bundle this cycle, or
   [None] when it can. Architecturally side-effect-free; as an
   out-parameter it leaves in [t.wake] the first cycle at which the verdict
   it returned can change (the expiry of the FIRST failing condition in
   scan order — a later condition may then take over, which is why the
   fast-forward window ends there and not at "when the core can issue").
   Wake times that need a network walk are only computed under
   [t.ff_active]; event-driven waits report [max_int]. *)
(* The per-op and per-register scans are toplevel functions threading
   their context as arguments: the blocker runs for every running core
   every cycle, and a local closure here would cost ~20 heap words per
   core-cycle. *)
let blocker_check_op t cs now op =
  match op with
  | Inst.Load _ | Inst.Store _ ->
    if cs.mem_busy > now then begin
      t.wake <- cs.mem_busy;
      Some W_dmem
    end
    else None
  | Inst.Br { btr; _ } ->
    if cs.btr_ready.(btr) > now then begin
      t.wake <- cs.btr_ready.(btr);
      Some W_btr
    end
    else None
  | Inst.Recv { sender; kind; _ } ->
    if Net.recv_ready t.net ~now ~core:cs.id ~sender then None
    else begin
      if t.ff_active then
        t.wake <- Net.next_value_ready t.net ~core:cs.id ~sender;
      Some
        (W_recv
           {
             sender;
             kind =
               (match kind with
               | Inst.Rv_data -> Stats.Recv_data
               | Inst.Rv_pred -> Stats.Recv_pred
               | Inst.Rv_sync -> Stats.Sync);
           })
    end
  | Inst.Getb _ ->
    if Net.getb_ready t.net ~now ~core:cs.id then None
    else begin
      if t.ff_active then t.wake <- Net.getb_wake t.net ~core:cs.id;
      Some W_getb
    end
  | Inst.Send { target; _ } | Inst.Spawn { target; _ } ->
    if Net.pending t.net ~src:cs.id ~dst:target >= t.cfg.net_capacity
    then begin
      (* Drains only when the receiver issues its RECV — event-driven. *)
      t.wake <- max_int;
      Some (W_send_full target)
    end
    else None
  | Inst.Alu _ | Inst.Fpu _ | Inst.Cmp _ | Inst.Select _ | Inst.Mov _
  | Inst.Pbr _ | Inst.Bcast _ | Inst.Put _ | Inst.Get _ | Inst.Sleep
  | Inst.Mode_switch _ | Inst.Tm_begin | Inst.Tm_commit | Inst.Halt
  | Inst.Nop ->
    None

let rec blocker_reg_loop t cs now (u : int array) j =
  if j >= Array.length u then None
  else
    let r = u.(j) in
    if cs.ready.(r) > now then begin
      t.wake <- cs.ready.(r);
      Some (W_reg (producer_stall cs.prod.(r)))
    end
    else blocker_reg_loop t cs now u (j + 1)

let rec blocker_op_loop t cs now (ops : Inst.t array) (uses : int array array)
    n_ops i =
  if i >= n_ops then None
  else
    match blocker_reg_loop t cs now uses.(i) 0 with
    | Some _ as s -> s
    | None -> (
      match blocker_check_op t cs now ops.(i) with
      | Some _ as s -> s
      | None -> blocker_op_loop t cs now ops uses n_ops (i + 1))

let blocker t cs =
  let now = t.now in
  if now < cs.stall_until then begin
    t.wake <- cs.stall_until;
    Some W_stall_fault
  end
  else if now < cs.miss_stall_until then begin
    t.wake <- cs.miss_stall_until;
    Some W_dmem
  end
  else if now < cs.fetch_done then begin
    t.wake <- cs.fetch_done;
    Some W_ifetch
  end
  else begin
    let d = Image.decoded cs.image cs.pc in
    if d.Image.d_max_reg >= 0 then ensure_reg cs d.Image.d_max_reg;
    blocker_op_loop t cs now d.Image.d_ops d.Image.d_uses
      (Array.length d.Image.d_ops) 0
  end

(* --- Bundle execution ----------------------------------------------------- *)

(* VLIW read-before-write: snapshot every source register of the bundle
   before any of its effects land — into the core's generation-stamped
   scratch, so a snapshot costs O(sources) writes and no allocation. *)
let snapshot_sources cs (d : Image.decoded) =
  if d.Image.d_max_reg >= 0 then ensure_reg cs d.Image.d_max_reg;
  cs.snap_gen <- cs.snap_gen + 1;
  let srcs = d.Image.d_srcs in
  for i = 0 to Array.length srcs - 1 do
    let r = srcs.(i) in
    cs.snap.(r) <- cs.regs.(r);
    cs.snap_epoch.(r) <- cs.snap_gen
  done

let read_operand cs (o : Inst.operand) =
  match o with
  | Inst.Imm i -> i
  | Inst.Reg r ->
    if r < Array.length cs.snap_epoch && cs.snap_epoch.(r) = cs.snap_gen then
      cs.snap.(r)
    else failwith "Machine: operand missing from bundle source snapshot"

(* Phase 1: communication-out ops (PUT/BCAST/SEND/SPAWN), executed for all
   issuing cores before any core's phase 2, so that same-cycle PUT/GET and
   BCAST pairing works across cores. *)
let exec_comm_out t cs op =
  let now = t.now in
  match op with
  | Inst.Put { dir; src } -> (
    match Net.put t.net ~now ~src_core:cs.id dir (read_operand cs src) with
    | Ok () -> ()
    | Error e ->
      failwith
        (Printf.sprintf "core %d cycle %d: %s" cs.id now
           (Net.error_to_string (Net.Put_failed { src_core = cs.id; error = e }))))
  | Inst.Bcast { src } ->
    Net.bcast t.net ~now ~src_core:cs.id (read_operand cs src)
  | Inst.Send { target; src } -> (
    let payload = Net.Value (read_operand cs src) in
    (* Guarded, not routed through [trace]: SENDs are frequent and the
       event record must not be allocated on the tracerless path. *)
    (match t.tracer with
    | None -> ()
    | Some tr ->
      Trace.record tr (Trace.Sent { cycle = now; src = cs.id; dst = target }));
    match Net.send t.net ~now ~src:cs.id ~dst:target payload with
    | Ok () -> ()
    | Error Net.Channel_full ->
      (* Overflow NACK: the send is parked and retried with backoff rather
         than wedging the machine (can only arise under fault injection,
         where a retrying message holds its channel slot longer than the
         occupancy the issue check saw). *)
      Net.defer t.net ~now ~src:cs.id ~dst:target payload
    | Error (Net.Bad_destination _ as e) ->
      failwith
        (Printf.sprintf "core %d cycle %d: %s" cs.id now
           (Net.error_to_string (Net.Send_failed e))))
  | Inst.Spawn { target; entry } -> (
    let addr = Image.resolve t.prog.images.(target) entry in
    t.st.spawns <- t.st.spawns + 1;
    trace t (Trace.Spawned { cycle = t.now; by = cs.id; target });
    let payload = Net.Start addr in
    match Net.send t.net ~now ~src:cs.id ~dst:target payload with
    | Ok () -> ()
    | Error Net.Channel_full -> Net.defer t.net ~now ~src:cs.id ~dst:target payload
    | Error (Net.Bad_destination _ as e) ->
      failwith
        (Printf.sprintf "core %d cycle %d: %s" cs.id now
           (Net.error_to_string (Net.Send_failed e))))
  | Inst.Alu _ | Inst.Fpu _ | Inst.Cmp _ | Inst.Select _ | Inst.Load _
  | Inst.Store _ | Inst.Mov _ | Inst.Pbr _ | Inst.Br _ | Inst.Getb _
  | Inst.Get _ | Inst.Recv _ | Inst.Sleep | Inst.Mode_switch _ | Inst.Tm_begin
  | Inst.Tm_commit | Inst.Halt | Inst.Nop ->
    invalid_arg "exec_comm_out: not a communication-out op"

(* Phase 2: everything else. Returns the branch target when the bundle's
   branch is taken. *)
let exec_main t cs op : int option =
  let now = t.now in
  let lat = Config.latency op in
  match op with
  | Inst.Alu { op = a; dst; src1; src2 } ->
    write_reg cs dst (Semantics.alu a (read_operand cs src1) (read_operand cs src2)) ~ready:(now + lat)
      ~prod:P_other;
    None
  | Inst.Fpu { op = f; dst; src1; src2 } ->
    write_reg cs dst (Semantics.fpu f (read_operand cs src1) (read_operand cs src2)) ~ready:(now + lat)
      ~prod:P_other;
    None
  | Inst.Cmp { op = c; dst; src1; src2 } ->
    write_reg cs dst (Semantics.cmp c (read_operand cs src1) (read_operand cs src2)) ~ready:(now + lat)
      ~prod:P_other;
    None
  | Inst.Select { dst; pred; if_true; if_false } ->
    let v = if Semantics.truthy (read_operand cs pred) then read_operand cs if_true else read_operand cs if_false in
    write_reg cs dst v ~ready:(now + lat) ~prod:P_other;
    None
  | Inst.Mov { dst; src } ->
    write_reg cs dst (read_operand cs src) ~ready:(now + lat) ~prod:P_other;
    None
  | Inst.Load { dst; base; offset } ->
    let addr = read_operand cs base + read_operand cs offset in
    let ecc_before = match t.ecc with Some e -> Ecc.corrected e | None -> 0 in
    let v = Tm.read t.tm ~core:cs.id addr in
    let completion = Coherence.access t.hier ~now ~core:cs.id Coherence.Dload addr in
    let completion =
      (* A demand ECC correction adds the detect/correct/writeback penalty
         on top of whatever the hierarchy charged. *)
      match t.ecc with
      | Some e when Ecc.corrected e > ecc_before ->
        completion + t.cfg.fault.Fault.ecc_penalty
      | Some _ | None -> completion
    in
    cs.mem_busy <- max cs.mem_busy completion;
    if completion > now + t.cfg.cache.Coherence.lat_l1 then
      cs.miss_stall_until <- max cs.miss_stall_until completion;
    write_reg cs dst v ~ready:(max (now + lat) completion) ~prod:P_load;
    None
  | Inst.Store { base; offset; src } ->
    let addr = read_operand cs base + read_operand cs offset in
    Tm.write t.tm ~core:cs.id addr (read_operand cs src);
    let completion = Coherence.access t.hier ~now ~core:cs.id Coherence.Dstore addr in
    cs.mem_busy <- max cs.mem_busy completion;
    if completion > now + t.cfg.cache.Coherence.lat_l1 then
      cs.miss_stall_until <- max cs.miss_stall_until completion;
    None
  | Inst.Pbr { btr; target } ->
    cs.btrs.(btr) <- Image.resolve cs.image target;
    cs.btr_ready.(btr) <- now + lat;
    None
  | Inst.Br { btr; pred; invert } ->
    let taken =
      match pred with
      | None -> true
      | Some p ->
        let v = Semantics.truthy (read_operand cs p) in
        if invert then not v else v
    in
    if taken then Some cs.btrs.(btr) else None
  | Inst.Getb { dst } -> (
    match Net.getb t.net ~now ~core:cs.id with
    | Some v ->
      write_reg cs dst v ~ready:(now + lat) ~prod:P_getb;
      None
    | None -> failwith (Printf.sprintf "core %d cycle %d: GETB on empty broadcast" cs.id now))
  | Inst.Get { dir; dst } -> (
    match Net.get t.net ~now ~core:cs.id dir with
    | Some v ->
      write_reg cs dst v ~ready:(now + lat) ~prod:P_other;
      None
    | None ->
      (* No paired PUT: the lock-step contract is broken (compiler or
         program bug). Wedge the core so the watchdog reports a structured
         diagnosis naming it, instead of tearing the simulator down. *)
      cs.status <- Stuck (W_get_latch dir);
      None)
  | Inst.Recv { sender; dst; kind } -> (
    match Net.recv t.net ~now ~core:cs.id ~sender with
    | Some v ->
      (match t.tracer with
      | None -> ()
      | Some tr ->
        Trace.record tr (Trace.Recvd { cycle = now; core = cs.id; sender }));
      let prod =
        match kind with
        | Inst.Rv_data -> P_recv_data
        | Inst.Rv_pred -> P_recv_pred
        | Inst.Rv_sync -> P_other
      in
      write_reg cs dst v ~ready:(now + lat) ~prod;
      None
    | None -> failwith (Printf.sprintf "core %d cycle %d: RECV raced its readiness check" cs.id now))
  | Inst.Sleep ->
    cs.status <- Asleep;
    None
  | Inst.Mode_switch m ->
    cs.status <- At_barrier m;
    None
  | Inst.Tm_begin ->
    if not cs.tm_serial then begin
      Tm.tx_begin t.tm ~core:cs.id;
      cs.tm_snapshot <- Some (Array.copy cs.regs, cs.pc)
    end;
    None
  | Inst.Tm_commit ->
    if cs.tm_serial then cs.tm_serial <- false (* serial chunk done *)
    else cs.status <- At_commit;
    None
  | Inst.Halt ->
    cs.status <- Halted;
    None
  | Inst.Nop -> None
  | Inst.Put _ | Inst.Bcast _ | Inst.Send _ | Inst.Spawn _ ->
    invalid_arg "exec_main: communication-out op in phase 2"

let initiate_fetch t cs =
  cs.fetch_done <-
    Coherence.access t.hier ~now:t.now ~core:cs.id Coherence.Ifetch cs.pc

(* Run one issuing core's full bundle (both phases are driven by the cycle
   loop; this is phase 2 plus pc update). *)
let finish_issue t cs (d : Image.decoded) =
  let issued_pc = cs.pc in
  (* [tm_serial] can be cleared mid-bundle by this bundle's TM_COMMIT, so
     capture it now: the serial chunk's final bundle is still re-execution
     work to the causal profiler. *)
  let was_redo = cs.tm_serial in
  let ops = d.Image.d_ops in
  let target = ref None in
  for i = 0 to Array.length ops - 1 do
    if not d.Image.d_comm_out.(i) then
      match exec_main t cs ops.(i) with
      | Some _ as tgt -> target := tgt
      | None -> ()
  done;
  let target = !target in
  let core_st = Stats.core t.st cs.id in
  core_st.busy <- core_st.busy + 1;
  core_st.bundles <- core_st.bundles + 1;
  (match att_cell t ~core:cs.id ~pc:issued_pc with
  | None -> ()
  | Some cell -> cell.Stats.rc_busy <- cell.Stats.rc_busy + 1);
  (match t.blame with
  | None -> ()
  | Some f -> f ~core:cs.id ~pc:issued_pc ~k:1 ~redo:was_redo Blame_busy);
  core_st.ops <- core_st.ops + d.Image.d_real_ops;
  core_st.ops_mem <- core_st.ops_mem + d.Image.d_n_mem;
  core_st.ops_comm <- core_st.ops_comm + d.Image.d_n_comm;
  core_st.ops_mul_div <- core_st.ops_mul_div + d.Image.d_n_muldiv;
  t.last_progress <- t.now;
  (match cs.status with
  | Running ->
    cs.pc <- (match target with Some tgt -> tgt | None -> cs.pc + 1);
    initiate_fetch t cs
  | Asleep | Halted -> ()
  | Stuck _ ->
    (* The bundle did not complete; freeze the pc for the diagnosis. *)
    ()
  | At_barrier _ | At_commit | Wait_serial ->
    (* Resume point: past this bundle (barrier ops never co-issue with a
       taken branch in generated code, but honour one if present). *)
    cs.pc <- (match target with Some tgt -> tgt | None -> cs.pc + 1));
  match t.tracer with
  | None -> ()
  | Some tr ->
    Trace.record tr
      (Trace.Issue
         { cycle = t.now; core = cs.id; pc = issued_pc; ops = d.Image.d_real_ops })

(* --- Per-cycle stepping --------------------------------------------------- *)

let record_idles t cs k =
  let core_st = Stats.core t.st cs.id in
  core_st.idle <- core_st.idle + k;
  (match t.blame with
  | None -> ()
  | Some f ->
    (* A just-woken core (status already Running in [try_wake]) spent the
       cycle asleep waiting for its START — report it as such. *)
    let w = if cs.status = Halted then W_halted else W_asleep in
    f ~core:cs.id ~pc:cs.pc ~k ~redo:false (Blame_wait { b_wait = w; b_on = -1 }));
  match att_cell t ~core:cs.id ~pc:cs.pc with
  | None -> ()
  | Some cell -> cell.Stats.rc_idle <- cell.Stats.rc_idle + k

let record_idle t cs = record_idles t cs 1

let try_wake t cs =
  match Net.take_start t.net ~now:t.now ~core:cs.id with
  | Some addr ->
    cs.pc <- addr;
    cs.status <- Running;
    initiate_fetch t cs;
    record_idle t cs
  | None -> record_idle t cs

(* --- Stall fast-forward ----------------------------------------------------

   When no core can change machine state this cycle, every per-cycle
   verdict is frozen until the expiry of its core's first failing
   condition (scoreboard thresholds and message arrival times are fixed
   while nothing issues, and event-driven waits cannot clear on their
   own). The step functions detect that configuration, credit the whole
   window's stalls/idles in one bulk update to the very same counters and
   attribution cells, and jump [t.now] to the window end — bit-identical
   to stepping each cycle, minus the wall-clock. *)

(* Last cycle of the window starting at [t.now]: the cycle before the
   earliest verdict change, clipped so Out_of_cycles and the watchdog fire
   at exactly the cycle the per-cycle loop would. [min_wake > t.now]
   always (a currently-failing condition cannot expire in the past), so
   the window is never empty. *)
let window_end t ~min_wake =
  min (min_wake - 1)
    (min t.cfg.Config.max_cycles (t.last_progress + t.cfg.Config.watchdog + 1))

(* Credit [k] cycles of the frozen configuration captured in [sc_wait]:
   exactly what [k] repetitions of the per-cycle sweep would record. *)
let bulk_credit t k =
  let cores = t.cores in
  for i = 0 to Array.length cores - 1 do
    let cs = cores.(i) in
    match cs.status with
    | Halted | Asleep -> record_idles t cs k
    | Wait_serial | At_barrier _ | At_commit | Stuck _ ->
      blame_status t cs k;
      record_stalls t ~core:cs.id Stats.Sync k
    | Running -> (
      match t.sc_wait.(i) with
      | Some w ->
        blame_wait t cs w k;
        record_stalls t ~core:cs.id (stall_of_wait w) k
      | None -> assert false)
  done

(* Issue one decoupled core's bundle: snapshot, phase 1 (communication
   out), phase 2. *)
let issue_decoupled t cs =
  let d = Image.decoded cs.image cs.pc in
  snapshot_sources cs d;
  if d.Image.d_has_comm_out then begin
    let ops = d.Image.d_ops in
    for i = 0 to Array.length ops - 1 do
      if d.Image.d_comm_out.(i) then exec_comm_out t cs ops.(i)
    done
  end;
  finish_issue t cs d

let decoupled_core_step t cs =
  match cs.status with
  | Halted -> record_idle t cs
  | Asleep -> try_wake t cs
  | Wait_serial | At_barrier _ | At_commit | Stuck _ ->
    blame_status t cs 1;
    record_stall t ~core:cs.id Stats.Sync
  | Running -> (
    match blocker t cs with
    | Some w ->
      blame_wait t cs w 1;
      record_stall t ~core:cs.id (stall_of_wait w)
    | None -> issue_decoupled t cs)

(* Decoupled: each core progresses independently, in core order — a core's
   issue is visible to later cores' checks within the same cycle. *)
let decoupled_step t =
  let cores = t.cores in
  let n = Array.length cores in
  if not t.ff_active then
    for i = 0 to n - 1 do
      decoupled_core_step t cores.(i)
    done
  else begin
    (* Probe for a fast-forward window: per-core verdicts in core order,
       stopping at the first core that would change machine state this
       cycle. [blocker] is effect-free, so the probed verdicts for the
       frozen prefix are exactly what the sequential sweep computes. *)
    let live = ref (-1) in
    let min_wake = ref max_int in
    let i = ref 0 in
    while !live < 0 && !i < n do
      let cs = cores.(!i) in
      (match cs.status with
      | Halted | Wait_serial | At_barrier _ | At_commit | Stuck _ ->
        t.sc_wait.(!i) <- None
      | Asleep ->
        t.sc_wait.(!i) <- None;
        let w = Net.next_start_ready t.net ~core:cs.id in
        if w <= t.now then live := !i
        else if w < !min_wake then min_wake := w
      | Running -> (
        t.wake <- max_int;
        match blocker t cs with
        | None -> live := !i
        | Some _ as b ->
          t.sc_wait.(!i) <- b;
          if t.wake < !min_wake then min_wake := t.wake));
      if !live < 0 then incr i
    done;
    if !live < 0 then begin
      let e = window_end t ~min_wake:!min_wake in
      let k = e - t.now + 1 in
      if k > 1 then begin
        t.st.decoupled_cycles <- t.st.decoupled_cycles + (k - 1);
        t.now <- e
      end;
      bulk_credit t k
    end
    else begin
      (* Replay the frozen prefix for this one cycle (an asleep prefix core
         has no deliverable START, so its [try_wake] is just an idle), then
         run the state-changing sweep from the live core onward. *)
      for j = 0 to !live - 1 do
        let cs = cores.(j) in
        match cs.status with
        | Halted | Asleep -> record_idle t cs
        | Wait_serial | At_barrier _ | At_commit | Stuck _ ->
          blame_status t cs 1;
          record_stall t ~core:cs.id Stats.Sync
        | Running -> (
          match t.sc_wait.(j) with
          | Some w ->
            blame_wait t cs w 1;
            record_stall t ~core:cs.id (stall_of_wait w)
          | None -> assert false)
      done;
      for j = !live to n - 1 do
        decoupled_core_step t cores.(j)
      done
    end
  end

(* Coupled: lock-step with the stall bus — either every running core
   issues, or none does. One indexed scan computes the verdicts (and
   checks the status invariant off the issue path); the issue path then
   runs its three passes (snapshot, communication-out, main) so VLIW
   read-before-write and same-cycle PUT/GET pairing hold across cores. *)
let coupled_step t =
  let cores = t.cores in
  let n = Array.length cores in
  let n_blocked = ref 0 in
  let any_running_unblocked = ref false in
  let has_d = ref false and has_i = ref false in
  let first_kind = ref Stats.Sync in
  let min_wake = ref max_int in
  for i = 0 to n - 1 do
    let cs = cores.(i) in
    t.sc_waiting.(i) <- false;
    match cs.status with
    | Running -> (
      t.wake <- max_int;
      match blocker t cs with
      | None ->
        t.sc_wait.(i) <- None;
        any_running_unblocked := true
      | Some w as b ->
        t.sc_wait.(i) <- b;
        let k = stall_of_wait w in
        if !n_blocked = 0 then first_kind := k;
        incr n_blocked;
        (match k with
        | Stats.D_stall -> has_d := true
        | Stats.I_stall -> has_i := true
        | Stats.Lat_stall | Stats.Recv_data | Stats.Recv_pred | Stats.Sync ->
          ());
        if t.wake < !min_wake then min_wake := t.wake)
    | At_barrier _ | Stuck _ ->
      t.sc_wait.(i) <- None;
      t.sc_waiting.(i) <- true
    | Asleep | Halted | At_commit | Wait_serial ->
      failwith
        (Printf.sprintf "core %d in unexpected state during coupled mode" cs.id)
  done;
  let bulked =
    !n_blocked > 0 && t.ff_active && not !any_running_unblocked
  in
  if bulked then begin
    (* Every running core is blocked with its own verdict (the group-stall
       "dominant" kind is moot), so the window credit is exact; waiting
       cores take their Sync cycles in the same bulk update. *)
    let e = window_end t ~min_wake:!min_wake in
    let k = e - t.now + 1 in
    if k > 1 then begin
      t.st.coupled_cycles <- t.st.coupled_cycles + (k - 1);
      t.now <- e
    end;
    bulk_credit t k
  end
  else if !n_blocked > 0 then begin
    (* Group stall: a core with its own reason records it; the rest record
       the peers' dominant reason (D over I over the first in core order). *)
    let dominant =
      if !has_d then Stats.D_stall
      else if !has_i then Stats.I_stall
      else !first_kind
    in
    for i = 0 to n - 1 do
      let cs = cores.(i) in
      if cs.status = Running then
        match t.sc_wait.(i) with
        | Some w ->
          blame_wait t cs w 1;
          record_stall t ~core:cs.id (stall_of_wait w)
        | None ->
          (* Issueable, held only by the stall bus: blamed on the dominant
             peer reason, the lock-step overhead the coupled mode pays. *)
          (match t.blame with
          | None -> ()
          | Some f ->
            f ~core:cs.id ~pc:cs.pc ~k:1 ~redo:cs.tm_serial
              (Blame_lockstep { b_kind = dominant }));
          record_stall t ~core:cs.id dominant
    done
  end
  else begin
    (* Phase 0: snapshot every issuing core's sources before any effects. *)
    for i = 0 to n - 1 do
      let cs = cores.(i) in
      if cs.status = Running then
        snapshot_sources cs (Image.decoded cs.image cs.pc)
    done;
    (* Phase 1: communication-out for all cores, so same-cycle PUT/GET and
       BCAST pairing works regardless of core order. *)
    for i = 0 to n - 1 do
      let cs = cores.(i) in
      if cs.status = Running then begin
        let d = Image.decoded cs.image cs.pc in
        if d.Image.d_has_comm_out then begin
          let ops = d.Image.d_ops in
          for j = 0 to Array.length ops - 1 do
            if d.Image.d_comm_out.(j) then exec_comm_out t cs ops.(j)
          done
        end
      end
    done;
    (* Phase 2. *)
    for i = 0 to n - 1 do
      let cs = cores.(i) in
      if cs.status = Running then
        finish_issue t cs (Image.decoded cs.image cs.pc)
    done
  end;
  (* Cores already waiting at the exit barrier count sync stalls. Only
     those waiting when the cycle began: a core that issued the barrier
     bundle this very cycle already recorded that cycle as busy. (The bulk
     path credited them inside [bulk_credit].) *)
  if not bulked then
    for i = 0 to n - 1 do
      if t.sc_waiting.(i) then begin
        blame_status t cores.(i) 1;
        record_stall t ~core:cores.(i).id Stats.Sync
      end
    done

(* --- Fault injection ------------------------------------------------------ *)

(* One injection opportunity per cycle: maybe flip a bit somewhere in data
   memory, and maybe freeze each running core for [stall_cycles]. Message
   faults are rolled by the network at each transmission, and spurious TM
   aborts at each commit round. *)
let inject_faults t =
  match t.inj with
  | None -> ()
  | Some f ->
    if Fault.roll_flip f then begin
      let addr = Fault.pick_addr f ~size:(Memory.size t.mem) in
      Memory.corrupt t.mem addr ~flip:(Fault.flip_bit f)
    end;
    Array.iter
      (fun cs ->
        if cs.status = Running && Fault.roll_stall f then
          cs.stall_until <-
            max cs.stall_until (t.now + t.cfg.fault.Fault.stall_cycles))
      t.cores

(* --- End-of-cycle resolution ---------------------------------------------- *)

let resolve_mode_barrier t =
  (* Checked every cycle: scan without materialising a status array. *)
  let n = Array.length t.cores in
  let rec all_at_barrier i =
    i >= n
    ||
    match t.cores.(i).status with
    | At_barrier _ -> all_at_barrier (i + 1)
    | Running | Asleep | Halted | At_commit | Wait_serial | Stuck _ -> false
  in
  if all_at_barrier 0 then begin
    let target =
      match t.cores.(0).status with
      | At_barrier m -> m
      | Running | Asleep | Halted | At_commit | Wait_serial | Stuck _ ->
        assert false
    in
    Array.iter
      (fun cs ->
        (match cs.status with
        | At_barrier m when m = target -> ()
        | At_barrier _ ->
          failwith "mode-switch barrier with disagreeing target modes"
        | Running | Asleep | Halted | At_commit | Wait_serial | Stuck _ ->
          assert false);
        cs.status <- Running;
        initiate_fetch t cs)
      t.cores;
    t.mode <- target;
    t.st.mode_switches <- t.st.mode_switches + 1;
    trace t (Trace.Mode_change { cycle = t.now; mode = target });
    t.last_progress <- t.now
  end

let rollback t cs =
  match cs.tm_snapshot with
  | None -> failwith (Printf.sprintf "core %d: TM rollback without snapshot" cs.id)
  | Some (regs, pc) ->
    cs.regs <- Array.copy regs;
    cs.ready <- Array.make (Array.length regs) t.now;
    cs.prod <- Array.make (Array.length regs) P_other;
    cs.pc <- pc;
    cs.tm_serial <- true

(* Shared recovery tail for real conflicts and spurious aborts: roll the
   aborted cores back to their chunk snapshots and re-execute them serially
   in core order. *)
let abort_and_serialize t aborted =
  List.iter (fun c -> rollback t t.cores.(c)) aborted;
  (match aborted with
  | [] -> assert false
  | head :: rest ->
    let cs = t.cores.(head) in
    cs.status <- Running;
    initiate_fetch t cs;
    trace t (Trace.Serial_start { cycle = t.now; core = head });
    List.iter (fun c -> t.cores.(c).status <- Wait_serial) rest);
  t.serial_queue <- aborted

let release_committed t committed =
  List.iter
    (fun c ->
      let cs = t.cores.(c) in
      cs.status <- Running;
      cs.tm_snapshot <- None;
      initiate_fetch t cs)
    committed

(* A TM round resolves only when EVERY core is in a transaction and waiting
   at TM_COMMIT. This enforces the paper's in-order chunk commit: chunk i+1
   can never commit before chunk i, even if its core raced ahead, so the
   codegen contract is that every DOALL round runs one (possibly empty)
   chunk on every core. *)
let resolve_tm_round t =
  (* Checked every cycle: test readiness without building the participant
     list; it is only materialised once a round actually resolves. *)
  let n = t.cfg.Config.n_cores in
  let rec ready c =
    c >= n
    || (t.cores.(c).status = At_commit && Tm.in_tx t.tm ~core:c && ready (c + 1))
  in
  if ready 0 then begin
    let participants = List.init t.cfg.n_cores (fun c -> c) in
    t.st.tm_rounds <- t.st.tm_rounds + 1;
    t.last_progress <- t.now;
    let spurious =
      match t.inj with
      | Some f when Fault.roll_tm_abort f ->
        Some (Fault.victim f ~n:t.cfg.n_cores)
      | Some _ | None -> None
    in
    match spurious with
    | Some v -> (
      (* A corrupted speculative chunk is indistinguishable from a real
         conflict to the recovery machinery: commit the clean prefix, abort
         the victim and everything after it, and reuse the serial
         re-execution path. The prefix commit can itself surface a real
         conflict, in which case the earlier core wins. *)
      let prefix = List.filter (fun c -> c < v) participants in
      let first =
        match if prefix = [] then `All_committed else Tm.commit_round t.tm ~cores:prefix with
        | `All_committed -> v
        | `Conflict_at c ->
          t.st.tm_conflicts <- t.st.tm_conflicts + 1;
          c
      in
      List.iter
        (fun c -> if c >= v then Tm.abort t.tm ~core:c)
        participants;
      trace t (Trace.Tm_round { cycle = t.now; conflict_at = Some first });
      let committed, aborted = List.partition (fun c -> c < first) participants in
      release_committed t committed;
      abort_and_serialize t aborted)
    | None -> (
      match Tm.commit_round t.tm ~cores:participants with
      | `All_committed ->
        trace t (Trace.Tm_round { cycle = t.now; conflict_at = None });
        release_committed t participants
      | `Conflict_at first ->
        t.st.tm_conflicts <- t.st.tm_conflicts + 1;
        trace t (Trace.Tm_round { cycle = t.now; conflict_at = Some first });
        let committed, aborted = List.partition (fun c -> c < first) participants in
        release_committed t committed;
        abort_and_serialize t aborted)
  end

let resolve_serial_queue t =
  match t.serial_queue with
  | [] -> ()
  | head :: rest ->
    let cs = t.cores.(head) in
    (* The head finished its serial re-execution when its Tm_commit cleared
       the serial flag. *)
    if (not cs.tm_serial) && cs.status <> Wait_serial then begin
      t.serial_queue <- rest;
      match rest with
      | [] -> ()
      | next :: _ ->
        let ncs = t.cores.(next) in
        ncs.status <- Running;
        initiate_fetch t ncs;
        trace t (Trace.Serial_start { cycle = t.now; core = next });
        t.last_progress <- t.now
    end

let finished t =
  t.cores.(0).status = Halted
  && Array.for_all
       (fun cs -> match cs.status with Halted | Asleep -> true | _ -> false)
       t.cores
  && Net.idle t.net

(* --- Structured watchdog diagnosis ---------------------------------------- *)

let stall_kind_name = Stats.stall_kind_label

let wait_to_string = function
  | W_reg k -> Printf.sprintf "operand in flight (%s)" (stall_kind_name k)
  | W_ifetch -> "instruction fetch in flight"
  | W_dmem -> "memory unit busy"
  | W_btr -> "branch-target register in flight"
  | W_recv { sender; kind } ->
    Printf.sprintf "RECV from core %d (%s): nothing deliverable" sender
      (stall_kind_name kind)
  | W_getb -> "GETB: broadcast not yet visible"
  | W_send_full dst -> Printf.sprintf "SEND: channel to core %d full" dst
  | W_get_latch dir ->
    let d =
      match dir with
      | Inst.North -> "north"
      | Inst.South -> "south"
      | Inst.East -> "east"
      | Inst.West -> "west"
    in
    Printf.sprintf "GET %s on an empty latch (no paired PUT)" d
  | W_stall_fault -> "injected stall fault"
  | W_barrier m -> Format.asprintf "at mode barrier -> %a" Inst.pp_mode m
  | W_commit -> "at TM commit, waiting for the round"
  | W_serial -> "waiting for the serial-re-execution token"
  | W_asleep -> "asleep"
  | W_halted -> "halted"

let core_wait t cs =
  match cs.status with
  | Running -> blocker t cs
  | Stuck w -> Some w
  | Asleep -> Some W_asleep
  | Halted -> Some W_halted
  | At_barrier m -> Some (W_barrier m)
  | At_commit -> Some W_commit
  | Wait_serial -> Some W_serial

let diagnose t =
  let d_cores =
    Array.map
      (fun cs ->
        {
          d_core = cs.id;
          d_pc = cs.pc;
          d_wait = core_wait t cs;
          d_bundle =
            Format.asprintf "%a" Bundle.pp
              (if cs.pc < Image.length cs.image then Image.fetch cs.image cs.pc
               else []);
        })
      t.cores
  in
  let d_blame =
    Array.to_list d_cores
    |> List.filter_map (fun d ->
           match d.d_wait with
           | Some ((W_asleep | W_halted) as _w) -> None
           | Some w ->
             Option.map (fun b -> (d.d_core, b)) (blame_of t t.cores.(d.d_core) w)
           | None -> None)
    |> function
    | [] -> None
    | edge :: _ -> Some edge
  in
  {
    d_cycle = t.now;
    d_last_progress = t.last_progress;
    d_mode = t.mode;
    d_cores;
    d_queue = Net.in_flight_summary t.net;
    d_blame;
  }

let pp_diagnosis ppf d =
  Format.fprintf ppf "no progress since cycle %d (now %d), mode %a@,"
    d.d_last_progress d.d_cycle Inst.pp_mode d.d_mode;
  Array.iter
    (fun c ->
      Format.fprintf ppf "  core %d: pc=%d %s bundle={%s}@," c.d_core c.d_pc
        (match c.d_wait with
        | Some w -> wait_to_string w
        | None -> "issueable?")
        c.d_bundle)
    d.d_cores;
  (match d.d_queue with
  | [] -> ()
  | q ->
    Format.fprintf ppf "  in flight:@,";
    List.iter
      (fun (src, dst, descr) ->
        Format.fprintf ppf "    %d -> %d: %s@," src dst descr)
      q);
  match d.d_blame with
  | None -> ()
  | Some (blocked, blamed) ->
    Format.fprintf ppf "  blame: core %d is waiting on core %d@," blocked blamed

let diagnosis_to_string d = Format.asprintf "@[<v>%a@]" pp_diagnosis d

(* --- Run loop -------------------------------------------------------------- *)

let finalize_counters t =
  let ns = Net.stats t.net in
  t.st.net_retries <- ns.Net.retries;
  t.st.net_nacks <- ns.Net.nacks;
  (match t.inj with
  | None -> ()
  | Some f ->
    let c = Fault.counters f in
    t.st.faults_injected <- c.Fault.injected;
    t.st.msgs_dropped <- c.Fault.msgs_dropped;
    t.st.msgs_corrupted <- c.Fault.msgs_corrupted;
    t.st.spurious_aborts <- c.Fault.spurious_aborts;
    t.st.stall_faults <- c.Fault.stall_faults);
  match t.ecc with
  | None -> ()
  | Some e ->
    t.st.ecc_corrected <- Ecc.corrected e;
    t.st.ecc_scrubbed <- Ecc.scrubbed e;
    t.st.flips_masked <- Ecc.masked e

let run t =
  (* Fast-forward needs every skipped cycle to be observationally dead:
     any per-cycle observer (tracer, sampler hook) or per-cycle randomness
     (fault injector) forces the cycle-by-cycle path. Attribution stays
     compatible — its cells take the same credit in bulk. *)
  t.ff_active <-
    t.cfg.Config.fast_forward
    && (match t.inj with None -> true | Some _ -> false)
    && (match t.tracer with None -> true | Some _ -> false)
    && (match t.on_cycle with None -> true | Some _ -> false)
    && (match t.on_sanity with None -> true | Some _ -> false);
  let outcome = ref None in
  while !outcome = None do
    t.now <- t.now + 1;
    if t.now > t.cfg.max_cycles then outcome := Some Out_of_cycles
    else begin
      let c0 = t.now in
      inject_faults t;
      Net.service t.net ~now:t.now;
      (match t.mode with
      | Inst.Coupled ->
        t.st.coupled_cycles <- t.st.coupled_cycles + 1;
        coupled_step t
      | Inst.Decoupled ->
        t.st.decoupled_cycles <- t.st.decoupled_cycles + 1;
        decoupled_step t);
      resolve_mode_barrier t;
      resolve_tm_round t;
      resolve_serial_queue t;
      (match t.on_cycle with None -> () | Some f -> f ~now:t.now);
      (* The step may have fast-forwarded: report the whole covered window.
         [c0 = t.now] when it stepped one cycle. *)
      (match t.on_window with None -> () | Some f -> f ~from:c0 ~upto:t.now);
      (match t.on_sanity with None -> () | Some f -> f ~now:t.now);
      if t.stop_requested then outcome := Some (Stopped (diagnose t))
      else if finished t then outcome := Some Finished
      else if (match t.inj with Some f -> Fault.exceeded f | None -> false)
      then outcome := Some (Fault_limit (diagnose t))
      else if t.now - t.last_progress > t.cfg.watchdog then
        outcome := Some (Deadlock (diagnose t))
    end
  done;
  t.st.cycles <- t.now;
  (* End-of-run scrub: correct any injected flip that was never read, so the
     architectural image (and its checksum) matches the fault-free run. *)
  Memory.scrub t.mem;
  finalize_counters t;
  let outcome = match !outcome with Some o -> o | None -> assert false in
  { outcome; cycles = t.now; checksum = Memory.checksum t.mem }
