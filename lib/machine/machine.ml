module Inst = Voltron_isa.Inst
module Bundle = Voltron_isa.Bundle
module Image = Voltron_isa.Image
module Program = Voltron_isa.Program
module Semantics = Voltron_isa.Semantics
module Memory = Voltron_mem.Memory
module Tm = Voltron_mem.Tm
module Coherence = Voltron_mem.Coherence
module Mesh = Voltron_net.Mesh
module Net = Voltron_net.Operand_network
module Fault = Voltron_fault.Fault
module Ecc = Voltron_fault.Ecc

(* Why a core cannot make progress this cycle — the unit of the watchdog's
   structured diagnosis, and (mapped through [stall_of_wait]) of the stall
   accounting. *)
type wait =
  | W_reg of Stats.stall_kind  (** scoreboard: source operand in flight *)
  | W_ifetch
  | W_dmem
  | W_btr  (** branch-target register still being written *)
  | W_recv of { sender : int; kind : Stats.stall_kind }
  | W_getb
  | W_send_full of int  (** receive queue of that core at capacity *)
  | W_get_latch of Inst.dir  (** GET on an empty direct-mode latch *)
  | W_stall_fault  (** injected transient stall in effect *)
  | W_barrier of Inst.mode
  | W_commit
  | W_serial
  | W_asleep
  | W_halted

type core_diag = {
  d_core : int;
  d_pc : int;
  d_wait : wait option;  (** [None]: the core could issue (not the culprit) *)
  d_bundle : string;  (** rendering of the bundle the core is stuck on *)
}

type diagnosis = {
  d_cycle : int;
  d_last_progress : int;
  d_mode : Inst.mode;
  d_cores : core_diag array;
  d_queue : (int * int * string) list;  (** in-flight messages: src, dst, state *)
  d_blame : (int * int) option;  (** blocked core -> core it is waiting on *)
}

type outcome =
  | Finished
  | Out_of_cycles
  | Deadlock of diagnosis
  | Fault_limit of diagnosis

type result = {
  outcome : outcome;
  cycles : int;
  checksum : int;
}

type status =
  | Running
  | Asleep
  | Halted
  | At_barrier of Inst.mode
  | At_commit
  | Wait_serial
  | Stuck of wait
      (** wedged mid-bundle on a condition that can never clear (e.g. GET
          with no paired PUT); the watchdog will convert it to a diagnosis *)

(* What produced a register's in-flight value: classifies scoreboard
   stalls (paper Fig. 12 taxonomy). *)
type producer = P_load | P_recv_data | P_recv_pred | P_getb | P_other

type core_state = {
  id : int;
  image : Image.t;
  mutable pc : int;
  mutable status : status;
  mutable regs : int array;
  mutable ready : int array;
  mutable prod : producer array;
  btrs : int array;
  btr_ready : int array;
  mutable fetch_done : int;
  mutable mem_busy : int;
  (* In-order blocking cache (paper §3.2: "if one core stalls due to cache
     misses, all the cores must stall"): a miss freezes the core until the
     fill completes; hits stay pipelined through the scoreboard. *)
  mutable miss_stall_until : int;
  (* Injected transient stall fault: the core freezes until this cycle. *)
  mutable stall_until : int;
  (* Chunk snapshot for TM rollback: register file + the chunk's start pc. *)
  mutable tm_snapshot : (int array * int) option;
  mutable tm_serial : bool;
}

type t = {
  cfg : Config.t;
  prog : Program.t;
  mem : Memory.t;
  tm : Tm.t;
  hier : Coherence.t;
  net : Net.t;
  cores : core_state array;
  st : Stats.t;
  inj : Fault.t option;  (** fault injector; [None] when all rates are 0 *)
  ecc : Ecc.t option;  (** ECC shadow state, present iff [inj] is *)
  mutable mode : Inst.mode;
  mutable now : int;
  mutable serial_queue : int list;
  mutable last_progress : int;
  mutable tracer : Trace.t option;
  (* Per-region cycle attribution: the store plus the pc->region map the
     observability layer derived from the compiler's region extents. *)
  mutable attr : (Stats.region_acct * (core:int -> pc:int -> int)) option;
  mutable on_cycle : (now:int -> unit) option;
}

let initial_regs = 64

let fresh_core cfg image id =
  {
    id;
    image;
    pc = 0;
    status = (if id = 0 then Running else Asleep);
    regs = Array.make initial_regs 0;
    ready = Array.make initial_regs 0;
    prod = Array.make initial_regs P_other;
    btrs = Array.make cfg.Config.n_btrs 0;
    btr_ready = Array.make cfg.Config.n_btrs 0;
    fetch_done = 0;
    mem_busy = 0;
    miss_stall_until = 0;
    stall_until = 0;
    tm_snapshot = None;
    tm_serial = false;
  }

let validate_widths cfg (prog : Program.t) =
  Array.iter
    (fun image ->
      for addr = 0 to Image.length image - 1 do
        Bundle.check ~issue_width:cfg.Config.issue_width
          ~comm_width:cfg.Config.comm_width (Image.fetch image addr)
      done)
    prog.images

let create cfg (prog : Program.t) =
  if Program.n_cores prog <> cfg.Config.n_cores then
    invalid_arg
      (Printf.sprintf "Machine.create: program has %d cores, config %d"
         (Program.n_cores prog) cfg.Config.n_cores);
  validate_widths cfg prog;
  let mem = Memory.create prog.mem_size in
  Memory.load_init mem prog.mem_init;
  let inj =
    if Fault.enabled cfg.fault then Some (Fault.create cfg.fault) else None
  in
  let ecc =
    match inj with
    | None -> None
    | Some _ ->
      let e = Ecc.create () in
      Memory.attach_ecc mem e;
      Some e
  in
  let mesh = Config.mesh cfg in
  let t =
    {
      cfg;
      prog;
      mem;
      tm = Tm.create mem ~n_cores:cfg.n_cores;
      hier = Coherence.create cfg.cache ~n_cores:cfg.n_cores;
      net = Net.create ?faults:inj mesh ~receive_capacity:cfg.net_capacity;
      cores = Array.init cfg.n_cores (fun id -> fresh_core cfg prog.images.(id) id);
      st = Stats.create ~n_cores:cfg.n_cores;
      inj;
      ecc;
      mode = Inst.Decoupled;
      now = 0;
      serial_queue = [];
      last_progress = 0;
      tracer = None;
      attr = None;
      on_cycle = None;
    }
  in
  (* Core 0's first fetch starts at cycle 0. *)
  t.cores.(0).fetch_done <- Coherence.access t.hier ~now:0 ~core:0 Coherence.Ifetch 0;
  t

let memory t = t.mem
let stats t = t.st
let coherence t = t.hier
let network t = t.net
let now t = t.now
let mode t = t.mode
let set_tracer t tr = t.tracer <- Some tr

let set_attribution t ~region_of acct =
  if acct.Stats.ra_n_cores <> t.cfg.Config.n_cores then
    invalid_arg "Machine.set_attribution: core count mismatch";
  t.attr <- Some (acct, region_of)

let set_on_cycle t f = t.on_cycle <- Some f

let trace t ev =
  match t.tracer with None -> () | Some tr -> Trace.record tr ev

(* The attribution cell for [core] at [pc] under the current mode, when an
   attribution is attached and the map yields a region in range. *)
let att_cell t ~core ~pc =
  match t.attr with
  | None -> None
  | Some (acct, region_of) ->
    let r = region_of ~core ~pc in
    if r < 0 || r >= acct.Stats.ra_n_regions then None
    else
      let mode_idx = match t.mode with Inst.Coupled -> 0 | Inst.Decoupled -> 1 in
      Some acct.Stats.ra_cells.(r).(mode_idx).(core)

(* --- Register file with growth ------------------------------------------- *)

let ensure_reg cs r =
  let n = Array.length cs.regs in
  if r >= n then begin
    let n' = max (r + 1) (2 * n) in
    let grow a fill =
      let a' = Array.make n' fill in
      Array.blit a 0 a' 0 n;
      a'
    in
    cs.regs <- grow cs.regs 0;
    cs.ready <- grow cs.ready 0;
    cs.prod <- grow cs.prod P_other
  end

let read_reg cs r =
  ensure_reg cs r;
  cs.regs.(r)

let write_reg cs r v ~ready ~prod =
  ensure_reg cs r;
  cs.regs.(r) <- v;
  cs.ready.(r) <- ready;
  cs.prod.(r) <- prod

let reg t ~core r = read_reg t.cores.(core) r

let record_stall t ~core kind =
  Stats.record_stall t.st ~core kind;
  (match att_cell t ~core ~pc:t.cores.(core).pc with
  | None -> ()
  | Some cell ->
    let i = Stats.stall_kind_index kind in
    cell.Stats.rc_stalls.(i) <- cell.Stats.rc_stalls.(i) + 1);
  trace t (Trace.Stall { cycle = t.now; core; kind })

(* --- Stall analysis ------------------------------------------------------ *)

let producer_stall = function
  | P_load -> Stats.D_stall
  | P_recv_data -> Stats.Recv_data
  | P_recv_pred -> Stats.Recv_pred
  | P_getb -> Stats.Sync
  | P_other -> Stats.Lat_stall

let stall_of_wait = function
  | W_reg k -> k
  | W_ifetch -> Stats.I_stall
  | W_dmem -> Stats.D_stall
  | W_btr -> Stats.Lat_stall
  | W_recv { kind; _ } -> kind
  | W_getb | W_send_full _ | W_get_latch _ | W_stall_fault | W_barrier _
  | W_commit | W_serial | W_asleep | W_halted ->
    Stats.Sync

(* First reason the core cannot issue its current bundle this cycle, or
   [None] when it can. Has no side effects. *)
let blocker t cs =
  let now = t.now in
  if now < cs.stall_until then Some W_stall_fault
  else if now < cs.miss_stall_until then Some W_dmem
  else if now < cs.fetch_done then Some W_ifetch
  else begin
    let bundle = Image.fetch cs.image cs.pc in
    let check_op acc op =
      match acc with
      | Some _ -> acc
      | None ->
        let reg_block =
          List.fold_left
            (fun acc r ->
              match acc with
              | Some _ -> acc
              | None ->
                ensure_reg cs r;
                if cs.ready.(r) > now then
                  Some (W_reg (producer_stall cs.prod.(r)))
                else None)
            None (Inst.uses op)
        in
        if reg_block <> None then reg_block
        else begin
          match op with
          | Inst.Load _ | Inst.Store _ ->
            if cs.mem_busy > now then Some W_dmem else None
          | Inst.Br { btr; _ } ->
            if cs.btr_ready.(btr) > now then Some W_btr else None
          | Inst.Recv { sender; kind; _ } ->
            if Net.recv_ready t.net ~now ~core:cs.id ~sender then None
            else
              Some
                (W_recv
                   {
                     sender;
                     kind =
                       (match kind with
                       | Inst.Rv_data -> Stats.Recv_data
                       | Inst.Rv_pred -> Stats.Recv_pred
                       | Inst.Rv_sync -> Stats.Sync);
                   })
          | Inst.Getb _ ->
            if Net.getb_ready t.net ~now ~core:cs.id then None else Some W_getb
          | Inst.Send { target; _ } | Inst.Spawn { target; _ } ->
            if Net.pending t.net ~src:cs.id ~dst:target >= t.cfg.net_capacity
            then Some (W_send_full target)
            else None
          | Inst.Alu _ | Inst.Fpu _ | Inst.Cmp _ | Inst.Select _ | Inst.Mov _
          | Inst.Pbr _ | Inst.Bcast _ | Inst.Put _ | Inst.Get _ | Inst.Sleep
          | Inst.Mode_switch _ | Inst.Tm_begin | Inst.Tm_commit | Inst.Halt
          | Inst.Nop ->
            None
        end
    in
    List.fold_left check_op None bundle
  end

(* --- Bundle execution ----------------------------------------------------- *)

(* VLIW read-before-write: snapshot every source register of the bundle
   before any of its effects land. *)
let snapshot_sources cs bundle =
  let table = Hashtbl.create 8 in
  List.iter
    (fun op -> List.iter (fun r -> Hashtbl.replace table r (read_reg cs r)) (Inst.uses op))
    bundle;
  table

let read_operand snapshot (o : Inst.operand) =
  match o with
  | Inst.Imm i -> i
  | Inst.Reg r -> (
    match Hashtbl.find_opt snapshot r with
    | Some v -> v
    | None -> failwith "Machine: operand missing from bundle source snapshot")

let is_comm_out (op : Inst.t) =
  match op with
  | Inst.Put _ | Inst.Bcast _ | Inst.Send _ | Inst.Spawn _ -> true
  | Inst.Alu _ | Inst.Fpu _ | Inst.Cmp _ | Inst.Select _ | Inst.Load _
  | Inst.Store _ | Inst.Mov _ | Inst.Pbr _ | Inst.Br _ | Inst.Getb _
  | Inst.Get _ | Inst.Recv _ | Inst.Sleep | Inst.Mode_switch _ | Inst.Tm_begin
  | Inst.Tm_commit | Inst.Halt | Inst.Nop ->
    false

(* Phase 1: communication-out ops (PUT/BCAST/SEND/SPAWN), executed for all
   issuing cores before any core's phase 2, so that same-cycle PUT/GET and
   BCAST pairing works across cores. *)
let exec_comm_out t cs snapshot op =
  let now = t.now in
  match op with
  | Inst.Put { dir; src } -> (
    match Net.put t.net ~now ~src_core:cs.id dir (read_operand snapshot src) with
    | Ok () -> ()
    | Error e ->
      failwith
        (Printf.sprintf "core %d cycle %d: %s" cs.id now
           (Net.error_to_string (Net.Put_failed { src_core = cs.id; error = e }))))
  | Inst.Bcast { src } ->
    Net.bcast t.net ~now ~src_core:cs.id (read_operand snapshot src)
  | Inst.Send { target; src } -> (
    let payload = Net.Value (read_operand snapshot src) in
    match Net.send t.net ~now ~src:cs.id ~dst:target payload with
    | Ok () -> ()
    | Error Net.Channel_full ->
      (* Overflow NACK: the send is parked and retried with backoff rather
         than wedging the machine (can only arise under fault injection,
         where a retrying message holds its channel slot longer than the
         occupancy the issue check saw). *)
      Net.defer t.net ~now ~src:cs.id ~dst:target payload
    | Error (Net.Bad_destination _ as e) ->
      failwith
        (Printf.sprintf "core %d cycle %d: %s" cs.id now
           (Net.error_to_string (Net.Send_failed e))))
  | Inst.Spawn { target; entry } -> (
    let addr = Image.resolve t.prog.images.(target) entry in
    t.st.spawns <- t.st.spawns + 1;
    trace t (Trace.Spawned { cycle = t.now; by = cs.id; target });
    let payload = Net.Start addr in
    match Net.send t.net ~now ~src:cs.id ~dst:target payload with
    | Ok () -> ()
    | Error Net.Channel_full -> Net.defer t.net ~now ~src:cs.id ~dst:target payload
    | Error (Net.Bad_destination _ as e) ->
      failwith
        (Printf.sprintf "core %d cycle %d: %s" cs.id now
           (Net.error_to_string (Net.Send_failed e))))
  | Inst.Alu _ | Inst.Fpu _ | Inst.Cmp _ | Inst.Select _ | Inst.Load _
  | Inst.Store _ | Inst.Mov _ | Inst.Pbr _ | Inst.Br _ | Inst.Getb _
  | Inst.Get _ | Inst.Recv _ | Inst.Sleep | Inst.Mode_switch _ | Inst.Tm_begin
  | Inst.Tm_commit | Inst.Halt | Inst.Nop ->
    invalid_arg "exec_comm_out: not a communication-out op"

(* Phase 2: everything else. Returns the branch target when the bundle's
   branch is taken. *)
let exec_main t cs snapshot op : int option =
  let now = t.now in
  let lat = Config.latency op in
  let read = read_operand snapshot in
  match op with
  | Inst.Alu { op = a; dst; src1; src2 } ->
    write_reg cs dst (Semantics.alu a (read src1) (read src2)) ~ready:(now + lat)
      ~prod:P_other;
    None
  | Inst.Fpu { op = f; dst; src1; src2 } ->
    write_reg cs dst (Semantics.fpu f (read src1) (read src2)) ~ready:(now + lat)
      ~prod:P_other;
    None
  | Inst.Cmp { op = c; dst; src1; src2 } ->
    write_reg cs dst (Semantics.cmp c (read src1) (read src2)) ~ready:(now + lat)
      ~prod:P_other;
    None
  | Inst.Select { dst; pred; if_true; if_false } ->
    let v = if Semantics.truthy (read pred) then read if_true else read if_false in
    write_reg cs dst v ~ready:(now + lat) ~prod:P_other;
    None
  | Inst.Mov { dst; src } ->
    write_reg cs dst (read src) ~ready:(now + lat) ~prod:P_other;
    None
  | Inst.Load { dst; base; offset } ->
    let addr = read base + read offset in
    let ecc_before = match t.ecc with Some e -> Ecc.corrected e | None -> 0 in
    let v = Tm.read t.tm ~core:cs.id addr in
    let completion = Coherence.access t.hier ~now ~core:cs.id Coherence.Dload addr in
    let completion =
      (* A demand ECC correction adds the detect/correct/writeback penalty
         on top of whatever the hierarchy charged. *)
      match t.ecc with
      | Some e when Ecc.corrected e > ecc_before ->
        completion + t.cfg.fault.Fault.ecc_penalty
      | Some _ | None -> completion
    in
    cs.mem_busy <- max cs.mem_busy completion;
    if completion > now + t.cfg.cache.Coherence.lat_l1 then
      cs.miss_stall_until <- max cs.miss_stall_until completion;
    write_reg cs dst v ~ready:(max (now + lat) completion) ~prod:P_load;
    None
  | Inst.Store { base; offset; src } ->
    let addr = read base + read offset in
    Tm.write t.tm ~core:cs.id addr (read src);
    let completion = Coherence.access t.hier ~now ~core:cs.id Coherence.Dstore addr in
    cs.mem_busy <- max cs.mem_busy completion;
    if completion > now + t.cfg.cache.Coherence.lat_l1 then
      cs.miss_stall_until <- max cs.miss_stall_until completion;
    None
  | Inst.Pbr { btr; target } ->
    cs.btrs.(btr) <- Image.resolve cs.image target;
    cs.btr_ready.(btr) <- now + lat;
    None
  | Inst.Br { btr; pred; invert } ->
    let taken =
      match pred with
      | None -> true
      | Some p ->
        let v = Semantics.truthy (read p) in
        if invert then not v else v
    in
    if taken then Some cs.btrs.(btr) else None
  | Inst.Getb { dst } -> (
    match Net.getb t.net ~now ~core:cs.id with
    | Some v ->
      write_reg cs dst v ~ready:(now + lat) ~prod:P_getb;
      None
    | None -> failwith (Printf.sprintf "core %d cycle %d: GETB on empty broadcast" cs.id now))
  | Inst.Get { dir; dst } -> (
    match Net.get t.net ~now ~core:cs.id dir with
    | Some v ->
      write_reg cs dst v ~ready:(now + lat) ~prod:P_other;
      None
    | None ->
      (* No paired PUT: the lock-step contract is broken (compiler or
         program bug). Wedge the core so the watchdog reports a structured
         diagnosis naming it, instead of tearing the simulator down. *)
      cs.status <- Stuck (W_get_latch dir);
      None)
  | Inst.Recv { sender; dst; kind } -> (
    match Net.recv t.net ~now ~core:cs.id ~sender with
    | Some v ->
      let prod =
        match kind with
        | Inst.Rv_data -> P_recv_data
        | Inst.Rv_pred -> P_recv_pred
        | Inst.Rv_sync -> P_other
      in
      write_reg cs dst v ~ready:(now + lat) ~prod;
      None
    | None -> failwith (Printf.sprintf "core %d cycle %d: RECV raced its readiness check" cs.id now))
  | Inst.Sleep ->
    cs.status <- Asleep;
    None
  | Inst.Mode_switch m ->
    cs.status <- At_barrier m;
    None
  | Inst.Tm_begin ->
    if not cs.tm_serial then begin
      Tm.tx_begin t.tm ~core:cs.id;
      cs.tm_snapshot <- Some (Array.copy cs.regs, cs.pc)
    end;
    None
  | Inst.Tm_commit ->
    if cs.tm_serial then cs.tm_serial <- false (* serial chunk done *)
    else cs.status <- At_commit;
    None
  | Inst.Halt ->
    cs.status <- Halted;
    None
  | Inst.Nop -> None
  | Inst.Put _ | Inst.Bcast _ | Inst.Send _ | Inst.Spawn _ ->
    invalid_arg "exec_main: communication-out op in phase 2"

let initiate_fetch t cs =
  cs.fetch_done <-
    Coherence.access t.hier ~now:t.now ~core:cs.id Coherence.Ifetch cs.pc

(* Run one issuing core's full bundle (both phases are driven by the cycle
   loop; this is phase 2 plus pc update). *)
let finish_issue t cs snapshot bundle =
  let issued_pc = cs.pc in
  let target =
    List.fold_left
      (fun acc op ->
        if is_comm_out op then acc
        else
          match exec_main t cs snapshot op with
          | Some tgt -> Some tgt
          | None -> acc)
      None bundle
  in
  let core_st = Stats.core t.st cs.id in
  core_st.busy <- core_st.busy + 1;
  core_st.bundles <- core_st.bundles + 1;
  (match att_cell t ~core:cs.id ~pc:issued_pc with
  | None -> ()
  | Some cell -> cell.Stats.rc_busy <- cell.Stats.rc_busy + 1);
  List.iter
    (fun op ->
      if op <> Inst.Nop then begin
        core_st.ops <- core_st.ops + 1;
        (match Inst.unit_class op with
        | Inst.Memory -> core_st.ops_mem <- core_st.ops_mem + 1
        | Inst.Commun -> core_st.ops_comm <- core_st.ops_comm + 1
        | Inst.Compute | Inst.Control -> ());
        match op with
        | Inst.Alu { op = Inst.Mul | Inst.Div | Inst.Rem; _ } | Inst.Fpu _ ->
          core_st.ops_mul_div <- core_st.ops_mul_div + 1
        | _ -> ()
      end)
    bundle;
  t.last_progress <- t.now;
  (match cs.status with
  | Running ->
    cs.pc <- (match target with Some tgt -> tgt | None -> cs.pc + 1);
    initiate_fetch t cs
  | Asleep | Halted -> ()
  | Stuck _ ->
    (* The bundle did not complete; freeze the pc for the diagnosis. *)
    ()
  | At_barrier _ | At_commit | Wait_serial ->
    (* Resume point: past this bundle (barrier ops never co-issue with a
       taken branch in generated code, but honour one if present). *)
    cs.pc <- (match target with Some tgt -> tgt | None -> cs.pc + 1));
  trace t
    (Trace.Issue
       {
         cycle = t.now;
         core = cs.id;
         pc = issued_pc;
         ops = List.length (List.filter (fun o -> o <> Inst.Nop) bundle);
       })

(* --- Per-cycle stepping --------------------------------------------------- *)

let record_idle t cs =
  let core_st = Stats.core t.st cs.id in
  core_st.idle <- core_st.idle + 1;
  match att_cell t ~core:cs.id ~pc:cs.pc with
  | None -> ()
  | Some cell -> cell.Stats.rc_idle <- cell.Stats.rc_idle + 1

let try_wake t cs =
  match Net.take_start t.net ~now:t.now ~core:cs.id with
  | Some addr ->
    cs.pc <- addr;
    cs.status <- Running;
    initiate_fetch t cs;
    record_idle t cs
  | None -> record_idle t cs

(* Decoupled: each core progresses independently. *)
let decoupled_step t =
  Array.iter
    (fun cs ->
      match cs.status with
      | Halted -> record_idle t cs
      | Asleep -> try_wake t cs
      | Wait_serial | At_barrier _ | At_commit | Stuck _ ->
        record_stall t ~core:cs.id Stats.Sync
      | Running -> (
        match blocker t cs with
        | Some w -> record_stall t ~core:cs.id (stall_of_wait w)
        | None ->
          let bundle = Image.fetch cs.image cs.pc in
          let snapshot = snapshot_sources cs bundle in
          List.iter
            (fun op -> if is_comm_out op then exec_comm_out t cs snapshot op)
            bundle;
          finish_issue t cs snapshot bundle))
    t.cores

(* Coupled: lock-step with the stall bus — either every running core
   issues, or none does. *)
let coupled_step t =
  let running =
    Array.to_list t.cores |> List.filter (fun cs -> cs.status = Running)
  in
  let waiting_before =
    Array.map
      (fun cs ->
        match cs.status with
        | At_barrier _ | Stuck _ -> true
        | Running | Asleep | Halted | At_commit | Wait_serial -> false)
      t.cores
  in
  List.iter
    (fun cs ->
      match cs.status with
      | Running | At_barrier _ | Stuck _ -> ()
      | Asleep | Halted | At_commit | Wait_serial ->
        failwith
          (Printf.sprintf "core %d in unexpected state during coupled mode" cs.id))
    (Array.to_list t.cores);
  let blockers = List.map (fun cs -> (cs, blocker t cs)) running in
  let any_blocked = List.exists (fun (_, b) -> b <> None) blockers in
  if any_blocked then begin
    (* Group stall: a core with its own reason records it; the rest record
       the peers' dominant reason (D over I over the rest). *)
    let reasons = List.filter_map (fun (_, b) -> Option.map stall_of_wait b) blockers in
    let dominant =
      if List.mem Stats.D_stall reasons then Stats.D_stall
      else if List.mem Stats.I_stall reasons then Stats.I_stall
      else (match reasons with r :: _ -> r | [] -> Stats.Sync)
    in
    List.iter
      (fun (cs, b) ->
        record_stall t ~core:cs.id
          (match b with Some w -> stall_of_wait w | None -> dominant))
      blockers
  end
  else begin
    let issues =
      List.map
        (fun cs ->
          let bundle = Image.fetch cs.image cs.pc in
          (cs, bundle, snapshot_sources cs bundle))
        running
    in
    List.iter
      (fun (cs, bundle, snapshot) ->
        List.iter
          (fun op -> if is_comm_out op then exec_comm_out t cs snapshot op)
          bundle)
      issues;
    List.iter (fun (cs, bundle, snapshot) -> finish_issue t cs snapshot bundle) issues
  end;
  (* Cores already waiting at the exit barrier count sync stalls. Only
     those waiting when the cycle began: a core that issued the barrier
     bundle this very cycle already recorded that cycle as busy. *)
  Array.iteri
    (fun i cs ->
      if waiting_before.(i) then record_stall t ~core:cs.id Stats.Sync)
    t.cores

(* --- Fault injection ------------------------------------------------------ *)

(* One injection opportunity per cycle: maybe flip a bit somewhere in data
   memory, and maybe freeze each running core for [stall_cycles]. Message
   faults are rolled by the network at each transmission, and spurious TM
   aborts at each commit round. *)
let inject_faults t =
  match t.inj with
  | None -> ()
  | Some f ->
    if Fault.roll_flip f then begin
      let addr = Fault.pick_addr f ~size:(Memory.size t.mem) in
      Memory.corrupt t.mem addr ~flip:(Fault.flip_bit f)
    end;
    Array.iter
      (fun cs ->
        if cs.status = Running && Fault.roll_stall f then
          cs.stall_until <-
            max cs.stall_until (t.now + t.cfg.fault.Fault.stall_cycles))
      t.cores

(* --- End-of-cycle resolution ---------------------------------------------- *)

let resolve_mode_barrier t =
  let statuses = Array.map (fun cs -> cs.status) t.cores in
  let all_at_barrier =
    Array.for_all (function At_barrier _ -> true | _ -> false) statuses
  in
  if all_at_barrier then begin
    let target =
      match statuses.(0) with
      | At_barrier m -> m
      | Running | Asleep | Halted | At_commit | Wait_serial | Stuck _ ->
        assert false
    in
    Array.iter
      (fun cs ->
        (match cs.status with
        | At_barrier m when m = target -> ()
        | At_barrier _ ->
          failwith "mode-switch barrier with disagreeing target modes"
        | Running | Asleep | Halted | At_commit | Wait_serial | Stuck _ ->
          assert false);
        cs.status <- Running;
        initiate_fetch t cs)
      t.cores;
    t.mode <- target;
    t.st.mode_switches <- t.st.mode_switches + 1;
    trace t (Trace.Mode_change { cycle = t.now; mode = target });
    t.last_progress <- t.now
  end

let rollback t cs =
  match cs.tm_snapshot with
  | None -> failwith (Printf.sprintf "core %d: TM rollback without snapshot" cs.id)
  | Some (regs, pc) ->
    cs.regs <- Array.copy regs;
    cs.ready <- Array.make (Array.length regs) t.now;
    cs.prod <- Array.make (Array.length regs) P_other;
    cs.pc <- pc;
    cs.tm_serial <- true

(* Shared recovery tail for real conflicts and spurious aborts: roll the
   aborted cores back to their chunk snapshots and re-execute them serially
   in core order. *)
let abort_and_serialize t aborted =
  List.iter (fun c -> rollback t t.cores.(c)) aborted;
  (match aborted with
  | [] -> assert false
  | head :: rest ->
    let cs = t.cores.(head) in
    cs.status <- Running;
    initiate_fetch t cs;
    List.iter (fun c -> t.cores.(c).status <- Wait_serial) rest);
  t.serial_queue <- aborted

let release_committed t committed =
  List.iter
    (fun c ->
      let cs = t.cores.(c) in
      cs.status <- Running;
      cs.tm_snapshot <- None;
      initiate_fetch t cs)
    committed

(* A TM round resolves only when EVERY core is in a transaction and waiting
   at TM_COMMIT. This enforces the paper's in-order chunk commit: chunk i+1
   can never commit before chunk i, even if its core raced ahead, so the
   codegen contract is that every DOALL round runs one (possibly empty)
   chunk on every core. *)
let resolve_tm_round t =
  let participants = List.init t.cfg.n_cores (fun c -> c) in
  let all_ready =
    List.for_all
      (fun c -> Tm.in_tx t.tm ~core:c && t.cores.(c).status = At_commit)
      participants
  in
  if all_ready then begin
    t.st.tm_rounds <- t.st.tm_rounds + 1;
    t.last_progress <- t.now;
    let spurious =
      match t.inj with
      | Some f when Fault.roll_tm_abort f ->
        Some (Fault.victim f ~n:t.cfg.n_cores)
      | Some _ | None -> None
    in
    match spurious with
    | Some v -> (
      (* A corrupted speculative chunk is indistinguishable from a real
         conflict to the recovery machinery: commit the clean prefix, abort
         the victim and everything after it, and reuse the serial
         re-execution path. The prefix commit can itself surface a real
         conflict, in which case the earlier core wins. *)
      let prefix = List.filter (fun c -> c < v) participants in
      let first =
        match if prefix = [] then `All_committed else Tm.commit_round t.tm ~cores:prefix with
        | `All_committed -> v
        | `Conflict_at c ->
          t.st.tm_conflicts <- t.st.tm_conflicts + 1;
          c
      in
      List.iter
        (fun c -> if c >= v then Tm.abort t.tm ~core:c)
        participants;
      trace t (Trace.Tm_round { cycle = t.now; conflict_at = Some first });
      let committed, aborted = List.partition (fun c -> c < first) participants in
      release_committed t committed;
      abort_and_serialize t aborted)
    | None -> (
      match Tm.commit_round t.tm ~cores:participants with
      | `All_committed ->
        trace t (Trace.Tm_round { cycle = t.now; conflict_at = None });
        release_committed t participants
      | `Conflict_at first ->
        t.st.tm_conflicts <- t.st.tm_conflicts + 1;
        trace t (Trace.Tm_round { cycle = t.now; conflict_at = Some first });
        let committed, aborted = List.partition (fun c -> c < first) participants in
        release_committed t committed;
        abort_and_serialize t aborted)
  end

let resolve_serial_queue t =
  match t.serial_queue with
  | [] -> ()
  | head :: rest ->
    let cs = t.cores.(head) in
    (* The head finished its serial re-execution when its Tm_commit cleared
       the serial flag. *)
    if (not cs.tm_serial) && cs.status <> Wait_serial then begin
      t.serial_queue <- rest;
      match rest with
      | [] -> ()
      | next :: _ ->
        let ncs = t.cores.(next) in
        ncs.status <- Running;
        initiate_fetch t ncs;
        t.last_progress <- t.now
    end

let finished t =
  t.cores.(0).status = Halted
  && Array.for_all
       (fun cs -> match cs.status with Halted | Asleep -> true | _ -> false)
       t.cores
  && Net.idle t.net

(* --- Structured watchdog diagnosis ---------------------------------------- *)

let stall_kind_name = Stats.stall_kind_label

let wait_to_string = function
  | W_reg k -> Printf.sprintf "operand in flight (%s)" (stall_kind_name k)
  | W_ifetch -> "instruction fetch in flight"
  | W_dmem -> "memory unit busy"
  | W_btr -> "branch-target register in flight"
  | W_recv { sender; kind } ->
    Printf.sprintf "RECV from core %d (%s): nothing deliverable" sender
      (stall_kind_name kind)
  | W_getb -> "GETB: broadcast not yet visible"
  | W_send_full dst -> Printf.sprintf "SEND: channel to core %d full" dst
  | W_get_latch dir ->
    let d =
      match dir with
      | Inst.North -> "north"
      | Inst.South -> "south"
      | Inst.East -> "east"
      | Inst.West -> "west"
    in
    Printf.sprintf "GET %s on an empty latch (no paired PUT)" d
  | W_stall_fault -> "injected stall fault"
  | W_barrier m -> Format.asprintf "at mode barrier -> %a" Inst.pp_mode m
  | W_commit -> "at TM commit, waiting for the round"
  | W_serial -> "waiting for the serial-re-execution token"
  | W_asleep -> "asleep"
  | W_halted -> "halted"

let core_wait t cs =
  match cs.status with
  | Running -> blocker t cs
  | Stuck w -> Some w
  | Asleep -> Some W_asleep
  | Halted -> Some W_halted
  | At_barrier m -> Some (W_barrier m)
  | At_commit -> Some W_commit
  | Wait_serial -> Some W_serial

(* Which core is [cs] waiting on, when its wait names one. *)
let blame_of t cs w =
  match w with
  | W_recv { sender; _ } -> Some sender
  | W_get_latch dir -> Mesh.neighbour (Net.mesh t.net) cs.id dir
  | W_send_full dst -> Some dst
  | W_commit ->
    Array.to_list t.cores
    |> List.find_opt (fun c -> c.status <> At_commit)
    |> Option.map (fun c -> c.id)
  | W_barrier _ ->
    Array.to_list t.cores
    |> List.find_opt (fun c ->
           match c.status with At_barrier _ -> false | _ -> true)
    |> Option.map (fun c -> c.id)
  | W_serial -> (
    match t.serial_queue with
    | head :: _ when head <> cs.id -> Some head
    | _ -> None)
  | W_reg _ | W_ifetch | W_dmem | W_btr | W_getb | W_stall_fault | W_asleep
  | W_halted ->
    None

let diagnose t =
  let d_cores =
    Array.map
      (fun cs ->
        {
          d_core = cs.id;
          d_pc = cs.pc;
          d_wait = core_wait t cs;
          d_bundle =
            Format.asprintf "%a" Bundle.pp
              (if cs.pc < Image.length cs.image then Image.fetch cs.image cs.pc
               else []);
        })
      t.cores
  in
  let d_blame =
    Array.to_list d_cores
    |> List.filter_map (fun d ->
           match d.d_wait with
           | Some ((W_asleep | W_halted) as _w) -> None
           | Some w ->
             Option.map (fun b -> (d.d_core, b)) (blame_of t t.cores.(d.d_core) w)
           | None -> None)
    |> function
    | [] -> None
    | edge :: _ -> Some edge
  in
  {
    d_cycle = t.now;
    d_last_progress = t.last_progress;
    d_mode = t.mode;
    d_cores;
    d_queue = Net.in_flight_summary t.net;
    d_blame;
  }

let pp_diagnosis ppf d =
  Format.fprintf ppf "no progress since cycle %d (now %d), mode %a@,"
    d.d_last_progress d.d_cycle Inst.pp_mode d.d_mode;
  Array.iter
    (fun c ->
      Format.fprintf ppf "  core %d: pc=%d %s bundle={%s}@," c.d_core c.d_pc
        (match c.d_wait with
        | Some w -> wait_to_string w
        | None -> "issueable?")
        c.d_bundle)
    d.d_cores;
  (match d.d_queue with
  | [] -> ()
  | q ->
    Format.fprintf ppf "  in flight:@,";
    List.iter
      (fun (src, dst, descr) ->
        Format.fprintf ppf "    %d -> %d: %s@," src dst descr)
      q);
  match d.d_blame with
  | None -> ()
  | Some (blocked, blamed) ->
    Format.fprintf ppf "  blame: core %d is waiting on core %d@," blocked blamed

let diagnosis_to_string d = Format.asprintf "@[<v>%a@]" pp_diagnosis d

(* --- Run loop -------------------------------------------------------------- *)

let finalize_counters t =
  let ns = Net.stats t.net in
  t.st.net_retries <- ns.Net.retries;
  t.st.net_nacks <- ns.Net.nacks;
  (match t.inj with
  | None -> ()
  | Some f ->
    let c = Fault.counters f in
    t.st.faults_injected <- c.Fault.injected;
    t.st.msgs_dropped <- c.Fault.msgs_dropped;
    t.st.msgs_corrupted <- c.Fault.msgs_corrupted;
    t.st.spurious_aborts <- c.Fault.spurious_aborts;
    t.st.stall_faults <- c.Fault.stall_faults);
  match t.ecc with
  | None -> ()
  | Some e ->
    t.st.ecc_corrected <- Ecc.corrected e;
    t.st.ecc_scrubbed <- Ecc.scrubbed e;
    t.st.flips_masked <- Ecc.masked e

let run t =
  let outcome = ref None in
  while !outcome = None do
    t.now <- t.now + 1;
    if t.now > t.cfg.max_cycles then outcome := Some Out_of_cycles
    else begin
      inject_faults t;
      Net.service t.net ~now:t.now;
      (match t.mode with
      | Inst.Coupled ->
        t.st.coupled_cycles <- t.st.coupled_cycles + 1;
        coupled_step t
      | Inst.Decoupled ->
        t.st.decoupled_cycles <- t.st.decoupled_cycles + 1;
        decoupled_step t);
      resolve_mode_barrier t;
      resolve_tm_round t;
      resolve_serial_queue t;
      (match t.on_cycle with None -> () | Some f -> f ~now:t.now);
      if finished t then outcome := Some Finished
      else if (match t.inj with Some f -> Fault.exceeded f | None -> false)
      then outcome := Some (Fault_limit (diagnose t))
      else if t.now - t.last_progress > t.cfg.watchdog then
        outcome := Some (Deadlock (diagnose t))
    end
  done;
  t.st.cycles <- t.now;
  (* End-of-run scrub: correct any injected flip that was never read, so the
     architectural image (and its checksum) matches the fault-free run. *)
  Memory.scrub t.mem;
  finalize_counters t;
  let outcome = match !outcome with Some o -> o | None -> assert false in
  { outcome; cycles = t.now; checksum = Memory.checksum t.mem }
