(** Structured execution traces.

    A tracer attached to a {!Machine} records issue, stall, mode-switch,
    spawn and transactional events up to a configurable limit (events past
    the limit are counted but not stored). Post-run, {!report} renders a
    cycle timeline and {!hotspots} aggregates issue counts by code label —
    the tool one actually wants when asking "where do the cycles go?". *)

type event =
  | Issue of { cycle : int; core : int; pc : int; ops : int }
  | Stall of { cycle : int; core : int; kind : Stats.stall_kind }
  | Mode_change of { cycle : int; mode : Voltron_isa.Inst.mode }
  | Spawned of { cycle : int; by : int; target : int }
  | Tm_round of { cycle : int; conflict_at : int option }
  | Sent of { cycle : int; src : int; dst : int }
      (** queue-mode SEND entered the network (blame-edge tail) *)
  | Recvd of { cycle : int; core : int; sender : int }
      (** RECV consumed a message (blame-edge head; pairs with the [Sent]
          of the same (src, dst) channel in FIFO order) *)
  | Serial_start of { cycle : int; core : int }
      (** the core began serial re-execution of its aborted TM chunk *)

type t

val create : ?limit:int -> unit -> t
(** [limit] caps stored events (default 100_000). *)

val record : t -> event -> unit
val events : t -> event list
(** In recording order. *)

val dropped : t -> int
(** Events beyond the limit (counted, not stored). *)

val limit : t -> int
(** The cap this tracer was created with. *)

val stall_name : Stats.stall_kind -> string
(** Alias of {!Stats.stall_kind_label}. *)

type hotspot = {
  hs_core : int;
  hs_label : string;  (** nearest preceding label in that core's image *)
  hs_issues : int;
  hs_ops : int;
}

val hotspots : t -> Voltron_isa.Program.t -> hotspot list
(** Issue counts aggregated by (core, enclosing label), hottest first. *)

val pp_event : Format.formatter -> event -> unit

val report :
  ?timeline:int -> Format.formatter -> t -> Voltron_isa.Program.t -> unit
(** Print the first [timeline] events (default 60) and the hotspot table,
    ending with a "… N events dropped (limit L)" footer whenever the
    tracer hit its cap. *)
