module Inst = Voltron_isa.Inst
module Image = Voltron_isa.Image
module Program = Voltron_isa.Program
module Vec = Voltron_util.Vec

type event =
  | Issue of { cycle : int; core : int; pc : int; ops : int }
  | Stall of { cycle : int; core : int; kind : Stats.stall_kind }
  | Mode_change of { cycle : int; mode : Inst.mode }
  | Spawned of { cycle : int; by : int; target : int }
  | Tm_round of { cycle : int; conflict_at : int option }
  | Sent of { cycle : int; src : int; dst : int }
  | Recvd of { cycle : int; core : int; sender : int }
  | Serial_start of { cycle : int; core : int }

type t = {
  limit : int;
  buf : event Vec.t;
  mutable n_dropped : int;
}

let create ?(limit = 100_000) () = { limit; buf = Vec.create (); n_dropped = 0 }

let record t ev =
  if Vec.length t.buf < t.limit then Vec.push t.buf ev
  else t.n_dropped <- t.n_dropped + 1

let events t = Vec.to_list t.buf

let dropped t = t.n_dropped

let limit t = t.limit

type hotspot = {
  hs_core : int;
  hs_label : string;
  hs_issues : int;
  hs_ops : int;
}

(* Nearest label at or before [pc] in [image] — precomputed at image-finish
   time, so aggregating a large trace is O(events), not O(events x labels). *)
let enclosing_label = Image.enclosing_label

let hotspots t (prog : Program.t) =
  let table : (int * string, int * int) Hashtbl.t = Hashtbl.create 32 in
  Vec.iter
    (fun ev ->
      match ev with
      | Issue { core; pc; ops; _ } ->
        let label = enclosing_label prog.Program.images.(core) pc in
        let issues, total_ops =
          Option.value ~default:(0, 0) (Hashtbl.find_opt table (core, label))
        in
        Hashtbl.replace table (core, label) (issues + 1, total_ops + ops)
      | Stall _ | Mode_change _ | Spawned _ | Tm_round _ | Sent _ | Recvd _
      | Serial_start _ ->
        ())
    t.buf;
  Hashtbl.fold
    (fun (hs_core, hs_label) (hs_issues, hs_ops) acc ->
      { hs_core; hs_label; hs_issues; hs_ops } :: acc)
    table []
  |> List.sort (fun a b -> compare b.hs_issues a.hs_issues)

let stall_name = Stats.stall_kind_label

let pp_event ppf = function
  | Issue { cycle; core; pc; ops } ->
    Format.fprintf ppf "[%6d] core %d issue pc=%d (%d ops)" cycle core pc ops
  | Stall { cycle; core; kind } ->
    Format.fprintf ppf "[%6d] core %d stall (%s)" cycle core (stall_name kind)
  | Mode_change { cycle; mode } ->
    Format.fprintf ppf "[%6d] mode -> %a" cycle Inst.pp_mode mode
  | Spawned { cycle; by; target } ->
    Format.fprintf ppf "[%6d] core %d spawned core %d" cycle by target
  | Tm_round { cycle; conflict_at = None } ->
    Format.fprintf ppf "[%6d] TM round committed" cycle
  | Tm_round { cycle; conflict_at = Some c } ->
    Format.fprintf ppf "[%6d] TM conflict at core %d (serial re-execution)" cycle c
  | Sent { cycle; src; dst } ->
    Format.fprintf ppf "[%6d] core %d sent to core %d" cycle src dst
  | Recvd { cycle; core; sender } ->
    Format.fprintf ppf "[%6d] core %d received from core %d" cycle core sender
  | Serial_start { cycle; core } ->
    Format.fprintf ppf "[%6d] core %d starts serial TM re-execution" cycle core

let report ?(timeline = 60) ppf t prog =
  Format.fprintf ppf "--- timeline (first %d of %d events%s) ---@." timeline
    (Vec.length t.buf)
    (if t.n_dropped > 0 then Printf.sprintf ", %d dropped" t.n_dropped else "");
  let shown = ref 0 in
  (try
     Vec.iter
       (fun ev ->
         if !shown >= timeline then raise Exit;
         incr shown;
         Format.fprintf ppf "%a@." pp_event ev)
       t.buf
   with Exit -> ());
  Format.fprintf ppf "--- hotspots (issues per label) ---@.";
  List.iteri
    (fun i h ->
      if i < 20 then
        Format.fprintf ppf "  core %d %-24s %8d issues %8d ops@." h.hs_core
          h.hs_label h.hs_issues h.hs_ops)
    (hotspots t prog);
  (* A truncated timeline must never read as a complete one. *)
  if t.n_dropped > 0 then
    Format.fprintf ppf "… %d events dropped (limit %d)@." t.n_dropped t.limit
