(** Machine configuration: core organisation, operation latencies (Itanium
    latencies assumed per paper §5.1), cache geometry and network
    parameters. The same configuration object parameterises the compiler's
    latency estimates, so the schedule model and the simulator agree. *)

type t = {
  n_cores : int;
  issue_width : int;  (** main-pipeline ops per bundle (paper evaluates 1) *)
  comm_width : int;  (** communication-unit ops per bundle *)
  n_btrs : int;  (** branch-target registers per core *)
  cache : Voltron_mem.Coherence.config;
  net_capacity : int;  (** receive-queue capacity per core *)
  net_hop_cost : int;
      (** cycles per mesh hop on the operand network (default 1, the
          paper's network; 0 idealises hop latency away — the rerun
          configuration validating the causal profiler's network what-if) *)
  max_cycles : int;  (** hard simulation cap *)
  watchdog : int;  (** abort after this many cycles without progress *)
  fault : Voltron_fault.Fault.config;  (** injection + recovery parameters *)
  fast_forward : bool;
      (** skip provably-dead stall windows in the simulator, bulk-crediting
          the skipped cycles to the same stall kinds and attribution cells
          the per-cycle path would record (architecturally invisible; the
          machine auto-falls back to per-cycle stepping whenever a tracer,
          an on-cycle hook or a fault injector is attached) *)
}

val default : n_cores:int -> t
(** The paper's setup: single-issue cores, one comm op per cycle, default
    cache hierarchy (bus-snooped MOESI), fault injection disabled. *)

val with_coherence : Voltron_mem.Coherence.protocol -> t -> t
(** Swap the coherence backend (snoop bus vs home-based directory) without
    touching any other cache parameter. *)

val latency : Voltron_isa.Inst.t -> int
(** Static operation latency in cycles (load latency is the L1-hit use
    delay; misses add on top through the hierarchy model). *)

val queue_latency : t -> src:int -> dst:int -> int
(** End-to-end SEND→RECV latency between two cores: 2 + hops (§3.1). *)

val direct_latency : t -> src:int -> dst:int -> int
(** Direct-mode latency: 1 cycle per hop (§3.1). *)

val mesh : t -> Voltron_net.Mesh.t
