type core = {
  mutable busy : int;
  mutable i_stall : int;
  mutable d_stall : int;
  mutable lat_stall : int;
  mutable recv_data_stall : int;
  mutable recv_pred_stall : int;
  mutable sync_stall : int;
  mutable idle : int;
  mutable bundles : int;
  mutable ops : int;
  mutable ops_mem : int;
  mutable ops_comm : int;
  mutable ops_mul_div : int;
}

type t = {
  n_cores : int;
  per_core : core array;
  mutable cycles : int;
  mutable coupled_cycles : int;
  mutable decoupled_cycles : int;
  mutable mode_switches : int;
  mutable spawns : int;
  mutable tm_rounds : int;
  mutable tm_conflicts : int;
  mutable faults_injected : int;
  mutable msgs_dropped : int;
  mutable msgs_corrupted : int;
  mutable net_retries : int;
  mutable net_nacks : int;
  mutable ecc_corrected : int;
  mutable ecc_scrubbed : int;
  mutable flips_masked : int;
  mutable spurious_aborts : int;
  mutable stall_faults : int;
}

type stall_kind =
  | I_stall
  | D_stall
  | Lat_stall
  | Recv_data
  | Recv_pred
  | Sync

let fresh_core () =
  {
    busy = 0;
    i_stall = 0;
    d_stall = 0;
    lat_stall = 0;
    recv_data_stall = 0;
    recv_pred_stall = 0;
    sync_stall = 0;
    idle = 0;
    bundles = 0;
    ops = 0;
    ops_mem = 0;
    ops_comm = 0;
    ops_mul_div = 0;
  }

let create ~n_cores =
  {
    n_cores;
    per_core = Array.init n_cores (fun _ -> fresh_core ());
    cycles = 0;
    coupled_cycles = 0;
    decoupled_cycles = 0;
    mode_switches = 0;
    spawns = 0;
    tm_rounds = 0;
    tm_conflicts = 0;
    faults_injected = 0;
    msgs_dropped = 0;
    msgs_corrupted = 0;
    net_retries = 0;
    net_nacks = 0;
    ecc_corrected = 0;
    ecc_scrubbed = 0;
    flips_masked = 0;
    spurious_aborts = 0;
    stall_faults = 0;
  }

let add_stall t ~core kind k =
  let c = t.per_core.(core) in
  match kind with
  | I_stall -> c.i_stall <- c.i_stall + k
  | D_stall -> c.d_stall <- c.d_stall + k
  | Lat_stall -> c.lat_stall <- c.lat_stall + k
  | Recv_data -> c.recv_data_stall <- c.recv_data_stall + k
  | Recv_pred -> c.recv_pred_stall <- c.recv_pred_stall + k
  | Sync -> c.sync_stall <- c.sync_stall + k

let record_stall t ~core kind = add_stall t ~core kind 1

let core t i = t.per_core.(i)

let total_stalls c =
  c.i_stall + c.d_stall + c.lat_stall + c.recv_data_stall + c.recv_pred_stall
  + c.sync_stall

let stall_of c = function
  | I_stall -> c.i_stall
  | D_stall -> c.d_stall
  | Lat_stall -> c.lat_stall
  | Recv_data -> c.recv_data_stall
  | Recv_pred -> c.recv_pred_stall
  | Sync -> c.sync_stall

let all_stall_kinds =
  [ I_stall; D_stall; Lat_stall; Recv_data; Recv_pred; Sync ]

let n_stall_kinds = List.length all_stall_kinds

let stall_kind_index = function
  | I_stall -> 0
  | D_stall -> 1
  | Lat_stall -> 2
  | Recv_data -> 3
  | Recv_pred -> 4
  | Sync -> 5

let stall_kind_label = function
  | I_stall -> "I-stall"
  | D_stall -> "D-stall"
  | Lat_stall -> "latency"
  | Recv_data -> "recv-data"
  | Recv_pred -> "recv-pred"
  | Sync -> "sync"

(* --- Per-region attribution store ----------------------------------------- *)

type region_cell = {
  mutable rc_busy : int;
  mutable rc_idle : int;
  rc_stalls : int array;  (** indexed by [stall_kind_index] *)
}

type region_acct = {
  ra_n_regions : int;
  ra_n_cores : int;
  ra_cells : region_cell array array array;
      (** [region][mode (0 coupled, 1 decoupled)][core] *)
}

let fresh_region_cell () =
  { rc_busy = 0; rc_idle = 0; rc_stalls = Array.make n_stall_kinds 0 }

let create_region_acct ~n_regions ~n_cores =
  {
    ra_n_regions = n_regions;
    ra_n_cores = n_cores;
    ra_cells =
      Array.init n_regions (fun _ ->
          Array.init 2 (fun _ ->
              Array.init n_cores (fun _ -> fresh_region_cell ())));
  }

let region_cell_cycles c =
  c.rc_busy + c.rc_idle + Array.fold_left ( + ) 0 c.rc_stalls

let avg_stall_fraction t kind =
  if t.cycles = 0 then 0.
  else
    let per_core =
      Array.to_list t.per_core
      |> List.map (fun c -> float_of_int (stall_of c kind) /. float_of_int t.cycles)
    in
    Voltron_util.Stat.mean per_core

let rate num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let pp_summary ?coherence ?network ppf t =
  Format.fprintf ppf "cycles=%d coupled=%d decoupled=%d switches=%d spawns=%d@."
    t.cycles t.coupled_cycles t.decoupled_cycles t.mode_switches t.spawns;
  if t.faults_injected > 0 then
    Format.fprintf ppf
      "  faults=%d drops=%d corrupts=%d retries=%d nacks=%d ecc=%d/%d \
       masked=%d tm-aborts=%d stalls=%d@."
      t.faults_injected t.msgs_dropped t.msgs_corrupted t.net_retries
      t.net_nacks t.ecc_corrected t.ecc_scrubbed t.flips_masked
      t.spurious_aborts t.stall_faults;
  Array.iteri
    (fun i c ->
      Format.fprintf ppf
        "  core %d: busy=%d I=%d D=%d lat=%d recvD=%d recvP=%d sync=%d idle=%d ops=%d@."
        i c.busy c.i_stall c.d_stall c.lat_stall c.recv_data_stall
        c.recv_pred_stall c.sync_stall c.idle c.ops)
    t.per_core;
  (match coherence with
  | None -> ()
  | Some (cs : Voltron_mem.Coherence.stats) ->
    Format.fprintf ppf
      "  caches: accesses=%d l1d-miss=%d (%.2f%%) l1i-miss=%d (%.2f%%) \
       l2-miss=%d (%.2f%%) c2c=%d upgrades=%d writebacks=%d bus-wait=%d@."
      cs.Voltron_mem.Coherence.accesses cs.Voltron_mem.Coherence.l1d_misses
      (100. *. rate cs.Voltron_mem.Coherence.l1d_misses cs.Voltron_mem.Coherence.accesses)
      cs.Voltron_mem.Coherence.l1i_misses
      (100. *. rate cs.Voltron_mem.Coherence.l1i_misses cs.Voltron_mem.Coherence.accesses)
      cs.Voltron_mem.Coherence.l2_misses
      (100. *. rate cs.Voltron_mem.Coherence.l2_misses cs.Voltron_mem.Coherence.accesses)
      cs.Voltron_mem.Coherence.c2c_transfers cs.Voltron_mem.Coherence.upgrades
      cs.Voltron_mem.Coherence.writebacks cs.Voltron_mem.Coherence.bus_wait_cycles;
    (* Directory-backend counters: only the directory protocol produces
       them, so the snoop summary line stays byte-identical. *)
    if
      cs.Voltron_mem.Coherence.dir_lookups > 0
      || cs.Voltron_mem.Coherence.dir_invalidations > 0
      || cs.Voltron_mem.Coherence.dir_indirections > 0
    then
      Format.fprintf ppf
        "  directory: lookups=%d invalidations=%d indirections=%d@."
        cs.Voltron_mem.Coherence.dir_lookups
        cs.Voltron_mem.Coherence.dir_invalidations
        cs.Voltron_mem.Coherence.dir_indirections);
  match network with
  | None -> ()
  | Some (ns : Voltron_net.Operand_network.stats) ->
    Format.fprintf ppf
      "  network: msgs=%d avg-latency=%.2f max-occupancy=%d retries=%d nacks=%d@."
      ns.Voltron_net.Operand_network.msgs_sent
      (rate ns.Voltron_net.Operand_network.total_latency
         ns.Voltron_net.Operand_network.msgs_sent)
      ns.Voltron_net.Operand_network.max_occupancy
      ns.Voltron_net.Operand_network.retries ns.Voltron_net.Operand_network.nacks
