type core_id = int
type reg = int
type btr = int
type label = string

type dir = North | South | East | West

type recv_kind = Rv_data | Rv_pred | Rv_sync

type mode = Coupled | Decoupled

type alu_op =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Min | Max

type fpu_op = Fadd | Fsub | Fmul | Fdiv

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type operand = Reg of reg | Imm of int

type t =
  | Alu of { op : alu_op; dst : reg; src1 : operand; src2 : operand }
  | Fpu of { op : fpu_op; dst : reg; src1 : operand; src2 : operand }
  | Cmp of { op : cmp_op; dst : reg; src1 : operand; src2 : operand }
  | Select of { dst : reg; pred : operand; if_true : operand; if_false : operand }
  | Load of { dst : reg; base : operand; offset : operand }
  | Store of { base : operand; offset : operand; src : operand }
  | Mov of { dst : reg; src : operand }
  | Pbr of { btr : btr; target : label }
  | Br of { btr : btr; pred : operand option; invert : bool }
  | Bcast of { src : operand }
  | Getb of { dst : reg }
  | Put of { dir : dir; src : operand }
  | Get of { dir : dir; dst : reg }
  | Send of { target : core_id; src : operand }
  | Recv of { sender : core_id; dst : reg; kind : recv_kind }
  | Spawn of { target : core_id; entry : label }
  | Sleep
  | Mode_switch of mode
  | Tm_begin
  | Tm_commit
  | Halt
  | Nop

type unit_class = Compute | Memory | Commun | Control

let unit_class = function
  | Alu _ | Fpu _ | Cmp _ | Select _ | Mov _ -> Compute
  | Load _ | Store _ | Tm_begin | Tm_commit -> Memory
  | Bcast _ | Getb _ | Put _ | Get _ | Send _ | Recv _ | Spawn _ -> Commun
  | Pbr _ | Br _ | Sleep | Mode_switch _ | Halt | Nop -> Control

let operand_uses = function Reg r -> [ r ] | Imm _ -> []

let defs = function
  | Alu { dst; _ } | Fpu { dst; _ } | Cmp { dst; _ } | Select { dst; _ }
  | Load { dst; _ } | Mov { dst; _ } | Getb { dst } | Get { dst; _ }
  | Recv { dst; _ } ->
    [ dst ]
  | Store _ | Pbr _ | Br _ | Bcast _ | Put _ | Send _ | Spawn _ | Sleep
  | Mode_switch _ | Tm_begin | Tm_commit | Halt | Nop ->
    []

let uses = function
  | Alu { src1; src2; _ } | Fpu { src1; src2; _ } | Cmp { src1; src2; _ } ->
    operand_uses src1 @ operand_uses src2
  | Select { pred; if_true; if_false; _ } ->
    operand_uses pred @ operand_uses if_true @ operand_uses if_false
  | Load { base; offset; _ } -> operand_uses base @ operand_uses offset
  | Store { base; offset; src } ->
    operand_uses base @ operand_uses offset @ operand_uses src
  | Mov { src; _ } -> operand_uses src
  | Br { pred; _ } -> ( match pred with None -> [] | Some p -> operand_uses p)
  | Bcast { src } | Put { src; _ } | Send { src; _ } -> operand_uses src
  | Pbr _ | Getb _ | Get _ | Recv _ | Spawn _ | Sleep | Mode_switch _
  | Tm_begin | Tm_commit | Halt | Nop ->
    []

let is_branch = function Br _ -> true | _ -> false

(* Communication-out ops execute in the machine's phase 1, before any
   core's main phase, so same-cycle PUT/GET and BCAST pairing works. *)
let is_comm_out = function
  | Put _ | Bcast _ | Send _ | Spawn _ -> true
  | Alu _ | Fpu _ | Cmp _ | Select _ | Load _ | Store _ | Mov _ | Pbr _ | Br _
  | Getb _ | Get _ | Recv _ | Sleep | Mode_switch _ | Tm_begin | Tm_commit
  | Halt | Nop ->
    false

let opposite = function
  | North -> South
  | South -> North
  | East -> West
  | West -> East

let string_of_alu = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Min -> "min" | Max -> "max"

let string_of_fpu = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let string_of_cmp = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let string_of_dir = function
  | North -> "n" | South -> "s" | East -> "e" | West -> "w"

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "r%d" r
  | Imm i -> Format.fprintf ppf "#%d" i

let pp_mode ppf = function
  | Coupled -> Format.pp_print_string ppf "coupled"
  | Decoupled -> Format.pp_print_string ppf "decoupled"

let pp ppf inst =
  let p fmt = Format.fprintf ppf fmt in
  match inst with
  | Alu { op; dst; src1; src2 } ->
    p "%s r%d = %a, %a" (string_of_alu op) dst pp_operand src1 pp_operand src2
  | Fpu { op; dst; src1; src2 } ->
    p "%s r%d = %a, %a" (string_of_fpu op) dst pp_operand src1 pp_operand src2
  | Cmp { op; dst; src1; src2 } ->
    p "cmp.%s r%d = %a, %a" (string_of_cmp op) dst pp_operand src1 pp_operand src2
  | Select { dst; pred; if_true; if_false } ->
    p "select r%d = %a ? %a : %a" dst pp_operand pred pp_operand if_true
      pp_operand if_false
  | Load { dst; base; offset } ->
    p "load r%d = [%a + %a]" dst pp_operand base pp_operand offset
  | Store { base; offset; src } ->
    p "store [%a + %a] = %a" pp_operand base pp_operand offset pp_operand src
  | Mov { dst; src } -> p "mov r%d = %a" dst pp_operand src
  | Pbr { btr; target } -> p "pbr b%d = %s" btr target
  | Br { btr; pred = None; _ } -> p "br b%d" btr
  | Br { btr; pred = Some c; invert } ->
    p "br%s b%d if %a" (if invert then ".not" else "") btr pp_operand c
  | Bcast { src } -> p "bcast %a" pp_operand src
  | Getb { dst } -> p "getb r%d" dst
  | Put { dir; src } -> p "put.%s %a" (string_of_dir dir) pp_operand src
  | Get { dir; dst } -> p "get.%s r%d" (string_of_dir dir) dst
  | Send { target; src } -> p "send c%d, %a" target pp_operand src
  | Recv { sender; dst; kind } ->
    let suffix =
      match kind with Rv_data -> "" | Rv_pred -> ".p" | Rv_sync -> ".sync"
    in
    p "recv%s r%d = c%d" suffix dst sender
  | Spawn { target; entry } -> p "spawn c%d, %s" target entry
  | Sleep -> p "sleep"
  | Mode_switch m -> p "mode_switch %a" pp_mode m
  | Tm_begin -> p "tm_begin"
  | Tm_commit -> p "tm_commit"
  | Halt -> p "halt"
  | Nop -> p "nop"

let to_string inst = Format.asprintf "%a" pp inst
