(** Per-core code images.

    Each Voltron core fetches from its own instruction space (paper §3.2:
    "the instructions for each core are located in different memory
    spaces"), so a logical label resolves to a different physical address in
    every core's image. An image is a flat array of bundles plus the
    label→address map for that core. *)

type t

(** Predecoded form of one bundle, built once at {!finish} time: packed op
    array, precomputed register sets and op-class counts, so per-cycle
    consumers (the simulator's fetch/issue loop) never re-walk the
    [Inst.t list] or re-allocate [Inst.uses] results. Immutable. *)
type decoded = {
  d_ops : Inst.t array;  (** bundle ops, in issue order *)
  d_comm_out : bool array;  (** per op: PUT/BCAST/SEND/SPAWN (phase 1) *)
  d_uses : int array array;  (** per op: source registers, in operand order *)
  d_defs : int array;  (** registers written, in op order *)
  d_srcs : int array;  (** dedup union of all uses (the snapshot set) *)
  d_max_reg : int;  (** max register mentioned anywhere, -1 if none *)
  d_real_ops : int;  (** non-NOP op count *)
  d_n_mem : int;  (** memory-class ops (incl. TM_BEGIN/TM_COMMIT) *)
  d_n_comm : int;  (** communication-class ops *)
  d_n_muldiv : int;  (** MUL/DIV/REM/FPU ops *)
  d_has_comm_out : bool;
  d_ends_block : bool;  (** contains BR/HALT/SLEEP/MODE_SWITCH *)
}

type builder

val builder : unit -> builder

val place_label : builder -> Inst.label -> unit
(** Bind a label to the next emitted bundle's address. Rebinding a label is
    an error. *)

val emit : builder -> Bundle.t -> unit

val emit_all : builder -> Bundle.t list -> unit

val next_addr : builder -> int
(** Address the next [emit] will occupy. *)

val finish : builder -> t

val length : t -> int
val fetch : t -> int -> Bundle.t
(** Raises [Invalid_argument] outside [0, length). *)

val decoded : t -> int -> decoded
(** The predecoded form of the bundle at that address. Raises
    [Invalid_argument] outside [0, length). *)

val enclosing_label : t -> int -> string
(** Nearest label at or before the address (alphabetically first when
    several share it), ["<entry>"] when none — precomputed, O(1). *)

val resolve : t -> Inst.label -> int
(** Raises [Not_found] for labels absent from this image. *)

val has_label : t -> Inst.label -> bool
val labels_at : t -> int -> Inst.label list

val pp : Format.formatter -> t -> unit
(** Disassembly listing with labels. *)
