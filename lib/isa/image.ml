(* Predecoded bundle form, built once at image-finish time so the
   simulator's per-cycle loop never re-walks an [Inst.t list] or re-allocates
   [Inst.uses] results. Everything here is derived from the bundle and
   immutable after [finish]. *)
type decoded = {
  d_ops : Inst.t array;  (** bundle ops, in issue order *)
  d_comm_out : bool array;  (** per op: PUT/BCAST/SEND/SPAWN (phase 1) *)
  d_uses : int array array;  (** per op: source registers, in operand order *)
  d_defs : int array;  (** registers written, in op order *)
  d_srcs : int array;  (** dedup union of all uses (snapshot set) *)
  d_max_reg : int;  (** max register mentioned anywhere, -1 if none *)
  d_real_ops : int;  (** non-NOP op count *)
  d_n_mem : int;  (** memory-class ops (incl. TM_BEGIN/TM_COMMIT) *)
  d_n_comm : int;  (** communication-class ops *)
  d_n_muldiv : int;  (** MUL/DIV/REM/FPU ops *)
  d_has_comm_out : bool;
  d_ends_block : bool;  (** contains BR/HALT/SLEEP/MODE_SWITCH *)
}

type t = {
  bundles : Bundle.t array;
  decoded : decoded array;
  owner_label : string array;
      (** per address: nearest label at or before it, ["<entry>"] if none *)
  addr_of_label : (Inst.label, int) Hashtbl.t;
}

type builder = {
  buf : Bundle.t Voltron_util.Vec.t;
  labels : (Inst.label, int) Hashtbl.t;
}

let builder () = { buf = Voltron_util.Vec.create (); labels = Hashtbl.create 16 }

let next_addr b = Voltron_util.Vec.length b.buf

let place_label b label =
  if Hashtbl.mem b.labels label then
    invalid_arg (Printf.sprintf "Image.place_label: duplicate label %s" label);
  Hashtbl.replace b.labels label (next_addr b)

let emit b bundle = Voltron_util.Vec.push b.buf bundle

let emit_all b bundles = List.iter (emit b) bundles

let decode (bundle : Bundle.t) =
  let ops = Array.of_list bundle in
  let comm_out = Array.map Inst.is_comm_out ops in
  let uses = Array.map (fun op -> Array.of_list (Inst.uses op)) ops in
  let defs = Array.of_list (List.concat_map Inst.defs bundle) in
  let srcs =
    Array.fold_left
      (fun acc u ->
        Array.fold_left
          (fun acc r -> if List.mem r acc then acc else r :: acc)
          acc u)
      [] uses
    |> List.rev |> Array.of_list
  in
  let max_reg =
    Array.fold_left (fun m r -> max m r)
      (Array.fold_left (fun m r -> max m r) (-1) defs)
      srcs
  in
  let real_ops = ref 0
  and n_mem = ref 0
  and n_comm = ref 0
  and n_muldiv = ref 0
  and ends_block = ref false in
  Array.iter
    (fun (op : Inst.t) ->
      if op <> Inst.Nop then begin
        incr real_ops;
        (match Inst.unit_class op with
        | Inst.Memory -> incr n_mem
        | Inst.Commun -> incr n_comm
        | Inst.Compute | Inst.Control -> ());
        match op with
        | Inst.Alu { op = Inst.Mul | Inst.Div | Inst.Rem; _ } | Inst.Fpu _ ->
          incr n_muldiv
        | _ -> ()
      end;
      match op with
      | Inst.Br _ | Inst.Halt | Inst.Sleep | Inst.Mode_switch _ ->
        ends_block := true
      | _ -> ())
    ops;
  {
    d_ops = ops;
    d_comm_out = comm_out;
    d_uses = uses;
    d_defs = defs;
    d_srcs = srcs;
    d_max_reg = max_reg;
    d_real_ops = !real_ops;
    d_n_mem = !n_mem;
    d_n_comm = !n_comm;
    d_n_muldiv = !n_muldiv;
    d_has_comm_out = Array.exists (fun b -> b) comm_out;
    d_ends_block = !ends_block;
  }

let finish b =
  (* A label placed after the last bundle points one past the end; give it a
     real landing pad so branches to it are well-defined. *)
  let len = Voltron_util.Vec.length b.buf in
  let dangling = Hashtbl.fold (fun _ addr acc -> acc || addr >= len) b.labels false in
  if dangling then Voltron_util.Vec.push b.buf [ Inst.Halt ];
  let bundles = Voltron_util.Vec.to_array b.buf in
  let n = Array.length bundles in
  (* Nearest label at or before each address; when several labels share an
     address, the alphabetically first (matching [labels_at]'s head). *)
  let label_here = Array.make n None in
  Hashtbl.iter
    (fun label addr ->
      if addr < n then
        match label_here.(addr) with
        | Some l when l <= label -> ()
        | Some _ | None -> label_here.(addr) <- Some label)
    b.labels;
  let owner_label = Array.make n "<entry>" in
  let cur = ref "<entry>" in
  for addr = 0 to n - 1 do
    (match label_here.(addr) with Some l -> cur := l | None -> ());
    owner_label.(addr) <- !cur
  done;
  {
    bundles;
    decoded = Array.map decode bundles;
    owner_label;
    addr_of_label = Hashtbl.copy b.labels;
  }

let length t = Array.length t.bundles

let fetch t addr =
  if addr < 0 || addr >= Array.length t.bundles then
    invalid_arg (Printf.sprintf "Image.fetch: address %d out of [0,%d)" addr (Array.length t.bundles));
  t.bundles.(addr)

let decoded t addr =
  if addr < 0 || addr >= Array.length t.decoded then
    invalid_arg (Printf.sprintf "Image.decoded: address %d out of [0,%d)" addr (Array.length t.decoded));
  t.decoded.(addr)

let enclosing_label t addr =
  if addr < 0 || addr >= Array.length t.owner_label then "<entry>"
  else t.owner_label.(addr)

let resolve t label =
  match Hashtbl.find_opt t.addr_of_label label with
  | Some addr -> addr
  | None -> raise Not_found

let has_label t label = Hashtbl.mem t.addr_of_label label

let labels_at t addr =
  Hashtbl.fold
    (fun label a acc -> if a = addr then label :: acc else acc)
    t.addr_of_label []
  |> List.sort compare

let pp ppf t =
  Array.iteri
    (fun addr bundle ->
      List.iter (fun l -> Format.fprintf ppf "%s:@." l) (labels_at t addr);
      Format.fprintf ppf "  %4d: %a@." addr Bundle.pp bundle)
    t.bundles
