(** The Voltron instruction set.

    An HPL-PD-flavoured VLIW ISA (paper §3, Fig. 4) extended with the
    dual-mode scalar-operand-network operations:

    - direct mode (coupled execution): [Put]/[Get] move a register value to
      an adjacent core in one cycle, [Bcast]/[Getb] broadcast a branch
      condition to all cores;
    - queue mode (decoupled execution): [Send]/[Recv] communicate
      asynchronously through send/receive queues with sender-id matching;
    - thread control: [Spawn] starts a fine-grain thread on an idle core,
      [Sleep] ends one;
    - [Mode_switch] flips the machine between coupled and decoupled
      execution and acts as a barrier when entering coupled mode;
    - [Tm_begin]/[Tm_commit] bracket a speculative chunk of a statistical
      DOALL loop on the low-cost transactional memory.

    Branches are unbundled as in HPL-PD: [Pbr] writes a branch-target
    register, a compare computes the predicate, and [Br] transfers control.

    Values are machine integers; floating-point opcodes exist as a latency
    class only (see DESIGN.md §2). *)

type core_id = int

type reg = int
(** General-purpose register index within a core's register file. *)

type btr = int
(** Branch-target register index. *)

type label = string
(** Code labels, resolved per core image: the same logical label names a
    different physical address in each core's instruction space. *)

type dir = North | South | East | West

type recv_kind =
  | Rv_data  (** ordinary scalar operand *)
  | Rv_pred  (** branch condition *)
  | Rv_sync  (** dummy value: memory-dependence or region join sync *)

type mode = Coupled | Decoupled

type alu_op =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Min | Max

type fpu_op = Fadd | Fsub | Fmul | Fdiv

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type operand = Reg of reg | Imm of int

type t =
  | Alu of { op : alu_op; dst : reg; src1 : operand; src2 : operand }
  | Fpu of { op : fpu_op; dst : reg; src1 : operand; src2 : operand }
  | Cmp of { op : cmp_op; dst : reg; src1 : operand; src2 : operand }
  | Select of { dst : reg; pred : operand; if_true : operand; if_false : operand }
  | Load of { dst : reg; base : operand; offset : operand }
  | Store of { base : operand; offset : operand; src : operand }
  | Mov of { dst : reg; src : operand }
  | Pbr of { btr : btr; target : label }
  | Br of { btr : btr; pred : operand option; invert : bool }
      (** Taken iff [pred] is absent (unconditional), or truthy and not
          [invert], or falsy and [invert]. *)
  | Bcast of { src : operand }
  | Getb of { dst : reg }
  | Put of { dir : dir; src : operand }
  | Get of { dir : dir; dst : reg }
  | Send of { target : core_id; src : operand }
  | Recv of { sender : core_id; dst : reg; kind : recv_kind }
      (** [kind] classifies the receive so the simulator can attribute its
          stalls separately (paper Fig. 12). *)
  | Spawn of { target : core_id; entry : label }
  | Sleep
  | Mode_switch of mode
  | Tm_begin
  | Tm_commit
  | Halt
  | Nop

type unit_class = Compute | Memory | Commun | Control
(** Functional-unit class used by bundle legality checks and the
    schedulers: per Fig. 4(b) a core has compute FUs, a memory FU and a
    communication FU; control ops steer the fetch unit. *)

val unit_class : t -> unit_class

val defs : t -> reg list
(** General registers written. *)

val uses : t -> reg list
(** General registers read. *)

val is_branch : t -> bool
(** Control ops that may change the PC ([Br] only). *)

val is_comm_out : t -> bool
(** Communication-out ops ([Put]/[Bcast]/[Send]/[Spawn]): executed in the
    machine's phase 1, before any core's main phase, so same-cycle PUT/GET
    and BCAST pairing works across cores. *)

val opposite : dir -> dir
(** [opposite North = South] etc. — the direction a value put eastward is
    received from. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_mode : Format.formatter -> mode -> unit
