module Fault = Voltron_fault.Fault

type payload = Value of int | Start of int

type latch = { mutable filled : bool; mutable value : int; mutable time : int }

(* In-flight delivery state. [Clean] messages arrive at [ready_time];
   [Lost]/[Corrupt] ones are injected faults (or an overflow NACK) that the
   sender retransmits at [retry_at] with exponential backoff. *)
type condition = Clean | Lost | Corrupt

type message = {
  msg_src : int;
  msg_dst : int;
  mutable msg_payload : payload;  (** mutable only for the tamper backdoor *)
  msg_sent : int;  (** enqueue cycle — the tail of a send→recv blame edge *)
  mutable ready_time : int;  (** cycle at which the receive queue can deliver *)
  seq : int;  (** global enqueue order: FIFO per (src, dst) pair *)
  mutable condition : condition;
  mutable attempt : int;  (** 1-based transmission count *)
  mutable retry_at : int;  (** next retransmission cycle when not [Clean] *)
}

type bcast_slot = { mutable b_value : int; mutable b_time : int; mutable b_src : int }

type stats = {
  mutable msgs_sent : int;
  mutable total_latency : int;
  mutable max_occupancy : int;
  mutable retries : int;  (** retransmissions of lost/corrupted/NACKed msgs *)
  mutable nacks : int;  (** parity NACKs + receive-queue overflow NACKs *)
}

(* Runtime sanitizer events: the network announces every enqueue, delivery
   and latch fill/drain so an external model can mirror the protocol and
   cross-check conservation, FIFO order and payload integrity. *)
type event =
  | Ev_send of { ev_src : int; ev_dst : int; ev_seq : int; ev_payload : payload }
  | Ev_deliver of {
      ev_src : int;
      ev_dst : int;
      ev_seq : int;
      ev_payload : payload;
      ev_sent : int;  (** the delivered message's enqueue cycle *)
    }
  | Ev_put of { ev_src : int; ev_dst : int; ev_dir : Voltron_isa.Inst.dir }
      (** successful latch fill; [ev_dir] is the PUT direction at the source *)
  | Ev_get of { ev_core : int; ev_dir : Voltron_isa.Inst.dir }
      (** successful latch drain at the consuming core *)

type t = {
  net_mesh : Mesh.t;
  capacity : int;
  hop_cost : int;  (** cycles per mesh hop (1 = the paper's network) *)
  (* latches.(core).(dir_index): value arriving at [core] from direction. *)
  latches : latch array array;
  mutable broadcast : bcast_slot option;
  consumed_bcast : bool array;  (** per-core: has this core taken the current bcast *)
  mutable in_flight : message list;  (** unsorted; small *)
  mutable next_seq : int;
  net_stats : stats;
  faults : Fault.t option;
  mutable monitor : (event -> unit) option;
}

type put_error = Off_mesh | Latch_full of int

type send_error = Bad_destination of int | Channel_full

type error =
  | Put_failed of { src_core : int; error : put_error }
  | Send_failed of send_error

(* Single rendering point for typed network errors: the machine's watchdog
   diagnosis and the static checker's diagnostics both go through here, so
   an error reads the same whether it was predicted or hit at runtime. *)
let pp_error ppf = function
  | Put_failed { src_core; error = Off_mesh } ->
    Format.fprintf ppf "put: core %d has no neighbour in that direction" src_core
  | Put_failed { error = Latch_full dst; _ } ->
    Format.fprintf ppf "put: latch into core %d still full (unconsumed PUT)" dst
  | Send_failed (Bad_destination dst) ->
    Format.fprintf ppf "send: bad destination core %d" dst
  | Send_failed Channel_full -> Format.pp_print_string ppf "send: channel full"

let error_to_string e = Format.asprintf "%a" pp_error e

let put_error_to_string ~src_core error =
  error_to_string (Put_failed { src_core; error })

let send_error_to_string e = error_to_string (Send_failed e)

let dir_index (d : Voltron_isa.Inst.dir) =
  match d with
  | Voltron_isa.Inst.North -> 0
  | Voltron_isa.Inst.South -> 1
  | Voltron_isa.Inst.East -> 2
  | Voltron_isa.Inst.West -> 3

let create ?faults ?(hop_cost = 1) net_mesh ~receive_capacity =
  if hop_cost < 0 then invalid_arg "Operand_network.create: negative hop_cost";
  let n = Mesh.n_cores net_mesh in
  {
    net_mesh;
    capacity = receive_capacity;
    hop_cost;
    latches =
      Array.init n (fun _ ->
          Array.init 4 (fun _ -> { filled = false; value = 0; time = 0 }));
    broadcast = None;
    consumed_bcast = Array.make n true;
    in_flight = [];
    next_seq = 0;
    net_stats =
      { msgs_sent = 0; total_latency = 0; max_occupancy = 0; retries = 0; nacks = 0 };
    faults;
    monitor = None;
  }

let mesh t = t.net_mesh

let stats t = t.net_stats

let set_monitor t f = t.monitor <- Some f

let emit t ev = match t.monitor with None -> () | Some f -> f ev

let in_flight_count t = List.length t.in_flight

(* --- Direct mode --------------------------------------------------------- *)

let put t ~now ~src_core dir value =
  match Mesh.neighbour t.net_mesh src_core dir with
  | None -> Error Off_mesh
  | Some dst ->
    let latch = t.latches.(dst).(dir_index (Voltron_isa.Inst.opposite dir)) in
    if latch.filled then Error (Latch_full dst)
    else begin
      latch.filled <- true;
      latch.value <- value;
      latch.time <- now;
      emit t (Ev_put { ev_src = src_core; ev_dst = dst; ev_dir = dir });
      Ok ()
    end

let get t ~now ~core dir =
  let latch = t.latches.(core).(dir_index dir) in
  if not latch.filled then None
  else if latch.time > now then None
  else begin
    (* With the lock-step stall bus, a paired PUT/GET always executes in the
       same cycle; an older timestamp would mean the cores de-synchronised. *)
    if latch.time < now then
      failwith
        (Printf.sprintf
           "get: core %d read a stale direct-mode latch (put at %d, get at %d)"
           core latch.time now);
    latch.filled <- false;
    emit t (Ev_get { ev_core = core; ev_dir = dir });
    Some latch.value
  end

let bcast t ~now ~src_core value =
  t.broadcast <- Some { b_value = value; b_time = now; b_src = src_core };
  Array.fill t.consumed_bcast 0 (Array.length t.consumed_bcast) false;
  t.consumed_bcast.(src_core) <- true

let getb t ~now ~core =
  match t.broadcast with
  | None -> None
  | Some slot ->
    if t.consumed_bcast.(core) then None
    else begin
      let arrival =
        slot.b_time + (Mesh.hops t.net_mesh slot.b_src core * t.hop_cost)
      in
      if now < arrival then None
      else begin
        t.consumed_bcast.(core) <- true;
        Some slot.b_value
      end
    end

(* --- Queue mode ---------------------------------------------------------- *)

(* The queue scans below are toplevel recursions threading their context
   as arguments, not List combinators over closures: several run every
   cycle for every blocked or sleeping core (the machine's blocker and
   wake probes), and a capturing closure per call would put the network
   back on the simulator's per-cycle allocation path. *)

let rec count_channel src dst n = function
  | [] -> n
  | m :: rest ->
    count_channel src dst
      (if m.msg_dst = dst && m.msg_src = src then n + 1 else n)
      rest

let pending t ~src ~dst = count_channel src dst 0 t.in_flight

(* Retransmission must not reorder a (src, dst) channel: RECV consumes by
   sender id only, so FIFO within a channel is program semantics, not just
   timing. Two payload classes share a channel without ordering constraints
   (a Start is consumed only by a sleeping core), so the unit of ordering is
   (src, dst, class). *)
let same_channel a b =
  a.msg_src = b.msg_src && a.msg_dst = b.msg_dst
  &&
  match (a.msg_payload, b.msg_payload) with
  | Value _, Value _ | Start _, Start _ -> true
  | Value _, Start _ | Start _, Value _ -> false

let rec earlier_on_channel m = function
  | [] -> false
  | m' :: rest -> (same_channel m m' && m'.seq < m.seq) || earlier_on_channel m rest

let head_of_channel t m = not (earlier_on_channel m t.in_flight)

(* In a fault-free run every message is [Clean] and same-channel hop counts
   are equal, so ready order equals seq order and the head-of-channel test
   never blocks a ready message: delivery timing is bit-identical to a
   network without the retry machinery. *)
let deliverable t ~now m =
  m.condition = Clean && m.ready_time <= now && head_of_channel t m

(* (Re)launch [m] at [now], rolling fault injection on each transmission.
   After [max_retries] retransmissions the delivery is forced clean, so a
   message occupies its channel for a bounded time even at rate 1.0. *)
let transmit t ~now m =
  let hops = Mesh.hops t.net_mesh m.msg_src m.msg_dst in
  m.ready_time <- now + 1 + (hops * t.hop_cost);
  m.condition <- Clean;
  match t.faults with
  | None -> ()
  | Some f ->
    let cfg = Fault.config f in
    if m.attempt <= cfg.Fault.max_retries then
      if Fault.roll_drop f then begin
        (* Sender-side ack timeout: no arrival, retry after backoff. *)
        m.condition <- Lost;
        m.retry_at <- now + Fault.backoff f ~attempt:m.attempt
      end
      else if Fault.roll_corrupt f then begin
        (* Parity fails on arrival; the NACK triggers a backoff'd resend. *)
        m.condition <- Corrupt;
        m.retry_at <- m.ready_time + Fault.backoff f ~attempt:m.attempt
      end

let enqueue t ~now ~src ~dst payload =
  let hops = Mesh.hops t.net_mesh src dst in
  let msg =
    {
      msg_src = src;
      msg_dst = dst;
      msg_payload = payload;
      msg_sent = now;
      ready_time = now + 1 + (hops * t.hop_cost);
      seq = t.next_seq;
      condition = Clean;
      attempt = 1;
      retry_at = 0;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.in_flight <- msg :: t.in_flight;
  let s = t.net_stats in
  s.msgs_sent <- s.msgs_sent + 1;
  s.total_latency <- s.total_latency + 2 + (hops * t.hop_cost);
  s.max_occupancy <- max s.max_occupancy (List.length t.in_flight);
  emit t
    (Ev_send { ev_src = src; ev_dst = dst; ev_seq = msg.seq; ev_payload = payload });
  msg

let send t ~now ~src ~dst payload =
  if dst < 0 || dst >= Mesh.n_cores t.net_mesh then Error (Bad_destination dst)
  else if pending t ~src ~dst >= t.capacity then Error Channel_full
  else begin
    let msg = enqueue t ~now ~src ~dst payload in
    transmit t ~now msg;
    Ok ()
  end

let defer t ~now ~src ~dst payload =
  if dst < 0 || dst >= Mesh.n_cores t.net_mesh then invalid_arg "Net.defer";
  let msg = enqueue t ~now ~src ~dst payload in
  (* Receive-queue overflow: the entry NACK parks the message at the sender,
     which retries on the same backoff schedule as a lost message. *)
  let cfg =
    match t.faults with Some f -> Fault.config f | None -> Fault.disabled
  in
  msg.condition <- Lost;
  msg.retry_at <- now + Fault.backoff_of cfg ~attempt:msg.attempt;
  t.net_stats.nacks <- t.net_stats.nacks + 1

let rec service_loop t now = function
  | [] -> ()
  | m :: rest ->
    if m.condition <> Clean && m.retry_at <= now then begin
      let s = t.net_stats in
      s.retries <- s.retries + 1;
      if m.condition = Corrupt then s.nacks <- s.nacks + 1;
      m.attempt <- m.attempt + 1;
      transmit t ~now m
    end;
    service_loop t now rest

let service t ~now =
  match t.in_flight with [] -> () | l -> service_loop t now l

(* Payload-class match without a closure: [want_start] selects the class,
   and [src < 0] means "any sender" (START consumption). *)
let class_matches want_start m =
  match m.msg_payload with Start _ -> want_start | Value _ -> not want_start

let rec find_deliverable t now dst src want_start best = function
  | [] -> best
  | m :: rest ->
    let best =
      if
        m.msg_dst = dst
        && (src < 0 || m.msg_src = src)
        && class_matches want_start m
        && deliverable t ~now m
      then
        match best with Some b when b.seq <= m.seq -> best | _ -> Some m
      else best
    in
    find_deliverable t now dst src want_start best rest

let rec remove_seq seq = function
  | [] -> []
  | m :: rest -> if m.seq = seq then rest else m :: remove_seq seq rest

(* Find (and remove) the deliverable message on the matching channel class
   with the smallest seq. *)
let take t ~now ~dst ~src ~want_start =
  match find_deliverable t now dst src want_start None t.in_flight with
  | None -> None
  | Some m ->
    t.in_flight <- remove_seq m.seq t.in_flight;
    emit t
      (Ev_deliver
         {
           ev_src = m.msg_src;
           ev_dst = m.msg_dst;
           ev_seq = m.seq;
           ev_payload = m.msg_payload;
           ev_sent = m.msg_sent;
         });
    Some m

let recv t ~now ~core ~sender =
  match take t ~now ~dst:core ~src:sender ~want_start:false with
  | Some { msg_payload = Value v; _ } -> Some v
  | Some { msg_payload = Start _; _ } -> assert false
  | None -> None

let rec recv_ready_loop t now dst src = function
  | [] -> false
  | m :: rest ->
    (m.msg_dst = dst && m.msg_src = src
    && (match m.msg_payload with Value _ -> true | Start _ -> false)
    && deliverable t ~now m)
    || recv_ready_loop t now dst src rest

let recv_ready t ~now ~core ~sender =
  recv_ready_loop t now core sender t.in_flight

let getb_ready t ~now ~core =
  match t.broadcast with
  | None -> false
  | Some slot ->
    (not t.consumed_bcast.(core))
    && now >= slot.b_time + (Mesh.hops t.net_mesh slot.b_src core * t.hop_cost)

(* --- Wake queries (stall fast-forward) ------------------------------------ *)

(* Earliest cycle at which the matching receive condition can turn true,
   assuming the machine issues nothing in between (so [in_flight] is
   frozen). Only exact on a fault-free network: every message is [Clean]
   and same-channel hop counts are equal, so the min [ready_time] over a
   channel is its head's delivery time. [max_int] when nothing matching is
   in flight — the wait is event-driven and cannot clear while no core
   issues. *)
let rec min_ready dst src want_start acc = function
  | [] -> acc
  | m :: rest ->
    let acc =
      if
        m.msg_dst = dst
        && (src < 0 || m.msg_src = src)
        && class_matches want_start m
      then min acc m.ready_time
      else acc
    in
    min_ready dst src want_start acc rest

let next_value_ready t ~core ~sender =
  min_ready core sender false max_int t.in_flight

let next_start_ready t ~core = min_ready core (-1) true max_int t.in_flight

let getb_wake t ~core =
  match t.broadcast with
  | None -> max_int
  | Some slot ->
    if t.consumed_bcast.(core) then max_int
    else slot.b_time + (Mesh.hops t.net_mesh slot.b_src core * t.hop_cost)

let take_start t ~now ~core =
  if t.in_flight == [] then None
  else
    match take t ~now ~dst:core ~src:(-1) ~want_start:true with
    | Some { msg_payload = Start addr; _ } -> Some addr
    | Some { msg_payload = Value _; _ } -> assert false
    | None -> None

let in_flight_summary t =
  List.sort (fun a b -> compare a.seq b.seq) t.in_flight
  |> List.map (fun m ->
         let payload =
           match m.msg_payload with
           | Value v -> Printf.sprintf "value %d" v
           | Start a -> Printf.sprintf "start @%d" a
         in
         let state =
           match m.condition with
           | Clean -> Printf.sprintf "deliverable @%d" m.ready_time
           | Lost ->
             Printf.sprintf "lost, retry @%d (attempt %d)" m.retry_at m.attempt
           | Corrupt ->
             Printf.sprintf "corrupt, retry @%d (attempt %d)" m.retry_at
               m.attempt
         in
         (m.msg_src, m.msg_dst, payload ^ ", " ^ state))

let idle t =
  t.in_flight = []
  && Array.for_all (fun row -> Array.for_all (fun l -> not l.filled) row) t.latches

(* --- Test backdoors -------------------------------------------------------- *)

(* Oldest in-flight message, optionally restricted to Value payloads. *)
let oldest_in_flight ?(values_only = false) t =
  List.fold_left
    (fun best m ->
      let eligible =
        (not values_only)
        || match m.msg_payload with Value _ -> true | Start _ -> false
      in
      if not eligible then best
      else match best with Some b when b.seq <= m.seq -> best | _ -> Some m)
    None t.in_flight

let test_tamper_payload t =
  match oldest_in_flight ~values_only:true t with
  | None -> false
  | Some m ->
    (match m.msg_payload with
    | Value v -> m.msg_payload <- Value (v lxor 1)
    | Start _ -> assert false);
    true

let test_drop t =
  match oldest_in_flight t with
  | None -> false
  | Some m ->
    t.in_flight <- remove_seq m.seq t.in_flight;
    true
