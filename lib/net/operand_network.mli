(** The dual-mode scalar operand network (paper §3.1).

    {b Direct mode} (coupled execution): a PUT on one core and a GET on the
    adjacent core execute in the same cycle and move one register value in
    one cycle per hop, like an inter-cluster move in a multicluster VLIW.
    The model is a latch per (receiving core, incoming direction): PUT
    fills the latch with the current cycle's timestamp, the paired GET
    drains it. BCAST drives a condition to every core; the value becomes
    visible to core [c] at [t + hops(src, c)] (GETB earlier simply does not
    see it yet and the core stalls, which the lock-step stall bus then
    propagates).

    {b Queue mode} (decoupled execution): SEND enqueues a message that the
    router delivers after [1 + hops] cycles into the receiver's CAM-indexed
    receive queue; RECV searches by sender id, consuming the oldest
    matching message, and stalls while none is ready. End-to-end latency is
    2 + hops (one cycle into the send queue, one per hop, one out of the
    receive queue), per §3.1. SPAWN travels the same network carrying a
    start address.

    {b Resilience}: with a {!Voltron_fault.Fault} injector attached, each
    transmission can be dropped or corrupted. Delivery is protected by an
    ack/NACK + timeout protocol: a lost message is retransmitted after a
    bounded exponential backoff, a corrupted one fails its parity check on
    arrival and is NACKed back for resend, and after [max_retries]
    retransmissions delivery is forced clean so no channel wedges forever.
    Messages deliver strictly in per-(sender, receiver, class) FIFO order
    even across retries — a retried message blocks younger ones on its
    channel — which keeps queue-mode program semantics intact under faults.

    The machine drives this module cycle-by-cycle; all "stall" outcomes are
    reported as [None] and accounted by the caller. *)

type t

type payload = Value of int | Start of int  (** Start carries a code address *)

val create :
  ?faults:Voltron_fault.Fault.t ->
  ?hop_cost:int ->
  Mesh.t ->
  receive_capacity:int ->
  t
(** [faults] attaches a fault injector; omitted, the network is perfect and
    cycle-for-cycle identical to one without the retry machinery.
    [hop_cost] scales per-hop latency in cycles (default 1, the paper's
    network; 0 idealises hop latency away — the causal profiler's what-if
    rerun configuration). Raises [Invalid_argument] when negative. *)

val mesh : t -> Mesh.t

(** {1 Direct mode} *)

type put_error =
  | Off_mesh  (** the direction leaves the mesh *)
  | Latch_full of int  (** unconsumed PUT into that core *)

val put_error_to_string : src_core:int -> put_error -> string

val put :
  t -> now:int -> src_core:int -> Voltron_isa.Inst.dir -> int ->
  (unit, put_error) result
(** Both error cases are compiler scheduling bugs — surfaced, not masked. *)

val get : t -> now:int -> core:int -> Voltron_isa.Inst.dir -> int option
(** [None] when the latch is empty (caller stalls); [Some v] consumes. A
    stale latch value (timestamp in the past) is a scheduling error and
    raises [Failure]. *)

val bcast : t -> now:int -> src_core:int -> int -> unit
val getb : t -> now:int -> core:int -> int option
(** [None] until the most recent broadcast has reached [core]. Consuming is
    per-core: a second GETB on the same core needs a fresh BCAST. *)

(** {1 Queue mode} *)

type send_error =
  | Bad_destination of int  (** no such core *)
  | Channel_full  (** the (sender, receiver) channel is at capacity *)

val send_error_to_string : send_error -> string

(** {2 Unified error rendering}

    Both error families funnel through one printer so the runtime
    watchdog's diagnosis and the static checker's diagnostics describe the
    same failure with the same words. *)

type error =
  | Put_failed of { src_core : int; error : put_error }
  | Send_failed of send_error

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val send :
  t -> now:int -> src:int -> dst:int -> payload -> (unit, send_error) result
(** [Error Channel_full] when the (sender, receiver) channel already holds
    [receive_capacity] undelivered messages — the caller stalls, or hands
    the message to {!defer}. Capacity is per channel, not per receiver: a
    producer running far ahead can only fill its own slots, never starve
    another sender whose message the receiver needs next (that sharing
    would deadlock rate-mismatched fine-grain threads). *)

val defer : t -> now:int -> src:int -> dst:int -> payload -> unit
(** Overflow path: enqueue the message as NACKed-at-entry; {!service}
    retransmits it on the standard backoff schedule instead of the sender
    hard-failing. Counted in [stats.nacks]. *)

val service : t -> now:int -> unit
(** Advance the retry protocol one cycle: retransmit every lost, corrupted
    or deferred message whose backoff timer has expired. A no-op on a
    fault-free network; the machine calls it once per cycle. *)

val recv : t -> now:int -> core:int -> sender:int -> int option
(** Oldest ready [Value] message from [sender]; [None] stalls. *)

val recv_ready : t -> now:int -> core:int -> sender:int -> bool
(** Non-consuming test that [recv] would succeed. *)

val getb_ready : t -> now:int -> core:int -> bool
(** Non-consuming test that [getb] would succeed. *)

val take_start : t -> now:int -> core:int -> int option
(** Oldest ready [Start] message addressed to a sleeping [core]. *)

(** {2 Wake queries}

    Earliest cycle the corresponding ready test can turn true while the
    machine issues nothing (the stall fast-forward window), or [max_int]
    when the wait is event-driven and cannot clear on its own. Exact only
    on a fault-free network — the machine gates fast-forward on that. *)

val next_value_ready : t -> core:int -> sender:int -> int
val next_start_ready : t -> core:int -> int
val getb_wake : t -> core:int -> int

val pending : t -> src:int -> dst:int -> int
(** Undelivered messages on the [src]->[dst] channel. *)

val idle : t -> bool
(** No message in flight anywhere and all latches empty. *)

val in_flight_summary : t -> (int * int * string) list
(** Snapshot of every undelivered message as (src, dst, description), in
    seq order — the receive-queue dump in the watchdog's diagnosis. *)

type stats = {
  mutable msgs_sent : int;
  mutable total_latency : int;
  mutable max_occupancy : int;
  mutable retries : int;  (** retransmissions of lost/corrupted/NACKed msgs *)
  mutable nacks : int;  (** parity NACKs + receive-queue overflow NACKs *)
}

val stats : t -> stats

(** {1 Runtime sanitizer hooks}

    The network announces every enqueue, delivery and latch fill/drain so an
    external model can mirror the protocol and cross-check message
    conservation, per-channel FIFO order and payload integrity. *)

type event =
  | Ev_send of { ev_src : int; ev_dst : int; ev_seq : int; ev_payload : payload }
      (** a message entered the network (SEND, SPAWN or overflow defer) *)
  | Ev_deliver of {
      ev_src : int;
      ev_dst : int;
      ev_seq : int;
      ev_payload : payload;
      ev_sent : int;  (** the delivered message's enqueue cycle *)
    }  (** a message left the network into the consuming core *)
  | Ev_put of { ev_src : int; ev_dst : int; ev_dir : Voltron_isa.Inst.dir }
      (** successful latch fill; [ev_dir] is the PUT direction at the source *)
  | Ev_get of { ev_core : int; ev_dir : Voltron_isa.Inst.dir }
      (** successful latch drain at the consuming core *)

val set_monitor : t -> (event -> unit) -> unit
(** Passive: the callback must not mutate the network. Unset (the default),
    the hot path pays a single branch per event site. *)

val in_flight_count : t -> int
(** Messages currently in flight — the conservation figure the sanitizer
    reconciles its mirror against every cycle. *)

val test_tamper_payload : t -> bool
(** Test-only sabotage: flip the low bit of the oldest in-flight [Value]
    payload, silently (no event, no parity trip) — undetectable corruption
    past the ack/retry protocol, for the sanitizer to catch. [false] when no
    Value message is in flight. *)

val test_drop : t -> bool
(** Test-only sabotage: silently remove the oldest in-flight message — a
    vanished message the retry protocol never notices, for the sanitizer's
    conservation check to catch. [false] when nothing is in flight. *)
