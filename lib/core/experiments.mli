(** Reproductions of the paper's evaluation figures (§5.2). Each function
    returns structured data; [print_*] renders the same rows/series the
    figure plots. See EXPERIMENTS.md for paper-vs-measured numbers.

    All speedups are over the single-core sequential baseline. [scale]
    shrinks the workloads for quick runs (tests use 0.25). [jobs]
    (default 1) fans the independent per-benchmark cells out on the
    work-stealing pool ({!Voltron_pool.Pool}); results are assembled in
    benchmark order, so every figure is identical for every [jobs]
    value. *)

type per_type_speedup = {
  bench : string;
  sp_ilp : float;
  sp_tlp : float;
  sp_llp : float;
}

type stall_breakdown = {
  sb_bench : string;
  (* Fractions of baseline execution time, averaged over cores, for the
     coupled-ILP and decoupled-TLP builds respectively. *)
  coupled_i : float;
  coupled_d : float;
  coupled_other : float;
  decoupled_i : float;
  decoupled_d : float;
  decoupled_recv : float;
  decoupled_pred : float;
  decoupled_sync : float;
}

type hybrid_speedup = { hs_bench : string; hs_2core : float; hs_4core : float }

type mode_split = { ms_bench : string; coupled_pct : float; decoupled_pct : float }

type classification = {
  cl_bench : string;
  pct_ilp : float;
  pct_tlp : float;
  pct_llp : float;
  pct_single : float;
}

type micro_result = {
  mi_name : string;
  mi_paper : float;  (** the speedup the paper reports for the example *)
  mi_measured : float;  (** ours, 2 cores, best strategy *)
}

val fig3 : ?scale:float -> ?benches:string list -> ?jobs:int -> unit -> classification list
(** Per-region measured classification: each region runs standalone under
    each forced strategy on 4 cores; the winner's category is credited
    with the region's dynamic weight (the paper's Fig. 3 methodology). *)

val fig10 : ?scale:float -> ?benches:string list -> ?jobs:int -> unit -> per_type_speedup list
(** 2-core speedups per parallelism type. *)

val fig11 : ?scale:float -> ?benches:string list -> ?jobs:int -> unit -> per_type_speedup list
(** 4-core speedups per parallelism type. *)

val fig12 : ?scale:float -> ?benches:string list -> ?jobs:int -> unit -> stall_breakdown list
(** Stall-cycle breakdown, coupled vs decoupled, 4 cores. *)

val fig13 : ?scale:float -> ?benches:string list -> ?jobs:int -> unit -> hybrid_speedup list
(** Hybrid (per-region best) speedups on 2 and 4 cores. *)

val fig14 : ?scale:float -> ?benches:string list -> ?jobs:int -> unit -> mode_split list
(** Share of execution time spent in each mode during the 4-core hybrid
    runs. *)

val micro : ?scale:float -> ?jobs:int -> unit -> micro_result list
(** The Figs. 7-9 worked examples on 2 cores. *)

(** {1 Coherence scaling} — snoop vs directory at 16-64 cores (DESIGN.md
    16). *)

type scaling_row = {
  sc_bench : string;
  sc_class : string;
      (** dominant mix category of the benchmark: ["ilp"], ["tlp"],
          ["llp"] or ["seq"] *)
  sc_cores : int;
  sc_snoop_cycles : int;
  sc_dir_cycles : int;
  sc_snoop : float;  (** hybrid speedup over the 1-core baseline, snoop *)
  sc_directory : float;  (** same run on the directory backend *)
}

type crossover_row = {
  cx_class : string;
  cx_cores : int;
  cx_snoop : float;  (** geomean speedup of the class's benchmarks *)
  cx_directory : float;
  cx_winner : string;  (** ["snoop"], ["directory"] or ["tie"] (within 1%) *)
}

val scaling :
  ?scale:float ->
  ?benches:string list ->
  ?cores:int list ->
  ?jobs:int ->
  unit ->
  scaling_row list
(** Hybrid speedup at 16/32/64 cores (default) under both coherence
    backends, per benchmark. The default benchmark set covers every
    dominant-mix class with two members (one for seq). Every cell must
    verify against the reference interpreter — the sweep doubles as an
    end-to-end cross-backend differential at high core counts. *)

val crossover : scaling_row list -> crossover_row list
(** Collapse a scaling sweep into the per-class crossover figure: geomean
    snoop vs directory speedup per (class, core count), naming the winner.
    The paper-level claim is that the directory's distributed home-bank
    serialization overtakes the single snoop bus by 16+ cores on
    miss-heavy classes. *)

val print_scaling : scaling_row list -> unit
val print_crossover : crossover_row list -> unit

(** {1 Resilience} — AVF-style fault sweep (DESIGN.md "Fault model &
    recovery"). *)

type resilience_row = {
  rs_bench : string;
  rs_rate : float;  (** uniform per-kind injection rate *)
  rs_level : string;  (** final degradation-ladder rung the run finished on *)
  rs_cycles : int;
  rs_overhead : float;  (** cycles / fault-free cycles at the same config *)
  rs_speedup : float;  (** over the sequential baseline *)
  rs_faults : int;  (** faults injected, all kinds *)
  rs_retries : int;  (** network retransmissions *)
  rs_ecc : int;  (** memory flips corrected, scrubbed or masked *)
  rs_aborts : int;  (** spurious TM aborts *)
  rs_verified : bool;  (** memory image still matches the oracle *)
}

val resilience :
  ?scale:float ->
  ?benches:string list ->
  ?rates:float list ->
  ?seed:int ->
  ?jobs:int ->
  unit ->
  resilience_row list
(** For each benchmark (default cjpeg, gsmdecode, 179.art) and each
    injection rate (default 0, 1e-4, 1e-3, 5e-3), run the 4-core hybrid
    build through {!Run.run_resilient} with every fault kind at that rate
    and a fixed seed: speedup retained, recovery overhead, and how much
    recovery machinery fired. Every row must verify — recovery is only
    recovery if the answer is still right. *)

val print_resilience : resilience_row list -> unit

(** {1 Ablations} — design-choice studies beyond the paper's figures
    (DESIGN.md 4). Each returns printable rows. *)

type ablation_row = { ab_label : string; ab_values : (string * float) list }

val ablation_modes : ?scale:float -> unit -> ablation_row list
(** Dual-mode value: per benchmark, hybrid vs the best and worst single
    strategy on 4 cores — what having both modes buys over committing to
    one. *)

val ablation_capacity : ?scale:float -> unit -> ablation_row list
(** Queue-mode channel capacity 1/2/4/32: how much decoupled pipelining
    depends on queue slack (epic, 4 cores, forced TLP). *)

val ablation_memlat : ?scale:float -> unit -> ablation_row list
(** Main-memory latency 50/100/200 cycles: decoupled mode's miss tolerance
    grows with latency while coupled ILP's gain shrinks (179.art, 4
    cores). *)

val ablation_tm : ?scale:float -> unit -> ablation_row list
(** TM mis-speculation: a scatter loop profiled conflict-free but run with
    0/4/16/64 colliding iterations — speedup decay and conflict counts as
    speculation goes wrong. *)

val ablation_scaling : ?scale:float -> unit -> ablation_row list
(** Hybrid speedup at 2/4/8 cores (coupled groups capped at 4, paper
    3.2). *)

val ablation_energy : ?scale:float -> unit -> ablation_row list
(** Energy and energy-delay product of the 4-core hybrid relative to the
    single-core baseline (first-order model, {!Voltron_machine.Energy}). *)

val ablation_issue_width : ?scale:float -> unit -> ablation_row list
(** The paper's 1 alternative: one wide-issue core vs four simple coupled/
    decoupled cores, same total issue slots. *)

val ablation_ifconv : ?scale:float -> unit -> ablation_row list
(** If-conversion: a strand loop whose small data-dependent conditional
    costs a cross-core predicate round trip every iteration in decoupled
    mode; predicating it away (Opt.program) recovers the loss. *)

val print_ablations : title:string -> ablation_row list -> unit

val print_fig3 : classification list -> unit
val print_fig10 : per_type_speedup list -> unit
val print_fig11 : per_type_speedup list -> unit
val print_fig12 : stall_breakdown list -> unit
val print_fig13 : hybrid_speedup list -> unit
val print_fig14 : mode_split list -> unit
val print_micro : micro_result list -> unit
