module Suite = Voltron_workloads.Suite
module Stats = Voltron_machine.Stats
module Hir = Voltron_ir.Hir
module Profile = Voltron_analysis.Profile
module Table = Voltron_util.Table
module Stat = Voltron_util.Stat

type per_type_speedup = {
  bench : string;
  sp_ilp : float;
  sp_tlp : float;
  sp_llp : float;
}

type stall_breakdown = {
  sb_bench : string;
  coupled_i : float;
  coupled_d : float;
  coupled_other : float;
  decoupled_i : float;
  decoupled_d : float;
  decoupled_recv : float;
  decoupled_pred : float;
  decoupled_sync : float;
}

type hybrid_speedup = { hs_bench : string; hs_2core : float; hs_4core : float }

type mode_split = { ms_bench : string; coupled_pct : float; decoupled_pct : float }

type classification = {
  cl_bench : string;
  pct_ilp : float;
  pct_tlp : float;
  pct_llp : float;
  pct_single : float;
}

type micro_result = {
  mi_name : string;
  mi_paper : float;
  mi_measured : float;
}

let selected_benches benches =
  match benches with
  | None -> Suite.all
  | Some names -> List.map Suite.by_name names

(* Per-benchmark cells are independent (each builds its own program,
   profile and machines), so the figure sweeps fan out on the pool;
   results come back in benchmark order whatever [jobs] is. *)
let pmap ~jobs f xs =
  Array.to_list (Voltron_pool.Pool.parallel_map ~jobs f (Array.of_list xs))

(* Measure one program's cycles under a choice/core count, reusing the
   profile; insist on oracle agreement. *)
let cycles_of ?profile program choice n_cores =
  let m = Run.run ~choice ?profile ~n_cores program in
  if not m.Run.verified then
    failwith "experiment run diverged from the reference interpreter";
  m

let per_type ~scale ~benches ~jobs ~n_cores =
  pmap ~jobs
    (fun (b : Suite.benchmark) ->
      let p = b.Suite.build ~scale () in
      let profile = Profile.collect p in
      let base = Run.baseline_cycles ~profile p in
      let sp choice =
        float_of_int base
        /. float_of_int (cycles_of ~profile p choice n_cores).Run.cycles
      in
      { bench = b.Suite.bench_name; sp_ilp = sp `Ilp; sp_tlp = sp `Tlp; sp_llp = sp `Llp })
    (selected_benches benches)

let fig10 ?(scale = 1.0) ?benches ?(jobs = 1) () =
  per_type ~scale ~benches ~jobs ~n_cores:2

let fig11 ?(scale = 1.0) ?benches ?(jobs = 1) () =
  per_type ~scale ~benches ~jobs ~n_cores:4

let fig12 ?(scale = 1.0) ?benches ?(jobs = 1) () =
  pmap ~jobs
    (fun (b : Suite.benchmark) ->
      let p = b.Suite.build ~scale () in
      let profile = Profile.collect p in
      let base = float_of_int (Run.baseline_cycles ~profile p) in
      let fractions choice =
        let m = cycles_of ~profile p choice 4 in
        let st = m.Run.stats in
        let avg pick =
          Stat.mean
            (List.init st.Stats.n_cores (fun c ->
                 float_of_int (pick (Stats.core st c)) /. base))
        in
        ( avg (fun c -> c.Stats.i_stall),
          avg (fun c -> c.Stats.d_stall),
          avg (fun c -> c.Stats.recv_data_stall),
          avg (fun c -> c.Stats.recv_pred_stall),
          avg (fun c -> c.Stats.sync_stall),
          avg (fun c -> c.Stats.lat_stall) )
      in
      let ci, cd, _, _, csync, clat = fractions `Ilp in
      let di, dd, drecv, dpred, dsync, _ = fractions `Tlp in
      {
        sb_bench = b.Suite.bench_name;
        coupled_i = ci;
        coupled_d = cd;
        coupled_other = csync +. clat;
        decoupled_i = di;
        decoupled_d = dd;
        decoupled_recv = drecv;
        decoupled_pred = dpred;
        decoupled_sync = dsync;
      })
    (selected_benches benches)

let fig13 ?(scale = 1.0) ?benches ?(jobs = 1) () =
  pmap ~jobs
    (fun (b : Suite.benchmark) ->
      let p = b.Suite.build ~scale () in
      let profile = Profile.collect p in
      let base = float_of_int (Run.baseline_cycles ~profile p) in
      let sp cores = base /. float_of_int (cycles_of ~profile p `Hybrid cores).Run.cycles in
      { hs_bench = b.Suite.bench_name; hs_2core = sp 2; hs_4core = sp 4 })
    (selected_benches benches)

let fig14 ?(scale = 1.0) ?benches ?(jobs = 1) () =
  pmap ~jobs
    (fun (b : Suite.benchmark) ->
      let p = b.Suite.build ~scale () in
      let m = cycles_of p `Hybrid 4 in
      let st = m.Run.stats in
      let total = float_of_int (st.Stats.coupled_cycles + st.Stats.decoupled_cycles) in
      let coupled_pct =
        if total = 0. then 0. else 100. *. float_of_int st.Stats.coupled_cycles /. total
      in
      {
        ms_bench = b.Suite.bench_name;
        coupled_pct;
        decoupled_pct = 100. -. coupled_pct;
      })
    (selected_benches benches)

(* Fig. 3: run every region standalone under each forced strategy and
   attribute its dynamic weight to the winner. *)
let fig3 ?(scale = 1.0) ?benches ?(jobs = 1) () =
  pmap ~jobs
    (fun (b : Suite.benchmark) ->
      let p = b.Suite.build ~scale () in
      let profile = Profile.collect p in
      let weights =
        List.map
          (fun (r : Hir.region) ->
            let w = ref 0 in
            Hir.iter_stmts
              (fun s -> w := !w + Profile.dyn_count profile s.Hir.sid)
              r.Hir.stmts;
            (r, !w))
          p.Hir.regions
      in
      let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
      let credit = Hashtbl.create 4 in
      let add k w =
        Hashtbl.replace credit k (w + Option.value ~default:0 (Hashtbl.find_opt credit k))
      in
      List.iter
        (fun ((r : Hir.region), w) ->
          let standalone = { p with Hir.regions = [ r ] } in
          let sprofile = Profile.collect standalone in
          let base = Run.baseline_cycles ~profile:sprofile standalone in
          let c choice =
            (cycles_of ~profile:sprofile standalone choice 4).Run.cycles
          in
          let candidates =
            [ (`Single, base); (`Ilp_k, c `Ilp); (`Tlp_k, c `Tlp); (`Llp_k, c `Llp) ]
          in
          let winner, _ =
            List.fold_left
              (fun (bk, bc) (k, cyc) -> if cyc < bc then (k, cyc) else (bk, bc))
              (`Single, max_int) candidates
          in
          add winner w)
        weights;
      let pct k =
        Stat.percent
          (float_of_int (Option.value ~default:0 (Hashtbl.find_opt credit k)))
          (float_of_int total)
      in
      {
        cl_bench = b.Suite.bench_name;
        pct_ilp = pct `Ilp_k;
        pct_tlp = pct `Tlp_k;
        pct_llp = pct `Llp_k;
        pct_single = pct `Single;
      })
    (selected_benches benches)

let micro ?(scale = 1.0) ?(jobs = 1) () =
  let best program =
    let base = Run.baseline_cycles program in
    let candidates =
      List.map
        (fun choice -> (cycles_of program choice 2).Run.cycles)
        [ `Ilp; `Tlp; `Llp; `Hybrid ]
    in
    float_of_int base /. float_of_int (List.fold_left min max_int candidates)
  in
  pmap ~jobs
    (fun (mi_name, mi_paper, build) ->
      { mi_name; mi_paper; mi_measured = best (build ()) })
    [
      ("gsmdecode DOALL (Fig.7)", 1.9, fun () -> Suite.micro_gsm_llp ~scale ());
      ( "164.gzip strands (Fig.8)",
        1.2,
        fun () -> Suite.micro_gzip_strands ~scale () );
      ("gsmdecode ILP (Fig.9)", 1.78, fun () -> Suite.micro_gsm_ilp ~scale ());
    ]

(* --- Coherence scaling: snoop vs directory at 16-64 cores -------------------- *)

type scaling_row = {
  sc_bench : string;
  sc_class : string;
  sc_cores : int;
  sc_snoop_cycles : int;
  sc_dir_cycles : int;
  sc_snoop : float;
  sc_directory : float;
}

type crossover_row = {
  cx_class : string;
  cx_cores : int;
  cx_snoop : float;
  cx_directory : float;
  cx_winner : string;
}

let workload_class (b : Suite.benchmark) =
  let x = b.Suite.bench_mix in
  fst
    (List.fold_left
       (fun (bk, bv) (k, v) -> if v > bv then (k, v) else (bk, bv))
       ("seq", min_int)
       [
         ("ilp", x.Suite.ilp); ("tlp", x.Suite.tlp); ("llp", x.Suite.llp);
         ("seq", x.Suite.seq);
       ])

(* Two benchmarks per dominant-mix class (one for seq), so every class
   contributes a geomean series to the crossover figure without sweeping
   the whole suite at 64 cores. *)
let scaling_benches =
  [ "177.mesa"; "rawcaudio"; "179.art"; "epic"; "171.swim"; "172.mgrid";
    "197.parser" ]

let scaling ?(scale = 1.0) ?(benches = scaling_benches)
    ?(cores = [ 16; 32; 64 ]) ?(jobs = 1) () =
  List.concat
  @@ pmap ~jobs
       (fun (b : Suite.benchmark) ->
         let p = b.Suite.build ~scale () in
         let profile = Profile.collect p in
         let base = float_of_int (Run.baseline_cycles ~profile p) in
         let cls = workload_class b in
         List.map
           (fun n ->
             let cyc proto =
               let m =
                 Run.run ~choice:`Hybrid ~profile
                   ~tweak:(Voltron_machine.Config.with_coherence proto)
                   ~n_cores:n p
               in
               if not m.Run.verified then
                 failwith "coherence scaling sweep diverged";
               m.Run.cycles
             in
             let sn = cyc Voltron_mem.Coherence.Snoop in
             let dr = cyc Voltron_mem.Coherence.Directory in
             {
               sc_bench = b.Suite.bench_name;
               sc_class = cls;
               sc_cores = n;
               sc_snoop_cycles = sn;
               sc_dir_cycles = dr;
               sc_snoop = base /. float_of_int sn;
               sc_directory = base /. float_of_int dr;
             })
           cores)
       (List.map Suite.by_name benches)

let crossover rows =
  let keys =
    List.sort_uniq compare (List.map (fun r -> (r.sc_class, r.sc_cores)) rows)
  in
  List.map
    (fun (cls, n) ->
      let sel pick =
        List.filter_map
          (fun r ->
            if r.sc_class = cls && r.sc_cores = n then Some (pick r) else None)
          rows
      in
      let sn = Stat.geomean (sel (fun r -> r.sc_snoop)) in
      let dr = Stat.geomean (sel (fun r -> r.sc_directory)) in
      {
        cx_class = cls;
        cx_cores = n;
        cx_snoop = sn;
        cx_directory = dr;
        cx_winner =
          (if dr > sn *. 1.01 then "directory"
           else if sn > dr *. 1.01 then "snoop"
           else "tie");
      })
    keys

(* --- Resilience (AVF-style fault sweep) -------------------------------------- *)

type resilience_row = {
  rs_bench : string;
  rs_rate : float;
  rs_level : string;
  rs_cycles : int;
  rs_overhead : float;
  rs_speedup : float;
  rs_faults : int;
  rs_retries : int;
  rs_ecc : int;
  rs_aborts : int;
  rs_verified : bool;
}

let resilience ?(scale = 1.0) ?(benches = [ "cjpeg"; "gsmdecode"; "179.art" ])
    ?(rates = [ 0.0; 1e-4; 1e-3; 5e-3 ]) ?(seed = 42) ?(jobs = 1) () =
  List.concat
  @@ pmap ~jobs
       (fun name ->
      let b = Suite.by_name name in
      let p = b.Suite.build ~scale () in
      let profile = Profile.collect p in
      let base = Run.baseline_cycles ~profile p in
      let run_at rate =
        let tweak c =
          {
            c with
            Voltron_machine.Config.fault =
              Voltron_fault.Fault.uniform ~seed ~rate ();
          }
        in
        Run.run_resilient ~profile ~tweak ~n_cores:4 p
      in
      let clean = run_at 0.0 in
      let clean_cycles = clean.Run.final.Run.cycles in
      List.map
        (fun rate ->
          let r = if rate = 0.0 then clean else run_at rate in
          let m = r.Run.final in
          let st = m.Run.stats in
          let level =
            match List.rev r.Run.attempts with
            | a :: _ -> Voltron_fault.Fault.level_name a.Run.a_level
            | [] -> assert false
          in
          {
            rs_bench = name;
            rs_rate = rate;
            rs_level = level;
            rs_cycles = m.Run.cycles;
            rs_overhead = float_of_int m.Run.cycles /. float_of_int clean_cycles;
            rs_speedup = float_of_int base /. float_of_int m.Run.cycles;
            rs_faults = st.Stats.faults_injected;
            rs_retries = st.Stats.net_retries;
            rs_ecc =
              st.Stats.ecc_corrected + st.Stats.ecc_scrubbed
              + st.Stats.flips_masked;
            rs_aborts = st.Stats.spurious_aborts;
            rs_verified = m.Run.verified;
          })
        rates)
    benches

(* --- Ablations --------------------------------------------------------------- *)

type ablation_row = { ab_label : string; ab_values : (string * float) list }

let ablation_modes ?(scale = 1.0) () =
  List.map
    (fun name ->
      let b = Suite.by_name name in
      let p = b.Suite.build ~scale () in
      let profile = Profile.collect p in
      let base = float_of_int (Run.baseline_cycles ~profile p) in
      let sp choice = base /. float_of_int (cycles_of ~profile p choice 4).Run.cycles in
      let singles = [ sp `Ilp; sp `Tlp; sp `Llp ] in
      {
        ab_label = name;
        ab_values =
          [
            ("hybrid", sp `Hybrid);
            ("best-single", List.fold_left max 0. singles);
            ("worst-single", List.fold_left min infinity singles);
          ];
      })
    [ "164.gzip"; "171.swim"; "177.mesa"; "179.art"; "cjpeg"; "gsmdecode" ]

let ablation_capacity ?(scale = 1.0) () =
  let b = Suite.by_name "epic" in
  let p = b.Suite.build ~scale () in
  let profile = Profile.collect p in
  let base = float_of_int (Run.baseline_cycles ~profile p) in
  List.map
    (fun capacity ->
      let m =
        Run.run ~choice:`Tlp ~profile
          ~tweak:(fun c -> { c with Voltron_machine.Config.net_capacity = capacity })
          ~n_cores:4 p
      in
      if not m.Run.verified then failwith "capacity ablation diverged";
      {
        ab_label = Printf.sprintf "capacity %d" capacity;
        ab_values = [ ("TLP speedup", base /. float_of_int m.Run.cycles) ];
      })
    [ 1; 2; 4; 32 ]

let ablation_memlat ?(scale = 1.0) () =
  let b = Suite.by_name "179.art" in
  let p = b.Suite.build ~scale () in
  let profile = Profile.collect p in
  List.map
    (fun lat ->
      let tweak c =
        {
          c with
          Voltron_machine.Config.cache =
            { c.Voltron_machine.Config.cache with Voltron_mem.Coherence.lat_mem = lat };
        }
      in
      let base =
        (Run.run ~choice:`Seq ~profile ~tweak ~n_cores:1 p).Run.cycles |> float_of_int
      in
      let sp choice =
        let m = Run.run ~choice ~profile ~tweak ~n_cores:4 p in
        if not m.Run.verified then failwith "memlat ablation diverged";
        base /. float_of_int m.Run.cycles
      in
      {
        ab_label = Printf.sprintf "mem latency %d" lat;
        ab_values = [ ("coupled ILP", sp `Ilp); ("decoupled TLP", sp `Tlp) ];
      })
    [ 50; 100; 200 ]

let ablation_tm ?(scale = 1.0) () =
  let n = max 64 (int_of_float (1024. *. scale)) in
  let build conflicts =
    let b = Voltron_ir.Builder.create "tm_ablate" in
    Voltron_workloads.Kernels.doall_rmw b ~name:"rmw" ~n ~conflicts ~seed:9;
    Voltron_ir.Builder.finish b
  in
  (* Profile the conflict-free twin: speculation believes the loop is
     clean, exactly like profiling on a friendlier input. *)
  let clean_profile = Profile.collect (build 0) in
  List.map
    (fun conflicts ->
      let p = build conflicts in
      let m = Run.run ~choice:`Llp ~profile:clean_profile ~n_cores:4 p in
      if not m.Run.verified then failwith "tm ablation diverged";
      let base = float_of_int (Run.baseline_cycles p) in
      {
        ab_label = Printf.sprintf "%d colliding iterations" conflicts;
        ab_values =
          [
            ("speedup", base /. float_of_int m.Run.cycles);
            ("tm rounds", float_of_int m.Run.stats.Stats.tm_rounds);
            ("conflicts", float_of_int m.Run.stats.Stats.tm_conflicts);
          ];
      })
    [ 0; 4; 16; 64 ]

let ablation_scaling ?(scale = 1.0) () =
  List.map
    (fun name ->
      let b = Suite.by_name name in
      let p = b.Suite.build ~scale () in
      let profile = Profile.collect p in
      let base = float_of_int (Run.baseline_cycles ~profile p) in
      let sp cores = base /. float_of_int (cycles_of ~profile p `Hybrid cores).Run.cycles in
      {
        ab_label = name;
        ab_values = [ ("2 cores", sp 2); ("4 cores", sp 4); ("8 cores", sp 8) ];
      })
    [ "171.swim"; "179.art"; "177.mesa"; "cjpeg" ]

let ablation_energy ?(scale = 1.0) () =
  List.map
    (fun name ->
      let b = Suite.by_name name in
      let p = b.Suite.build ~scale () in
      let profile = Profile.collect p in
      let serial = Run.run ~choice:`Seq ~profile ~n_cores:1 p in
      let base_cycles = float_of_int serial.Run.cycles in
      let base_energy = serial.Run.energy.Voltron_machine.Energy.e_total in
      let base_edp = serial.Run.energy.Voltron_machine.Energy.edp in
      let m = cycles_of ~profile p `Hybrid 4 in
      {
        ab_label = name;
        ab_values =
          [
            ("speedup", base_cycles /. float_of_int m.Run.cycles);
            ("energy ratio", m.Run.energy.Voltron_machine.Energy.e_total /. base_energy);
            ("EDP ratio", m.Run.energy.Voltron_machine.Energy.edp /. base_edp);
          ];
      })
    [ "171.swim"; "179.art"; "cjpeg"; "gsmdecode"; "rawcaudio" ]

let ablation_issue_width ?(scale = 1.0) () =
  List.map
    (fun name ->
      let b = Suite.by_name name in
      let p = b.Suite.build ~scale () in
      let profile = Profile.collect p in
      let base = float_of_int (Run.baseline_cycles ~profile p) in
      let wide width =
        (* One monolithic [width]-issue core running the serial code: the
           paper's "more powerful core" alternative (1). *)
        let m =
          Run.run ~choice:`Seq ~profile
            ~tweak:(fun c -> { c with Voltron_machine.Config.issue_width = width })
            ~n_cores:1 p
        in
        if not m.Run.verified then failwith "issue-width ablation diverged";
        base /. float_of_int m.Run.cycles
      in
      let voltron = base /. float_of_int (cycles_of ~profile p `Hybrid 4).Run.cycles in
      {
        ab_label = name;
        ab_values =
          [
            ("1 core, 2-issue", wide 2);
            ("1 core, 4-issue", wide 4);
            ("Voltron 4x1-issue", voltron);
          ];
      })
    [ "171.swim"; "179.art"; "177.mesa"; "gsmdecode"; "rawcaudio" ]

(* A strand loop with a small data-dependent conditional: unconverted, the
   decoupled build ships the branch predicate to every core each
   iteration; if-converted (SELECT), the branch disappears. *)
let ablation_ifconv ?(scale = 1.0) () =
  let build () =
    let b = Voltron_ir.Builder.create "ifconv" in
    let module B = Voltron_ir.Builder in
    let module Inst = Voltron_isa.Inst in
    let n = max 64 (int_of_float (1600. *. scale)) in
    let size = 8192 in
    let arrays =
      List.init 3 (fun s ->
          B.array b
            ~name:(Printf.sprintf "s%d" s)
            ~size
            ~init:(fun i -> (i * (s + 3)) mod 251)
            ())
    in
    B.region b "strand" (fun () ->
        let positions = List.map (fun _ -> B.fresh b) arrays in
        let chk = B.fresh b in
        List.iteri
          (fun k pos -> B.assign b pos (Hir.Operand (B.imm (k * 577))))
          positions;
        B.assign b chk (Hir.Operand (B.imm 0));
        B.for_ b ~from:(B.imm 0) ~limit:(B.imm n) (fun _i ->
            let vals =
              List.map2
                (fun arr pos ->
                  let v = B.load b arr (Hir.Reg pos) in
                  let next =
                    B.binop b Inst.And
                      (B.add b (Hir.Reg pos) (B.imm 1031))
                      (B.imm (size - 1))
                  in
                  B.assign b pos (Hir.Operand next);
                  B.mul b v (B.imm 3))
                arrays positions
            in
            let merged = List.fold_left (fun a v -> B.add b a v) (B.imm 0) vals in
            let bonus = B.fresh b in
            let c = B.cmp b Inst.Gt merged (B.imm 2048) in
            B.if_ b c
              (fun () -> B.assign b bonus (Hir.Alu (Inst.Shr, merged, B.imm 2)))
              (fun () -> B.assign b bonus (Hir.Alu (Inst.Add, merged, B.imm 17)));
            B.assign b chk
              (Hir.Operand (B.binop b Inst.Xor (Hir.Reg chk) (Hir.Reg bonus))));
        B.store b (List.hd arrays) (B.imm 0) (Hir.Reg chk));
    Voltron_ir.Builder.finish b
  in
  let measure p =
    let base = Run.baseline_cycles p in
    let m = cycles_of p `Tlp 4 in
    let pred =
      Stat.mean
        (List.init 4 (fun c ->
             float_of_int (Stats.core m.Run.stats c).Stats.recv_pred_stall))
    in
    (float_of_int base /. float_of_int m.Run.cycles, pred)
  in
  let sp_branchy, pred_branchy = measure (build ()) in
  let converted = Voltron_compiler.Opt.program (build ()) in
  let sp_conv, pred_conv = measure converted in
  [
    {
      ab_label = "with branch";
      ab_values =
        [ ("TLP speedup", sp_branchy); ("pred-stall cycles/core", pred_branchy) ];
    };
    {
      ab_label = "if-converted";
      ab_values = [ ("TLP speedup", sp_conv); ("pred-stall cycles/core", pred_conv) ];
    };
  ]

let print_ablations ~title rows =
  print_endline title;
  match rows with
  | [] -> ()
  | first :: _ ->
    Table.print
      ~header:("" :: List.map fst first.ab_values)
      (List.map
         (fun r ->
           r.ab_label :: List.map (fun (_, v) -> Table.cell_f v) r.ab_values)
         rows)

(* --- Printing --------------------------------------------------------------- *)

let f = Table.cell_f
let pct = Table.cell_pct

let print_per_type ~title rows =
  print_endline title;
  let body =
    List.map (fun r -> [ r.bench; f r.sp_ilp; f r.sp_tlp; f r.sp_llp ]) rows
  in
  let avg pick = Stat.mean (List.map pick rows) in
  Table.print
    ~header:[ "benchmark"; "ILP"; "fine-grain TLP"; "LLP" ]
    (body
    @ [
        [ "average"; f (avg (fun r -> r.sp_ilp)); f (avg (fun r -> r.sp_tlp));
          f (avg (fun r -> r.sp_llp)) ];
      ])

let print_fig10 rows =
  print_per_type ~title:"Figure 10: speedup on 2-core Voltron, each parallelism type alone"
    rows

let print_fig11 rows =
  print_per_type ~title:"Figure 11: speedup on 4-core Voltron, each parallelism type alone"
    rows

let print_fig3 rows =
  print_endline
    "Figure 3: breakdown of exploitable parallelism, 4-core (percent of dynamic execution)";
  let body =
    List.map
      (fun r ->
        [ r.cl_bench; pct r.pct_ilp; pct r.pct_tlp; pct r.pct_llp; pct r.pct_single ])
      rows
  in
  let avg pick = Stat.mean (List.map pick rows) in
  Table.print
    ~header:[ "benchmark"; "ILP"; "fine-grain TLP"; "LLP"; "single core" ]
    (body
    @ [
        [ "average"; pct (avg (fun r -> r.pct_ilp)); pct (avg (fun r -> r.pct_tlp));
          pct (avg (fun r -> r.pct_llp)); pct (avg (fun r -> r.pct_single)) ];
      ])

let print_fig12 rows =
  print_endline
    "Figure 12: stall cycles / serial cycles, 4-core (left: coupled ILP; right: decoupled TLP)";
  Table.print
    ~header:
      [ "benchmark"; "cI"; "cD"; "cOther"; "dI"; "dD"; "dRecv"; "dPred"; "dSync" ]
    (List.map
       (fun r ->
         [
           r.sb_bench; f r.coupled_i; f r.coupled_d; f r.coupled_other;
           f r.decoupled_i; f r.decoupled_d; f r.decoupled_recv;
           f r.decoupled_pred; f r.decoupled_sync;
         ])
       rows)

let print_fig13 rows =
  print_endline "Figure 13: hybrid-parallelism speedup";
  let avg pick = Stat.mean (List.map pick rows) in
  Table.print
    ~header:[ "benchmark"; "2-core"; "4-core" ]
    (List.map (fun r -> [ r.hs_bench; f r.hs_2core; f r.hs_4core ]) rows
    @ [
        [ "average"; f (avg (fun r -> r.hs_2core)); f (avg (fun r -> r.hs_4core)) ];
      ])

let print_fig14 rows =
  print_endline "Figure 14: time in each execution mode (4-core hybrid)";
  Table.print
    ~header:[ "benchmark"; "coupled"; "decoupled" ]
    (List.map (fun r -> [ r.ms_bench; pct r.coupled_pct; pct r.decoupled_pct ]) rows)

let print_micro rows =
  print_endline "Figs. 7-9 worked micro-examples (2-core speedup)";
  Table.print
    ~header:[ "example"; "paper"; "measured" ]
    (List.map (fun r -> [ r.mi_name; f r.mi_paper; f r.mi_measured ]) rows)

let print_scaling rows =
  print_endline
    "Coherence scaling: hybrid speedup, snoop vs directory (speedup over \
     1-core sequential)";
  Table.print
    ~header:[ "benchmark"; "class"; "cores"; "snoop"; "directory"; "dir/snoop" ]
    (List.map
       (fun r ->
         [
           r.sc_bench;
           r.sc_class;
           string_of_int r.sc_cores;
           f r.sc_snoop;
           f r.sc_directory;
           f (float_of_int r.sc_snoop_cycles /. float_of_int r.sc_dir_cycles);
         ])
       rows)

let print_crossover rows =
  print_endline
    "Crossover per workload class (geomean speedup; directory wins where \
     home-bank serialization beats the shared bus)";
  Table.print
    ~header:[ "class"; "cores"; "snoop"; "directory"; "winner" ]
    (List.map
       (fun r ->
         [
           r.cx_class;
           string_of_int r.cx_cores;
           f r.cx_snoop;
           f r.cx_directory;
           r.cx_winner;
         ])
       rows)

let print_resilience rows =
  print_endline
    "Resilience: seeded fault-rate sweep, 4-core hybrid (overhead over the \
     fault-free run)";
  Table.print
    ~header:
      [
        "benchmark"; "rate"; "level"; "speedup"; "overhead"; "faults";
        "retries"; "ecc"; "tm-aborts"; "verified";
      ]
    (List.map
       (fun r ->
         [
           r.rs_bench;
           Printf.sprintf "%g" r.rs_rate;
           r.rs_level;
           f r.rs_speedup;
           f r.rs_overhead;
           string_of_int r.rs_faults;
           string_of_int r.rs_retries;
           string_of_int r.rs_ecc;
           string_of_int r.rs_aborts;
           (if r.rs_verified then "yes" else "NO");
         ])
       rows)
