module Config = Voltron_machine.Config
module Machine = Voltron_machine.Machine
module Driver = Voltron_compiler.Driver
module Fault = Voltron_fault.Fault
module Sanity = Voltron_sanity.Sanity

type run_outcome =
  | Completed
  | Cycle_capped
  | Deadlocked of Machine.diagnosis
  | Fault_limited of Machine.diagnosis
  | Sanity_stopped of Machine.diagnosis

type measurement = {
  cycles : int;
  stats : Voltron_machine.Stats.t;
  coh_stats : Voltron_mem.Coherence.stats;
  net_stats : Voltron_net.Operand_network.stats;
  outcome : run_outcome;
  verified : bool;
  plan : Voltron_compiler.Select.planned_region list;
  energy : Voltron_machine.Energy.report;
  sanity : Sanity.report option;
}

let completed m = m.outcome = Completed

let outcome_to_string = function
  | Completed -> "completed"
  | Cycle_capped -> "exceeded the cycle cap"
  | Deadlocked d -> "deadlock:\n" ^ Machine.diagnosis_to_string d
  | Fault_limited d ->
    "fault limit reached:\n" ^ Machine.diagnosis_to_string d
  | Sanity_stopped d ->
    "sanitizer stopped the machine:\n" ^ Machine.diagnosis_to_string d

let outcome_of_machine = function
  | Machine.Finished -> Completed
  | Machine.Out_of_cycles -> Cycle_capped
  | Machine.Deadlock d -> Deadlocked d
  | Machine.Fault_limit d -> Fault_limited d
  | Machine.Stopped d -> Sanity_stopped d

let run ?(choice = `Hybrid) ?(check = true) ?profile ?(tweak = fun c -> c)
    ?(prepare = fun _ _ -> ()) ?sanitize ?(sanitize_log = fun _ -> ())
    ~n_cores program =
  let machine = tweak (Config.default ~n_cores) in
  let compiled = Driver.compile ~machine ~choice ~check ?profile program in
  let m = Machine.create machine compiled.Driver.executable in
  let san =
    match sanitize with
    | None -> None
    | Some policy -> Some (Sanity.attach ~policy ~log:sanitize_log m)
  in
  prepare compiled m;
  let result = Machine.run m in
  (match san with
  | None -> ()
  | Some s ->
    Sanity.finalize s ~completed:(result.Machine.outcome = Machine.Finished));
  let outcome = outcome_of_machine result.Machine.outcome in
  let sum =
    Voltron_mem.Memory.checksum_prefix (Machine.memory m)
      compiled.Driver.array_footprint
  in
  {
    cycles = result.Machine.cycles;
    stats = Machine.stats m;
    coh_stats = Voltron_mem.Coherence.total_stats (Machine.coherence m);
    net_stats = Voltron_net.Operand_network.stats (Machine.network m);
    outcome;
    verified = outcome = Completed && sum = compiled.Driver.oracle_checksum;
    plan = compiled.Driver.plan;
    energy =
      Voltron_machine.Energy.of_run ~stats:(Machine.stats m)
        ~coherence:(Machine.coherence m) ~network:(Machine.network m) ();
    sanity = Option.map Sanity.report san;
  }

(* --- Graceful degradation ladder ------------------------------------------ *)

type attempt = {
  a_level : Fault.level;
  a_choice : Voltron_compiler.Select.choice;
  a_n_cores : int;
  a_measurement : measurement;
}

type resilient = {
  final : measurement;
  attempts : attempt list;  (** in execution order; last produced [final] *)
  degraded : bool;
}

(* Map a degradation rung onto a compilation strategy: full hybrid
   parallelism first, queue-mode-only (no lock-step coupling, no TM
   speculation) next, and sequential on core 0 as the last resort. *)
let strategy_of_level ~choice ~n_cores = function
  | Fault.Full -> (choice, n_cores)
  | Fault.Decoupled_only -> (`Tlp, n_cores)
  | Fault.Serial_core0 -> (`Seq, 1)

let run_resilient ?(choice = `Hybrid) ?(check = true) ?profile
    ?(tweak = fun c -> c) ?(prepare = fun _ _ -> ()) ?sanitize ~n_cores
    program =
  let rec go level acc =
    let choice', n_cores' = strategy_of_level ~choice ~n_cores level in
    let tweak' c =
      let c = tweak c in
      match level with
      | Fault.Serial_core0 ->
        (* The bottom rung must always complete: keep injecting (the run
           still has to verify) but never give up on it. *)
        { c with Config.fault = { c.Config.fault with Fault.degrade_threshold = 0 } }
      | Fault.Full | Fault.Decoupled_only -> c
    in
    (* The sanitizer follows the same last-resort rule: at the bottom rung
       a Recover policy demotes to Report, so violations are still counted
       and surfaced but can no longer stop the run. *)
    let sanitize' =
      match (level, sanitize) with
      | Fault.Serial_core0, Some Sanity.Recover -> Some Sanity.Report
      | _ -> sanitize
    in
    let m =
      run ~choice:choice' ~check ?profile ~tweak:tweak' ~prepare ?sanitize:sanitize'
        ~n_cores:n_cores' program
    in
    let attempt =
      { a_level = level; a_choice = choice'; a_n_cores = n_cores'; a_measurement = m }
    in
    let acc = attempt :: acc in
    let sanity_dirty =
      sanitize' = Some Sanity.Recover
      && match m.sanity with Some r -> not (Sanity.clean r) | None -> false
    in
    match m.outcome with
    | Fault_limited _ -> (
      match Fault.degrade level with
      | Some next -> go next acc
      | None -> (acc, m))
    | _ when sanity_dirty -> (
      match Fault.degrade level with
      | Some next -> go next acc
      | None -> (acc, m))
    | Completed | Cycle_capped | Deadlocked _ | Sanity_stopped _ -> (acc, m)
  in
  let attempts_rev, final = go Fault.Full [] in
  let attempts = List.rev attempts_rev in
  { final; attempts; degraded = List.length attempts > 1 }

(* --- Differential harness -------------------------------------------------- *)

type diff_case = {
  d_strategy : Voltron_compiler.Select.choice;
  d_cores : int;
  d_coherence : Voltron_mem.Coherence.protocol;
}

type divergence =
  | Non_completion of {
      nc_case : diff_case;
      nc_fast_forward : bool;
      nc_outcome : run_outcome;
    }
  | Checksum_mismatch of { cm_case : diff_case; expected : int; got : int }
  | Checker_rejected of {
      cr_case : diff_case;
      diags : Voltron_check.Check.diag list;
    }
  | Ff_cycle_mismatch of { fc_case : diff_case; ff_on : int; ff_off : int }
  | Sanity_violation of {
      sv_case : diff_case;
      sv_fast_forward : bool;
      sv_report : Sanity.report;
    }

type differential = {
  diff_runs : int;
  diff_warnings : int;
  diff_divergences : divergence list;
}

let default_strategies : Voltron_compiler.Select.choice list =
  [ `Seq; `Ilp; `Tlp; `Llp; `Hybrid ]

let default_cores = [ 2; 4; 8 ]

let default_coherence : Voltron_mem.Coherence.protocol list =
  [ Voltron_mem.Coherence.Snoop; Voltron_mem.Coherence.Directory ]

let choice_name : Voltron_compiler.Select.choice -> string = function
  | `Seq -> "seq"
  | `Ilp -> "ilp"
  | `Tlp -> "tlp"
  | `Llp -> "llp"
  | `Hybrid -> "hybrid"

let case_name c =
  Printf.sprintf "%s/%d-core/%s" (choice_name c.d_strategy) c.d_cores
    (Voltron_mem.Coherence.protocol_name c.d_coherence)

let divergence_class = function
  | Non_completion _ -> "non-completion"
  | Checksum_mismatch _ -> "checksum"
  | Checker_rejected _ -> "checker"
  | Ff_cycle_mismatch _ -> "ff-cycles"
  | Sanity_violation _ -> "sanitizer"

let divergence_to_string = function
  | Non_completion { nc_case; nc_fast_forward; nc_outcome } ->
    Printf.sprintf "[%s, fast-forward %s] did not complete: %s"
      (case_name nc_case)
      (if nc_fast_forward then "on" else "off")
      (outcome_to_string nc_outcome)
  | Checksum_mismatch { cm_case; expected; got } ->
    Printf.sprintf "[%s] memory diverged from the oracle: expected %x, got %x"
      (case_name cm_case) expected got
  | Checker_rejected { cr_case; diags } ->
    Printf.sprintf "[%s] static checker rejected the build:\n%s"
      (case_name cr_case)
      (String.concat "\n"
         (List.map
            (fun d -> "  " ^ Voltron_check.Check.diag_to_string d)
            diags))
  | Ff_cycle_mismatch { fc_case; ff_on; ff_off } ->
    Printf.sprintf
      "[%s] fast-forward changed the cycle count: %d on, %d off"
      (case_name fc_case) ff_on ff_off
  | Sanity_violation { sv_case; sv_fast_forward; sv_report } ->
    Printf.sprintf "[%s, fast-forward %s] %s" (case_name sv_case)
      (if sv_fast_forward then "on" else "off")
      (Sanity.report_to_string sv_report)

(* One compile per (strategy, cores) cell; the coherence axis and the
   fast-forward flag are simulation-only, so every simulation in a cell
   shares one executable — any disagreement is a simulator bug, not a
   compilation difference. Per coherence backend, two simulations
   (fast-forward on and off): the fast-forward run is judged against the
   reference interpreter's checksum — which is timing-independent, so the
   snoop and directory images are transitively diffed against each other —
   and the per-cycle run against the fast-forward run.

   Each (strategy, cores) cell is a pure value: it compiles its own
   executable and builds its own machines, so cells run on any domain.
   Results are accumulated by cell index — (cores-major, strategies-minor,
   matching the serial iteration order) — never by completion order, so
   the report is bit-identical for every [jobs] value. *)
let differential ?(strategies = default_strategies) ?(cores = default_cores)
    ?(coherence = default_coherence) ?(max_steps = 2_000_000)
    ?(max_cycles = 4_000_000) ?(tweak = fun c -> c)
    ?(miscompile = fun c -> c) ?(ff_tweak = fun c -> c)
    ?(dir_tweak = fun c -> c) ?sanitize ?(jobs = 1) program =
  (if coherence = [] then
     invalid_arg "Run.differential: empty coherence axis");
  let cell (d_cores, d_strategy) =
    let runs = ref 0 and warnings = ref 0 and divs = ref [] in
    let push d = divs := d :: !divs in
    let simulate config (compiled : Driver.compiled) =
      incr runs;
      let m = Machine.create config compiled.Driver.executable in
      let san =
        match sanitize with
        | None -> None
        | Some policy -> Some (Sanity.attach ~policy m)
      in
      let result = Machine.run m in
      (match san with
      | None -> ()
      | Some s ->
        Sanity.finalize s ~completed:(result.Machine.outcome = Machine.Finished));
      let outcome = outcome_of_machine result.Machine.outcome in
      let sum =
        Voltron_mem.Memory.checksum_prefix (Machine.memory m)
          compiled.Driver.array_footprint
      in
      (outcome, result.Machine.cycles, sum, Option.map Sanity.report san)
    in
    let config =
      let c = tweak (Config.default ~n_cores:d_cores) in
      { c with Config.max_cycles = min c.Config.max_cycles max_cycles }
    in
    (match
       Driver.compile ~machine:config ~choice:d_strategy ~check:true
         ~max_steps program
     with
    | exception Voltron_check.Check.Failed diags ->
      push
        (Checker_rejected
           {
             cr_case =
               { d_strategy; d_cores; d_coherence = List.hd coherence };
             diags;
           })
    | compiled ->
      let compiled = miscompile compiled in
      if Voltron_check.Check.has_errors compiled.Driver.check_diags then
        push
          (Checker_rejected
             {
               cr_case =
                 { d_strategy; d_cores; d_coherence = List.hd coherence };
               diags = compiled.Driver.check_diags;
             })
      else begin
        warnings := !warnings + List.length compiled.Driver.check_diags;
        List.iter
          (fun proto ->
            let case = { d_strategy; d_cores; d_coherence = proto } in
            let config =
              let c = Config.with_coherence proto config in
              if proto = Voltron_mem.Coherence.Directory then dir_tweak c
              else c
            in
            let run_ff ff config =
              simulate { config with Config.fast_forward = ff } compiled
            in
            let o_on, cyc_on, sum_on, san_on = run_ff true config in
            let o_off, cyc_off, sum_off, san_off =
              run_ff false (ff_tweak config)
            in
            (* A dirty sanitizer report is its own divergence class and
               supersedes the non-completion judgement for that run (an
               Abort-policy stop is the sanitizer working, not a hang). *)
            let check_sanity ff san =
              match san with
              | Some r when not (Sanity.clean r) ->
                push
                  (Sanity_violation
                     { sv_case = case; sv_fast_forward = ff; sv_report = r });
                true
              | _ -> false
            in
            let dirty_on = check_sanity true san_on in
            let dirty_off = check_sanity false san_off in
            let check_completed ff o expected sum dirty =
              if not dirty then
                match o with
                | Completed ->
                  if sum <> expected then
                    push
                      (Checksum_mismatch { cm_case = case; expected; got = sum })
                | o ->
                  push
                    (Non_completion
                       { nc_case = case; nc_fast_forward = ff; nc_outcome = o })
            in
            (* The fast-forward run is judged against the oracle; the
               per-cycle reference run is judged against the fast-forward
               run, so one miscompile is one divergence, and any on/off
               disagreement (cycles or memory) is a simulator bug. *)
            check_completed true o_on compiled.Driver.oracle_checksum sum_on
              dirty_on;
            check_completed false o_off sum_on sum_off dirty_off;
            if o_on = Completed && o_off = Completed && cyc_on <> cyc_off
            then
              push
                (Ff_cycle_mismatch
                   { fc_case = case; ff_on = cyc_on; ff_off = cyc_off }))
          coherence
      end);
    (!runs, !warnings, List.rev !divs)
  in
  let cells =
    Array.of_list
      (List.concat_map
         (fun c -> List.map (fun s -> (c, s)) strategies)
         cores)
  in
  let per_cell = Voltron_pool.Pool.parallel_map ~jobs cell cells in
  let runs, warnings, divs_rev =
    Array.fold_left
      (fun (r, w, ds) (r', w', ds') -> (r + r', w + w', List.rev_append ds' ds))
      (0, 0, []) per_cell
  in
  {
    diff_runs = runs;
    diff_warnings = warnings;
    diff_divergences = List.rev divs_rev;
  }

let baseline_cycles ?profile program =
  let m = run ~choice:`Seq ?profile ~n_cores:1 program in
  (match m.outcome with
  | Completed -> ()
  | (Cycle_capped | Deadlocked _ | Fault_limited _ | Sanity_stopped _) as o ->
    failwith ("baseline run " ^ outcome_to_string o));
  m.cycles

let speedup ?(choice = `Hybrid) ~n_cores program =
  let base = baseline_cycles program in
  let m = run ~choice ~n_cores program in
  (match m.outcome with
  | Completed -> ()
  | (Cycle_capped | Deadlocked _ | Fault_limited _ | Sanity_stopped _) as o ->
    failwith ("speedup run " ^ outcome_to_string o));
  if not m.verified then failwith "speedup: memory image diverged from oracle";
  float_of_int base /. float_of_int m.cycles
