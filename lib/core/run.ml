module Config = Voltron_machine.Config
module Machine = Voltron_machine.Machine
module Driver = Voltron_compiler.Driver
module Fault = Voltron_fault.Fault

type run_outcome =
  | Completed
  | Cycle_capped
  | Deadlocked of Machine.diagnosis
  | Fault_limited of Machine.diagnosis

type measurement = {
  cycles : int;
  stats : Voltron_machine.Stats.t;
  coh_stats : Voltron_mem.Coherence.stats;
  net_stats : Voltron_net.Operand_network.stats;
  outcome : run_outcome;
  verified : bool;
  plan : Voltron_compiler.Select.planned_region list;
  energy : Voltron_machine.Energy.report;
}

let completed m = m.outcome = Completed

let outcome_to_string = function
  | Completed -> "completed"
  | Cycle_capped -> "exceeded the cycle cap"
  | Deadlocked d -> "deadlock:\n" ^ Machine.diagnosis_to_string d
  | Fault_limited d ->
    "fault limit reached:\n" ^ Machine.diagnosis_to_string d

let run ?(choice = `Hybrid) ?(check = true) ?profile ?(tweak = fun c -> c)
    ?(prepare = fun _ _ -> ()) ~n_cores program =
  let machine = tweak (Config.default ~n_cores) in
  let compiled = Driver.compile ~machine ~choice ~check ?profile program in
  let m = Machine.create machine compiled.Driver.executable in
  prepare compiled m;
  let result = Machine.run m in
  let outcome =
    match result.Machine.outcome with
    | Machine.Finished -> Completed
    | Machine.Out_of_cycles -> Cycle_capped
    | Machine.Deadlock d -> Deadlocked d
    | Machine.Fault_limit d -> Fault_limited d
  in
  let sum =
    Voltron_mem.Memory.checksum_prefix (Machine.memory m)
      compiled.Driver.array_footprint
  in
  {
    cycles = result.Machine.cycles;
    stats = Machine.stats m;
    coh_stats = Voltron_mem.Coherence.total_stats (Machine.coherence m);
    net_stats = Voltron_net.Operand_network.stats (Machine.network m);
    outcome;
    verified = outcome = Completed && sum = compiled.Driver.oracle_checksum;
    plan = compiled.Driver.plan;
    energy =
      Voltron_machine.Energy.of_run ~stats:(Machine.stats m)
        ~coherence:(Machine.coherence m) ~network:(Machine.network m) ();
  }

(* --- Graceful degradation ladder ------------------------------------------ *)

type attempt = {
  a_level : Fault.level;
  a_choice : Voltron_compiler.Select.choice;
  a_n_cores : int;
  a_measurement : measurement;
}

type resilient = {
  final : measurement;
  attempts : attempt list;  (** in execution order; last produced [final] *)
  degraded : bool;
}

(* Map a degradation rung onto a compilation strategy: full hybrid
   parallelism first, queue-mode-only (no lock-step coupling, no TM
   speculation) next, and sequential on core 0 as the last resort. *)
let strategy_of_level ~choice ~n_cores = function
  | Fault.Full -> (choice, n_cores)
  | Fault.Decoupled_only -> (`Tlp, n_cores)
  | Fault.Serial_core0 -> (`Seq, 1)

let run_resilient ?(choice = `Hybrid) ?(check = true) ?profile
    ?(tweak = fun c -> c) ~n_cores program =
  let rec go level acc =
    let choice', n_cores' = strategy_of_level ~choice ~n_cores level in
    let tweak' c =
      let c = tweak c in
      match level with
      | Fault.Serial_core0 ->
        (* The bottom rung must always complete: keep injecting (the run
           still has to verify) but never give up on it. *)
        { c with Config.fault = { c.Config.fault with Fault.degrade_threshold = 0 } }
      | Fault.Full | Fault.Decoupled_only -> c
    in
    let m =
      run ~choice:choice' ~check ?profile ~tweak:tweak' ~n_cores:n_cores' program
    in
    let attempt =
      { a_level = level; a_choice = choice'; a_n_cores = n_cores'; a_measurement = m }
    in
    let acc = attempt :: acc in
    match m.outcome with
    | Fault_limited _ -> (
      match Fault.degrade level with
      | Some next -> go next acc
      | None -> (acc, m))
    | Completed | Cycle_capped | Deadlocked _ -> (acc, m)
  in
  let attempts_rev, final = go Fault.Full [] in
  let attempts = List.rev attempts_rev in
  { final; attempts; degraded = List.length attempts > 1 }

let baseline_cycles ?profile program =
  let m = run ~choice:`Seq ?profile ~n_cores:1 program in
  (match m.outcome with
  | Completed -> ()
  | (Cycle_capped | Deadlocked _ | Fault_limited _) as o ->
    failwith ("baseline run " ^ outcome_to_string o));
  m.cycles

let speedup ?(choice = `Hybrid) ~n_cores program =
  let base = baseline_cycles program in
  let m = run ~choice ~n_cores program in
  (match m.outcome with
  | Completed -> ()
  | (Cycle_capped | Deadlocked _ | Fault_limited _) as o ->
    failwith ("speedup run " ^ outcome_to_string o));
  if not m.verified then failwith "speedup: memory image diverged from oracle";
  float_of_int base /. float_of_int m.cycles
