(** One-call compile-and-simulate helpers — the facade most users (and the
    examples, CLI and benchmark harness) go through. *)

type run_outcome =
  | Completed
  | Cycle_capped  (** exceeded [Config.max_cycles] *)
  | Deadlocked of Voltron_machine.Machine.diagnosis  (** watchdog fired *)
  | Fault_limited of Voltron_machine.Machine.diagnosis
      (** injected faults crossed the degradation threshold *)

val outcome_to_string : run_outcome -> string

type measurement = {
  cycles : int;
  stats : Voltron_machine.Stats.t;
  coh_stats : Voltron_mem.Coherence.stats;
      (** whole-hierarchy cache/coherence totals *)
  net_stats : Voltron_net.Operand_network.stats;
  outcome : run_outcome;
  verified : bool;
      (** [Completed] and memory image matched the reference interpreter *)
  plan : Voltron_compiler.Select.planned_region list;
  energy : Voltron_machine.Energy.report;
}

val completed : measurement -> bool

val run :
  ?choice:Voltron_compiler.Select.choice ->
  ?check:bool ->
  ?profile:Voltron_analysis.Profile.t ->
  ?tweak:(Voltron_machine.Config.t -> Voltron_machine.Config.t) ->
  ?prepare:(Voltron_compiler.Driver.compiled -> Voltron_machine.Machine.t -> unit) ->
  n_cores:int ->
  Voltron_ir.Hir.program ->
  measurement
(** Compile (default [`Hybrid]) for an [n_cores] Voltron and simulate to
    completion. [tweak] adjusts the machine configuration (cache
    latencies, network capacity, fault injection, ...) before compiling —
    used by the ablation benches and the resilience sweep. [prepare] sees
    the compiled program and the machine before the run starts — the
    observability layer's attachment point (tracers, region attribution,
    samplers). A simulator deadlock, cycle-cap overrun or fault-limit stop
    is returned as the measurement's [outcome] (with [verified = false]),
    not raised.

    The static cross-core checker gates compilation by default: checker
    errors raise {!Voltron_check.Check.Failed}. Pass [~check:false] to
    skip it. *)

(** {1 Graceful degradation} *)

type attempt = {
  a_level : Voltron_fault.Fault.level;
  a_choice : Voltron_compiler.Select.choice;
  a_n_cores : int;
  a_measurement : measurement;
}

type resilient = {
  final : measurement;
  attempts : attempt list;  (** in execution order; last produced [final] *)
  degraded : bool;  (** at least one rung was abandoned *)
}

val run_resilient :
  ?choice:Voltron_compiler.Select.choice ->
  ?check:bool ->
  ?profile:Voltron_analysis.Profile.t ->
  ?tweak:(Voltron_machine.Config.t -> Voltron_machine.Config.t) ->
  n_cores:int ->
  Voltron_ir.Hir.program ->
  resilient
(** Like {!run}, but when a rung stops with [Fault_limited] the ladder
    degrades — full hybrid parallelism, then queue-mode-only ([`Tlp]),
    then sequential on core 0 — and re-runs. The bottom rung clears the
    degradation threshold so the last resort always runs to completion
    (faults are still injected and recovered, so it must still verify). *)

(** {1 Differential testing}

    The correctness contract every compilation strategy carries — identical
    memory image to the reference interpreter, clean static-checker
    diagnostics, fast-forward-invisible timing, watchdog-free termination —
    checked over a strategy x core-count matrix in one call. This is the
    entry the generative fuzzer ([voltron_gen]) and the corpus replay tests
    share. *)

type diff_case = {
  d_strategy : Voltron_compiler.Select.choice;
  d_cores : int;
}

type divergence =
  | Non_completion of {
      nc_case : diff_case;
      nc_fast_forward : bool;
      nc_outcome : run_outcome;
    }  (** deadlock, cycle cap or fault stop — watchdog-free termination failed *)
  | Checksum_mismatch of { cm_case : diff_case; expected : int; got : int }
      (** array-footprint memory image differs from the reference
          interpreter (or, for the per-cycle reference run, from the
          fast-forward run) *)
  | Checker_rejected of {
      cr_case : diff_case;
      diags : Voltron_check.Check.diag list;
    }  (** the static cross-core checker found errors in the build *)
  | Ff_cycle_mismatch of { fc_case : diff_case; ff_on : int; ff_off : int }
      (** stall fast-forward changed the cycle count — it must be
          architecturally invisible *)

type differential = {
  diff_runs : int;  (** simulations performed *)
  diff_warnings : int;  (** checker warnings across all cases (not failures) *)
  diff_divergences : divergence list;
}

val default_strategies : Voltron_compiler.Select.choice list
(** [[`Seq; `Ilp; `Tlp; `Llp; `Hybrid]] *)

val default_cores : int list
(** [[2; 4; 8]] *)

val choice_name : Voltron_compiler.Select.choice -> string
val divergence_class : divergence -> string
(** Stable failure-class tag: ["non-completion"], ["checksum"],
    ["checker"] or ["ff-cycles"] — the shrinker preserves this. *)

val divergence_to_string : divergence -> string

val differential :
  ?strategies:Voltron_compiler.Select.choice list ->
  ?cores:int list ->
  ?max_steps:int ->
  ?max_cycles:int ->
  ?tweak:(Voltron_machine.Config.t -> Voltron_machine.Config.t) ->
  ?miscompile:(Voltron_compiler.Driver.compiled -> Voltron_compiler.Driver.compiled) ->
  ?ff_tweak:(Voltron_machine.Config.t -> Voltron_machine.Config.t) ->
  Voltron_ir.Hir.program ->
  differential
(** For every strategy x core count: compile once (static checker on),
    simulate twice — stall fast-forward on, then off — and record every
    contract violation. [max_steps] bounds the oracle interpreter and
    [max_cycles] clamps the simulator cap (both deliberately small so
    runaway shrink candidates fail fast instead of simulating 200M
    cycles); raise them for unusually large programs.

    [miscompile] and [ff_tweak] exist for the harness's own tests: the
    first rewrites the compiled artifact before simulation (an intentional
    miscompile, to prove checksum and checker divergences are caught), the
    second perturbs only the per-cycle reference machine (to prove
    fast-forward divergences are caught). Leave both at their identity
    defaults in real use. *)

val baseline_cycles : ?profile:Voltron_analysis.Profile.t -> Voltron_ir.Hir.program -> int
(** Single-core sequential cycles (the paper's 1.0 reference). *)

val speedup :
  ?choice:Voltron_compiler.Select.choice ->
  n_cores:int ->
  Voltron_ir.Hir.program ->
  float
(** [baseline / parallel] cycles; also asserts verification. *)
