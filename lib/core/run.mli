(** One-call compile-and-simulate helpers — the facade most users (and the
    examples, CLI and benchmark harness) go through. *)

type run_outcome =
  | Completed
  | Cycle_capped  (** exceeded [Config.max_cycles] *)
  | Deadlocked of Voltron_machine.Machine.diagnosis  (** watchdog fired *)
  | Fault_limited of Voltron_machine.Machine.diagnosis
      (** injected faults crossed the degradation threshold *)
  | Sanity_stopped of Voltron_machine.Machine.diagnosis
      (** the runtime sanitizer (policy [Abort] or [Recover]) stopped the
          machine at a violation's detection cycle *)

val outcome_to_string : run_outcome -> string

type measurement = {
  cycles : int;
  stats : Voltron_machine.Stats.t;
  coh_stats : Voltron_mem.Coherence.stats;
      (** whole-hierarchy cache/coherence totals *)
  net_stats : Voltron_net.Operand_network.stats;
  outcome : run_outcome;
  verified : bool;
      (** [Completed] and memory image matched the reference interpreter *)
  plan : Voltron_compiler.Select.planned_region list;
  energy : Voltron_machine.Energy.report;
  sanity : Voltron_sanity.Sanity.report option;
      (** present iff the run was sanitized *)
}

val completed : measurement -> bool

val run :
  ?choice:Voltron_compiler.Select.choice ->
  ?check:bool ->
  ?profile:Voltron_analysis.Profile.t ->
  ?tweak:(Voltron_machine.Config.t -> Voltron_machine.Config.t) ->
  ?prepare:(Voltron_compiler.Driver.compiled -> Voltron_machine.Machine.t -> unit) ->
  ?sanitize:Voltron_sanity.Sanity.policy ->
  ?sanitize_log:(string -> unit) ->
  n_cores:int ->
  Voltron_ir.Hir.program ->
  measurement
(** Compile (default [`Hybrid]) for an [n_cores] Voltron and simulate to
    completion. [tweak] adjusts the machine configuration (cache
    latencies, network capacity, fault injection, ...) before compiling —
    used by the ablation benches and the resilience sweep. [prepare] sees
    the compiled program and the machine before the run starts — the
    observability layer's attachment point (tracers, region attribution,
    samplers); it runs after the sanitizer attaches, so test harnesses can
    also arm tampering backdoors there. [sanitize] attaches the runtime
    invariant sanitizer under that policy (disabling stall fast-forward
    for the run) and fills the measurement's [sanity] report;
    [sanitize_log] sees each recorded violation as it happens. A simulator
    deadlock, cycle-cap overrun, fault-limit or sanitizer stop is returned
    as the measurement's [outcome] (with [verified = false]), not raised.

    The static cross-core checker gates compilation by default: checker
    errors raise {!Voltron_check.Check.Failed}. Pass [~check:false] to
    skip it. *)

(** {1 Graceful degradation} *)

type attempt = {
  a_level : Voltron_fault.Fault.level;
  a_choice : Voltron_compiler.Select.choice;
  a_n_cores : int;
  a_measurement : measurement;
}

type resilient = {
  final : measurement;
  attempts : attempt list;  (** in execution order; last produced [final] *)
  degraded : bool;  (** at least one rung was abandoned *)
}

val run_resilient :
  ?choice:Voltron_compiler.Select.choice ->
  ?check:bool ->
  ?profile:Voltron_analysis.Profile.t ->
  ?tweak:(Voltron_machine.Config.t -> Voltron_machine.Config.t) ->
  ?prepare:(Voltron_compiler.Driver.compiled -> Voltron_machine.Machine.t -> unit) ->
  ?sanitize:Voltron_sanity.Sanity.policy ->
  n_cores:int ->
  Voltron_ir.Hir.program ->
  resilient
(** Like {!run}, but when a rung stops with [Fault_limited] the ladder
    degrades — full hybrid parallelism, then queue-mode-only ([`Tlp]),
    then sequential on core 0 — and re-runs. The bottom rung clears the
    degradation threshold so the last resort always runs to completion
    (faults are still injected and recovered, so it must still verify).

    With [~sanitize:Recover], a rung whose sanitizer report is dirty
    (typically a [Sanity_stopped] outcome) degrades the same way, and the
    bottom rung demotes the policy to [Report] so the last resort cannot
    be stopped — violations there are counted and surfaced instead.
    [prepare] is forwarded to every rung's {!run} (test harnesses arm
    per-rung tampering there). *)

(** {1 Differential testing}

    The correctness contract every compilation strategy carries — identical
    memory image to the reference interpreter, clean static-checker
    diagnostics, fast-forward-invisible timing, watchdog-free termination —
    checked over a strategy x core-count matrix in one call. This is the
    entry the generative fuzzer ([voltron_gen]) and the corpus replay tests
    share. *)

type diff_case = {
  d_strategy : Voltron_compiler.Select.choice;
  d_cores : int;
  d_coherence : Voltron_mem.Coherence.protocol;
      (** which coherence backend the diverging simulation ran on — named
          in cell transcripts and reproducer headers so a finding's exact
          cell regenerates *)
}

type divergence =
  | Non_completion of {
      nc_case : diff_case;
      nc_fast_forward : bool;
      nc_outcome : run_outcome;
    }  (** deadlock, cycle cap or fault stop — watchdog-free termination failed *)
  | Checksum_mismatch of { cm_case : diff_case; expected : int; got : int }
      (** array-footprint memory image differs from the reference
          interpreter (or, for the per-cycle reference run, from the
          fast-forward run) *)
  | Checker_rejected of {
      cr_case : diff_case;
      diags : Voltron_check.Check.diag list;
    }  (** the static cross-core checker found errors in the build *)
  | Ff_cycle_mismatch of { fc_case : diff_case; ff_on : int; ff_off : int }
      (** stall fast-forward changed the cycle count — it must be
          architecturally invisible *)
  | Sanity_violation of {
      sv_case : diff_case;
      sv_fast_forward : bool;
      sv_report : Voltron_sanity.Sanity.report;
    }  (** the runtime sanitizer found invariant violations in the run *)

type differential = {
  diff_runs : int;  (** simulations performed *)
  diff_warnings : int;  (** checker warnings across all cases (not failures) *)
  diff_divergences : divergence list;
}

val default_strategies : Voltron_compiler.Select.choice list
(** [[`Seq; `Ilp; `Tlp; `Llp; `Hybrid]] *)

val default_cores : int list
(** [[2; 4; 8]] *)

val default_coherence : Voltron_mem.Coherence.protocol list
(** [[Snoop; Directory]] — every fuzz campaign diffs both backends by
    default. *)

val choice_name : Voltron_compiler.Select.choice -> string
val divergence_class : divergence -> string
(** Stable failure-class tag: ["non-completion"], ["checksum"],
    ["checker"], ["ff-cycles"] or ["sanitizer"] — the shrinker preserves
    this. *)

val divergence_to_string : divergence -> string

val differential :
  ?strategies:Voltron_compiler.Select.choice list ->
  ?cores:int list ->
  ?coherence:Voltron_mem.Coherence.protocol list ->
  ?max_steps:int ->
  ?max_cycles:int ->
  ?tweak:(Voltron_machine.Config.t -> Voltron_machine.Config.t) ->
  ?miscompile:(Voltron_compiler.Driver.compiled -> Voltron_compiler.Driver.compiled) ->
  ?ff_tweak:(Voltron_machine.Config.t -> Voltron_machine.Config.t) ->
  ?dir_tweak:(Voltron_machine.Config.t -> Voltron_machine.Config.t) ->
  ?sanitize:Voltron_sanity.Sanity.policy ->
  ?jobs:int ->
  Voltron_ir.Hir.program ->
  differential
(** For every strategy x core count: compile once (static checker on),
    then for every coherence backend on the [coherence] axis (default
    {!default_coherence} — snoop and directory both), simulate twice —
    stall fast-forward on, then off — and record every contract
    violation. The coherence protocol is timing-only, so each backend's
    fast-forward image is judged against the timing-independent reference
    interpreter — which transitively diffs the snoop and directory
    checksums against each other — and each backend must complete within
    the cycle cap with fast-forward-invariant cycles (the cycle-sanity
    half of the axis). [max_steps] bounds the oracle interpreter and
    [max_cycles] clamps the simulator cap (both deliberately small so
    runaway shrink candidates fail fast instead of simulating 200M
    cycles); raise them for unusually large programs. [sanitize] attaches
    the runtime sanitizer to every simulation; a dirty report is its own
    [Sanity_violation] divergence (and supersedes the non-completion
    judgement for that run — an [Abort] stop is the sanitizer working).
    Note the sanitizer's per-cycle hook disables stall fast-forward, so
    the ff-on/ff-off comparison degenerates under it.

    [miscompile], [ff_tweak] and [dir_tweak] exist for the harness's own
    tests: the first rewrites the compiled artifact before simulation (an
    intentional miscompile, to prove checksum and checker divergences are
    caught), the second perturbs only the per-cycle reference machine (to
    prove fast-forward divergences are caught), the third perturbs only
    the directory-backend simulations (to prove directory-only bugs are
    caught and attributed to their backend). Leave all three at their
    identity defaults in real use.

    [jobs] (default 1) runs the matrix cells on a work-stealing pool of
    that many domains ({!Voltron_pool.Pool.parallel_map}); each cell
    compiles and simulates independently, and runs, warnings and
    divergences are accumulated by cell index, so the result is
    bit-identical for every [jobs] value. *)

val baseline_cycles : ?profile:Voltron_analysis.Profile.t -> Voltron_ir.Hir.program -> int
(** Single-core sequential cycles (the paper's 1.0 reference). *)

val speedup :
  ?choice:Voltron_compiler.Select.choice ->
  n_cores:int ->
  Voltron_ir.Hir.program ->
  float
(** [baseline / parallel] cycles; also asserts verification. *)
