(** One-call compile-and-simulate helpers — the facade most users (and the
    examples, CLI and benchmark harness) go through. *)

type run_outcome =
  | Completed
  | Cycle_capped  (** exceeded [Config.max_cycles] *)
  | Deadlocked of Voltron_machine.Machine.diagnosis  (** watchdog fired *)
  | Fault_limited of Voltron_machine.Machine.diagnosis
      (** injected faults crossed the degradation threshold *)

val outcome_to_string : run_outcome -> string

type measurement = {
  cycles : int;
  stats : Voltron_machine.Stats.t;
  coh_stats : Voltron_mem.Coherence.stats;
      (** whole-hierarchy cache/coherence totals *)
  net_stats : Voltron_net.Operand_network.stats;
  outcome : run_outcome;
  verified : bool;
      (** [Completed] and memory image matched the reference interpreter *)
  plan : Voltron_compiler.Select.planned_region list;
  energy : Voltron_machine.Energy.report;
}

val completed : measurement -> bool

val run :
  ?choice:Voltron_compiler.Select.choice ->
  ?check:bool ->
  ?profile:Voltron_analysis.Profile.t ->
  ?tweak:(Voltron_machine.Config.t -> Voltron_machine.Config.t) ->
  ?prepare:(Voltron_compiler.Driver.compiled -> Voltron_machine.Machine.t -> unit) ->
  n_cores:int ->
  Voltron_ir.Hir.program ->
  measurement
(** Compile (default [`Hybrid]) for an [n_cores] Voltron and simulate to
    completion. [tweak] adjusts the machine configuration (cache
    latencies, network capacity, fault injection, ...) before compiling —
    used by the ablation benches and the resilience sweep. [prepare] sees
    the compiled program and the machine before the run starts — the
    observability layer's attachment point (tracers, region attribution,
    samplers). A simulator deadlock, cycle-cap overrun or fault-limit stop
    is returned as the measurement's [outcome] (with [verified = false]),
    not raised.

    The static cross-core checker gates compilation by default: checker
    errors raise {!Voltron_check.Check.Failed}. Pass [~check:false] to
    skip it. *)

(** {1 Graceful degradation} *)

type attempt = {
  a_level : Voltron_fault.Fault.level;
  a_choice : Voltron_compiler.Select.choice;
  a_n_cores : int;
  a_measurement : measurement;
}

type resilient = {
  final : measurement;
  attempts : attempt list;  (** in execution order; last produced [final] *)
  degraded : bool;  (** at least one rung was abandoned *)
}

val run_resilient :
  ?choice:Voltron_compiler.Select.choice ->
  ?check:bool ->
  ?profile:Voltron_analysis.Profile.t ->
  ?tweak:(Voltron_machine.Config.t -> Voltron_machine.Config.t) ->
  n_cores:int ->
  Voltron_ir.Hir.program ->
  resilient
(** Like {!run}, but when a rung stops with [Fault_limited] the ladder
    degrades — full hybrid parallelism, then queue-mode-only ([`Tlp]),
    then sequential on core 0 — and re-runs. The bottom rung clears the
    degradation threshold so the last resort always runs to completion
    (faults are still injected and recovered, so it must still verify). *)

val baseline_cycles : ?profile:Voltron_analysis.Profile.t -> Voltron_ir.Hir.program -> int
(** Single-core sequential cycles (the paper's 1.0 reference). *)

val speedup :
  ?choice:Voltron_compiler.Select.choice ->
  n_cores:int ->
  Voltron_ir.Hir.program ->
  float
(** [baseline / parallel] cycles; also asserts verification. *)
