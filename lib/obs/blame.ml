module Machine = Voltron_machine.Machine
module Config = Voltron_machine.Config
module Stats = Voltron_machine.Stats
module Net = Voltron_net.Operand_network
module Mesh = Voltron_net.Mesh
module Coherence = Voltron_mem.Coherence
module Tm = Voltron_mem.Tm
module Driver = Voltron_compiler.Driver
module Program = Voltron_isa.Program
module Inst = Voltron_isa.Inst
module Vec = Voltron_util.Vec

type kind =
  | K_compute
  | K_redo
  | K_net_wait
  | K_spawn
  | K_bcast_wait
  | K_latch_wait
  | K_backpressure
  | K_miss_fill
  | K_ifetch
  | K_operand
  | K_tm_commit
  | K_tm_serial
  | K_barrier
  | K_lockstep
  | K_fault
  | K_drain

let all_kinds =
  [
    K_compute;
    K_redo;
    K_net_wait;
    K_spawn;
    K_bcast_wait;
    K_latch_wait;
    K_backpressure;
    K_miss_fill;
    K_ifetch;
    K_operand;
    K_tm_commit;
    K_tm_serial;
    K_barrier;
    K_lockstep;
    K_fault;
    K_drain;
  ]

let kind_label = function
  | K_compute -> "compute"
  | K_redo -> "tm-redo"
  | K_net_wait -> "net-wait"
  | K_spawn -> "spawn-wait"
  | K_bcast_wait -> "bcast-wait"
  | K_latch_wait -> "latch-wait"
  | K_backpressure -> "backpressure"
  | K_miss_fill -> "miss-fill"
  | K_ifetch -> "ifetch"
  | K_operand -> "operand"
  | K_tm_commit -> "tm-commit"
  | K_tm_serial -> "tm-serial"
  | K_barrier -> "barrier"
  | K_lockstep -> "lockstep"
  | K_fault -> "fault"
  | K_drain -> "drain"

let kind_of_label s =
  List.find_opt (fun k -> String.equal (kind_label k) s) all_kinds

let kind_of_wait : Machine.wait -> kind = function
  | Machine.W_reg Stats.D_stall -> K_miss_fill
  | Machine.W_reg Stats.I_stall -> K_ifetch
  | Machine.W_reg _ -> K_operand
  | Machine.W_ifetch -> K_ifetch
  | Machine.W_dmem -> K_miss_fill
  | Machine.W_btr -> K_operand
  | Machine.W_recv _ -> K_net_wait
  | Machine.W_getb -> K_bcast_wait
  | Machine.W_send_full _ -> K_backpressure
  | Machine.W_get_latch _ -> K_latch_wait
  | Machine.W_stall_fault -> K_fault
  | Machine.W_barrier _ -> K_barrier
  | Machine.W_commit -> K_tm_commit
  | Machine.W_serial -> K_tm_serial
  | Machine.W_asleep -> K_spawn
  | Machine.W_halted -> K_drain

type interval = {
  iv_kind : kind;
  iv_blame : int;
  iv_region : int;
  iv_mode : int;
  iv_redo : bool;
  iv_from : int;
  mutable iv_to : int;
}

type delivery = { dv_cycle : int; dv_src : int; dv_sent : int; dv_start : bool }

type tm_counts = {
  mutable tr_begins : int;
  mutable tr_commits : int;
  mutable tr_aborts : int;
}

type t = {
  machine : Machine.t;
  n_cores : int;
  names : string array;
  strategies : string array;
  region_of : core:int -> pc:int -> int;
  ivs : interval Vec.t array;  (** per core, in time order, tiling the run *)
  dvs : delivery Vec.t array;  (** per destination core, in delivery order *)
  tm : tm_counts array;  (** per region *)
  fill_count : int array;  (** per core: accesses that missed in L1 *)
  fill_cycles : int array;  (** per core: fill latency beyond an L1 hit *)
  hop_cost : int;
  hops : int -> int -> int;
}

let mode_index = function Inst.Coupled -> 0 | Inst.Decoupled -> 1

let record t ~core ~pc ~k ~redo (ev : Machine.blame_event) =
  let upto = Machine.now t.machine in
  let from = upto - k + 1 in
  let kind, blame =
    match ev with
    | Machine.Blame_busy -> ((if redo then K_redo else K_compute), -1)
    | Machine.Blame_lockstep _ -> (K_lockstep, -1)
    | Machine.Blame_wait { b_wait; b_on } -> (kind_of_wait b_wait, b_on)
  in
  let region = t.region_of ~core ~pc in
  let mode = mode_index (Machine.mode t.machine) in
  let v = t.ivs.(core) in
  match Vec.last v with
  | Some last
    when last.iv_to = from - 1
         && last.iv_kind == kind
         && last.iv_blame = blame
         && last.iv_region = region
         && last.iv_mode = mode
         && last.iv_redo = redo ->
    last.iv_to <- upto
  | _ ->
    Vec.push v
      {
        iv_kind = kind;
        iv_blame = blame;
        iv_region = region;
        iv_mode = mode;
        iv_redo = redo;
        iv_from = from;
        iv_to = upto;
      }

let attach m (compiled : Driver.compiled) =
  let names, strategies, region_of = Region_profile.lookup compiled in
  let n_cores = Program.n_cores compiled.Driver.executable in
  let net = Machine.network m in
  let t =
    {
      machine = m;
      n_cores;
      names;
      strategies;
      region_of;
      ivs = Array.init n_cores (fun _ -> Vec.create ());
      dvs = Array.init n_cores (fun _ -> Vec.create ());
      tm = Array.init (Array.length names) (fun _ ->
          { tr_begins = 0; tr_commits = 0; tr_aborts = 0 });
      fill_count = Array.make n_cores 0;
      fill_cycles = Array.make n_cores 0;
      hop_cost = (Machine.config m).Config.net_hop_cost;
      hops = Mesh.hops (Net.mesh net);
    }
  in
  Machine.set_blame m (fun ~core ~pc ~k ~redo ev -> record t ~core ~pc ~k ~redo ev);
  Net.set_monitor net (fun ev ->
      match ev with
      | Net.Ev_deliver { ev_src; ev_dst; ev_payload; ev_sent; ev_seq = _ } ->
        Vec.push t.dvs.(ev_dst)
          {
            dv_cycle = Machine.now m;
            dv_src = ev_src;
            dv_sent = ev_sent;
            dv_start =
              (match ev_payload with Net.Start _ -> true | Net.Value _ -> false);
          }
      | Net.Ev_send _ | Net.Ev_put _ | Net.Ev_get _ -> ());
  let tm_at core =
    t.tm.(t.region_of ~core ~pc:(Machine.pc m ~core))
  in
  Tm.set_monitor (Machine.tm m)
    {
      Tm.m_read = (fun ~core:_ ~addr:_ ~value:_ ~tx:_ -> ());
      m_write = (fun ~core:_ ~addr:_ ~value:_ ~tx:_ -> ());
      m_begin = (fun ~core -> let r = tm_at core in r.tr_begins <- r.tr_begins + 1);
      m_commit =
        (fun ~core -> let r = tm_at core in r.tr_commits <- r.tr_commits + 1);
      m_abort = (fun ~core -> let r = tm_at core in r.tr_aborts <- r.tr_aborts + 1);
    };
  let lat_l1 = (Coherence.config (Machine.coherence m)).Coherence.lat_l1 in
  Coherence.set_monitor (Machine.coherence m)
    (fun ~core ~completion _kind _addr ->
      let extra = completion - Machine.now m - lat_l1 in
      if extra > 0 then begin
        t.fill_count.(core) <- t.fill_count.(core) + 1;
        t.fill_cycles.(core) <- t.fill_cycles.(core) + extra
      end);
  t

let n_cores t = t.n_cores
let cycles t = Machine.now t.machine
let region_names t = t.names
let strategy_names t = t.strategies
let hop_cost t = t.hop_cost
let hops t = t.hops
let intervals t core = Vec.to_array t.ivs.(core)
let deliveries t core = Vec.to_array t.dvs.(core)

let coverage t =
  let total = cycles t in
  let problem = ref None in
  for c = 0 to t.n_cores - 1 do
    if !problem = None then begin
      let at = ref 1 in
      Vec.iter
        (fun iv ->
          if !problem = None then
            if iv.iv_from <> !at then
              problem :=
                Some
                  (Printf.sprintf "core %d: gap [%d..%d] before interval" c !at
                     (iv.iv_from - 1))
            else at := iv.iv_to + 1)
        t.ivs.(c);
      if !problem = None && !at <> total + 1 then
        problem :=
          Some (Printf.sprintf "core %d: tail gap [%d..%d]" c !at total)
    end
  done;
  match !problem with None -> Ok () | Some p -> Error p

let wait_matrix t =
  let m = Array.make_matrix t.n_cores t.n_cores 0 in
  Array.iteri
    (fun c v ->
      Vec.iter
        (fun iv ->
          match iv.iv_kind with
          | K_net_wait | K_backpressure | K_latch_wait | K_bcast_wait
          | K_spawn ->
            if iv.iv_blame >= 0 && iv.iv_blame < t.n_cores then
              m.(c).(iv.iv_blame) <-
                m.(c).(iv.iv_blame) + (iv.iv_to - iv.iv_from + 1)
          | _ -> ())
        v)
    t.ivs;
  m

let msgs_matrix t =
  let m = Array.make_matrix t.n_cores t.n_cores 0 in
  Array.iteri
    (fun dst v ->
      Vec.iter (fun d -> m.(d.dv_src).(dst) <- m.(d.dv_src).(dst) + 1) v)
    t.dvs;
  m

let tm_regions t =
  let out = ref [] in
  for r = Array.length t.tm - 1 downto 0 do
    let c = t.tm.(r) in
    if c.tr_begins > 0 || c.tr_aborts > 0 then
      out := (t.names.(r), c.tr_begins, c.tr_commits, c.tr_aborts) :: !out
  done;
  !out

let fills t core = (t.fill_count.(core), t.fill_cycles.(core))
