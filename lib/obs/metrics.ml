module Stats = Voltron_machine.Stats
module Machine = Voltron_machine.Machine
module Coherence = Voltron_mem.Coherence
module Net = Voltron_net.Operand_network

type core_counters = {
  busy : int;
  i_stall : int;
  d_stall : int;
  lat_stall : int;
  recv_data_stall : int;
  recv_pred_stall : int;
  sync_stall : int;
  idle : int;
  bundles : int;
  ops : int;
  ops_mem : int;
  ops_comm : int;
  ops_mul_div : int;
}

type cache_counters = {
  accesses : int;
  l1d_misses : int;
  l1i_misses : int;
  l2_misses : int;
  c2c_transfers : int;
  upgrades : int;
  writebacks : int;
  bus_wait_cycles : int;
  dir_lookups : int;
  dir_invalidations : int;
  dir_indirections : int;
}

type net_counters = {
  msgs_sent : int;
  total_latency : int;
  max_occupancy : int;
  retries : int;
  nacks : int;
}

type fault_counters = {
  faults_injected : int;
  msgs_dropped : int;
  msgs_corrupted : int;
  net_retries : int;
  net_nacks : int;
  ecc_corrected : int;
  ecc_scrubbed : int;
  flips_masked : int;
  spurious_aborts : int;
  stall_faults : int;
}

type t = {
  label : string;
  cycles : int;
  coupled_cycles : int;
  decoupled_cycles : int;
  mode_switches : int;
  spawns : int;
  tm_rounds : int;
  tm_conflicts : int;
  cores : core_counters array;
  cache : cache_counters;
  per_core_cache : cache_counters array;
  net : net_counters;
  faults : fault_counters;
}

let zero_cache =
  {
    accesses = 0;
    l1d_misses = 0;
    l1i_misses = 0;
    l2_misses = 0;
    c2c_transfers = 0;
    upgrades = 0;
    writebacks = 0;
    bus_wait_cycles = 0;
    dir_lookups = 0;
    dir_invalidations = 0;
    dir_indirections = 0;
  }

let zero_net =
  { msgs_sent = 0; total_latency = 0; max_occupancy = 0; retries = 0; nacks = 0 }

let core_of_stats (c : Stats.core) =
  {
    busy = c.Stats.busy;
    i_stall = c.Stats.i_stall;
    d_stall = c.Stats.d_stall;
    lat_stall = c.Stats.lat_stall;
    recv_data_stall = c.Stats.recv_data_stall;
    recv_pred_stall = c.Stats.recv_pred_stall;
    sync_stall = c.Stats.sync_stall;
    idle = c.Stats.idle;
    bundles = c.Stats.bundles;
    ops = c.Stats.ops;
    ops_mem = c.Stats.ops_mem;
    ops_comm = c.Stats.ops_comm;
    ops_mul_div = c.Stats.ops_mul_div;
  }

let cache_of_stats (s : Coherence.stats) =
  {
    accesses = s.Coherence.accesses;
    l1d_misses = s.Coherence.l1d_misses;
    l1i_misses = s.Coherence.l1i_misses;
    l2_misses = s.Coherence.l2_misses;
    c2c_transfers = s.Coherence.c2c_transfers;
    upgrades = s.Coherence.upgrades;
    writebacks = s.Coherence.writebacks;
    bus_wait_cycles = s.Coherence.bus_wait_cycles;
    dir_lookups = s.Coherence.dir_lookups;
    dir_invalidations = s.Coherence.dir_invalidations;
    dir_indirections = s.Coherence.dir_indirections;
  }

let net_of_stats (s : Net.stats) =
  {
    msgs_sent = s.Net.msgs_sent;
    total_latency = s.Net.total_latency;
    max_occupancy = s.Net.max_occupancy;
    retries = s.Net.retries;
    nacks = s.Net.nacks;
  }

let of_stats ?(label = "") ?cycles ?coherence ?per_core_coherence ?network
    (s : Stats.t) =
  {
    label;
    cycles = (match cycles with Some c -> c | None -> s.Stats.cycles);
    coupled_cycles = s.Stats.coupled_cycles;
    decoupled_cycles = s.Stats.decoupled_cycles;
    mode_switches = s.Stats.mode_switches;
    spawns = s.Stats.spawns;
    tm_rounds = s.Stats.tm_rounds;
    tm_conflicts = s.Stats.tm_conflicts;
    cores = Array.map core_of_stats s.Stats.per_core;
    cache =
      (match coherence with Some c -> cache_of_stats c | None -> zero_cache);
    per_core_cache =
      (match per_core_coherence with
      | Some a -> Array.map cache_of_stats a
      | None -> [||]);
    net = (match network with Some n -> net_of_stats n | None -> zero_net);
    faults =
      {
        faults_injected = s.Stats.faults_injected;
        msgs_dropped = s.Stats.msgs_dropped;
        msgs_corrupted = s.Stats.msgs_corrupted;
        net_retries = s.Stats.net_retries;
        net_nacks = s.Stats.net_nacks;
        ecc_corrected = s.Stats.ecc_corrected;
        ecc_scrubbed = s.Stats.ecc_scrubbed;
        flips_masked = s.Stats.flips_masked;
        spurious_aborts = s.Stats.spurious_aborts;
        stall_faults = s.Stats.stall_faults;
      };
  }

let snapshot ?label m =
  let stats = Machine.stats m in
  let coh = Machine.coherence m in
  let per_core_coherence =
    Array.init stats.Stats.n_cores (fun core -> Coherence.stats coh ~core)
  in
  of_stats ?label ~cycles:(Machine.now m)
    ~coherence:(Coherence.total_stats coh) ~per_core_coherence
    ~network:(Net.stats (Machine.network m))
    stats

let delta_core a b =
  {
    busy = b.busy - a.busy;
    i_stall = b.i_stall - a.i_stall;
    d_stall = b.d_stall - a.d_stall;
    lat_stall = b.lat_stall - a.lat_stall;
    recv_data_stall = b.recv_data_stall - a.recv_data_stall;
    recv_pred_stall = b.recv_pred_stall - a.recv_pred_stall;
    sync_stall = b.sync_stall - a.sync_stall;
    idle = b.idle - a.idle;
    bundles = b.bundles - a.bundles;
    ops = b.ops - a.ops;
    ops_mem = b.ops_mem - a.ops_mem;
    ops_comm = b.ops_comm - a.ops_comm;
    ops_mul_div = b.ops_mul_div - a.ops_mul_div;
  }

let delta_cache a b =
  {
    accesses = b.accesses - a.accesses;
    l1d_misses = b.l1d_misses - a.l1d_misses;
    l1i_misses = b.l1i_misses - a.l1i_misses;
    l2_misses = b.l2_misses - a.l2_misses;
    c2c_transfers = b.c2c_transfers - a.c2c_transfers;
    upgrades = b.upgrades - a.upgrades;
    writebacks = b.writebacks - a.writebacks;
    bus_wait_cycles = b.bus_wait_cycles - a.bus_wait_cycles;
    dir_lookups = b.dir_lookups - a.dir_lookups;
    dir_invalidations = b.dir_invalidations - a.dir_invalidations;
    dir_indirections = b.dir_indirections - a.dir_indirections;
  }

let delta ~before ~after =
  if Array.length before.cores <> Array.length after.cores then
    invalid_arg "Metrics.delta: core count mismatch";
  let per_core_cache =
    if Array.length before.per_core_cache = Array.length after.per_core_cache
    then Array.map2 delta_cache before.per_core_cache after.per_core_cache
    else after.per_core_cache
  in
  {
    label = after.label;
    cycles = after.cycles - before.cycles;
    coupled_cycles = after.coupled_cycles - before.coupled_cycles;
    decoupled_cycles = after.decoupled_cycles - before.decoupled_cycles;
    mode_switches = after.mode_switches - before.mode_switches;
    spawns = after.spawns - before.spawns;
    tm_rounds = after.tm_rounds - before.tm_rounds;
    tm_conflicts = after.tm_conflicts - before.tm_conflicts;
    cores = Array.map2 delta_core before.cores after.cores;
    cache = delta_cache before.cache after.cache;
    per_core_cache;
    net =
      {
        msgs_sent = after.net.msgs_sent - before.net.msgs_sent;
        total_latency = after.net.total_latency - before.net.total_latency;
        max_occupancy = after.net.max_occupancy;
        retries = after.net.retries - before.net.retries;
        nacks = after.net.nacks - before.net.nacks;
      };
    faults =
      {
        faults_injected =
          after.faults.faults_injected - before.faults.faults_injected;
        msgs_dropped = after.faults.msgs_dropped - before.faults.msgs_dropped;
        msgs_corrupted =
          after.faults.msgs_corrupted - before.faults.msgs_corrupted;
        net_retries = after.faults.net_retries - before.faults.net_retries;
        net_nacks = after.faults.net_nacks - before.faults.net_nacks;
        ecc_corrected =
          after.faults.ecc_corrected - before.faults.ecc_corrected;
        ecc_scrubbed = after.faults.ecc_scrubbed - before.faults.ecc_scrubbed;
        flips_masked = after.faults.flips_masked - before.faults.flips_masked;
        spurious_aborts =
          after.faults.spurious_aborts - before.faults.spurious_aborts;
        stall_faults = after.faults.stall_faults - before.faults.stall_faults;
      };
  }

let sum_cores t f = Array.fold_left (fun acc c -> acc + f c) 0 t.cores

let counters t =
  [
    ("cycles", t.cycles);
    ("coupled_cycles", t.coupled_cycles);
    ("decoupled_cycles", t.decoupled_cycles);
    ("mode_switches", t.mode_switches);
    ("spawns", t.spawns);
    ("tm_rounds", t.tm_rounds);
    ("tm_conflicts", t.tm_conflicts);
    ("busy", sum_cores t (fun c -> c.busy));
    ("i_stall", sum_cores t (fun c -> c.i_stall));
    ("d_stall", sum_cores t (fun c -> c.d_stall));
    ("lat_stall", sum_cores t (fun c -> c.lat_stall));
    ("recv_data_stall", sum_cores t (fun c -> c.recv_data_stall));
    ("recv_pred_stall", sum_cores t (fun c -> c.recv_pred_stall));
    ("sync_stall", sum_cores t (fun c -> c.sync_stall));
    ("idle", sum_cores t (fun c -> c.idle));
    ("bundles", sum_cores t (fun c -> c.bundles));
    ("ops", sum_cores t (fun c -> c.ops));
    ("ops_mem", sum_cores t (fun c -> c.ops_mem));
    ("ops_comm", sum_cores t (fun c -> c.ops_comm));
    ("ops_mul_div", sum_cores t (fun c -> c.ops_mul_div));
    ("cache_accesses", t.cache.accesses);
    ("l1d_misses", t.cache.l1d_misses);
    ("l1i_misses", t.cache.l1i_misses);
    ("l2_misses", t.cache.l2_misses);
    ("c2c_transfers", t.cache.c2c_transfers);
    ("upgrades", t.cache.upgrades);
    ("writebacks", t.cache.writebacks);
    ("bus_wait_cycles", t.cache.bus_wait_cycles);
    ("dir_lookups", t.cache.dir_lookups);
    ("dir_invalidations", t.cache.dir_invalidations);
    ("dir_indirections", t.cache.dir_indirections);
    ("msgs_sent", t.net.msgs_sent);
    ("net_total_latency", t.net.total_latency);
    ("net_max_occupancy", t.net.max_occupancy);
    ("net_retries", t.net.retries);
    ("net_nacks", t.net.nacks);
    ("faults_injected", t.faults.faults_injected);
    ("msgs_dropped", t.faults.msgs_dropped);
    ("msgs_corrupted", t.faults.msgs_corrupted);
    ("ecc_corrected", t.faults.ecc_corrected);
    ("ecc_scrubbed", t.faults.ecc_scrubbed);
    ("flips_masked", t.faults.flips_masked);
    ("spurious_aborts", t.faults.spurious_aborts);
    ("stall_faults", t.faults.stall_faults);
  ]

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let gauges t =
  let n_cores = Array.length t.cores in
  let core_cycles = t.cycles * n_cores in
  let ops = sum_cores t (fun c -> c.ops) in
  let bundles = sum_cores t (fun c -> c.bundles) in
  let busy = sum_cores t (fun c -> c.busy) in
  [
    ("ipc", ratio ops core_cycles);
    ("bundle_ipc", ratio bundles core_cycles);
    ("occupancy", ratio busy core_cycles);
    ("l1d_miss_rate", ratio t.cache.l1d_misses t.cache.accesses);
    ("l1i_miss_rate", ratio t.cache.l1i_misses t.cache.accesses);
    ("l2_miss_rate", ratio t.cache.l2_misses t.cache.accesses);
    ("avg_net_latency", ratio t.net.total_latency t.net.msgs_sent);
    ("avg_tm_conflict_rate", ratio t.tm_conflicts t.tm_rounds);
  ]

let find name t =
  match List.assoc_opt name (counters t) with
  | Some i -> Some (float_of_int i)
  | None -> List.assoc_opt name (gauges t)

let pp ppf t =
  Format.fprintf ppf "%s"
    (Tabulate.kv
       (List.map (fun (k, v) -> (k, string_of_int v)) (counters t)
       @ List.map
           (fun (k, v) -> (k, Voltron_util.Table.cell_f v))
           (gauges t)))

let json_of_core c =
  Json.Obj
    [
      ("busy", Json.Int c.busy);
      ("i_stall", Json.Int c.i_stall);
      ("d_stall", Json.Int c.d_stall);
      ("lat_stall", Json.Int c.lat_stall);
      ("recv_data_stall", Json.Int c.recv_data_stall);
      ("recv_pred_stall", Json.Int c.recv_pred_stall);
      ("sync_stall", Json.Int c.sync_stall);
      ("idle", Json.Int c.idle);
      ("bundles", Json.Int c.bundles);
      ("ops", Json.Int c.ops);
      ("ops_mem", Json.Int c.ops_mem);
      ("ops_comm", Json.Int c.ops_comm);
      ("ops_mul_div", Json.Int c.ops_mul_div);
    ]

let json_of_cache c =
  Json.Obj
    [
      ("accesses", Json.Int c.accesses);
      ("l1d_misses", Json.Int c.l1d_misses);
      ("l1i_misses", Json.Int c.l1i_misses);
      ("l2_misses", Json.Int c.l2_misses);
      ("c2c_transfers", Json.Int c.c2c_transfers);
      ("upgrades", Json.Int c.upgrades);
      ("writebacks", Json.Int c.writebacks);
      ("bus_wait_cycles", Json.Int c.bus_wait_cycles);
      ("dir_lookups", Json.Int c.dir_lookups);
      ("dir_invalidations", Json.Int c.dir_invalidations);
      ("dir_indirections", Json.Int c.dir_indirections);
    ]

let to_json t =
  Json.Obj
    [
      ("label", Json.Str t.label);
      ( "machine",
        Json.Obj
          [
            ("cycles", Json.Int t.cycles);
            ("coupled_cycles", Json.Int t.coupled_cycles);
            ("decoupled_cycles", Json.Int t.decoupled_cycles);
            ("mode_switches", Json.Int t.mode_switches);
            ("spawns", Json.Int t.spawns);
            ("tm_rounds", Json.Int t.tm_rounds);
            ("tm_conflicts", Json.Int t.tm_conflicts);
          ] );
      ("cores", Json.List (Array.to_list (Array.map json_of_core t.cores)));
      ("cache", json_of_cache t.cache);
      ( "per_core_cache",
        Json.List (Array.to_list (Array.map json_of_cache t.per_core_cache)) );
      ( "net",
        Json.Obj
          [
            ("msgs_sent", Json.Int t.net.msgs_sent);
            ("total_latency", Json.Int t.net.total_latency);
            ("max_occupancy", Json.Int t.net.max_occupancy);
            ("retries", Json.Int t.net.retries);
            ("nacks", Json.Int t.net.nacks);
          ] );
      ( "faults",
        Json.Obj
          [
            ("faults_injected", Json.Int t.faults.faults_injected);
            ("msgs_dropped", Json.Int t.faults.msgs_dropped);
            ("msgs_corrupted", Json.Int t.faults.msgs_corrupted);
            ("net_retries", Json.Int t.faults.net_retries);
            ("net_nacks", Json.Int t.faults.net_nacks);
            ("ecc_corrected", Json.Int t.faults.ecc_corrected);
            ("ecc_scrubbed", Json.Int t.faults.ecc_scrubbed);
            ("flips_masked", Json.Int t.faults.flips_masked);
            ("spurious_aborts", Json.Int t.faults.spurious_aborts);
            ("stall_faults", Json.Int t.faults.stall_faults);
          ] );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (gauges t)) );
    ]
