(** Wait-for blame recorder — the causal profiler's data-collection half.

    [attach] installs the machine's passive blame hook
    ({!Voltron_machine.Machine.set_blame}) plus the network, TM and
    coherence monitors, and records a per-core sequence of {e blame
    intervals}: every core-cycle of the run classified as compute or as a
    wait on a named edge kind, with the blamed peer core where the wait
    names one. Contiguous cycles with identical classification are merged,
    so the record stays compact even for long runs; under stall
    fast-forward a bulk-credited window arrives as one [k]-cycle report
    and lands in the same interval representation, so recording does {e
    not} force the cycle-by-cycle path.

    Network deliveries (SEND->RECV and SPAWN->START) are recorded
    separately with their enqueue cycle, giving {!Critpath} the exact
    in-flight span of the message that ended each net wait. *)

(** Edge kinds — how a core-cycle on the critical path is spent. *)
type kind =
  | K_compute  (** issued a bundle *)
  | K_redo  (** issued a bundle during serial TM re-execution *)
  | K_net_wait  (** RECV blocked: message in flight or not yet sent *)
  | K_spawn  (** asleep, waiting for a START message *)
  | K_bcast_wait  (** GETB blocked on broadcast propagation *)
  | K_latch_wait  (** GET blocked on the inter-core latch *)
  | K_backpressure  (** SEND blocked: receiver queue at capacity *)
  | K_miss_fill  (** data cache miss fill (D-stall / dmem port) *)
  | K_ifetch  (** instruction fetch miss *)
  | K_operand  (** scoreboard operand latency (incl. received values) *)
  | K_tm_commit  (** waiting at a TM commit round *)
  | K_tm_serial  (** waiting for the serial re-execution token *)
  | K_barrier  (** mode-switch barrier straggler wait *)
  | K_lockstep  (** coupled-mode group stall induced by another core *)
  | K_fault  (** injected transient stall fault *)
  | K_drain  (** halted, waiting for the machine to finish *)

val all_kinds : kind list
val kind_label : kind -> string
val kind_of_label : string -> kind option

type interval = {
  iv_kind : kind;
  iv_blame : int;  (** blamed peer core, [-1] when the wait names none *)
  iv_region : int;
  iv_mode : int;  (** 0 coupled, 1 decoupled *)
  iv_redo : bool;  (** covered by a serial TM re-execution *)
  iv_from : int;  (** first cycle, inclusive *)
  mutable iv_to : int;  (** last cycle, inclusive *)
}

type delivery = {
  dv_cycle : int;  (** cycle the message left the network into the core *)
  dv_src : int;
  dv_sent : int;  (** the message's enqueue cycle at the sender *)
  dv_start : bool;  (** SPAWN/START rather than an operand value *)
}

type t

val attach : Voltron_machine.Machine.t -> Voltron_compiler.Driver.compiled -> t
(** Install the blame hook and the network/TM/coherence monitors
    (displacing any previously attached monitors, e.g. the sanitizer's).
    Call before {!Voltron_machine.Machine.run}. Recording does not disable
    stall fast-forward. *)

val n_cores : t -> int

val cycles : t -> int
(** The machine's current cycle — the run length once the run finished. *)

val region_names : t -> string array
val strategy_names : t -> string array
val hop_cost : t -> int
val hops : t -> int -> int -> int

val intervals : t -> int -> interval array
(** That core's blame intervals in time order. After a completed run they
    tile [1 .. cycles] exactly — see {!coverage}. *)

val deliveries : t -> int -> delivery array
(** Messages delivered {e to} that core, in delivery-cycle order. *)

val coverage : t -> (unit, string) result
(** [Ok ()] when every core's intervals tile [1 .. cycles] with no gap or
    overlap — the recording-completeness half of the reconciliation
    invariant. *)

val wait_matrix : t -> int array array
(** [(wait_matrix t).(c).(s)] is the cycles core [c] spent blocked on core
    [s] (net, latch, broadcast, backpressure and spawn waits) — the DSWP
    pipeline's stage-to-stage wait picture. *)

val msgs_matrix : t -> int array array
(** [(msgs_matrix t).(s).(d)] counts messages delivered from [s] to [d]. *)

val tm_regions : t -> (string * int * int * int) list
(** Per-region TM history [(region, begins, commits, aborts)], regions
    with any transactions only. *)

val fills : t -> int -> int * int
(** That core's (cache-miss count, total fill cycles beyond an L1 hit). *)
