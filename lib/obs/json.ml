type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- Emission -------------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_to_string f)
    else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let atom_to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f -> if Float.is_finite f then float_to_string f else "null"
  | Str s ->
    let buf = Buffer.create (String.length s + 2) in
    escape_to buf s;
    Buffer.contents buf
  | List _ | Obj _ -> invalid_arg "atom_to_string"

let rec pp ppf = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as a ->
    Format.pp_print_string ppf (atom_to_string a)
  | List [] -> Format.pp_print_string ppf "[]"
  | List items ->
    Format.fprintf ppf "@[<v 2>[";
    List.iteri
      (fun i item ->
        if i > 0 then Format.fprintf ppf ",";
        Format.fprintf ppf "@,%a" pp item)
      items;
    Format.fprintf ppf "@]@,]"
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
    Format.fprintf ppf "@[<v 2>{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Format.fprintf ppf ",";
        let buf = Buffer.create 16 in
        escape_to buf k;
        Format.fprintf ppf "@,%s: %a" (Buffer.contents buf) pp v)
      fields;
    Format.fprintf ppf "@]@,}"

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "@[<v>%a@]@." pp v)

(* --- Parsing --------------------------------------------------------------- *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected '%c', got '%c'" c c')
    | None -> fail (Printf.sprintf "expected '%c', got end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with Failure _ -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* UTF-8 encode the BMP code point. *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
               end
             | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "at byte %d: %s" at msg)

(* --- Accessors ------------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

let to_list_opt = function
  | List items -> Some items
  | Null | Bool _ | Int _ | Float _ | Str _ | Obj _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Null | Bool _ | Float _ | Str _ | List _ | Obj _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | Null | Bool _ | Str _ | List _ | Obj _ -> None

let to_string_opt = function
  | Str s -> Some s
  | Null | Bool _ | Int _ | Float _ | List _ | Obj _ -> None
