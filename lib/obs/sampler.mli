(** Interval time-series sampler.

    Hooks {!Voltron_machine.Machine.set_on_window} and, every [every]
    cycles, records the interval's IPC, occupancy, L1D miss rate, average
    network latency and message count as a {!Metrics.delta} between
    consecutive snapshots — "what was the machine doing {e then}", not
    just the end-of-run average.

    Sampling is fast-forward-compatible: a window that jumps a long stall
    region reports all the boundaries it crossed at once — the first takes
    the interval delta, the rest synthesized all-stall samples (zero
    activity over [every] cycles), which is what per-cycle stepping would
    have recorded, since a fast-forwarded window issues nothing. *)

type sample = {
  s_cycle : int;  (** end of the sampled interval *)
  s_mode : Voltron_isa.Inst.mode;  (** mode at the sample point *)
  s_ipc : float;
  s_occupancy : float;
  s_l1d_miss_rate : float;
  s_avg_net_latency : float;
  s_msgs : int;  (** queue-mode messages sent in the interval *)
}

type t

val attach : every:int -> Voltron_machine.Machine.t -> t
(** Install the sampling hook (displacing any previous [set_on_window]
    callback). Call before {!Voltron_machine.Machine.run}. Raises
    [Invalid_argument] when [every <= 0]. *)

val samples : t -> sample list
(** In time order. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
