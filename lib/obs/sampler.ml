module Machine = Voltron_machine.Machine
module Inst = Voltron_isa.Inst
module Table = Voltron_util.Table

type sample = {
  s_cycle : int;
  s_mode : Inst.mode;
  s_ipc : float;
  s_occupancy : float;
  s_l1d_miss_rate : float;
  s_avg_net_latency : float;
  s_msgs : int;
}

type t = {
  every : int;
  machine : Machine.t;
  mutable prev : Metrics.t;
  mutable rev_samples : sample list;
}

let attach ~every m =
  if every <= 0 then invalid_arg "Sampler.attach: every must be positive";
  let t =
    { every; machine = m; prev = Metrics.snapshot m; rev_samples = [] }
  in
  Machine.set_on_cycle m (fun ~now ->
      if now > 0 && now mod t.every = 0 then begin
        let cur = Metrics.snapshot t.machine in
        let d = Metrics.delta ~before:t.prev ~after:cur in
        let gauge name = Option.value ~default:0. (Metrics.find name d) in
        t.rev_samples <-
          {
            s_cycle = now;
            s_mode = Machine.mode t.machine;
            s_ipc = gauge "ipc";
            s_occupancy = gauge "occupancy";
            s_l1d_miss_rate = gauge "l1d_miss_rate";
            s_avg_net_latency = gauge "avg_net_latency";
            s_msgs = d.Metrics.net.Metrics.msgs_sent;
          }
          :: t.rev_samples;
        t.prev <- cur
      end);
  t

let samples t = List.rev t.rev_samples

let mode_name = function
  | Inst.Coupled -> "coupled"
  | Inst.Decoupled -> "decoupled"

let pp ppf t =
  match samples t with
  | [] -> Format.fprintf ppf "(no samples: run shorter than %d cycles)@." t.every
  | ss ->
    let header =
      [ "cycle"; "mode"; "ipc"; "occupancy"; "l1d-miss"; "net-lat"; "msgs" ]
    in
    let body =
      List.map
        (fun s ->
          [
            string_of_int s.s_cycle;
            mode_name s.s_mode;
            Table.cell_f s.s_ipc;
            Table.cell_pct (100. *. s.s_occupancy);
            Table.cell_pct (100. *. s.s_l1d_miss_rate);
            Table.cell_f s.s_avg_net_latency;
            string_of_int s.s_msgs;
          ])
        ss
    in
    Format.fprintf ppf "%s" (Table.render ~header body)

let to_json t =
  let sample_json s =
    Json.Obj
      [
        ("cycle", Json.Int s.s_cycle);
        ("mode", Json.Str (mode_name s.s_mode));
        ("ipc", Json.Float s.s_ipc);
        ("occupancy", Json.Float s.s_occupancy);
        ("l1d_miss_rate", Json.Float s.s_l1d_miss_rate);
        ("avg_net_latency", Json.Float s.s_avg_net_latency);
        ("msgs", Json.Int s.s_msgs);
      ]
  in
  Json.Obj
    [
      ("every", Json.Int t.every);
      ("samples", Json.List (List.map sample_json (samples t)));
    ]
