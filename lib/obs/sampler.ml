module Machine = Voltron_machine.Machine
module Inst = Voltron_isa.Inst
module Table = Voltron_util.Table

type sample = {
  s_cycle : int;
  s_mode : Inst.mode;
  s_ipc : float;
  s_occupancy : float;
  s_l1d_miss_rate : float;
  s_avg_net_latency : float;
  s_msgs : int;
}

type t = {
  every : int;
  machine : Machine.t;
  mutable prev : Metrics.t;
  mutable last_boundary : int;  (** last sampled multiple of [every] *)
  mutable rev_samples : sample list;
}

let sample_of t ~cycle (d : Metrics.t) =
  let gauge name = Option.value ~default:0. (Metrics.find name d) in
  {
    s_cycle = cycle;
    s_mode = Machine.mode t.machine;
    s_ipc = gauge "ipc";
    s_occupancy = gauge "occupancy";
    s_l1d_miss_rate = gauge "l1d_miss_rate";
    s_avg_net_latency = gauge "avg_net_latency";
    s_msgs = d.Metrics.net.Metrics.msgs_sent;
  }

(* The window hook sees every cycle exactly once, as closed intervals
   [from, upto] — one cycle wide normally, many across a stall
   fast-forward jump (which is why sampling no longer forces the
   cycle-by-cycle path). A window can therefore cross several sample
   boundaries at once: the first crossed boundary takes the whole interval
   delta (a jumped window issues nothing, so all activity since the
   previous snapshot happened at or before it), and any further boundaries
   inside the jump take synthesized all-stall samples — zero activity over
   [every] cycles, exactly what per-cycle stepping would have recorded. *)
let attach ~every m =
  if every <= 0 then invalid_arg "Sampler.attach: every must be positive";
  let t =
    {
      every;
      machine = m;
      prev = Metrics.snapshot m;
      last_boundary = 0;
      rev_samples = [];
    }
  in
  Machine.set_on_window m (fun ~from:_ ~upto ->
      if upto / t.every * t.every > t.last_boundary then begin
        let cur = Metrics.snapshot t.machine in
        let d = Metrics.delta ~before:t.prev ~after:cur in
        let first = t.last_boundary + t.every in
        let boundary = ref first in
        while !boundary <= upto do
          let s =
            if !boundary = first then
              sample_of t ~cycle:!boundary
                { d with Metrics.cycles = first - t.last_boundary }
            else
              sample_of t ~cycle:!boundary
                {
                  (Metrics.delta ~before:cur ~after:cur) with
                  Metrics.cycles = t.every;
                }
          in
          t.rev_samples <- s :: t.rev_samples;
          t.last_boundary <- !boundary;
          boundary := !boundary + t.every
        done;
        t.prev <- cur
      end);
  t

let samples t = List.rev t.rev_samples

let mode_name = Tabulate.mode_name

let pp ppf t =
  match samples t with
  | [] -> Format.fprintf ppf "(no samples: run shorter than %d cycles)@." t.every
  | ss ->
    let header =
      [ "cycle"; "mode"; "ipc"; "occupancy"; "l1d-miss"; "net-lat"; "msgs" ]
    in
    let body =
      List.map
        (fun s ->
          [
            string_of_int s.s_cycle;
            mode_name s.s_mode;
            Table.cell_f s.s_ipc;
            Table.cell_pct (100. *. s.s_occupancy);
            Table.cell_pct (100. *. s.s_l1d_miss_rate);
            Table.cell_f s.s_avg_net_latency;
            string_of_int s.s_msgs;
          ])
        ss
    in
    Format.fprintf ppf "%s" (Table.render ~header body)

let to_json t =
  let sample_json s =
    Json.Obj
      [
        ("cycle", Json.Int s.s_cycle);
        ("mode", Json.Str (mode_name s.s_mode));
        ("ipc", Json.Float s.s_ipc);
        ("occupancy", Json.Float s.s_occupancy);
        ("l1d_miss_rate", Json.Float s.s_l1d_miss_rate);
        ("avg_net_latency", Json.Float s.s_avg_net_latency);
        ("msgs", Json.Int s.s_msgs);
      ]
  in
  Json.Obj
    [
      ("every", Json.Int t.every);
      ("samples", Json.List (List.map sample_json (samples t)));
    ]
