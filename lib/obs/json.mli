(** Minimal JSON values: emission for every exporter in the observability
    layer, and enough of a parser for the golden tests (and downstream
    consumers) to validate what was written. No external dependency — the
    container deliberately carries no yojson. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Non-finite floats become [null] —
    JSON has no NaN/infinity. *)

val pp : Format.formatter -> t -> unit
(** Pretty rendering, two-space indent. *)

val write_file : string -> t -> unit
(** Pretty-print to a file, with a trailing newline. *)

val parse : string -> (t, string) result
(** Strict recursive-descent parser for the full value grammar (objects,
    arrays, strings with escapes, numbers, [true]/[false]/[null]). The
    error string carries the byte offset. Numbers without [.], [e] or [E]
    parse as [Int]. *)

(** {1 Accessors} (total; [None] on shape mismatch) *)

val member : string -> t -> t option
(** First binding of that key in an [Obj]. *)

val to_list_opt : t -> t list option
val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** [Int] values coerce. *)

val to_string_opt : t -> string option
