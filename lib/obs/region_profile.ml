module Stats = Voltron_machine.Stats
module Machine = Voltron_machine.Machine
module Inst = Voltron_isa.Inst
module Image = Voltron_isa.Image
module Program = Voltron_isa.Program
module Codegen = Voltron_compiler.Codegen
module Select = Voltron_compiler.Select
module Driver = Voltron_compiler.Driver
module Table = Voltron_util.Table

type t = {
  names : string array;  (** length [ra_n_regions]; last is ["<other>"] *)
  strategies : string array;
  acct : Stats.region_acct;
}

type row = {
  r_region : string;
  r_strategy : string;
  r_mode : Inst.mode;
  r_busy : int;
  r_stalls : int array;
  r_idle : int;
  r_cycles : int;
}

let lookup (compiled : Driver.compiled) =
  let extents = Array.of_list compiled.Driver.region_extents in
  let plan = Array.of_list compiled.Driver.plan in
  assert (Array.length extents = Array.length plan);
  let n_regions = Array.length extents + 1 in
  let other = n_regions - 1 in
  let images = compiled.Driver.executable.Program.images in
  let lookups =
    Array.map (fun img -> Array.make (max 1 (Image.length img)) other) images
  in
  Array.iteri
    (fun r ext ->
      Array.iteri
        (fun core (lo, hi) ->
          let l = lookups.(core) in
          for pc = lo to min hi (Array.length l) - 1 do
            l.(pc) <- r
          done)
        ext.Codegen.re_ranges)
    extents;
  let region_of ~core ~pc =
    if core < 0 || core >= Array.length lookups then other
    else
      let l = lookups.(core) in
      if pc >= 0 && pc < Array.length l then l.(pc) else other
  in
  let names =
    Array.append (Array.map (fun e -> e.Codegen.re_name) extents) [| "<other>" |]
  in
  let strategies =
    Array.append
      (Array.map
         (fun (pr : Select.planned_region) ->
           Select.strategy_name pr.Select.pr_strategy)
         plan)
      [| "-" |]
  in
  (names, strategies, region_of)

let attach m (compiled : Driver.compiled) =
  let names, strategies, region_of = lookup compiled in
  let acct =
    Stats.create_region_acct ~n_regions:(Array.length names)
      ~n_cores:(Program.n_cores compiled.Driver.executable)
  in
  Machine.set_attribution m ~region_of acct;
  { names; strategies; acct }

let mode_of_index = function 0 -> Inst.Coupled | _ -> Inst.Decoupled

let row_of_cells t r mode_idx =
  let cells = t.acct.Stats.ra_cells.(r).(mode_idx) in
  let stalls = Array.make Stats.n_stall_kinds 0 in
  let busy = ref 0 and idle = ref 0 in
  Array.iter
    (fun (c : Stats.region_cell) ->
      busy := !busy + c.Stats.rc_busy;
      idle := !idle + c.Stats.rc_idle;
      Array.iteri (fun k v -> stalls.(k) <- stalls.(k) + v) c.Stats.rc_stalls)
    cells;
  let total = !busy + !idle + Array.fold_left ( + ) 0 stalls in
  {
    r_region = t.names.(r);
    r_strategy = t.strategies.(r);
    r_mode = mode_of_index mode_idx;
    r_busy = !busy;
    r_stalls = stalls;
    r_idle = !idle;
    r_cycles = total;
  }

let rows t =
  let out = ref [] in
  for r = t.acct.Stats.ra_n_regions - 1 downto 0 do
    for mode_idx = 1 downto 0 do
      let row = row_of_cells t r mode_idx in
      if row.r_cycles > 0 then out := row :: !out
    done
  done;
  !out

let total_cycles t =
  let total = ref 0 in
  Array.iter
    (fun modes ->
      Array.iter
        (fun cells ->
          Array.iter
            (fun c -> total := !total + Stats.region_cell_cycles c)
            cells)
        modes)
    t.acct.Stats.ra_cells;
  !total

let mode_name = Tabulate.mode_name

let pp ppf t =
  let header =
    [ "region"; "strategy"; "mode"; "cycles"; "busy" ]
    @ List.map Stats.stall_kind_label Stats.all_stall_kinds
    @ [ "idle" ]
  in
  let body =
    List.map
      (fun row ->
        ( [ row.r_region; row.r_strategy; mode_name row.r_mode ],
          row.r_cycles,
          (row.r_busy
           :: List.map
                (fun k -> row.r_stalls.(Stats.stall_kind_index k))
                Stats.all_stall_kinds)
          @ [ row.r_idle ] ))
      (rows t)
  in
  Format.fprintf ppf "%s@." (Tabulate.breakdown ~header body);
  Format.fprintf ppf "total core-cycles: %d@." (total_cycles t)

let to_json t =
  let row_json row =
    Json.Obj
      ([
         ("region", Json.Str row.r_region);
         ("strategy", Json.Str row.r_strategy);
         ("mode", Json.Str (mode_name row.r_mode));
         ("cycles", Json.Int row.r_cycles);
         ("busy", Json.Int row.r_busy);
       ]
      @ List.map
          (fun k ->
            ( Stats.stall_kind_label k,
              Json.Int row.r_stalls.(Stats.stall_kind_index k) ))
          Stats.all_stall_kinds
      @ [ ("idle", Json.Int row.r_idle) ])
  in
  Json.Obj
    [
      ("total_core_cycles", Json.Int (total_cycles t));
      ("rows", Json.List (List.map row_json (rows t)));
    ]
