(** Per-region cycle attribution (the paper's Fig. 12, per region).

    [attach] builds a pc->region map for every core from the compiler's
    {!Voltron_compiler.Codegen.region_extent}s and installs it into the
    machine ({!Voltron_machine.Machine.set_attribution}); after the run,
    every core-cycle of the program sits in exactly one (region, mode)
    cell — busy, one of the six stall kinds, or idle. Pcs outside every
    planned region (spawn/join glue, HALT) land in a catch-all ["<other>"]
    region so the profile's total always equals [n_cores * cycles]. *)

type t

type row = {
  r_region : string;
  r_strategy : string;  (** codegen strategy name; ["-"] for ["<other>"] *)
  r_mode : Voltron_isa.Inst.mode;
  r_busy : int;
  r_stalls : int array;  (** indexed by [Stats.stall_kind_index] *)
  r_idle : int;
  r_cycles : int;  (** busy + idle + every stall, summed over cores *)
}

val lookup :
  Voltron_compiler.Driver.compiled ->
  string array * string array * (core:int -> pc:int -> int)
(** [(names, strategies, region_of)] — the pc->region map alone, without
    installing anything on a machine. [names] and [strategies] are indexed
    by region id, catch-all ["<other>"] (strategy ["-"]) last; [region_of]
    maps any (core, pc) to a region id, falling back to the catch-all.
    Shared with the causal profiler's {!Blame}, which needs the same
    attribution keyed by its own hooks. *)

val attach : Voltron_machine.Machine.t -> Voltron_compiler.Driver.compiled -> t
(** Install attribution on a machine created from [compiled.executable].
    Call before {!Voltron_machine.Machine.run}. Raises [Invalid_argument]
    on a core-count mismatch. *)

val rows : t -> row list
(** One row per (region, mode) with any cycles, in plan order (catch-all
    last), coupled before decoupled. *)

val total_cycles : t -> int
(** Sum over every cell — equals [n_cores * cycles] for a run that
    executed to completion. *)

val pp : Format.formatter -> t -> unit
(** The per-region table: cycles plus busy / stall-kind / idle fractions
    per row, and the core-cycle total. *)

val to_json : t -> Json.t
