(** JSON export of the machine's structured watchdog diagnosis, so a
    deadlock, fault-limit or sanitizer stop in [run --json] is machine
    readable — the same information {!Voltron_machine.Machine.pp_diagnosis}
    renders for humans. *)

val diagnosis_to_json : Voltron_machine.Machine.diagnosis -> Json.t
(** Object shape: [cycle], [last_progress], [mode], [cores] (array of
    [{core, pc, wait, bundle}] — [wait] is null for a core that could
    issue), [queue] (array of [{src, dst, state}] in-flight messages) and
    [blame] ([[waiter, culprit]] or null). *)
