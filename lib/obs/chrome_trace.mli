(** Chrome trace-event export.

    Converts a recorded {!Voltron_machine.Trace.t} into the Chrome
    trace-event JSON format (the object form, ["traceEvents"]) loadable
    in [chrome://tracing] / Perfetto. One timeline track per core
    (issues as 1-cycle ["X"] complete events, stalls as ["i"] instants)
    plus a machine track (tid = [n_cores]) carrying the execution-mode
    B/E spans, spawn and TM-round instants. Timestamps are simulated
    cycles, written as microseconds.

    Cross-core dependences render as flow arrows: every send->recv pair
    becomes an ["s"]/["f"] flow from the sender's track at the send cycle
    to the receiver's at the receive cycle, and every TM serial
    re-execution start an arrow from the aborting round's instant. When
    the tracer hit its event limit, a flow can lose one endpoint; such
    flows are culled rather than drawn half-open, and the count is
    reported as [otherData.culled_flows] beside [dropped_events]. *)

val of_trace :
  n_cores:int -> cycles:int -> Voltron_machine.Trace.t -> Json.t
(** [cycles] closes the final mode span — pass the run's cycle count.
    The machine starts decoupled, so a ["decoupled"] span opens at ts 0;
    every {!Voltron_machine.Trace.Mode_change} closes the open span and
    opens the next, and the last one closes at [cycles]. B/E events are
    balanced by construction and timestamps are nondecreasing in event
    order. *)

val write :
  path:string -> n_cores:int -> cycles:int -> Voltron_machine.Trace.t -> unit
