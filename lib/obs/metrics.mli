(** The unified metrics registry.

    One snapshot gathers every counter silo of the simulator —
    {!Voltron_machine.Stats}, per-core and total {!Voltron_mem.Coherence}
    stats, {!Voltron_net.Operand_network} stats, the fault/ECC counters —
    into a single typed record with one labelled flat view and one
    [to_json]. Snapshots are valid mid-run (the cycle count comes from
    {!Voltron_machine.Machine.now}, not the end-of-run [Stats.cycles]),
    so [delta ~before ~after] gives exact interval counters. *)

type core_counters = {
  busy : int;
  i_stall : int;
  d_stall : int;
  lat_stall : int;
  recv_data_stall : int;
  recv_pred_stall : int;
  sync_stall : int;
  idle : int;
  bundles : int;
  ops : int;
  ops_mem : int;
  ops_comm : int;
  ops_mul_div : int;
}

type cache_counters = {
  accesses : int;
  l1d_misses : int;
  l1i_misses : int;
  l2_misses : int;
  c2c_transfers : int;
  upgrades : int;
  writebacks : int;
  bus_wait_cycles : int;  (** bus wait (snoop) or home-bank wait (directory) *)
  dir_lookups : int;  (** directory backend only; 0 under snoop *)
  dir_invalidations : int;
  dir_indirections : int;
}

type net_counters = {
  msgs_sent : int;
  total_latency : int;
  max_occupancy : int;  (** high-water mark, not a monotone counter *)
  retries : int;
  nacks : int;
}

type fault_counters = {
  faults_injected : int;
  msgs_dropped : int;
  msgs_corrupted : int;
  net_retries : int;
  net_nacks : int;
  ecc_corrected : int;
  ecc_scrubbed : int;
  flips_masked : int;
  spurious_aborts : int;
  stall_faults : int;
}

type t = {
  label : string;
  cycles : int;
  coupled_cycles : int;
  decoupled_cycles : int;
  mode_switches : int;
  spawns : int;
  tm_rounds : int;
  tm_conflicts : int;
  cores : core_counters array;
  cache : cache_counters;  (** whole-hierarchy totals *)
  per_core_cache : cache_counters array;  (** empty when not captured *)
  net : net_counters;
  faults : fault_counters;
}

val of_stats :
  ?label:string ->
  ?cycles:int ->
  ?coherence:Voltron_mem.Coherence.stats ->
  ?per_core_coherence:Voltron_mem.Coherence.stats array ->
  ?network:Voltron_net.Operand_network.stats ->
  Voltron_machine.Stats.t ->
  t
(** Build from already-extracted parts (e.g. a {!Voltron_core.Run}
    measurement). [cycles] overrides [Stats.cycles], which is only set
    once a run finishes. Missing [coherence]/[network] read as zeros. *)

val snapshot : ?label:string -> Voltron_machine.Machine.t -> t
(** Read every counter of a live (or finished) machine, including
    per-core cache stats. Safe to call from a {!Voltron_machine.Machine.set_on_cycle}
    hook. *)

val delta : before:t -> after:t -> t
(** Pointwise [after - before] over every counter ([max_occupancy], a
    high-water mark, takes [after]'s value; the label is [after]'s).
    Raises [Invalid_argument] when the core counts differ. *)

val counters : t -> (string * int) list
(** The flat registry: every machine-level counter plus core counters
    summed over cores, under stable snake_case names ("cycles",
    "busy", "l1d_misses", "msgs_sent", ...). *)

val gauges : t -> (string * float) list
(** Derived rates: "ipc" (ops per core-cycle), "bundle_ipc",
    "occupancy" (busy fraction), "l1d_miss_rate", "l1i_miss_rate",
    "l2_miss_rate", "avg_net_latency", "avg_tm_conflict_rate". Zero
    denominators read as 0. *)

val find : string -> t -> float option
(** Look a name up in {!counters} (coerced) then {!gauges}. *)

val pp : Format.formatter -> t -> unit
(** The flat registry — every counter then every gauge — as one
    metric/value table (the shared {!Tabulate} renderer). *)

val to_json : t -> Json.t
(** The full record: label, machine counters, per-core breakdowns,
    cache/net/fault silos and the derived gauges. *)
