module Inst = Voltron_isa.Inst
module Table = Voltron_util.Table

let mode_name = function
  | Inst.Coupled -> "coupled"
  | Inst.Decoupled -> "decoupled"

let breakdown ~header rows =
  let body =
    List.map
      (fun (labels, total, counts) ->
        let pct n =
          Table.cell_pct (100. *. float_of_int n /. float_of_int (max 1 total))
        in
        labels @ (string_of_int total :: List.map pct counts))
      rows
  in
  Table.render ~header body

let kv pairs =
  Table.render ~header:[ "metric"; "value" ]
    (List.map (fun (k, v) -> [ k; v ]) pairs)
