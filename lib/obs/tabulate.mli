(** Shared rendering helpers for the observability tables.

    Every profiling report in this layer prints the same two shapes — a
    breakdown table whose numeric cells are percentages of a per-row total,
    and a key/value listing — and names execution modes the same way. One
    module owns those, so [profile], [blame] and the sampler stay
    word-for-word consistent. *)

val mode_name : Voltron_isa.Inst.mode -> string
(** ["coupled"] / ["decoupled"] — the one spelling every report uses. *)

val breakdown :
  header:string list -> (string list * int * int list) list -> string
(** [breakdown ~header rows] renders one line per [(labels, total, counts)]
    row: the label cells, then [total] as an integer column, then each
    count as a percentage of [total] (of 1 when [total] is 0, keeping the
    cells finite). [header] must cover all three groups. *)

val kv : (string * string) list -> string
(** Two-column metric/value table. *)
