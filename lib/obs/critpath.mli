(** Cross-core critical path and Coz-style what-if estimates — the causal
    profiler's analysis half, over a {!Blame} recording.

    The critical path is computed by a backward walk from the end of the
    run: starting on the core that computed last, each step either {e
    consumes} a span of cycles on the current core (compute, a cache fill,
    a wire transit) or {e hops} to the core the wait blames — the message
    sender for a net wait (via the recorded delivery, at its enqueue
    cycle), the straggler for a barrier or commit wait, the token holder
    for a TM serial wait. Consumed spans tile the run's cycle range with
    no gap or overlap, so the path length equals the end-to-end cycle
    count {e exactly} — the reconciliation invariant the tests assert.

    What-if estimates rescale one edge class along the path and report the
    predicted run length, the causal-profiling counterpart of Coz's
    virtual speedups: shortening an edge off the critical path predicts
    nothing, which is the whole point. *)

type seg = {
  g_core : int;
  g_kind : Blame.kind;
  g_peer : int;  (** message sender / blamed core, [-1] for none *)
  g_region : int;
  g_mode : int;
  g_redo : bool;
  g_from : int;  (** first cycle, inclusive *)
  g_to : int;  (** last cycle, inclusive *)
}

type t

val compute : Blame.t -> t
(** Walk a finished run's recording. Raises [Failure] when the recording
    has a coverage gap (see {!Blame.coverage}) the walk falls into. *)

val total : t -> int
(** The run's end-to-end cycle count. *)

val length : t -> int
(** Sum of path-segment lengths — equals {!total} by construction; the
    tests assert it anyway. *)

val segments : t -> seg list
(** In forward time order; spans tile [1 .. total]. *)

val whatif_net : t -> scale:float -> int
(** Predicted run length with the per-hop network cost scaled by [scale]
    (0 = free wires): every wire span on the path shrinks by its message's
    transit reduction, capped by the span itself. *)

val whatif_tm : t -> int
(** Predicted run length with no TM conflicts: serial re-execution work
    and serial-token waits drop off the path. *)

(** {1 Report} *)

type row = {
  b_kind : Blame.kind;
  b_region : string;
  b_mode : int;  (** 0 coupled, 1 decoupled *)
  b_core : int;
  b_peer : int;
  b_cycles : int;  (** path cycles attributed to this (edge, region,
                       mode, core-pair) cell *)
}

type whatif = { w_class : string; w_predicted : int; w_speedup : float }

type report = {
  r_bench : string;
  r_strategy : string;
  r_n_cores : int;
  r_cycles : int;
  r_path : int;
  r_rows : row list;  (** descending by cycles *)
  r_whatif : whatif list;
  r_tm : (string * int * int * int) list;
      (** per-region (begins, commits, aborts) *)
  r_wait : int array array;  (** {!Blame.wait_matrix} *)
  r_msgs : int array array;  (** {!Blame.msgs_matrix} *)
}

val report :
  bench:string -> strategy:string -> ?net_scale:float -> t -> report
(** Aggregate the path into the blame table plus the standard what-if
    estimates: network hop cost scaled by [net_scale] (default 0) and TM
    aborts removed. *)

val pp_report : ?top:int -> Format.formatter -> report -> unit
(** Header, top-[top] (default 12) blame rows, what-if lines, and — when
    present — the per-region TM table and the cross-core wait matrix. *)

val report_to_json : report -> Json.t

val report_of_json : Json.t -> (report, string) result
(** Exact inverse of {!report_to_json} ([w_speedup] is recomputed from the
    integer fields rather than parsed, so the roundtrip is lossless). *)
