module Trace = Voltron_machine.Trace
module Inst = Voltron_isa.Inst

let mode_name = Tabulate.mode_name

let event ~name ~cat ~ph ~ts ~tid extra =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("cat", Json.Str cat);
       ("ph", Json.Str ph);
       ("ts", Json.Int ts);
       ("pid", Json.Int 0);
       ("tid", Json.Int tid);
     ]
    @ extra)

let thread_name ~tid name =
  Json.Obj
    [
      ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let of_trace ~n_cores ~cycles trace =
  let machine_tid = n_cores in
  let meta =
    List.init n_cores (fun c -> thread_name ~tid:c (Printf.sprintf "core %d" c))
    @ [ thread_name ~tid:machine_tid "machine" ]
  in
  (* Events are collected with their cycle and stable-sorted at the end:
     flow endpoints are only emitted once their pair is seen, which is
     after (in recording order) events that happened later than the "s"
     endpoint's cycle. The sort restores nondecreasing timestamps. *)
  let rev_events =
    ref
      [
        ( 0,
          event ~name:(mode_name Inst.Decoupled) ~cat:"mode" ~ph:"B" ~ts:0
            ~tid:machine_tid [] );
      ]
  in
  let push ts e = rev_events := (ts, e) :: !rev_events in
  (* Flow-event pairing. Each send->recv pair becomes a flow arrow: a "s"
     record at the send cycle on the sender's track and a binding-point "f"
     at the receive cycle on the receiver's track, sharing a fresh id.
     Channels deliver FIFO, so a per-(src, dst) queue of unmatched Sent
     cycles pairs them; likewise each TM serial re-execution start draws an
     arrow from the abort's tm-round instant. A truncated trace can lose
     one endpoint — such flows are culled (never emitted half-open, which
     renders as an arrow to nowhere) and counted in the footer. *)
  let next_flow = ref 0 in
  let culled_flows = ref 0 in
  let pending_sent : (int * int, int Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let last_conflict = ref None in
  let flow ~name ~ts_from ~tid_from ~ts_to ~tid_to =
    let id = !next_flow in
    incr next_flow;
    push ts_from
      (event ~name ~cat:"flow" ~ph:"s" ~ts:ts_from ~tid:tid_from
         [ ("id", Json.Int id) ]);
    push ts_to
      (event ~name ~cat:"flow" ~ph:"f" ~ts:ts_to ~tid:tid_to
         [ ("id", Json.Int id); ("bp", Json.Str "e") ])
  in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Issue { cycle; core; pc; ops } ->
        push cycle
          (event
             ~name:(Printf.sprintf "issue @%d" pc)
             ~cat:"issue" ~ph:"X" ~ts:cycle ~tid:core
             [
               ("dur", Json.Int 1);
               ( "args",
                 Json.Obj [ ("pc", Json.Int pc); ("ops", Json.Int ops) ] );
             ])
      | Trace.Stall { cycle; core; kind } ->
        push cycle
          (event ~name:(Trace.stall_name kind) ~cat:"stall" ~ph:"i" ~ts:cycle
             ~tid:core
             [ ("s", Json.Str "t") ])
      | Trace.Mode_change { cycle; mode } ->
        push cycle
          (event ~name:"mode" ~cat:"mode" ~ph:"E" ~ts:cycle ~tid:machine_tid []);
        push cycle
          (event ~name:(mode_name mode) ~cat:"mode" ~ph:"B" ~ts:cycle
             ~tid:machine_tid [])
      | Trace.Spawned { cycle; by; target } ->
        push cycle
          (event ~name:"spawn" ~cat:"spawn" ~ph:"i" ~ts:cycle ~tid:by
             [
               ("s", Json.Str "t");
               ("args", Json.Obj [ ("target", Json.Int target) ]);
             ])
      | Trace.Tm_round { cycle; conflict_at } ->
        (match conflict_at with
        | Some _ -> last_conflict := Some cycle
        | None -> ());
        push cycle
          (event ~name:"tm-round" ~cat:"tm" ~ph:"i" ~ts:cycle ~tid:machine_tid
             [
               ("s", Json.Str "t");
               ( "args",
                 Json.Obj
                   [
                     ( "conflict_at",
                       match conflict_at with
                       | Some c -> Json.Int c
                       | None -> Json.Null );
                   ] );
             ])
      | Trace.Sent { cycle; src; dst } ->
        let q =
          match Hashtbl.find_opt pending_sent (src, dst) with
          | Some q -> q
          | None ->
            let q = Queue.create () in
            Hashtbl.add pending_sent (src, dst) q;
            q
        in
        Queue.push cycle q
      | Trace.Recvd { cycle; core; sender } -> (
        match Hashtbl.find_opt pending_sent (sender, core) with
        | Some q when not (Queue.is_empty q) ->
          let sent = Queue.pop q in
          flow ~name:"msg" ~ts_from:sent ~tid_from:sender ~ts_to:cycle
            ~tid_to:core
        | Some _ | None ->
          (* The matching Sent fell past the tracer's limit. *)
          incr culled_flows)
      | Trace.Serial_start { cycle; core } -> (
        match !last_conflict with
        | Some abort_cycle ->
          flow ~name:"tm-retry" ~ts_from:abort_cycle ~tid_from:machine_tid
            ~ts_to:cycle ~tid_to:core
        | None -> incr culled_flows))
    (Trace.events trace);
  (* Sent events whose Recvd fell past the limit: their arrows are culled
     too, so the footer still accounts for every recorded endpoint. *)
  Hashtbl.iter
    (fun _ q -> culled_flows := !culled_flows + Queue.length q)
    pending_sent;
  push cycles
    (event ~name:"mode" ~cat:"mode" ~ph:"E" ~ts:cycles ~tid:machine_tid []);
  let timed =
    List.stable_sort
      (fun (a, _) (b, _) -> compare a b)
      (List.rev !rev_events)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ List.map snd timed));
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          [
            ("n_cores", Json.Int n_cores);
            ("cycles", Json.Int cycles);
            ("dropped_events", Json.Int (Trace.dropped trace));
            ("culled_flows", Json.Int !culled_flows);
          ] );
    ]

let write ~path ~n_cores ~cycles trace =
  Json.write_file path (of_trace ~n_cores ~cycles trace)
