module Trace = Voltron_machine.Trace
module Inst = Voltron_isa.Inst

let mode_name = function
  | Inst.Coupled -> "coupled"
  | Inst.Decoupled -> "decoupled"

let event ~name ~cat ~ph ~ts ~tid extra =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("cat", Json.Str cat);
       ("ph", Json.Str ph);
       ("ts", Json.Int ts);
       ("pid", Json.Int 0);
       ("tid", Json.Int tid);
     ]
    @ extra)

let thread_name ~tid name =
  Json.Obj
    [
      ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let of_trace ~n_cores ~cycles trace =
  let machine_tid = n_cores in
  let meta =
    List.init n_cores (fun c -> thread_name ~tid:c (Printf.sprintf "core %d" c))
    @ [ thread_name ~tid:machine_tid "machine" ]
  in
  (* The machine starts decoupled: open that span before any event. *)
  let rev_events =
    ref
      [
        event ~name:(mode_name Inst.Decoupled) ~cat:"mode" ~ph:"B" ~ts:0
          ~tid:machine_tid [];
      ]
  in
  let push e = rev_events := e :: !rev_events in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Issue { cycle; core; pc; ops } ->
        push
          (event
             ~name:(Printf.sprintf "issue @%d" pc)
             ~cat:"issue" ~ph:"X" ~ts:cycle ~tid:core
             [
               ("dur", Json.Int 1);
               ( "args",
                 Json.Obj [ ("pc", Json.Int pc); ("ops", Json.Int ops) ] );
             ])
      | Trace.Stall { cycle; core; kind } ->
        push
          (event ~name:(Trace.stall_name kind) ~cat:"stall" ~ph:"i" ~ts:cycle
             ~tid:core
             [ ("s", Json.Str "t") ])
      | Trace.Mode_change { cycle; mode } ->
        push (event ~name:"mode" ~cat:"mode" ~ph:"E" ~ts:cycle ~tid:machine_tid []);
        push
          (event ~name:(mode_name mode) ~cat:"mode" ~ph:"B" ~ts:cycle
             ~tid:machine_tid [])
      | Trace.Spawned { cycle; by; target } ->
        push
          (event ~name:"spawn" ~cat:"spawn" ~ph:"i" ~ts:cycle ~tid:by
             [
               ("s", Json.Str "t");
               ("args", Json.Obj [ ("target", Json.Int target) ]);
             ])
      | Trace.Tm_round { cycle; conflict_at } ->
        push
          (event ~name:"tm-round" ~cat:"tm" ~ph:"i" ~ts:cycle ~tid:machine_tid
             [
               ("s", Json.Str "t");
               ( "args",
                 Json.Obj
                   [
                     ( "conflict_at",
                       match conflict_at with
                       | Some c -> Json.Int c
                       | None -> Json.Null );
                   ] );
             ]))
    (Trace.events trace);
  push (event ~name:"mode" ~cat:"mode" ~ph:"E" ~ts:cycles ~tid:machine_tid []);
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ List.rev !rev_events));
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          [
            ("n_cores", Json.Int n_cores);
            ("cycles", Json.Int cycles);
            ("dropped_events", Json.Int (Trace.dropped trace));
          ] );
    ]

let write ~path ~n_cores ~cycles trace =
  Json.write_file path (of_trace ~n_cores ~cycles trace)
