module Table = Voltron_util.Table

type seg = {
  g_core : int;
  g_kind : Blame.kind;
  g_peer : int;
  g_region : int;
  g_mode : int;
  g_redo : bool;
  g_from : int;
  g_to : int;
}

type t = { p_total : int; p_segs : seg list; p_blame : Blame.t }

let seg_len g = g.g_to - g.g_from + 1

(* Backward walk over the blame intervals. The walk keeps an invariant: the
   cycles (tt, T] are already attributed, as segments whose spans tile that
   range exactly; each step either consumes [x .. tt] on the current core
   (extending the tiling leftward) or hops to the blamed peer / message
   sender at the same tt without consuming. Hops are bounded by a counter
   (a cycle of mutually-waiting cores forces consumption), so tt strictly
   decreases and the finished path's length equals the run's cycle count by
   construction — the reconciliation invariant is structural, not a
   best-effort sum. *)
let compute b =
  let n = Blame.n_cores b in
  let total = Blame.cycles b in
  let ivs = Array.init n (Blame.intervals b) in
  let dvs = Array.init n (Blame.deliveries b) in
  let find_iv c tt =
    let a = ivs.(c) in
    let lo = ref 0 and hi = ref (Array.length a - 1) in
    let found = ref None in
    while !found = None && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let iv = a.(mid) in
      if tt < iv.Blame.iv_from then hi := mid - 1
      else if tt > iv.Blame.iv_to then lo := mid + 1
      else found := Some iv
    done;
    match !found with
    | Some iv -> iv
    | None ->
      failwith
        (Printf.sprintf
           "Critpath.compute: no blame interval covers cycle %d on core %d" tt
           c)
  in
  (* First delivery to [c] at or after [tt]; the message whose arrival ended
     (or will end) the wait that covers [tt]. *)
  let find_dv c ~src ~start tt =
    let a = dvs.(c) in
    let lo = ref 0 and hi = ref (Array.length a) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid).Blame.dv_cycle < tt then lo := mid + 1 else hi := mid
    done;
    let rec scan i =
      if i >= Array.length a then None
      else
        let d = a.(i) in
        if (src < 0 || d.Blame.dv_src = src) && ((not start) || d.Blame.dv_start)
        then Some d
        else scan (i + 1)
    in
    scan !lo
  in
  let segs = ref [] in
  let push ?peer c (iv : Blame.interval) from_ upto =
    segs :=
      {
        g_core = c;
        g_kind = iv.Blame.iv_kind;
        g_peer = (match peer with Some p -> p | None -> iv.Blame.iv_blame);
        g_region = iv.Blame.iv_region;
        g_mode = iv.Blame.iv_mode;
        g_redo = iv.Blame.iv_redo;
        g_from = from_;
        g_to = upto;
      }
      :: !segs
  in
  let rec walk c tt jumps =
    if tt >= 1 then begin
      let iv = find_iv c tt in
      let consume_all ?peer () =
        push ?peer c iv iv.Blame.iv_from tt;
        walk c (iv.Blame.iv_from - 1) 0
      in
      match iv.Blame.iv_kind with
      | Blame.K_net_wait | Blame.K_spawn -> (
        let start = iv.Blame.iv_kind = Blame.K_spawn in
        match find_dv c ~src:iv.Blame.iv_blame ~start tt with
        | Some d ->
          let f = d.Blame.dv_sent in
          if f + 1 <= tt then begin
            (* The message was in flight at tt: charge the wire span and
               continue on the sender just before it. *)
            let x = max iv.Blame.iv_from (f + 1) in
            push ~peer:d.Blame.dv_src c iv x tt;
            walk d.Blame.dv_src (x - 1) 0
          end
          else if jumps < n then
            (* Not even sent yet at tt — the sender is the critical one. *)
            walk d.Blame.dv_src tt (jumps + 1)
          else consume_all ~peer:d.Blame.dv_src ()
        | None -> consume_all ())
      | Blame.K_tm_commit | Blame.K_tm_serial | Blame.K_barrier
      | Blame.K_backpressure | Blame.K_latch_wait ->
        if iv.Blame.iv_blame >= 0 && iv.Blame.iv_blame <> c && jumps < n then
          walk iv.Blame.iv_blame tt (jumps + 1)
        else consume_all ()
      | Blame.K_compute | Blame.K_redo | Blame.K_bcast_wait
      | Blame.K_miss_fill | Blame.K_ifetch | Blame.K_operand
      | Blame.K_lockstep | Blame.K_fault | Blame.K_drain ->
        consume_all ()
    end
  in
  (* Start on the core that computed last — the drain tail everyone else
     spends halted belongs on the path that actually finished the work. *)
  let last_busy c =
    let a = ivs.(c) in
    let rec go i =
      if i < 0 then -1
      else
        match a.(i).Blame.iv_kind with
        | Blame.K_compute | Blame.K_redo -> a.(i).Blame.iv_to
        | _ -> go (i - 1)
    in
    go (Array.length a - 1)
  in
  let start_core = ref 0 and best = ref (-1) in
  for c = 0 to n - 1 do
    let lb = last_busy c in
    if lb > !best then begin
      best := lb;
      start_core := c
    end
  done;
  walk !start_core total 0;
  { p_total = total; p_segs = !segs; p_blame = b }

let total t = t.p_total
let segments t = t.p_segs
let length t = List.fold_left (fun acc g -> acc + seg_len g) 0 t.p_segs

(* What-if: scale the per-hop network cost by [scale] (0 = free wires).
   Every wire span on the path shrinks by the transit reduction of its one
   message, capped by the span actually on the path. *)
let whatif_net t ~scale =
  let hops = Blame.hops t.p_blame and hc = Blame.hop_cost t.p_blame in
  let saving = ref 0. in
  List.iter
    (fun g ->
      match g.g_kind with
      | Blame.K_net_wait | Blame.K_spawn | Blame.K_bcast_wait ->
        if g.g_peer >= 0 then begin
          let reduction =
            (1. -. scale) *. float_of_int (hops g.g_peer g.g_core * hc)
          in
          saving :=
            !saving
            +. Float.min (float_of_int (seg_len g)) (Float.max 0. reduction)
        end
      | _ -> ())
    t.p_segs;
  max 1 (t.p_total - int_of_float (!saving +. 0.5))

(* What-if: no TM conflicts. Serial re-execution work and waiting for the
   serial token both vanish from the path. *)
let whatif_tm t =
  let saving =
    List.fold_left
      (fun acc g ->
        if g.g_redo || g.g_kind = Blame.K_tm_serial then acc + seg_len g
        else acc)
      0 t.p_segs
  in
  max 1 (t.p_total - saving)

type row = {
  b_kind : Blame.kind;
  b_region : string;
  b_mode : int;
  b_core : int;
  b_peer : int;
  b_cycles : int;
}

type whatif = { w_class : string; w_predicted : int; w_speedup : float }

type report = {
  r_bench : string;
  r_strategy : string;
  r_n_cores : int;
  r_cycles : int;
  r_path : int;
  r_rows : row list;
  r_whatif : whatif list;
  r_tm : (string * int * int * int) list;
  r_wait : int array array;
  r_msgs : int array array;
}

let speedup ~cycles predicted =
  float_of_int cycles /. float_of_int (max 1 predicted)

let report ~bench ~strategy ?(net_scale = 0.) t =
  let names = Blame.region_names t.p_blame in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun g ->
      let key = (g.g_kind, g.g_region, g.g_mode, g.g_core, g.g_peer) in
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (prev + seg_len g))
    t.p_segs;
  let rows =
    Hashtbl.fold
      (fun (k, r, m, c, p) cyc acc ->
        {
          b_kind = k;
          b_region = names.(r);
          b_mode = m;
          b_core = c;
          b_peer = p;
          b_cycles = cyc;
        }
        :: acc)
      tbl []
    |> List.sort (fun x y ->
           match compare y.b_cycles x.b_cycles with
           | 0 ->
             compare
               (Blame.kind_label x.b_kind, x.b_region, x.b_mode, x.b_core)
               (Blame.kind_label y.b_kind, y.b_region, y.b_mode, y.b_core)
           | c -> c)
  in
  let wf label predicted =
    {
      w_class = label;
      w_predicted = predicted;
      w_speedup = speedup ~cycles:t.p_total predicted;
    }
  in
  {
    r_bench = bench;
    r_strategy = strategy;
    r_n_cores = Blame.n_cores t.p_blame;
    r_cycles = t.p_total;
    r_path = length t;
    r_rows = rows;
    r_whatif =
      [
        wf
          (Printf.sprintf "net-hop-cost x%g" net_scale)
          (whatif_net t ~scale:net_scale);
        wf "tm-aborts -> 0" (whatif_tm t);
      ];
    r_tm = Blame.tm_regions t.p_blame;
    r_wait = Blame.wait_matrix t.p_blame;
    r_msgs = Blame.msgs_matrix t.p_blame;
  }

let mode_label = function 0 -> "coupled" | _ -> "decoupled"

let pp_report ?(top = 12) ppf r =
  Format.fprintf ppf "bench %s  strategy %s  cores %d@." r.r_bench r.r_strategy
    r.r_n_cores;
  Format.fprintf ppf "critical path %d cycles over a %d-cycle run%s@." r.r_path
    r.r_cycles
    (if r.r_path = r.r_cycles then " (reconciled exact)"
     else " (RECONCILIATION MISMATCH)");
  let shown = List.filteri (fun i _ -> i < top) r.r_rows in
  let body =
    List.map
      (fun b ->
        [
          Blame.kind_label b.b_kind;
          b.b_region;
          mode_label b.b_mode;
          (if b.b_peer >= 0 then Printf.sprintf "c%d<-c%d" b.b_core b.b_peer
           else Printf.sprintf "c%d" b.b_core);
          string_of_int b.b_cycles;
          Table.cell_pct (100. *. float_of_int b.b_cycles
                          /. float_of_int (max 1 r.r_cycles));
        ])
      shown
  in
  Format.fprintf ppf "%s@."
    (Table.render
       ~header:[ "edge"; "region"; "mode"; "cores"; "cycles"; "share" ]
       body);
  if List.length r.r_rows > top then
    Format.fprintf ppf "(%d further rows; --top raises the cut)@."
      (List.length r.r_rows - top);
  Format.fprintf ppf "what-if:@.";
  List.iter
    (fun w ->
      Format.fprintf ppf "  %-20s predicted %d cycles (speedup x%.3f)@."
        w.w_class w.w_predicted w.w_speedup)
    r.r_whatif;
  if r.r_tm <> [] then begin
    Format.fprintf ppf "TM regions:@.";
    Format.fprintf ppf "%s@."
      (Table.render
         ~header:[ "region"; "begins"; "commits"; "aborts" ]
         (List.map
            (fun (name, b, c, a) ->
              [ name; string_of_int b; string_of_int c; string_of_int a ])
            r.r_tm))
  end;
  let any_wait = Array.exists (Array.exists (fun x -> x > 0)) r.r_wait in
  if any_wait then begin
    Format.fprintf ppf "cross-core wait cycles (row waits on column):@.";
    let header =
      "" :: List.init r.r_n_cores (fun c -> Printf.sprintf "c%d" c)
    in
    let body =
      List.init r.r_n_cores (fun c ->
          Printf.sprintf "c%d" c
          :: List.init r.r_n_cores (fun s -> string_of_int r.r_wait.(c).(s)))
    in
    Format.fprintf ppf "%s@." (Table.render ~header body)
  end

let matrix_to_json m =
  Json.List
    (Array.to_list
       (Array.map
          (fun row ->
            Json.List (Array.to_list (Array.map (fun x -> Json.Int x) row)))
          m))

let report_to_json r =
  let row_json b =
    Json.Obj
      [
        ("edge", Json.Str (Blame.kind_label b.b_kind));
        ("region", Json.Str b.b_region);
        ("mode", Json.Str (mode_label b.b_mode));
        ("core", Json.Int b.b_core);
        ("peer", Json.Int b.b_peer);
        ("cycles", Json.Int b.b_cycles);
      ]
  in
  let whatif_json w =
    Json.Obj
      [
        ("class", Json.Str w.w_class);
        ("predicted_cycles", Json.Int w.w_predicted);
        ("speedup", Json.Float w.w_speedup);
      ]
  in
  let tm_json (name, b, c, a) =
    Json.Obj
      [
        ("region", Json.Str name);
        ("begins", Json.Int b);
        ("commits", Json.Int c);
        ("aborts", Json.Int a);
      ]
  in
  Json.Obj
    [
      ("bench", Json.Str r.r_bench);
      ("strategy", Json.Str r.r_strategy);
      ("n_cores", Json.Int r.r_n_cores);
      ("cycles", Json.Int r.r_cycles);
      ("critical_path", Json.Int r.r_path);
      ("blame", Json.List (List.map row_json r.r_rows));
      ("whatif", Json.List (List.map whatif_json r.r_whatif));
      ("tm_regions", Json.List (List.map tm_json r.r_tm));
      ("wait_matrix", matrix_to_json r.r_wait);
      ("msgs_matrix", matrix_to_json r.r_msgs);
    ]

let report_of_json j =
  let ( let* ) x f = match x with Ok v -> f v | Error _ as e -> e in
  let field name conv j =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "blame report: bad or missing %S" name)
  in
  let list_field name conv j =
    let* l = field name Json.to_list_opt j in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: rest -> (
        match conv x with
        | Ok v -> go (v :: acc) rest
        | Error _ as e -> e)
    in
    go [] l
  in
  let int_matrix name j =
    let* rows =
      list_field name
        (fun row ->
          match Json.to_list_opt row with
          | None -> Error "blame report: matrix row not a list"
          | Some xs ->
            let ints = List.filter_map Json.to_int_opt xs in
            if List.length ints = List.length xs then
              Ok (Array.of_list ints)
            else Error "blame report: matrix entry not an int")
        j
    in
    Ok (Array.of_list rows)
  in
  let mode_of_label = function
    | "coupled" -> Some 0
    | "decoupled" -> Some 1
    | _ -> None
  in
  let* bench = field "bench" Json.to_string_opt j in
  let* strategy = field "strategy" Json.to_string_opt j in
  let* n_cores = field "n_cores" Json.to_int_opt j in
  let* cycles = field "cycles" Json.to_int_opt j in
  let* path = field "critical_path" Json.to_int_opt j in
  let* rows =
    list_field "blame"
      (fun b ->
        let* kind =
          field "edge" (fun x -> Option.bind (Json.to_string_opt x) Blame.kind_of_label) b
        in
        let* region = field "region" Json.to_string_opt b in
        let* mode =
          field "mode" (fun x -> Option.bind (Json.to_string_opt x) mode_of_label) b
        in
        let* core = field "core" Json.to_int_opt b in
        let* peer = field "peer" Json.to_int_opt b in
        let* cyc = field "cycles" Json.to_int_opt b in
        Ok
          {
            b_kind = kind;
            b_region = region;
            b_mode = mode;
            b_core = core;
            b_peer = peer;
            b_cycles = cyc;
          })
      j
  in
  let* whatif =
    list_field "whatif"
      (fun w ->
        let* cls = field "class" Json.to_string_opt w in
        let* predicted = field "predicted_cycles" Json.to_int_opt w in
        (* Recomputed rather than parsed: float text is not an exact
           roundtrip, the two ints are. *)
        Ok
          {
            w_class = cls;
            w_predicted = predicted;
            w_speedup = speedup ~cycles predicted;
          })
      j
  in
  let* tm =
    list_field "tm_regions"
      (fun x ->
        let* name = field "region" Json.to_string_opt x in
        let* b = field "begins" Json.to_int_opt x in
        let* c = field "commits" Json.to_int_opt x in
        let* a = field "aborts" Json.to_int_opt x in
        Ok (name, b, c, a))
      j
  in
  let* wait = int_matrix "wait_matrix" j in
  let* msgs = int_matrix "msgs_matrix" j in
  Ok
    {
      r_bench = bench;
      r_strategy = strategy;
      r_n_cores = n_cores;
      r_cycles = cycles;
      r_path = path;
      r_rows = rows;
      r_whatif = whatif;
      r_tm = tm;
      r_wait = wait;
      r_msgs = msgs;
    }
