module Machine = Voltron_machine.Machine
module Inst = Voltron_isa.Inst

let diagnosis_to_json (d : Machine.diagnosis) =
  Json.Obj
    [
      ("cycle", Json.Int d.Machine.d_cycle);
      ("last_progress", Json.Int d.Machine.d_last_progress);
      ("mode", Json.Str (Format.asprintf "%a" Inst.pp_mode d.Machine.d_mode));
      ( "cores",
        Json.List
          (Array.to_list d.Machine.d_cores
          |> List.map (fun (c : Machine.core_diag) ->
                 Json.Obj
                   [
                     ("core", Json.Int c.Machine.d_core);
                     ("pc", Json.Int c.Machine.d_pc);
                     ( "wait",
                       match c.Machine.d_wait with
                       | Some w -> Json.Str (Machine.wait_to_string w)
                       | None -> Json.Null );
                     ("bundle", Json.Str c.Machine.d_bundle);
                   ])) );
      ( "queue",
        Json.List
          (List.map
             (fun (src, dst, state) ->
               Json.Obj
                 [
                   ("src", Json.Int src);
                   ("dst", Json.Int dst);
                   ("state", Json.Str state);
                 ])
             d.Machine.d_queue) );
      ( "blame",
        match d.Machine.d_blame with
        | Some (w, c) -> Json.List [ Json.Int w; Json.Int c ]
        | None -> Json.Null );
    ]
