(** Differential fuzzing campaign: generate, run the contract, shrink,
    write reproducers.

    Each generated program is rendered to concrete VC syntax and
    re-parsed before running — so every finding is guaranteed to
    reproduce from its on-disk [.vc] form, and the print/reparse path is
    itself under test. The failure predicate is
    {!Voltron.Run.differential}: oracle checksum agreement, clean static
    checker, fast-forward cycle equality and watchdog-free termination
    over a strategy x core matrix. *)

type finding = {
  f_campaign_seed : int;  (** the campaign's [~seed] *)
  f_index : int;  (** cell index within the campaign ([~index] + offset) *)
  f_seed : int;
      (** derived generator seed for this cell:
          [Rng.next (Rng.split (Rng.create f_campaign_seed) f_index)] *)
  f_class : string;
      (** {!Voltron.Run.divergence_class} of the first divergence, or
          ["crash: <exn>"] when the toolchain raised *)
  f_case : Voltron.Run.diff_case option;  (** the first diverging case *)
  f_detail : string;  (** human-readable description of the divergence *)
  f_original : Voltron_lang.Ast.program;
  f_minimized : Voltron_lang.Ast.program;  (** = original when not minimized *)
}

type report = {
  r_programs : int;  (** programs generated and run *)
  r_runs : int;  (** total simulations across all differentials *)
  r_warnings : int;  (** static-checker warnings seen (informational) *)
  r_findings : finding list;
}

val first_failure :
  ?strategies:Voltron_compiler.Select.choice list ->
  ?cores:int list ->
  ?coherence:Voltron_mem.Coherence.protocol list ->
  ?miscompile:(Voltron_compiler.Driver.compiled -> Voltron_compiler.Driver.compiled) ->
  ?ff_tweak:(Voltron_machine.Config.t -> Voltron_machine.Config.t) ->
  ?dir_tweak:(Voltron_machine.Config.t -> Voltron_machine.Config.t) ->
  ?sanitize:Voltron_sanity.Sanity.policy ->
  Voltron_lang.Ast.program ->
  (string * Voltron.Run.diff_case option * string) option * int * int
(** Render, re-parse, elaborate and run the differential contract.
    Returns [(failure, runs, warnings)] where [failure] is
    [Some (class, case, detail)] for the first divergence or crash.
    [coherence] restricts the coherence axis (default: snoop and
    directory both, {!Voltron.Run.default_coherence}). [miscompile],
    [ff_tweak], [dir_tweak] and [sanitize] are threaded to
    {!Voltron.Run.differential} (the harness's own self-tests inject
    deliberate miscompiles through the first three — [dir_tweak] perturbs
    only directory-backend simulations; [sanitize] attaches the runtime
    invariant sanitizer to every simulation, adding the ["sanitizer"]
    divergence class). *)

val minimize :
  ?strategies:Voltron_compiler.Select.choice list ->
  ?cores:int list ->
  ?coherence:Voltron_mem.Coherence.protocol list ->
  ?miscompile:(Voltron_compiler.Driver.compiled -> Voltron_compiler.Driver.compiled) ->
  ?ff_tweak:(Voltron_machine.Config.t -> Voltron_machine.Config.t) ->
  ?dir_tweak:(Voltron_machine.Config.t -> Voltron_machine.Config.t) ->
  ?sanitize:Voltron_sanity.Sanity.policy ->
  cls:string ->
  ?case:Voltron.Run.diff_case ->
  Voltron_lang.Ast.program ->
  Voltron_lang.Ast.program
(** Shrink while the program still fails with class [cls]. When [case] is
    given, only that strategy/core/coherence cell is re-run per candidate
    (much faster; the corpus replay test re-confirms the full matrix). *)

val run :
  ?strategies:Voltron_compiler.Select.choice list ->
  ?cores:int list ->
  ?coherence:Voltron_mem.Coherence.protocol list ->
  ?sanitize:Voltron_sanity.Sanity.policy ->
  ?size:int ->
  ?minimize_findings:bool ->
  ?on_program:(seed:int -> Voltron_lang.Ast.program -> unit) ->
  ?log:(string -> unit) ->
  ?jobs:int ->
  ?index:int ->
  seed:int ->
  count:int ->
  unit ->
  report
(** Run [count] programs at campaign cells [index, index + count)
    (default [index = 0]). Cell [k]'s generator seed is derived by
    {!Voltron_util.Rng.split} from the campaign [seed] and [k] alone, so
    a single finding regenerates with [~seed ~index:k ~count:1] and the
    cell set is independent of [jobs] and chunking. [on_program] sees
    every generated program before it runs (the CLI's [--emit] hook);
    under [jobs > 1] it is called concurrently from worker domains, so it
    must be thread-safe (writing one file per seed is fine). [log]
    receives one-line progress and finding messages, always in cell-index
    order — the transcript is byte-identical for every [jobs] value.
    [jobs] (default 1) fans the cells out on the work-stealing pool. *)

val write_reproducer : dir:string -> finding -> string
(** Write the minimized program as
    [dir/fuzz_s<campaign seed>_i<index>_<class>.vc] with a triage header
    (campaign seed, cell index, generator seed, class, diverging case,
    regeneration command); returns the path. Creates [dir] if missing. *)
