module Ast = Voltron_lang.Ast
module Frontend = Voltron_lang.Frontend
module Run = Voltron.Run
module Rng = Voltron_util.Rng
module Pool = Voltron_pool.Pool

type finding = {
  f_campaign_seed : int;
  f_index : int;
  f_seed : int;
  f_class : string;
  f_case : Run.diff_case option;
  f_detail : string;
  f_original : Ast.program;
  f_minimized : Ast.program;
}

type report = {
  r_programs : int;
  r_runs : int;
  r_warnings : int;
  r_findings : finding list;
}

let crash_class e =
  "crash: "
  ^ (match e with
    | Frontend.Error _ -> "frontend"
    | Voltron_ir.Interp.Step_limit_exceeded -> "step-limit"
    | Invalid_argument _ -> "invalid-argument"
    | Failure _ -> "failure"
    | _ -> Printexc.to_string e)

(* Findings must reproduce from their on-disk form: go through print ->
   parse -> elaborate, never straight from the AST. *)
let elaborate (p : Ast.program) =
  Frontend.parse_string ~name:p.Ast.prog_name (Gen.render p)

let first_failure ?strategies ?cores ?coherence ?miscompile ?ff_tweak
    ?dir_tweak ?sanitize (p : Ast.program) =
  match elaborate p with
  | exception e -> (Some (crash_class e, None, Printexc.to_string e), 0, 0)
  | hir -> (
    match
      Run.differential ?strategies ?cores ?coherence ?miscompile ?ff_tweak
        ?dir_tweak ?sanitize hir
    with
    | exception e -> (Some (crash_class e, None, Printexc.to_string e), 0, 0)
    | d -> (
      match d.Run.diff_divergences with
      | [] -> (None, d.Run.diff_runs, d.Run.diff_warnings)
      | dv :: _ ->
        let case =
          match dv with
          | Run.Non_completion { nc_case; _ } -> Some nc_case
          | Run.Checksum_mismatch { cm_case; _ } -> Some cm_case
          | Run.Checker_rejected { cr_case; _ } -> Some cr_case
          | Run.Ff_cycle_mismatch { fc_case; _ } -> Some fc_case
          | Run.Sanity_violation { sv_case; _ } -> Some sv_case
        in
        ( Some (Run.divergence_class dv, case, Run.divergence_to_string dv),
          d.Run.diff_runs,
          d.Run.diff_warnings )))

let minimize ?strategies ?cores ?coherence ?miscompile ?ff_tweak ?dir_tweak
    ?sanitize ~cls ?case p =
  (* Re-running just the diverging case per candidate — its strategy, core
     count and coherence backend — keeps shrinking cheap; the class must
     be preserved exactly. *)
  let strategies, cores, coherence =
    match case with
    | Some c ->
      (Some [ c.Run.d_strategy ], Some [ c.Run.d_cores ],
       Some [ c.Run.d_coherence ])
    | None -> (strategies, cores, coherence)
  in
  let keep candidate =
    match
      first_failure ?strategies ?cores ?coherence ?miscompile ?ff_tweak
        ?dir_tweak ?sanitize candidate
    with
    | Some (cls', _, _), _, _ -> cls' = cls
    | None, _, _ -> false
  in
  if keep p then Shrink.shrink ~keep p else p

(* One campaign cell = generate, run the contract, shrink. Cells touch no
   shared state — each derives its generator seed by {!Rng.split} from
   the campaign seed (a pure function of (campaign seed, cell index), so
   cell k is the same program at any [jobs] and any [count] covering it)
   — which makes them safe to fan out on the pool. All log lines a cell
   produces are buffered and emitted through the pool's ordered
   completion frontier, so progress counters and finding messages arrive
   in cell-index order and the transcript is byte-identical for every
   [jobs] value. *)
let run ?strategies ?cores ?coherence ?sanitize ?(size = 24)
    ?(minimize_findings = true) ?(on_program = fun ~seed:_ _ -> ())
    ?(log = ignore) ?(jobs = 1) ?(index = 0) ~seed ~count () =
  let rng = Rng.create seed in
  let cell k =
    let idx = index + k in
    let s = Rng.next (Rng.split rng idx) in
    let p = Gen.program ~size ~seed:s () in
    on_program ~seed:s p;
    let lines = ref [] in
    let say msg = lines := msg :: !lines in
    let failure, r, w = first_failure ?strategies ?cores ?coherence ?sanitize p in
    let finding =
      match failure with
      | None -> None
      | Some (cls, case, detail) ->
        say (Printf.sprintf "seed %d: %s divergence — %s" s cls detail);
        let minimized =
          if minimize_findings then begin
            let m = minimize ?strategies ?cores ?coherence ?sanitize ~cls ?case p in
            say
              (Printf.sprintf "seed %d: shrunk %d -> %d source lines" s
                 (Gen.source_lines p) (Gen.source_lines m));
            m
          end
          else p
        in
        Some
          {
            f_campaign_seed = seed;
            f_index = idx;
            f_seed = s;
            f_class = cls;
            f_case = case;
            f_detail = detail;
            f_original = p;
            f_minimized = minimized;
          }
    in
    (r, w, finding, List.rev !lines)
  in
  let runs = ref 0 and warnings = ref 0 and findings = ref [] in
  let emit k (r, w, finding, lines) =
    runs := !runs + r;
    warnings := !warnings + w;
    (match finding with None -> () | Some f -> findings := f :: !findings);
    List.iter log lines;
    if (k + 1) mod 25 = 0 then
      log
        (Printf.sprintf "%d/%d programs, %d simulations, %d finding(s)" (k + 1)
           count !runs
           (List.length !findings))
  in
  ignore (Pool.parallel_map_emit ~jobs ~emit cell (Array.init count Fun.id));
  {
    r_programs = count;
    r_runs = !runs;
    r_warnings = !warnings;
    r_findings = List.rev !findings;
  }

let sanitize_class cls =
  String.map (fun c -> if c = ' ' || c = ':' || c = '/' then '-' else c) cls

let write_reproducer ~dir f =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path =
    Filename.concat dir
      (Printf.sprintf "fuzz_s%d_i%d_%s.vc" f.f_campaign_seed f.f_index
         (sanitize_class f.f_class))
  in
  let oc = open_out path in
  Printf.fprintf oc
    "// voltron_gen reproducer — failure class: %s\n\
     // campaign seed %d, cell %d (generator seed %d)%s\n\
     // %s\n\
     // regenerate the unshrunk original: voltron_sim fuzz --seed %d --index \
     %d --count 1\n\
     %s"
    f.f_class f.f_campaign_seed f.f_index f.f_seed
    (match f.f_case with
    | Some c ->
      Printf.sprintf ", first diverging case: %s on %d cores, %s coherence"
        (Run.choice_name c.Run.d_strategy)
        c.Run.d_cores
        (Voltron_mem.Coherence.protocol_name c.Run.d_coherence)
    | None -> "")
    (String.concat " " (String.split_on_char '\n' f.f_detail))
    f.f_campaign_seed f.f_index (Gen.render f.f_minimized);
  close_out oc;
  path
