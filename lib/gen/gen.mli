(** Seeded random VC program generator.

    Builds typed {!Voltron_lang.Ast} programs by construction — never by
    rejection — honouring every elaboration rule the front end enforces:
    scalars are region-local and lexically scoped, loop variables are
    never assignment targets, arrays and scalars are never confused, and
    every array subscript is provably in bounds (array sizes are powers
    of two; subscripts are either mask-anded or affine forms of a loop
    variable whose static range fits the array). Every loop terminates:
    [for] limits are constants read once, and every [do]/[while] counts a
    reserved scalar down to zero.

    The statement mix deliberately steers programs into the compiler's
    ILP/TLP/LLP territory: straight-line arithmetic blocks, bounded loop
    nests with affine and mask-scrambled (non-affine) subscripts,
    reduction ([s = s + a\[i\]]) and recurrence ([x = x*c + a\[i\]])
    idioms, [if]/ternary control flow, and cross-region data flow through
    arrays only.

    Equal seeds generate equal programs (all randomness flows through
    {!Voltron_util.Rng}). *)

val program : ?size:int -> seed:int -> unit -> Voltron_lang.Ast.program
(** Generate one program. [size] is the approximate statement budget
    (default 24). The program is named ["fuzz_s<seed>"]. *)

val render : Voltron_lang.Ast.program -> string
(** Concrete VC syntax (via {!Voltron_lang.Ast.pp_program}) — what the
    corpus files contain, and what the harness re-parses so that every
    finding reproduces from its on-disk form. *)

val source_lines : Voltron_lang.Ast.program -> int
(** Non-blank lines of {!render} — the minimality measure shrinking
    reports. *)
