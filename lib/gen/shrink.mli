(** Greedy structural shrinking of VC programs.

    [shrink ~keep p] repeatedly applies the single smallest-step
    reductions — drop a region, drop an array declaration, delete a
    statement, replace an [if] by one branch, unroll a loop to its first
    iteration's scope ([for] becomes a declaration plus its body,
    [do]/[while] becomes its body), halve a constant loop limit, zero a
    right-hand side — keeping a candidate only when [keep] still holds
    (candidates that no longer elaborate simply fail [keep]). Greedy
    first-improvement with restart, until a fixpoint: the result still
    satisfies [keep] and no single reduction does.

    [keep] must be true of [p] itself; the fuzzing campaign instantiates
    it as "the differential harness still reports the same failure
    class". *)

val shrink :
  ?max_rounds:int ->
  keep:(Voltron_lang.Ast.program -> bool) ->
  Voltron_lang.Ast.program ->
  Voltron_lang.Ast.program
(** [max_rounds] caps accepted reductions (default 2000) as a safety net
    against a pathological [keep]. *)
