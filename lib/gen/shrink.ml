module Ast = Voltron_lang.Ast

let nopos = { Ast.line = 0; col = 0 }

(* All single-step reductions of one statement that keep it a single
   statement (recursive edits inside sub-blocks included). *)
let rec stmt_variants (s : Ast.stmt) : Ast.stmt list =
  match s with
  | Ast.Decl (x, e, p) ->
    if e = Ast.Int 0 then [] else [ Ast.Decl (x, Ast.Int 0, p) ]
  | Ast.Assign (x, e, p) ->
    if e = Ast.Int 0 then [] else [ Ast.Assign (x, Ast.Int 0, p) ]
  | Ast.Store (a, i, v, p) ->
    (if v = Ast.Int 0 then [] else [ Ast.Store (a, i, Ast.Int 0, p) ])
    @ if i = Ast.Int 0 then [] else [ Ast.Store (a, Ast.Int 0, v, p) ]
  | Ast.If (c, t, e) ->
    List.map (fun t' -> Ast.If (c, t', e)) (block_variants t)
    @ List.map (fun e' -> Ast.If (c, t, e')) (block_variants e)
  | Ast.For ({ limit; body; _ } as f) ->
    let limits =
      match limit with
      | Ast.Int l when l > 1 ->
        [ Ast.For { f with limit = Ast.Int (l / 2) }; Ast.For { f with limit = Ast.Int 1 } ]
      | _ -> []
    in
    limits @ List.map (fun body -> Ast.For { f with body }) (block_variants body)
  | Ast.DoWhile (body, c) ->
    List.map (fun body' -> Ast.DoWhile (body', c)) (block_variants body)

(* Reductions that replace one statement by a (possibly empty) sequence:
   deletion, branch selection, loop body inlining. Inlined loop bodies
   keep their variable bindings legal: the loop variable becomes an
   ordinary declaration. *)
and stmt_inlines (s : Ast.stmt) : Ast.block list =
  let delete = [ [] ] in
  match s with
  | Ast.Decl _ | Ast.Assign _ | Ast.Store _ -> delete
  | Ast.If (_, t, e) -> delete @ [ t; e ]
  | Ast.For { var; init; body; _ } -> delete @ [ Ast.Decl (var, init, nopos) :: body ]
  | Ast.DoWhile (body, _) -> delete @ [ body ]

and block_variants (b : Ast.block) : Ast.block list =
  match b with
  | [] -> []
  | s :: rest ->
    List.map (fun repl -> repl @ rest) (stmt_inlines s)
    @ List.map (fun s' -> s' :: rest) (stmt_variants s)
    @ List.map (fun rest' -> s :: rest') (block_variants rest)

let program_variants (p : Ast.program) : Ast.program list =
  let drop_regions =
    List.mapi
      (fun k _ ->
        { p with Ast.regions = List.filteri (fun j _ -> j <> k) p.Ast.regions })
      p.Ast.regions
  in
  let drop_decls =
    List.mapi
      (fun k _ -> { p with Ast.decls = List.filteri (fun j _ -> j <> k) p.Ast.decls })
      p.Ast.decls
  in
  let region_edits =
    List.concat
      (List.mapi
         (fun k (r : Ast.region) ->
           List.map
             (fun body ->
               {
                 p with
                 Ast.regions =
                   List.mapi
                     (fun j rj -> if j = k then { r with Ast.reg_body = body } else rj)
                     p.Ast.regions;
               })
             (block_variants r.Ast.reg_body))
         p.Ast.regions)
  in
  drop_regions @ drop_decls @ region_edits

let shrink ?(max_rounds = 2000) ~keep p =
  let rec go p rounds =
    if rounds >= max_rounds then p
    else
      match List.find_opt keep (program_variants p) with
      | Some p' -> go p' (rounds + 1)
      | None -> p
  in
  go p 0
