module Ast = Voltron_lang.Ast
module Rng = Voltron_util.Rng

let nopos = { Ast.line = 0; col = 0 }

(* What a name means while we generate — mirrors the elaborator's
   bindings so every construction is legal by design. *)
type binding =
  | Scalar of string  (* assignable *)
  | Counter of string  (* do/while countdown: readable, never reassigned *)
  | Loop of string * int option
      (* loop variable; [Some l] when its values provably lie in [0, l) *)

let binding_name = function Scalar n | Counter n | Loop (n, _) -> n

type t = {
  rng : Rng.t;
  arrays : (string * int) array;  (* sizes are powers of two *)
  mutable fresh : int;
}

let fresh_var t prefix =
  t.fresh <- t.fresh + 1;
  Printf.sprintf "%s%d" prefix t.fresh

let readables env = List.map binding_name env

let assignables env =
  List.filter_map (function Scalar n -> Some n | _ -> None) env

(* --- Expressions ----------------------------------------------------------- *)

let binops =
  [|
    Ast.Add; Ast.Add; Ast.Sub; Ast.Sub; Ast.Mul; Ast.Div; Ast.Rem; Ast.And;
    Ast.Or; Ast.Xor; Ast.Shl; Ast.Shr; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge;
    Ast.Eq; Ast.Ne; Ast.Land; Ast.Lor;
  |]

let rec expr t env depth =
  if depth <= 0 then leaf t env
  else
    match Rng.int t.rng 8 with
    | 0 | 1 | 2 ->
      Ast.Bin (Rng.pick t.rng binops, expr t env (depth - 1), expr t env (depth - 1))
    | 3 -> Ast.Neg (expr t env (depth - 1))
    | 4 ->
      Ast.Ternary (expr t env (depth - 1), expr t env (depth - 1), expr t env (depth - 1))
    | 5 | 6 ->
      let name, size = Rng.pick t.rng t.arrays in
      Ast.Index (name, index t env size, nopos)
    | _ -> leaf t env

and leaf t env =
  let names = readables env in
  if names = [] || Rng.bool t.rng then Ast.Int (Rng.in_range t.rng (-4) 16)
  else Ast.Var (Rng.pick t.rng (Array.of_list names), nopos)

(* A subscript that is in [0, size) on every evaluation. Three shapes:
   a constant; an affine form of a loop variable whose range fits; or an
   arbitrary expression masked with [size - 1] (size is a power of two,
   so the mask is total — this is also the generator's source of
   non-affine subscripts). *)
and index t env size =
  let bounded =
    List.filter_map
      (function Loop (n, Some l) when l <= size -> Some (n, l) | _ -> None)
      env
  in
  match Rng.int t.rng 4 with
  | 0 when bounded <> [] -> (
    let name, l = Rng.pick t.rng (Array.of_list bounded) in
    let slack = size - l in
    match Rng.int t.rng 3 with
    | 0 -> Ast.Var (name, nopos)
    | 1 when slack > 0 ->
      Ast.Bin (Ast.Add, Ast.Var (name, nopos), Ast.Int (Rng.int t.rng slack))
    | _ ->
      (* i scaled then wrapped: non-affine but still in bounds. *)
      Ast.Bin
        ( Ast.And,
          Ast.Bin (Ast.Mul, Ast.Var (name, nopos), Ast.Int (Rng.in_range t.rng 2 5)),
          Ast.Int (size - 1) ))
  | 1 -> Ast.Int (Rng.int t.rng size)
  | _ -> Ast.Bin (Ast.And, expr t env (Rng.in_range t.rng 1 2), Ast.Int (size - 1))

(* --- Statements ------------------------------------------------------------ *)

(* [stmts t env ~budget ~loop_depth] returns the generated block; [env]
   extensions stay local to the block, exactly as elaboration scopes
   them. *)
let rec stmts t env ~budget ~loop_depth =
  if budget <= 0 then []
  else
    let env', cost, ss = stmt t env ~budget ~loop_depth in
    ss @ stmts t env' ~budget:(budget - cost) ~loop_depth

and stmt t env ~budget ~loop_depth =
  match Rng.int t.rng 10 with
  | 0 | 1 ->
    (* Fresh declaration — or, sometimes, a deliberate shadow of an
       existing name (the front end allows it; the generator must too).
       Counters are never shadowed: a do/while decrement that resolved to
       a shadowing inner scalar would leave the real counter stuck. *)
    let name =
      let names =
        List.filter_map
          (function Scalar n | Loop (n, _) -> Some n | Counter _ -> None)
          env
      in
      if names <> [] && Rng.chance t.rng 0.12 then
        Rng.pick t.rng (Array.of_list names)
      else fresh_var t "v"
    in
    (* The shadowed binding must leave the downstream env: a loop
       variable's bound no longer holds once the name rebinds to an
       arbitrary scalar, so keeping it would let [index] emit an
       unmasked subscript through the shadow. *)
    let env' = List.filter (fun b -> binding_name b <> name) env in
    (env' @ [ Scalar name ], 1, [ Ast.Decl (name, expr t env 2, nopos) ])
  | 2 | 3 -> (
    match assignables env with
    | [] -> (env, 0, [])
    | names ->
      let name = Rng.pick t.rng (Array.of_list names) in
      (env, 1, [ Ast.Assign (name, expr t env 2, nopos) ]))
  | 4 | 5 ->
    let arr, size = Rng.pick t.rng t.arrays in
    (env, 1, [ Ast.Store (arr, index t env size, expr t env 2, nopos) ])
  | 6 ->
    let cond = expr t env 2 in
    let then_ = stmts t env ~budget:(min 3 budget) ~loop_depth in
    let else_ =
      if Rng.bool t.rng then [] else stmts t env ~budget:(min 2 budget) ~loop_depth
    in
    (env, 1 + List.length then_ + List.length else_, [ Ast.If (cond, then_, else_) ])
  | 7 | 8 when loop_depth < 2 -> for_loop t env ~budget ~loop_depth
  | 9 when loop_depth < 2 && budget >= 3 -> do_while t env ~budget ~loop_depth
  | _ ->
    let arr, size = Rng.pick t.rng t.arrays in
    (env, 1, [ Ast.Store (arr, index t env size, expr t env 1, nopos) ])

and for_loop t env ~budget ~loop_depth =
  let var = fresh_var t "i" in
  let limit =
    if loop_depth > 0 then Rng.in_range t.rng 2 8 else Rng.in_range t.rng 4 32
  in
  let init = if Rng.chance t.rng 0.2 then Rng.int t.rng 3 else 0 in
  let step = Rng.pick t.rng [| 1; 1; 1; 2; 3 |] in
  let benv = env @ [ Loop (var, Some limit) ] in
  let body_budget = min budget (Rng.in_range t.rng 1 4) in
  let body =
    match Rng.int t.rng 4 with
    | 0 ->
      (* DOALL/LLP idiom: each iteration owns element [i] of some array
         big enough to index affinely. *)
      let big =
        Array.of_list
          (List.filter (fun (_, size) -> size >= limit) (Array.to_list t.arrays))
      in
      if Array.length big = 0 then stmts t benv ~budget:body_budget ~loop_depth:(loop_depth + 1)
      else
        let arr, _ = Rng.pick t.rng big in
        Ast.Store (arr, Ast.Var (var, nopos), expr t benv 2, nopos)
        :: stmts t benv ~budget:(body_budget - 1) ~loop_depth:(loop_depth + 1)
    | 1 -> (
      (* Reduction or recurrence into an enclosing accumulator. *)
      match assignables env with
      | [] -> stmts t benv ~budget:body_budget ~loop_depth:(loop_depth + 1)
      | names ->
        let acc = Rng.pick t.rng (Array.of_list names) in
        let arr, size = Rng.pick t.rng t.arrays in
        let elt = Ast.Index (arr, index t benv size, nopos) in
        let update =
          if Rng.bool t.rng then Ast.Bin (Ast.Add, Ast.Var (acc, nopos), elt)
          else
            Ast.Bin
              ( Ast.Add,
                Ast.Bin (Ast.Mul, Ast.Var (acc, nopos), Ast.Int (Rng.in_range t.rng 2 5)),
                elt )
        in
        Ast.Assign (acc, update, nopos)
        :: stmts t benv ~budget:(body_budget - 1) ~loop_depth:(loop_depth + 1))
    | _ -> stmts t benv ~budget:body_budget ~loop_depth:(loop_depth + 1)
  in
  let body = if body = [] then [ dummy_store t benv ] else body in
  ( env,
    1 + List.length body,
    [
      Ast.For
        {
          var;
          init = Ast.Int init;
          limit = Ast.Int limit;
          step;
          body;
          pos = nopos;
        };
    ] )

(* do { body; n = n - 1; } while (n > 0); with [n] reserved so nothing in
   [body] can reassign it — termination by construction. *)
and do_while t env ~budget ~loop_depth =
  let n = fresh_var t "t" in
  let trips = Rng.in_range t.rng 2 8 in
  let benv = env @ [ Counter n ] in
  let body =
    stmts t benv ~budget:(min (budget - 2) 3) ~loop_depth:(loop_depth + 1)
  in
  let body =
    body
    @ [
        Ast.Assign (n, Ast.Bin (Ast.Sub, Ast.Var (n, nopos), Ast.Int 1), nopos);
      ]
  in
  (* [n] must be assignable in its own decrement but protected inside the
     generated body — so elaborate it as a Scalar in the enclosing block
     and only pass the [Counter] view down. *)
  ( env @ [ Counter n ],
    2 + List.length body,
    [
      Ast.Decl (n, Ast.Int trips, nopos);
      Ast.DoWhile (body, Ast.Bin (Ast.Gt, Ast.Var (n, nopos), Ast.Int 0));
    ] )

and dummy_store t env =
  let arr, size = Rng.pick t.rng t.arrays in
  Ast.Store (arr, index t env size, expr t env 1, nopos)

(* --- Programs --------------------------------------------------------------- *)

let array_sizes = [| 8; 16; 32; 64 |]

let gen_arrays t n =
  List.init n (fun k ->
      let name = Printf.sprintf "a%d" k in
      let size = Rng.pick t.rng array_sizes in
      let init =
        match Rng.int t.rng 3 with
        | 0 -> Ast.Zero
        | 1 ->
          let lo = Rng.in_range t.rng (-8) 0 in
          let hi = lo + Rng.in_range t.rng 1 63 in
          Ast.Random (lo, hi, Rng.int t.rng 1000)
        | _ ->
          let c = Rng.in_range t.rng 2 7 and m = Rng.in_range t.rng 5 97 in
          Ast.Fill
            (Ast.Bin
               ( Ast.Rem,
                 Ast.Bin (Ast.Mul, Ast.Var ("i", nopos), Ast.Int c),
                 Ast.Int m ))
      in
      { Ast.arr_name = name; arr_size = size; arr_init = init; arr_pos = nopos })

(* Flush every top-level scalar of the region into memory, so a diverging
   scalar computation is visible to the checksum. *)
let flush_scalars t block =
  let decls =
    List.filter_map (function Ast.Decl (x, _, _) -> Some x | _ -> None) block
  in
  let arr, size = t.arrays.(0) in
  block
  @ List.mapi
      (fun k x -> Ast.Store (arr, Ast.Int (k land (size - 1)), Ast.Var (x, nopos), nopos))
      decls

let gen_region t k ~budget =
  let body = stmts t [] ~budget ~loop_depth:0 in
  let body = if body = [] then [ dummy_store t [] ] else body in
  {
    Ast.reg_name = Printf.sprintf "r%d" k;
    reg_body = flush_scalars t body;
    reg_pos = nopos;
  }

let program ?(size = 24) ~seed () =
  let rng = Rng.create seed in
  let t = { rng; arrays = [||]; fresh = 0 } in
  let n_arrays = Rng.in_range rng 2 4 in
  let decls = gen_arrays t n_arrays in
  let t =
    { t with arrays = Array.of_list (List.map (fun d -> (d.Ast.arr_name, d.Ast.arr_size)) decls) }
  in
  let n_regions = Rng.in_range rng 1 3 in
  let budget = max 3 (size / n_regions) in
  {
    Ast.prog_name = Printf.sprintf "fuzz_s%d" seed;
    decls;
    regions = List.init n_regions (fun k -> gen_region t k ~budget);
  }

let render (p : Ast.program) = Format.asprintf "%a" Ast.pp_program p

let source_lines p =
  render p |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
