(* Static per-region, per-mode cycle estimator.

   The dynamic side of mode selection uses measured profiles; this module
   produces the same shape of numbers from the abstract interpreter
   alone: per-block in-order schedule lengths from machine latencies,
   block repeat counts from static trip-count estimates, and a static
   miss-stall bound from the footprint/stride cache model
   (Profile.of_static). The constants below were fitted against the obs
   layer's per-region cycle attribution on the 4-core hybrid sweep. *)

module Hir = Voltron_ir.Hir
module Cfg = Voltron_ir.Cfg
module Inst = Voltron_isa.Inst
module Config = Voltron_machine.Config
module Absint = Voltron_absint.Absint
module Profile = Voltron_analysis.Profile

type t = {
  machine : Config.t;
  summary : Absint.summary;
  static_profile : Profile.t;
}

let create ~machine ?summary (p : Hir.program) =
  let summary = match summary with Some s -> s | None -> Absint.analyze p in
  {
    machine;
    summary;
    static_profile = Profile.of_static ~summary ~cache:machine.Config.cache p;
  }

let static_profile t = t.static_profile

let miss_penalty = 20.

(* Throwaway lowering, as in Select.dswp_estimate: base addresses do not
   matter for schedule shapes. *)
let lower_region stmts =
  let max_v =
    List.fold_left max 0 (Hir.defined_vregs stmts @ Hir.used_vregs stmts) + 1
  in
  let max_arr = ref (-1) in
  Hir.iter_stmts
    (fun ({ Hir.node; _ } : Hir.stmt) ->
      match node with
      | Hir.Assign (_, Hir.Load (a, _)) | Hir.Store (a, _, _) ->
        max_arr := max !max_arr a
      | Hir.Assign _ | Hir.If _ | Hir.For _ | Hir.Do_while _ -> ())
    stmts;
  let fake =
    {
      Hir.prog_name = "estimate";
      arrays =
        Array.init (!max_arr + 1) (fun i ->
            { Hir.arr_name = Printf.sprintf "a%d" i; size = 1024; init = None });
      regions = [];
      n_vregs = max_v;
    }
  in
  let lay = Voltron_ir.Layout.compute fake in
  let lctx = Voltron_ir.Lower.make_ctx ~layout:lay ~first_vreg:max_v in
  Voltron_ir.Lower.region lctx stmts

(* Effective latency of one op, charging loads their static miss bound. *)
let eff_latency t (op : Cfg.lop) =
  let base = float_of_int (Config.latency op.Cfg.inst) in
  match op.Cfg.inst with
  | Inst.Load _ when op.Cfg.hir_sid >= 0 ->
    base +. (Profile.miss_rate t.static_profile op.Cfg.hir_sid *. miss_penalty)
  | _ -> base

(* In-order single-issue schedule length of one block: one issue slot per
   cycle, an op stalls until its sources are ready. *)
let block_sched t (b : Cfg.block) =
  let ready : (Inst.reg, float) Hashtbl.t = Hashtbl.create 16 in
  let clock = ref 0. in
  let last = ref 0. in
  List.iter
    (fun (op : Cfg.lop) ->
      let avail =
        List.fold_left
          (fun acc r -> Float.max acc (Option.value ~default:0. (Hashtbl.find_opt ready r)))
          !clock
          (Inst.uses op.Cfg.inst)
      in
      let finish = avail +. eff_latency t op in
      List.iter (fun r -> Hashtbl.replace ready r finish) (Inst.defs op.Cfg.inst);
      last := Float.max !last finish;
      clock := avail +. 1.)
    b.Cfg.b_ops;
  (* Terminator branch costs its own slot; a long-latency tail op keeps
     the next iteration waiting either way. *)
  let term = match b.Cfg.b_term with Cfg.Stop -> 0. | _ -> 1. in
  Float.max (!clock +. term) !last

(* Critical path through one block (unbounded issue width). *)
let block_cp t (b : Cfg.block) =
  let ready : (Inst.reg, float) Hashtbl.t = Hashtbl.create 16 in
  let cp = ref 0. in
  List.iter
    (fun (op : Cfg.lop) ->
      let avail =
        List.fold_left
          (fun acc r -> Float.max acc (Option.value ~default:0. (Hashtbl.find_opt ready r)))
          0.
          (Inst.uses op.Cfg.inst)
      in
      let finish = avail +. eff_latency t op in
      List.iter (fun r -> Hashtbl.replace ready r finish) (Inst.defs op.Cfg.inst);
      cp := Float.max !cp finish)
    b.Cfg.b_ops;
  !cp

(* Static repeat count of a block: the count of the HIR statements it was
   lowered from (max across its ops; loop plumbing carries sid -1). *)
let block_count t (b : Cfg.block) =
  List.fold_left
    (fun acc (op : Cfg.lop) ->
      if op.Cfg.hir_sid >= 0 then
        Float.max acc (Absint.count t.summary op.Cfg.hir_sid)
      else acc)
    0. b.Cfg.b_ops

(* Fitted overheads, calibrated against the obs layer's per-region cycle
   attribution on the 4-core hybrid sweep (see PREDICT.json in CI). The
   factors name the mechanism the analytical core misses:
   - coupled lock-step cores share one memory system and resolve every
     branch together, so real blocks run ~1.6x their ideal schedule
     (attribution shows 25-30% D-stall the single-core miss model does
     not see);
   - DOALL chunks on n cores multiply memory pressure (56-90% D-stall
     measured) — the chunked body runs ~1.75x its share;
   - DSWP stages block on operand-queue round-trips every iteration
     (attribution: ~70% recv-data), inflating the balanced-pipeline
     estimate by ~7.5x;
   - decoupled strands run the same partition as coupled ILP without the
     lock-step penalty, trading it for predicate-queue waits. *)
let ilp_comm_overhead = 2.0     (* per block×core: operand network + lockstep branch *)
let ilp_lockstep_factor = 1.6   (* shared-memory + lockstep inflation, fitted *)
let dswp_fill_overhead = 64.    (* pipeline fill/drain *)
let dswp_queue_factor = 7.5     (* per-iteration queue round-trips, fitted *)
let doall_chunk_overhead = 24.  (* spawn + TM begin/commit per chunk *)
let doall_mem_factor = 1.75     (* n-core memory contention on the chunked body, fitted *)
let strands_decoupling = 0.95   (* vs the ideal coupled schedule, fitted *)

let seq_cycles t stmts =
  let cfg = lower_region stmts in
  Array.fold_left
    (fun acc b ->
      let n = block_count t b in
      if n <= 0. then acc else acc +. (n *. block_sched t b))
    0. cfg.Cfg.blocks

(* Ideal n-wide partitioned schedule — before the lock-step penalty, so
   both ILP and strands derive from it. *)
let ilp_base t ~n_cores stmts =
  let cfg = lower_region stmts in
  let n = float_of_int (max 1 n_cores) in
  Array.fold_left
    (fun acc b ->
      let c = block_count t b in
      if c <= 0. then acc
      else
        let ops = float_of_int (List.length b.Cfg.b_ops) in
        let per_iter =
          Float.max (block_cp t b) ((ops /. n) +. 1.) +. ilp_comm_overhead
        in
        acc +. (c *. per_iter))
    0. cfg.Cfg.blocks

let ilp_cycles t ~n_cores stmts = ilp_base t ~n_cores stmts *. ilp_lockstep_factor

let dswp_cycles t ~machine stmts =
  let est = Select.dswp_estimate ~machine stmts in
  (seq_cycles t stmts /. Float.max 1.0 est *. dswp_queue_factor)
  +. dswp_fill_overhead

let strands_cycles t ~n_cores stmts =
  ilp_base t ~n_cores stmts *. strands_decoupling

let doall_cycles t ~n_cores (dp : Codegen.doall_plan) =
  let n = float_of_int (max 1 n_cores) in
  let prefix = seq_cycles t dp.Codegen.dp_prefix in
  let suffix = seq_cycles t dp.Codegen.dp_suffix in
  let loop_stmt =
    { Hir.sid = -1; node = Hir.For dp.Codegen.dp_loop }
  in
  let body = seq_cycles t [ loop_stmt ] in
  prefix +. (body /. n *. doall_mem_factor) +. (doall_chunk_overhead *. n)
  +. suffix

let strategy_cycles t stmts (s : Codegen.strategy) =
  let n_cores = t.machine.Config.n_cores in
  match s with
  | Codegen.Seq -> seq_cycles t stmts
  | Codegen.Coupled_ilp -> ilp_cycles t ~n_cores stmts
  | Codegen.Strands -> strands_cycles t ~n_cores stmts
  | Codegen.Dswp -> dswp_cycles t ~machine:t.machine stmts
  | Codegen.Doall dp -> doall_cycles t ~n_cores dp

type row = {
  e_region : string;
  e_strategy : string;
  e_cycles : float;
}

let table t (plan : Select.planned_region list) =
  List.map
    (fun (pr : Select.planned_region) ->
      {
        e_region = pr.Select.pr_name;
        e_strategy = Select.strategy_name pr.Select.pr_strategy;
        e_cycles = strategy_cycles t pr.Select.pr_stmts pr.Select.pr_strategy;
      })
    plan
