module Inst = Voltron_isa.Inst
module Image = Voltron_isa.Image
module Program = Voltron_isa.Program
module Config = Voltron_machine.Config
module Hir = Voltron_ir.Hir
module Layout = Voltron_ir.Layout
module Lower = Voltron_ir.Lower
module Cfg = Voltron_ir.Cfg
module Memdep = Voltron_analysis.Memdep
module Depgraph = Voltron_analysis.Depgraph
module Doall_a = Voltron_analysis.Doall
module Check = Voltron_check.Check

type strategy =
  | Seq
  | Coupled_ilp
  | Strands
  | Dswp
  | Doall of doall_plan

and doall_plan = {
  dp_prefix : Hir.stmt list;
  dp_loop : Hir.for_loop;
  dp_suffix : Hir.stmt list;
  dp_accumulators : Doall_a.accumulator list;
  dp_speculative : bool;
}

type region_extent = {
  re_name : string;
  re_ranges : (int * int) array;
      (** per core: the half-open bundle-address range [lo, hi) the region
          occupies in that core's image *)
}

type t = {
  machine : Config.t;
  program : Hir.program;
  lay : Layout.t;
  lctx : Lower.ctx;
  synth : Synth.t;
  builders : Image.builder array;
  profile : Voltron_analysis.Profile.t Lazy.t;
  mutable infos : Check.region_info list;  (** reverse emission order *)
  mutable extents : region_extent list;  (** reverse emission order *)
}

let create machine (program : Hir.program) =
  let lay = Layout.compute program in
  let lctx = Lower.make_ctx ~layout:lay ~first_vreg:program.Hir.n_vregs in
  {
    machine;
    program;
    lay;
    lctx;
    synth = Synth.create program lctx;
    builders = Array.init machine.Config.n_cores (fun _ -> Image.builder ());
    profile = lazy (Voltron_analysis.Profile.collect program);
    infos = [];
    extents = [];
  }

let layout t = t.lay

let check_infos t = List.rev t.infos

let region_extents t = List.rev t.extents

(* Summarise a partitioned region for the static checker while the
   dependence analysis is still in scope: every memory operation with its
   assigned core, plus an aliasing oracle keyed by dependence-graph index.
   The checker uses this to re-verify the partitioners' contract that
   possibly-dependent memory operations never straddle cores in decoupled
   mode (paper §3.3). *)
let record_region_info t ~name ~mode ~(partition : Partition.t) ~memdep
    ~(dg : Depgraph.t) =
  let accesses =
    Array.to_list
      (Array.mapi
         (fun i (op : Cfg.lop) ->
           if Memdep.is_mem memdep op then
             Some
               {
                 Check.ma_id = i;
                 ma_core = partition.Partition.core_of.(i);
                 ma_write = Memdep.is_write memdep op;
                 ma_text = Format.asprintf "%a" Inst.pp op.Cfg.inst;
               }
           else None)
         dg.Depgraph.ops)
    |> List.filter_map Fun.id
  in
  t.infos <-
    {
      Check.ri_name = name;
      ri_decoupled = (mode = Inst.Decoupled);
      ri_accesses = accesses;
      ri_may_alias =
        (fun i j ->
          Memdep.ever_alias memdep dg.Depgraph.ops.(i) dg.Depgraph.ops.(j));
    }
    :: t.infos

let check_register_closed ~name stmts =
  let defs = Hir.defined_vregs stmts in
  let uses = Hir.used_vregs stmts in
  let free = List.filter (fun v -> not (List.mem v defs)) uses in
  if free <> [] then
    invalid_arg
      (Printf.sprintf
         "Codegen: region %s reads registers it never defines (v%s); regions \
          must be register-closed — pass values between regions through memory"
         name
         (String.concat ", v" (List.map string_of_int free)))

(* Emit a scheduled region's blocks into an image builder. *)
let emit_blocks t core (cfg : Cfg.t) (code : Voltron_isa.Bundle.t list array) =
  Array.iteri
    (fun bi (block : Cfg.block) ->
      Image.place_label t.builders.(core) block.Cfg.b_label;
      Image.emit_all t.builders.(core) code.(bi))
    cfg.Cfg.blocks

let emit_one t core bundle = Image.emit t.builders.(core) bundle

(* Lower + schedule a statement list entirely onto one core and emit it. *)
let emit_solo t core stmts =
  let cfg = Lower.region t.lctx stmts in
  let memdep = Memdep.create ~region_stmts:stmts cfg in
  let dg = Depgraph.build ~cfg ~memdep ~latency:Config.latency in
  let partition =
    {
      Partition.core_of = Array.make (Array.length dg.Depgraph.ops) core;
      participants = [ core ];
    }
  in
  let sched =
    Sched.schedule_region ~machine:t.machine ~cfg ~dg ~partition
      ~mode:Inst.Decoupled
  in
  emit_blocks t core cfg sched.Sched.block_code.(core)

(* --- Generic parallel region (ILP / strands / DSWP) ----------------------- *)

let emit_parallel t ~name stmts strategy =
  let cfg = Lower.region t.lctx stmts in
  let memdep = Memdep.create ~region_stmts:stmts cfg in
  let dg = Depgraph.build ~cfg ~memdep ~latency:Config.latency in
  let n_cores = t.machine.Config.n_cores in
  let partition, mode =
    match strategy with
    | Coupled_ilp ->
      (* Coupled execution is restricted to groups of four cores (paper
         §3.2: the 1-bit stall bus cannot span more within a cycle);
         extra cores idle through the region in lock-step. *)
      ( Partition.bug ~n_cores:(min 4 n_cores) ~comm_latency:1 ~dg ~cfg,
        Inst.Coupled )
    | Strands ->
      ( Partition.ebug ~n_cores ~comm_latency:3 ~dg ~cfg ~memdep
          ~profile:(Lazy.force t.profile),
        Inst.Decoupled )
    | Dswp -> (
      match Partition.dswp ~n_cores ~dg ~cfg ~memdep with
      | Some (p, _) -> (p, Inst.Decoupled)
      | None ->
        ( Partition.ebug ~n_cores ~comm_latency:3 ~dg ~cfg ~memdep
            ~profile:(Lazy.force t.profile),
          Inst.Decoupled ))
    | Seq | Doall _ -> invalid_arg "emit_parallel: not a parallel strategy"
  in
  if List.length partition.Partition.participants <= 1 then
    (* The partitioner kept everything on the master: plain sequential. *)
    let sched =
      Sched.schedule_region ~machine:t.machine ~cfg ~dg ~partition
        ~mode:Inst.Decoupled
    in
    emit_blocks t 0 cfg sched.Sched.block_code.(0)
  else begin
    record_region_info t ~name ~mode ~partition ~memdep ~dg;
    let sched = Sched.schedule_region ~machine:t.machine ~cfg ~dg ~partition ~mode in
    let participants = sched.Sched.participants in
    let workers = List.filter (fun c -> c <> 0) participants in
    let coupled = mode = Inst.Coupled in
    (* Master side. *)
    List.iter
      (fun w ->
        let entry = Lower.fresh_label t.lctx (Printf.sprintf "%s_w%d" name w) in
        emit_one t 0 [ Inst.Spawn { target = w; entry } ];
        (* Worker side, emitted in full here. *)
        Image.place_label t.builders.(w) entry)
      workers;
    if coupled then emit_one t 0 [ Inst.Mode_switch Inst.Coupled ];
    List.iter
      (fun w -> if coupled then emit_one t w [ Inst.Mode_switch Inst.Coupled ])
      workers;
    emit_blocks t 0 cfg sched.Sched.block_code.(0);
    List.iter (fun w -> emit_blocks t w cfg sched.Sched.block_code.(w)) workers;
    if coupled then begin
      emit_one t 0 [ Inst.Mode_switch Inst.Decoupled ];
      List.iter (fun w -> emit_one t w [ Inst.Mode_switch Inst.Decoupled ]) workers
    end
    else begin
      (* Join: each worker reports completion through the queue network. *)
      List.iter
        (fun w ->
          let sink = Lower.fresh_vreg t.lctx in
          emit_one t 0 [ Inst.Recv { sender = w; dst = sink; kind = Inst.Rv_sync } ])
        workers;
      List.iter
        (fun w -> emit_one t w [ Inst.Send { target = 0; src = Inst.Imm 1 } ])
        workers
    end;
    List.iter (fun w -> emit_one t w [ Inst.Sleep ]) workers
  end

(* --- DOALL region ---------------------------------------------------------- *)

(* Chunk-bound synthesis for core [k] of [n]: iteration count
   N = max(0, (limit - init + step - 1) / step); core k runs iterations
   [k*N/n, (k+1)*N/n), i.e. var in [init + step*lo, init + step*hi). *)
let chunk_bounds t (loop : Hir.for_loop) ~k ~n =
  let s = t.synth in
  let step = loop.Hir.step in
  let s1, d = Synth.bin s Inst.Sub loop.Hir.limit loop.Hir.init in
  let s2, d2 = Synth.bin s Inst.Add d (Hir.Imm (step - 1)) in
  let s3, n0 = Synth.bin s Inst.Div d2 (Hir.Imm step) in
  let s4, total = Synth.bin s Inst.Max n0 (Hir.Imm 0) in
  let s5, lo_n = Synth.bin s Inst.Mul total (Hir.Imm k) in
  let s6, lo = Synth.bin s Inst.Div lo_n (Hir.Imm n) in
  let s7, hi_n = Synth.bin s Inst.Mul total (Hir.Imm (k + 1)) in
  let s8, hi = Synth.bin s Inst.Div hi_n (Hir.Imm n) in
  let s9, from_off = Synth.bin s Inst.Mul lo (Hir.Imm step) in
  let s10, from_ = Synth.bin s Inst.Add loop.Hir.init from_off in
  let s11, to_off = Synth.bin s Inst.Mul hi (Hir.Imm step) in
  let s12, to_ = Synth.bin s Inst.Add loop.Hir.init to_off in
  ([ s1; s2; s3; s4; s5; s6; s7; s8; s9; s10; s11; s12 ], from_, to_, total)

let emit_doall t ~name plan =
  let n = t.machine.Config.n_cores in
  let loop = plan.dp_loop in
  let accs = plan.dp_accumulators in
  let n_accs = List.length accs in
  let scratch =
    if n_accs > 0 then Layout.scratch_alloc t.lay ((n - 1) * n_accs) else 0
  in
  let chunk_for from_ to_ =
    Synth.stmt t.synth
      (Hir.For { loop with Hir.init = from_; limit = to_ })
  in
  let tm_wrap core body =
    if plan.dp_speculative then begin
      emit_one t core [ Inst.Tm_begin ];
      body ();
      emit_one t core [ Inst.Tm_commit ]
    end
    else body ()
  in
  (* All-core TM rounds require every core to transact, even those without
     work — the empty-chunk loops below keep that invariant. *)
  let workers = List.init (n - 1) (fun i -> i + 1) in
  (* Master: spawn first so workers overlap the prefix. *)
  let entries =
    List.map
      (fun w ->
        let entry = Lower.fresh_label t.lctx (Printf.sprintf "%s_w%d" name w) in
        emit_one t 0 [ Inst.Spawn { target = w; entry } ];
        (w, entry))
      workers
  in
  (* Master fragment A: prefix + bounds. *)
  let bounds0, from0, to0, total0 = chunk_bounds t loop ~k:0 ~n in
  emit_solo t 0 (plan.dp_prefix @ bounds0);
  let master_total =
    match total0 with Hir.Reg r -> r | Hir.Imm _ -> assert false
  in
  tm_wrap 0 (fun () -> emit_solo t 0 [ chunk_for from0 to0 ]);
  (* Join. *)
  List.iter
    (fun (w, _) ->
      let sink = Lower.fresh_vreg t.lctx in
      emit_one t 0 [ Inst.Recv { sender = w; dst = sink; kind = Inst.Rv_sync } ])
    entries;
  (* Accumulator reduction: master partial + committed worker partials. *)
  List.iteri
    (fun j (acc : Doall_a.accumulator) ->
      List.iteri
        (fun wi _ ->
          let tmp = Lower.fresh_vreg t.lctx in
          let addr = scratch + (wi * n_accs) + j in
          emit_one t 0 [ Inst.Load { dst = tmp; base = Inst.Imm addr; offset = Inst.Imm 0 } ];
          emit_one t 0
            [
              Inst.Alu
                {
                  op = Inst.Add;
                  dst = acc.Doall_a.acc_vreg;
                  src1 = Inst.Reg acc.Doall_a.acc_vreg;
                  src2 = Inst.Reg tmp;
                };
            ])
        workers)
    accs;
  (* Loop variable fix-up: after a serial run, var = init + step * N. *)
  let fix1, off = Synth.bin t.synth Inst.Mul (Hir.Reg master_total) (Hir.Imm loop.Hir.step) in
  let fix2 =
    Synth.assign t.synth loop.Hir.var (Hir.Alu (Inst.Add, loop.Hir.init, off))
  in
  emit_solo t 0 ([ fix1; fix2 ] @ plan.dp_suffix);
  (* Workers. *)
  List.iteri
    (fun wi (w, entry) ->
      Image.place_label t.builders.(w) entry;
      let bounds, from_, to_, _ = chunk_bounds t loop ~k:w ~n in
      let resets =
        List.map
          (fun (acc : Doall_a.accumulator) ->
            Synth.assign t.synth acc.Doall_a.acc_vreg (Hir.Operand (Hir.Imm 0)))
          accs
      in
      emit_solo t w (plan.dp_prefix @ bounds @ resets);
      tm_wrap w (fun () ->
          emit_solo t w [ chunk_for from_ to_ ];
          (* Partials are stored inside the transaction so the commit
             publishes them with the chunk. *)
          List.iteri
            (fun j (acc : Doall_a.accumulator) ->
              let addr = scratch + (wi * n_accs) + j in
              emit_one t w
                [
                  Inst.Store
                    { base = Inst.Imm addr; offset = Inst.Imm 0; src = Inst.Reg acc.Doall_a.acc_vreg };
                ])
            accs);
      emit_one t w [ Inst.Send { target = 0; src = Inst.Imm 1 } ];
      emit_one t w [ Inst.Sleep ])
    entries

(* --- Public API ------------------------------------------------------------ *)

let emit_region t ~name stmts strategy =
  check_register_closed ~name stmts;
  (* Every bundle the region adds — master glue, spawns, worker bodies,
     joins — lands between these two snapshots, so the extent is exact
     per core (regions are contiguous in emission order). *)
  let lo = Array.map Image.next_addr t.builders in
  (match strategy with
  | Seq -> emit_solo t 0 stmts
  | Coupled_ilp | Strands | Dswp ->
    if t.machine.Config.n_cores <= 1 then emit_solo t 0 stmts
    else emit_parallel t ~name stmts strategy
  | Doall plan ->
    if t.machine.Config.n_cores <= 1 then emit_solo t 0 stmts
    else emit_doall t ~name plan);
  let ranges =
    Array.mapi (fun c lo_c -> (lo_c, Image.next_addr t.builders.(c))) lo
  in
  t.extents <- { re_name = name; re_ranges = ranges } :: t.extents

let finalize t =
  emit_one t 0 [ Inst.Halt ];
  let images = Array.map Image.finish t.builders in
  Program.make ~images ~mem_size:(max 1 (Layout.mem_size t.lay))
    ~mem_init:(Layout.mem_init t.lay t.program)
