(** Region code generation and whole-program assembly.

    Core 0 is the master: it runs the sequential glue and orchestrates
    every parallel region — spawning workers, entering/leaving coupled
    mode, joining decoupled threads, committing DOALL rounds, and reducing
    expanded accumulators (paper §3.2: "core0 behaves as the master,
    spawning jobs... the general strategy used by our compiler").

    Per-region strategies:
    - [Seq]: everything on the master.
    - [Coupled_ilp]: BUG partition over all cores, coupled mode, direct
      network (§4.1 "Compiling for ILP").
    - [Strands]: eBUG partition, decoupled fine-grain threads (§4.1
      "Extracting strands using eBUG").
    - [Dswp]: pipeline-stage partition, decoupled (§4.1); falls back to
      [Strands] when no pipeline exists.
    - [Doall]: chunked loop over all cores, speculative chunks running
      under the transactional memory, accumulator expansion + reduction
      (§4.1 "Extracting LLP from DOALL loops"). *)

type strategy =
  | Seq
  | Coupled_ilp
  | Strands
  | Dswp
  | Doall of doall_plan

and doall_plan = {
  dp_prefix : Voltron_ir.Hir.stmt list;  (** replicated on every core *)
  dp_loop : Voltron_ir.Hir.for_loop;
  dp_suffix : Voltron_ir.Hir.stmt list;  (** master only, after the join *)
  dp_accumulators : Voltron_analysis.Doall.accumulator list;
  dp_speculative : bool;  (** wrap chunks in TM transactions *)
}

type t

val create : Voltron_machine.Config.t -> Voltron_ir.Hir.program -> t

val layout : t -> Voltron_ir.Layout.t

type region_extent = {
  re_name : string;
  re_ranges : (int * int) array;
      (** per core: the half-open bundle-address range [lo, hi) the region
          occupies in that core's image — everything the region emitted,
          including spawn glue, worker bodies and joins *)
}

val region_extents : t -> region_extent list
(** One extent per {!emit_region} call, in emission order (the same order
    as the driver's plan). Drives the observability layer's pc->region
    attribution map. *)

val check_infos : t -> Voltron_check.Check.region_info list
(** Region summaries for the static checker, in emission order: every
    partitioned region's memory accesses with their core assignment and a
    may-alias oracle, recorded here while the dependence analysis is still
    in scope so the checker never has to re-derive compiler state. *)

val emit_region : t -> name:string -> Voltron_ir.Hir.stmt list -> strategy -> unit
(** Raises [Invalid_argument] if the region reads registers it does not
    define (regions must be register-closed; pass data between regions
    through memory). *)

val finalize : t -> Voltron_isa.Program.t
(** Appends the master's HALT, closes worker images, and packages the
    executable with the data layout (arrays + compiler scratch). *)
