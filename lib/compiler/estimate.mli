(** Static per-region, per-mode cycle estimator (profile-free selection).

    Produces the same shape of numbers the measured profile feeds into
    mode selection, but from the abstract interpreter alone:

    - per-block in-order schedule lengths from the machine latency table,
      with loads charged a static miss-stall bound from the
      footprint/stride cache model ({!Voltron_analysis.Profile.of_static});
    - block repeat counts from static trip-count estimates;
    - per-strategy analytical models (issue-width-bounded critical path
      for coupled ILP, {!Select.dswp_estimate} for DSWP, chunked-body
      division for DOALL) with overhead constants fitted against the obs
      layer's per-region cycle attribution.

    The [analyze --all] CI job reconciles these predictions against
    simulated per-region cycles and records the geomean error
    (PREDICT.json). *)

type t

val create :
  machine:Voltron_machine.Config.t ->
  ?summary:Voltron_absint.Absint.summary ->
  Voltron_ir.Hir.program ->
  t
(** [summary] reuses an existing whole-program analysis. *)

val static_profile : t -> Voltron_analysis.Profile.t
(** The synthesised profile ({!Voltron_analysis.Profile.of_static}) —
    hand this to {!Select.plan} / {!Driver.compile} for profile-free
    selection. *)

val seq_cycles : t -> Voltron_ir.Hir.stmt list -> float
(** Estimated single-core cycles for a region. *)

val strategy_cycles : t -> Voltron_ir.Hir.stmt list -> Codegen.strategy -> float
(** Estimated cycles for a region under one strategy on the full
    machine. *)

type row = {
  e_region : string;
  e_strategy : string;
  e_cycles : float;
}

val table : t -> Select.planned_region list -> row list
(** One prediction row per planned region, in plan order. *)
