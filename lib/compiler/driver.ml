module Config = Voltron_machine.Config
module Machine = Voltron_machine.Machine
module Hir = Voltron_ir.Hir
module Check = Voltron_check.Check

type compiled = {
  executable : Voltron_isa.Program.t;
  plan : Select.planned_region list;
  region_extents : Codegen.region_extent list;
  oracle_checksum : int;
  array_footprint : int;
  check_diags : Check.diag list;
}

let compile ~machine ?(choice = `Hybrid) ?(check = true) ?(static_profile = false)
    ?profile ?max_steps (p : Hir.program) =
  let profile =
    match profile with
    | Some pr -> pr
    | None when static_profile ->
      Voltron_analysis.Profile.of_static ~cache:machine.Config.cache p
    | None -> Voltron_analysis.Profile.collect ?max_steps p
  in
  let oracle = Voltron_ir.Interp.run ?max_steps p in
  let array_footprint = Voltron_ir.Layout.mem_size oracle.Voltron_ir.Interp.layout in
  let plan = Select.plan ~machine ~profile choice p in
  let cg = Codegen.create machine p in
  List.iter
    (fun (pr : Select.planned_region) ->
      Codegen.emit_region cg ~name:pr.Select.pr_name pr.Select.pr_stmts
        pr.Select.pr_strategy)
    plan;
  let executable = Codegen.finalize cg in
  let check_diags =
    if check then begin
      let diags =
        Check.check_program ~infos:(Codegen.check_infos cg) machine executable
      in
      if Check.has_errors diags then raise (Check.Failed diags);
      diags
    end
    else []
  in
  {
    executable;
    plan;
    region_extents = Codegen.region_extents cg;
    oracle_checksum =
      Voltron_mem.Memory.checksum_prefix oracle.Voltron_ir.Interp.memory
        array_footprint;
    array_footprint;
    check_diags;
  }

let compile_baseline p =
  compile ~machine:(Config.default ~n_cores:1) ~choice:`Seq p

let verify machine compiled =
  let m = Machine.create machine compiled.executable in
  let result = Machine.run m in
  match result.Machine.outcome with
  | Machine.Out_of_cycles -> Error "out of cycles"
  | Machine.Deadlock d -> Error ("deadlock: " ^ Machine.diagnosis_to_string d)
  | Machine.Fault_limit d ->
    Error ("fault limit reached: " ^ Machine.diagnosis_to_string d)
  | Machine.Stopped d -> Error ("stopped: " ^ Machine.diagnosis_to_string d)
  | Machine.Finished ->
    let sum =
      Voltron_mem.Memory.checksum_prefix (Machine.memory m)
        compiled.array_footprint
    in
    if sum = compiled.oracle_checksum then Ok result.Machine.cycles
    else
      Error
        (Printf.sprintf "checksum mismatch: oracle %x, machine %x"
           compiled.oracle_checksum sum)
