(** Top-level compilation entry points. *)

type compiled = {
  executable : Voltron_isa.Program.t;
  plan : Select.planned_region list;
  region_extents : Codegen.region_extent list;
      (** per-core pc ranges of each planned region, in plan order — the
          observability layer's region<->pc map *)
  oracle_checksum : int;  (** reference interpreter's memory checksum *)
  array_footprint : int;  (** words to compare (arrays only, no scratch) *)
  check_diags : Voltron_check.Check.diag list;
      (** static checker output (warnings only — errors raise); empty when
          compiled with [~check:false] *)
}

val compile :
  machine:Voltron_machine.Config.t ->
  ?choice:Select.choice ->
  ?check:bool ->
  ?static_profile:bool ->
  ?profile:Voltron_analysis.Profile.t ->
  ?max_steps:int ->
  Voltron_ir.Hir.program ->
  compiled
(** Profiles (unless given), selects a strategy per region ([`Hybrid] by
    default), generates per-core code, and records the oracle checksum
    over the array footprint for verification. [max_steps] bounds the
    oracle interpreter run (see {!Voltron_ir.Interp.run}) — the fuzzing
    harness uses it to reject runaway shrink candidates quickly.

    [static_profile] replaces the profiling run with the abstract
    interpreter's synthesised profile
    ({!Voltron_analysis.Profile.of_static}) — selection then needs no
    program execution at all ([--no-profile] on the CLI). An explicit
    [profile] wins over [static_profile].

    Unless [~check:false] is given, the static cross-core checker
    ({!Voltron_check.Check}) runs over the generated images as a
    post-codegen gate: checker errors raise {!Voltron_check.Check.Failed}
    with the full diagnostic list; warnings are returned in
    [check_diags]. *)

val compile_baseline : Voltron_ir.Hir.program -> compiled
(** Single-core sequential build (the paper's baseline). *)

val verify : Voltron_machine.Config.t -> compiled -> (int, string) result
(** Run the compiled program and compare its array-footprint checksum to
    the oracle; [Ok cycles] on success. *)
