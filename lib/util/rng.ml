type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output finalizer: a bijective avalanche over the stream
   counter. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_u64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let next t = Int64.to_int (Int64.shift_right_logical (next_u64 t) 2)

let int t bound =
  assert (bound > 0);
  next t mod bound

let in_range t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_u64 t) 11) in
  bound *. (x /. 9007199254740992.0)

let bool t = Int64.logand (next_u64 t) 1L = 1L

let chance t p = float t 1.0 < p

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t i =
  assert (i >= 0);
  (* Indexed stream split: double-mix the parent state offset by the
     (i+1)-th golden-ratio increment. The double finalizer decorrelates
     child streams from each other and from the parent's own output
     sequence (a single mix would make child i's state equal the
     parent's (i+1)-th output). Pure: does not advance [t]. *)
  { state = mix (mix (Int64.add t.state (Int64.mul golden (Int64.of_int (i + 1))))) }
