(** Deterministic pseudo-random number generator (SplitMix64).

    All stochastic behaviour in the simulator and the workload generators is
    driven through this module so that every experiment is reproducible from
    a seed. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val next : t -> int
(** Next raw 62-bit non-negative value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [\[lo, hi\]]. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> int -> t
(** [split t i] derives the [i]-th child generator of [t]'s current
    state: a statistically independent SplitMix64 stream per index,
    stable under any evaluation order. Pure — [t] is not advanced, and
    the same [(state, i)] pair always yields the same child. Campaigns
    use it to give every cell its own generator derived from the
    campaign seed. Requires [i >= 0]. *)
