(** Whole-program abstract interpretation over HIR.

    Runs a widening/narrowing fixpoint over [for]/[do-while]/[if] with
    the {!Dom} interval × congruence domain, mirroring the concrete
    interpreter: registers start at 0, a [for] loop reads its limit once
    at entry, loads return ⊤ (array contents are not tracked).

    Products:
    - per memory site: the joined abstract index and a static execution
      estimate (consumed by {!Voltron_analysis.Memdep}'s disjointness
      oracle and the static cost model);
    - per loop: symbolic trip-count bounds and a point estimate;
    - typed, located diagnostics: provable out-of-bounds subscripts,
      reads of never-written scalars/array cells, and dead stores. *)

type site = {
  s_sid : int;
  s_arr : Voltron_ir.Hir.arr;
  s_write : bool;
  s_index : Dom.t;  (** join over every abstract visit *)
  s_count : float;  (** static execution-count estimate *)
}

type loop_info = {
  li_sid : int;
  li_kind : [ `For | `Do_while ];
  li_var : Voltron_ir.Hir.vreg option;
  li_trip_min : float;
  li_trip_max : float;  (** [infinity] when unbounded *)
  li_trip_est : float;
  li_enters : float;  (** static estimate of loop-entry count *)
}

type diag_kind =
  | Oob of { arr : string; size : int; index : Dom.t; write : bool }
  | Uninit_scalar of { vreg : Voltron_ir.Hir.vreg }
  | Uninit_cell of { arr : string; index : Dom.t }
  | Dead_store of { arr : string; index : int; killer_sid : int }

type diag = { d_region : string; d_sid : int; d_kind : diag_kind }

val kind_class : diag_kind -> string
(** Stable machine-readable tag: ["oob"], ["uninit-scalar"],
    ["uninit-cell"], ["dead-store"]. *)

val pp_diag : Format.formatter -> diag -> unit
val diag_to_string : diag -> string

type summary

val analyze : Voltron_ir.Hir.program -> summary
(** Interpret the whole program (all regions in order, registers
    initially 0) and run the diagnostic passes. *)

val summarize_region : Voltron_ir.Hir.stmt list -> summary
(** Interpret a single region with an unconstrained (⊤) entry
    environment — sound for any live-in values, which is what the
    per-region dependence oracle needs. No diagnostics. *)

val site : summary -> int -> site option
val index_dom : summary -> int -> Dom.t option
(** Abstract index of the memory site with this statement id, if any. *)

val sites : summary -> site list
val loop : summary -> int -> loop_info option
val loops : summary -> loop_info list
val count : summary -> int -> float
(** Static execution-count estimate for a statement id (0 if never
    reached). *)

val diags : summary -> diag list
